package merlin

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"merlin/internal/policy"
	"merlin/internal/sim"
	"merlin/internal/topo"
)

// podPolicy builds a per-pod multi-tenant policy on a k-ary fat tree:
// tenant p asks for n guarantees between host pairs inside pod p, each
// confined to the pod by its path expression, so provisioning decomposes
// into one link-disjoint shard per pod — the failover benchmark's
// workload (internal/experiments tenantPair/tenantPolicy, which this
// package cannot import without a cycle) at test scale. The tests below
// carry their own shard-count and invalidation assertions, so drift from
// the benchmark pairing would not weaken them.
func podPolicy(t *testing.T, tp *Topology, k, n int) *Policy {
	t.Helper()
	half := k / 2
	mac := func(name string) string { return topo.MACOf(tp.MustLookup(name)) }
	var sb strings.Builder
	sb.WriteString("[")
	for p := 0; p < k; p++ {
		var names []string
		for i := 0; i < half; i++ {
			names = append(names, fmt.Sprintf("agg%d_%d", p, i), fmt.Sprintf("edge%d_%d", p, i))
			for h := 0; h < half; h++ {
				names = append(names, fmt.Sprintf("h%d_%d_%d", p, i, h))
			}
		}
		expr := "( " + strings.Join(names, " | ") + " )*"
		for g := 0; g < n; g++ {
			se, sh := g%half, (g/half)%half
			de, dh := (g+1)%half, (g+2)%half
			src := fmt.Sprintf("h%d_%d_%d", p, se, sh)
			dst := fmt.Sprintf("h%d_%d_%d", p, de, dh)
			if src == dst {
				dh = (dh + 1) % half
				dst = fmt.Sprintf("h%d_%d_%d", p, de, dh)
			}
			fmt.Fprintf(&sb, " t%dg%d : (eth.src = %s and eth.dst = %s) -> %s at min(%dMbps) ;",
				p, g, mac(src), mac(dst), expr, 10+5*g)
		}
	}
	sb.WriteString("]")
	pol, err := ParsePolicy(sb.String(), tp)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// switchHop returns the first switch-to-switch hop on a compiled path.
func switchHop(t *testing.T, tp *Topology, path []string) (string, string) {
	t.Helper()
	for i := 1; i < len(path); i++ {
		a, okA := tp.Lookup(path[i-1])
		b, okB := tp.Lookup(path[i])
		if okA && okB && tp.Node(a).Kind == topo.Switch && tp.Node(b).Kind == topo.Switch {
			return path[i-1], path[i]
		}
	}
	t.Fatalf("no switch-switch hop on %v", path)
	return "", ""
}

// TestCompilerLinkDownRoundTrip is the failure-recovery acceptance test:
// a link failure invalidates only the touched pod's artifacts and shard,
// the degraded output is byte-identical to a cold compile of the degraded
// topology, and after recovery the output is byte-identical to a cold
// compile of the pristine topology — the compiler survives the full
// LinkDown→LinkUp round trip.
func TestCompilerLinkDownRoundTrip(t *testing.T) {
	const k = 4
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, 2)
	opts := Options{NoDefault: true}
	c := NewCompiler(tp, nil, opts)
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ShardsSolved != k {
		t.Fatalf("base compile solved %d shards, want %d (one per pod)", st.ShardsSolved, k)
	}
	a, b := switchHop(t, tp, first.Paths["t0g0"])
	base := c.Stats()

	downDiff, err := c.ApplyTopo(LinkFailure(a, b))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if got := st.AnchoredInvalidated - base.AnchoredInvalidated; got != 2 {
		t.Fatalf("failure invalidated %d anchored graphs, want only pod 0's 2", got)
	}
	if st.ShardsSolved != base.ShardsSolved+1 || st.ShardsReused != base.ShardsReused+k-1 {
		t.Fatalf("failure was not shard-local: %+v -> %+v", base, st)
	}
	if st.TopoEvents != base.TopoEvents+1 {
		t.Fatalf("TopoEvents not counted: %+v", st)
	}
	in, rm := downDiff.Counts()
	if in.Total() == 0 || rm.Total() == 0 {
		t.Fatalf("failure produced an empty reroute diff: %+v", downDiff)
	}
	// No surviving path crosses the failed cable.
	for id, path := range c.Result().Paths {
		for i := 1; i < len(path); i++ {
			if (path[i-1] == a && path[i] == b) || (path[i-1] == b && path[i] == a) {
				t.Fatalf("%s still routed across failed link %s-%s", id, a, b)
			}
		}
	}
	// Byte-identical to a cold compile of the degraded topology.
	failedTopo := FatTree(k, Gbps)
	if _, err := failedTopo.SetLinkState(failedTopo.MustLookup(a), failedTopo.MustLookup(b), false); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "link-down", c.Result(), pol, failedTopo, nil, opts)

	upDiff, err := c.ApplyTopo(LinkRecovery(a, b))
	if err != nil {
		t.Fatal(err)
	}
	// Recovery restores the original configuration exactly, so its diff is
	// the failure diff reversed.
	if !reflect.DeepEqual(c.Result().Output, first.Output) {
		t.Fatal("recovery did not restore the original configuration")
	}
	upIn, upRm := upDiff.Counts()
	if upIn != rm || upRm != in {
		t.Fatalf("recovery diff %v/%v is not the failure diff %v/%v reversed", upIn, upRm, in, rm)
	}
	// And byte-identical to a cold compile on a pristine topology.
	sameCompiled(t, "round-trip", c.Result(), pol, FatTree(k, Gbps), nil, opts)
}

// TestCompilerSwitchDownRecovery: failing an aggregation switch reroutes
// every tenant path around it and matches a cold compile of the degraded
// topology; recovery restores the pristine configuration.
func TestCompilerSwitchDownRecovery(t *testing.T) {
	const k = 4
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, 2)
	opts := Options{NoDefault: true}
	c := NewCompiler(tp, nil, opts)
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.ApplyTopo(SwitchFailure("agg0_0")); err != nil {
		t.Fatal(err)
	}
	for id, path := range c.Result().Paths {
		for _, loc := range path {
			if loc == "agg0_0" {
				t.Fatalf("%s still routed through failed switch: %v", id, path)
			}
		}
	}
	failedTopo := FatTree(k, Gbps)
	if _, err := failedTopo.SetNodeState(failedTopo.MustLookup("agg0_0"), false); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "switch-down", c.Result(), pol, failedTopo, nil, opts)

	if _, err := c.ApplyTopo(SwitchRecovery("agg0_0")); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Result().Output, first.Output) {
		t.Fatal("switch recovery did not restore the original configuration")
	}
}

// TestCompilerCapacityChangeWarmResolves: a capacity change re-solves only
// the shards that can ride the re-dimensioned cable (warm-started), reuses
// the rest, and matches a cold compile against the new capacities. An
// infeasible capacity drop is reported without corrupting state.
func TestCompilerCapacityChangeWarmResolves(t *testing.T) {
	tp := Ring(8, 1, 100*MBps)
	pol := tenantRingPolicy(t, tp, "10MB/s")
	opts := Options{NoDefault: true}
	c := NewCompiler(tp, nil, opts)
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	base := c.Stats()

	// 100 -> 90 MB/s on tenant B's only path: still feasible, same route,
	// but B's shard must re-solve against the new coefficient.
	if _, err := c.ApplyTopo(CapacityChange("s5", "s6", 90*MBps)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ShardsWarm != base.ShardsWarm+1 || st.ShardsReused != base.ShardsReused+1 || st.ShardsSolved != base.ShardsSolved {
		t.Fatalf("capacity change: want tenant B warm + tenant A reused, got %+v -> %+v", base, st)
	}
	if st.StatementBuilds != base.StatementBuilds || st.AnchoredBuilds != base.AnchoredBuilds ||
		st.GraphBuilds != base.GraphBuilds || st.TreeBuilds != base.TreeBuilds {
		t.Fatalf("capacity change rebuilt graph artifacts: %+v -> %+v", base, st)
	}
	capTopo := Ring(8, 1, 100*MBps)
	if _, err := capTopo.SetCableCapacity(capTopo.MustLookup("s5"), capTopo.MustLookup("s6"), 90*MBps); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "capacity-change", c.Result(), pol, capTopo, nil, opts)

	// Dropping below tenant B's 10MB/s guarantee is infeasible: the event
	// sticks (it is a fact), the update fails, the last good result stays.
	last := c.Result()
	if _, err := c.ApplyTopo(CapacityChange("s5", "s6", 5*MBps)); err == nil {
		t.Fatal("infeasible capacity drop accepted")
	}
	if c.Result() != last {
		t.Fatal("failed capacity update replaced the last good result")
	}
	// Restoring capacity recovers, and the result matches a fresh compile.
	if _, err := c.ApplyTopo(CapacityChange("s5", "s6", 100*MBps)); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "capacity-restore", c.Result(), pol, Ring(8, 1, 100*MBps), nil, opts)
}

// TestCompilerTopoEventSticksOnFailedUpdate: topology events are facts —
// a delta whose policy part is rejected still applies the event and
// taints the caches, so the next pass compiles against the degraded
// topology rather than serving stale shard solutions.
func TestCompilerTopoEventSticksOnFailedUpdate(t *testing.T) {
	const k = 4
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, 2)
	opts := Options{NoDefault: true}
	c := NewCompiler(tp, nil, opts)
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	a, b := switchHop(t, tp, first.Paths["t0g0"])

	// The policy part is invalid (unknown statement), so Update fails —
	// after the failure event mutated the topology and tainted the caches.
	if _, err := c.Update(Delta{Topo: []TopoEvent{LinkFailure(a, b)}, Remove: []string{"nope"}}); err == nil {
		t.Fatal("delta removing an unknown statement accepted")
	}
	if l, ok := tp.FindLink(tp.MustLookup(a), tp.MustLookup(b)); ok {
		t.Fatalf("failed update rolled back the link failure (link %d live)", l.ID)
	}

	// An empty follow-up update must recompile against the degraded
	// topology — not serve the pre-failure shard solutions or rules.
	if _, err := c.Update(Delta{}); err != nil {
		t.Fatal(err)
	}
	failedTopo := FatTree(k, Gbps)
	if _, err := failedTopo.SetLinkState(failedTopo.MustLookup(a), failedTopo.MustLookup(b), false); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "event-sticks", c.Result(), pol, failedTopo, nil, opts)

	// Unknown nodes and absent cables are rejected up front, before any
	// mutation.
	if _, err := c.ApplyTopo(LinkFailure("nope", a)); err == nil {
		t.Fatal("event naming an unknown node accepted")
	}
	if _, err := c.ApplyTopo(LinkFailure("agg0_0", "agg0_1")); err == nil {
		t.Fatal("event naming an absent cable accepted")
	}
	if _, err := c.ApplyTopo(CapacityChange(a, b, -1)); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

// TestWatchTopoMixedBatch: a malformed event coalesced into the same
// batch as a real failure must not discard the failure — events are
// facts. The rejected batch is retried event by event: the bad one is
// reported, the good one applies and yields its reroute diff.
func TestWatchTopoMixedBatch(t *testing.T) {
	const k = 4
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, 2)
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	a, b := switchHop(t, tp, first.Paths["t0g0"])

	// Queue both events before the watcher starts so they coalesce into
	// one batch deterministically.
	events := make(chan TopoEvent, 2)
	events <- LinkFailure("no-such-node", a)
	events <- LinkFailure(a, b)
	close(events)
	var diffs []*Diff
	var errs []error
	done := c.WatchTopo(events, func(d *Diff) { diffs = append(diffs, d) }, func(err error) { errs = append(errs, err) })
	<-done
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "no-such-node") {
		t.Fatalf("want 1 unknown-node error, got %v", errs)
	}
	if len(diffs) != 1 {
		t.Fatalf("valid failure in a mixed batch produced %d diffs, want 1", len(diffs))
	}
	in, rm := diffs[0].Counts()
	if in.Total() == 0 || rm.Total() == 0 {
		t.Fatalf("mixed-batch reroute diff empty: %+v", diffs[0])
	}
	if l, ok := tp.FindLink(tp.MustLookup(a), tp.MustLookup(b)); ok {
		t.Fatalf("valid failure was dropped with the malformed event (link %d live)", l.ID)
	}
}

// TestCompilerHostDetach: losing a host's access link makes the detached
// host's traffic uncompilable. The incremental compiler reports the same
// error a cold compile of the degraded topology would — for best-effort
// all-pairs traffic (codegen finds the pair unreachable) and for a
// guarantee anchored at the host (provisioning finds it infeasible) —
// keeps the last good result, and recovers cleanly when the link comes
// back. topo.Impact's DetachedHosts/StaleIdentities give controllers the
// signal to drop the affected statements instead.
func TestCompilerHostDetach(t *testing.T) {
	tp := FatTree(4, Gbps)
	pol, err := ParsePolicy(`foreach (s,d) in cross(hosts,hosts): .*`, tp)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NoDefault: true}
	c := NewCompiler(tp, nil, opts)
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	last := c.Result()
	_, err = c.ApplyTopo(LinkFailure("edge0_0", "h0_0_0"))
	if err == nil {
		t.Fatal("all-pairs policy compiled with a detached host")
	}
	// The incremental error matches the cold compile's semantic.
	failedTopo := FatTree(4, Gbps)
	if _, err := failedTopo.SetLinkState(failedTopo.MustLookup("edge0_0"), failedTopo.MustLookup("h0_0_0"), false); err != nil {
		t.Fatal(err)
	}
	if _, coldErr := Compile(pol, failedTopo, nil, opts); coldErr == nil || coldErr.Error() != err.Error() {
		t.Fatalf("incremental error %q differs from cold compile's %q", err, coldErr)
	}
	if c.Result() != last {
		t.Fatal("failed update replaced the last good result")
	}
	// Recovery makes the policy compilable again, identically to pristine.
	if _, err := c.ApplyTopo(LinkRecovery("edge0_0", "h0_0_0")); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "host-reattach", c.Result(), pol, FatTree(4, Gbps), nil, opts)

	// A guarantee from the detached host is unsatisfiable: the update
	// fails cleanly and the last good result survives.
	guar := podPolicy(t, tp, 4, 1)
	c2 := NewCompiler(FatTree(4, Gbps), nil, opts)
	if _, err := c2.Compile(guar); err != nil {
		t.Fatal(err)
	}
	lastGuar := c2.Result()
	if _, err := c2.ApplyTopo(LinkFailure("edge0_0", "h0_0_0")); err == nil {
		t.Fatal("guarantee from a detached host accepted")
	}
	if c2.Result() != lastGuar {
		t.Fatal("failed update replaced the last good result")
	}
}

// minFormula rebuilds the pod policy's formula with tenant p0's first
// guarantee moved to newRate, leaving every other guarantee at its
// original rate — the negotiation tick of the e2e scenario.
func minFormula(k, n int, newRate float64) policy.Formula {
	f := policy.Formula(policy.FTrue{})
	for p := 0; p < k; p++ {
		for g := 0; g < n; g++ {
			rate := float64(10+5*g) * Mbps
			if p == 0 && g == 0 {
				rate = newRate
			}
			f = policy.ConjFormula(f, policy.Min{
				Expr: policy.BandExpr{IDs: []string{fmt.Sprintf("t%dg%d", p, g)}},
				Rate: rate,
			})
		}
	}
	return f
}

// TestFailoverBetweenNegotiationTicks is the end-to-end dynamic story: a
// negotiator drives rate renegotiation ticks through Compiler.Watch while
// a link failure arrives between ticks through Compiler.WatchTopo, and a
// flow-level simulation follows the compiled paths throughout — traffic
// blackholes at the failure, the reroute diff restores it, and the next
// negotiation tick proceeds incrementally on the degraded topology.
func TestFailoverBetweenNegotiationTicks(t *testing.T) {
	const k, n = 4, 2
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, n)
	opts := Options{NoDefault: true}
	c := NewCompiler(tp, nil, opts)
	res, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}

	// Flow-level simulation riding the compiled paths.
	net := sim.New(tp)
	flows := map[string]*sim.Flow{}
	syncFlows := func() {
		for id, names := range c.Result().Paths {
			nodes := make([]topo.NodeID, len(names))
			for i, nm := range names {
				nodes[i] = tp.MustLookup(nm)
			}
			min := c.Result().Allocations[id].Min
			if f, ok := flows[id]; ok {
				if err := net.Reroute(f, nodes); err != nil {
					t.Fatalf("reroute %s: %v", id, err)
				}
				f.MinRate = min
			} else {
				f, err := net.AddFlowOnPath(id, nodes, min, min, 0)
				if err != nil {
					t.Fatalf("flow %s: %v", id, err)
				}
				flows[id] = f
			}
		}
	}
	syncFlows()
	net.Step(1)
	if len(net.FailedFlows()) != 0 {
		t.Fatal("healthy network reports failed flows")
	}
	for id, f := range flows {
		if f.Rate < f.MinRate {
			t.Fatalf("%s below its guarantee before failure: %v < %v", id, f.Rate, f.MinRate)
		}
	}

	// The negotiator drives renegotiation ticks through Watch.
	root := NewNegotiator("root", pol)
	var tickDiffs []*Diff
	c.Watch(root, func(d *Diff) { tickDiffs = append(tickDiffs, d) })

	// Tick 1: tenant 0 renegotiates its first guarantee 10 -> 8 Mbps
	// (negotiation refines: guarantees only shrink against the parent).
	if _, err := root.Reallocate(minFormula(k, n, 8*Mbps)); err != nil {
		t.Fatalf("tick 1: %v", err)
	}
	syncFlows()
	net.Step(1)

	// Failure between ticks, delivered over the event stream.
	a, b := switchHop(t, tp, res.Paths["t0g0"])
	events := make(chan TopoEvent)
	var failDiff *Diff
	done := c.WatchTopo(events, func(d *Diff) { failDiff = d }, func(err error) { t.Errorf("watch: %v", err) })
	events <- LinkFailure(a, b)
	close(events)
	<-done
	if failDiff == nil {
		t.Fatal("failure event produced no diff")
	}
	// The dataplane still runs the stale paths: traffic into the failure
	// blackholes until the reroute is applied.
	net.Step(1)
	if len(net.FailedFlows()) == 0 {
		t.Fatal("failure did not blackhole any simulated flow")
	}
	syncFlows() // apply the reroute
	net.Step(1)
	if len(net.FailedFlows()) != 0 {
		t.Fatal("reroute left flows across the failed link")
	}
	if err := net.CheckCapacities(); err != nil {
		t.Fatal(err)
	}
	for id, f := range flows {
		if f.Rate < f.MinRate {
			t.Fatalf("%s below its guarantee after reroute: %v < %v", id, f.Rate, f.MinRate)
		}
	}

	// Tick 2 lands after the failure: renegotiation proceeds incrementally
	// on the degraded topology.
	base := c.Stats()
	if _, err := root.Reallocate(minFormula(k, n, 6*Mbps)); err != nil {
		t.Fatalf("tick 2: %v", err)
	}
	st := c.Stats()
	if st.StatementBuilds != base.StatementBuilds || st.AnchoredBuilds != base.AnchoredBuilds {
		t.Fatalf("post-failure tick rebuilt statement artifacts: %+v -> %+v", base, st)
	}
	if st.ShardsSolved != base.ShardsSolved {
		t.Fatalf("post-failure tick solved a shard cold: %+v -> %+v", base, st)
	}
	syncFlows()
	net.Step(1)
	if err := net.CheckCapacities(); err != nil {
		t.Fatal(err)
	}
	if got := flows["t0g0"].MinRate; got != 6*Mbps {
		t.Fatalf("tick 2 guarantee not applied: %v", got)
	}
	if len(tickDiffs) != 2 {
		t.Fatalf("got %d negotiation diffs, want 2", len(tickDiffs))
	}

	// End state matches a cold compile of the degraded topology with the
	// final formula.
	failedTopo := FatTree(k, Gbps)
	if _, err := failedTopo.SetLinkState(failedTopo.MustLookup(a), failedTopo.MustLookup(b), false); err != nil {
		t.Fatal(err)
	}
	finalPol := &Policy{Statements: pol.Statements, Formula: minFormula(k, n, 6*Mbps)}
	sameCompiled(t, "e2e-final", c.Result(), finalPol, failedTopo, nil, opts)
}
