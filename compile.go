package merlin

import (
	"fmt"
	"strings"
	"time"

	"merlin/internal/codegen"
	"merlin/internal/interp"
	"merlin/internal/logical"
	"merlin/internal/mip"
	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/provision"
	"merlin/internal/regex"
	"merlin/internal/sinktree"
	"merlin/internal/topo"
)

// Options tune compilation.
type Options struct {
	// Heuristic selects the path-selection objective for guaranteed
	// traffic (default WeightedShortestPath).
	Heuristic Heuristic
	// Split overrides the §3.1 localization scheme (default equal split).
	Split policy.SplitFunc
	// MIP passes solver limits through to branch and bound.
	MIP mip.Params
	// SkipPreprocess compiles the policy as-is; by default the §2.1
	// pre-processor rewrites overlapping predicates to first-match
	// semantics and appends a best-effort default statement for totality.
	SkipPreprocess bool
	// NoDefault suppresses only the totality default.
	NoDefault bool
	// Greedy provisions guarantees with the sequential shortest-path
	// allocator instead of the exact MIP — the scalable approximation
	// the ablation benches compare against.
	Greedy bool
}

// Timing breaks down where compilation time went — the Table 7 columns.
type Timing struct {
	Preprocess  time.Duration
	GraphBuild  time.Duration
	LPConstruct time.Duration
	LPSolve     time.Duration
	Rateless    time.Duration
	Codegen     time.Duration
}

// Total sums all phases.
func (t Timing) Total() time.Duration {
	return t.Preprocess + t.GraphBuild + t.LPConstruct + t.LPSolve + t.Rateless + t.Codegen
}

// Result is the compiler's output.
type Result struct {
	// Policy is the preprocessed policy that was compiled.
	Policy *Policy
	// Allocations are the localized per-statement rates.
	Allocations map[string]Alloc
	// Paths lists, per guaranteed statement, the chosen location names.
	Paths map[string][]string
	// Placements lists, per statement, the chosen function placements.
	Placements map[string][]PlacementChoice
	// Output holds the generated device configuration.
	Output *codegen.Output
	// Programs holds per-host end-host interpreter programs enforcing
	// caps and payload filters (the §3.4 kernel-module backend).
	Programs map[NodeID]*interp.Program
	// Timing breaks down compile phases.
	Timing Timing
}

// PlacementChoice records where a function was placed.
type PlacementChoice struct {
	Fn       string
	Location string
}

// Counts reports the Fig. 4 instruction totals.
func (r *Result) Counts() codegen.Counts { return r.Output.Counts() }

// Compile runs the full §3 pipeline: preprocess, localize, build logical
// topologies, provision guaranteed traffic via the MIP, provision
// best-effort traffic via sink trees, and generate device configurations.
func Compile(pol *Policy, t *Topology, place Placement, opts Options) (*Result, error) {
	res := &Result{
		Paths:      map[string][]string{},
		Placements: map[string][]PlacementChoice{},
		Programs:   map[NodeID]*interp.Program{},
	}
	// Phase 0: preprocess + localize. First-match semantics for
	// overlapping predicates is realized through rule priorities rather
	// than the MakeDisjoint rewrite: the rewrite conjoins each statement
	// with the negation of all earlier ones, which makes classifier
	// expansion exponential on large policies, while priorities encode
	// the same semantics for free.
	start := time.Now()
	work := pol
	if !opts.SkipPreprocess {
		var err error
		work, err = policy.Preprocess(pol, policy.PreprocessOptions{
			AddDefault: !opts.NoDefault,
		})
		if err != nil {
			return nil, err
		}
	}
	res.Policy = work
	allocs, err := policy.Localize(work.Formula, opts.Split)
	if err != nil {
		return nil, err
	}
	res.Allocations = allocs
	res.Timing.Preprocess = time.Since(start)

	ids := t.Identities()
	alpha := logical.Alphabet(t)
	alloc := func(id string) Alloc {
		if a, ok := allocs[id]; ok {
			return a
		}
		return policy.Unconstrained
	}

	// Phase 1: build per-statement artifacts.
	type beWork struct {
		stmt     policy.Statement
		expr     regex.Expr
		srcs     []NodeID
		dsts     []NodeID
		classify codegen.Classify
		priority int
	}
	var (
		requests  []provision.Request
		reqStmt   = map[string]int{} // request ID -> statement priority
		bestEff   []beWork
		graphTime time.Duration
	)
	n := len(work.Statements)
	for idx, s := range work.Statements {
		priority := n - idx
		expr, err := resolveExpr(s.Path, place, ids)
		if err != nil {
			return nil, fmt.Errorf("merlin: statement %s: %w", s.ID, err)
		}
		srcs, dsts, err := endpoints(s.Predicate, t, ids)
		if err != nil {
			return nil, fmt.Errorf("merlin: statement %s: %w", s.ID, err)
		}
		a := alloc(s.ID)
		if a.Min > 0 {
			if len(srcs) != 1 || len(dsts) != 1 {
				return nil, fmt.Errorf("merlin: statement %s: bandwidth guarantees need a unique source and destination", s.ID)
			}
			gs := time.Now()
			g, err := logical.BuildAnchored(t, expr, alpha,
				t.Node(srcs[0]).Name, t.Node(dsts[0]).Name)
			if err != nil {
				return nil, err
			}
			graphTime += time.Since(gs)
			requests = append(requests, provision.Request{ID: s.ID, Graph: g, MinRate: a.Min})
			reqStmt[s.ID] = priority
			continue
		}
		classify := codegen.ByPredicate
		if pureConnectivity(s.Predicate) {
			classify = codegen.ByDestination
		}
		bestEff = append(bestEff, beWork{
			stmt: s, expr: expr, srcs: srcs, dsts: dsts,
			classify: classify, priority: priority,
		})
	}
	res.Timing.GraphBuild = graphTime

	var plans []codegen.Plan

	// Phase 2: guaranteed traffic through the MIP (§3.2), or the greedy
	// baseline when requested.
	if len(requests) > 0 {
		var sol *provision.Result
		var err error
		if opts.Greedy {
			sol, err = provision.Greedy(t, requests)
		} else {
			sol, err = provision.Solve(t, requests, opts.Heuristic, provision.Params{MIP: opts.MIP})
		}
		if err != nil {
			return nil, err
		}
		res.Timing.LPConstruct = sol.ConstructTime
		res.Timing.LPSolve = sol.SolveTime
		for _, r := range requests {
			steps := sol.Paths[r.ID]
			stmt, _ := work.Statement(r.ID)
			srcs, dsts, _ := endpoints(stmt.Predicate, t, ids)
			plans = append(plans, codegen.Plan{
				ID: r.ID, Predicate: stmt.Predicate, Priority: reqStmt[r.ID],
				Alloc: alloc(r.ID), Classify: codegen.ByPredicate,
				SrcHost: srcs[0], DstHost: dsts[0], Path: steps,
			})
			res.Paths[r.ID] = stepNames(t, steps)
			for _, pl := range logical.PlacementsOf(steps) {
				res.Placements[r.ID] = append(res.Placements[r.ID],
					PlacementChoice{Fn: pl.Fn, Location: t.Node(pl.Loc).Name})
			}
		}
	}

	// Phase 3: best-effort sink trees (§3.3).
	rs := time.Now()
	graphs := map[string]*logical.Graph{}
	trees := map[string]*sinktree.Tree{}
	for _, w := range bestEff {
		key := w.expr.String()
		g, ok := graphs[key]
		if !ok {
			var err error
			g, err = logical.BuildMinimized(t, w.expr, alpha)
			if err != nil {
				return nil, err
			}
			graphs[key] = g
		}
		for _, dst := range w.dsts {
			tkey := fmt.Sprintf("%s→%d", key, dst)
			tree, ok := trees[tkey]
			if !ok {
				var err error
				tree, err = sinktree.TreeTo(g, dst)
				if err != nil {
					return nil, fmt.Errorf("merlin: statement %s: %w", w.stmt.ID, err)
				}
				trees[tkey] = tree
			}
			for _, src := range w.srcs {
				if src == dst {
					continue
				}
				plans = append(plans, codegen.Plan{
					ID: w.stmt.ID, Predicate: w.stmt.Predicate, Priority: w.priority,
					Alloc: alloc(w.stmt.ID), Classify: w.classify,
					SrcHost: src, DstHost: dst, Tree: tree,
				})
				if steps := tree.PathFrom(src); steps != nil {
					for _, pl := range logical.PlacementsOf(steps) {
						res.Placements[w.stmt.ID] = append(res.Placements[w.stmt.ID],
							PlacementChoice{Fn: pl.Fn, Location: t.Node(pl.Loc).Name})
					}
				}
			}
		}
	}
	res.Timing.Rateless = time.Since(rs)

	// Phase 4: code generation (§3.4).
	cs := time.Now()
	out, err := codegen.Generate(t, plans)
	if err != nil {
		return nil, err
	}
	res.Output = out
	res.buildPrograms(t, work, allocs, ids)
	res.Timing.Codegen = time.Since(cs)
	return res, nil
}

// buildPrograms emits end-host interpreter programs: rate limits for caps
// and drops for payload-matching filters iptables cannot express.
func (r *Result) buildPrograms(t *Topology, pol *Policy, allocs map[string]Alloc, ids *topo.IdentityTable) {
	for _, s := range pol.Statements {
		a, ok := allocs[s.ID]
		if !ok || a.Max == 0 || a.Max != a.Max { // no alloc or NaN guard
			continue
		}
		if a.Max > 0 && !isInf(a.Max) {
			srcs, _, err := endpoints(s.Predicate, t, ids)
			if err != nil {
				continue
			}
			for _, src := range srcs {
				prog := r.Programs[src]
				if prog == nil {
					prog = &interp.Program{Name: t.Node(src).Name}
					r.Programs[src] = prog
				}
				prog.Clauses = append(prog.Clauses, interp.Clause{
					Pred: s.Predicate, Op: interp.OpRateLimit, RateBps: a.Max,
				})
			}
		}
	}
}

func isInf(v float64) bool { return v > 1e300 }

// resolveExpr substitutes function placements into the path expression and
// rewrites host-identity symbols (MACs, IPs) into topology node names.
func resolveExpr(e regex.Expr, place Placement, ids *topo.IdentityTable) (regex.Expr, error) {
	if len(place) > 0 {
		e = regex.Substitute(e, place)
	}
	var rewrite func(regex.Expr) regex.Expr
	rewrite = func(e regex.Expr) regex.Expr {
		switch x := e.(type) {
		case regex.Sym:
			if node, ok := ids.Resolve(x.Name); ok {
				return regex.Sym{Name: nodeName(ids, node, x.Name)}
			}
			return x
		case regex.Concat:
			return regex.Concat{L: rewrite(x.L), R: rewrite(x.R)}
		case regex.Alt:
			return regex.Alt{L: rewrite(x.L), R: rewrite(x.R)}
		case regex.Star:
			return regex.Star{X: rewrite(x.X)}
		case regex.Not:
			return regex.Not{X: rewrite(x.X)}
		default:
			return e
		}
	}
	return rewrite(e), nil
}

func nodeName(ids *topo.IdentityTable, node topo.NodeID, fallback string) string {
	if ident, ok := ids.Of(node); ok {
		return ident.Name
	}
	return fallback
}

// endpoints derives the source and destination host sets a predicate pins
// down. Cubes lacking a source (destination) atom widen the set to all
// hosts.
func endpoints(p pred.Pred, t *Topology, ids *topo.IdentityTable) (srcs, dsts []NodeID, err error) {
	cubes, err := pred.PositiveCubes(p)
	if err != nil {
		// Expansion can blow up on heavily-negated predicates (the
		// totality default). Such predicates pin no endpoints anyway.
		return t.Hosts(), t.Hosts(), nil
	}
	srcSet := map[NodeID]bool{}
	dstSet := map[NodeID]bool{}
	srcAll, dstAll := false, false
	for _, cube := range cubes {
		var cubeSrc, cubeDst *NodeID
		for _, test := range cube {
			switch test.Field {
			case "eth.src", "ip.src":
				if n, ok := ids.Resolve(test.Value); ok {
					v := n
					cubeSrc = &v
				}
			case "eth.dst", "ip.dst":
				if n, ok := ids.Resolve(test.Value); ok {
					v := n
					cubeDst = &v
				}
			}
		}
		if cubeSrc != nil {
			srcSet[*cubeSrc] = true
		} else {
			srcAll = true
		}
		if cubeDst != nil {
			dstSet[*cubeDst] = true
		} else {
			dstAll = true
		}
	}
	collect := func(set map[NodeID]bool, all bool) []NodeID {
		if all || len(set) == 0 {
			return t.Hosts()
		}
		var out []NodeID
		for _, h := range t.Hosts() {
			if set[h] {
				out = append(out, h)
			}
		}
		return out
	}
	return collect(srcSet, srcAll), collect(dstSet, dstAll), nil
}

// pureConnectivity reports whether the predicate only constrains the
// source and destination identities, enabling the compact ByDestination
// classifier.
func pureConnectivity(p pred.Pred) bool {
	for _, f := range pred.Fields(p) {
		switch f {
		case "eth.src", "eth.dst", "ip.src", "ip.dst":
		default:
			return false
		}
	}
	return true
}

func stepNames(t *Topology, steps []logical.Step) []string {
	locs := logical.Locations(steps)
	out := make([]string, len(locs))
	for i, l := range locs {
		out[i] = t.Node(l).Name
	}
	return out
}

// DescribePath renders a compiled path for human output.
func DescribePath(names []string) string { return strings.Join(names, " → ") }
