package merlin

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"merlin/internal/codegen"
	"merlin/internal/interp"
	"merlin/internal/logical"
	"merlin/internal/mip"
	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/provision"
	"merlin/internal/regex"
	"merlin/internal/sinktree"
	"merlin/internal/ternary"
	"merlin/internal/topo"
)

// Options tune compilation.
type Options struct {
	// Heuristic selects the path-selection objective for guaranteed
	// traffic (default WeightedShortestPath).
	Heuristic Heuristic
	// Split overrides the §3.1 localization scheme (default equal split).
	Split policy.SplitFunc
	// MIP passes solver limits through to branch and bound.
	MIP mip.Params
	// SkipPreprocess compiles the policy as-is; by default the §2.1
	// pre-processor rewrites overlapping predicates to first-match
	// semantics and appends a best-effort default statement for totality.
	SkipPreprocess bool
	// NoDefault suppresses only the totality default.
	NoDefault bool
	// Greedy provisions guarantees with the sequential shortest-path
	// allocator instead of the exact MIP — the scalable approximation
	// the ablation benches compare against.
	Greedy bool
	// LegacyModel forces the paper-literal provisioning MIP encoding
	// (explicit per-cable reservation variables and rows) instead of the
	// compact bounded-variable one, and NoNetflow disables the
	// network-simplex fast path for flow-structured shards. Both are
	// measurement escape hatches for the solver benchmarks: the defaults
	// are strictly faster and provably choose the same optima (see
	// provision.Params).
	LegacyModel bool
	NoNetflow   bool
	// NoShard solves the provisioning MIP monolithically instead of
	// decomposing it into link-disjoint shards. The sharded solve is
	// provably path-identical (see provision.Params.NoShard), so this is
	// a differential-testing and measurement escape hatch: sweeps compile
	// selected cells both ways and require identical outputs.
	NoShard bool
	// Workers bounds the worker pool the compiler fans per-statement
	// product-graph builds and per-destination sink trees out over.
	// Zero means runtime.NumCPU(); 1 forces the sequential path. Output
	// is identical for every pool size.
	Workers int
	// Targets selects the dataplane backends to emit, by registry name
	// (see codegen.Register; "p4" is bundled). Nil means the built-in
	// default set — OpenFlow rules + queues, tc/iptables commands, Click
	// configurations, and end-host interpreter programs — which is
	// byte-identical to the pre-registry compiler. Result.Outputs holds
	// one artifact per target; Result.Output aggregates whichever
	// built-ins were requested.
	Targets []string
	// TableBudgets overrides per-device ternary table budgets by node
	// name, on top of whatever the targeted backends' table models
	// declare (the lowest applicable limit wins; a backend with no model
	// for a device class imposes none). A present entry overrides every
	// model-derived budget for that device — 0 means the device accepts
	// no ternary entries at all — and setting budgets with no ternary
	// target still enforces them against the default expansion. When a
	// compiled placement would overflow some device's budget, the
	// compiler re-places the guaranteed traffic through the provisioning
	// MIP with the budgets as placement constraints, and if that is
	// impossible (or still overflows) rejects with *TableOverflowError.
	TableBudgets map[string]int
	// TopoDebounce is WatchTopo's coalescing window: after the first
	// event of a burst arrives, the watcher keeps collecting events for
	// this long before applying them as one batch — so a failure storm
	// (a switch plus every link it carried, a maintenance drain) costs
	// one invalidation sweep and one recompile instead of one per event.
	// Zero keeps the eager behavior: apply immediately, coalescing only
	// events already queued.
	TopoDebounce time.Duration
}

// parallelDo runs f(0..n-1) over a bounded worker pool. Each index is
// processed exactly once; f must only write to per-index state.
func parallelDo(n, workers int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// Timing breaks down where compilation time went — the Table 7 columns.
// For an incremental run only the work actually performed is counted, so
// a cache-served phase reports (near) zero.
type Timing struct {
	Preprocess time.Duration
	// GraphBuild is the wall-clock of the whole per-statement phase-1
	// region: path-expression resolution, endpoint derivation, and the
	// (parallel) anchored product-graph builds. Earlier versions counted
	// only the summed graph-build time, so it is nonzero even for
	// policies with no guarantees.
	GraphBuild  time.Duration
	LPConstruct time.Duration
	LPSolve     time.Duration
	Rateless    time.Duration
	Codegen     time.Duration
}

// Total sums all phases.
func (t Timing) Total() time.Duration {
	return t.Preprocess + t.GraphBuild + t.LPConstruct + t.LPSolve + t.Rateless + t.Codegen
}

// Result is the compiler's output.
type Result struct {
	// Policy is the preprocessed policy that was compiled.
	Policy *Policy
	// Allocations are the localized per-statement rates.
	Allocations map[string]Alloc
	// Paths lists, per guaranteed statement, the chosen location names.
	Paths map[string][]string
	// Placements lists, per statement, the chosen function placements.
	Placements map[string][]PlacementChoice
	// IR is the lowered target-neutral program every backend emitted
	// from — per-device classifier rules with tags and priorities, queue
	// reservations, rate caps, middlebox hops, and host functions.
	IR *codegen.Program
	// Outputs holds each requested backend's emitted artifact, keyed by
	// target name (Options.Targets).
	Outputs map[string]codegen.Artifact
	// Output aggregates the built-in backends' artifacts into the legacy
	// device-configuration struct. Sections whose backend was not
	// targeted stay empty.
	Output *codegen.Output
	// Programs holds per-host end-host interpreter programs enforcing
	// caps and payload filters (the §3.4 kernel-module backend) — the
	// "host" target's artifact.
	Programs map[NodeID]*interp.Program
	// Timing breaks down compile phases.
	Timing Timing
}

// PlacementChoice records where a function was placed.
type PlacementChoice struct {
	Fn       string
	Location string
}

// Counts reports the Fig. 4 instruction totals.
func (r *Result) Counts() codegen.Counts { return r.Output.Counts() }

// Compile runs the full §3 pipeline: preprocess, localize, build logical
// topologies, provision guaranteed traffic via the MIP, provision
// best-effort traffic via sink trees, and generate device configurations.
//
// It is a thin wrapper over a one-shot Compiler; long-running controllers
// that recompile on policy changes should hold a Compiler and call its
// Compile/Update methods instead, which reuse cached artifacts across
// calls.
func Compile(pol *Policy, t *Topology, place Placement, opts Options) (*Result, error) {
	return NewCompiler(t, place, opts).Compile(pol)
}

// runState carries one compilation pass over the Compiler's caches.
type runState struct {
	work   *Policy
	allocs map[string]Alloc
	// arts holds the per-statement artifacts, by statement index.
	arts []*stmtArtifact
	res  *Result
	// aliased reports that the incoming policy's statement slice is the
	// same backing array as the previous pass's — the formula-only delta
	// every negotiation tick produces — so per-statement fingerprints
	// need not be recomputed. Policies are treated as immutable.
	aliased bool
	// rebuilt reports that some per-statement artifact was (re)built this
	// pass — the policy's statements are not identical to the previous
	// pass's, so the codegen patch fast-path must not be taken.
	rebuilt bool
	// provReused reports that the provisioning solution was served from
	// cache without a solve.
	provReused bool
	// Provisioning products, shared between provisionStage (solve) and
	// guaranteedPlans (assembly — skipped on the codegen patch path).
	requests []provision.Request
	reqArts  []*stmtArtifact
	reqStmt  map[string]int // request ID -> statement priority
	sol      *provision.Result
	// Ternary products of the last codegenFull attempt: the resolved
	// per-device budget set, and the per-device count of expanded entries
	// owned by statements with no provisioning request — the entries a
	// budget-driven re-placement cannot move.
	budgets  map[topo.NodeID]deviceBudget
	ternNonG map[topo.NodeID]int
}

// deviceBudget is one device's resolved ternary table budget and the
// backend whose table model imposed it ("" = Options.TableBudgets).
type deviceBudget struct {
	limit  int
	target string
}

func (run *runState) alloc(id string) Alloc {
	if a, ok := run.allocs[id]; ok {
		return a
	}
	return policy.Unconstrained
}

// preprocessStage runs phase 0: preprocess and localize.
func (c *Compiler) preprocessStage(pol *Policy, run *runState) error {
	// First-match semantics for overlapping predicates is realized through
	// rule priorities rather than the MakeDisjoint rewrite: the rewrite
	// conjoins each statement with the negation of all earlier ones, which
	// makes classifier expansion exponential on large policies, while
	// priorities encode the same semantics for free.
	start := time.Now()
	work := pol
	if !c.opts.SkipPreprocess {
		var err error
		work, err = policy.Preprocess(pol, policy.PreprocessOptions{
			AddDefault: !c.opts.NoDefault,
		})
		if err != nil {
			return err
		}
	}
	run.work = work
	run.res.Policy = work
	allocs, err := policy.Localize(work.Formula, c.opts.Split)
	if err != nil {
		return err
	}
	run.allocs = allocs
	run.res.Allocations = allocs
	run.res.Timing.Preprocess = time.Since(start)
	return nil
}

// statementStage runs phase 1 against the artifact cache: path-expression
// resolution, endpoint derivation, and anchored product-graph builds for
// guaranteed statements. Only statements whose fingerprint misses the
// cache are rebuilt; builds fan out over the worker pool and results merge
// in statement order, so output is identical for every pool size.
func (c *Compiler) statementStage(run *runState) error {
	gs := time.Now()
	work := run.work
	n := len(work.Statements)
	arts := make([]*stmtArtifact, n)
	errs := make([]error, n)
	fresh := make([]bool, n)      // artifact (re)built: needs endpoints
	builtGraph := make([]bool, n) // anchored graph built, for stats

	// Sequential pass: match artifacts against the cache; resolve dirty
	// path expressions and intern their symbols in statement order
	// (interning mutates the shared alphabet). When the statement slice
	// is the previous pass's (run.aliased), cache hits skip the
	// fingerprint — at 10k+ statements, rendering predicates dominates an
	// otherwise no-op pass.
	alphaSize := c.alpha.Size()
	for idx, s := range work.Statements {
		fp := ""
		if !run.aliased {
			fp = stmtFingerprint(s)
		}
		if art, ok := c.stmts[s.ID]; ok && (run.aliased || art.fp == fp) {
			arts[idx] = art
			continue
		}
		if run.aliased {
			fp = stmtFingerprint(s)
		}
		expr := resolveExpr(s.Path, c.place, c.ids)
		for _, sym := range regex.Symbols(expr) {
			c.alpha.Intern(sym)
		}
		arts[idx] = &stmtArtifact{
			fp:   fp,
			expr: expr,
			key:  regex.Key(expr),
			pure: pureConnectivity(s.Predicate),
		}
		fresh[idx] = true
		run.rebuilt = true
		c.tainted = true
	}
	if c.alpha.Size() != alphaSize {
		// The alphabet grew: automata determinized/minimized against the
		// old alphabet can differ from ones built now, so every cached
		// product graph and sink tree is stale. Drop them outright — the
		// generation check would bypass them anyway, and a long-running
		// controller must not accumulate dead artifacts.
		c.alphaGen++
		c.graphs = map[string]*graphArtifact{}
		c.trees = map[treeKey]*treeArtifact{}
	}

	// Parallel pass over the statements with outstanding work: endpoints
	// for fresh artifacts, anchored product graphs for guaranteed
	// statements missing a current one. A cached guaranteed statement
	// with a current graph already passed the uniqueness check when the
	// graph was built (same predicate → same endpoints), so only fresh
	// or graph-stale statements need visiting.
	var worklist []int
	for idx, s := range work.Statements {
		if fresh[idx] {
			worklist = append(worklist, idx)
			continue
		}
		art := arts[idx]
		if run.alloc(s.ID).Min > 0 && (art.anchored == nil || art.anchoredGen != c.alphaGen) {
			worklist = append(worklist, idx)
		}
	}
	parallelDo(len(worklist), c.opts.Workers, func(wi int) {
		idx := worklist[wi]
		s := work.Statements[idx]
		art := arts[idx]
		if fresh[idx] {
			srcs, dsts, err := endpoints(s.Predicate, c.t, c.ids, c.hosts)
			if err != nil {
				errs[idx] = fmt.Errorf("merlin: statement %s: %w", s.ID, err)
				return
			}
			art.srcs, art.dsts = srcs, dsts
		}
		if run.alloc(s.ID).Min <= 0 {
			return
		}
		if len(art.srcs) != 1 || len(art.dsts) != 1 {
			errs[idx] = fmt.Errorf("merlin: statement %s: bandwidth guarantees need a unique source and destination", s.ID)
			return
		}
		if art.anchored != nil && art.anchoredGen == c.alphaGen {
			return
		}
		g, err := logical.BuildAnchored(c.t, art.expr, c.alpha,
			c.t.Node(art.srcs[0]).Name, c.t.Node(art.dsts[0]).Name)
		if err != nil {
			errs[idx] = err
			return
		}
		art.anchored, art.anchoredGen, art.outage = g, c.alphaGen, c.downCables
		builtGraph[idx] = true
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Commit: install artifacts, drop ones for vanished statements.
	for idx, s := range work.Statements {
		c.stmts[s.ID] = arts[idx]
		if fresh[idx] {
			c.stats.StatementBuilds++
		}
		if builtGraph[idx] {
			c.stats.AnchoredBuilds++
		}
	}
	if len(c.stmts) != n {
		current := make(map[string]bool, n)
		for _, s := range work.Statements {
			current[s.ID] = true
		}
		for id := range c.stmts {
			if !current[id] {
				delete(c.stmts, id)
				c.tainted = true
			}
		}
	}
	run.arts = arts
	run.res.Timing.GraphBuild = time.Since(gs)
	return nil
}

// provisionStage runs phase 2: guaranteed traffic through the MIP (§3.2),
// or the greedy baseline when requested. An unchanged request set reuses
// the cached solution outright; a rates-only change re-solves the same
// model shape warm-started from the previous optimal basis. Plan assembly
// is left to guaranteedPlans so the codegen patch path can skip it.
func (c *Compiler) provisionStage(run *runState) error {
	work := run.work
	n := len(work.Statements)
	run.reqStmt = map[string]int{}
	for idx, s := range work.Statements {
		if run.alloc(s.ID).Min <= 0 {
			continue
		}
		run.requests = append(run.requests, provision.Request{
			ID: s.ID, Graph: run.arts[idx].anchored, MinRate: run.alloc(s.ID).Min,
		})
		run.reqArts = append(run.reqArts, run.arts[idx])
		run.reqStmt[s.ID] = n - idx
	}
	if len(run.requests) == 0 {
		// The cached solution (if any) no longer matches; it is dropped
		// in recompile's commit section so a failed pass keeps it.
		return nil
	}

	sol, reused, err := c.solveRequests(run.requests)
	if err != nil {
		return err
	}
	run.sol = sol
	run.provReused = reused
	if !reused {
		run.res.Timing.LPConstruct = sol.ConstructTime
		run.res.Timing.LPSolve = sol.SolveTime
	}
	return nil
}

// guaranteedPlans decodes the provisioning solution into codegen plans,
// paths, and placements.
func (c *Compiler) guaranteedPlans(run *runState) []codegen.Plan {
	res := run.res
	var plans []codegen.Plan
	for ri, r := range run.requests {
		steps := run.sol.Paths[r.ID]
		stmt, _ := run.work.Statement(r.ID)
		art := run.reqArts[ri]
		plans = append(plans, codegen.Plan{
			ID: r.ID, Predicate: stmt.Predicate, Priority: run.reqStmt[r.ID],
			Alloc: run.alloc(r.ID), Classify: codegen.ByPredicate,
			SrcHost: art.srcs[0], DstHost: art.dsts[0], Path: steps,
		})
		res.Paths[r.ID] = stepNames(c.t, steps)
		for _, pl := range logical.PlacementsOf(steps) {
			res.Placements[r.ID] = append(res.Placements[r.ID],
				PlacementChoice{Fn: pl.Fn, Location: c.t.Node(pl.Loc).Name})
		}
	}
	return plans
}

// solveRequests serves the provisioning solution from cache when the
// request set is unchanged, and otherwise re-solves at shard granularity:
// provision.Solve partitions the requests into link-disjoint shards and
// the previous result's per-shard solutions (provision.Result.Shards) let
// it reuse every shard the delta did not touch outright, warm-start
// rates-only-changed shards from their cached bases, and solve cold only
// the shards whose membership changed. It commits the new provisioning
// artifact.
func (c *Compiler) solveRequests(requests []provision.Request) (sol *provision.Result, reused bool, err error) {
	cached := c.prov
	// Topology events since the last pass (len(c.dirtyCables) > 0) bypass
	// the identity fast path: the cached solution was computed against
	// different capacities or connectivity, so shard-level reuse below must
	// re-examine cable incidence even for an unchanged request set.
	sameInputs := cached != nil && len(c.dirtyCables) == 0 &&
		cached.greedy == c.opts.Greedy &&
		cached.heuristic == c.opts.Heuristic &&
		len(cached.ids) == len(requests)
	if sameInputs {
		for i, r := range requests {
			if cached.ids[i] != r.ID || cached.graphs[i] != r.Graph || cached.rates[i] != r.MinRate {
				sameInputs = false
				break
			}
		}
	}
	if sameInputs {
		// Pure cache hit: c.prov already describes these requests.
		c.stats.SolvesReused++
		return cached.res, true, nil
	}
	switch {
	case c.opts.Greedy:
		sol, err = provision.Greedy(c.t, requests)
		c.stats.Solves++
	default:
		params := provision.Params{
			MIP: c.opts.MIP, Workers: c.opts.Workers,
			LegacyModel: c.opts.LegacyModel, NoNetflow: c.opts.NoNetflow,
			NoShard: c.opts.NoShard,
		}
		if cached != nil && !cached.greedy && cached.heuristic == c.opts.Heuristic && cached.res != nil {
			// Shard-level reuse: unchanged shards are served outright and
			// rates-only-changed shards re-solve warm-started from their
			// cached optimal bases (§4.3's fast re-provisioning path, now
			// per shard). Shards incident to a dirty cable (capacity
			// changed, link failed or restored) are excluded from outright
			// reuse and re-solve warm where the basis survives.
			params.Reuse = cached.res.Shards
			params.Dirty = c.dirtyCables
		}
		sol, err = provision.Solve(c.t, requests, c.opts.Heuristic, params)
		if err == nil {
			c.stats.ShardsSolved += sol.ShardsSolved
			c.stats.ShardsWarm += sol.ShardsWarm
			c.stats.ShardsReused += sol.ShardsReused
			c.stats.NetflowShards += sol.NetflowShards
			c.stats.BnBNodes += sol.Nodes
			switch {
			case sol.ShardsSolved > 0:
				c.stats.Solves++
			case sol.ShardsWarm > 0:
				c.stats.WarmSolves++
			default:
				c.stats.SolvesReused++
			}
		}
	}
	if err != nil {
		return nil, false, err
	}
	art := &provArtifact{
		ids:       make([]string, len(requests)),
		graphs:    make([]*logical.Graph, len(requests)),
		rates:     make([]float64, len(requests)),
		heuristic: c.opts.Heuristic,
		greedy:    c.opts.Greedy,
		res:       sol,
	}
	for i, r := range requests {
		art.ids[i], art.graphs[i], art.rates[i] = r.ID, r.Graph, r.MinRate
	}
	c.prov = art
	return sol, reused, nil
}

// bestEffortStage runs phase 3: best-effort sink trees (§3.3). Product
// graphs are cached per distinct path expression and sink trees per
// (expression, destination) pair — across compiles, not just within one.
// Missing entries build in parallel over the worker pool; plan assembly
// stays sequential in statement order, so the generated configuration is
// byte-identical to the sequential compiler's.
func (c *Compiler) bestEffortStage(run *runState, plans []codegen.Plan) ([]codegen.Plan, error) {
	rs := time.Now()
	work := run.work
	res := run.res
	n := len(work.Statements)
	type beWork struct {
		art      *stmtArtifact
		stmt     policy.Statement
		classify codegen.Classify
		priority int
	}
	var bestEff []beWork
	for idx, s := range work.Statements {
		if run.alloc(s.ID).Min > 0 {
			continue
		}
		art := run.arts[idx]
		classify := codegen.ByPredicate
		if art.pure {
			classify = codegen.ByDestination
		}
		bestEff = append(bestEff, beWork{art: art, stmt: s, classify: classify, priority: n - idx})
	}

	// Product graphs, first-seen key order (statement order).
	var (
		keyOrder []string
		keyExpr  []regex.Expr
		keyIdx   = map[string]int{}
	)
	for _, w := range bestEff {
		if _, ok := keyIdx[w.art.key]; !ok {
			keyIdx[w.art.key] = len(keyOrder)
			keyOrder = append(keyOrder, w.art.key)
			keyExpr = append(keyExpr, w.art.expr)
		}
	}
	graphs := make([]*graphArtifact, len(keyOrder))
	var missing []int
	for i, key := range keyOrder {
		if g, ok := c.graphs[key]; ok && g.gen == c.alphaGen {
			graphs[i] = g
			continue
		}
		missing = append(missing, i)
	}
	graphErrs := make([]error, len(missing))
	parallelDo(len(missing), c.opts.Workers, func(mi int) {
		i := missing[mi]
		g, err := logical.BuildMinimized(c.t, keyExpr[i], c.alpha)
		if err != nil {
			graphErrs[mi] = err
			return
		}
		graphs[i] = &graphArtifact{g: g, hasTags: regex.HasTags(keyExpr[i]), gen: c.alphaGen, outage: c.downCables}
	})
	// Missing keys are visited in first-seen (statement) order, so the
	// first failed key matches the sequential compiler's error.
	for _, err := range graphErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, i := range missing {
		c.graphs[keyOrder[i]] = graphs[i]
		c.stats.GraphBuilds++
	}

	// Sink trees per (expression, destination), first-seen order.
	type treeJob struct {
		graph  int // index into graphs
		dst    NodeID
		stmtID string // first statement needing the tree, for errors
	}
	var (
		jobs    []treeJob
		jobIdx  = map[treeKey]int{}
		treeArt = []*treeArtifact{}
	)
	for _, w := range bestEff {
		ki := keyIdx[w.art.key]
		for _, dst := range w.art.dsts {
			tkey := treeKey{key: w.art.key, dst: dst}
			if _, ok := jobIdx[tkey]; !ok {
				jobIdx[tkey] = len(jobs)
				jobs = append(jobs, treeJob{graph: ki, dst: dst, stmtID: w.stmt.ID})
				treeArt = append(treeArt, nil)
			}
		}
	}
	var missingTrees []int
	for ji, job := range jobs {
		tkey := treeKey{key: keyOrder[job.graph], dst: job.dst}
		if ta, ok := c.trees[tkey]; ok && ta.gen == c.alphaGen {
			treeArt[ji] = ta
			continue
		}
		missingTrees = append(missingTrees, ji)
	}
	treeErrs := make([]error, len(missingTrees))
	parallelDo(len(missingTrees), c.opts.Workers, func(mi int) {
		ji := missingTrees[mi]
		tr, err := sinktree.TreeTo(graphs[jobs[ji].graph].g, jobs[ji].dst)
		if err != nil {
			treeErrs[mi] = err
			return
		}
		treeArt[ji] = &treeArtifact{tr: tr, gen: c.alphaGen}
	})
	for mi, err := range treeErrs {
		if err != nil {
			return nil, fmt.Errorf("merlin: statement %s: %w", jobs[missingTrees[mi]].stmtID, err)
		}
	}
	for _, ji := range missingTrees {
		c.trees[treeKey{key: keyOrder[jobs[ji].graph], dst: jobs[ji].dst}] = treeArt[ji]
		c.stats.TreeBuilds++
	}

	// Plan assembly, sequential in statement order.
	for _, w := range bestEff {
		ki := keyIdx[w.art.key]
		hasTags := graphs[ki].hasTags
		for _, dst := range w.art.dsts {
			tree := treeArt[jobIdx[treeKey{key: w.art.key, dst: dst}]].tr
			for _, src := range w.art.srcs {
				if src == dst {
					continue
				}
				plans = append(plans, codegen.Plan{
					ID: w.stmt.ID, Predicate: w.stmt.Predicate, Priority: w.priority,
					Alloc: run.alloc(w.stmt.ID), Classify: w.classify,
					SrcHost: src, DstHost: dst, Tree: tree,
				})
				// Tag-free expressions cannot yield placements; skip the
				// per-pair path decode entirely.
				if !hasTags {
					continue
				}
				if steps := tree.PathFrom(src); steps != nil {
					for _, pl := range logical.PlacementsOf(steps) {
						res.Placements[w.stmt.ID] = append(res.Placements[w.stmt.ID],
							PlacementChoice{Fn: pl.Fn, Location: c.t.Node(pl.Loc).Name})
					}
				}
			}
		}
	}
	res.Timing.Rateless = time.Since(rs)
	return plans, nil
}

// codegenFull runs phase 4: code generation (§3.4). The plans are lowered
// once into the target-neutral IR; ternary-consuming backends (the v2
// TernaryEmitter surface) get pre-expanded, budget-checked tables, and
// every other requested backend emits straight from the IR. The plan list
// and lowered program are retained so a later caps-only pass can
// regenerate just the cap-reachable sections. A budget violation surfaces
// as *codegen.TableOverflowError before any artifact is emitted, so
// recompile can attempt a budget-constrained re-placement.
func (c *Compiler) codegenFull(run *runState, plans []codegen.Plan) error {
	cs := time.Now()
	prog, err := codegen.Lower(c.t, plans)
	if err != nil {
		return err
	}
	prog.HostFns = c.hostFunctions(run)
	terns, err := c.ternaryStage(run, prog)
	if err != nil {
		return err
	}
	arts := make(map[string]codegen.Artifact, len(c.targets))
	for _, name := range c.targets {
		b, _ := codegen.Lookup(name) // presence checked by checkTargets before the pipeline ran
		var art codegen.Artifact
		if te, ok := b.(codegen.TernaryEmitter); ok {
			art, err = te.EmitTernary(c.t, prog, terns[name])
		} else {
			art, err = b.Emit(c.t, prog)
		}
		if err != nil {
			return fmt.Errorf("merlin: backend %s: %w", name, err)
		}
		arts[name] = art
	}
	c.installArtifacts(run, prog, arts)
	c.lastPlans, c.plansSorted = plans, false
	c.lastProg = prog
	c.stats.FullCodegens++
	run.res.Timing.Codegen = time.Since(cs)
	return nil
}

// ternaryStage expands the lowered program into ternary tables for the
// v2 targets — once per distinct expansion option set, shared across
// targets with the same table semantics — and checks the resolved
// per-device budgets against every expansion before anything is emitted.
// With budgets set but no ternary target, the default expansion is run
// purely for the check, so Options.TableBudgets constrains symbolic-only
// compiles too.
func (c *Compiler) ternaryStage(run *runState, prog *codegen.Program) (map[string]*codegen.TernaryTables, error) {
	run.budgets = c.tableBudgets()
	var v2 []string
	for _, name := range c.targets {
		if b, _ := codegen.Lookup(name); b != nil {
			if _, ok := b.(codegen.TernaryEmitter); ok {
				v2 = append(v2, name)
			}
		}
	}
	if len(v2) == 0 && len(run.budgets) == 0 {
		return nil, nil
	}
	byOpt := map[ternary.Options]*codegen.TernaryTables{}
	expand := func(opt ternary.Options) (*codegen.TernaryTables, error) {
		if tb, ok := byOpt[opt]; ok {
			return tb, nil
		}
		tb, err := codegen.ExpandProgram(c.t, prog, opt)
		if err != nil {
			return nil, err
		}
		byOpt[opt] = tb
		c.stats.TernaryEntries += tb.Total
		return tb, nil
	}
	out := make(map[string]*codegen.TernaryTables, len(v2))
	for _, name := range v2 {
		opt := ternary.Options{}
		if m, ok := codegen.BackendModel(name, topo.Switch); ok {
			opt.SupportsRange = m.SupportsRange
		}
		tb, err := expand(opt)
		if err != nil {
			return nil, fmt.Errorf("merlin: backend %s: %w", name, err)
		}
		out[name] = tb
	}
	if len(run.budgets) == 0 {
		return out, nil
	}
	if len(byOpt) == 0 {
		if _, err := expand(ternary.Options{}); err != nil {
			return nil, err
		}
	}
	// Record the immovable per-device entry load (entries of statements
	// with no provisioning request, which a re-placement cannot move),
	// conservatively maxed across expansions, then check every expansion
	// against the budget set.
	guaranteed := make(map[string]bool, len(run.requests))
	for _, r := range run.requests {
		guaranteed[r.ID] = true
	}
	run.ternNonG = map[topo.NodeID]int{}
	var overflows []codegen.TableOverflow
	target := ""
	for _, tb := range byOpt {
		nonG := map[topo.NodeID]int{}
		for _, e := range tb.Entries {
			if !guaranteed[e.Stmt] {
				nonG[e.Device]++
			}
		}
		for dev, n := range nonG {
			if n > run.ternNonG[dev] {
				run.ternNonG[dev] = n
			}
		}
		for dev, b := range run.budgets {
			if n := tb.PerDevice[dev]; n > b.limit {
				overflows = append(overflows, codegen.TableOverflow{
					Device: dev, Name: c.t.Node(dev).Name, Entries: n, Budget: b.limit,
				})
				if target == "" {
					target = b.target
				}
			}
		}
	}
	if len(overflows) > 0 {
		// Dedup (multiple expansions can flag one device; keep the worst)
		// and sort for a deterministic error.
		worst := map[topo.NodeID]codegen.TableOverflow{}
		for _, o := range overflows {
			if w, ok := worst[o.Device]; !ok || o.Entries > w.Entries {
				worst[o.Device] = o
			}
		}
		uniq := make([]codegen.TableOverflow, 0, len(worst))
		for _, o := range worst {
			uniq = append(uniq, o)
		}
		sort.Slice(uniq, func(i, j int) bool { return uniq[i].Device < uniq[j].Device })
		return nil, &codegen.TableOverflowError{Target: target, Overflows: uniq}
	}
	return out, nil
}

// tableBudgets resolves the per-device ternary budget set for this
// compiler's target list: each ternary-consuming backend's table model
// (per device class, with registration-time per-device overrides)
// contributes its MaxEntries, the lowest applicable limit winning; then
// Options.TableBudgets overrides per device name unconditionally.
func (c *Compiler) tableBudgets() map[topo.NodeID]deviceBudget {
	out := map[topo.NodeID]deviceBudget{}
	for _, name := range c.targets {
		b, _ := codegen.Lookup(name)
		if b == nil {
			continue
		}
		if _, ok := b.(codegen.TernaryEmitter); !ok {
			continue
		}
		for _, node := range c.t.Nodes() {
			m, ok := codegen.BackendModel(name, node.Kind)
			if !ok || m.MaxEntries <= 0 {
				continue
			}
			limit := m.MaxEntries
			if o, ok := codegen.DeviceBudget(name, node.Name); ok {
				limit = o
			}
			if cur, exists := out[node.ID]; !exists || limit < cur.limit {
				out[node.ID] = deviceBudget{limit: limit, target: name}
			}
		}
	}
	for name, limit := range c.opts.TableBudgets {
		if id, ok := c.t.Lookup(name); ok {
			out[id] = deviceBudget{limit: limit}
		}
	}
	return out
}

// replaceForBudgets re-solves the guaranteed placement with the residual
// per-device budgets (limit minus the immovable best-effort load) as
// placement constraints in the provisioning MIP, each request weighted
// by its classifier's expansion estimate. On success the new solution is
// committed as the provisioning artifact, so subsequent incremental
// passes reuse the budget-respecting placement.
func (c *Compiler) replaceForBudgets(run *runState) error {
	budgets := make(map[topo.NodeID]float64, len(run.budgets))
	for v, b := range run.budgets {
		residual := b.limit - run.ternNonG[v]
		if residual < 0 {
			return fmt.Errorf("merlin: device %s overflows on best-effort entries alone", c.t.Node(v).Name)
		}
		budgets[v] = float64(residual)
	}
	cost := make(map[string]float64, len(run.requests))
	for _, r := range run.requests {
		w := 1
		if s, ok := run.work.Statement(r.ID); ok {
			if est, err := ternary.Estimate(codegen.ResolvePred(c.ids, s.Predicate), ternary.Options{}); err == nil && est > w {
				w = est
			}
		}
		cost[r.ID] = float64(w)
	}
	sol, err := provision.Solve(c.t, run.requests, c.opts.Heuristic, provision.Params{
		MIP: c.opts.MIP, Workers: c.opts.Workers, LegacyModel: c.opts.LegacyModel,
		Budgets: budgets, EntryCost: cost,
	})
	if err != nil {
		return err
	}
	art := &provArtifact{
		ids:       make([]string, len(run.requests)),
		graphs:    make([]*logical.Graph, len(run.requests)),
		rates:     make([]float64, len(run.requests)),
		heuristic: c.opts.Heuristic,
		greedy:    c.opts.Greedy,
		res:       sol,
	}
	for i, r := range run.requests {
		art.ids[i], art.graphs[i], art.rates[i] = r.ID, r.Graph, r.MinRate
	}
	c.prov = art
	run.sol = sol
	run.provReused = false
	c.stats.Solves++
	return nil
}

// checkTargets validates the resolved target list against the registry.
// It runs before the expensive pipeline stages, so a typo'd target name
// fails in microseconds instead of after a multi-second provisioning
// solve. (The registry only grows, so a name that passes once passes
// forever.)
func (c *Compiler) checkTargets() error {
	for _, name := range c.targets {
		if _, ok := codegen.Lookup(name); !ok {
			return fmt.Errorf("merlin: unknown codegen target %q (registered: %s)",
				name, strings.Join(codegen.Names(), ", "))
		}
	}
	return nil
}

// installArtifacts wires a pass's emitted artifacts into the result:
// per-backend map, legacy aggregate Output, and the host backend's
// interpreter programs.
func (c *Compiler) installArtifacts(run *runState, prog *codegen.Program, arts map[string]codegen.Artifact) {
	run.res.IR = prog
	run.res.Outputs = arts
	run.res.Output = codegen.AssembleOutput(arts)
	if ha, ok := arts[codegen.TargetHost].(*codegen.HostArtifact); ok {
		run.res.Programs = ha.Programs
	}
}

// codegenPatch is the caps-only fast path (§4's bandwidth re-allocation
// without recompilation), routed per backend: the previous pass's IR is
// shallow-copied with only its cap-reachable sections (caps, host
// functions) regenerated, the tc and host backends re-emit from it, and
// every other target's artifact — forwarding rules, queues, Click
// configurations, P4 table entries, tags — is shared outright with the
// previous result, so its diff is empty by pointer identity.
func (c *Compiler) codegenPatch(run *runState) {
	cs := time.Now()
	res := run.res
	prog := *c.lastProg // shallow: rules/queues/filters/fns/tags shared
	prog.Caps = c.regenerateCaps(run)
	prog.HostFns = c.hostFunctions(run)
	arts := make(map[string]codegen.Artifact, len(c.targets))
	for _, name := range c.targets {
		switch name {
		case codegen.TargetTC, codegen.TargetHost:
			b, _ := codegen.Lookup(name) // presence checked by checkTargets
			art, err := b.Emit(c.t, &prog)
			if err != nil {
				// Unreachable for the built-ins; if it ever happens, a
				// stale artifact (empty diff) is safe where an absent one
				// would diff as "remove every cap".
				arts[name] = c.last.Outputs[name]
				continue
			}
			if tcArt, ok := art.(*codegen.TCArtifact); ok {
				if lastTC, ok := c.last.Outputs[codegen.TargetTC].(*codegen.TCArtifact); ok {
					// The filter section cannot change on a caps-only
					// pass: share the slice so the diff's aliasing fast
					// path sees it.
					tcArt.IPTables = lastTC.IPTables
				}
			}
			arts[name] = art
		default:
			arts[name] = c.last.Outputs[name]
		}
	}
	c.installArtifacts(run, &prog, arts)
	res.Paths = c.last.Paths
	res.Placements = c.last.Placements
	c.stats.PatchedCodegens++
	res.Timing.Codegen = time.Since(cs)
}

// patchableCodegen reports whether this pass may reuse the previous
// output's rules: the statement cache is untouched since the last
// successful pass (c.tainted covers both this pass's rebuilds and a
// previous failed pass's), the statement set and order are unchanged, no
// guarantee moved (the provisioning solution was served from cache), and
// no Min rate changed — so only caps (tc commands, end-host programs)
// can differ.
func (c *Compiler) patchableCodegen(run *runState) bool {
	if c.last == nil || c.last.Output == nil || c.tainted || run.rebuilt {
		return false
	}
	if len(c.lastOrder) != len(run.work.Statements) {
		return false
	}
	// Always compare against the last successful order — run.aliased only
	// certifies identity with the slice the statement cache was written
	// from, which after a failed pass is not the last success.
	for i, s := range run.work.Statements {
		if c.lastOrder[i] != s.ID {
			return false
		}
	}
	// Min deltas: the allocation maps only hold formula-mentioned
	// statements, so comparing them beats walking every statement.
	for id, a := range run.allocs {
		old, ok := c.allocs[id]
		if !ok {
			old = policy.Unconstrained
		}
		if old.Min != a.Min {
			return false
		}
	}
	for id, old := range c.allocs {
		if _, ok := run.allocs[id]; !ok && old.Min != 0 {
			return false
		}
	}
	hadRequests := c.prov != nil && len(c.prov.ids) > 0
	if hadRequests && !run.provReused {
		return false
	}
	return true
}

// regenerateCaps re-lowers the rate-cap section of the IR exactly as
// Lower would — plans stably sorted by descending priority, one cap per
// plan with a finite nonzero maximum — from the retained plan list, with
// each plan's cap read from the current allocations.
func (c *Compiler) regenerateCaps(run *runState) []codegen.CapSpec {
	if !c.plansSorted {
		sort.SliceStable(c.lastPlans, func(i, j int) bool {
			return c.lastPlans[i].Priority > c.lastPlans[j].Priority
		})
		c.plansSorted = true
	}
	var caps []codegen.CapSpec
	for i := range c.lastPlans {
		p := &c.lastPlans[i]
		if capRate := run.alloc(p.ID).Max; codegen.CapApplies(capRate) {
			caps = append(caps, codegen.CapSpec{Host: p.SrcHost, Stmt: p.ID, MaxBps: capRate})
		}
	}
	return caps
}

// hostFunctions lowers the end-host function section of the IR: rate
// limits for capped statements, one per source host, which the host
// backend renders into interpreter programs. It uses the endpoints
// derived (and validated) in the statement stage, so an endpoint error
// aborts compilation there instead of being silently swallowed here
// (which used to lose end-host programs for statements with caps).
func (c *Compiler) hostFunctions(run *runState) []codegen.HostFnSpec {
	var fns []codegen.HostFnSpec
	for idx, s := range run.work.Statements {
		a, ok := run.allocs[s.ID]
		if !ok || a.Max == 0 || math.IsNaN(a.Max) {
			continue
		}
		if a.Max > 0 && !math.IsInf(a.Max, 1) {
			for _, src := range run.arts[idx].srcs {
				fns = append(fns, codegen.HostFnSpec{
					Host: src, Stmt: s.ID, Pred: s.Predicate, RateBps: a.Max,
				})
			}
		}
	}
	return fns
}

// stmtFingerprint identifies a statement's compilation-relevant inputs:
// the predicate (endpoints, classification) and the raw path expression
// (resolved expression and product graphs). Artifacts whose fingerprint
// matches are reused across compiles.
func stmtFingerprint(s policy.Statement) string {
	return pred.Format(s.Predicate) + "\x00" + s.Path.String()
}

// resolveExpr substitutes function placements into the path expression and
// rewrites host-identity symbols (MACs, IPs) into topology node names.
// It cannot fail: unplaced function symbols survive as-is and surface as
// unsatisfiable path constraints during graph construction.
func resolveExpr(e regex.Expr, place Placement, ids *topo.IdentityTable) regex.Expr {
	if len(place) > 0 {
		e = regex.Substitute(e, place)
	}
	// The rewrite reports whether anything changed so untouched subtrees
	// (the common case: host identities appear in predicates, not paths)
	// are returned as-is instead of reallocated.
	var rewrite func(regex.Expr) (regex.Expr, bool)
	rewrite = func(e regex.Expr) (regex.Expr, bool) {
		switch x := e.(type) {
		case regex.Sym:
			if node, ok := ids.Resolve(x.Name); ok {
				if name := nodeName(ids, node, x.Name); name != x.Name {
					return regex.Sym{Name: name}, true
				}
			}
			return x, false
		case regex.Concat:
			l, cl := rewrite(x.L)
			r, cr := rewrite(x.R)
			if cl || cr {
				return regex.Concat{L: l, R: r}, true
			}
			return x, false
		case regex.Alt:
			l, cl := rewrite(x.L)
			r, cr := rewrite(x.R)
			if cl || cr {
				return regex.Alt{L: l, R: r}, true
			}
			return x, false
		case regex.Star:
			if sub, changed := rewrite(x.X); changed {
				return regex.Star{X: sub}, true
			}
			return x, false
		case regex.Not:
			if sub, changed := rewrite(x.X); changed {
				return regex.Not{X: sub}, true
			}
			return x, false
		default:
			return e, false
		}
	}
	out, _ := rewrite(e)
	return out
}

func nodeName(ids *topo.IdentityTable, node topo.NodeID, fallback string) string {
	if ident, ok := ids.Of(node); ok {
		return ident.Name
	}
	return fallback
}

// endpoints derives the source and destination host sets a predicate pins
// down. Cubes lacking a source (destination) atom widen the set to all
// hosts. hosts is the topology's host list, computed once per compile and
// shared (callers must not mutate returned slices, which may alias it).
func endpoints(p pred.Pred, t *Topology, ids *topo.IdentityTable, hosts []NodeID) (srcs, dsts []NodeID, err error) {
	cubes, err := pred.PositiveCubes(p)
	if err != nil {
		// Expansion can blow up on heavily-negated predicates (the
		// totality default). Such predicates pin no endpoints anyway.
		return hosts, hosts, nil
	}
	var srcPin, dstPin []NodeID // small: typically one node each
	srcAll, dstAll := false, false
	appendPin := func(pins []NodeID, n NodeID) []NodeID {
		for _, p := range pins {
			if p == n {
				return pins
			}
		}
		return append(pins, n)
	}
	for _, cube := range cubes {
		cubeSrc, cubeDst := NodeID(-1), NodeID(-1)
		for _, test := range cube {
			switch test.Field {
			case "eth.src", "ip.src":
				if n, ok := ids.Resolve(test.Value); ok {
					cubeSrc = n
				}
			case "eth.dst", "ip.dst":
				if n, ok := ids.Resolve(test.Value); ok {
					cubeDst = n
				}
			}
		}
		if cubeSrc >= 0 {
			srcPin = appendPin(srcPin, cubeSrc)
		} else {
			srcAll = true
		}
		if cubeDst >= 0 {
			dstPin = appendPin(dstPin, cubeDst)
		} else {
			dstAll = true
		}
	}
	collect := func(pins []NodeID, all bool) []NodeID {
		if all || len(pins) == 0 {
			return hosts
		}
		// Output in host order, matching the pinned set.
		out := make([]NodeID, 0, len(pins))
		for _, h := range hosts {
			for _, p := range pins {
				if p == h {
					out = append(out, h)
					break
				}
			}
		}
		return out
	}
	return collect(srcPin, srcAll), collect(dstPin, dstAll), nil
}

// pureConnectivity reports whether the predicate only constrains the
// source and destination identities, enabling the compact ByDestination
// classifier.
func pureConnectivity(p pred.Pred) bool {
	return pred.OnlyFields(p, func(f pred.Field) bool {
		switch f {
		case "eth.src", "eth.dst", "ip.src", "ip.dst":
			return true
		}
		return false
	})
}

func stepNames(t *Topology, steps []logical.Step) []string {
	locs := logical.Locations(steps)
	out := make([]string, len(locs))
	for i, l := range locs {
		out[i] = t.Node(l).Name
	}
	return out
}

// DescribePath renders a compiled path for human output.
func DescribePath(names []string) string { return strings.Join(names, " → ") }
