package merlin

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"merlin/internal/codegen"
	"merlin/internal/interp"
	"merlin/internal/logical"
	"merlin/internal/mip"
	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/provision"
	"merlin/internal/regex"
	"merlin/internal/sinktree"
	"merlin/internal/topo"
)

// Options tune compilation.
type Options struct {
	// Heuristic selects the path-selection objective for guaranteed
	// traffic (default WeightedShortestPath).
	Heuristic Heuristic
	// Split overrides the §3.1 localization scheme (default equal split).
	Split policy.SplitFunc
	// MIP passes solver limits through to branch and bound.
	MIP mip.Params
	// SkipPreprocess compiles the policy as-is; by default the §2.1
	// pre-processor rewrites overlapping predicates to first-match
	// semantics and appends a best-effort default statement for totality.
	SkipPreprocess bool
	// NoDefault suppresses only the totality default.
	NoDefault bool
	// Greedy provisions guarantees with the sequential shortest-path
	// allocator instead of the exact MIP — the scalable approximation
	// the ablation benches compare against.
	Greedy bool
	// Workers bounds the worker pool the compiler fans per-statement
	// product-graph builds and per-destination sink trees out over.
	// Zero means runtime.NumCPU(); 1 forces the sequential path. Output
	// is identical for every pool size.
	Workers int
}

// parallelDo runs f(0..n-1) over a bounded worker pool. Each index is
// processed exactly once; f must only write to per-index state.
func parallelDo(n, workers int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// Timing breaks down where compilation time went — the Table 7 columns.
type Timing struct {
	Preprocess time.Duration
	// GraphBuild is the wall-clock of the whole per-statement phase-1
	// region: path-expression resolution, endpoint derivation, and the
	// (parallel) anchored product-graph builds. Earlier versions counted
	// only the summed graph-build time, so it is nonzero even for
	// policies with no guarantees.
	GraphBuild  time.Duration
	LPConstruct time.Duration
	LPSolve     time.Duration
	Rateless    time.Duration
	Codegen     time.Duration
}

// Total sums all phases.
func (t Timing) Total() time.Duration {
	return t.Preprocess + t.GraphBuild + t.LPConstruct + t.LPSolve + t.Rateless + t.Codegen
}

// Result is the compiler's output.
type Result struct {
	// Policy is the preprocessed policy that was compiled.
	Policy *Policy
	// Allocations are the localized per-statement rates.
	Allocations map[string]Alloc
	// Paths lists, per guaranteed statement, the chosen location names.
	Paths map[string][]string
	// Placements lists, per statement, the chosen function placements.
	Placements map[string][]PlacementChoice
	// Output holds the generated device configuration.
	Output *codegen.Output
	// Programs holds per-host end-host interpreter programs enforcing
	// caps and payload filters (the §3.4 kernel-module backend).
	Programs map[NodeID]*interp.Program
	// Timing breaks down compile phases.
	Timing Timing
}

// PlacementChoice records where a function was placed.
type PlacementChoice struct {
	Fn       string
	Location string
}

// Counts reports the Fig. 4 instruction totals.
func (r *Result) Counts() codegen.Counts { return r.Output.Counts() }

// Compile runs the full §3 pipeline: preprocess, localize, build logical
// topologies, provision guaranteed traffic via the MIP, provision
// best-effort traffic via sink trees, and generate device configurations.
func Compile(pol *Policy, t *Topology, place Placement, opts Options) (*Result, error) {
	res := &Result{
		Paths:      map[string][]string{},
		Placements: map[string][]PlacementChoice{},
		Programs:   map[NodeID]*interp.Program{},
	}
	// Phase 0: preprocess + localize. First-match semantics for
	// overlapping predicates is realized through rule priorities rather
	// than the MakeDisjoint rewrite: the rewrite conjoins each statement
	// with the negation of all earlier ones, which makes classifier
	// expansion exponential on large policies, while priorities encode
	// the same semantics for free.
	start := time.Now()
	work := pol
	if !opts.SkipPreprocess {
		var err error
		work, err = policy.Preprocess(pol, policy.PreprocessOptions{
			AddDefault: !opts.NoDefault,
		})
		if err != nil {
			return nil, err
		}
	}
	res.Policy = work
	allocs, err := policy.Localize(work.Formula, opts.Split)
	if err != nil {
		return nil, err
	}
	res.Allocations = allocs
	res.Timing.Preprocess = time.Since(start)

	ids := t.Identities()
	hosts := t.Hosts()
	alpha := logical.Alphabet(t)
	alloc := func(id string) Alloc {
		if a, ok := allocs[id]; ok {
			return a
		}
		return policy.Unconstrained
	}

	// Phase 1: build per-statement artifacts. Endpoint derivation and the
	// anchored product-graph builds are independent per statement, so they
	// fan out over a bounded worker pool; results merge in statement order
	// so the output is identical for every pool size. Path expressions are
	// resolved (and their symbols interned into the shared alphabet) up
	// front because interning mutates the alphabet.
	type beWork struct {
		stmt     policy.Statement
		expr     regex.Expr
		key      string
		srcs     []NodeID
		dsts     []NodeID
		classify codegen.Classify
		priority int
	}
	type stmtPrep struct {
		expr       regex.Expr
		srcs, dsts []NodeID
		guaranteed bool
		graph      *logical.Graph
		err        error
	}
	var (
		requests []provision.Request
		reqStmt  = map[string]int{} // request ID -> statement priority
		reqPrep  []int              // request order -> statement index
		bestEff  []beWork
	)
	gs := time.Now()
	n := len(work.Statements)
	prep := make([]stmtPrep, n)
	for idx, s := range work.Statements {
		expr, err := resolveExpr(s.Path, place, ids)
		if err != nil {
			return nil, fmt.Errorf("merlin: statement %s: %w", s.ID, err)
		}
		for _, sym := range regex.Symbols(expr) {
			alpha.Intern(sym)
		}
		prep[idx].expr = expr
	}
	parallelDo(n, opts.Workers, func(idx int) {
		s := work.Statements[idx]
		p := &prep[idx]
		srcs, dsts, err := endpoints(s.Predicate, t, ids, hosts)
		if err != nil {
			p.err = fmt.Errorf("merlin: statement %s: %w", s.ID, err)
			return
		}
		p.srcs, p.dsts = srcs, dsts
		if alloc(s.ID).Min <= 0 {
			return
		}
		p.guaranteed = true
		if len(srcs) != 1 || len(dsts) != 1 {
			p.err = fmt.Errorf("merlin: statement %s: bandwidth guarantees need a unique source and destination", s.ID)
			return
		}
		p.graph, p.err = logical.BuildAnchored(t, p.expr, alpha,
			t.Node(srcs[0]).Name, t.Node(dsts[0]).Name)
	})
	for idx, s := range work.Statements {
		p := &prep[idx]
		if p.err != nil {
			return nil, p.err
		}
		priority := n - idx
		if p.guaranteed {
			requests = append(requests, provision.Request{ID: s.ID, Graph: p.graph, MinRate: alloc(s.ID).Min})
			reqStmt[s.ID] = priority
			reqPrep = append(reqPrep, idx)
			continue
		}
		classify := codegen.ByPredicate
		if pureConnectivity(s.Predicate) {
			classify = codegen.ByDestination
		}
		bestEff = append(bestEff, beWork{
			stmt: s, expr: p.expr, key: regex.Key(p.expr), srcs: p.srcs, dsts: p.dsts,
			classify: classify, priority: priority,
		})
	}
	res.Timing.GraphBuild = time.Since(gs)

	var plans []codegen.Plan

	// Phase 2: guaranteed traffic through the MIP (§3.2), or the greedy
	// baseline when requested.
	if len(requests) > 0 {
		var sol *provision.Result
		var err error
		if opts.Greedy {
			sol, err = provision.Greedy(t, requests)
		} else {
			sol, err = provision.Solve(t, requests, opts.Heuristic, provision.Params{MIP: opts.MIP})
		}
		if err != nil {
			return nil, err
		}
		res.Timing.LPConstruct = sol.ConstructTime
		res.Timing.LPSolve = sol.SolveTime
		for ri, r := range requests {
			steps := sol.Paths[r.ID]
			stmt, _ := work.Statement(r.ID)
			srcs, dsts := prep[reqPrep[ri]].srcs, prep[reqPrep[ri]].dsts
			plans = append(plans, codegen.Plan{
				ID: r.ID, Predicate: stmt.Predicate, Priority: reqStmt[r.ID],
				Alloc: alloc(r.ID), Classify: codegen.ByPredicate,
				SrcHost: srcs[0], DstHost: dsts[0], Path: steps,
			})
			res.Paths[r.ID] = stepNames(t, steps)
			for _, pl := range logical.PlacementsOf(steps) {
				res.Placements[r.ID] = append(res.Placements[r.ID],
					PlacementChoice{Fn: pl.Fn, Location: t.Node(pl.Loc).Name})
			}
		}
	}

	// Phase 3: best-effort sink trees (§3.3). Product graphs are memoized
	// per distinct path expression and sink trees per (expression,
	// destination) pair; both build in parallel over the worker pool.
	// Plan assembly stays sequential in statement order, so the generated
	// configuration is byte-identical to the sequential compiler's.
	rs := time.Now()
	var (
		keyOrder []string
		keyExpr  []regex.Expr
		keyIdx   = map[string]int{}
	)
	for _, w := range bestEff {
		if _, ok := keyIdx[w.key]; !ok {
			keyIdx[w.key] = len(keyOrder)
			keyOrder = append(keyOrder, w.key)
			keyExpr = append(keyExpr, w.expr)
		}
	}
	graphs := make([]*logical.Graph, len(keyOrder))
	graphErrs := make([]error, len(keyOrder))
	keyHasTags := make([]bool, len(keyOrder))
	for i, e := range keyExpr {
		keyHasTags[i] = regex.HasTags(e)
	}
	parallelDo(len(keyOrder), opts.Workers, func(i int) {
		graphs[i], graphErrs[i] = logical.BuildMinimized(t, keyExpr[i], alpha)
	})
	// First-seen key order is statement order, so reporting the first
	// failed key matches the sequential compiler's error.
	for _, err := range graphErrs {
		if err != nil {
			return nil, err
		}
	}
	type treeJob struct {
		graph  int // index into graphs
		dst    NodeID
		stmtID string // first statement needing the tree, for errors
	}
	// Pair keys pack (expression index, destination) into one integer.
	pairKey := func(key int, dst NodeID) int64 { return int64(key)<<32 | int64(uint32(dst)) }
	var (
		jobs    []treeJob
		pairIdx = map[int64]int{}
	)
	for _, w := range bestEff {
		ki := keyIdx[w.key]
		for _, dst := range w.dsts {
			tkey := pairKey(ki, dst)
			if _, ok := pairIdx[tkey]; !ok {
				pairIdx[tkey] = len(jobs)
				jobs = append(jobs, treeJob{graph: ki, dst: dst, stmtID: w.stmt.ID})
			}
		}
	}
	trees := make([]*sinktree.Tree, len(jobs))
	treeErrs := make([]error, len(jobs))
	parallelDo(len(jobs), opts.Workers, func(i int) {
		trees[i], treeErrs[i] = sinktree.TreeTo(graphs[jobs[i].graph], jobs[i].dst)
	})
	for i, err := range treeErrs {
		if err != nil {
			return nil, fmt.Errorf("merlin: statement %s: %w", jobs[i].stmtID, err)
		}
	}
	for _, w := range bestEff {
		ki := keyIdx[w.key]
		for _, dst := range w.dsts {
			tree := trees[pairIdx[pairKey(ki, dst)]]
			for _, src := range w.srcs {
				if src == dst {
					continue
				}
				plans = append(plans, codegen.Plan{
					ID: w.stmt.ID, Predicate: w.stmt.Predicate, Priority: w.priority,
					Alloc: alloc(w.stmt.ID), Classify: w.classify,
					SrcHost: src, DstHost: dst, Tree: tree,
				})
				// Tag-free expressions cannot yield placements; skip the
				// per-pair path decode entirely.
				if !keyHasTags[ki] {
					continue
				}
				if steps := tree.PathFrom(src); steps != nil {
					for _, pl := range logical.PlacementsOf(steps) {
						res.Placements[w.stmt.ID] = append(res.Placements[w.stmt.ID],
							PlacementChoice{Fn: pl.Fn, Location: t.Node(pl.Loc).Name})
					}
				}
			}
		}
	}
	res.Timing.Rateless = time.Since(rs)

	// Phase 4: code generation (§3.4).
	cs := time.Now()
	out, err := codegen.Generate(t, plans)
	if err != nil {
		return nil, err
	}
	res.Output = out
	res.buildPrograms(t, work, allocs, ids, hosts)
	res.Timing.Codegen = time.Since(cs)
	return res, nil
}

// buildPrograms emits end-host interpreter programs: rate limits for caps
// and drops for payload-matching filters iptables cannot express.
func (r *Result) buildPrograms(t *Topology, pol *Policy, allocs map[string]Alloc, ids *topo.IdentityTable, hosts []NodeID) {
	for _, s := range pol.Statements {
		a, ok := allocs[s.ID]
		if !ok || a.Max == 0 || math.IsNaN(a.Max) {
			continue
		}
		if a.Max > 0 && !math.IsInf(a.Max, 1) {
			srcs, _, err := endpoints(s.Predicate, t, ids, hosts)
			if err != nil {
				continue
			}
			for _, src := range srcs {
				prog := r.Programs[src]
				if prog == nil {
					prog = &interp.Program{Name: t.Node(src).Name}
					r.Programs[src] = prog
				}
				prog.Clauses = append(prog.Clauses, interp.Clause{
					Pred: s.Predicate, Op: interp.OpRateLimit, RateBps: a.Max,
				})
			}
		}
	}
}

// resolveExpr substitutes function placements into the path expression and
// rewrites host-identity symbols (MACs, IPs) into topology node names.
func resolveExpr(e regex.Expr, place Placement, ids *topo.IdentityTable) (regex.Expr, error) {
	if len(place) > 0 {
		e = regex.Substitute(e, place)
	}
	// The rewrite reports whether anything changed so untouched subtrees
	// (the common case: host identities appear in predicates, not paths)
	// are returned as-is instead of reallocated.
	var rewrite func(regex.Expr) (regex.Expr, bool)
	rewrite = func(e regex.Expr) (regex.Expr, bool) {
		switch x := e.(type) {
		case regex.Sym:
			if node, ok := ids.Resolve(x.Name); ok {
				if name := nodeName(ids, node, x.Name); name != x.Name {
					return regex.Sym{Name: name}, true
				}
			}
			return x, false
		case regex.Concat:
			l, cl := rewrite(x.L)
			r, cr := rewrite(x.R)
			if cl || cr {
				return regex.Concat{L: l, R: r}, true
			}
			return x, false
		case regex.Alt:
			l, cl := rewrite(x.L)
			r, cr := rewrite(x.R)
			if cl || cr {
				return regex.Alt{L: l, R: r}, true
			}
			return x, false
		case regex.Star:
			if sub, changed := rewrite(x.X); changed {
				return regex.Star{X: sub}, true
			}
			return x, false
		case regex.Not:
			if sub, changed := rewrite(x.X); changed {
				return regex.Not{X: sub}, true
			}
			return x, false
		default:
			return e, false
		}
	}
	out, _ := rewrite(e)
	return out, nil
}

func nodeName(ids *topo.IdentityTable, node topo.NodeID, fallback string) string {
	if ident, ok := ids.Of(node); ok {
		return ident.Name
	}
	return fallback
}

// endpoints derives the source and destination host sets a predicate pins
// down. Cubes lacking a source (destination) atom widen the set to all
// hosts. hosts is the topology's host list, computed once per compile and
// shared (callers must not mutate returned slices, which may alias it).
func endpoints(p pred.Pred, t *Topology, ids *topo.IdentityTable, hosts []NodeID) (srcs, dsts []NodeID, err error) {
	cubes, err := pred.PositiveCubes(p)
	if err != nil {
		// Expansion can blow up on heavily-negated predicates (the
		// totality default). Such predicates pin no endpoints anyway.
		return hosts, hosts, nil
	}
	var srcPin, dstPin []NodeID // small: typically one node each
	srcAll, dstAll := false, false
	appendPin := func(pins []NodeID, n NodeID) []NodeID {
		for _, p := range pins {
			if p == n {
				return pins
			}
		}
		return append(pins, n)
	}
	for _, cube := range cubes {
		cubeSrc, cubeDst := NodeID(-1), NodeID(-1)
		for _, test := range cube {
			switch test.Field {
			case "eth.src", "ip.src":
				if n, ok := ids.Resolve(test.Value); ok {
					cubeSrc = n
				}
			case "eth.dst", "ip.dst":
				if n, ok := ids.Resolve(test.Value); ok {
					cubeDst = n
				}
			}
		}
		if cubeSrc >= 0 {
			srcPin = appendPin(srcPin, cubeSrc)
		} else {
			srcAll = true
		}
		if cubeDst >= 0 {
			dstPin = appendPin(dstPin, cubeDst)
		} else {
			dstAll = true
		}
	}
	collect := func(pins []NodeID, all bool) []NodeID {
		if all || len(pins) == 0 {
			return hosts
		}
		// Output in host order, matching the pinned set.
		out := make([]NodeID, 0, len(pins))
		for _, h := range hosts {
			for _, p := range pins {
				if p == h {
					out = append(out, h)
					break
				}
			}
		}
		return out
	}
	return collect(srcPin, srcAll), collect(dstPin, dstAll), nil
}

// pureConnectivity reports whether the predicate only constrains the
// source and destination identities, enabling the compact ByDestination
// classifier.
func pureConnectivity(p pred.Pred) bool {
	return pred.OnlyFields(p, func(f pred.Field) bool {
		switch f {
		case "eth.src", "eth.dst", "ip.src", "ip.dst":
			return true
		}
		return false
	})
}

func stepNames(t *Topology, steps []logical.Step) []string {
	locs := logical.Locations(steps)
	out := make([]string, len(locs))
	for i, l := range locs {
		out[i] = t.Node(l).Name
	}
	return out
}

// DescribePath renders a compiled path for human output.
func DescribePath(names []string) string { return strings.Join(names, " → ") }
