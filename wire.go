package merlin

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Journal record kinds merlind writes (journal.Record.Kind). The payload
// formats are part of the on-disk contract: a journal written by one
// build must replay on the next.
const (
	// RecPolicy is a full policy in canonical concrete syntax — the
	// genesis record, and every policy a negotiation hub commits (ticks
	// and accepted proposals), journaled as the complete post-commit
	// policy because hub session state is volatile across restarts.
	RecPolicy byte = 1
	// RecDelta is a JSON WireDelta.
	RecDelta byte = 2
	// RecTopo is a JSON array of WireTopoEvents — one applied batch.
	RecTopo byte = 3
)

// WireDelta is the JSON form of a policy Delta — what merlind accepts
// over HTTP and journals. Statements travel as concrete syntax so the
// journal stays readable and build-independent.
type WireDelta struct {
	// Add lists statements to append, each in concrete syntax
	// ("id : (pred) -> path", optionally with an "at min(...)" rate
	// clause, which conjoins into the formula as in a full policy).
	Add []string `json:"add,omitempty"`
	// Remove lists statement IDs to drop.
	Remove []string `json:"remove,omitempty"`
	// Formula, if non-empty, replaces the bandwidth formula (concrete
	// syntax; "true" clears it).
	Formula string `json:"formula,omitempty"`
	// Place, if non-nil, replaces the function placement table.
	Place Placement `json:"place,omitempty"`
}

// WireTopoEvent is the JSON form of a TopoEvent.
type WireTopoEvent struct {
	// Kind is the TopoEventKind name: "link-down", "link-up",
	// "switch-down", "switch-up", or "set-capacity".
	Kind string `json:"kind"`
	// A and B name the cable endpoints (A alone for switch events).
	A string `json:"a"`
	B string `json:"b,omitempty"`
	// CapacityBps is the new per-direction capacity for "set-capacity".
	CapacityBps float64 `json:"capacity_bps,omitempty"`
}

// Event converts the wire form to a TopoEvent.
func (w WireTopoEvent) Event() (TopoEvent, error) {
	kinds := map[string]TopoEventKind{
		LinkDown.String():    LinkDown,
		LinkUp.String():      LinkUp,
		SwitchDown.String():  SwitchDown,
		SwitchUp.String():    SwitchUp,
		SetCapacity.String(): SetCapacity,
	}
	k, ok := kinds[w.Kind]
	if !ok {
		return TopoEvent{}, fmt.Errorf("merlin: unknown topology event kind %q", w.Kind)
	}
	return TopoEvent{Kind: k, A: w.A, B: w.B, Capacity: w.CapacityBps}, nil
}

// WireTopoEvents converts a batch of TopoEvents to wire form.
func WireTopoEvents(events []TopoEvent) []WireTopoEvent {
	out := make([]WireTopoEvent, len(events))
	for i, ev := range events {
		out[i] = WireTopoEvent{Kind: ev.Kind.String(), A: ev.A, B: ev.B, CapacityBps: ev.Capacity}
	}
	return out
}

// DecodeDelta materializes a WireDelta against the compiler's current
// policy: added statements and the replacement formula are parsed in the
// context of the kept statements (so formulas may reference existing
// IDs, and "at" rate clauses on added statements conjoin correctly),
// yielding a Delta for Update. It does not apply anything — Update still
// validates (duplicate adds, unknown removes) at application time.
func (c *Compiler) DecodeDelta(w WireDelta) (Delta, error) {
	c.mu.Lock()
	src := c.source
	c.mu.Unlock()
	if src == nil {
		return Delta{}, fmt.Errorf("merlin: Compiler.DecodeDelta called before the first Compile")
	}

	removed := make(map[string]bool, len(w.Remove))
	for _, id := range w.Remove {
		removed[id] = true
	}
	current := make(map[string]bool, len(src.Statements))
	var stmts []string
	for _, s := range src.Statements {
		current[s.ID] = true
		if !removed[s.ID] {
			stmts = append(stmts, s.String())
		}
	}
	stmts = append(stmts, w.Add...)

	var sb strings.Builder
	sb.WriteString("[")
	sb.WriteString(strings.Join(stmts, ";\n "))
	sb.WriteString("]")
	formulaChanged := w.Formula != ""
	if formulaChanged {
		sb.WriteString(",\n")
		sb.WriteString(w.Formula)
	} else if src.Formula != nil {
		if f := src.Formula.String(); f != "true" {
			sb.WriteString(",\n")
			sb.WriteString(f)
		}
	}
	pol, err := ParsePolicy(sb.String(), c.t)
	if err != nil {
		return Delta{}, fmt.Errorf("merlin: delta does not parse against the current policy: %w", err)
	}

	d := Delta{Remove: w.Remove, Place: w.Place}
	for _, s := range pol.Statements {
		if !current[s.ID] {
			d.Add = append(d.Add, s)
		}
	}
	if len(d.Add) != len(w.Add) {
		return Delta{}, fmt.Errorf("merlin: delta adds %d statements but %d parsed as new — an added ID collides with a kept statement", len(w.Add), len(d.Add))
	}
	// "at" clauses on added statements conjoin into the parsed formula,
	// so the formula also changes when any add carried one. Compare
	// canonical renderings; identical formulas stay nil to preserve
	// Update's identity fast path.
	if !formulaChanged {
		oldF := "true"
		if src.Formula != nil {
			oldF = src.Formula.String()
		}
		formulaChanged = pol.Formula != nil && pol.Formula.String() != oldF
	}
	if formulaChanged {
		d.Formula = pol.Formula
	}
	return d, nil
}

// ApplyJournalRecord replays one journal record into the compiler —
// the restart path merlind drives after loading a snapshot. Topology
// records tolerate a failing recompile exactly as the live path does
// (the events are facts and have stuck; the next successful record
// converges the compiled state), so replaying a journal reproduces the
// live compiler's state even across compile failures it survived.
func ApplyJournalRecord(c *Compiler, kind byte, data []byte) error {
	switch kind {
	case RecPolicy:
		pol, err := ParsePolicy(string(data), c.t)
		if err != nil {
			return fmt.Errorf("merlin: replay policy record: %w", err)
		}
		if _, err := c.Compile(pol); err != nil {
			return fmt.Errorf("merlin: replay policy record: %w", err)
		}
	case RecDelta:
		var w WireDelta
		if err := json.Unmarshal(data, &w); err != nil {
			return fmt.Errorf("merlin: replay delta record: %w", err)
		}
		d, err := c.DecodeDelta(w)
		if err != nil {
			return err
		}
		if _, err := c.Update(d); err != nil {
			return fmt.Errorf("merlin: replay delta record: %w", err)
		}
	case RecTopo:
		var ws []WireTopoEvent
		if err := json.Unmarshal(data, &ws); err != nil {
			return fmt.Errorf("merlin: replay topology record: %w", err)
		}
		events := make([]TopoEvent, len(ws))
		for i, w := range ws {
			ev, err := w.Event()
			if err != nil {
				return err
			}
			events[i] = ev
		}
		if _, err := c.Update(Delta{Topo: events}); err != nil {
			if isTopoValidationError(err) {
				// Journaled events were validated when accepted; a
				// validation rejection on replay means the journal does
				// not match the topology it is replayed onto.
				return fmt.Errorf("merlin: replay topology record: %w", err)
			}
			// Post-apply recompile failure: the live compiler hit (and
			// survived) the same failure when it accepted this record.
		}
	default:
		return fmt.Errorf("merlin: unknown journal record kind %d", kind)
	}
	return nil
}
