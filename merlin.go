// Package merlin is the public API of this Merlin implementation — a
// reproduction of "Merlin: A Language for Provisioning Network Resources"
// (Soulé et al., CoNEXT 2014). It compiles declarative network policies —
// packet-classifying predicates, path regular expressions, and Presburger
// bandwidth formulas — into device-level configuration: OpenFlow rules,
// switch queue reservations, tc/iptables commands, Click middlebox
// configurations, and end-host interpreter programs.
//
// Typical one-shot use:
//
//	t := merlin.FatTree(4, merlin.Gbps)
//	pol, _ := merlin.ParsePolicy(src, t)
//	res, _ := merlin.Compile(pol, t, merlin.Placement{"dpi": {"m1"}}, merlin.Options{})
//	fmt.Println(res.Counts())
//
// Provisioning shards automatically: guarantees whose product graphs
// share no physical link — disjoint tenants, disjoint pods, localized
// sub-policies — solve as independent MIPs over a worker pool and merge
// into one equally-optimal result, falling back to the single global MIP
// when the policy is fully coupled (see internal/provision.Partition and
// PERFORMANCE.md's "Sharded provisioning"). Each shard's solver is
// picked by structure: shards recognized as pure node-arc incidence
// problems (weighted-shortest-path guarantees whose demands fit
// capacity) solve as per-request min-cost flows on a network simplex
// with no branch and bound, and the rest build a compact
// bounded-variable MIP — one row per cable — searched by a wave-
// parallel branch and bound whose result is bit-for-bit independent of
// the worker count (PERFORMANCE.md's "Flow-structured solver").
//
// Long-running controllers hold a Compiler instead: it caches every
// expensive artifact (product graphs, sink trees, the per-shard
// provisioning solutions and their simplex bases) across calls, so a
// small policy change recompiles only what it dirtied — re-solving only
// the provisioning shards the change touched — and yields a device-level
// diff rather than a full configuration:
//
//	c := merlin.NewCompiler(t, place, merlin.Options{})
//	res, _ := c.Compile(pol)                                  // cold: full pipeline
//	diff, _ := c.Update(merlin.Delta{Formula: newFormula})    // warm: caps patch / warm-started re-solve
//	install, remove := diff.Counts()
//	fmt.Println(install.Total(), remove.Total())
//
// Code generation is pluggable: the compiler lowers every policy into a
// target-neutral IR (Program) and registered dataplane backends render
// it. Options.Targets selects the backends; the default set reproduces
// the paper's output exactly, and the bundled "p4" backend emits P4
// table entries from the same IR:
//
//	opts := merlin.Options{Targets: []string{"openflow", "tc", "click", "host", "p4"}}
//	res, _ := merlin.Compile(pol, t, place, opts)
//	for _, e := range res.Outputs["p4"].Entries() {
//		fmt.Println(e.Device, e.Text) // P4 table entries, per switch
//	}
//
// New device families plug in with merlin.RegisterBackend — implement
// Name/Emit/Diff against the IR and every compile, incremental update,
// and failure reroute routes per-backend diffs to it.
//
// Hardware-shaped targets use the backend API v2, a capability surface
// discovered by type assertion on the same Backend value: a backend
// implementing codegen.TableModeler declares a TableModel (table
// capacity, key width, native range support) per device class, and one
// implementing codegen.TernaryEmitter receives the compiler's expanded
// ternary tables — real value/mask TCAM rows, port ranges expanded to
// prefix covers — instead of rendering symbolic predicates itself. The
// bundled "tcam" backend is the reference consumer: a vendor-CLI
// renderer whose per-switch entry counts are checked against each
// device's table budget before emission. Budgets come from the targeted
// backends' models, from RegisterBackendWith options, or per device from
// Options.TableBudgets; when a placement would overflow a device's
// table, the compiler re-places the guaranteed traffic through the
// provisioning MIP with the budgets as placement constraints, and
// rejects with the typed *TableOverflowError only when that is
// infeasible:
//
//	opts := merlin.Options{
//		Targets:      []string{"tcam"},
//		TableBudgets: map[string]int{"core0": 512}, // override one switch
//	}
//	res, err := merlin.Compile(pol, t, place, opts)
//	var overflow *merlin.TableOverflowError
//	if errors.As(err, &overflow) {
//		for _, o := range overflow.Overflows {
//			fmt.Printf("%s needs %d entries, budget %d\n", o.Name, o.Entries, o.Budget)
//		}
//	}
//
// Dynamic adaptation (§4 of the paper) is exposed through NewNegotiator,
// Delegate, Propose, and Reallocate; Compiler.Watch binds a compiler to a
// negotiator so every accepted negotiation tick drives an incremental
// recompile. At tenant scale (10⁴–10⁵ live sessions) the negotiator tree
// gives way to NewHub / Compiler.WatchHub: sessions shard by the
// link-disjoint provisioning partition (Compiler.NegotiationShards),
// demand updates coalesce into batched AIMD ticks — one recompile per
// window, riding the caps-only patch path — and tenant proposals are
// verified incrementally against their delegations through a fingerprint
// cache, with admission control rejecting violations instead of
// recompiling.
//
// The topology is dynamic too: link/switch failures, recoveries, and
// capacity changes flow through the same incremental pipeline as
// TopoEvents — Delta.Topo, Compiler.ApplyTopo, or a WatchTopo event
// stream — invalidating only the artifacts each event stales (a link
// failure patches the product graphs crossing the failed cable in place,
// keeps the sink trees whose used paths avoided it, and re-solves just
// the provisioning shards it touches) and yielding the
// reroute as a device-level diff:
//
//	diff, _ := c.ApplyTopo(merlin.LinkFailure("agg0_0", "edge0_0"))
//
// Durability comes from cmd/merlind, the journaled controller daemon: it
// serves all of the above over HTTP/JSON, appends every accepted delta,
// topology batch, and hub-committed policy to an internal/journal
// write-ahead log (group-committed fsyncs, ack-after-durable), and
// snapshots the canonical inputs — Compiler.Snapshot captures policy
// text, topology state, and placement; RestoreCompiler rebuilds a warm
// compiler from them — so a restart is one compile plus a short journal
// tail instead of a replay from genesis:
//
//	merlind -addr :8640 -data /var/lib/merlind -topo fattree,k=8 -policy genesis.pol
//	curl -X POST :8640/v1/delta -d '{"add":["y : (eth.src = h1_0_0 and eth.dst = h2_0_0) -> .* at min(5Mbps)"]}'
//	# kill -TERM, restart with the same -data and -topo: boots warm,
//	# byte-identical to the pre-restart compiler (GET /v1/stats → "boot":"warm")
//
// WireDelta / WireTopoEvent are the JSON forms, DecodeDelta and
// ApplyJournalRecord the replay entry points — usable directly by any
// embedding that wants merlind's durability without its HTTP surface.
//
// Everything above is exercised at corpus scale by internal/corpus and
// cmd/merlin-sweep: a seeded, deterministic scenario generator (tenant,
// middlebox-chain, delegation, and best-effort policy suites over fat
// trees and Topology Zoo graphs, with traffic matrices and balanced
// failure/recovery schedules as []TopoEvent timelines) and a grid
// runner that compiles every cell through this package, replays its
// schedule, and validates the results — recompile determinism,
// sharded ≡ monolithic output, region confinement, negotiated caps,
// injected budget overflows. A quickstart grid:
//
//	merlin-sweep -topos zoo-3,fattree-k4 -suites tenants,delegation \
//	    -seeds 1,2 -failures both -out results/
//
// See cmd/merlin-sweep's doc and PERFORMANCE.md's "Scenario sweeps".
package merlin

import (
	"merlin/internal/codegen"
	"merlin/internal/negotiate"
	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/provision"
	"merlin/internal/topo"
	"merlin/internal/verify"

	// Bundled non-default backends register themselves with the codegen
	// registry; importing them here makes every target name in their
	// packages available to Options.Targets out of the box.
	_ "merlin/internal/p4"
	_ "merlin/internal/tcam"
)

// Re-exported core types. The internal packages carry the implementation;
// these aliases are the supported surface.
type (
	// Topology is the physical network model.
	Topology = topo.Topology
	// NodeID identifies a topology node.
	NodeID = topo.NodeID
	// Policy is a parsed Merlin policy.
	Policy = policy.Policy
	// Statement is one policy statement.
	Statement = policy.Statement
	// Alloc is a statement's localized bandwidth allocation.
	Alloc = policy.Alloc
	// Pred is a packet-classification predicate.
	Pred = pred.Pred
	// Negotiator is a node of the run-time negotiator tree.
	Negotiator = negotiate.Negotiator
	// Program is the target-neutral codegen IR every backend emits from.
	Program = codegen.Program
	// Backend is one pluggable dataplane target (Name / Emit / Diff).
	Backend = codegen.Backend
	// Artifact is one backend's emitted configuration.
	Artifact = codegen.Artifact
	// ArtifactDiff is a backend's install/remove delta in native form.
	ArtifactDiff = codegen.ArtifactDiff
	// TableModel describes one device class's ternary match table
	// (capacity, key width, native range support) — what a v2 backend
	// declares through codegen.TableModeler or registration options.
	TableModel = codegen.TableModel
	// BackendOptions carries per-registration v2 settings (table models,
	// per-device budget overrides) for RegisterBackendWith.
	BackendOptions = codegen.BackendOptions
	// TableOverflow is one device's table-budget violation.
	TableOverflow = codegen.TableOverflow
	// TableOverflowError is the typed error a compile returns when a
	// placement's expanded ternary tables exceed some device's budget and
	// budget-constrained re-placement was infeasible.
	TableOverflowError = codegen.TableOverflowError
)

// Backend registry, re-exported from the codegen substrate: new device
// families register once and become valid Options.Targets names.
var (
	RegisterBackend = codegen.Register
	// RegisterBackendWith registers a backend together with v2 options —
	// table models per device class and per-device budget overrides —
	// without the backend having to implement TableModeler itself.
	RegisterBackendWith = codegen.RegisterWith
	LookupBackend       = codegen.Lookup
	BackendNames        = codegen.Names
	DefaultTargets      = codegen.DefaultTargets
	// IsBuiltinTarget reports whether a target's output lands in the
	// legacy Output/typed-Diff sections (vs Outputs/Diff.Backends).
	IsBuiltinTarget = codegen.IsBuiltinTarget
)

// Capacity units (bits per second).
const (
	Gbps = topo.Gbps
	Mbps = topo.Mbps
	MBps = topo.MBps
)

// Heuristic selects the §3.2 path-selection objective.
type Heuristic = provision.Heuristic

// Path-selection heuristics (Figure 3 of the paper).
const (
	WeightedShortestPath = provision.WeightedShortestPath
	MinMaxRatio          = provision.MinMaxRatio
	MinMaxReserved       = provision.MinMaxReserved
)

// Placement maps packet-processing function names to the locations able to
// host them — the auxiliary compiler input of §3.2.
type Placement map[string][]string

// Topology constructors, re-exported from the topology substrate.
var (
	NewTopology  = topo.New
	FatTree      = topo.FatTree
	BalancedTree = topo.BalancedTree
	Linear       = topo.Linear
	Ring         = topo.Ring
	Star         = topo.Star
	Stanford     = topo.Stanford
	TwoPath      = topo.TwoPath
	Example      = topo.Example
)

// ParsePolicy parses policy source against a topology: the environment
// exposes the set "hosts" bound to every host MAC, so policies can write
// "foreach (s,d) in cross(hosts,hosts): ...".
func ParsePolicy(src string, t *Topology) (*Policy, error) {
	env := policy.Env{Sets: map[string][]string{}}
	if t != nil {
		env.Sets["hosts"] = t.Identities().MACs()
	}
	return policy.Parse(src, env)
}

// NewNegotiator creates a negotiator-tree root holding the global policy.
func NewNegotiator(name string, pol *Policy) *Negotiator {
	return negotiate.NewRoot(name, pol)
}

// CheckRefinement verifies that refined only restricts original (§4.2).
func CheckRefinement(original, refined *Policy) error {
	rep, err := verify.CheckRefinement(original, refined, verify.Options{})
	if err != nil {
		return err
	}
	return rep.Err()
}

// Delegate projects a policy onto a tenant scope (§5).
func Delegate(pol *Policy, scope Pred) (*Policy, error) {
	return verify.Delegate(pol, scope)
}

// MaxMinFairShare is the negotiators' fair-share allocation primitive.
var MaxMinFairShare = negotiate.MaxMinFairShare
