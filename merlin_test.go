package merlin

import (
	"testing"

	"merlin/internal/openflow"
	"merlin/internal/packet"
	"merlin/internal/topo"
)

// paperPolicy instantiates the §2 running example on the Fig. 2 topology,
// with MACs resolved from the topology's identity table.
func paperPolicy(t *testing.T, tp *Topology) *Policy {
	t.Helper()
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	h2, _ := ids.Of(tp.MustLookup("h2"))
	src := `
[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 20) -> .* dpi .*
  y : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 21) -> .*
  z : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 80) -> .* dpi .* nat .* ],
max(x + y, 50MB/s) and min(z, 10MB/s)
`
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func TestCompilePaperExample(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	res, err := Compile(pol, tp, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// z is guaranteed: it has a provisioned path through m1 (nat).
	path, ok := res.Paths["z"]
	if !ok {
		t.Fatal("no path for z")
	}
	sawM1 := false
	for _, n := range path {
		if n == "m1" {
			sawM1 = true
		}
	}
	if !sawM1 {
		t.Fatalf("z path avoids m1: %v", path)
	}
	var natAt string
	for _, pl := range res.Placements["z"] {
		if pl.Fn == "nat" {
			natAt = pl.Location
		}
	}
	if natAt != "m1" {
		t.Fatalf("nat placed at %q", natAt)
	}
	// Localization: max(x+y, 50MB/s) split equally.
	if res.Allocations["x"].Max != 25*MBps || res.Allocations["y"].Max != 25*MBps {
		t.Fatalf("localization wrong: %+v", res.Allocations)
	}
	// Caps produce tc commands and interpreter programs.
	if len(res.Output.TC) == 0 {
		t.Error("no tc commands for the caps")
	}
	if len(res.Programs) == 0 {
		t.Error("no end-host programs for the caps")
	}
	// Guarantees produce queues.
	if len(res.Output.Queues) == 0 {
		t.Error("no queues for the guarantee")
	}
	// The default statement was added for totality.
	if _, ok := res.Policy.Statement("default"); !ok {
		t.Error("no default statement")
	}
	c := res.Counts()
	if c.OpenFlow == 0 {
		t.Error("no OpenFlow rules")
	}
}

// End-to-end: compile, install on the simulated dataplane, inject packets,
// verify the policy's routing decisions.
func TestCompileEndToEndDataplane(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"m1"}, "nat": {"m1"}}
	res, err := Compile(pol, tp, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	net := openflow.NewNetwork(tp)
	net.Install(res.Output.Rules)
	net.AddMiddleboxFunction(tp.MustLookup("m1"), openflow.Identity)
	ids := tp.Identities()
	h1 := tp.MustLookup("h1")
	h2 := tp.MustLookup("h2")
	i1, _ := ids.Of(h1)
	i2, _ := ids.Of(h2)

	mustDeliver := func(dstPort uint16, wantMbox bool) {
		t.Helper()
		pkt := packet.TCPPacket(i1.MAC, i2.MAC, i1.IP, i2.IP, 5555, dstPort, nil)
		tr := net.Inject(h1, pkt)
		if !tr.Delivered || tr.DeliveredTo != h2 {
			t.Fatalf("port %d: not delivered: %s (%v)", dstPort, tr.Dropped, tr.HopNames(tp))
		}
		saw := false
		for _, n := range tr.HopNames(tp) {
			if n == "m1" {
				saw = true
			}
		}
		if saw != wantMbox {
			t.Fatalf("port %d: middlebox visit = %v, want %v (%v)", dstPort, saw, wantMbox, tr.HopNames(tp))
		}
	}
	mustDeliver(20, true)   // x: FTP data through dpi
	mustDeliver(21, false)  // y: FTP control direct
	mustDeliver(80, true)   // z: HTTP through dpi+nat
	mustDeliver(443, false) // default: best-effort direct
}

func TestCompileAllPairs(t *testing.T) {
	tp := FatTree(4, Gbps)
	pol, err := ParsePolicy(`foreach (s,d) in cross(hosts,hosts): .*`, tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 16*15 {
		t.Fatalf("statements = %d", len(pol.Statements))
	}
	res, err := Compile(pol, tp, nil, Options{NoDefault: true})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the dataplane.
	net := openflow.NewNetwork(tp)
	net.Install(res.Output.Rules)
	ids := tp.Identities()
	hosts := tp.Hosts()
	for i := 0; i < 6; i++ {
		src, dst := hosts[i], hosts[(i*3+7)%len(hosts)]
		if src == dst {
			continue
		}
		si, _ := ids.Of(src)
		di, _ := ids.Of(dst)
		tr := net.Inject(src, packet.TCPPacket(si.MAC, di.MAC, si.IP, di.IP, 1, 80, nil))
		if !tr.Delivered || tr.DeliveredTo != dst {
			t.Fatalf("%s→%s: %s (%v)", si.Name, di.Name, tr.Dropped, tr.HopNames(tp))
		}
	}
	if res.Timing.Rateless == 0 {
		t.Error("rateless timing not recorded")
	}
}

func TestCompileGuaranteeNeedsUniqueEndpoints(t *testing.T) {
	tp := Linear(2, Gbps)
	pol, err := ParsePolicy(`[ g : ip.proto = 6 -> .* ], min(g, 1MB/s)`, tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(pol, tp, nil, Options{}); err == nil {
		t.Fatal("guarantee without unique endpoints accepted")
	}
}

func TestCompileUnplaceableFunction(t *testing.T) {
	tp := Linear(2, Gbps)
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	h2, _ := ids.Of(tp.MustLookup("h2"))
	src := `[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + `) -> .* scrub .* ]`
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	// No placement for "scrub": the path constraint is unsatisfiable.
	if _, err := Compile(pol, tp, nil, Options{NoDefault: true}); err == nil {
		t.Fatal("unplaceable function accepted")
	}
}

func TestHeuristicsDifferOnTwoPath(t *testing.T) {
	tp := TwoPath(400*MBps, 100*MBps)
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	h2, _ := ids.Of(tp.MustLookup("h2"))
	src := `
[ a : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 1) -> .*
  b : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 2) -> .* ],
min(a, 50MB/s) and min(b, 50MB/s)
`
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	hops := func(h Heuristic) (int, int) {
		res, err := Compile(pol, tp, nil, Options{Heuristic: h, NoDefault: true})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Paths["a"]) - 1, len(res.Paths["b"]) - 1
	}
	wa, wb := hops(WeightedShortestPath)
	if wa != 2 || wb != 2 {
		t.Errorf("WSP hops = %d,%d, want 2,2", wa, wb)
	}
	ra, rb := hops(MinMaxRatio)
	if ra != 3 || rb != 3 {
		t.Errorf("MinMaxRatio hops = %d,%d, want 3,3", ra, rb)
	}
	ma, mb := hops(MinMaxReserved)
	if (ma == 2) == (mb == 2) {
		t.Errorf("MinMaxReserved hops = %d,%d, want one per path", ma, mb)
	}
}

func TestStanfordBaselineCompiles(t *testing.T) {
	tp := Stanford(24, 1, Gbps)
	pol, err := ParsePolicy(`foreach (s,d) in cross(hosts,hosts): .*`, tp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(pol, tp, nil, Options{NoDefault: true})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts()
	if c.OpenFlow == 0 {
		t.Fatal("no rules")
	}
	t.Logf("stanford baseline: %d OpenFlow rules", c.OpenFlow)
}

func TestDescribePath(t *testing.T) {
	if DescribePath([]string{"a", "b"}) != "a → b" {
		t.Fatal("DescribePath wrong")
	}
	_ = topo.Gbps
}
