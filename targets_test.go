package merlin

import (
	"strings"
	"testing"

	"merlin/internal/codegen"
	"merlin/internal/p4"
	"merlin/internal/topo"
)

// p4Targets is the default backend set plus the bundled P4 target.
func p4Targets() []string { return append(DefaultTargets(), p4.Name) }

// TestCompileTargetsIncludeP4 proves the backend seam: adding "p4" to
// Options.Targets emits P4 table entries from the same lowered IR while
// leaving the default aggregate output byte-identical to a default-target
// compile.
func TestCompileTargetsIncludeP4(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}

	def, err := Compile(pol, tp, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(pol, tp, place, Options{Targets: p4Targets()})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderResult(res), renderResult(def); got != want {
		t.Fatalf("adding the p4 target perturbed the default output\n%s", firstDiff(want, got))
	}
	if res.IR == nil || len(res.IR.Rules) == 0 {
		t.Fatal("result carries no lowered IR")
	}
	if len(res.Outputs) != len(p4Targets()) {
		t.Fatalf("got %d artifacts, want %d", len(res.Outputs), len(p4Targets()))
	}
	art, ok := res.Outputs[p4.Name].(*p4.Artifact)
	if !ok {
		t.Fatalf("p4 artifact missing or mistyped: %T", res.Outputs[p4.Name])
	}
	if art.Count() == 0 {
		t.Fatal("p4 backend emitted no table entries")
	}
	// One table entry per IR rule plus one per queue reservation, every
	// one placed on a switch.
	if want := len(res.IR.Rules) + len(res.IR.Queues); art.Count() != want {
		t.Fatalf("p4 emitted %d entries, want %d (rules+queues)", art.Count(), want)
	}
	for _, e := range art.TableEntries {
		if tp.Node(e.Device).Kind != topo.Switch {
			t.Fatalf("p4 entry on non-switch node %d: %s", e.Device, e)
		}
	}
}

// TestCompileUnknownTargetErrors asserts target validation names the
// registry contents.
func TestCompileUnknownTargetErrors(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	_, err := Compile(pol, tp, place, Options{Targets: []string{"openflow", "ebpf"}})
	if err == nil || !strings.Contains(err.Error(), `unknown codegen target "ebpf"`) {
		t.Fatalf("unknown target not rejected: %v", err)
	}
	if !strings.Contains(err.Error(), "p4") {
		t.Fatalf("error does not list registered backends: %v", err)
	}
}

// TestCompileTargetSubset asserts target selection is real: compiling
// only the openflow backend leaves the host-side sections empty while the
// rules match a default compile exactly.
func TestCompileTargetSubset(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	def, err := Compile(pol, tp, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(pol, tp, place, Options{Targets: []string{codegen.TargetOpenFlow}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("subset compile emitted %d artifacts, want 1", len(res.Outputs))
	}
	if len(res.Output.TC) != 0 || len(res.Output.IPTables) != 0 || len(res.Output.Click) != 0 || len(res.Programs) != 0 {
		t.Fatalf("untargeted sections populated: %+v", res.Counts())
	}
	if len(res.Output.Rules) != len(def.Output.Rules) {
		t.Fatalf("openflow section differs from default compile: %d vs %d rules",
			len(res.Output.Rules), len(def.Output.Rules))
	}
	for i := range res.Output.Rules {
		if res.Output.Rules[i].String() != def.Output.Rules[i].String() {
			t.Fatalf("rule %d differs: %s vs %s", i, res.Output.Rules[i], def.Output.Rules[i])
		}
	}
}

// TestCapsOnlyPatchSharesP4Artifact covers per-backend routing of the
// caps-only patch path: a formula-only cap change re-emits just the tc
// and host backends; the P4 artifact is shared by pointer with the
// previous result, so its diff is empty without rendering a single
// entry.
func TestCapsOnlyPatchSharesP4Artifact(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	c := NewCompiler(tp, place, Options{Targets: p4Targets()})
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Stats()
	diff, err := c.Update(Delta{Formula: capFormula(40*MBps, 10*MBps)})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.PatchedCodegens != base.PatchedCodegens+1 {
		t.Fatalf("cap change did not take the patch path: %+v", st)
	}
	if len(diff.InstallTC) == 0 || len(diff.RemoveTC) == 0 {
		t.Fatalf("cap change produced no tc delta: %+v", diff)
	}
	pd, ok := diff.Backends[p4.Name]
	if !ok {
		t.Fatal("diff carries no p4 section")
	}
	if !pd.Empty() {
		t.Fatalf("caps-only change produced a p4 delta: %+v", pd)
	}
	if c.Result().Outputs[p4.Name] != first.Outputs[p4.Name] {
		t.Fatal("p4 artifact was re-emitted on the caps-only patch path")
	}
}

// TestApplyTopoRoutesP4Diff covers per-backend routing of topology
// reroutes: a link failure that moves a guaranteed path must surface as
// both an OpenFlow rule delta and a P4 table-entry delta, and the diff's
// Empty/Devices accessors must see the P4 section.
func TestApplyTopoRoutesP4Diff(t *testing.T) {
	const k = 4
	tp := FatTree(k, Gbps)
	pol := podPolicy(t, tp, k, 2)
	c := NewCompiler(tp, nil, Options{NoDefault: true, Targets: p4Targets()})
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	a, b := switchHop(t, tp, first.Paths["t0g0"])
	diff, err := c.ApplyTopo(LinkFailure(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.InstallRules) == 0 || len(diff.RemoveRules) == 0 {
		in, rm := diff.Counts()
		t.Fatalf("reroute produced no OpenFlow delta: install %+v remove %+v", in, rm)
	}
	pd, ok := diff.Backends[p4.Name]
	if !ok || pd.Empty() {
		t.Fatalf("reroute produced no p4 delta: %+v", pd)
	}
	if diff.Empty() {
		t.Fatal("non-empty reroute reported Empty")
	}
	if len(diff.Devices()) == 0 {
		t.Fatal("reroute diff names no devices")
	}
}
