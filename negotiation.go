package merlin

import (
	"merlin/internal/negotiate"
	"merlin/internal/policy"
)

// Tenant-scale negotiation, re-exported from the negotiate substrate. A
// Hub replaces a tree of per-tenant Negotiators when session counts reach
// 10⁴–10⁵: sessions shard by the same link-disjoint partition
// provisioning uses (NegotiationShards), demand updates coalesce into one
// batched AIMD tick per window, and proposals verify incrementally
// against a fingerprint cache with admission control on failure.
type (
	// Hub is the sharded, batching negotiator.
	Hub = negotiate.Hub
	// HubOptions tunes a Hub.
	HubOptions = negotiate.HubOptions
	// HubStats is a snapshot of a Hub's negotiation counters.
	HubStats = negotiate.HubStats
	// Session is one tenant's live negotiation session on a Hub.
	Session = negotiate.Session
	// AIMDState is a tenant's additive-increase/multiplicative-decrease
	// rate controller, the per-session tick policy.
	AIMDState = negotiate.AIMDState
	// TickReport summarizes one batched hub tick.
	TickReport = negotiate.TickReport
)

// NewHub creates a tenant-scale negotiation hub over the administrator's
// global policy. Compile hub.Policy() — the canonicalized form — when
// binding a compiler, or just call Compiler.WatchHub which checks in on
// every commit.
func NewHub(pol *Policy, opts HubOptions) (*Hub, error) {
	return negotiate.NewHub(pol, opts)
}

// WatchHub binds the compiler to a negotiation hub: every committed
// batched tick or accepted proposal recompiles the new global policy
// through the artifact caches and hands the device-level diff to onDiff
// (which may be nil). A compilation error vetoes the commit — the hub
// rolls its controllers back, so negotiation and compiled state never
// diverge.
//
// The binding is exclusive on both sides: a compiler follows at most
// one hub, and a hub commits into at most one compiler (its single
// commit callback). Rebinding to a different hub detaches the old one —
// its commits stop reaching this compiler — and WatchHub-ing one hub
// onto a second compiler moves the hub's callback there. UnwatchHub
// drops the binding entirely.
//
// Ticks are cheap by construction: a batched tick only moves caps and
// guarantees on an unchanged statement set, so cap movements take the
// patched-codegen fast path and guarantee movements re-solve only the
// provisioning shards they touch, warm-started from the previous basis.
// After binding, Stats mirrors the hub's counters (TenantsActive,
// TicksBatched, VerifyCacheHits, ProposalsRejected).
func (c *Compiler) WatchHub(h *Hub, onDiff func(*Diff)) {
	c.mu.Lock()
	old := c.hub
	c.hub = h
	c.mu.Unlock()
	// Callback swaps happen outside c.mu: OnCommit takes the hub lock,
	// which a committing tick holds while it recompiles through c.mu —
	// the compiler lock must never wait on a hub lock.
	if old != nil && old != h {
		old.OnCommit(nil)
	}
	h.OnCommit(func(pol *policy.Policy, pathsChanged bool) error {
		diff, err := c.compileDiff(pol)
		if err != nil {
			return err
		}
		if onDiff != nil {
			onDiff(diff)
		}
		return nil
	})
}

// UnwatchHub detaches the bound hub, if any: its commits no longer
// reach this compiler, and Stats stops mirroring its counters.
func (c *Compiler) UnwatchHub() {
	c.mu.Lock()
	old := c.hub
	c.hub = nil
	c.mu.Unlock()
	if old != nil {
		old.OnCommit(nil)
	}
}

// NegotiationShards returns the link-disjoint shard grouping the last
// provisioning pass computed: each element lists the statement IDs of one
// shard, in input order. This is the partition to key hub shards by
// (Hub.AddShard + Register) — a batched tick over one group re-solves
// only that provisioning shard. Statements without bandwidth guarantees
// occupy no capacity, couple with nothing, and each form their own
// single-statement shard; nil before the first provisioning pass.
func (c *Compiler) NegotiationShards() [][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.prov == nil || c.prov.res == nil {
		return nil
	}
	out := make([][]string, 0, len(c.prov.res.Shards))
	for _, sh := range c.prov.res.Shards {
		out = append(out, append([]string(nil), sh.IDs...))
	}
	return out
}
