package merlin

import (
	"reflect"
	"runtime"
	"testing"
)

// compileBothPoolSizes compiles the same policy with a single worker and
// with NumCPU workers and asserts the results are identical — the
// determinism contract the parallel pipeline promises. Run under
// `go test -race` this also exercises the fan-out for data races.
func compileBothPoolSizes(t *testing.T, tp *Topology, pol *Policy, place Placement, opts Options) {
	t.Helper()
	opts.Workers = 1
	seq, err := Compile(pol, tp, place, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = runtime.NumCPU()
	par, err := Compile(pol, tp, place, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Output, par.Output) {
		t.Fatal("generated configuration differs between worker pool sizes 1 and NumCPU")
	}
	if !reflect.DeepEqual(seq.Paths, par.Paths) {
		t.Fatalf("paths differ: %v vs %v", seq.Paths, par.Paths)
	}
	if !reflect.DeepEqual(seq.Placements, par.Placements) {
		t.Fatalf("placements differ: %v vs %v", seq.Placements, par.Placements)
	}
	if !reflect.DeepEqual(seq.Allocations, par.Allocations) {
		t.Fatal("allocations differ between worker pool sizes")
	}
}

// TestCompileParallelDeterministicAllPairs covers the wide best-effort
// fan-out (many statements, shared product graph, many sink trees).
func TestCompileParallelDeterministicAllPairs(t *testing.T) {
	tp := FatTree(4, Gbps)
	pol, err := ParsePolicy(`foreach (s,d) in cross(hosts,hosts): .*`, tp)
	if err != nil {
		t.Fatal(err)
	}
	compileBothPoolSizes(t, tp, pol, nil, Options{NoDefault: true})
}

// TestCompileParallelDeterministicGuaranteed covers the guaranteed path:
// anchored product-graph builds fan out and feed the MIP.
func TestCompileParallelDeterministicGuaranteed(t *testing.T) {
	tp := Example(Gbps)
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	h2, _ := ids.Of(tp.MustLookup("h2"))
	src := `
[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 20) -> .* dpi .*
  y : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 21) -> .*
  z : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 80) -> .* dpi .* nat .* ],
max(x + y, 50MB/s) and min(z, 10MB/s)
`
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	compileBothPoolSizes(t, tp, pol, place, Options{})
}

// TestCompileParallelDeterministicMixed covers a policy mixing several
// guarantees with best-effort classes over distinct path expressions.
func TestCompileParallelDeterministicMixed(t *testing.T) {
	tp := FatTree(4, Gbps)
	ids := tp.Identities()
	macs := ids.MACs()
	src := `
foreach (s,d) in cross(hosts,hosts): .*
[ g0 : (eth.src = ` + macs[0] + ` and eth.dst = ` + macs[2] + ` and tcp.dst = 7000) -> .* at min(5Mbps) ;
  g1 : (eth.src = ` + macs[1] + ` and eth.dst = ` + macs[3] + ` and tcp.dst = 7000) -> .* at min(5Mbps) ]
`
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	compileBothPoolSizes(t, tp, pol, nil, Options{NoDefault: true})
}
