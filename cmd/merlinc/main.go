// Command merlinc compiles a Merlin policy against a topology and prints
// the generated device configuration: OpenFlow rules, queue reservations,
// tc/iptables commands, and Click configurations.
//
// Usage:
//
//	merlinc -topology fattree:4 -policy policy.m [-heuristic ratio] [-place dpi=m1,nat=m1]
//	merlinc -topology stanford -expr 'foreach (s,d) in cross(hosts,hosts): .*'
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	merlin "merlin"
	"merlin/internal/topo"
)

func main() {
	var (
		topoSpec  = flag.String("topology", "fattree:4", "topology: fattree:K, btree:FANOUT:DEPTH:HOSTS, linear:N, stanford, twopath, example")
		policyArg = flag.String("policy", "", "policy file to compile")
		exprArg   = flag.String("expr", "", "inline policy source (alternative to -policy)")
		heuristic = flag.String("heuristic", "wsp", "path selection: wsp, ratio, reserved")
		placeArg  = flag.String("place", "", "function placements, e.g. dpi=m1;nat=m1,h2")
		greedy    = flag.Bool("greedy", false, "use the greedy allocator instead of the MIP")
		targets   = flag.String("targets", "", "comma-separated dataplane backends (default: openflow,tc,click,host; registered: "+strings.Join(merlin.BackendNames(), ",")+")")
		budgetArg = flag.String("budget", "", "per-device ternary table budgets, e.g. core0=512;r1=0 (overflow re-places or rejects)")
		workers   = flag.Int("workers", 0, "compile worker pool size (0 = all CPUs, 1 = sequential)")
		timing    = flag.Bool("time", false, "print the per-phase compile-time breakdown")
		verbose   = flag.Bool("v", false, "print every generated rule")
	)
	flag.Parse()

	t, err := buildTopology(*topoSpec)
	if err != nil {
		fatal(err)
	}
	src := *exprArg
	if *policyArg != "" {
		data, err := os.ReadFile(*policyArg)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	if src == "" {
		fatal(fmt.Errorf("provide -policy FILE or -expr SOURCE"))
	}
	pol, err := merlin.ParsePolicy(src, t)
	if err != nil {
		fatal(err)
	}
	opts := merlin.Options{Greedy: *greedy, Workers: *workers}
	if *budgetArg != "" {
		budgets, err := parseBudgets(*budgetArg)
		if err != nil {
			fatal(err)
		}
		opts.TableBudgets = budgets
	}
	if *targets != "" {
		for _, name := range strings.Split(*targets, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Targets = append(opts.Targets, name)
			}
		}
	}
	switch *heuristic {
	case "wsp":
		opts.Heuristic = merlin.WeightedShortestPath
	case "ratio":
		opts.Heuristic = merlin.MinMaxRatio
	case "reserved":
		opts.Heuristic = merlin.MinMaxReserved
	default:
		fatal(fmt.Errorf("unknown heuristic %q", *heuristic))
	}
	res, err := merlin.Compile(pol, t, parsePlacement(*placeArg), opts)
	if err != nil {
		fatal(err)
	}
	c := res.Counts()
	fmt.Printf("compiled %d statements on %d switches / %d hosts\n",
		len(res.Policy.Statements), len(t.Switches()), len(t.Hosts()))
	fmt.Printf("  openflow rules: %d\n  queue configs:  %d\n  tc commands:    %d\n  iptables:       %d\n  click configs:  %d\n",
		c.OpenFlow, c.Queues, c.TC, c.IPTables, c.Click)
	// Non-builtin targets (e.g. -targets ...,p4) report their native
	// entry counts from their artifacts.
	for _, name := range sortedKeys(res.Outputs) {
		if merlin.IsBuiltinTarget(name) {
			continue
		}
		fmt.Printf("  %s entries: %8d\n", name, len(res.Outputs[name].Entries()))
	}
	if *timing {
		tm := res.Timing
		fmt.Printf("  timing (total %v):\n", tm.Total())
		fmt.Printf("    preprocess:   %v\n    graph build:  %v\n    lp construct: %v\n    lp solve:     %v\n    rateless:     %v\n    codegen:      %v\n",
			tm.Preprocess, tm.GraphBuild, tm.LPConstruct, tm.LPSolve, tm.Rateless, tm.Codegen)
	} else {
		fmt.Printf("  timing: preprocess=%v graphs=%v lp-construct=%v lp-solve=%v rateless=%v codegen=%v\n",
			res.Timing.Preprocess, res.Timing.GraphBuild, res.Timing.LPConstruct,
			res.Timing.LPSolve, res.Timing.Rateless, res.Timing.Codegen)
	}
	// Maps iterate in random order; sort so runs are diffable.
	for _, id := range sortedKeys(res.Paths) {
		fmt.Printf("  path %-8s %s\n", id+":", merlin.DescribePath(res.Paths[id]))
	}
	for _, id := range sortedKeys(res.Placements) {
		for _, pl := range res.Placements[id] {
			fmt.Printf("  place %-7s %s @ %s\n", id+":", pl.Fn, pl.Location)
		}
	}
	if *verbose {
		fmt.Println("rules:")
		for _, r := range res.Output.Rules {
			fmt.Println("  ", r)
		}
		for _, q := range res.Output.Queues {
			fmt.Printf("  queue sw=%d port=%d q=%d min=%.0fMbps\n", q.Switch, q.Port, q.Queue, q.MinBps/1e6)
		}
		for _, hc := range append(res.Output.TC, res.Output.IPTables...) {
			fmt.Printf("  host %d: %s\n", hc.Host, hc.Command)
		}
		for _, cc := range res.Output.Click {
			fmt.Printf("  click node=%d %s\n", cc.Node, cc.Config)
		}
		for _, name := range sortedKeys(res.Outputs) {
			if merlin.IsBuiltinTarget(name) {
				continue
			}
			fmt.Printf("%s entries:\n", name)
			for _, e := range res.Outputs[name].Entries() {
				fmt.Printf("  dev=%d %s\n", e.Device, e.Text)
			}
		}
	}
}

func buildTopology(spec string) (*merlin.Topology, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i, def int) int {
		if i >= len(parts) {
			return def
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil {
			return def
		}
		return v
	}
	switch parts[0] {
	case "fattree":
		return topo.FatTree(atoi(1, 4), topo.Gbps), nil
	case "btree":
		return topo.BalancedTree(atoi(1, 2), atoi(2, 2), atoi(3, 2), topo.Gbps), nil
	case "linear":
		return topo.Linear(atoi(1, 3), topo.Gbps), nil
	case "stanford":
		return topo.Stanford(atoi(1, 24), atoi(2, 1), topo.Gbps), nil
	case "twopath":
		return topo.TwoPath(400*topo.MBps, 100*topo.MBps), nil
	case "example":
		return topo.Example(topo.Gbps), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", spec)
	}
}

// parseBudgets parses the -budget form dev=N;dev=N into the per-device
// ternary table budget map.
func parseBudgets(arg string) (map[string]int, error) {
	budgets := map[string]int{}
	for _, kv := range strings.Split(arg, ";") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || parts[0] == "" {
			return nil, fmt.Errorf("bad -budget entry %q (want dev=N)", kv)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -budget entry %q: budget must be a non-negative integer", kv)
		}
		budgets[parts[0]] = n
	}
	return budgets, nil
}

func parsePlacement(arg string) merlin.Placement {
	if arg == "" {
		return nil
	}
	place := merlin.Placement{}
	for _, kv := range strings.Split(arg, ";") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			continue
		}
		place[parts[0]] = strings.Split(parts[1], ",")
	}
	return place
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "merlinc:", err)
	os.Exit(1)
}

// sortedKeys returns a map's keys in sorted order, for stable output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
