// Command merlin-bench regenerates the paper's evaluation tables and
// figures (§6) and prints their rows. Absolute numbers differ from the
// paper — the substrate is the bundled simulator and simplex rather than a
// hardware testbed and Gurobi — but the shapes (who wins, by roughly what
// factor, where growth turns super-linear) reproduce; see EXPERIMENTS.md.
//
// Usage:
//
//	merlin-bench -run all
//	merlin-bench -run fig4,hadoop,fig5,fig6,table7,fig8,fig9,fig10,ablation
//	merlin-bench -run fig6 -zoo-stride 1    # all 262 zoo topologies
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"merlin/internal/experiments"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiments: fig4, hadoop, fig5, fig6, table7, fig8, fig9, fig10, ablation")
		zooStride = flag.Int("zoo-stride", 10, "sample every Nth Topology Zoo network for fig6 (1 = all 262)")
	)
	flag.Parse()
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0

	section := func(name, title string, f func() error) {
		if !all && !want[name] {
			return
		}
		ran++
		fmt.Printf("\n=== %s — %s ===\n", name, title)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	printRows := func(rows []experiments.Row) {
		for _, r := range rows {
			fmt.Println(r.Format())
		}
	}

	section("fig4", "expressiveness on the Stanford campus", func() error {
		rows, err := experiments.Fig4()
		printRows(rows)
		return err
	})
	section("hadoop", "Hadoop sort under interference and guarantees (§6.2)", func() error {
		rows, err := experiments.Hadoop()
		printRows(rows)
		return err
	})
	section("fig5", "Ring Paxos throughput without/with Merlin", func() error {
		rows, err := experiments.Fig5()
		printRows(rows)
		return err
	})
	section("fig6", "Topology Zoo all-pairs compile times", func() error {
		rows, err := experiments.Fig6(*zooStride)
		printRows(rows)
		return err
	})
	section("table7", "fat-tree provisioning cost split (Fig. 7 table)", func() error {
		for _, c := range experiments.Table7Cases() {
			r, err := experiments.Table7(c)
			if err != nil {
				return err
			}
			fmt.Println(r.Format())
		}
		return nil
	})
	section("fig8", "compile time vs traffic classes (four panels)", func() error {
		for _, c := range experiments.Fig8Cases() {
			rows, err := experiments.Fig8(c)
			if err != nil {
				return err
			}
			printRows(rows)
		}
		return nil
	})
	section("fig9", "negotiator verification scaling", func() error {
		rows, err := experiments.Fig9Predicates([]int{100, 500, 1000, 2000, 4000})
		if err != nil {
			return err
		}
		printRows(rows)
		rows, err = experiments.Fig9Regexes([]int{50, 100, 200, 400, 800, 1000})
		if err != nil {
			return err
		}
		printRows(rows)
		rows, err = experiments.Fig9Allocations([]int{100, 500, 1000, 2000, 4000})
		if err != nil {
			return err
		}
		printRows(rows)
		return nil
	})
	section("fig10", "AIMD and MMFS dynamic adaptation", func() error {
		aimd, err := experiments.Fig10AIMD()
		if err != nil {
			return err
		}
		fmt.Println("-- AIMD --")
		printRows(experiments.SeriesRows(aimd, 5))
		mmfs, err := experiments.Fig10MMFS()
		if err != nil {
			return err
		}
		fmt.Println("-- MMFS --")
		printRows(experiments.SeriesRows(mmfs, 2))
		return nil
	})
	section("ablation", "design-choice ablations", func() error {
		fmt.Println("-- path-selection heuristics (Fig. 3) --")
		rows, err := experiments.AblationHeuristics()
		if err != nil {
			return err
		}
		printRows(rows)
		fmt.Println("-- greedy vs MIP --")
		rows, err = experiments.AblationGreedyVsMIP(8)
		if err != nil {
			return err
		}
		printRows(rows)
		fmt.Println("-- DFA minimization in verification --")
		rows, err = experiments.AblationMinimization([]int{100, 400})
		if err != nil {
			return err
		}
		printRows(rows)
		fmt.Println("-- localization splits (§3.1) --")
		rows, err = experiments.AblationLocalization()
		if err != nil {
			return err
		}
		printRows(rows)
		return nil
	})
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "merlin-bench: nothing selected by -run %q\n", *run)
		os.Exit(2)
	}
}
