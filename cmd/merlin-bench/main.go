// Command merlin-bench regenerates the paper's evaluation tables and
// figures (§6) and prints their rows. Absolute numbers differ from the
// paper — the substrate is the bundled simulator and simplex rather than a
// hardware testbed and Gurobi — but the shapes (who wins, by roughly what
// factor, where growth turns super-linear) reproduce; see EXPERIMENTS.md.
//
// Usage:
//
//	merlin-bench -run all
//	merlin-bench -run fig4,hadoop,fig5,fig6,table7,fig8,fig9,fig10,incremental,sharding,ablation
//	merlin-bench -run fig6 -zoo-stride 1    # all 262 zoo topologies
//	merlin-bench -run table7 -json          # also write BENCH_results.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"merlin/internal/experiments"
)

// experimentResult is one experiment's machine-readable record: wall-clock
// plus the printed rows, whose values carry the per-phase timings (e.g.
// table7's lp_construct_ms / lp_solve_ms / rateless_ms split).
type experimentResult struct {
	Name   string            `json:"name"`
	Title  string            `json:"title"`
	WallMS float64           `json:"wall_ms"`
	Rows   []experiments.Row `json:"rows,omitempty"`
}

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiments: fig4, hadoop, fig5, fig6, table7, fig8, fig9, fig10, incremental, sharding, ablation")
		zooStride = flag.Int("zoo-stride", 10, "sample every Nth Topology Zoo network for fig6 (1 = all 262)")
		jsonOut   = flag.Bool("json", false, "write per-experiment wall-clock and phase timings to BENCH_results.json")
	)
	flag.Parse()
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0
	var results []experimentResult
	printRows := func(rows []experiments.Row) []experiments.Row {
		for _, r := range rows {
			fmt.Println(r.Format())
		}
		return rows
	}

	section := func(name, title string, f func() ([]experiments.Row, error)) {
		if !all && !want[name] {
			return
		}
		ran++
		fmt.Printf("\n=== %s — %s ===\n", name, title)
		start := time.Now()
		rows, err := f()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		results = append(results, experimentResult{
			Name:   name,
			Title:  title,
			WallMS: float64(elapsed.Microseconds()) / 1000,
			Rows:   rows,
		})
	}

	printed := func(f func() ([]experiments.Row, error)) func() ([]experiments.Row, error) {
		return func() ([]experiments.Row, error) {
			rows, err := f()
			// Print whatever was produced even on error, so a failure
			// partway through a sweep leaves the completed rows to debug
			// from (matching the pre-JSON behavior).
			return printRows(rows), err
		}
	}
	section("fig4", "expressiveness on the Stanford campus", printed(experiments.Fig4))
	section("hadoop", "Hadoop sort under interference and guarantees (§6.2)", printed(experiments.Hadoop))
	section("fig5", "Ring Paxos throughput without/with Merlin", printed(experiments.Fig5))
	section("fig6", "Topology Zoo all-pairs compile times", printed(func() ([]experiments.Row, error) {
		return experiments.Fig6(*zooStride)
	}))
	section("table7", "fat-tree provisioning cost split (Fig. 7 table)", func() ([]experiments.Row, error) {
		var rows []experiments.Row
		for _, c := range experiments.Table7Cases() {
			r, err := experiments.Table7(c)
			if err != nil {
				return nil, err
			}
			fmt.Println(r.Format())
			rows = append(rows, r)
		}
		return rows, nil
	})
	section("fig8", "compile time vs traffic classes (four panels)", func() ([]experiments.Row, error) {
		var rows []experiments.Row
		for _, c := range experiments.Fig8Cases() {
			rs, err := experiments.Fig8(c)
			if err != nil {
				return nil, err
			}
			rows = append(rows, printRows(rs)...)
		}
		return rows, nil
	})
	section("fig9", "negotiator verification scaling", func() ([]experiments.Row, error) {
		var rows []experiments.Row
		rs, err := experiments.Fig9Predicates([]int{100, 500, 1000, 2000, 4000})
		if err != nil {
			return nil, err
		}
		rows = append(rows, printRows(rs)...)
		rs, err = experiments.Fig9Regexes([]int{50, 100, 200, 400, 800, 1000})
		if err != nil {
			return nil, err
		}
		rows = append(rows, printRows(rs)...)
		rs, err = experiments.Fig9Allocations([]int{100, 500, 1000, 2000, 4000})
		if err != nil {
			return nil, err
		}
		return append(rows, printRows(rs)...), nil
	})
	section("fig10", "AIMD and MMFS dynamic adaptation", func() ([]experiments.Row, error) {
		aimd, err := experiments.Fig10AIMD()
		if err != nil {
			return nil, err
		}
		fmt.Println("-- AIMD --")
		rows := printRows(experiments.SeriesRows(aimd, 5))
		mmfs, err := experiments.Fig10MMFS()
		if err != nil {
			return nil, err
		}
		fmt.Println("-- MMFS --")
		return append(rows, printRows(experiments.SeriesRows(mmfs, 2))...), nil
	})
	section("incremental", "incremental vs full recompilation (Compiler.Update)",
		printed(experiments.Incremental))
	section("sharding", "monolithic vs sharded provisioning (link-disjoint tenants)",
		printed(experiments.Sharding))
	section("ablation", "design-choice ablations", func() ([]experiments.Row, error) {
		fmt.Println("-- path-selection heuristics (Fig. 3) --")
		rows, err := experiments.AblationHeuristics()
		if err != nil {
			return nil, err
		}
		printRows(rows)
		fmt.Println("-- greedy vs MIP --")
		rs, err := experiments.AblationGreedyVsMIP(8)
		if err != nil {
			return nil, err
		}
		rows = append(rows, printRows(rs)...)
		fmt.Println("-- DFA minimization in verification --")
		rs, err = experiments.AblationMinimization([]int{100, 400})
		if err != nil {
			return nil, err
		}
		rows = append(rows, printRows(rs)...)
		fmt.Println("-- localization splits (§3.1) --")
		rs, err = experiments.AblationLocalization()
		if err != nil {
			return nil, err
		}
		return append(rows, printRows(rs)...), nil
	})
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "merlin-bench: nothing selected by -run %q\n", *run)
		os.Exit(2)
	}
	if *jsonOut {
		payload := struct {
			GeneratedAt time.Time          `json:"generated_at"`
			Experiments []experimentResult `json:"experiments"`
		}{GeneratedAt: time.Now().UTC(), Experiments: results}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: marshaling results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_results.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: writing BENCH_results.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote BENCH_results.json (%d experiments)\n", len(results))
	}
}
