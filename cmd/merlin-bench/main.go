// Command merlin-bench regenerates the paper's evaluation tables and
// figures (§6) and prints their rows. Absolute numbers differ from the
// paper — the substrate is the bundled simulator and simplex rather than a
// hardware testbed and Gurobi — but the shapes (who wins, by roughly what
// factor, where growth turns super-linear) reproduce; see EXPERIMENTS.md.
//
// Usage:
//
//	merlin-bench -list                              # print registered experiments
//	merlin-bench -run all
//	merlin-bench -run fig4,hadoop,fig5,fig6,table7,fig8,fig9,fig10,incremental,sharding,solver,negotiate,failover,codegen,restart,tcam,ablation
//	merlin-bench -run fig6 -zoo-stride 1    # all 262 zoo topologies
//	merlin-bench -run table7 -json          # also write BENCH_results.json
//	merlin-bench -check -tolerance 0.25     # gate BENCH_results.json against BENCH_baseline.json
//	merlin-bench -run negotiate -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -check is the CI perf-regression gate: it compares every speedup
// recorded in the results (table7's dense/sparse LP ratio, incremental,
// sharding, solver's legacy-vs-flow-structured ratios, negotiate's
// batched-vs-serial tenant ratio, failover,
// codegen's shared-IR ratio, restart's warm-vs-cold recovery ratio,
// tcam's estimate-vs-materialize expansion ratio)
// against the committed
// baseline floors and exits
// non-zero when any regresses past the tolerance. Run standalone it reads
// BENCH_results.json from a previous -json run and gates the full
// baseline; combined with -run it checks the freshly measured results,
// gating only the baseline experiments the -run selection covers (so
// `-run failover -check` does not fail over the un-run experiments).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"merlin/internal/experiments"
)

const resultsPath = "BENCH_results.json"

func main() {
	var (
		run        = flag.String("run", "", "comma-separated experiments, see -list (default \"all\", or none with -check)")
		list       = flag.Bool("list", false, "print the registered experiments and exit")
		zooStride  = flag.Int("zoo-stride", 10, "sample every Nth Topology Zoo network for fig6 (1 = all 262)")
		jsonOut    = flag.Bool("json", false, "write per-experiment wall-clock and phase timings to "+resultsPath)
		check      = flag.Bool("check", false, "compare recorded speedups against -baseline and exit non-zero on regression")
		tolerance  = flag.Float64("tolerance", 0.25, "allowed relative speedup regression before -check fails (0.25 = 25%)")
		baseline   = flag.String("baseline", "BENCH_baseline.json", "baseline file for -check")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the selected experiments) to this file")
	)
	flag.Parse()
	// Default to running everything unless this is a pure check (-check
	// with neither -run nor -json): -json with nothing selected would
	// otherwise clobber the results file with an empty measurement set.
	if *run == "" && (*jsonOut || !*check) {
		*run = "all"
	}
	if *check && (*tolerance < 0 || *tolerance >= 1) {
		fmt.Fprintf(os.Stderr, "merlin-bench: -tolerance %g out of range [0, 1): 1-tolerance scales the baseline floors, so >= 1 disables the gate\n", *tolerance)
		os.Exit(2)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	all := want["all"]
	var results []experiments.BenchExperiment
	printRows := func(rows []experiments.Row) []experiments.Row {
		for _, r := range rows {
			fmt.Println(r.Format())
		}
		return rows
	}

	// Experiments are registered first and run after the registry is
	// complete, so -list can print it and an unknown -run name is a hard
	// error before any measurement starts.
	type bench struct {
		name, title string
		run         func() ([]experiments.Row, error)
	}
	var benches []bench
	section := func(name, title string, f func() ([]experiments.Row, error)) {
		benches = append(benches, bench{name: name, title: title, run: f})
	}

	printed := func(f func() ([]experiments.Row, error)) func() ([]experiments.Row, error) {
		return func() ([]experiments.Row, error) {
			rows, err := f()
			// Print whatever was produced even on error, so a failure
			// partway through a sweep leaves the completed rows to debug
			// from (matching the pre-JSON behavior).
			return printRows(rows), err
		}
	}
	section("fig4", "expressiveness on the Stanford campus", printed(experiments.Fig4))
	section("hadoop", "Hadoop sort under interference and guarantees (§6.2)", printed(experiments.Hadoop))
	section("fig5", "Ring Paxos throughput without/with Merlin", printed(experiments.Fig5))
	section("fig6", "Topology Zoo all-pairs compile times", printed(func() ([]experiments.Row, error) {
		return experiments.Fig6(*zooStride)
	}))
	section("table7", "fat-tree provisioning cost split (Fig. 7 table)", func() ([]experiments.Row, error) {
		var rows []experiments.Row
		for _, c := range experiments.Table7Cases() {
			// The comparison run also records the dense/sparse LP speedup
			// the -check regression gate guards.
			r, err := experiments.Table7Compare(c)
			if err != nil {
				return nil, err
			}
			fmt.Println(r.Format())
			rows = append(rows, r)
		}
		return rows, nil
	})
	section("fig8", "compile time vs traffic classes (four panels)", func() ([]experiments.Row, error) {
		var rows []experiments.Row
		for _, c := range experiments.Fig8Cases() {
			rs, err := experiments.Fig8(c)
			if err != nil {
				return nil, err
			}
			rows = append(rows, printRows(rs)...)
		}
		return rows, nil
	})
	section("fig9", "negotiator verification scaling", func() ([]experiments.Row, error) {
		var rows []experiments.Row
		rs, err := experiments.Fig9Predicates([]int{100, 500, 1000, 2000, 4000})
		if err != nil {
			return nil, err
		}
		rows = append(rows, printRows(rs)...)
		rs, err = experiments.Fig9Regexes([]int{50, 100, 200, 400, 800, 1000})
		if err != nil {
			return nil, err
		}
		rows = append(rows, printRows(rs)...)
		rs, err = experiments.Fig9Allocations([]int{100, 500, 1000, 2000, 4000})
		if err != nil {
			return nil, err
		}
		return append(rows, printRows(rs)...), nil
	})
	section("fig10", "AIMD and MMFS dynamic adaptation", func() ([]experiments.Row, error) {
		aimd, err := experiments.Fig10AIMD()
		if err != nil {
			return nil, err
		}
		fmt.Println("-- AIMD --")
		rows := printRows(experiments.SeriesRows(aimd, 5))
		mmfs, err := experiments.Fig10MMFS()
		if err != nil {
			return nil, err
		}
		fmt.Println("-- MMFS --")
		return append(rows, printRows(experiments.SeriesRows(mmfs, 2))...), nil
	})
	section("incremental", "incremental vs full recompilation (Compiler.Update)",
		printed(experiments.Incremental))
	section("sharding", "monolithic vs sharded provisioning (link-disjoint tenants)",
		printed(experiments.Sharding))
	section("solver", "general MIP vs bounded-variable simplex vs network simplex",
		printed(experiments.Solver))
	section("negotiate", "per-tenant serial negotiation vs batched sharded hub (tenant sweep)",
		printed(experiments.Negotiate))
	section("failover", "link-failure recovery vs cold recompile (topology dynamics)",
		printed(experiments.Failover))
	section("codegen", "shared-IR multi-target emission vs per-target lowering",
		printed(experiments.Codegen))
	section("restart", "merlind warm snapshot+tail restart vs cold journal replay",
		printed(experiments.Restart))
	section("tcam", "ternary expansion vs estimator, budget-overflow re-placement",
		printed(experiments.Tcam))
	section("ablation", "design-choice ablations", func() ([]experiments.Row, error) {
		fmt.Println("-- path-selection heuristics (Fig. 3) --")
		rows, err := experiments.AblationHeuristics()
		if err != nil {
			return nil, err
		}
		printRows(rows)
		fmt.Println("-- greedy vs MIP --")
		rs, err := experiments.AblationGreedyVsMIP(8)
		if err != nil {
			return nil, err
		}
		rows = append(rows, printRows(rs)...)
		fmt.Println("-- DFA minimization in verification --")
		rs, err = experiments.AblationMinimization([]int{100, 400})
		if err != nil {
			return nil, err
		}
		rows = append(rows, printRows(rs)...)
		fmt.Println("-- localization splits (§3.1) --")
		rs, err = experiments.AblationLocalization()
		if err != nil {
			return nil, err
		}
		return append(rows, printRows(rs)...), nil
	})

	if *list {
		for _, b := range benches {
			fmt.Printf("%-12s %s\n", b.name, b.title)
		}
		return
	}
	// An unknown -run name is a hard error, not a silent no-op: a typo'd
	// selection alongside valid names must never quietly skip its
	// measurement.
	known := map[string]bool{"all": true}
	for _, b := range benches {
		known[b.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "merlin-bench: unknown experiment %q in -run; see -list\n", name)
			os.Exit(2)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	ran := 0
	for _, b := range benches {
		if !all && !want[b.name] {
			continue
		}
		ran++
		fmt.Printf("\n=== %s — %s ===\n", b.name, b.title)
		start := time.Now()
		rows, err := b.run()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: %s: %v\n", b.name, err)
			os.Exit(1)
		}
		results = append(results, experiments.BenchExperiment{
			Name:   b.name,
			Title:  b.title,
			WallMS: float64(elapsed.Microseconds()) / 1000,
			Rows:   rows,
		})
	}
	// Profiles cover exactly the experiment runs above — stopped/written
	// here so -json and -check bookkeeping stays out of them. (Error
	// paths os.Exit without flushing; a failed run's profile is moot.)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}
	// An explicit -run that selects nothing is an error even under -check:
	// silently falling back to a stale BENCH_results.json would let a
	// typo'd selection green-light numbers that were never measured.
	if ran == 0 && *run != "" {
		fmt.Fprintf(os.Stderr, "merlin-bench: nothing selected by -run %q\n", *run)
		os.Exit(2)
	}
	if *jsonOut {
		payload := experiments.BenchFile{GeneratedAt: time.Now().UTC(), Experiments: results}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: marshaling results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(resultsPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: writing %s: %v\n", resultsPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d experiments)\n", resultsPath, len(results))
	}
	if *check {
		measured := &experiments.BenchFile{Experiments: results}
		if ran == 0 {
			var err error
			measured, err = experiments.LoadBenchFile(resultsPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "merlin-bench: -check needs a previous -json run: %v\n", err)
				os.Exit(1)
			}
		}
		base, err := experiments.LoadBenchFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merlin-bench: loading baseline: %v\n", err)
			os.Exit(1)
		}
		if ran > 0 && !all {
			// A combined `-run <subset> -check` gates only what it
			// measured; un-run baseline experiments are not "missing".
			// The standalone check (CI's) still gates the full baseline.
			kept := base.Experiments[:0]
			for _, e := range base.Experiments {
				if want[e.Name] {
					kept = append(kept, e)
				}
			}
			base.Experiments = kept
		}
		regressions := experiments.CheckRegressions(measured, base, *tolerance)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "merlin-bench: %d speedup regression(s) past %.0f%% tolerance:\n",
				len(regressions), *tolerance*100)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("regression check passed: every recorded speedup within %.0f%% of baseline\n", *tolerance*100)
	}
}
