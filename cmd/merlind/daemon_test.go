package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"merlin"
	"merlin/internal/journal"
	"merlin/internal/topo"
)

// fatTreeConfig builds a daemon config over a pristine FatTree(4) with a
// two-statement genesis policy confined to pod 0 — restart tests hand a
// fresh topology to every boot, the way a restarted process would.
func fatTreeConfig(dir string) Config {
	tp := merlin.FatTree(4, merlin.Gbps)
	return Config{
		DataDir:    dir,
		Topo:       tp,
		PolicyText: testPolicyText(tp),
		Journal:    journal.Params{NoSync: true},
	}
}

func testPolicyText(tp *merlin.Topology) string {
	return fmt.Sprintf(
		"[ g0 : (eth.src = %s and eth.dst = %s) -> %s at min(10Mbps) ; g1 : (eth.src = %s and eth.dst = %s) -> %s at min(15Mbps) ]",
		mac(tp, "h0_0_0"), mac(tp, "h0_1_0"), podExpr(0),
		mac(tp, "h0_0_1"), mac(tp, "h0_1_1"), podExpr(0))
}

func mac(tp *merlin.Topology, name string) string {
	return topo.MACOf(tp.MustLookup(name))
}

func podExpr(p int) string {
	var names []string
	for i := 0; i < 2; i++ {
		names = append(names, fmt.Sprintf("agg%d_%d", p, i), fmt.Sprintf("edge%d_%d", p, i))
		for h := 0; h < 2; h++ {
			names = append(names, fmt.Sprintf("h%d_%d_%d", p, i, h))
		}
	}
	return "( " + strings.Join(names, " | ") + " )*"
}

// podDelta is a WireDelta adding one guaranteed statement inside pod p.
func podDelta(tp *merlin.Topology, p int, id string, mbps int) merlin.WireDelta {
	stmt := fmt.Sprintf("%s : (eth.src = %s and eth.dst = %s) -> %s at min(%dMbps)",
		id, mac(tp, fmt.Sprintf("h%d_0_0", p)), mac(tp, fmt.Sprintf("h%d_1_1", p)), podExpr(p), mbps)
	return merlin.WireDelta{Add: []string{stmt}}
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding response: %v", url, err)
	}
	return resp.StatusCode, out
}

// sameResults asserts two compiled results are byte-identical in every
// output-bearing field (the restart correctness bar).
func sameResults(t *testing.T, label string, got, want *merlin.Result) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil result (got=%v want=%v)", label, got == nil, want == nil)
	}
	for name, check := range map[string]bool{
		"output":      reflect.DeepEqual(got.Output, want.Output),
		"paths":       reflect.DeepEqual(got.Paths, want.Paths),
		"placements":  reflect.DeepEqual(got.Placements, want.Placements),
		"allocations": reflect.DeepEqual(got.Allocations, want.Allocations),
		"programs":    reflect.DeepEqual(got.Programs, want.Programs),
		"outputs":     reflect.DeepEqual(got.Outputs, want.Outputs),
	} {
		if !check {
			t.Fatalf("%s: %s differ", label, name)
		}
	}
}

// referenceCompiler replays the same operation history against a fresh
// compiler, the oracle every restarted daemon must match byte-for-byte.
func referenceCompiler(t *testing.T, deltas []merlin.WireDelta, events []merlin.TopoEvent) *merlin.Compiler {
	t.Helper()
	tp := merlin.FatTree(4, merlin.Gbps)
	pol, err := merlin.ParsePolicy(testPolicyText(tp), tp)
	if err != nil {
		t.Fatal(err)
	}
	c := merlin.NewCompiler(tp, nil, merlin.Options{})
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	for _, w := range deltas {
		d, err := c.DecodeDelta(w)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Update(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range events {
		if _, err := c.ApplyTopo(ev); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestDaemonGenesisWarmRestart drives the full lifecycle: genesis boot,
// policy delta and topology change over HTTP, clean shutdown (final
// snapshot), then a warm reboot whose compiled state — and behavior
// under further deltas — is byte-identical to a reference compiler that
// applied the same history.
func TestDaemonGenesisWarmRestart(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDaemon(fatTreeConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if d.Boot != "genesis" {
		t.Fatalf("first boot = %q, want genesis", d.Boot)
	}
	srv := httptest.NewServer(d.Handler())
	tp := merlin.FatTree(4, merlin.Gbps) // naming reference only

	delta := podDelta(tp, 1, "g2", 20)
	status, body := postJSON(t, srv.URL+"/v1/delta", delta)
	if status != http.StatusOK {
		t.Fatalf("delta: %d %v", status, body)
	}
	if body["seq"].(float64) != 2 { // seq 1 is the genesis policy record
		t.Fatalf("delta seq = %v, want 2", body["seq"])
	}
	event := merlin.CapacityChange("edge0_0", "h0_0_0", 800*merlin.Mbps)
	status, body = postJSON(t, srv.URL+"/v1/topo", merlin.WireTopoEvents([]merlin.TopoEvent{event}))
	if status != http.StatusOK {
		t.Fatalf("topo: %d %v", status, body)
	}
	if body["applied"].(float64) != 1 {
		t.Fatalf("topo applied = %v, want 1", body["applied"])
	}
	srv.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	ref := referenceCompiler(t, []merlin.WireDelta{delta}, []merlin.TopoEvent{event})

	d2, err := NewDaemon(fatTreeConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Boot != "warm" {
		t.Fatalf("second boot = %q, want warm (clean shutdown snapshots)", d2.Boot)
	}
	sameResults(t, "warm restart", d2.c.Result(), ref.Result())

	// The warm compiler must keep working incrementally, not just render.
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	delta2 := podDelta(tp, 2, "g3", 25)
	if status, body := postJSON(t, srv2.URL+"/v1/delta", delta2); status != http.StatusOK {
		t.Fatalf("post-restart delta: %d %v", status, body)
	}
	rd, err := ref.DecodeDelta(delta2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Update(rd); err != nil {
		t.Fatal(err)
	}
	sameResults(t, "post-restart delta", d2.c.Result(), ref.Result())

	resp, err := http.Get(srv2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Boot string `json:"boot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Boot != "warm" {
		t.Fatalf("/v1/stats boot = %q, want warm", stats.Boot)
	}
}

// TestDaemonCrashRecoveryTornTail is the crash-recovery acceptance test:
// the daemon dies without shutdown mid-write (simulated by truncating
// the final journal record), and the restarted daemon's compiled output
// is byte-identical to a reference compiler that applied only the
// durably-acknowledged operations.
func TestDaemonCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDaemon(fatTreeConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	tp := merlin.FatTree(4, merlin.Gbps)

	deltas := []merlin.WireDelta{
		podDelta(tp, 1, "g2", 20),
		podDelta(tp, 2, "g3", 25),
		podDelta(tp, 3, "g4", 30),
	}
	for i, w := range deltas {
		status, body := postJSON(t, srv.URL+"/v1/delta", w)
		if status != http.StatusOK {
			t.Fatalf("delta %d: %d %v", i, status, body)
		}
	}
	srv.Close() // crash: no d.Close(), journal left as-written

	// Tear the final record: the crash hit mid-append of g4's frame.
	logs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(logs) == 0 {
		t.Fatalf("no journal segments: %v %v", logs, err)
	}
	sort.Strings(logs)
	last := logs[len(logs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	// Only g2 and g3 survived durably; g4's record is torn and dropped.
	ref := referenceCompiler(t, deltas[:2], nil)

	d2, err := NewDaemon(fatTreeConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Boot != "replay" {
		t.Fatalf("crash boot = %q, want replay (no snapshot was taken)", d2.Boot)
	}
	if d2.TornBytes == 0 {
		t.Fatal("recovery did not report the torn tail")
	}
	if d2.BootSeq != 3 { // genesis + g2 + g3
		t.Fatalf("recovered seq = %d, want 3", d2.BootSeq)
	}
	sameResults(t, "crash recovery", d2.c.Result(), ref.Result())

	// The client retries the lost operation; its sequence slot is reused.
	srv2 := httptest.NewServer(d2.Handler())
	status, body := postJSON(t, srv2.URL+"/v1/delta", deltas[2])
	if status != http.StatusOK {
		t.Fatalf("retried delta: %d %v", status, body)
	}
	if body["seq"].(float64) != 4 {
		t.Fatalf("retried delta seq = %v, want 4", body["seq"])
	}
	srv2.Close()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	// A third boot is warm off the shutdown snapshot and matches the
	// full history.
	ref2 := referenceCompiler(t, deltas, nil)
	d3, err := NewDaemon(fatTreeConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if d3.Boot != "warm" {
		t.Fatalf("third boot = %q, want warm", d3.Boot)
	}
	sameResults(t, "post-retry warm restart", d3.c.Result(), ref2.Result())
}

// TestDaemonHubTickJournaled runs negotiation through the daemon: a
// committed tick journals the hub's full policy, a restart reproduces
// the committed allocation byte-identically, and hub sessions are
// volatile — the tenant must re-register after the restart.
func TestDaemonHubTickJournaled(t *testing.T) {
	dir := t.TempDir()
	mkcfg := func() Config {
		tp := merlin.Ring(8, 1, 100*merlin.MBps)
		arc := func(lo, hi int) string {
			var names []string
			for i := lo; i < hi; i++ {
				names = append(names, fmt.Sprintf("s%d", i), fmt.Sprintf("h%d_0", i))
			}
			return "(" + strings.Join(names, "|") + ")*"
		}
		text := fmt.Sprintf("[ a0 : (eth.src = %s and eth.dst = %s) -> %s at max(40MB/s) ]",
			mac(tp, "h0_0"), mac(tp, "h3_0"), arc(0, 4))
		return Config{
			DataDir:    dir,
			Topo:       tp,
			PolicyText: text,
			Opts:       merlin.Options{NoDefault: true},
			Journal:    journal.Params{NoSync: true},
		}
	}
	d, err := NewDaemon(mkcfg())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())

	status, body := postJSON(t, srv.URL+"/v1/hub/register", hubRequest{
		Tenant: "tenant-a", Shard: "left", ShardCapacityBps: 100 * merlin.MBps,
		Statements: []string{"a0"},
		AllocBps:   10 * merlin.MBps, IncreaseBps: 5 * merlin.MBps, Decrease: 0.5,
	})
	if status != http.StatusOK {
		t.Fatalf("register: %d %v", status, body)
	}
	if status, body = postJSON(t, srv.URL+"/v1/hub/demand", hubRequest{Tenant: "tenant-a", DemandBps: 60 * merlin.MBps}); status != http.StatusOK {
		t.Fatalf("demand: %d %v", status, body)
	}
	status, body = postJSON(t, srv.URL+"/v1/hub/tick", nil)
	if status != http.StatusOK {
		t.Fatalf("tick: %d %v", status, body)
	}
	if body["committed"] != true {
		t.Fatalf("tick did not commit: %v", body)
	}
	if body["seq"].(float64) == 0 {
		t.Fatal("committed tick was not journaled")
	}
	committedPolicy := d.hub.Policy().String()
	srv.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := NewDaemon(mkcfg())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, err := d2.c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Policy != committedPolicy {
		t.Fatalf("restart lost the hub-committed policy:\n got %s\nwant %s", snap.Policy, committedPolicy)
	}
	// Sessions are volatile: demand for the old session is a 404 until
	// the tenant re-registers.
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	if status, _ := postJSON(t, srv2.URL+"/v1/hub/demand", hubRequest{Tenant: "tenant-a", DemandBps: merlin.MBps}); status != http.StatusNotFound {
		t.Fatalf("stale session demand = %d, want 404", status)
	}
}

func TestParseTopoSpec(t *testing.T) {
	for _, spec := range []string{"fattree,k=4", "ring,n=8,hosts=1,cap=1e8", "linear,n=4", "star,n=4,hosts=2", "example"} {
		if _, err := ParseTopoSpec(spec); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
	for _, spec := range []string{"mesh,k=4", "fattree,k", "ring,n=x"} {
		if _, err := ParseTopoSpec(spec); err == nil {
			t.Errorf("%s: expected error", spec)
		}
	}
}
