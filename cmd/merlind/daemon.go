// merlind is the long-running Merlin controller: it wraps the stateful
// incremental Compiler behind a small HTTP/JSON API and makes its state
// durable. Every accepted policy delta, topology batch, and hub-committed
// policy is appended to a CRC-framed, fsync-batched journal before the
// client is acknowledged; periodic snapshots capture the compiled state's
// canonical inputs (policy, topology, placement) so a restart loads the
// latest snapshot and replays only the journal tail into a warm compiler —
// restart-to-first-config in snapshot+tail time instead of a
// replay-from-genesis cold start.
//
// API (JSON unless noted):
//
//	POST /v1/delta     WireDelta               → apply + journal a policy delta
//	POST /v1/topo      [WireTopoEvent...]      → apply + journal topology events
//	POST /v1/snapshot                          → force a snapshot
//	POST /v1/hub/register {tenant,shard,...}   → open a negotiation session
//	POST /v1/hub/demand   {tenant,demand_bps}  → stage a demand update
//	POST /v1/hub/tick                          → batched AIMD tick (journals on commit)
//	POST /v1/hub/propose  {tenant,policy}      → verified proposal (journals on accept)
//	GET  /v1/stats                             → compiler + journal counters
//	GET  /v1/result                            → compiled-output summary
//	GET  /v1/policy                            → current policy (text/plain)
//	GET  /healthz                              → liveness
//
// Consistency model: one apply goroutine serializes every mutation, and
// each mutation is journaled in apply order before its HTTP response is
// written (ack-after-fsync). A crash can lose applied-but-unacked
// operations — the client retries — and never acknowledged ones. Hub
// sessions are deliberately volatile: reconnecting tenants re-register
// after a restart and AIMD re-converges, while every policy the hub
// *committed* is durable as a full-policy journal record. A direct
// /v1/delta while a hub is live resets the hub (its sessions dissolve):
// in hub mode, policy changes are expected to flow through proposals.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"merlin"
	"merlin/internal/journal"
)

// Config assembles a Daemon.
type Config struct {
	// DataDir is the journal + snapshot directory.
	DataDir string
	// Topo constructs the pristine topology (same spec every boot).
	Topo *merlin.Topology
	// PolicyText is the genesis policy, used only on first boot (ignored
	// once the journal exists).
	PolicyText string
	// Place is the genesis placement table (first boot only).
	Place merlin.Placement
	// Opts are the compiler options.
	Opts merlin.Options
	// SnapshotEvery snapshots after that many journal records (0 = only
	// on shutdown or explicit POST /v1/snapshot).
	SnapshotEvery int
	// Debounce holds a topology batch open after its first event, like
	// Options.TopoDebounce, so storms arriving as separate requests
	// still coalesce into one recompile.
	Debounce time.Duration
	// Journal tunes the store (tests use NoSync).
	Journal journal.Params
}

// Daemon is one controller instance: a compiler, its journal, and the
// single apply loop every mutation is serialized through.
type Daemon struct {
	cfg   Config
	c     *merlin.Compiler
	store *journal.Store
	mux   *http.ServeMux

	ops      chan *op
	loopDone chan struct{}

	mu      sync.Mutex
	closed  bool
	submits sync.WaitGroup

	// Boot describes how this instance recovered, for /v1/stats and the
	// restart benchmark: "genesis", "replay" (journal from genesis), or
	// "warm" (snapshot + tail).
	Boot      string
	BootSeq   uint64 // journal sequence recovered up to
	TornBytes int64  // truncated torn-tail bytes, if any

	// Apply-loop-owned state (no lock: only the loop touches it).
	hub        *merlin.Hub
	sessions   map[string]*merlin.Session
	shards     map[string]bool
	sinceSnap  int
	applyBroke bool // last apply left (policy, topo) uncompilable; defer snapshots
}

type opKind int

const (
	opDelta opKind = iota
	opTopo
	opSnapshot
	opHubRegister
	opHubDemand
	opHubTick
	opHubPropose
)

type op struct {
	kind  opKind
	delta merlin.WireDelta
	topo  []merlin.TopoEvent
	hub   hubRequest
	reply chan opResult
}

type opResult struct {
	status int
	body   any
}

type hubRequest struct {
	Tenant string `json:"tenant"`
	// Register:
	Shard            string   `json:"shard,omitempty"`
	ShardCapacityBps float64  `json:"shard_capacity_bps,omitempty"`
	Statements       []string `json:"statements,omitempty"`
	AllocBps         float64  `json:"alloc_bps,omitempty"`
	IncreaseBps      float64  `json:"increase_bps,omitempty"`
	Decrease         float64  `json:"decrease,omitempty"`
	// Demand:
	DemandBps float64 `json:"demand_bps,omitempty"`
	// Propose:
	Policy string `json:"policy,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

// NewDaemon opens (or creates) the data directory, recovers durable
// state into a warm compiler, and readies the HTTP API. Start the
// listener with Handler(); stop with Close().
func NewDaemon(cfg Config) (*Daemon, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("merlind: config has no topology")
	}
	store, rec, err := journal.Open(cfg.DataDir, cfg.Journal)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:       cfg,
		store:     store,
		ops:       make(chan *op),
		loopDone:  make(chan struct{}),
		sessions:  map[string]*merlin.Session{},
		shards:    map[string]bool{},
		TornBytes: rec.TornBytes,
	}
	if err := d.bootstrap(rec); err != nil {
		store.Close()
		return nil, err
	}
	d.BootSeq = store.LastSeq()
	d.buildMux()
	go d.loop()
	return d, nil
}

// bootstrap rebuilds the compiler from the recovered snapshot + journal
// tail (warm), from the whole journal (replay), or from the genesis
// policy on first boot.
func (d *Daemon) bootstrap(rec *journal.Recovery) error {
	switch {
	case rec.Snapshot != nil:
		d.Boot = "warm"
		snap, err := merlin.ParseSnapshot(rec.Snapshot)
		if err != nil {
			return err
		}
		c, _, err := merlin.RestoreCompiler(d.cfg.Topo, snap, d.cfg.Opts)
		if err != nil {
			return err
		}
		d.c = c
	case len(rec.Records) > 0:
		d.Boot = "replay"
		d.c = merlin.NewCompiler(d.cfg.Topo, d.cfg.Place, d.cfg.Opts)
	default:
		d.Boot = "genesis"
		if strings.TrimSpace(d.cfg.PolicyText) == "" {
			return fmt.Errorf("merlind: empty journal and no genesis policy")
		}
		pol, err := merlin.ParsePolicy(d.cfg.PolicyText, d.cfg.Topo)
		if err != nil {
			return fmt.Errorf("merlind: genesis policy: %w", err)
		}
		c := merlin.NewCompiler(d.cfg.Topo, d.cfg.Place, d.cfg.Opts)
		if _, err := c.Compile(pol); err != nil {
			return fmt.Errorf("merlind: genesis compile: %w", err)
		}
		// Journal the canonical form so replay needs no policy file.
		if _, err := d.store.Append(merlin.RecPolicy, []byte(pol.String())); err != nil {
			return err
		}
		d.c = c
		d.sinceSnap = 1
		return nil
	}
	for i, r := range rec.Records {
		if err := merlin.ApplyJournalRecord(d.c, r.Kind, r.Data); err != nil {
			return fmt.Errorf("merlind: journal replay at record %d (seq %d): %w", i, r.Seq, err)
		}
	}
	d.sinceSnap = len(rec.Records)
	return nil
}

// submit hands an op to the apply loop and waits for its result.
func (d *Daemon) submit(o *op) opResult {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return opResult{http.StatusServiceUnavailable, errorBody{"daemon is shutting down"}}
	}
	d.submits.Add(1)
	d.mu.Unlock()
	o.reply = make(chan opResult, 1)
	d.ops <- o
	d.submits.Done()
	return <-o.reply
}

// loop is the single apply goroutine: every mutation applies, journals,
// and acknowledges here, in order.
func (d *Daemon) loop() {
	defer close(d.loopDone)
	var pending *op
	for {
		o := pending
		pending = nil
		if o == nil {
			var ok bool
			o, ok = <-d.ops
			if !ok {
				return
			}
		}
		if o.kind == opTopo {
			batch, next, open := d.collectTopo(o)
			d.applyTopoOps(batch)
			pending = next
			if !open {
				return
			}
			continue
		}
		d.apply(o)
	}
}

// collectTopo coalesces queued topology ops behind the first one —
// the daemon-side twin of WatchTopo's batching. A non-topology op ends
// the batch and is returned for ordinary processing; open reports
// whether the op channel is still open.
func (d *Daemon) collectTopo(first *op) (batch []*op, next *op, open bool) {
	batch = []*op{first}
	if d.cfg.Debounce > 0 {
		timer := time.NewTimer(d.cfg.Debounce)
		defer timer.Stop()
		for {
			select {
			case o, ok := <-d.ops:
				if !ok {
					return batch, nil, false
				}
				if o.kind == opTopo {
					batch = append(batch, o)
					continue
				}
				return batch, o, true
			case <-timer.C:
				return batch, nil, true
			}
		}
	}
	for {
		select {
		case o, ok := <-d.ops:
			if !ok {
				return batch, nil, false
			}
			if o.kind == opTopo {
				batch = append(batch, o)
				continue
			}
			return batch, o, true
		default:
			return batch, nil, true
		}
	}
}

func (d *Daemon) apply(o *op) {
	switch o.kind {
	case opDelta:
		o.reply <- d.applyDelta(o.delta)
	case opSnapshot:
		o.reply <- d.applySnapshot()
	case opHubRegister, opHubDemand, opHubTick, opHubPropose:
		o.reply <- d.applyHub(o)
	default:
		o.reply <- opResult{http.StatusInternalServerError, errorBody{"unknown op"}}
	}
}

func (d *Daemon) applyDelta(w merlin.WireDelta) opResult {
	delta, err := d.c.DecodeDelta(w)
	if err != nil {
		return opResult{http.StatusBadRequest, errorBody{err.Error()}}
	}
	diff, err := d.c.Update(delta)
	if err != nil {
		return opResult{http.StatusUnprocessableEntity, errorBody{err.Error()}}
	}
	d.applyBroke = false
	payload, err := json.Marshal(w)
	if err != nil {
		return opResult{http.StatusInternalServerError, errorBody{err.Error()}}
	}
	seq, err := d.journal(merlin.RecDelta, payload)
	if err != nil {
		return opResult{http.StatusInternalServerError, errorBody{err.Error()}}
	}
	// Direct deltas reset hub mode: the hub's policy no longer matches.
	d.dropHub()
	in, rm := diff.Counts()
	return opResult{http.StatusOK, map[string]any{
		"seq": seq, "install": in.Total(), "remove": rm.Total(),
	}}
}

func (d *Daemon) applyTopoOps(batch []*op) {
	var events []merlin.TopoEvent
	for _, o := range batch {
		events = append(events, o.topo...)
	}
	install, remove := 0, 0
	var errs []string
	applied := d.c.ApplyTopoBatch(events,
		func(diff *merlin.Diff) {
			in, rm := diff.Counts()
			install += in.Total()
			remove += rm.Total()
		},
		func(err error) { errs = append(errs, err.Error()) })
	d.applyBroke = len(errs) > 0 && len(applied) > 0
	var seq uint64
	if len(applied) > 0 {
		payload, err := json.Marshal(merlin.WireTopoEvents(applied))
		if err == nil {
			seq, err = d.journal(merlin.RecTopo, payload)
		}
		if err != nil {
			res := opResult{http.StatusInternalServerError, errorBody{err.Error()}}
			for _, o := range batch {
				o.reply <- res
			}
			return
		}
	}
	status := http.StatusOK
	if len(applied) == 0 && len(errs) > 0 {
		status = http.StatusUnprocessableEntity
	}
	res := opResult{status, map[string]any{
		"seq": seq, "applied": len(applied), "coalesced": len(events),
		"install": install, "remove": remove, "errors": errs,
	}}
	for _, o := range batch {
		o.reply <- res
	}
}

func (d *Daemon) applySnapshot() opResult {
	seq, err := d.snapshot(true)
	if err != nil {
		return opResult{http.StatusInternalServerError, errorBody{err.Error()}}
	}
	return opResult{http.StatusOK, map[string]any{"seq": seq}}
}

func (d *Daemon) applyHub(o *op) opResult {
	if err := d.ensureHub(); err != nil {
		return opResult{http.StatusUnprocessableEntity, errorBody{err.Error()}}
	}
	req := o.hub
	switch o.kind {
	case opHubRegister:
		if !d.shards[req.Shard] {
			if err := d.hub.AddShard(req.Shard, req.ShardCapacityBps); err != nil {
				return opResult{http.StatusBadRequest, errorBody{err.Error()}}
			}
			d.shards[req.Shard] = true
		}
		s, err := d.hub.Register(req.Tenant, req.Shard, req.Statements, merlin.AIMDState{
			Alloc: req.AllocBps, Increase: req.IncreaseBps, Decrease: req.Decrease,
		})
		if err != nil {
			return opResult{http.StatusBadRequest, errorBody{err.Error()}}
		}
		d.sessions[req.Tenant] = s
		return opResult{http.StatusOK, map[string]any{"tenant": req.Tenant, "shard": req.Shard}}
	case opHubDemand:
		s, ok := d.sessions[req.Tenant]
		if !ok {
			return opResult{http.StatusNotFound, errorBody{fmt.Sprintf("no session for tenant %q (sessions are volatile — re-register after a restart)", req.Tenant)}}
		}
		s.OfferDemand(req.DemandBps)
		return opResult{http.StatusOK, map[string]any{"tenant": req.Tenant}}
	case opHubTick:
		rep, err := d.hub.Tick()
		if err != nil {
			return opResult{http.StatusUnprocessableEntity, errorBody{err.Error()}}
		}
		var seq uint64
		if rep.Committed {
			// Journal the committed policy as a full-policy record; the
			// hub's commit callback already recompiled through the
			// compiler (under the hub lock, so the policy is read here,
			// after Tick returned).
			seq, err = d.journal(merlin.RecPolicy, []byte(d.hub.Policy().String()))
			if err != nil {
				return opResult{http.StatusInternalServerError, errorBody{err.Error()}}
			}
		}
		return opResult{http.StatusOK, map[string]any{
			"seq": seq, "committed": rep.Committed, "demands": rep.Demands, "changed": rep.Changed,
		}}
	case opHubPropose:
		pol, err := merlin.ParsePolicy(req.Policy, d.c.Topology())
		if err != nil {
			return opResult{http.StatusBadRequest, errorBody{err.Error()}}
		}
		recompiled, err := d.hub.Propose(req.Tenant, pol)
		if err != nil {
			return opResult{http.StatusUnprocessableEntity, errorBody{err.Error()}}
		}
		seq, err := d.journal(merlin.RecPolicy, []byte(d.hub.Policy().String()))
		if err != nil {
			return opResult{http.StatusInternalServerError, errorBody{err.Error()}}
		}
		return opResult{http.StatusOK, map[string]any{"seq": seq, "recompiled": recompiled}}
	}
	return opResult{http.StatusInternalServerError, errorBody{"unknown hub op"}}
}

// ensureHub lazily creates the negotiation hub over the current policy
// and binds it to the compiler. Sessions and shards are volatile state.
func (d *Daemon) ensureHub() error {
	if d.hub != nil {
		return nil
	}
	snap, err := d.c.Snapshot()
	if err != nil {
		return err
	}
	pol, err := merlin.ParsePolicy(snap.Policy, d.c.Topology())
	if err != nil {
		return err
	}
	hub, err := merlin.NewHub(pol, merlin.HubOptions{})
	if err != nil {
		return err
	}
	d.c.WatchHub(hub, nil)
	d.hub = hub
	return nil
}

func (d *Daemon) dropHub() {
	if d.hub == nil {
		return
	}
	d.c.UnwatchHub()
	d.hub = nil
	d.sessions = map[string]*merlin.Session{}
	d.shards = map[string]bool{}
}

// journal appends one record (ack-after-fsync) and advances the
// snapshot cadence.
func (d *Daemon) journal(kind byte, payload []byte) (uint64, error) {
	seq, err := d.store.Append(kind, payload)
	if err != nil {
		return 0, err
	}
	d.sinceSnap++
	if d.cfg.SnapshotEvery > 0 && d.sinceSnap >= d.cfg.SnapshotEvery {
		if _, err := d.snapshot(false); err != nil {
			// The record is durable; a failed snapshot only delays the
			// next warm restart. Surface it without failing the op.
			fmt.Fprintf(os.Stderr, "merlind: snapshot: %v\n", err)
		}
	}
	return seq, nil
}

// snapshot captures the compiler and persists it against the journal's
// current head. Skipped (not an error) while the latest applied state
// does not compile — a snapshot must restore, and topology facts that
// broke feasibility only restore through journal replay.
func (d *Daemon) snapshot(force bool) (uint64, error) {
	if d.applyBroke {
		if force {
			return 0, fmt.Errorf("merlind: current state does not compile; snapshot deferred until a successful apply")
		}
		return 0, nil
	}
	snap, err := d.c.Snapshot()
	if err != nil {
		return 0, err
	}
	seq := d.store.LastSeq()
	snap.Seq = seq
	payload, err := snap.Marshal()
	if err != nil {
		return 0, err
	}
	if err := d.store.Snapshot(seq, payload); err != nil {
		return 0, err
	}
	d.sinceSnap = 0
	return seq, nil
}

// Close drains the apply loop, takes a final snapshot, and closes the
// journal. In-flight requests finish first; later ones are refused.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.submits.Wait()
	close(d.ops)
	<-d.loopDone
	if _, err := d.snapshot(false); err != nil {
		fmt.Fprintf(os.Stderr, "merlind: final snapshot: %v\n", err)
	}
	return d.store.Close()
}

// Handler returns the daemon's HTTP API.
func (d *Daemon) Handler() http.Handler { return d.mux }

func (d *Daemon) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/delta", func(w http.ResponseWriter, r *http.Request) {
		var wd merlin.WireDelta
		if !decodeJSON(w, r, &wd) {
			return
		}
		writeResult(w, d.submit(&op{kind: opDelta, delta: wd}))
	})
	mux.HandleFunc("/v1/topo", func(w http.ResponseWriter, r *http.Request) {
		var ws []merlin.WireTopoEvent
		if !decodeJSON(w, r, &ws) {
			return
		}
		events := make([]merlin.TopoEvent, len(ws))
		for i, we := range ws {
			ev, err := we.Event()
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
				return
			}
			events[i] = ev
		}
		if len(events) == 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{"empty event batch"})
			return
		}
		writeResult(w, d.submit(&op{kind: opTopo, topo: events}))
	})
	mux.HandleFunc("/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST only"})
			return
		}
		writeResult(w, d.submit(&op{kind: opSnapshot}))
	})
	hubOp := func(kind opKind) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req hubRequest
			if r.ContentLength != 0 && !decodeJSON(w, r, &req) {
				return
			}
			writeResult(w, d.submit(&op{kind: kind, hub: req}))
		}
	}
	mux.HandleFunc("/v1/hub/register", hubOp(opHubRegister))
	mux.HandleFunc("/v1/hub/demand", hubOp(opHubDemand))
	mux.HandleFunc("/v1/hub/tick", hubOp(opHubTick))
	mux.HandleFunc("/v1/hub/propose", hubOp(opHubPropose))
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		js := d.store.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"boot":       d.Boot,
			"boot_seq":   d.BootSeq,
			"torn_bytes": d.TornBytes,
			"compiler":   d.c.Stats(),
			"journal": map[string]any{
				"appends": js.Appends, "commits": js.Commits, "last_seq": d.store.LastSeq(),
			},
		})
	})
	mux.HandleFunc("/v1/result", func(w http.ResponseWriter, r *http.Request) {
		res := d.c.Result()
		if res == nil {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{"no compiled result"})
			return
		}
		counts := res.Counts()
		writeJSON(w, http.StatusOK, map[string]any{
			"counts": counts, "total": counts.Total(), "paths": res.Paths,
		})
	})
	mux.HandleFunc("/v1/policy", func(w http.ResponseWriter, r *http.Request) {
		snap, err := d.c.Snapshot()
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, snap.Policy)
	})
	d.mux = mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST only"})
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return false
	}
	return true
}

func writeResult(w http.ResponseWriter, res opResult) { writeJSON(w, res.status, res.body) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
