package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"merlin"
	"merlin/internal/journal"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8640", "HTTP listen address")
		dataDir    = flag.String("data", "merlind-data", "journal + snapshot directory")
		topoSpec   = flag.String("topo", "fattree,k=4", "topology spec: fattree,k=N | ring,n=N,hosts=H | linear,n=N | star,n=N,hosts=H | example (optional ,cap=<bps>)")
		policyPath = flag.String("policy", "", "genesis policy file (first boot only; ignored once the journal exists)")
		snapEvery  = flag.Int("snapshot-every", 64, "snapshot after this many journal records (0 = shutdown only)")
		debounce   = flag.Duration("debounce", 2*time.Millisecond, "topology batch window")
		noSync     = flag.Bool("no-sync", false, "skip fsync (testing only; crashes may lose acknowledged ops)")
		workers    = flag.Int("workers", 0, "compiler worker parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()

	tp, err := ParseTopoSpec(*topoSpec)
	if err != nil {
		log.Fatalf("merlind: %v", err)
	}
	var policyText string
	if *policyPath != "" {
		b, err := os.ReadFile(*policyPath)
		if err != nil {
			log.Fatalf("merlind: %v", err)
		}
		policyText = string(b)
	}
	d, err := NewDaemon(Config{
		DataDir:       *dataDir,
		Topo:          tp,
		PolicyText:    policyText,
		Opts:          merlin.Options{Workers: *workers},
		SnapshotEvery: *snapEvery,
		Debounce:      *debounce,
		Journal:       journal.Params{NoSync: *noSync},
	})
	if err != nil {
		log.Fatalf("merlind: %v", err)
	}
	log.Printf("merlind: recovered (%s boot, seq %d) on %s, serving %s", d.Boot, d.BootSeq, *topoSpec, *addr)

	srv := &http.Server{Addr: *addr, Handler: d.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("merlind: %v, shutting down", sig)
	case err := <-errc:
		log.Printf("merlind: server: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if err := d.Close(); err != nil {
		log.Fatalf("merlind: close: %v", err)
	}
	log.Printf("merlind: clean shutdown")
}

// ParseTopoSpec constructs a topology from a compact spec string such as
// "fattree,k=8" or "ring,n=16,hosts=2,cap=1e9". The same spec must be
// given on every boot: the journal records dynamics (failures, capacity
// changes), not the base graph.
func ParseTopoSpec(spec string) (*merlin.Topology, error) {
	parts := strings.Split(spec, ",")
	kind := strings.TrimSpace(parts[0])
	args := map[string]float64{}
	for _, p := range parts[1:] {
		kv := strings.SplitN(p, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("topo spec: bad parameter %q", p)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("topo spec: %q: %v", p, err)
		}
		args[strings.TrimSpace(kv[0])] = v
	}
	num := func(key string, def float64) float64 {
		if v, ok := args[key]; ok {
			return v
		}
		return def
	}
	cap := num("cap", merlin.Gbps)
	switch kind {
	case "fattree":
		return merlin.FatTree(int(num("k", 4)), cap), nil
	case "ring":
		return merlin.Ring(int(num("n", 8)), int(num("hosts", 1)), cap), nil
	case "linear":
		return merlin.Linear(int(num("n", 4)), cap), nil
	case "star":
		return merlin.Star(int(num("n", 4)), int(num("hosts", 1)), cap), nil
	case "example":
		return merlin.Example(cap), nil
	}
	return nil, fmt.Errorf("topo spec: unknown topology %q", kind)
}
