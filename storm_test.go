package merlin

import (
	"sync"
	"testing"
	"time"
)

// TestWatchTopoDebounceCoalescesStorm covers the correlated-failure
// story: a switch dies and its loss-of-light link alarms trickle in
// moments later. With Options.TopoDebounce set, WatchTopo holds the batch
// open across the trickle, so the storm costs one invalidation sweep and
// one recompile — three events, one Update, one diff.
func TestWatchTopoDebounceCoalescesStorm(t *testing.T) {
	tp := FatTree(4, Gbps)
	pol, err := ParsePolicy(`foreach (s,d) in cross(hosts,hosts): .*`, tp)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{NoDefault: true, TopoDebounce: 2 * time.Second})
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	base := c.Stats()

	var (
		mu    sync.Mutex
		diffs int
		errs  []error
	)
	events := make(chan TopoEvent)
	done := c.WatchTopo(events,
		func(*Diff) { mu.Lock(); diffs++; mu.Unlock() },
		func(err error) { mu.Lock(); errs = append(errs, err); mu.Unlock() })

	// The storm: the switch failure, then the (already-down) link alarms
	// arriving shortly after — inside the debounce window.
	events <- SwitchFailure("agg0_0")
	time.Sleep(10 * time.Millisecond)
	events <- LinkFailure("agg0_0", "edge0_0")
	time.Sleep(10 * time.Millisecond)
	events <- LinkFailure("agg0_0", "edge0_1")
	close(events) // closing ends the collection window immediately
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 0 {
		t.Fatalf("storm produced errors: %v", errs)
	}
	if diffs != 1 {
		t.Fatalf("storm produced %d diffs, want 1 coalesced batch", diffs)
	}
	st := c.Stats()
	if st.Updates != base.Updates+1 {
		t.Fatalf("storm cost %d updates, want 1", st.Updates-base.Updates)
	}
	if st.TopoEvents != base.TopoEvents+3 {
		t.Fatalf("applied %d events, want 3", st.TopoEvents-base.TopoEvents)
	}
	// One sweep: the switch failure patches the lone best-effort graph in
	// place once; the redundant link alarms are no-ops.
	if st.GraphsPatched != base.GraphsPatched+1 {
		t.Fatalf("storm patched %d graphs, want 1", st.GraphsPatched-base.GraphsPatched)
	}
	if st.GraphsInvalidated != base.GraphsInvalidated || st.GraphBuilds != base.GraphBuilds {
		t.Fatalf("storm evicted or rebuilt graphs the patch path should repair: %+v -> %+v", base, st)
	}
}

// TestWatchTopoDebounceSeparateBursts asserts debouncing does not merge
// bursts separated by more than the window: two failures a full window
// apart recompile twice.
func TestWatchTopoDebounceSeparateBursts(t *testing.T) {
	tp := FatTree(4, Gbps)
	pol, err := ParsePolicy(`foreach (s,d) in cross(hosts,hosts): .*`, tp)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{NoDefault: true, TopoDebounce: 20 * time.Millisecond})
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		diffs int
	)
	events := make(chan TopoEvent)
	done := c.WatchTopo(events, func(*Diff) { mu.Lock(); diffs++; mu.Unlock() }, nil)
	events <- LinkFailure("agg0_0", "edge0_0")
	time.Sleep(300 * time.Millisecond) // well past the window: first batch applies
	events <- LinkFailure("agg1_0", "edge1_0")
	close(events)
	<-done
	mu.Lock()
	defer mu.Unlock()
	if diffs != 2 {
		t.Fatalf("separated bursts produced %d diffs, want 2", diffs)
	}
}

// TestFailurePatchesOnlyIncidentBestEffortGraphs covers selective
// best-effort repair: a link failure touches only the minimized product
// graphs whose cable incidence includes an affected cable — the same
// scoping the anchored graphs already get — and repairs those in place
// (WithoutLinks) instead of rebuilding, evicting only the sink trees
// whose used paths crossed the cable.
// islandTopo builds two 2-host switch islands joined by a single s1-s2
// trunk. Identities are deterministic in construction order, so policies
// parsed against one instance compile against another.
func islandTopo() *Topology {
	tp := NewTopology()
	s1 := tp.AddSwitch("s1")
	s2 := tp.AddSwitch("s2")
	h1 := tp.AddHost("h1")
	h2 := tp.AddHost("h2")
	h3 := tp.AddHost("h3")
	h4 := tp.AddHost("h4")
	tp.AddLink(h1, s1, Gbps)
	tp.AddLink(h2, s1, Gbps)
	tp.AddLink(h3, s2, Gbps)
	tp.AddLink(h4, s2, Gbps)
	tp.AddLink(s1, s2, Gbps)
	return tp
}

func TestFailurePatchesOnlyIncidentBestEffortGraphs(t *testing.T) {
	tp := islandTopo()
	ids := tp.Identities()
	m1, _ := ids.Of(tp.MustLookup("h1"))
	m2, _ := ids.Of(tp.MustLookup("h2"))
	m3, _ := ids.Of(tp.MustLookup("h3"))
	m4, _ := ids.Of(tp.MustLookup("h4"))
	// Statement a is pinned to the s1 island by its path expression, so
	// its minimized graph never rides the s1-s2 trunk; statement b's .*
	// graph spans the whole topology.
	src := `
[ a : (eth.src = ` + m1.MAC + ` and eth.dst = ` + m2.MAC + `) -> h1 s1 h2
  b : (eth.src = ` + m3.MAC + ` and eth.dst = ` + m4.MAC + `) -> .* ]`
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	base := c.Stats()
	if base.GraphBuilds != 2 || base.TreeBuilds != 2 {
		t.Fatalf("baseline built %d graphs / %d trees, want 2/2", base.GraphBuilds, base.TreeBuilds)
	}

	// Failing the trunk affects only statement b's graph; both hosts of
	// each statement stay connected, so the recompile succeeds.
	if _, err := c.ApplyTopo(LinkFailure("s1", "s2")); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.GraphsPatched != base.GraphsPatched+1 {
		t.Fatalf("patched %d best-effort graphs, want only b's 1", st.GraphsPatched-base.GraphsPatched)
	}
	if st.GraphsInvalidated != base.GraphsInvalidated || st.GraphBuilds != base.GraphBuilds {
		t.Fatalf("b's graph was evicted or rebuilt instead of patched in place: %+v -> %+v", base, st)
	}
	// b's tree routes h1, h2 and s1 over the trunk, so it cannot survive
	// the patch and is rebuilt on the repaired graph.
	if st.TreesInvalidated != base.TreesInvalidated+1 || st.TreeBuilds != base.TreeBuilds+1 {
		t.Fatalf("recompile evicted %d / rebuilt %d trees, want only b's 1/1",
			st.TreesInvalidated-base.TreesInvalidated, st.TreeBuilds-base.TreeBuilds)
	}
	// The patched graph must be indistinguishable from a cold build on the
	// degraded topology: compiled output, paths and placements all match.
	degraded := islandTopo()
	if _, err := degraded.SetLinkState(degraded.MustLookup("s1"), degraded.MustLookup("s2"), false); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "trunk-failure-patch", c.Result(), pol, degraded, nil, Options{NoDefault: true})

	// Recovery is selective too: only b's graph was patched while the
	// trunk was down (the patch stamped it with the outage), so only it —
	// and its tree — drops. Statement a's island graph, built under full
	// connectivity and untouched by the failure, survives both events.
	if _, err := c.ApplyTopo(LinkRecovery("s1", "s2")); err != nil {
		t.Fatal(err)
	}
	st2 := c.Stats()
	if st2.GraphsInvalidated != st.GraphsInvalidated+1 || st2.TreesInvalidated != st.TreesInvalidated+1 {
		t.Fatalf("recovery evicted %d graphs / %d trees, want only b's 1/1",
			st2.GraphsInvalidated-st.GraphsInvalidated, st2.TreesInvalidated-st.TreesInvalidated)
	}
	if st2.GraphBuilds != st.GraphBuilds+1 || st2.TreeBuilds != st.TreeBuilds+1 {
		t.Fatalf("recovery recompile rebuilt %d graphs / %d trees, want 1/1",
			st2.GraphBuilds-st.GraphBuilds, st2.TreeBuilds-st.TreeBuilds)
	}
	sameCompiled(t, "trunk-recovery", c.Result(), pol, islandTopo(), nil, Options{NoDefault: true})
}

// TestFailureKeepsTreesOffUsedPaths pins the surviving-tree half of the
// patch path: on an odd ring every node has a unique shortest route to the
// destination, so failing the one cable no tree path uses patches the
// spanning graph in place but keeps the sink tree verbatim — no tree
// eviction, no rebuild — and the compiled output is byte-identical to a
// cold compile on the degraded ring.
func TestFailureKeepsTreesOffUsedPaths(t *testing.T) {
	tp := Ring(5, 1, Gbps)
	ids := tp.Identities()
	src, _ := ids.Of(tp.MustLookup("h1_0"))
	dst, _ := ids.Of(tp.MustLookup("h0_0"))
	pol, err := ParsePolicy(
		`[ x : (eth.src = `+src.MAC+` and eth.dst = `+dst.MAC+`) -> .* ]`, tp)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NoDefault: true}
	c := NewCompiler(tp, nil, opts)
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	base := c.Stats()

	// Toward h0_0, s2 routes via s1 (2 hops, not 3 via s3) and s3 via s4,
	// so the s2-s3 cable carries no tree path — only graph edges.
	if _, err := c.ApplyTopo(LinkFailure("s2", "s3")); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.GraphsPatched != base.GraphsPatched+1 || st.GraphBuilds != base.GraphBuilds {
		t.Fatalf("spanning graph not patched in place: %+v -> %+v", base, st)
	}
	if st.TreesKept != base.TreesKept+1 || st.TreesInvalidated != base.TreesInvalidated ||
		st.TreeBuilds != base.TreeBuilds {
		t.Fatalf("off-path failure did not keep the sink tree: %+v -> %+v", base, st)
	}
	degraded := Ring(5, 1, Gbps)
	if _, err := degraded.SetLinkState(degraded.MustLookup("s2"), degraded.MustLookup("s3"), false); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "kept-tree-failure", c.Result(), pol, degraded, nil, opts)

	// The patch stamped the graph with the outage, so recovery evicts and
	// rebuilds it — the kept tree must not outlive its graph.
	if _, err := c.ApplyTopo(LinkRecovery("s2", "s3")); err != nil {
		t.Fatal(err)
	}
	st2 := c.Stats()
	if st2.GraphsInvalidated != st.GraphsInvalidated+1 || st2.TreesInvalidated != st.TreesInvalidated+1 {
		t.Fatalf("recovery did not evict the patched graph and its tree: %+v -> %+v", st, st2)
	}
	sameCompiled(t, "kept-tree-recovery", c.Result(), pol, Ring(5, 1, Gbps), nil, opts)
}
