package merlin

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"merlin/internal/negotiate"
	"merlin/internal/policy"
	"merlin/internal/pred"
)

// sameCompiled asserts that an incremental result equals what a fresh
// one-shot Compile of the same policy produces.
func sameCompiled(t *testing.T, label string, got *Result, pol *Policy, tp *Topology, place Placement, opts Options) {
	t.Helper()
	want, err := Compile(pol, tp, place, opts)
	if err != nil {
		t.Fatalf("%s: fresh compile: %v", label, err)
	}
	if !reflect.DeepEqual(got.Output, want.Output) {
		t.Fatalf("%s: incremental output differs from fresh compile", label)
	}
	if !reflect.DeepEqual(got.Paths, want.Paths) {
		t.Fatalf("%s: paths differ: %v vs %v", label, got.Paths, want.Paths)
	}
	if !reflect.DeepEqual(got.Placements, want.Placements) {
		t.Fatalf("%s: placements differ", label)
	}
	if !reflect.DeepEqual(got.Allocations, want.Allocations) {
		t.Fatalf("%s: allocations differ", label)
	}
	if !reflect.DeepEqual(got.Programs, want.Programs) {
		t.Fatalf("%s: end-host programs differ", label)
	}
}

// capFormula builds "max(x+y, xyCap) and min(z, zMin)" — the paper
// example's formula with adjustable rates.
func capFormula(xyCap, zMin float64) policy.Formula {
	return policy.ConjFormula(
		policy.Max{Expr: policy.BandExpr{IDs: []string{"x", "y"}}, Rate: xyCap},
		policy.Min{Expr: policy.BandExpr{IDs: []string{"z"}}, Rate: zMin},
	)
}

func TestCompilerUpdateBeforeCompile(t *testing.T) {
	c := NewCompiler(Example(Gbps), nil, Options{})
	if _, err := c.Update(Delta{}); err == nil {
		t.Fatal("Update before Compile accepted")
	}
}

// TestCompilerCapChangePatches covers the negotiators' fast path: a
// caps-only formula change must reuse every artifact, patch only the tc
// commands, and still match a fresh compile exactly.
func TestCompilerCapChangePatches(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	c := NewCompiler(tp, place, Options{})
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	if first.Allocations["x"].Max != 25*MBps {
		t.Fatalf("unexpected baseline allocation: %+v", first.Allocations["x"])
	}
	base := c.Stats()

	diff, err := c.Update(Delta{Formula: capFormula(40*MBps, 10*MBps)})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.StatementBuilds != base.StatementBuilds || st.GraphBuilds != base.GraphBuilds ||
		st.TreeBuilds != base.TreeBuilds || st.AnchoredBuilds != base.AnchoredBuilds {
		t.Fatalf("cap change rebuilt artifacts: %+v -> %+v", base, st)
	}
	if st.SolvesReused != base.SolvesReused+1 {
		t.Fatalf("cap change re-solved the MIP: %+v", st)
	}
	if st.PatchedCodegens != base.PatchedCodegens+1 {
		t.Fatalf("cap change did not take the codegen patch path: %+v", st)
	}
	// The diff touches only tc commands (and both install and remove,
	// since the caps moved rather than appeared).
	if len(diff.InstallRules) != 0 || len(diff.RemoveRules) != 0 ||
		len(diff.InstallQueues) != 0 || len(diff.RemoveQueues) != 0 ||
		len(diff.InstallClick) != 0 || len(diff.RemoveClick) != 0 {
		t.Fatalf("cap change diffed non-tc sections: %+v", diff)
	}
	if len(diff.InstallTC) == 0 || len(diff.RemoveTC) == 0 {
		t.Fatalf("cap change produced no tc delta: %+v", diff)
	}
	// The end-host interpreter rate limits moved with the cap, so the
	// diff must carry replacement programs for the affected hosts.
	if len(diff.InstallPrograms) == 0 || len(diff.RemovePrograms) == 0 {
		t.Fatalf("cap change produced no program delta: %+v", diff)
	}

	// The incremental result matches a fresh compile of the same policy.
	newPol := &Policy{Statements: pol.Statements, Formula: capFormula(40*MBps, 10*MBps)}
	sameCompiled(t, "cap-change", c.Result(), newPol, tp, place, Options{})
}

// TestCompilerRateChangeWarmSolves covers delta re-provisioning: changing
// a guarantee's rate keeps the model shape, so the re-solve warm-starts
// from the previous optimal basis and the output matches a fresh compile.
func TestCompilerRateChangeWarmSolves(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	c := NewCompiler(tp, place, Options{})
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	base := c.Stats()

	if _, err := c.Update(Delta{Formula: capFormula(50*MBps, 20*MBps)}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.WarmSolves != base.WarmSolves+1 {
		t.Fatalf("rate change did not warm-start: %+v", st)
	}
	if st.StatementBuilds != base.StatementBuilds || st.GraphBuilds != base.GraphBuilds ||
		st.AnchoredBuilds != base.AnchoredBuilds || st.TreeBuilds != base.TreeBuilds {
		t.Fatalf("rate change rebuilt graph artifacts: %+v -> %+v", base, st)
	}
	newPol := &Policy{Statements: pol.Statements, Formula: capFormula(50*MBps, 20*MBps)}
	sameCompiled(t, "rate-change", c.Result(), newPol, tp, place, Options{})
}

// TestCompilerAddRemoveStatement covers statement-set deltas: adding a
// statement builds only its artifacts; removing it restores the original
// configuration.
func TestCompilerAddRemoveStatement(t *testing.T) {
	tp := Example(Gbps)
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	h2, _ := ids.Of(tp.MustLookup("h2"))
	src := `
[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 20) -> .*
  y : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 21) -> .* ]
`
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	first, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	firstOut := first.Output

	extraSrc := `[ w : (eth.src = ` + h2.MAC + ` and eth.dst = ` + h1.MAC + ` and tcp.dst = 22) -> .* ]`
	extraPol, err := ParsePolicy(extraSrc, tp)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Stats()
	diff, err := c.Update(Delta{Add: extraPol.Statements})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.StatementBuilds != base.StatementBuilds+1 {
		t.Fatalf("add rebuilt %d statements, want 1", st.StatementBuilds-base.StatementBuilds)
	}
	if len(diff.InstallRules) == 0 {
		t.Fatal("adding a statement installed no rules")
	}
	newPol := &Policy{Statements: append(append([]Statement(nil), pol.Statements...), extraPol.Statements...), Formula: pol.Formula}
	sameCompiled(t, "add", c.Result(), newPol, tp, nil, Options{NoDefault: true})

	// Removing the statement restores the original configuration. The
	// diff both removes w's rules and reinstalls x/y's classification at
	// their original priorities (priorities are position-relative).
	diff, err = c.Update(Delta{Remove: []string{"w"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.RemoveRules) == 0 {
		t.Fatalf("removing the statement removed no rules: %+v", diff)
	}
	if !reflect.DeepEqual(c.Result().Output, firstOut) {
		t.Fatal("remove did not restore the original configuration")
	}

	if _, err := c.Update(Delta{Remove: []string{"nope"}}); err == nil {
		t.Fatal("removing an unknown statement accepted")
	}
	if _, err := c.Update(Delta{Add: pol.Statements[:1]}); err == nil {
		t.Fatal("adding a duplicate statement accepted")
	}
}

// TestCompilerFailedUpdateDoesNotPoisonCache: a delta that fails after
// the statement stage leaves its artifacts cached; retrying the same
// delta must fail again rather than spuriously serving the previous
// policy's rules through the codegen patch path.
func TestCompilerFailedUpdateDoesNotPoisonCache(t *testing.T) {
	tp := Example(Gbps)
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	h2, _ := ids.Of(tp.MustLookup("h2"))
	goodSrc := `[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + `) -> .* ]`
	good, err := ParsePolicy(goodSrc, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Same ID, unsatisfiable path: "scrub" has no placement, so the
	// failure surfaces in the best-effort/codegen stages — after the
	// statement cache has been written.
	badSrc := `[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + `) -> .* scrub .* ]`
	bad, err := ParsePolicy(badSrc, tp)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCompiler(tp, nil, Options{NoDefault: true})
	first, err := c.Compile(good)
	if err != nil {
		t.Fatal(err)
	}
	swap := Delta{Remove: []string{"x"}, Add: bad.Statements}
	if _, err := c.Update(swap); err == nil {
		t.Fatal("unsatisfiable statement accepted")
	}
	if _, err := c.Update(swap); err == nil {
		t.Fatal("retried unsatisfiable statement accepted (stale patch served)")
	}
	if got := c.Result(); got != first {
		t.Fatal("failed updates replaced the last good result")
	}
	// The compiler still works — and still matches a fresh compile —
	// after the failed attempts.
	if _, err := c.Compile(good); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "recovery", c.Result(), good, tp, nil, Options{NoDefault: true})
}

// TestCompilerReorderAfterFailedPass: a failed pass writes the statement
// cache from a reordered policy; a follow-up compile sharing that
// reordered slice must not take the patch path against the older
// result's priorities.
func TestCompilerReorderAfterFailedPass(t *testing.T) {
	tp := Example(Gbps)
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	h2, _ := ids.Of(tp.MustLookup("h2"))
	src := `
[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 20) -> .*
  y : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 21) -> .* ],
max(x, 30MB/s)
`
	polA, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	if _, err := c.Compile(polA); err != nil {
		t.Fatal(err)
	}
	// Reordered statements + an infeasible guarantee: the pass fails in
	// provisioning, after the statement cache was written from reordered.
	reordered := []Statement{polA.Statements[1], polA.Statements[0]}
	infeasible := policy.ConjFormula(
		policy.Max{Expr: policy.BandExpr{IDs: []string{"x"}}, Rate: 200 * Gbps},
		policy.Min{Expr: policy.BandExpr{IDs: []string{"x"}}, Rate: 100 * Gbps},
	)
	if _, err := c.Compile(&Policy{Statements: reordered, Formula: infeasible}); err == nil {
		t.Fatal("infeasible guarantee accepted")
	}
	// Retry with the reordered slice and a satisfiable formula: the
	// output must match a fresh compile of the reordered policy (x and y
	// swap first-match priorities), not the cached polA rules.
	retry := &Policy{Statements: reordered, Formula: polA.Formula}
	if _, err := c.Compile(retry); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "reorder-after-failure", c.Result(), retry, tp, nil, Options{NoDefault: true})
}

// TestCompilerPlacementChange covers Delta.Place: moving a function must
// re-resolve path expressions and reroute through the new location.
func TestCompilerPlacementChange(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"m1"}, "nat": {"m1"}}
	c := NewCompiler(tp, place, Options{})
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	newPlace := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	if _, err := c.Update(Delta{Place: newPlace}); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "placement", c.Result(), pol, tp, newPlace, Options{})

	// A rejected placement (nat unplaceable → z's path unsatisfiable)
	// must not take effect: the next pass still compiles under the last
	// accepted placement.
	if _, err := c.Update(Delta{Place: Placement{"dpi": {"m1"}}}); err == nil {
		t.Fatal("placement breaking a guaranteed path accepted")
	}
	if _, err := c.Update(Delta{Formula: capFormula(45*MBps, 10*MBps)}); err != nil {
		t.Fatal(err)
	}
	sameCompiled(t, "placement-rollback", c.Result(),
		&Policy{Statements: pol.Statements, Formula: capFormula(45*MBps, 10*MBps)},
		tp, newPlace, Options{})
}

// TestCompilerWatchNegotiator runs the §4 adaptation loop end-to-end: a
// tenant delegated from the root renegotiates its caps each tick with an
// AIMD controller through Negotiator.Reallocate, which drives the
// compiler via Watch. Every tick must take the patched-codegen fast path
// — no graph rebuilds, no solver runs, no rule churn — while staying
// consistent with a fresh compile.
func TestCompilerWatchNegotiator(t *testing.T) {
	tp := Example(Gbps)
	pol := paperPolicy(t, tp)
	place := Placement{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}

	root := NewNegotiator("root", pol)
	tenant, err := root.Delegate("tenant", pred.True)
	if err != nil {
		t.Fatal(err)
	}
	tenPol := tenant.Policy()

	c := NewCompiler(tp, place, Options{})
	if _, err := c.Compile(tenPol); err != nil {
		t.Fatal(err)
	}
	base := c.Stats()

	var diffs []*Diff
	c.Watch(tenant, func(d *Diff) { diffs = append(diffs, d) })

	// AIMD over the x+y aggregate cap: additive increase while under the
	// root's 50MB/s budget (Reallocate verifies each tick against the
	// parent policy), multiplicative decrease when the probe would burst
	// it — the Fig. 10(a) sawtooth driven through the real verifier.
	aimd := &negotiate.AIMDState{Alloc: 30 * MBps, Increase: 5 * MBps, Decrease: 0.5}
	ticks := 0
	for i := 0; i < 8; i++ {
		congested := aimd.Alloc+aimd.Increase > 50*MBps
		aimd.Update(aimd.Alloc, congested)
		if _, err := tenant.Reallocate(capFormula(aimd.Alloc, 10*MBps)); err != nil {
			t.Fatalf("tick %d (cap %v): %v", i, aimd.Alloc, err)
		}
		ticks++
	}
	st := c.Stats()
	if got := st.PatchedCodegens - base.PatchedCodegens; got != ticks {
		t.Fatalf("%d of %d ticks took the patch path", got, ticks)
	}
	if st.GraphBuilds != base.GraphBuilds || st.TreeBuilds != base.TreeBuilds ||
		st.StatementBuilds != base.StatementBuilds ||
		st.Solves != base.Solves || st.WarmSolves != base.WarmSolves {
		t.Fatalf("negotiation ticks were not incremental: %+v -> %+v", base, st)
	}
	if len(diffs) != ticks {
		t.Fatalf("got %d diffs for %d ticks", len(diffs), ticks)
	}
	for i, d := range diffs {
		if len(d.InstallRules) != 0 || len(d.RemoveRules) != 0 {
			t.Fatalf("tick %d diff churned rules", i)
		}
	}
	sameCompiled(t, "watch", c.Result(),
		&Policy{Statements: tenPol.Statements, Formula: capFormula(aimd.Alloc, 10*MBps)},
		tp, place, Options{})

	// An over-budget reallocation must veto cleanly: tenant policy and
	// compiled state unchanged.
	before := c.Result()
	if _, err := tenant.Reallocate(capFormula(80*MBps, 10*MBps)); err == nil {
		t.Fatal("over-budget reallocation accepted")
	}
	if c.Result() != before {
		t.Fatal("rejected reallocation recompiled")
	}
}

// tenantRingPolicy builds a two-tenant policy on an 8-switch ring: each
// tenant's guarantees are confined by their path expressions to opposite
// arcs of the ring, so provisioning decomposes into one link-disjoint
// shard per tenant. bRate is tenant B's guarantee rate.
func tenantRingPolicy(t *testing.T, tp *Topology, bRate string) *Policy {
	t.Helper()
	ids := tp.Identities()
	mac := func(host string) string {
		id, _ := ids.Of(tp.MustLookup(host))
		return id.MAC
	}
	arc := func(lo, hi int) string {
		var names []string
		for i := lo; i < hi; i++ {
			names = append(names, fmt.Sprintf("s%d", i), fmt.Sprintf("h%d_0", i))
		}
		return "(" + strings.Join(names, "|") + ")*"
	}
	src := fmt.Sprintf(`
[ a0 : (eth.src = %s and eth.dst = %s) -> %s at min(20MB/s)
  b0 : (eth.src = %s and eth.dst = %s) -> %s at min(%s) ]`,
		mac("h0_0"), mac("h3_0"), arc(0, 4),
		mac("h4_0"), mac("h7_0"), arc(4, 8), bRate)
	pol, err := ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// TestCompilerShardedDeltaResolvesOnlyTouchedShards covers sharding
// through the incremental layer: with two link-disjoint tenants, a rate
// change in tenant B warm-starts only B's shard and reuses tenant A's
// cached solution outright.
func TestCompilerShardedDeltaResolvesOnlyTouchedShards(t *testing.T) {
	tp := Ring(8, 1, 100*MBps)
	pol := tenantRingPolicy(t, tp, "10MB/s")
	c := NewCompiler(tp, nil, Options{NoDefault: true})
	if _, err := c.Compile(pol); err != nil {
		t.Fatal(err)
	}
	base := c.Stats()
	if base.ShardsSolved != 2 {
		t.Fatalf("base compile solved %d shards, want 2 (one per tenant)", base.ShardsSolved)
	}

	changed := tenantRingPolicy(t, tp, "30MB/s")
	if _, err := c.Update(Delta{Formula: changed.Formula}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ShardsWarm != base.ShardsWarm+1 {
		t.Fatalf("tenant B's rate change warm-started %d shards, want 1: %+v", st.ShardsWarm-base.ShardsWarm, st)
	}
	if st.ShardsReused != base.ShardsReused+1 {
		t.Fatalf("tenant A's untouched shard was not reused: %+v", st)
	}
	if st.ShardsSolved != base.ShardsSolved {
		t.Fatalf("rate change solved a shard cold: %+v", st)
	}
	if st.WarmSolves != base.WarmSolves+1 {
		t.Fatalf("warm-only run not counted as a warm solve: %+v", st)
	}
	if st.StatementBuilds != base.StatementBuilds || st.AnchoredBuilds != base.AnchoredBuilds {
		t.Fatalf("rate change rebuilt statement artifacts: %+v -> %+v", base, st)
	}

	// The incremental result matches a fresh compile of the same policy.
	newPol := &Policy{Statements: pol.Statements, Formula: changed.Formula}
	sameCompiled(t, "sharded-rate-change", c.Result(), newPol, tp, nil, Options{NoDefault: true})
}
