package negotiate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
)

// The wire protocol negotiators speak among themselves: newline-delimited
// JSON over TCP. Tenants declare bandwidth demands; the serving negotiator
// re-divides its capacity max-min fairly and answers with the tenant's
// allocation.

// Message is the protocol envelope.
type Message struct {
	// Type is "demand", "alloc", "release", or "error".
	Type string `json:"type"`
	// Tenant identifies the requesting negotiator.
	Tenant string `json:"tenant,omitempty"`
	// Bps carries the demanded or granted rate.
	Bps float64 `json:"bps,omitempty"`
	// Detail carries error text.
	Detail string `json:"detail,omitempty"`
}

// Server is a bandwidth negotiator serving tenant demands over TCP.
type Server struct {
	capacity float64

	mu      sync.Mutex
	demands map[string]float64
	ln      net.Listener
}

// NewServer creates a negotiator server dividing the given capacity.
func NewServer(capacity float64) *Server {
	return &Server{capacity: capacity, demands: map[string]float64{}}
}

// Allocations computes the current per-tenant max-min allocations.
func (s *Server) Allocations() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocationsLocked()
}

func (s *Server) allocationsLocked() map[string]float64 {
	names := make([]string, 0, len(s.demands))
	for n := range s.demands {
		names = append(names, n)
	}
	// Deterministic order for MaxMinFairShare input.
	sort.Strings(names)
	ds := make([]float64, len(names))
	for i, n := range names {
		ds[i] = s.demands[n]
	}
	alloc := MaxMinFairShare(s.capacity, ds)
	out := make(map[string]float64, len(names))
	for i, n := range names {
		out[n] = alloc[i]
	}
	return out
}

// Serve accepts tenant connections on the listener until it is closed.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	var tenant string
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			break
		}
		switch msg.Type {
		case "demand":
			if msg.Tenant == "" {
				enc.Encode(Message{Type: "error", Detail: "missing tenant"})
				continue
			}
			tenant = msg.Tenant
			s.mu.Lock()
			s.demands[tenant] = msg.Bps
			alloc := s.allocationsLocked()[tenant]
			s.mu.Unlock()
			if err := enc.Encode(Message{Type: "alloc", Tenant: tenant, Bps: alloc}); err != nil {
				break
			}
		case "release":
			s.mu.Lock()
			delete(s.demands, msg.Tenant)
			s.mu.Unlock()
			enc.Encode(Message{Type: "alloc", Tenant: msg.Tenant, Bps: 0})
		default:
			enc.Encode(Message{Type: "error", Detail: "unknown message type " + msg.Type})
		}
	}
	// Connection teardown releases the tenant's demand.
	if tenant != "" {
		s.mu.Lock()
		delete(s.demands, tenant)
		s.mu.Unlock()
	}
}

// Client is a tenant-side connection to a negotiator server.
type Client struct {
	tenant string
	conn   net.Conn
	dec    *json.Decoder
	enc    *json.Encoder
	mu     sync.Mutex
}

// Dial connects a tenant to a negotiator server.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		tenant: tenant,
		conn:   conn,
		dec:    json.NewDecoder(bufio.NewReader(conn)),
		enc:    json.NewEncoder(conn),
	}, nil
}

// Demand declares the tenant's offered load and returns the granted
// allocation.
func (c *Client) Demand(bps float64) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Message{Type: "demand", Tenant: c.tenant, Bps: bps}); err != nil {
		return 0, err
	}
	var resp Message
	if err := c.dec.Decode(&resp); err != nil {
		return 0, err
	}
	if resp.Type == "error" {
		return 0, fmt.Errorf("negotiate: server error: %s", resp.Detail)
	}
	return resp.Bps, nil
}

// Release withdraws the tenant's demand.
func (c *Client) Release() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Message{Type: "release", Tenant: c.tenant}); err != nil {
		return err
	}
	var resp Message
	return c.dec.Decode(&resp)
}

// Close tears down the connection (implicitly releasing the demand).
func (c *Client) Close() error { return c.conn.Close() }
