package negotiate

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"merlin/internal/codegen"
	"merlin/internal/policy"
	"merlin/internal/ternary"
	"merlin/internal/topo"
	"merlin/internal/verify"
)

// Hub is the tenant-scale negotiator: one coordinator replacing a tree of
// per-tenant Negotiators when session counts reach 10⁴–10⁵. Three ideas
// make it scale where the per-tenant tree cannot:
//
//   - Sharding. Sessions are grouped into shards keyed by the same
//     link-disjoint partition provisioning uses (Compiler.
//     NegotiationShards, or any caller-chosen disjoint grouping): a
//     demand update or reallocation only touches its shard's sessions
//     and capacity pool, never the global session set.
//   - Batched ticks. Demand updates coalesce into per-shard pending maps
//     (OfferDemand is O(1) and lock-local to the shard); one Tick drains
//     every shard, advances the controllers shard-parallel over a worker
//     pool, and commits a single recompiled formula — one compiler pass
//     per window instead of one per tenant.
//   - Incremental verification with admission control. A Propose is
//     verified against the session's delegated baseline through a
//     verify.Cache — an unchanged child is a fingerprint hit, a delta
//     proposal re-runs only the changed pairs — and a failed containment
//     check rejects the proposal outright instead of recompiling.
//     Reallocation ticks skip verification entirely: every emitted
//     allocation is clamped to the session's delegated budget, so the
//     refinement holds by construction.
//
// Ticks are deterministic: the same demand sequence produces identical
// allocations for any Workers value and any OfferDemand interleaving
// within a window, because pending demands are keyed by tenant (last
// write wins), sessions advance independently against a shard-order
// congestion test, and results merge in shard order.
//
// All methods are safe for concurrent use. OfferDemand never blocks on a
// running Tick's compile; Propose and Tick serialize on the hub lock.
type Hub struct {
	mu sync.Mutex
	// pol is the current committed global policy. Its formula is always
	// the canonical per-statement form (one Max/Min term per constrained
	// statement, in statement order) so ticks rebuild it in one pass.
	pol *policy.Policy
	// allocs is the current per-statement localized allocation — the
	// formula is rendered from it, in statement order.
	allocs   map[string]policy.Alloc
	stmtIdx  map[string]int
	owner    map[string]*Session // statement ID → owning session
	shards   []*hubShard
	shardIdx map[string]int
	sessions map[string]*Session
	opts     HubOptions
	cache    *verify.Cache
	onCommit CommitFunc

	ticksBatched        int
	demandsBatched      int
	allocsChanged       int
	proposalsAccepted   int
	proposalsRejected   int
	proposalsOverBudget int
}

// HubOptions tune a Hub.
type HubOptions struct {
	// Workers bounds the shard-tick worker pool (0 = one per shard, the
	// pool the compiler's provisioning stage also uses).
	Workers int
	// Verify tunes proposal verification.
	Verify verify.Options
	// Cache is the shared verification cache; nil creates a private one.
	Cache *verify.Cache
	// MMFS ticks divide each shard's capacity max-min fairly across the
	// declared demands instead of running per-session AIMD controllers.
	MMFS bool
	// TableBudgets, when non-empty, enables dataplane admission control:
	// Propose estimates the ternary-expanded entry count of the refined
	// statements' classifiers and rejects the proposal with a
	// *codegen.TableOverflowError if that estimate exceeds any listed
	// device's budget. The check is conservative — placement is not known
	// until recompile, so every proposal entry is assumed to land on each
	// budgeted device — which keeps admission O(proposal) instead of
	// O(compile). Keys are topology node names.
	TableBudgets map[string]int
	// Ternary tunes the expansion model the budget estimate runs under
	// (range support, prefix-only tables), mirroring Options.Ternary on
	// the compiler.
	Ternary ternary.Options
	// Identities resolves host names in proposal predicates to addresses
	// for the budget estimate; nil leaves values unresolved.
	Identities *topo.IdentityTable
}

// HubStats is a snapshot of the hub counters.
type HubStats struct {
	// TenantsActive is the number of registered sessions.
	TenantsActive int
	// TicksBatched counts Tick calls that drained at least one demand.
	TicksBatched int
	// DemandsBatched counts demand updates drained by ticks (several
	// updates from one tenant within a window coalesce into one).
	DemandsBatched int
	// AllocsChanged counts session allocations moved by ticks.
	AllocsChanged int
	// ProposalsAccepted and ProposalsRejected count Propose outcomes;
	// rejections are admission control — no recompile happens.
	ProposalsAccepted int
	ProposalsRejected int
	// ProposalsOverBudget counts the rejections (included in
	// ProposalsRejected) where the refinement verified but the estimated
	// table expansion exceeded a configured device budget.
	ProposalsOverBudget int
	// VerifyCacheHits/Misses mirror the verification cache's policy-level
	// counters.
	VerifyCacheHits   int
	VerifyCacheMisses int
}

type hubShard struct {
	name     string
	capacity float64
	members  []*Session // sorted by tenant name once sealed
	sorted   bool

	mu      sync.Mutex
	pending map[string]float64
}

// Session is one tenant's live negotiation session on a Hub.
type Session struct {
	// Tenant is the session's unique name.
	Tenant string

	hub   *Hub
	shard *hubShard
	// stmtIDs are the global-policy statements the session owns, in
	// global statement order.
	stmtIDs []string
	// baseline is the delegated sub-policy Propose verifies against: the
	// owned statements plus their allocation budget at registration.
	baseline *policy.Policy
	// budgetMax/budgetMin bound the aggregate allocation a tick may emit:
	// n×(smallest per-statement budget), so the equal split across the
	// session's statements respects every per-statement budget.
	budgetMax, budgetMin float64
	// guarantee sessions renegotiate their statements' guarantees (Min
	// terms); default sessions renegotiate caps (Max terms).
	guarantee bool

	aimd   AIMDState
	demand float64
	alloc  float64
}

// NewHub creates a hub over the administrator's global policy. The
// formula must be a conjunction of max/min terms (the negotiator fragment
// of §4); it is canonicalized into per-statement terms, so compile
// hub.Policy() — not the original — when binding a compiler.
func NewHub(pol *policy.Policy, opts HubOptions) (*Hub, error) {
	allocs, err := policy.Localize(pol.Formula, nil)
	if err != nil {
		return nil, err
	}
	h := &Hub{
		allocs:   allocs,
		stmtIdx:  make(map[string]int, len(pol.Statements)),
		owner:    map[string]*Session{},
		shardIdx: map[string]int{},
		sessions: map[string]*Session{},
		opts:     opts,
		cache:    opts.Cache,
	}
	if h.cache == nil {
		h.cache = verify.NewCache()
	}
	for i, s := range pol.Statements {
		if _, dup := h.stmtIdx[s.ID]; dup {
			return nil, fmt.Errorf("negotiate: duplicate statement %q", s.ID)
		}
		h.stmtIdx[s.ID] = i
	}
	h.pol = &policy.Policy{Statements: pol.Statements}
	h.pol.Formula = h.renderFormula(h.pol.Statements)
	return h, nil
}

// Policy returns the hub's current global policy (canonical formula).
func (h *Hub) Policy() *policy.Policy {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pol
}

// Allocations returns a copy of the current per-statement allocations.
func (h *Hub) Allocations() map[string]policy.Alloc {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]policy.Alloc, len(h.allocs))
	for id, a := range h.allocs {
		out[id] = a
	}
	return out
}

// OnCommit registers fn to observe (and possibly veto) every committed
// tick or accepted proposal, exactly like Negotiator.OnCommit — this is
// how Compiler.WatchHub makes negotiation atomic with recompilation.
func (h *Hub) OnCommit(fn CommitFunc) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onCommit = fn
}

// Stats returns a snapshot of the hub counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	st := HubStats{
		TenantsActive:       len(h.sessions),
		TicksBatched:        h.ticksBatched,
		DemandsBatched:      h.demandsBatched,
		AllocsChanged:       h.allocsChanged,
		ProposalsAccepted:   h.proposalsAccepted,
		ProposalsRejected:   h.proposalsRejected,
		ProposalsOverBudget: h.proposalsOverBudget,
	}
	h.mu.Unlock()
	cs := h.cache.Stats()
	st.VerifyCacheHits = cs.Hits
	st.VerifyCacheMisses = cs.Misses
	return st
}

// AddShard declares a negotiation shard: a named, link-disjoint capacity
// pool sessions contend within. Use Compiler.NegotiationShards to derive
// the grouping provisioning already computed, or any caller-known
// disjoint partition (per pod, per tenant cluster).
func (h *Hub) AddShard(name string, capacity float64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.shardIdx[name]; dup {
		return fmt.Errorf("negotiate: shard %q already exists", name)
	}
	if capacity <= 0 {
		return fmt.Errorf("negotiate: shard %q needs positive capacity", name)
	}
	h.shardIdx[name] = len(h.shards)
	h.shards = append(h.shards, &hubShard{
		name:     name,
		capacity: capacity,
		pending:  map[string]float64{},
	})
	return nil
}

// Register adds a tenant session owning the given global-policy
// statements to a shard. The session's verification baseline — the §5
// delegation — is the owned statements with their current allocations;
// registration itself never changes the committed policy. ctrl seeds the
// session's AIMD controller. A statement belongs to at most one session.
func (h *Hub) Register(tenant, shard string, stmtIDs []string, ctrl AIMDState) (*Session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.sessions[tenant]; dup {
		return nil, fmt.Errorf("negotiate: session %q already registered", tenant)
	}
	si, ok := h.shardIdx[shard]
	if !ok {
		return nil, fmt.Errorf("negotiate: unknown shard %q", shard)
	}
	if len(stmtIDs) == 0 {
		return nil, fmt.Errorf("negotiate: session %q owns no statements", tenant)
	}
	idxs := make([]int, len(stmtIDs))
	for i, id := range stmtIDs {
		idx, ok := h.stmtIdx[id]
		if !ok {
			return nil, fmt.Errorf("negotiate: unknown statement %q", id)
		}
		if prev := h.owner[id]; prev != nil {
			return nil, fmt.Errorf("negotiate: statement %q already owned by session %q", id, prev.Tenant)
		}
		idxs[i] = idx
	}
	sort.Ints(idxs)
	sh := h.shards[si]
	s := &Session{Tenant: tenant, hub: h, shard: sh, aimd: ctrl}
	s.stmtIDs = make([]string, len(idxs))
	s.budgetMax, s.budgetMin = math.Inf(1), math.Inf(1)
	sub := &policy.Policy{}
	var terms []policy.Formula
	agg := 0.0
	for i, idx := range idxs {
		st := h.pol.Statements[idx]
		s.stmtIDs[i] = st.ID
		sub.Statements = append(sub.Statements, st)
		a := h.alloc(st.ID)
		if a.Max < s.budgetMax {
			s.budgetMax = a.Max
		}
		if a.Min < s.budgetMin {
			s.budgetMin = a.Min
		}
		if !math.IsInf(a.Max, 1) {
			terms = append(terms, policy.Max{Expr: policy.BandExpr{IDs: []string{st.ID}}, Rate: a.Max})
		}
		if a.Min > 0 {
			terms = append(terms, policy.Min{Expr: policy.BandExpr{IDs: []string{st.ID}}, Rate: a.Min})
		}
		agg += a.Max
	}
	n := float64(len(idxs))
	s.budgetMax *= n
	s.budgetMin *= n
	sub.Formula = policy.ConjFormula(terms...)
	s.baseline = sub
	// The session starts at its current committed allocation, so nothing
	// changes until its first tick.
	s.alloc = agg
	for _, id := range s.stmtIDs {
		h.owner[id] = s
	}
	h.sessions[tenant] = s
	sh.members = append(sh.members, s)
	sh.sorted = false
	return s, nil
}

// Guarantee switches the session's ticks to renegotiate bandwidth
// guarantees (Min terms) instead of caps: every committed allocation
// re-provisions the session's shard through the bound compiler,
// warm-started from the previous basis. Call before the first tick.
func (s *Session) Guarantee() *Session {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	s.guarantee = true
	agg := 0.0
	for _, id := range s.stmtIDs {
		agg += h.alloc(id).Min
	}
	s.alloc = agg
	return s
}

// OfferDemand records the tenant's current offered load for the next
// tick. It is lock-local to the session's shard and never blocks on a
// running tick's compile; several offers within one window coalesce
// (last write wins).
func (s *Session) OfferDemand(bps float64) {
	sh := s.shard
	sh.mu.Lock()
	sh.pending[s.Tenant] = bps
	sh.mu.Unlock()
}

// Alloc returns the session's current aggregate allocation.
func (s *Session) Alloc() float64 {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.alloc
}

func (h *Hub) alloc(id string) policy.Alloc {
	if a, ok := h.allocs[id]; ok {
		return a
	}
	return policy.Unconstrained
}

// renderFormula rebuilds the canonical global formula from the current
// per-statement allocations, in statement order — one pass, so a batched
// tick is O(statements) regardless of how many demands it coalesced.
func (h *Hub) renderFormula(stmts []policy.Statement) policy.Formula {
	terms := make([]policy.Formula, 0, len(stmts))
	for _, s := range stmts {
		a, ok := h.allocs[s.ID]
		if !ok {
			continue
		}
		if !math.IsInf(a.Max, 1) {
			terms = append(terms, policy.Max{Expr: policy.BandExpr{IDs: []string{s.ID}}, Rate: a.Max})
		}
		if a.Min > 0 {
			terms = append(terms, policy.Min{Expr: policy.BandExpr{IDs: []string{s.ID}}, Rate: a.Min})
		}
	}
	return policy.ConjFormula(terms...)
}

// TickReport summarizes one Tick.
type TickReport struct {
	// Demands is the number of coalesced demand updates drained.
	Demands int
	// Changed is the number of sessions whose allocation moved.
	Changed int
	// Committed reports whether a new formula was committed.
	Committed bool
}

// sessionUndo captures one session's controller state for rollback when
// a commit is vetoed.
type sessionUndo struct {
	s     *Session
	aimd  AIMDState
	alloc float64
}

// Tick drains every shard's pending demands, advances the allocation
// controllers shard-parallel, and commits the coalesced result as one
// new bandwidth formula (one recompile per window, via OnCommit). Shards
// with no pending demand are skipped entirely. A vetoed commit rolls the
// controllers back and returns the veto error.
func (h *Hub) Tick() (TickReport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var rep TickReport
	// Drain: snapshot and replace each shard's pending map.
	type work struct {
		sh      *hubShard
		pending map[string]float64
	}
	var works []work
	for _, sh := range h.shards {
		sh.mu.Lock()
		if len(sh.pending) > 0 {
			works = append(works, work{sh: sh, pending: sh.pending})
			sh.pending = make(map[string]float64, len(sh.pending))
		}
		sh.mu.Unlock()
	}
	if len(works) == 0 {
		return rep, nil
	}
	// Advance shard-parallel. Shards partition the sessions, so workers
	// never share mutable state; each returns its changed sessions in
	// member (tenant) order and results merge in shard order, making the
	// outcome identical for every pool size.
	changed := make([][]sessionUndo, len(works))
	workers := h.opts.Workers
	if workers <= 0 || workers > len(works) {
		workers = len(works)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				changed[i] = h.tickShard(works[i].sh, works[i].pending)
			}
		}()
	}
	for i := range works {
		next <- i
	}
	close(next)
	wg.Wait()
	// Merge in shard order: fold changed allocations into the
	// per-statement table, remembering old values for rollback.
	type allocUndo struct {
		id     string
		a      policy.Alloc
		absent bool
	}
	var undoAllocs []allocUndo
	var undoSessions []sessionUndo
	for i, w := range works {
		rep.Demands += len(w.pending)
		for _, u := range changed[i] {
			s := u.s
			undoSessions = append(undoSessions, u)
			if s.alloc == u.alloc {
				continue // controller moved but the emitted alloc did not
			}
			rep.Changed++
			share := s.alloc / float64(len(s.stmtIDs))
			for _, id := range s.stmtIDs {
				a, ok := h.allocs[id]
				undoAllocs = append(undoAllocs, allocUndo{id: id, a: a, absent: !ok})
				if !ok {
					a = policy.Unconstrained
				}
				if s.guarantee {
					a.Min = share
				} else {
					a.Max = share
				}
				h.allocs[id] = a
			}
		}
	}
	h.ticksBatched++
	h.demandsBatched += rep.Demands
	if rep.Changed == 0 {
		return rep, nil
	}
	candidate := &policy.Policy{
		Statements: h.pol.Statements,
		Formula:    h.renderFormula(h.pol.Statements),
	}
	if h.onCommit != nil {
		if err := h.onCommit(candidate, false); err != nil {
			// Vetoed: restore the controllers and the allocation table.
			// Drained demands stay consumed — they are facts about tenant
			// load, not part of the rejected allocation.
			for _, u := range undoSessions {
				u.s.aimd = u.aimd
				u.s.alloc = u.alloc
			}
			for i := len(undoAllocs) - 1; i >= 0; i-- {
				if undoAllocs[i].absent {
					delete(h.allocs, undoAllocs[i].id)
				} else {
					h.allocs[undoAllocs[i].id] = undoAllocs[i].a
				}
			}
			return TickReport{Demands: rep.Demands}, err
		}
	}
	h.pol = candidate
	h.allocsChanged += rep.Changed
	rep.Committed = true
	return rep, nil
}

// tickShard advances one shard's controllers against its capacity pool.
// It returns every member whose controller advanced (with pre-tick state
// for rollback); callers detect emitted-allocation changes by comparing
// s.alloc with the undo value. Runs without the hub lock's protection on
// h.allocs — it touches only this shard's sessions.
func (h *Hub) tickShard(sh *hubShard, pending map[string]float64) []sessionUndo {
	if !sh.sorted {
		sort.Slice(sh.members, func(i, j int) bool { return sh.members[i].Tenant < sh.members[j].Tenant })
		sh.sorted = true
	}
	// Fold the drained demands in member order.
	for _, s := range sh.members {
		if d, ok := pending[s.Tenant]; ok {
			s.demand = d
		}
	}
	undos := make([]sessionUndo, 0, len(sh.members))
	if h.opts.MMFS {
		demands := make([]float64, len(sh.members))
		for i, s := range sh.members {
			demands[i] = s.demand
		}
		fair := MaxMinFairShare(sh.capacity, demands)
		for i, s := range sh.members {
			alloc := fair[i]
			if bound := s.budget(); alloc > bound {
				alloc = bound
			}
			if alloc != s.alloc {
				undos = append(undos, sessionUndo{s: s, aimd: s.aimd, alloc: s.alloc})
				s.alloc = alloc
			}
		}
		return undos
	}
	// AIMD round: congestion is judged against the shard's pool from the
	// current allocations, summed in member order (deterministic), then
	// every controller advances independently.
	total := 0.0
	for _, s := range sh.members {
		total += s.alloc
	}
	congested := total > sh.capacity*(1+1e-9)
	for _, s := range sh.members {
		undo := sessionUndo{s: s, aimd: s.aimd, alloc: s.alloc}
		used := s.demand
		if s.alloc < used {
			used = s.alloc
		}
		s.aimd.Update(used, congested)
		alloc := s.aimd.Alloc
		if bound := s.budget(); alloc > bound {
			alloc = bound
		}
		if s.aimd != undo.aimd || alloc != s.alloc {
			undos = append(undos, undo)
			s.alloc = alloc
		}
	}
	return undos
}

// budget is the session's aggregate allocation bound: the delegated
// per-statement budget times the statement count, for the term kind the
// session renegotiates.
func (s *Session) budget() float64 {
	if s.guarantee {
		return s.budgetMin
	}
	return s.budgetMax
}

// admitBudgets is the dataplane admission pre-check: with TableBudgets
// configured, the ternary-expanded entry estimate of the refined
// statements' classifiers must fit every budgeted device. Placement is
// unknown until the accepted proposal recompiles, so the estimate is the
// conservative worst case — the whole proposal landing on one device.
// Called with the hub lock held.
func (h *Hub) admitBudgets(refined *policy.Policy) error {
	if len(h.opts.TableBudgets) == 0 {
		return nil
	}
	entries := 0
	for _, st := range refined.Statements {
		n, err := codegen.EstimateRuleEntries(
			codegen.Rule{Match: codegen.Match{Pred: st.Predicate}},
			h.opts.Ternary, h.opts.Identities)
		if err != nil {
			return fmt.Errorf("negotiate: estimating table entries for statement %q: %w", st.ID, err)
		}
		entries += n
	}
	names := make([]string, 0, len(h.opts.TableBudgets))
	for name := range h.opts.TableBudgets {
		names = append(names, name)
	}
	sort.Strings(names)
	var over []codegen.TableOverflow
	for _, name := range names {
		if budget := h.opts.TableBudgets[name]; entries > budget {
			over = append(over, codegen.TableOverflow{Device: -1, Name: name, Entries: entries, Budget: budget})
		}
	}
	if len(over) > 0 {
		return &codegen.TableOverflowError{Overflows: over}
	}
	return nil
}

// Propose submits a refined sub-policy for the tenant's delegation: the
// session's statements are replaced on acceptance. Verification runs
// against the session's registration-time baseline through the hub's
// verification cache — an unchanged proposal is a fingerprint hit, and a
// delta proposal re-verifies only the changed statement pairs. A failed
// containment check is admission control: the proposal is rejected, no
// recompile happens, and the committed policy is untouched. The first
// return mirrors Negotiator.Propose: whether the accepted change needs
// global recompilation (a path-expression change).
func (h *Hub) Propose(tenant string, refined *policy.Policy) (recompile bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[tenant]
	if !ok {
		return false, fmt.Errorf("negotiate: unknown session %q", tenant)
	}
	rep, err := h.cache.CheckRefinement(s.baseline, refined, h.opts.Verify)
	if err != nil {
		return false, err
	}
	if !rep.OK() {
		h.proposalsRejected++
		return false, rep.Err()
	}
	if err := h.admitBudgets(refined); err != nil {
		h.proposalsRejected++
		h.proposalsOverBudget++
		return false, err
	}
	refAllocs, err := policy.Localize(refined.Formula, nil)
	if err != nil {
		return false, err
	}
	// The refined statement set replaces the session's in place: new IDs
	// must not collide with statements the session does not own.
	owned := make(map[string]bool, len(s.stmtIDs))
	for _, id := range s.stmtIDs {
		owned[id] = true
	}
	for _, st := range refined.Statements {
		if _, exists := h.stmtIdx[st.ID]; exists && !owned[st.ID] {
			return false, fmt.Errorf("negotiate: proposal reuses statement %q outside the session", st.ID)
		}
	}
	recompile = pathsChanged(s.baseline, refined)

	// Splice: the refined statements land at the session's first owned
	// position, preserving global order for everyone else.
	first := h.stmtIdx[s.stmtIDs[0]]
	newStmts := make([]policy.Statement, 0, len(h.pol.Statements)-len(s.stmtIDs)+len(refined.Statements))
	for idx, st := range h.pol.Statements {
		if owned[st.ID] {
			if idx == first {
				newStmts = append(newStmts, refined.Statements...)
			}
			continue
		}
		newStmts = append(newStmts, st)
	}

	// Stage the new allocation table and indexes; commit or discard
	// atomically below.
	oldAllocs, oldIdx, oldOwner := h.allocs, h.stmtIdx, h.owner
	oldPol, oldIDs, oldAlloc, oldAIMD := h.pol, s.stmtIDs, s.alloc, s.aimd
	h.allocs = make(map[string]policy.Alloc, len(oldAllocs))
	for id, a := range oldAllocs {
		if !owned[id] {
			h.allocs[id] = a
		}
	}
	agg := 0.0
	newIDs := make([]string, len(refined.Statements))
	for i, st := range refined.Statements {
		newIDs[i] = st.ID
		if a, ok := refAllocs[st.ID]; ok {
			h.allocs[st.ID] = a
			if s.guarantee {
				agg += a.Min
			} else if !math.IsInf(a.Max, 1) {
				agg += a.Max
			}
		}
	}
	h.stmtIdx = make(map[string]int, len(newStmts))
	for i, st := range newStmts {
		h.stmtIdx[st.ID] = i
	}
	h.owner = make(map[string]*Session, len(oldOwner))
	for id, sess := range oldOwner {
		if sess != s {
			h.owner[id] = sess
		}
	}
	for _, id := range newIDs {
		h.owner[id] = s
	}
	s.stmtIDs = newIDs
	s.alloc = agg
	s.aimd.Alloc = agg
	h.pol = &policy.Policy{Statements: newStmts, Formula: h.renderFormula(newStmts)}

	if h.onCommit != nil {
		if err := h.onCommit(h.pol, recompile); err != nil {
			h.allocs, h.stmtIdx, h.owner = oldAllocs, oldIdx, oldOwner
			h.pol = oldPol
			s.stmtIDs, s.alloc, s.aimd = oldIDs, oldAlloc, oldAIMD
			return false, err
		}
	}
	h.proposalsAccepted++
	return recompile, nil
}
