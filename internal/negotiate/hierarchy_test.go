package negotiate

import (
	"testing"

	"merlin/internal/policy"
	"merlin/internal/pred"
)

// A two-level delegation: admin → department → lab. Each level refines
// within its parent's budget; violations at the leaf are caught against
// the leaf's own delegated baseline (§4: "children may refine their own
// policies, as long as the refinement implies the parent policy").
func TestTwoLevelDelegation(t *testing.T) {
	root := NewRoot("admin", mustPolicy(t, `
[ x : ip.src = 10.0.0.1 -> .* ],
max(x, 100MB/s)
`))
	dept, err := root.Delegate("dept", pred.Test{Field: "ip.src", Value: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	lab, err := dept.Delegate("lab", pred.Test{Field: "tcp.dst", Value: "80"})
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children()) != 1 || len(dept.Children()) != 1 {
		t.Fatal("tree shape wrong")
	}
	// The lab's scope predicate narrows twice.
	labStmt := lab.Policy().Statements[0]
	ok, err := pred.Implies(labStmt.Predicate,
		pred.Conj(pred.Test{Field: "ip.src", Value: "10.0.0.1"},
			pred.Test{Field: "tcp.dst", Value: "80"}))
	if err != nil || !ok {
		t.Fatal("lab scope not narrowed through both levels")
	}
	// The lab refines within its budget: split web traffic by source port
	// parity... simpler: two port classes under the inherited cap.
	base := labStmt.Predicate
	refined := &policy.Policy{
		Statements: []policy.Statement{
			{ID: "w1", Predicate: pred.Conj(base, pred.Test{Field: "ip.tos", Value: "0"}), Path: labStmt.Path},
			{ID: "w2", Predicate: pred.Conj(base, pred.Negate(pred.Test{Field: "ip.tos", Value: "0"})), Path: labStmt.Path},
		},
		Formula: policy.ConjFormula(
			policy.Max{Expr: policy.BandExpr{IDs: []string{"w1"}}, Rate: 40 * 8e6},
			policy.Max{Expr: policy.BandExpr{IDs: []string{"w2"}}, Rate: 60 * 8e6},
		),
	}
	if _, err := lab.Propose(refined); err != nil {
		t.Fatalf("valid leaf refinement rejected: %v", err)
	}
	// Exceeding the inherited cap fails at the leaf.
	greedy := &policy.Policy{
		Statements: refined.Statements,
		Formula: policy.ConjFormula(
			policy.Max{Expr: policy.BandExpr{IDs: []string{"w1"}}, Rate: 90 * 8e6},
			policy.Max{Expr: policy.BandExpr{IDs: []string{"w2"}}, Rate: 60 * 8e6},
		),
	}
	if _, err := lab.Propose(greedy); err == nil {
		t.Fatal("leaf over-allocation accepted")
	}
}

// Reallocation after a refinement verifies against the parent's policy.
func TestReallocateAgainstParent(t *testing.T) {
	root := NewRoot("admin", mustPolicy(t, `
[ a : tcp.dst = 80 -> .* ],
max(a, 50MB/s)
`))
	tenant, err := root.Delegate("t", pred.True)
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking is fine.
	if _, err := tenant.Reallocate(policy.Max{
		Expr: policy.BandExpr{IDs: []string{"a"}}, Rate: 30 * 8e6,
	}); err != nil {
		t.Fatal(err)
	}
	// Growing beyond the parent budget is not — even though the tenant's
	// own current formula is now 30.
	if _, err := tenant.Reallocate(policy.Max{
		Expr: policy.BandExpr{IDs: []string{"a"}}, Rate: 80 * 8e6,
	}); err == nil {
		t.Fatal("reallocation above parent budget accepted")
	}
	// Back up to exactly the parent budget succeeds (the §4.3 fast path:
	// siblings can trade bandwidth within the parent's envelope).
	if _, err := tenant.Reallocate(policy.Max{
		Expr: policy.BandExpr{IDs: []string{"a"}}, Rate: 50 * 8e6,
	}); err != nil {
		t.Fatalf("restoring the parent budget failed: %v", err)
	}
}
