package negotiate

import (
	"merlin/internal/sim"
	"merlin/internal/topo"
)

// AIMDConfig drives the Fig. 10(a) experiment: two hosts sharing one link,
// each governed by an AIMD negotiator adjusting its bandwidth cap.
type AIMDConfig struct {
	CapacityBps float64 // default 1 Gbps
	IncreaseBps float64 // default 20 Mbps
	Decrease    float64 // default 0.5
	Seconds     float64 // default 70
	TickSeconds float64 // default 1
}

func (c *AIMDConfig) defaults() {
	if c.CapacityBps == 0 {
		c.CapacityBps = topo.Gbps
	}
	if c.IncreaseBps == 0 {
		c.IncreaseBps = 20 * topo.Mbps
	}
	if c.Decrease == 0 {
		c.Decrease = 0.5
	}
	if c.Seconds == 0 {
		c.Seconds = 70
	}
	if c.TickSeconds == 0 {
		c.TickSeconds = 1
	}
}

// RunAIMD simulates two greedy tenants under AIMD negotiators and returns
// their rate time series. The expected shape is the classic sawtooth:
// allocations climb additively until the shared link congests, then halve.
func RunAIMD(cfg AIMDConfig) ([]sim.Series, error) {
	cfg.defaults()
	t := topo.Linear(1, cfg.CapacityBps)
	h1, h2 := t.MustLookup("h1"), t.MustLookup("h2")
	net := sim.New(t)
	f1, err := net.AddFlow("h1-h2", h1, h2, cfg.CapacityBps, 0, cfg.IncreaseBps)
	if err != nil {
		return nil, err
	}
	f2, err := net.AddFlow("h2-h1", h2, h1, cfg.CapacityBps, 0, cfg.IncreaseBps)
	if err != nil {
		return nil, err
	}
	// Both flows cross the same cable in opposite directions; AIMD
	// contention is against the shared capacity pool, so drive congestion
	// off the cable total (as eq. 2 pools both directions).
	a1 := &AIMDState{Alloc: cfg.IncreaseBps, Increase: cfg.IncreaseBps, Decrease: cfg.Decrease}
	a2 := &AIMDState{Alloc: cfg.IncreaseBps, Increase: cfg.IncreaseBps, Decrease: cfg.Decrease}
	out := []sim.Series{{Name: f1.ID}, {Name: f2.ID}}
	for now := 0.0; now < cfg.Seconds; now += cfg.TickSeconds {
		f1.MaxRate = a1.Alloc
		f2.MaxRate = a2.Alloc
		net.Step(cfg.TickSeconds)
		out[0].Record(now, f1.Rate)
		out[1].Record(now, f2.Rate)
		congested := a1.Alloc+a2.Alloc > cfg.CapacityBps
		a1.Update(f1.Rate, congested)
		a2.Update(f2.Rate, congested)
	}
	return out, nil
}

// MMFSConfig drives the Fig. 10(b) experiment: four hosts (h1→h2 and
// h3→h4) sharing a link, with demands declared to a max-min fair-share
// negotiator at different times.
type MMFSConfig struct {
	CapacityBps float64 // default 500 Mbps (the figure's scale)
	Seconds     float64 // default 30
	TickSeconds float64 // default 1
}

func (c *MMFSConfig) defaults() {
	if c.CapacityBps == 0 {
		c.CapacityBps = 500 * topo.Mbps
	}
	if c.Seconds == 0 {
		c.Seconds = 30
	}
	if c.TickSeconds == 0 {
		c.TickSeconds = 1
	}
}

// RunMMFS simulates the two tenant pairs declaring demands over time:
// h1→h2 wants 400 Mbps from the start; h3→h4 declares 150 Mbps at t=5 and
// raises to 400 Mbps at t=15. The negotiator re-divides max-min fairly at
// each declaration, so the series shows the Fig. 10(b) staircase.
func RunMMFS(cfg MMFSConfig) ([]sim.Series, error) {
	cfg.defaults()
	// Dumbbell: both pairs traverse the shared middle cable.
	t := topo.New()
	s1 := t.AddSwitch("s1")
	s2 := t.AddSwitch("s2")
	t.AddLink(s1, s2, cfg.CapacityBps)
	h1 := t.AddHost("h1")
	h2 := t.AddHost("h2")
	h3 := t.AddHost("h3")
	h4 := t.AddHost("h4")
	t.AddLink(h1, s1, 10*cfg.CapacityBps)
	t.AddLink(h3, s1, 10*cfg.CapacityBps)
	t.AddLink(h2, s2, 10*cfg.CapacityBps)
	t.AddLink(h4, s2, 10*cfg.CapacityBps)
	net := sim.New(t)
	f1, err := net.AddFlow("h1-h2", h1, h2, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	f2, err := net.AddFlow("h3-h4", h3, h4, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	demand := func(now float64) (d1, d2 float64) {
		d1 = 400 * topo.Mbps
		switch {
		case now < 5:
			d2 = 0
		case now < 15:
			d2 = 150 * topo.Mbps
		default:
			d2 = 400 * topo.Mbps
		}
		return d1, d2
	}
	out := []sim.Series{{Name: f1.ID}, {Name: f2.ID}}
	for now := 0.0; now < cfg.Seconds; now += cfg.TickSeconds {
		d1, d2 := demand(now)
		alloc := MaxMinFairShare(cfg.CapacityBps, []float64{d1, d2})
		f1.Demand, f1.MaxRate = d1, alloc[0]
		f2.Demand, f2.MaxRate = d2, alloc[1]
		net.Step(cfg.TickSeconds)
		out[0].Record(now, f1.Rate)
		out[1].Record(now, f2.Rate)
	}
	return out, nil
}
