package negotiate

import (
	"encoding/json"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer spins up a negotiator server on a loopback listener and
// returns its address plus a shutdown func.
func startServer(t *testing.T, capacity float64) (*Server, string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(capacity)
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	return srv, ln.Addr().String(), func() {
		srv.Close()
		<-done
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6*(1+math.Abs(b)) }

// TestProtocolDemandRelease covers the basic wire exchange: a tenant's
// demand is granted, a second tenant forces a max-min split, and a
// release returns the capacity.
func TestProtocolDemandRelease(t *testing.T) {
	srv, addr, stop := startServer(t, 1000)
	defer stop()

	c1, err := Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	got, err := c1.Demand(400)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 400) {
		t.Fatalf("t1 alone: got %v, want 400", got)
	}

	c2, err := Dial(addr, "t2")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err = c2.Demand(800)
	if err != nil {
		t.Fatal(err)
	}
	// Max-min over (400, 800) with capacity 1000: t1 keeps 400, t2 gets 600.
	if !approx(got, 600) {
		t.Fatalf("t2 with t1@400: got %v, want 600", got)
	}
	alloc := srv.Allocations()
	if !approx(alloc["t1"], 400) || !approx(alloc["t2"], 600) {
		t.Fatalf("server allocations: %v", alloc)
	}

	// Releasing t1 frees its share.
	if err := c1.Release(); err != nil {
		t.Fatal(err)
	}
	got, err = c2.Demand(800)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 800) {
		t.Fatalf("t2 after t1 release: got %v, want 800", got)
	}

	// A raised demand re-divides immediately.
	got, err = c2.Demand(2000)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 1000) {
		t.Fatalf("t2 over capacity: got %v, want 1000", got)
	}
}

// TestProtocolErrors covers protocol-level error answers: a demand with
// no tenant name, and an unknown message type sent raw on the wire.
func TestProtocolErrors(t *testing.T) {
	_, addr, stop := startServer(t, 1000)
	defer stop()
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Demand(100); err == nil {
		t.Fatal("demand without tenant name accepted")
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"type":"bogus"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	var resp Message
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Type != "error" || !strings.Contains(resp.Detail, "bogus") {
		t.Fatalf("unknown message type answered %+v", resp)
	}
}

// TestProtocolConcurrentTenants hammers the server from many tenants at
// once: every answer must be a valid max-min share (never exceeding
// capacity or the tenant's own demand), and once all demands are in, the
// steady-state division must be the fair share.
func TestProtocolConcurrentTenants(t *testing.T) {
	const (
		capacity = 1000.0
		tenants  = 8
		rounds   = 20
	)
	srv, addr, stop := startServer(t, capacity)
	defer stop()

	// Dial every tenant up front and keep the connections open until the
	// steady state is checked — teardown releases demands.
	clients := make([]*Client, tenants)
	for i := range clients {
		c, err := Dial(addr, "t"+string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				demand := 300.0
				got, err := c.Demand(demand)
				if err != nil {
					errs <- err
					return
				}
				if got < 0 || got > demand+1e-6 || got > capacity+1e-6 {
					errs <- &net.AddrError{Err: "allocation out of range", Addr: addr}
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All eight tenants still connected and demanding 300 against 1000:
	// fair share is 125 each.
	alloc := srv.Allocations()
	if len(alloc) != tenants {
		t.Fatalf("expected %d live tenants, got %v", tenants, alloc)
	}
	for name, bps := range alloc {
		if !approx(bps, capacity/tenants) {
			t.Fatalf("tenant %s got %v, want %v", name, bps, capacity/tenants)
		}
	}
}

// TestProtocolConnectionCloseReleases covers teardown semantics: a
// tenant that disconnects without an explicit release must have its
// demand dropped server-side.
func TestProtocolConnectionCloseReleases(t *testing.T) {
	srv, addr, stop := startServer(t, 1000)
	defer stop()

	c1, err := Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Demand(700); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addr, "t2")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got, err := c2.Demand(700); err != nil || !approx(got, 500) {
		t.Fatalf("contended share: got %v, %v", got, err)
	}

	// Drop t1's connection; the server handler releases its demand.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, err := c2.Demand(700); err != nil {
			t.Fatal(err)
		} else if approx(got, 700) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("t1's demand was not released on close: %v", srv.Allocations())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
