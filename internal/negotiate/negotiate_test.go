package negotiate

import (
	"math"
	"net"
	"testing"

	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/topo"
)

func mustPolicy(t testing.TB, src string) *policy.Policy {
	t.Helper()
	p, err := policy.Parse(src, policy.Env{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDelegateAndPropose(t *testing.T) {
	root := NewRoot("admin", mustPolicy(t, `
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* ],
max(x, 100MB/s)
`))
	tenant, err := root.Delegate("tenant-a", pred.True)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children()) != 1 || root.Children()[0].Name != "tenant-a" {
		t.Fatal("child bookkeeping wrong")
	}
	// The §4.1 refinement is accepted...
	refined := mustPolicy(t, `
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 80) -> .* log .*
  y : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 22) -> .*
  z : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and
       !(tcp.dst = 22 or tcp.dst = 80)) -> .* dpi .* ],
max(x, 50MB/s) and max(y, 25MB/s) and max(z, 25MB/s)
`)
	recompile, err := tenant.Propose(refined)
	if err != nil {
		t.Fatalf("valid refinement rejected: %v", err)
	}
	// New waypoints (log, dpi) require recompilation (§4.3).
	if !recompile {
		t.Error("path changes should require recompilation")
	}
	if len(tenant.Policy().Statements) != 3 {
		t.Error("policy not swapped")
	}
	// ...and an over-allocation is rejected.
	over := mustPolicy(t, `
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* ],
max(x, 200MB/s)
`)
	if _, err := tenant.Propose(over); err == nil {
		t.Fatal("over-allocation accepted")
	}
}

func TestDelegateRejectsEmptyScope(t *testing.T) {
	root := NewRoot("admin", mustPolicy(t, `[ x : tcp.dst = 80 -> .* ]`))
	if _, err := root.Delegate("t", pred.Test{Field: "tcp.dst", Value: "22"}); err == nil {
		t.Fatal("empty-scope delegation accepted")
	}
	if _, err := root.Delegate("t", pred.True); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Delegate("t", pred.True); err == nil {
		t.Fatal("duplicate child accepted")
	}
}

func TestReallocateFastPath(t *testing.T) {
	root := NewRoot("admin", mustPolicy(t, `
[ a : tcp.dst = 80 -> .* ; b : tcp.dst = 22 -> .* ],
max(a, 60MB/s) and max(b, 40MB/s)
`))
	// Shift bandwidth between the statements without touching paths.
	newFormula := policy.ConjFormula(
		policy.Max{Expr: policy.BandExpr{IDs: []string{"a"}}, Rate: 30 * 8e6},
		policy.Max{Expr: policy.BandExpr{IDs: []string{"b"}}, Rate: 40 * 8e6},
	)
	allocs, err := root.Reallocate(newFormula)
	if err != nil {
		t.Fatal(err)
	}
	if allocs["a"].Max != 30*8e6 {
		t.Fatalf("alloc a = %v", allocs["a"])
	}
	// Exceeding the original budget fails.
	bad := policy.ConjFormula(
		policy.Max{Expr: policy.BandExpr{IDs: []string{"a"}}, Rate: 100 * 8e6},
		policy.Max{Expr: policy.BandExpr{IDs: []string{"b"}}, Rate: 40 * 8e6},
	)
	if _, err := root.Reallocate(bad); err == nil {
		t.Fatal("budget-exceeding reallocation accepted")
	}
}

func TestMaxMinFairShare(t *testing.T) {
	for _, tc := range []struct {
		cap     float64
		demands []float64
		want    []float64
	}{
		{100, []float64{200, 200}, []float64{50, 50}},
		{100, []float64{10, 200}, []float64{10, 90}},
		{100, []float64{10, 20, 30}, []float64{10, 20, 30}},
		{90, []float64{10, 200, 200}, []float64{10, 40, 40}},
		{100, nil, nil},
		{100, []float64{0, 50}, []float64{0, 50}},
	} {
		got := MaxMinFairShare(tc.cap, tc.demands)
		if len(got) != len(tc.want) {
			t.Fatalf("len mismatch for %v", tc)
		}
		for i := range got {
			if math.Abs(got[i]-tc.want[i]) > 1e-9 {
				t.Errorf("MMFS(%v,%v) = %v, want %v", tc.cap, tc.demands, got, tc.want)
				break
			}
		}
	}
}

func TestAIMDSawtooth(t *testing.T) {
	series, err := RunAIMD(AIMDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	// Sawtooth: rates must rise and fall repeatedly.
	drops := 0
	rises := 0
	s := series[0].Samples
	for i := 1; i < len(s); i++ {
		switch {
		case s[i].Rate < s[i-1].Rate-1e6:
			drops++
		case s[i].Rate > s[i-1].Rate+1e6:
			rises++
		}
	}
	if drops < 2 || rises < 10 {
		t.Fatalf("no sawtooth: %d rises, %d drops", rises, drops)
	}
	// Long-run shares are roughly fair.
	m1, m2 := series[0].Mean(), series[1].Mean()
	if math.Abs(m1-m2) > 0.2*(m1+m2) {
		t.Fatalf("unfair long-run shares: %v vs %v", m1, m2)
	}
}

func TestMMFSStaircase(t *testing.T) {
	series, err := RunMMFS(MMFSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := series[0], series[1]
	// Before t=5: f1 alone at its 400 Mbps demand.
	if f1.Samples[2].Rate < 390*topo.Mbps {
		t.Fatalf("f1 early rate = %v", f1.Samples[2].Rate)
	}
	if f2.Samples[2].Rate != 0 {
		t.Fatalf("f2 early rate = %v", f2.Samples[2].Rate)
	}
	// t in (5,15): f2 gets its 150 declared; f1 squeezed to 350.
	if math.Abs(f2.Samples[10].Rate-150*topo.Mbps) > 1e6 {
		t.Fatalf("f2 mid rate = %v", f2.Samples[10].Rate)
	}
	if math.Abs(f1.Samples[10].Rate-350*topo.Mbps) > 1e6 {
		t.Fatalf("f1 mid rate = %v", f1.Samples[10].Rate)
	}
	// t > 15: both converge to the fair 250.
	if math.Abs(f1.Samples[25].Rate-250*topo.Mbps) > 1e6 ||
		math.Abs(f2.Samples[25].Rate-250*topo.Mbps) > 1e6 {
		t.Fatalf("late rates = %v, %v", f1.Samples[25].Rate, f2.Samples[25].Rate)
	}
}

func TestTCPProtocol(t *testing.T) {
	srv := NewServer(100 * topo.Mbps)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	a, err := Dial(ln.Addr().String(), "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(ln.Addr().String(), "tenant-b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Alone, tenant A gets its full demand.
	alloc, err := a.Demand(80 * topo.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if alloc != 80*topo.Mbps {
		t.Fatalf("alloc = %v, want full demand", alloc)
	}
	// B's demand forces a fair split.
	allocB, err := b.Demand(80 * topo.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if allocB != 50*topo.Mbps {
		t.Fatalf("allocB = %v, want 50M", allocB)
	}
	// A re-demands and sees the squeeze too.
	allocA, err := a.Demand(80 * topo.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if allocA != 50*topo.Mbps {
		t.Fatalf("allocA = %v, want 50M", allocA)
	}
	// Release restores A.
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	allocA, err = a.Demand(80 * topo.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if allocA != 80*topo.Mbps {
		t.Fatalf("after release alloc = %v", allocA)
	}
	if got := srv.Allocations(); len(got) != 1 {
		t.Fatalf("allocations = %v", got)
	}
}

func TestAIMDStateUpdate(t *testing.T) {
	s := &AIMDState{Alloc: 100, Increase: 10, Decrease: 0.5}
	s.Update(100, false)
	if s.Alloc != 110 {
		t.Fatalf("additive increase failed: %v", s.Alloc)
	}
	s.Update(0, false) // unused allocation: no probe
	if s.Alloc != 110 {
		t.Fatalf("unused allocation probed: %v", s.Alloc)
	}
	s.Update(110, true)
	if s.Alloc != 55 {
		t.Fatalf("multiplicative decrease failed: %v", s.Alloc)
	}
}
