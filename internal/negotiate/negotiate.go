// Package negotiate implements Merlin's run-time negotiators (§4):
// components arranged in a tree over the network that delegate policies to
// tenants, verify tenant modifications against the parent policy, and
// dynamically re-allocate bandwidth. Bandwidth re-allocation needs no
// recompilation and is fast; path-constraint changes require global
// recompilation (§4.3) and are surfaced to the caller.
//
// Two allocation schemes from the paper's evaluation are provided:
// additive-increase/multiplicative-decrease and max-min fair sharing
// (Fig. 10).
package negotiate

import (
	"fmt"
	"sort"
	"sync"

	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/verify"
)

// Negotiator is one node of the negotiator tree. The root holds the
// administrator's global policy; children hold delegations.
type Negotiator struct {
	Name string

	mu       sync.Mutex
	pol      *policy.Policy
	parent   *Negotiator
	children map[string]*Negotiator
	opts     verify.Options
	onCommit CommitFunc
}

// CommitFunc observes accepted policy changes. It runs after verification
// succeeds but before the negotiator's policy is replaced; returning an
// error vetoes the change, leaving the old policy in place — this is how
// a driving compiler makes negotiation ticks atomic with recompilation.
// pathsChanged reports whether any path expression changed (the §4.3
// global-recompilation trigger); pure bandwidth re-allocations pass false.
type CommitFunc func(pol *policy.Policy, pathsChanged bool) error

// OnCommit registers fn to observe (and possibly veto) every accepted
// Propose or Reallocate on this negotiator. fn is called with the
// negotiator's lock held and must not call back into it.
func (n *Negotiator) OnCommit(fn CommitFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onCommit = fn
}

// NewRoot creates the tree root holding the global policy.
func NewRoot(name string, pol *policy.Policy) *Negotiator {
	return &Negotiator{Name: name, pol: pol, children: map[string]*Negotiator{}}
}

// Policy returns the negotiator's current policy.
func (n *Negotiator) Policy() *policy.Policy {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pol
}

// Delegate carves out a child negotiator scoped to the given predicate:
// the child receives the parent policy projected onto the scope (§5).
func (n *Negotiator) Delegate(name string, scope pred.Pred) (*Negotiator, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.children[name]; dup {
		return nil, fmt.Errorf("negotiate: child %q already exists", name)
	}
	sub, err := verify.Delegate(n.pol, scope)
	if err != nil {
		return nil, err
	}
	if len(sub.Statements) == 0 {
		return nil, fmt.Errorf("negotiate: scope matches no traffic of %s's policy", n.Name)
	}
	child := &Negotiator{Name: name, pol: sub, parent: n, children: map[string]*Negotiator{}}
	n.children[name] = child
	return child, nil
}

// Children lists child negotiators in name order.
func (n *Negotiator) Children() []*Negotiator {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Negotiator, len(names))
	for i, name := range names {
		out[i] = n.children[name]
	}
	return out
}

// Propose submits a refined policy. The negotiator verifies it against its
// current policy (§4.2); a valid refinement replaces the policy and the
// second return reports whether the change needs global recompilation
// (any path-expression change, §4.3).
func (n *Negotiator) Propose(refined *policy.Policy) (recompile bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rep, err := verify.CheckRefinement(n.pol, refined, n.opts)
	if err != nil {
		return false, err
	}
	if !rep.OK() {
		return false, rep.Err()
	}
	recompile = pathsChanged(n.pol, refined)
	if n.onCommit != nil {
		if err := n.onCommit(refined, recompile); err != nil {
			return false, err
		}
	}
	n.pol = refined
	return recompile, nil
}

// pathsChanged reports whether any refined statement narrows a path
// expression (syntactic comparison; equal strings cannot change routing).
func pathsChanged(orig, refined *policy.Policy) bool {
	exprs := map[string]bool{}
	for _, s := range orig.Statements {
		exprs[s.Path.String()] = true
	}
	for _, s := range refined.Statements {
		if !exprs[s.Path.String()] {
			return true
		}
	}
	return false
}

// Reallocate adjusts only the bandwidth formula of the negotiator's
// policy, keeping statements fixed. It verifies the new formula still
// implies the parent's constraints and returns the localized allocations.
// This is the fast path negotiators use for dynamic adaptation (§4.3).
func (n *Negotiator) Reallocate(formula policy.Formula) (map[string]policy.Alloc, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	candidate := &policy.Policy{Statements: n.pol.Statements, Formula: formula}
	baseline := n.pol
	if n.parent != nil {
		baseline = n.parent.Policy()
	}
	rep, err := verify.CheckRefinement(baseline, candidate, n.opts)
	if err != nil {
		return nil, err
	}
	if !rep.OK() {
		return nil, rep.Err()
	}
	if n.onCommit != nil {
		// Statements are untouched: a re-allocation never changes paths.
		if err := n.onCommit(candidate, false); err != nil {
			return nil, err
		}
	}
	n.pol = candidate
	return policy.Localize(formula, nil)
}

// MaxMinFairShare allocates capacity among declared demands max-min
// fairly: demands are satisfied smallest-first, and remaining bandwidth is
// split among the unsatisfied (§6.3's MMFS negotiator). The result has one
// entry per demand, in input order.
func MaxMinFairShare(capacity float64, demands []float64) []float64 {
	alloc := make([]float64, len(demands))
	if len(demands) == 0 || capacity <= 0 {
		return alloc
	}
	type entry struct {
		idx    int
		demand float64
	}
	order := make([]entry, len(demands))
	for i, d := range demands {
		order[i] = entry{i, d}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].demand < order[j].demand })
	remaining := capacity
	for k, e := range order {
		share := remaining / float64(len(order)-k)
		give := e.demand
		if give > share {
			give = share
		}
		if give < 0 {
			give = 0
		}
		alloc[e.idx] = give
		remaining -= give
	}
	// Distribute leftover to unsatisfied demands (all demands met and
	// capacity remains: leave it unallocated, matching declared-demand
	// semantics).
	return alloc
}

// AIMDState is one tenant's additive-increase/multiplicative-decrease
// controller over its bandwidth cap.
type AIMDState struct {
	// Alloc is the tenant's current allocation (its cap).
	Alloc float64
	// Increase is the additive probe step per round.
	Increase float64
	// Decrease is the multiplicative back-off factor on congestion.
	Decrease float64
}

// Update advances the controller one round: used is the bandwidth the
// tenant actually achieved, congested reports whether the shared resource
// was oversubscribed this round.
func (s *AIMDState) Update(used float64, congested bool) {
	if congested {
		s.Alloc *= s.Decrease
		if s.Alloc < s.Increase {
			s.Alloc = s.Increase
		}
		return
	}
	// Probe for more only when the current allocation is actually used.
	if used >= 0.9*s.Alloc {
		s.Alloc += s.Increase
	}
}
