package negotiate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"merlin/internal/codegen"
	"merlin/internal/policy"
)

// hubPolicy builds an n-statement policy with one 100 MB/s cap each.
func hubPolicy(t testing.TB, n int) *policy.Policy {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("[ ")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(" ; ")
		}
		fmt.Fprintf(&sb, "s%03d : tcp.dst = %d -> .*", i, 1000+i)
	}
	sb.WriteString(" ], ")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(" and ")
		}
		fmt.Fprintf(&sb, "max(s%03d, 100MB/s)", i)
	}
	return mustPolicy(t, sb.String())
}

// runHubSequence drives a fixed demand sequence with concurrently-offered
// demands and returns the final allocation table.
func runHubSequence(t *testing.T, workers int) map[string]policy.Alloc {
	t.Helper()
	const nSessions, nShards = 24, 4
	h, err := NewHub(hubPolicy(t, nSessions), HubOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < nShards; s++ {
		if err := h.AddShard(fmt.Sprintf("pod%d", s), 120*8e6); err != nil {
			t.Fatal(err)
		}
	}
	sessions := make([]*Session, nSessions)
	for i := range sessions {
		sess, err := h.Register(fmt.Sprintf("t%02d", i), fmt.Sprintf("pod%d", i%nShards),
			[]string{fmt.Sprintf("s%03d", i)},
			AIMDState{Alloc: 10 * 8e6, Increase: 8e6, Decrease: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess
	}
	for round := 0; round < 30; round++ {
		var wg sync.WaitGroup
		for i, s := range sessions {
			wg.Add(1)
			go func(i int, s *Session) {
				defer wg.Done()
				// The per-round demand is a pure function of (tenant, round),
				// so any interleaving coalesces to the same drained map.
				s.OfferDemand(float64((i%7)+1) * 15 * 8e6)
			}(i, s)
		}
		wg.Wait()
		if _, err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	return h.Allocations()
}

func TestHubTickDeterministicAcrossWorkers(t *testing.T) {
	want := runHubSequence(t, 1)
	for _, w := range []int{2, 4, 8} {
		if got := runHubSequence(t, w); !reflect.DeepEqual(got, want) {
			t.Fatalf("allocations with %d workers diverge from serial", w)
		}
	}
}

func TestHubTickBatchesAndClampsToBudget(t *testing.T) {
	h, err := NewHub(hubPolicy(t, 2), HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddShard("core", 1e12); err != nil {
		t.Fatal(err)
	}
	s0, err := h.Register("a", "core", []string{"s000"}, AIMDState{Alloc: 10 * 8e6, Increase: 50 * 8e6, Decrease: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Several offers inside one window coalesce: one tick, one demand.
	s0.OfferDemand(1e12)
	s0.OfferDemand(2e12)
	rep, err := h.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Demands != 1 || !rep.Committed {
		t.Fatalf("report = %+v, want 1 coalesced demand committed", rep)
	}
	// Uncapacitated shard: AIMD probes up every tick but the emitted
	// allocation never exceeds the session's delegated 100 MB/s budget —
	// that clamp is what lets ticks skip re-verification.
	for i := 0; i < 10; i++ {
		s0.OfferDemand(1e12)
		if _, err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s0.Alloc(); got != 100*8e6 {
		t.Fatalf("alloc = %v, want clamped to 100MB/s budget", got)
	}
	if a := h.Allocations()["s000"]; a.Max != 100*8e6 {
		t.Fatalf("committed cap = %v", a.Max)
	}
	// The untouched statement keeps its original cap.
	if a := h.Allocations()["s001"]; a.Max != 100*8e6 {
		t.Fatalf("unowned statement cap = %v", a.Max)
	}
	st := h.Stats()
	if st.TicksBatched != 11 || st.DemandsBatched != 11 {
		t.Fatalf("stats = %+v", st)
	}
	// An idle tick (nothing pending) is free: no commit, no counter.
	rep, err = h.Tick()
	if err != nil || rep.Committed || rep.Demands != 0 {
		t.Fatalf("idle tick = %+v, %v", rep, err)
	}
	if h.Stats().TicksBatched != 11 {
		t.Fatal("idle tick counted as batched")
	}
}

func TestHubMMFSTick(t *testing.T) {
	h, err := NewHub(hubPolicy(t, 3), HubOptions{MMFS: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddShard("core", 90); err != nil {
		t.Fatal(err)
	}
	var ss []*Session
	for i := 0; i < 3; i++ {
		s, err := h.Register(fmt.Sprintf("t%d", i), "core",
			[]string{fmt.Sprintf("s%03d", i)}, AIMDState{})
		if err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s)
	}
	for i, d := range []float64{10, 200, 200} {
		ss[i].OfferDemand(d)
	}
	if _, err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 40, 40}
	for i, s := range ss {
		if got := s.Alloc(); math.Abs(got-want[i]) > 1e-9 {
			t.Fatalf("session %d alloc = %v, want %v", i, got, want[i])
		}
	}
}

func TestHubCommitVetoRollsBack(t *testing.T) {
	h, err := NewHub(hubPolicy(t, 1), HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddShard("core", 1e12); err != nil {
		t.Fatal(err)
	}
	s, err := h.Register("a", "core", []string{"s000"}, AIMDState{Alloc: 10 * 8e6, Increase: 8e6, Decrease: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	before := h.Allocations()
	beforeAlloc := s.Alloc()
	veto := errors.New("compile failed")
	h.OnCommit(func(pol *policy.Policy, recompile bool) error { return veto })
	s.OfferDemand(1e12)
	if _, err := h.Tick(); !errors.Is(err, veto) {
		t.Fatalf("tick err = %v, want veto", err)
	}
	if !reflect.DeepEqual(h.Allocations(), before) {
		t.Fatal("vetoed tick leaked into the allocation table")
	}
	if s.Alloc() != beforeAlloc {
		t.Fatal("vetoed tick leaked into the session controller")
	}
	// With the veto lifted the same demand commits (demands drained by the
	// vetoed tick stay consumed, so re-offer).
	h.OnCommit(nil)
	s.OfferDemand(1e12)
	rep, err := h.Tick()
	if err != nil || !rep.Committed {
		t.Fatalf("post-veto tick = %+v, %v", rep, err)
	}
}

func TestHubProposeAdmissionControl(t *testing.T) {
	h, err := NewHub(mustPolicy(t, `[ x : tcp.dst = 80 -> .* ], max(x, 100MB/s)`), HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddShard("core", 1e12); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register("a", "core", []string{"x"}, AIMDState{}); err != nil {
		t.Fatal(err)
	}
	// Over-allocation: rejected outright (admission control), the policy
	// and stats show no commit happened.
	over := mustPolicy(t, `[ x : tcp.dst = 80 -> .* ], max(x, 200MB/s)`)
	if _, err := h.Propose("a", over); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if st := h.Stats(); st.ProposalsRejected != 1 || st.ProposalsAccepted != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(h.Policy().Statements) != 1 {
		t.Fatal("rejected proposal mutated the policy")
	}

	// A valid refinement splits the delegation; same paths → no recompile.
	refined := mustPolicy(t, `
[ p : (tcp.dst = 80 and ip.src = 10.0.0.1) -> .* ;
  q : (tcp.dst = 80 and !(ip.src = 10.0.0.1)) -> .* ],
max(p, 50MB/s) and max(q, 50MB/s)
`)
	recompile, err := h.Propose("a", refined)
	if err != nil {
		t.Fatalf("valid refinement rejected: %v", err)
	}
	if recompile {
		t.Fatal("cap-only refinement should not force recompilation")
	}
	pol := h.Policy()
	if len(pol.Statements) != 2 || pol.Statements[0].ID != "p" || pol.Statements[1].ID != "q" {
		t.Fatalf("statements not spliced: %v", pol.Statements)
	}
	if a := h.Allocations()["p"]; a.Max != 50*8e6 {
		t.Fatalf("refined alloc = %v", a)
	}
	// Re-proposing the identical refinement is a pure verify-cache hit.
	miss := h.Stats().VerifyCacheMisses
	if _, err := h.Propose("a", refined); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.VerifyCacheHits == 0 || st.VerifyCacheMisses != miss {
		t.Fatalf("repeat proposal not served from cache: %+v", st)
	}
}

func TestHubProposeStatementCollision(t *testing.T) {
	h, err := NewHub(hubPolicy(t, 2), HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddShard("core", 1e12); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register("a", "core", []string{"s000"}, AIMDState{}); err != nil {
		t.Fatal(err)
	}
	// A proposal whose statement ID collides with another session's
	// statement must be refused.
	clash := mustPolicy(t, `[ s001 : tcp.dst = 1000 -> .* ], max(s001, 50MB/s)`)
	if _, err := h.Propose("a", clash); err == nil {
		t.Fatal("statement collision accepted")
	}
}

func TestHubGuaranteeSessionsRenegotiateMins(t *testing.T) {
	h, err := NewHub(mustPolicy(t, `
[ g : tcp.dst = 7000 -> .* ], min(g, 5MB/s) and max(g, 100MB/s)
`), HubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddShard("core", 1e12); err != nil {
		t.Fatal(err)
	}
	s, err := h.Register("a", "core", []string{"g"}, AIMDState{Alloc: 1 * 8e6, Increase: 8e6, Decrease: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s.Guarantee()
	if got := s.Alloc(); got != 5*8e6 {
		t.Fatalf("guarantee session starts at %v, want current min", got)
	}
	// First tick: the controller (seeded below the budget) probes up and
	// the committed guarantee follows.
	s.OfferDemand(1e12)
	if _, err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	a := h.Allocations()["g"]
	if a.Min >= 5*8e6 || a.Min <= 0 {
		t.Fatalf("min did not follow the controller: %v", a.Min)
	}
	if a.Max != 100*8e6 {
		t.Fatalf("cap should be untouched: %v", a.Max)
	}
	// Probing up converges to — and never exceeds — the delegated 5 MB/s
	// reservation: that clamp is why guarantee ticks skip re-verification.
	for i := 0; i < 20; i++ {
		s.OfferDemand(1e12)
		if _, err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if a := h.Allocations()["g"]; a.Min != 5*8e6 {
		t.Fatalf("guarantee should converge to the delegated budget: %v", a.Min)
	}
}

// TestHubConcurrentProposeTick is the -race interleaving test: demands,
// ticks, and proposals race freely and the hub must stay consistent.
func TestHubConcurrentProposeTick(t *testing.T) {
	h, err := NewHub(hubPolicy(t, 8), HubOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if err := h.AddShard(fmt.Sprintf("pod%d", s), 500*8e6); err != nil {
			t.Fatal(err)
		}
	}
	sessions := make([]*Session, 8)
	for i := range sessions {
		sessions[i], err = h.Register(fmt.Sprintf("t%d", i), fmt.Sprintf("pod%d", i%2),
			[]string{fmt.Sprintf("s%03d", i)},
			AIMDState{Alloc: 10 * 8e6, Increase: 8e6, Decrease: 0.5})
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				s.OfferDemand(float64(i+r) * 8e6)
			}
		}(i, s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 25; r++ {
			if _, err := h.Tick(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		good := mustPolicy(t, `
[ t7a : (tcp.dst = 1007 and ip.src = 10.0.0.1) -> .* ;
  t7b : (tcp.dst = 1007 and !(ip.src = 10.0.0.1)) -> .* ],
max(t7a, 50MB/s) and max(t7b, 50MB/s)
`)
		bad := mustPolicy(t, `[ t7x : tcp.dst = 1007 -> .* ], max(t7x, 400MB/s)`)
		for r := 0; r < 10; r++ {
			h.Propose("t7", good) // first wins, repeats are cache hits
			if _, err := h.Propose("t7", bad); err == nil {
				t.Error("over-allocation accepted under race")
				return
			}
		}
	}()
	wg.Wait()
	st := h.Stats()
	if st.ProposalsRejected != 10 {
		t.Fatalf("rejections = %d, want 10", st.ProposalsRejected)
	}
	if st.TenantsActive != 8 {
		t.Fatalf("tenants = %d", st.TenantsActive)
	}
	// The committed formula must localize back to the allocation table.
	allocs, err := policy.Localize(h.Policy().Formula, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range h.Allocations() {
		if !math.IsInf(a.Max, 1) && allocs[id].Max != a.Max {
			t.Fatalf("formula/table divergence on %s: %v vs %v", id, allocs[id], a)
		}
	}
}

// Satellite: MaxMinFairShare property tests — permutation equivariance
// and conservation (allocations sum to min(capacity, total demand)).
func TestMaxMinFairShareProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		demands := make([]float64, n)
		total := 0.0
		for i := range demands {
			demands[i] = float64(rng.Intn(1000))
			total += demands[i]
		}
		capacity := float64(1 + rng.Intn(10000))
		got := MaxMinFairShare(capacity, demands)

		// Conservation: everything is allocated up to capacity, and never
		// more than the declared demand.
		sum := 0.0
		for i, a := range got {
			if a < 0 || a > demands[i]+1e-9 {
				t.Fatalf("alloc %v out of [0, demand=%v]", a, demands[i])
			}
			sum += a
		}
		want := math.Min(capacity, total)
		if math.Abs(sum-want) > 1e-6*(1+want) {
			t.Fatalf("sum = %v, want %v (cap %v, demands %v)", sum, want, capacity, demands)
		}

		// Permutation equivariance: shuffling demands shuffles allocations
		// the same way.
		perm := rng.Perm(n)
		shuffled := make([]float64, n)
		for i, p := range perm {
			shuffled[i] = demands[p]
		}
		gotShuffled := MaxMinFairShare(capacity, shuffled)
		for i, p := range perm {
			if math.Abs(gotShuffled[i]-got[p]) > 1e-9 {
				t.Fatalf("not permutation-equivariant: %v vs %v", gotShuffled[i], got[p])
			}
		}
	}
}

// TestHubProposeBudgetAdmission covers the dataplane admission pre-check:
// with TableBudgets configured, a proposal whose estimated ternary
// expansion exceeds a device budget is rejected with the codegen typed
// error before any splice, while the same proposal passes under a
// generous budget.
func TestHubProposeBudgetAdmission(t *testing.T) {
	base := `[ x : tcp.dst = 80 -> .* ], max(x, 100MB/s)`
	refined := mustPolicy(t, `
[ p : (tcp.dst = 80 and ip.src = 10.0.0.1) -> .* ;
  q : (tcp.dst = 80 and !(ip.src = 10.0.0.1)) -> .* ],
max(p, 50MB/s) and max(q, 50MB/s)
`)
	newBudgetHub := func(budget int) *Hub {
		t.Helper()
		h, err := NewHub(mustPolicy(t, base), HubOptions{
			TableBudgets: map[string]int{"tor3": budget},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddShard("core", 1e12); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Register("a", "core", []string{"x"}, AIMDState{}); err != nil {
			t.Fatal(err)
		}
		return h
	}

	// Generous budget: the verified refinement is admitted unchanged.
	h := newBudgetHub(1 << 20)
	if _, err := h.Propose("a", refined); err != nil {
		t.Fatalf("refinement rejected under generous budget: %v", err)
	}
	if st := h.Stats(); st.ProposalsAccepted != 1 || st.ProposalsOverBudget != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// One-entry budget: two statements estimate to at least two entries,
	// so admission rejects with the typed overflow naming the device.
	h = newBudgetHub(1)
	_, err := h.Propose("a", refined)
	var toe *codegen.TableOverflowError
	if !errors.As(err, &toe) {
		t.Fatalf("want *codegen.TableOverflowError, got %v", err)
	}
	if len(toe.Overflows) != 1 || toe.Overflows[0].Name != "tor3" || toe.Overflows[0].Budget != 1 {
		t.Fatalf("overflows = %+v", toe.Overflows)
	}
	if toe.Overflows[0].Entries <= 1 {
		t.Fatalf("estimate %d should exceed the budget", toe.Overflows[0].Entries)
	}
	st := h.Stats()
	if st.ProposalsRejected != 1 || st.ProposalsOverBudget != 1 || st.ProposalsAccepted != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if pol := h.Policy(); len(pol.Statements) != 1 || pol.Statements[0].ID != "x" {
		t.Fatalf("rejected proposal mutated the policy: %v", pol.Statements)
	}
}
