package openflow

import (
	"strings"
	"testing"

	"merlin/internal/packet"
	"merlin/internal/pred"
	"merlin/internal/topo"
)

func linearNet(t *testing.T) (*topo.Topology, *Network, topo.NodeID, topo.NodeID) {
	t.Helper()
	tp := topo.Linear(2, topo.Gbps) // s0-s1, h1@s0, h2@s1
	return tp, NewNetwork(tp), tp.MustLookup("h1"), tp.MustLookup("h2")
}

func pkt() *packet.Packet {
	return packet.TCPPacket("00:00:00:00:00:01", "00:00:00:00:00:02",
		"10.0.0.1", "10.0.0.2", 4000, 80, nil)
}

func TestMatchWildcards(t *testing.T) {
	p := pkt()
	m := Match{InPort: MatchAny, VLAN: MatchAny}
	if !m.Matches(p, 5) {
		t.Fatal("full wildcard should match")
	}
	m = Match{InPort: 3, VLAN: MatchAny}
	if m.Matches(p, 5) || !m.Matches(p, 3) {
		t.Fatal("in-port match wrong")
	}
	m = Match{InPort: MatchAny, VLAN: packet.VLANNone}
	if !m.Matches(p, 0) {
		t.Fatal("untagged match should hold")
	}
	p.VLAN = 7
	if m.Matches(p, 0) {
		t.Fatal("tagged packet matched untagged rule")
	}
	m = Match{InPort: MatchAny, VLAN: MatchAny, EthDst: "00:00:00:00:00:02"}
	if !m.Matches(p, 0) {
		t.Fatal("eth.dst match failed")
	}
	m.Predicate = pred.Test{Field: "tcp.dst", Value: "22"}
	if m.Matches(p, 0) {
		t.Fatal("predicate should reject port 80")
	}
}

func TestPriorityOrder(t *testing.T) {
	tp, net, h1, h2 := linearNet(t)
	s0 := tp.MustLookup("s0")
	s1 := tp.MustLookup("s1")
	toS1, _ := tp.FindLink(s0, s1)
	toH2, _ := tp.FindLink(s1, h2)
	// Low-priority drop, high-priority forward: forward must win.
	net.Install([]Rule{
		{Switch: s0, Priority: 1, Match: Match{InPort: MatchAny, VLAN: MatchAny},
			Actions: []Action{Drop{}}},
		{Switch: s0, Priority: 10, Match: Match{InPort: MatchAny, VLAN: MatchAny},
			Actions: []Action{Output{Port: toS1.ID}}},
		{Switch: s1, Priority: 1, Match: Match{InPort: MatchAny, VLAN: MatchAny},
			Actions: []Action{Output{Port: toH2.ID}}},
	})
	tr := net.Inject(h1, pkt())
	if !tr.Delivered || tr.DeliveredTo != h2 {
		t.Fatalf("trace: %+v", tr)
	}
	if net.RuleCount() != 3 {
		t.Fatalf("rule count = %d", net.RuleCount())
	}
}

func TestVLANActions(t *testing.T) {
	tp, net, h1, h2 := linearNet(t)
	s0 := tp.MustLookup("s0")
	s1 := tp.MustLookup("s1")
	toS1, _ := tp.FindLink(s0, s1)
	toH2, _ := tp.FindLink(s1, h2)
	net.Install([]Rule{
		{Switch: s0, Priority: 1, Match: Match{InPort: MatchAny, VLAN: packet.VLANNone},
			Actions: []Action{SetVLAN{VLAN: 9}, Output{Port: toS1.ID}}},
		{Switch: s1, Priority: 1, Match: Match{InPort: MatchAny, VLAN: 9},
			Actions: []Action{StripVLAN{}, Output{Port: toH2.ID}}},
	})
	tr := net.Inject(h1, pkt())
	if !tr.Delivered {
		t.Fatalf("not delivered: %s", tr.Dropped)
	}
	if tr.Final.VLAN != packet.VLANNone {
		t.Fatal("VLAN not stripped")
	}
}

func TestNoRuleDrops(t *testing.T) {
	_, net, h1, _ := linearNet(t)
	tr := net.Inject(h1, pkt())
	if tr.Delivered || tr.Dropped != "no matching rule" {
		t.Fatalf("trace: %+v", tr)
	}
}

func TestLoopDetection(t *testing.T) {
	tp, net, h1, _ := linearNet(t)
	s0 := tp.MustLookup("s0")
	s1 := tp.MustLookup("s1")
	toS1, _ := tp.FindLink(s0, s1)
	toS0, _ := tp.FindLink(s1, s0)
	net.Install([]Rule{
		{Switch: s0, Priority: 1, Match: Match{InPort: MatchAny, VLAN: MatchAny},
			Actions: []Action{Output{Port: toS1.ID}}},
		{Switch: s1, Priority: 1, Match: Match{InPort: MatchAny, VLAN: MatchAny},
			Actions: []Action{Output{Port: toS0.ID}}},
	})
	tr := net.Inject(h1, pkt())
	if tr.Delivered || !strings.Contains(tr.Dropped, "loop") {
		t.Fatalf("trace: %+v", tr)
	}
}

func TestMiddleboxTransformAndDrop(t *testing.T) {
	tp := topo.Example(topo.Gbps)
	net := NewNetwork(tp)
	h1 := tp.MustLookup("h1")
	m1 := tp.MustLookup("m1")
	s1 := tp.MustLookup("s1")
	s2 := tp.MustLookup("s2")
	h2 := tp.MustLookup("h2")
	toM1, _ := tp.FindLink(s1, m1)
	fromM1, _ := tp.FindLink(m1, s1)
	toS2, _ := tp.FindLink(s1, s2)
	toH2, _ := tp.FindLink(s2, h2)
	fromH1, _ := tp.FindLink(h1, s1)
	net.Install([]Rule{
		{Switch: s1, Priority: 5, Match: Match{InPort: fromH1.ID, VLAN: MatchAny},
			Actions: []Action{Output{Port: toM1.ID}}},
		{Switch: s1, Priority: 5, Match: Match{InPort: fromM1.ID, VLAN: MatchAny},
			Actions: []Action{Output{Port: toS2.ID}}},
		{Switch: s2, Priority: 5, Match: Match{InPort: MatchAny, VLAN: MatchAny},
			Actions: []Action{Output{Port: toH2.ID}}},
	})
	// A transforming middlebox rewrites the TOS field.
	net.AddMiddleboxFunction(m1, func(p *packet.Packet) []*packet.Packet {
		q := p.Clone()
		q.IPv4.TOS = 42
		return []*packet.Packet{q}
	})
	tr := net.Inject(h1, pkt())
	if !tr.Delivered {
		t.Fatalf("not delivered: %s (%v)", tr.Dropped, tr.HopNames(tp))
	}
	if tr.Final.IPv4.TOS != 42 {
		t.Fatal("middlebox transformation lost")
	}
	// A consuming middlebox (IDS dropping attacks) kills the packet.
	net2 := NewNetwork(tp)
	net2.Install([]Rule{
		{Switch: s1, Priority: 5, Match: Match{InPort: fromH1.ID, VLAN: MatchAny},
			Actions: []Action{Output{Port: toM1.ID}}},
	})
	net2.AddMiddleboxFunction(m1, func(p *packet.Packet) []*packet.Packet { return nil })
	tr2 := net2.Inject(h1, pkt())
	if tr2.Delivered || !strings.Contains(tr2.Dropped, "consumed") {
		t.Fatalf("trace: %+v", tr2)
	}
}

func TestInjectFromNonHost(t *testing.T) {
	tp, net, _, _ := linearNet(t)
	tr := net.Inject(tp.MustLookup("s0"), pkt())
	if tr.Delivered || tr.Dropped == "" {
		t.Fatal("switch injection should fail")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Switch: 1, Priority: 7,
		Match:   Match{InPort: 2, VLAN: 5, EthDst: "00:00:00:00:00:02"},
		Actions: []Action{SetVLAN{VLAN: 6}, Enqueue{Port: 3, Queue: 1}, StripVLAN{}, Drop{}},
	}
	s := r.String()
	for _, want := range []string{"vlan=5", "set_vlan:6", "enqueue:3:1", "strip_vlan", "drop"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
