// Package openflow models OpenFlow-style switch configuration — priority-
// ordered flow rules with match fields and action lists — plus a dataplane
// simulator that executes installed rules against concrete packets. The
// simulator is the stand-in for the paper's hardware testbed switches: the
// integration tests compile a policy, install the emitted rules, inject
// packets, and check that observed paths satisfy the policy.
package openflow

import (
	"fmt"
	"sort"
	"strings"

	"merlin/internal/packet"
	"merlin/internal/pred"
	"merlin/internal/topo"
)

// MatchAny wildcards an integer match field. It is distinct from
// packet.VLANNone (-1), which matches only untagged packets.
const MatchAny = -2

// Match selects packets. Zero-valued string fields and MatchAny integer
// fields are wildcards. Predicate, when non-nil, must also hold — it is the
// compiler's classifier abstraction for ingress rules (a hardware backend
// would expand it into TCAM entries; Expand in package codegen counts that
// expansion for the Fig. 4 instruction totals).
type Match struct {
	InPort    topo.LinkID // arrival link; MatchAny for any
	VLAN      int         // 802.1Q tag; MatchAny for any, packet.VLANNone for untagged
	EthSrc    string
	EthDst    string
	Predicate pred.Pred
}

// Matches reports whether the match selects the packet arriving on in.
func (m Match) Matches(pkt *packet.Packet, in topo.LinkID) bool {
	if m.InPort != MatchAny && m.InPort != in {
		return false
	}
	if m.VLAN != MatchAny && m.VLAN != pkt.VLAN {
		return false
	}
	if m.EthSrc != "" && m.EthSrc != pkt.EthSrc.String() {
		return false
	}
	if m.EthDst != "" && m.EthDst != pkt.EthDst.String() {
		return false
	}
	if m.Predicate != nil && !pkt.Matches(m.Predicate) {
		return false
	}
	return true
}

// Action is one forwarding action.
type Action interface{ isAction() }

// Output forwards the packet out the given link.
type Output struct{ Port topo.LinkID }

// SetVLAN pushes/rewrites the 802.1Q tag.
type SetVLAN struct{ VLAN int }

// StripVLAN removes the 802.1Q tag.
type StripVLAN struct{}

// Enqueue forwards out the given link through a QoS queue.
type Enqueue struct {
	Port  topo.LinkID
	Queue int
}

// Drop discards the packet.
type Drop struct{}

func (Output) isAction()    {}
func (SetVLAN) isAction()   {}
func (StripVLAN) isAction() {}
func (Enqueue) isAction()   {}
func (Drop) isAction()      {}

// Rule is one flow-table entry on a switch.
type Rule struct {
	Switch   topo.NodeID
	Priority int
	Match    Match
	Actions  []Action
}

// String renders a compact human-readable form.
func (r Rule) String() string {
	var parts []string
	if r.Match.InPort != MatchAny {
		parts = append(parts, fmt.Sprintf("in=%d", r.Match.InPort))
	}
	if r.Match.VLAN != MatchAny {
		parts = append(parts, fmt.Sprintf("vlan=%d", r.Match.VLAN))
	}
	if r.Match.EthSrc != "" {
		parts = append(parts, "src="+r.Match.EthSrc)
	}
	if r.Match.EthDst != "" {
		parts = append(parts, "dst="+r.Match.EthDst)
	}
	if r.Match.Predicate != nil {
		parts = append(parts, pred.Format(r.Match.Predicate))
	}
	var acts []string
	for _, a := range r.Actions {
		switch act := a.(type) {
		case Output:
			acts = append(acts, fmt.Sprintf("output:%d", act.Port))
		case SetVLAN:
			acts = append(acts, fmt.Sprintf("set_vlan:%d", act.VLAN))
		case StripVLAN:
			acts = append(acts, "strip_vlan")
		case Enqueue:
			acts = append(acts, fmt.Sprintf("enqueue:%d:%d", act.Port, act.Queue))
		case Drop:
			acts = append(acts, "drop")
		}
	}
	return fmt.Sprintf("sw=%d prio=%d [%s] -> %s",
		r.Switch, r.Priority, strings.Join(parts, ","), strings.Join(acts, ","))
}

// PacketFunction is a middlebox/host packet-processing function: one packet
// in, zero or more out (§2.1's transformation contract; only local state).
type PacketFunction func(*packet.Packet) []*packet.Packet

// Identity passes packets through unchanged; the default middlebox
// behavior when a function's transformation is irrelevant to the test.
func Identity(p *packet.Packet) []*packet.Packet { return []*packet.Packet{p} }

// Network is a simulated dataplane: switches run rules, middleboxes run
// packet functions and bounce traffic back on the arrival link, hosts
// deliver.
type Network struct {
	topo   *topo.Topology
	tables map[topo.NodeID][]Rule // sorted by priority desc
	mboxes map[topo.NodeID][]PacketFunction
}

// NewNetwork builds an empty dataplane over the topology.
func NewNetwork(t *topo.Topology) *Network {
	return &Network{
		topo:   t,
		tables: map[topo.NodeID][]Rule{},
		mboxes: map[topo.NodeID][]PacketFunction{},
	}
}

// Install adds rules to their switches' tables.
func (n *Network) Install(rules []Rule) {
	for _, r := range rules {
		n.tables[r.Switch] = append(n.tables[r.Switch], r)
	}
	for sw := range n.tables {
		tbl := n.tables[sw]
		sort.SliceStable(tbl, func(i, j int) bool { return tbl[i].Priority > tbl[j].Priority })
	}
}

// RuleCount reports the number of installed rules.
func (n *Network) RuleCount() int {
	c := 0
	for _, tbl := range n.tables {
		c += len(tbl)
	}
	return c
}

// AddMiddleboxFunction registers a packet function at a middlebox node.
func (n *Network) AddMiddleboxFunction(mb topo.NodeID, fn PacketFunction) {
	n.mboxes[mb] = append(n.mboxes[mb], fn)
}

// Trace records one packet's journey.
type Trace struct {
	// Hops is the sequence of nodes the packet visited, starting at the
	// injecting host.
	Hops []topo.NodeID
	// Delivered is set when the packet reached a host other than the
	// sender.
	Delivered bool
	// DeliveredTo is that host.
	DeliveredTo topo.NodeID
	// Dropped explains a drop ("" if delivered or lost to a missing rule).
	Dropped string
	// Final is the packet as delivered (tags stripped, transformations
	// applied).
	Final *packet.Packet
}

// HopNames renders the visited nodes.
func (tr Trace) HopNames(t *topo.Topology) []string {
	out := make([]string, len(tr.Hops))
	for i, h := range tr.Hops {
		out[i] = t.Node(h).Name
	}
	return out
}

// maxHops bounds simulation walks; a compiled network's paths are far
// shorter, so hitting it indicates a forwarding loop.
const maxHops = 64

// Inject sends pkt from the given host and simulates forwarding until
// delivery, drop, or loop detection.
func (n *Network) Inject(from topo.NodeID, pkt *packet.Packet) Trace {
	tr := Trace{Hops: []topo.NodeID{from}}
	if n.topo.Node(from).Kind != topo.Host {
		tr.Dropped = "injection point is not a host"
		return tr
	}
	cur := pkt.Clone()
	// The host hands the packet to its attached switch.
	att, ok := n.topo.Attachment(from)
	if !ok {
		tr.Dropped = "host has no attached switch"
		return tr
	}
	link, _ := n.topo.FindLink(from, att)
	node, in := att, link.ID
	for hop := 0; hop < maxHops; hop++ {
		tr.Hops = append(tr.Hops, node)
		switch n.topo.Node(node).Kind {
		case topo.Host:
			if node != from {
				tr.Delivered = true
				tr.DeliveredTo = node
				tr.Final = cur
				return tr
			}
			tr.Dropped = "packet returned to sender"
			return tr
		case topo.Middlebox:
			outs := []*packet.Packet{cur}
			for _, fn := range n.mboxes[node] {
				var next []*packet.Packet
				for _, p := range outs {
					next = append(next, fn(p)...)
				}
				outs = next
			}
			if len(outs) == 0 {
				tr.Dropped = "middlebox consumed packet"
				return tr
			}
			cur = outs[0] // simulation follows the first output packet
			// Bounce back on the arrival link.
			back := n.topo.Link(in).Reverse
			node = n.topo.Link(back).Dst
			in = back
		case topo.Switch:
			rule, ok := n.lookup(node, cur, in)
			if !ok {
				tr.Dropped = "no matching rule"
				return tr
			}
			out, done := n.apply(rule, &cur)
			if done {
				tr.Dropped = "dropped by rule"
				return tr
			}
			if out < 0 {
				tr.Dropped = "rule has no output action"
				return tr
			}
			node = n.topo.Link(out).Dst
			in = out
		}
	}
	tr.Dropped = "forwarding loop (hop limit)"
	return tr
}

func (n *Network) lookup(sw topo.NodeID, pkt *packet.Packet, in topo.LinkID) (Rule, bool) {
	for _, r := range n.tables[sw] {
		if r.Match.Matches(pkt, in) {
			return r, true
		}
	}
	return Rule{}, false
}

// apply executes the rule's actions on the packet, returning the output
// link (or -1) and whether the packet was dropped.
func (n *Network) apply(r Rule, pkt **packet.Packet) (topo.LinkID, bool) {
	out := topo.LinkID(-1)
	for _, a := range r.Actions {
		switch act := a.(type) {
		case Drop:
			return -1, true
		case SetVLAN:
			(*pkt).VLAN = act.VLAN
		case StripVLAN:
			(*pkt).VLAN = packet.VLANNone
		case Output:
			out = act.Port
		case Enqueue:
			out = act.Port
		}
	}
	return out, false
}
