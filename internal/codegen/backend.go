package codegen

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"merlin/internal/interp"
	"merlin/internal/openflow"
	"merlin/internal/packet"
	"merlin/internal/pred"
	"merlin/internal/topo"
)

// Backend is one pluggable dataplane target: a pure renderer from the
// target-neutral Program into a device-family-native configuration.
// Implementations must be deterministic in the Program — the incremental
// compiler diffs successive artifacts, and a nondeterministic emitter
// would turn every no-op recompile into a spurious dataplane write.
type Backend interface {
	// Name is the registry key ("openflow", "p4", ...).
	Name() string
	// Emit renders the program for this target.
	Emit(t *topo.Topology, prog *Program) (Artifact, error)
	// Diff computes the install/remove delta between two of this
	// backend's artifacts. Either may be nil (treated as empty).
	Diff(old, new Artifact) ArtifactDiff
}

// Artifact is one backend's emitted configuration.
type Artifact interface {
	// Backend names the backend that emitted the artifact.
	Backend() string
	// Entries renders the configuration as deterministic per-device
	// entries — the diffable (and displayable) native form.
	Entries() []Entry
}

// Entry is one rendered configuration line on one device.
type Entry struct {
	Device topo.NodeID
	Text   string
}

// ArtifactDiff is a backend's install/remove delta in its native rendered
// form.
type ArtifactDiff struct {
	Backend string
	Install []Entry
	Remove  []Entry
}

// Empty reports whether the diff changes nothing.
func (d ArtifactDiff) Empty() bool { return len(d.Install) == 0 && len(d.Remove) == 0 }

// DiffArtifacts computes the multiset delta between two artifacts of the
// same backend. Pointer-identical artifacts (the incremental compiler
// shares untouched artifacts across results) diff as empty without
// rendering.
func DiffArtifacts(backend string, old, new Artifact) ArtifactDiff {
	d := ArtifactDiff{Backend: backend}
	if old == new {
		return d
	}
	var oldE, newE []Entry
	if old != nil {
		oldE = old.Entries()
	}
	if new != nil {
		newE = new.Entries()
	}
	d.Install, d.Remove = diffEntries(newE, oldE, func(e Entry) string {
		return fmt.Sprintf("%d|%s", e.Device, e.Text)
	})
	return d
}

// Built-in backend names. The four defaults together reproduce the
// original monolithic Generate output: OpenFlow rules + queues, host tc
// and iptables commands, Click middlebox configurations, and end-host
// interpreter programs.
const (
	TargetOpenFlow = "openflow"
	TargetTC       = "tc"
	TargetClick    = "click"
	TargetHost     = "host"
)

// BackendOptions are per-registration settings for the v2 capability
// surface: table models and budgets a deployment pins at registration
// time rather than in the backend's code. Every field is optional — the
// zero value registers a plain v1 backend.
type BackendOptions struct {
	// Models overrides (or, for backends not implementing TableModeler,
	// supplies) the backend's table model per device class. A model
	// registered here wins over the backend's own TableModel method.
	Models map[topo.Kind]TableModel
	// DeviceBudgets overrides MaxEntries for individual devices by node
	// name — the escape hatch for a heterogeneous deployment where one
	// switch model differs from its class. A zero budget means the device
	// accepts no ternary entries.
	DeviceBudgets map[string]int
}

// registration pairs a backend with its registration-time options.
type registration struct {
	backend Backend
	opts    BackendOptions
}

var (
	regMu    sync.RWMutex
	registry = map[string]registration{}
)

// Register adds a backend to the registry. It panics on an empty name or
// a duplicate registration — backends are compile-time plumbing, and a
// collision is a programming error, not a runtime condition.
func Register(b Backend) {
	RegisterWith(b, BackendOptions{})
}

// RegisterWith adds a backend together with per-backend options — table
// models and device budget overrides the deployment chooses at
// registration time. Register is the zero-options shorthand.
func RegisterWith(b Backend, opts BackendOptions) {
	name := b.Name()
	if name == "" {
		panic("codegen: Register with empty backend name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("codegen: duplicate backend " + name)
	}
	registry[name] = registration{backend: b, opts: opts}
}

// Lookup returns the named backend.
func Lookup(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := registry[name]
	return r.backend, ok
}

// BackendModel resolves the named backend's table model for a device
// class: registration options first (RegisterWith), then the backend's
// own TableModeler declaration. ok is false when the backend is
// unregistered or declares no model for the class — an unconstrained,
// symbolic-only target.
func BackendModel(name string, class topo.Kind) (TableModel, bool) {
	regMu.RLock()
	r, registered := registry[name]
	regMu.RUnlock()
	if !registered {
		return TableModel{}, false
	}
	if m, ok := r.opts.Models[class]; ok {
		return m, true
	}
	if tm, ok := r.backend.(TableModeler); ok {
		return tm.TableModel(class)
	}
	return TableModel{}, false
}

// DeviceBudget resolves a registration-time per-device budget override
// for the named backend, by device name.
func DeviceBudget(name, device string) (int, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := registry[name]
	if !ok {
		return 0, false
	}
	budget, ok := r.opts.DeviceBudgets[device]
	return budget, ok
}

// Names lists the registered backends, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultTargets returns the built-in target set compiled when
// Options.Targets is unset — the original pre-registry output.
func DefaultTargets() []string {
	return []string{TargetOpenFlow, TargetTC, TargetClick, TargetHost}
}

// IsBuiltinTarget reports whether the named backend is one of the four
// built-ins whose artifacts assemble into the legacy Output struct (and
// whose deltas appear in Diff's typed sections rather than
// Diff.Backends).
func IsBuiltinTarget(name string) bool {
	switch name {
	case TargetOpenFlow, TargetTC, TargetClick, TargetHost:
		return true
	}
	return false
}

// IsBuiltin reports whether the named backend is a built-in.
//
// Deprecated: renamed IsBuiltinTarget in the backend API v2; this alias
// keeps existing callers compiling.
func IsBuiltin(name string) bool { return IsBuiltinTarget(name) }

func init() {
	Register(openflowBackend{})
	Register(tcBackend{})
	Register(clickBackend{})
	Register(hostBackend{})
}

// --- openflow ---------------------------------------------------------

// OpenFlowArtifact is the openflow backend's output: flow rules, switch
// queue reservations, and the tag allocation table.
type OpenFlowArtifact struct {
	Rules  []openflow.Rule
	Queues []QueueConfig
	Tags   map[string][]int
}

// Backend implements Artifact.
func (a *OpenFlowArtifact) Backend() string { return TargetOpenFlow }

// Entries implements Artifact.
func (a *OpenFlowArtifact) Entries() []Entry {
	out := make([]Entry, 0, len(a.Rules)+len(a.Queues))
	for _, r := range a.Rules {
		out = append(out, Entry{Device: r.Switch, Text: r.String()})
	}
	for _, q := range a.Queues {
		out = append(out, Entry{Device: q.Switch, Text: fmt.Sprintf("queue port=%d q=%d min=%g", q.Port, q.Queue, q.MinBps)})
	}
	return out
}

type openflowBackend struct{}

func (openflowBackend) Name() string { return TargetOpenFlow }

func (openflowBackend) Emit(t *topo.Topology, prog *Program) (Artifact, error) {
	art := &OpenFlowArtifact{
		Rules:  make([]openflow.Rule, len(prog.Rules)),
		Queues: prog.Queues,
		Tags:   prog.Tags,
	}
	for i, r := range prog.Rules {
		art.Rules[i] = toOpenFlowRule(r)
	}
	return art, nil
}

func (b openflowBackend) Diff(old, new Artifact) ArtifactDiff {
	return DiffArtifacts(b.Name(), old, new)
}

// toOpenFlowRule maps one IR rule to its OpenFlow form. The IR match
// sentinels are defined to coincide with the OpenFlow ones (AnyPort ↔
// MatchAny, TagNone ↔ packet.VLANNone), but the mapping is written out so
// the correspondence is explicit and backend-local.
func toOpenFlowRule(r Rule) openflow.Rule {
	m := openflow.Match{
		InPort:    r.Match.InPort,
		VLAN:      r.Match.Tag,
		EthSrc:    r.Match.SrcMAC,
		EthDst:    r.Match.DstMAC,
		Predicate: r.Match.Pred,
	}
	if r.Match.InPort == AnyPort {
		m.InPort = openflow.MatchAny
	}
	switch r.Match.Tag {
	case TagAny:
		m.VLAN = openflow.MatchAny
	case TagNone:
		m.VLAN = packet.VLANNone
	}
	acts := make([]openflow.Action, len(r.Ops))
	for i, op := range r.Ops {
		switch op.Kind {
		case OpForward:
			acts[i] = openflow.Output{Port: op.Port}
		case OpForwardQueue:
			acts[i] = openflow.Enqueue{Port: op.Port, Queue: op.Queue}
		case OpSetTag:
			acts[i] = openflow.SetVLAN{VLAN: op.Tag}
		case OpClearTag:
			acts[i] = openflow.StripVLAN{}
		case OpDrop:
			acts[i] = openflow.Drop{}
		}
	}
	return openflow.Rule{Switch: r.Device, Priority: r.Priority, Match: m, Actions: acts}
}

// --- tc / iptables ----------------------------------------------------

// TCArtifact is the tc backend's output: host-side tc rate caps and
// iptables edge filters.
type TCArtifact struct {
	TC       []HostCommand
	IPTables []HostCommand
}

// Backend implements Artifact.
func (a *TCArtifact) Backend() string { return TargetTC }

// Entries implements Artifact.
func (a *TCArtifact) Entries() []Entry {
	out := make([]Entry, 0, len(a.TC)+len(a.IPTables))
	for _, hc := range a.TC {
		out = append(out, Entry{Device: hc.Host, Text: hc.Kind + " " + hc.Command})
	}
	for _, hc := range a.IPTables {
		out = append(out, Entry{Device: hc.Host, Text: hc.Kind + " " + hc.Command})
	}
	return out
}

type tcBackend struct{}

func (tcBackend) Name() string { return TargetTC }

func (tcBackend) Emit(t *topo.Topology, prog *Program) (Artifact, error) {
	art := &TCArtifact{}
	ids := t.Identities()
	for _, c := range prog.Caps {
		art.TC = append(art.TC, CapCommand(c.Host, c.Stmt, c.MaxBps))
	}
	for _, f := range prog.Filters {
		ident, _ := ids.Of(f.Host)
		art.IPTables = append(art.IPTables, HostCommand{
			Host: f.Host,
			Kind: "iptables",
			Command: fmt.Sprintf("iptables -A OUTPUT -m merlin --stmt %s -s %s -j DROP",
				f.Stmt, ident.IP),
		})
	}
	return art, nil
}

func (b tcBackend) Diff(old, new Artifact) ArtifactDiff {
	return DiffArtifacts(b.Name(), old, new)
}

// --- click ------------------------------------------------------------

// ClickArtifact is the click backend's output: one configuration per
// placed packet-processing function instance.
type ClickArtifact struct {
	Click []ClickConfig
}

// Backend implements Artifact.
func (a *ClickArtifact) Backend() string { return TargetClick }

// Entries implements Artifact.
func (a *ClickArtifact) Entries() []Entry {
	out := make([]Entry, 0, len(a.Click))
	for _, cc := range a.Click {
		out = append(out, Entry{Device: cc.Node, Text: cc.Fn + " " + cc.Config})
	}
	return out
}

type clickBackend struct{}

func (clickBackend) Name() string { return TargetClick }

func (clickBackend) Emit(t *topo.Topology, prog *Program) (Artifact, error) {
	art := &ClickArtifact{}
	for _, f := range prog.Fns {
		art.Click = append(art.Click, ClickConfig{
			Node:   f.Node,
			Fn:     f.Fn,
			Config: fmt.Sprintf("%s :: %s(STMT %s);", f.Fn, strings.ToUpper(f.Fn), f.Stmt),
		})
	}
	return art, nil
}

func (b clickBackend) Diff(old, new Artifact) ArtifactDiff {
	return DiffArtifacts(b.Name(), old, new)
}

// --- host (end-host interpreter) --------------------------------------

// HostArtifact is the host backend's output: per-host end-host
// interpreter programs enforcing caps (and payload filters) the switch
// dataplane cannot.
type HostArtifact struct {
	Programs map[topo.NodeID]*interp.Program
}

// Backend implements Artifact.
func (a *HostArtifact) Backend() string { return TargetHost }

// Entries implements Artifact.
func (a *HostArtifact) Entries() []Entry {
	hosts := make([]topo.NodeID, 0, len(a.Programs))
	for h := range a.Programs {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	out := make([]Entry, 0, len(hosts))
	for _, h := range hosts {
		p := a.Programs[h]
		var sb strings.Builder
		sb.WriteString("program " + p.Name)
		for _, cl := range p.Clauses {
			fmt.Fprintf(&sb, " | op=%d rate=%g pred=%s", cl.Op, cl.RateBps, pred.Format(cl.Pred))
		}
		out = append(out, Entry{Device: h, Text: sb.String()})
	}
	return out
}

type hostBackend struct{}

func (hostBackend) Name() string { return TargetHost }

func (hostBackend) Emit(t *topo.Topology, prog *Program) (Artifact, error) {
	art := &HostArtifact{Programs: map[topo.NodeID]*interp.Program{}}
	for _, fn := range prog.HostFns {
		p := art.Programs[fn.Host]
		if p == nil {
			p = &interp.Program{Name: t.Node(fn.Host).Name}
			art.Programs[fn.Host] = p
		}
		p.Clauses = append(p.Clauses, interp.Clause{
			Pred: fn.Pred, Op: interp.OpRateLimit, RateBps: fn.RateBps,
		})
	}
	return art, nil
}

func (b hostBackend) Diff(old, new Artifact) ArtifactDiff {
	return DiffArtifacts(b.Name(), old, new)
}

// --- assembly ---------------------------------------------------------

// AssembleOutput builds the legacy Output struct from whichever built-in
// artifacts were emitted; sections without a corresponding backend stay
// empty. Slices are shared with the artifacts, not copied.
func AssembleOutput(arts map[string]Artifact) *Output {
	out := &Output{Tags: map[string][]int{}}
	if a, ok := arts[TargetOpenFlow].(*OpenFlowArtifact); ok {
		out.Rules, out.Queues, out.Tags = a.Rules, a.Queues, a.Tags
	}
	if a, ok := arts[TargetTC].(*TCArtifact); ok {
		out.TC, out.IPTables = a.TC, a.IPTables
	}
	if a, ok := arts[TargetClick].(*ClickArtifact); ok {
		out.Click = a.Click
	}
	return out
}
