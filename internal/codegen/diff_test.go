package codegen

import (
	"reflect"
	"testing"

	"merlin/internal/openflow"
	"merlin/internal/topo"
)

func rule(in int, prio int, vlan int) openflow.Rule {
	return openflow.Rule{
		Switch:   3,
		Priority: prio,
		Match:    openflow.Match{InPort: topo.LinkID(in), VLAN: vlan},
		Actions:  []openflow.Action{openflow.Output{Port: 1}},
	}
}

func TestDiffOutputs(t *testing.T) {
	old := &Output{
		Rules:  []openflow.Rule{rule(1, 500, 2), rule(2, 500, 2)},
		Queues: []QueueConfig{{Switch: 3, Port: 1, Queue: 1, MinBps: 5e6}},
		TC:     []HostCommand{{Host: 7, Kind: "tc", Command: "tc old"}},
	}
	new := &Output{
		Rules:  []openflow.Rule{rule(2, 500, 2), rule(4, 500, 3)}, // rule(1) gone, rule(4) added
		Queues: []QueueConfig{{Switch: 3, Port: 1, Queue: 1, MinBps: 5e6}},
		TC:     []HostCommand{{Host: 7, Kind: "tc", Command: "tc new"}},
	}
	d := DiffOutputs(old, new)
	if len(d.InstallRules) != 1 || len(d.RemoveRules) != 1 {
		t.Fatalf("rule diff wrong: %+v", d)
	}
	if !reflect.DeepEqual(d.InstallRules[0], rule(4, 500, 3)) || !reflect.DeepEqual(d.RemoveRules[0], rule(1, 500, 2)) {
		t.Fatalf("rule diff picked wrong rules: %+v", d)
	}
	if len(d.InstallQueues) != 0 || len(d.RemoveQueues) != 0 {
		t.Fatalf("identical queues diffed: %+v", d)
	}
	if len(d.InstallTC) != 1 || len(d.RemoveTC) != 1 {
		t.Fatalf("tc diff wrong: %+v", d)
	}
	install, remove := d.Counts()
	if install.Total() != 2 || remove.Total() != 2 {
		t.Fatalf("counts wrong: %+v %+v", install, remove)
	}
	if d.Empty() {
		t.Fatal("non-empty diff reported empty")
	}
	devs := d.Devices()
	if len(devs) != 2 { // switch 3 and host 7
		t.Fatalf("devices wrong: %v", devs)
	}
}

func TestDiffOutputsIdentityAndNil(t *testing.T) {
	out := &Output{
		Rules: []openflow.Rule{rule(1, 500, 2)},
		TC:    []HostCommand{{Host: 7, Kind: "tc", Command: "x"}},
	}
	// Aliased sections (the patched-output case) diff as empty.
	shallow := *out
	if d := DiffOutputs(out, &shallow); !d.Empty() {
		t.Fatalf("aliased outputs diffed: %+v", d)
	}
	// Equal-by-value but distinct slices also diff as empty.
	clone := &Output{
		Rules: append([]openflow.Rule(nil), out.Rules...),
		TC:    append([]HostCommand(nil), out.TC...),
	}
	if d := DiffOutputs(out, clone); !d.Empty() {
		t.Fatalf("equal outputs diffed: %+v", d)
	}
	// Reordered rules diff as empty (multiset semantics).
	two := &Output{Rules: []openflow.Rule{rule(1, 500, 2), rule(2, 400, 3)}}
	swapped := &Output{Rules: []openflow.Rule{rule(2, 400, 3), rule(1, 500, 2)}}
	if d := DiffOutputs(two, swapped); !d.Empty() {
		t.Fatalf("reordered outputs diffed: %+v", d)
	}
	// nil acts as empty: everything installs.
	d := DiffOutputs(nil, out)
	if len(d.InstallRules) != 1 || len(d.InstallTC) != 1 || len(d.RemoveRules) != 0 {
		t.Fatalf("nil-old diff wrong: %+v", d)
	}
}
