package codegen

import (
	"fmt"
	"sort"
	"strings"

	"merlin/internal/pred"
	"merlin/internal/ternary"
	"merlin/internal/topo"
)

// This file is the backend API v2 capability surface: hardware-shaped
// backends declare a table model per device class and receive expanded
// ternary tables instead of symbolic predicates. Both capabilities are
// optional interfaces discovered by type assertion, so v1 backends (the
// four built-ins, p4) are untouched — they keep rendering Match.Pred
// symbolically, and nothing about their registration or emission
// changes.

// TableModel describes one device class's match table as a backend sees
// it: how many ternary entries fit, how wide the key is, and whether the
// hardware matches port ranges natively (no → each range costs its
// prefix cover in entries).
type TableModel struct {
	// MaxEntries is the table capacity in ternary entries; 0 means
	// unconstrained (no budget is derived from this model).
	MaxEntries int
	// Width is the match key width in bits the table can hold. A model
	// narrower than ternary.Width() cannot carry full-fidelity
	// classification; the compiler does not slice keys, so Width is
	// advisory (backends may reject programs needing more).
	Width int
	// SupportsRange keeps port ranges as single native range matches
	// instead of expanding them to prefixes.
	SupportsRange bool
}

// TableModeler is the optional v2 interface through which a backend
// declares its table model per device class. Registration options
// (RegisterWith / BackendOptions.Models) override it.
type TableModeler interface {
	// TableModel reports the model for a device class; ok false means
	// the class is unconstrained for this backend.
	TableModel(class topo.Kind) (TableModel, bool)
}

// TernaryEmitter is the optional v2 interface for backends consuming
// expanded ternary tables: the compiler runs ExpandProgram once per
// distinct expansion option set, checks budgets, and hands the tables
// over instead of (well, alongside) the symbolic Program.
type TernaryEmitter interface {
	// EmitTernary renders the program from its expanded ternary tables.
	// prog is still available for the non-classifier sections (queues,
	// caps, functions).
	EmitTernary(t *topo.Topology, prog *Program, tables *TernaryTables) (Artifact, error)
}

// TernaryEntry is one expanded ternary table entry: an IR rule with its
// predicate lowered to a value/mask row. Structural matches (ingress
// port, tag) stay symbolic — every real table keys them alongside the
// header ternary — and the MAC fields of the IR match are folded into
// the row as exact eth.src/eth.dst constraints.
type TernaryEntry struct {
	Device   topo.NodeID
	Priority int
	// InPort is the ingress-link match (AnyPort for any).
	InPort topo.LinkID
	// Tag is the path-tag match (TagAny / TagNone sentinels as in Match).
	Tag int
	// Match is the header value/mask row; empty matches every header.
	Match ternary.Row
	// Ops is the canonical action string (FormatOps of the rule's ops).
	Ops string
	// Stmt is the owning policy statement.
	Stmt string
}

// TernaryTables is one expansion of a Program's rules under one option
// set: the per-device ternary tables, with entry counts for budget
// checks and stats.
type TernaryTables struct {
	Entries []TernaryEntry
	// PerDevice counts entries per device — what budgets are checked
	// against.
	PerDevice map[topo.NodeID]int
	// Total is len(Entries).
	Total int
	// Opt is the option set the expansion ran under.
	Opt ternary.Options
}

// TableOverflow is one device's budget violation.
type TableOverflow struct {
	// Device is the overflowing node.
	Device topo.NodeID
	// Name is the node's topology name.
	Name string
	// Entries is the expanded entry count placed on the device.
	Entries int
	// Budget is the device's table budget.
	Budget int
}

// TableOverflowError is the typed error a compile returns when a
// placement's expanded ternary tables exceed some device's budget and
// re-placement was not possible (or itself overflowed). Overflows are
// sorted by device.
type TableOverflowError struct {
	// Target is the backend whose table model was violated ("" when the
	// budget came from compiler options rather than a backend model).
	Target    string
	Overflows []TableOverflow
}

// Error implements error.
func (e *TableOverflowError) Error() string {
	var sb strings.Builder
	sb.WriteString("codegen: ternary table overflow")
	if e.Target != "" {
		sb.WriteString(" for target " + e.Target)
	}
	for i, o := range e.Overflows {
		if i == 0 {
			sb.WriteString(": ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s needs %d entries (budget %d)", o.Name, o.Entries, o.Budget)
	}
	return sb.String()
}

// ExpandProgram lowers every IR rule's match to ternary rows under one
// option set. One rule yields one entry per row of its predicate's
// expansion (a rule without a predicate yields one entry); the IR
// match's MAC fields intersect into each row as exact eth.src/eth.dst
// constraints, rows the intersection empties are dropped, and exact
// duplicate entries — same device, priority, structural match, row, and
// action — collapse. Entry order is deterministic in the Program.
func ExpandProgram(t *topo.Topology, prog *Program, opt ternary.Options) (*TernaryTables, error) {
	tables := &TernaryTables{PerDevice: map[topo.NodeID]int{}, Opt: opt}
	seen := map[string]bool{}
	ids := t.Identities()
	for _, r := range prog.Rules {
		rows, err := expandMatch(r.Match, opt, ids)
		if err != nil {
			return nil, fmt.Errorf("codegen: statement %s on %s: %w", r.Stmt, t.Node(r.Device).Name, err)
		}
		ops := FormatOps(r.Ops)
		for _, row := range rows {
			key := fmt.Sprintf("%d|%d|%d|%d|%s|%s", r.Device, r.Priority, r.Match.InPort, r.Match.Tag, row, ops)
			if seen[key] {
				continue
			}
			seen[key] = true
			tables.Entries = append(tables.Entries, TernaryEntry{
				Device:   r.Device,
				Priority: r.Priority,
				InPort:   r.Match.InPort,
				Tag:      r.Match.Tag,
				Match:    row,
				Ops:      ops,
				Stmt:     r.Stmt,
			})
			tables.PerDevice[r.Device]++
		}
	}
	tables.Total = len(tables.Entries)
	return tables, nil
}

// expandMatch turns one IR match's header constraints into ternary rows.
func expandMatch(m Match, opt ternary.Options, ids *topo.IdentityTable) ([]ternary.Row, error) {
	var rows []ternary.Row
	if m.Pred == nil {
		rows = []ternary.Row{nil}
	} else {
		var err error
		rows, err = ternary.Expand(ResolvePred(ids, m.Pred), opt)
		if err != nil {
			return nil, err
		}
	}
	var err error
	if rows, err = foldExact(rows, "eth.src", m.SrcMAC); err != nil {
		return nil, err
	}
	if rows, err = foldExact(rows, "eth.dst", m.DstMAC); err != nil {
		return nil, err
	}
	return rows, nil
}

// foldExact intersects an exact structural constraint into every row,
// dropping rows the intersection empties.
func foldExact(rows []ternary.Row, f pred.Field, v string) ([]ternary.Row, error) {
	if v == "" {
		return rows, nil
	}
	narrowed := rows[:0]
	for _, row := range rows {
		nr, ok, err := row.WithExact(f, v)
		if err != nil {
			return nil, err
		}
		if ok {
			narrowed = append(narrowed, nr)
		}
	}
	return narrowed, nil
}

// EstimateRuleEntries bounds one IR rule's ternary entry count without
// materializing rows — the per-rule expansion estimator budget checks
// and the provisioning constraint use. The MAC-fold can only drop rows,
// so the estimate (predicate expansion alone) stays an upper bound. ids
// resolves host identities as ExpandProgram would; nil skips resolution
// (values must then already be encodable).
func EstimateRuleEntries(r Rule, opt ternary.Options, ids *topo.IdentityTable) (int, error) {
	if r.Match.Pred == nil {
		return 1, nil
	}
	return ternary.Estimate(ResolvePred(ids, r.Match.Pred), opt)
}

// ResolvePred rewrites host-identity test values to the address family
// the field is keyed on: a host name (or cross-family address) on
// eth.src/eth.dst becomes the host's MAC, on ip.src/ip.dst its IP —
// the reading the compiler already gives identities when extracting
// endpoints. Values that resolve to no host, already-canonical
// addresses, and every other field pass through untouched (the ternary
// encoder reports what it cannot parse). The walk is copy-on-write; a
// nil table returns p unchanged.
func ResolvePred(ids *topo.IdentityTable, p pred.Pred) pred.Pred {
	if ids == nil {
		return p
	}
	switch x := p.(type) {
	case pred.Test:
		if v, ok := resolveValue(ids, x.Field, x.Value); ok {
			return pred.Test{Field: x.Field, Value: v}
		}
		return p
	case pred.And:
		l, r := ResolvePred(ids, x.L), ResolvePred(ids, x.R)
		if l != x.L || r != x.R {
			return pred.And{L: l, R: r}
		}
		return p
	case pred.Or:
		l, r := ResolvePred(ids, x.L), ResolvePred(ids, x.R)
		if l != x.L || r != x.R {
			return pred.Or{L: l, R: r}
		}
		return p
	case pred.Not:
		if q := ResolvePred(ids, x.P); q != x.P {
			return pred.Not{P: q}
		}
		return p
	default:
		return p
	}
}

// resolveValue maps one test value through the identity table when the
// field carries a host address. Values already shaped like the field's
// canonical family (colon-hex on eth, dotted-quad on ip) skip the table
// — resolving an owned address returns itself, so the lookup could only
// confirm that, and this path runs per literal inside the estimator.
func resolveValue(ids *topo.IdentityTable, f pred.Field, v string) (string, bool) {
	var mac bool
	switch f {
	case "eth.src", "eth.dst":
		if strings.IndexByte(v, ':') >= 0 {
			return "", false
		}
		mac = true
	case "ip.src", "ip.dst":
		if len(v) > 0 && v[0] >= '0' && v[0] <= '9' && strings.IndexByte(v, '.') >= 0 {
			return "", false
		}
	default:
		return "", false
	}
	node, ok := ids.Resolve(v)
	if !ok {
		return "", false
	}
	ident, ok := ids.Of(node)
	if !ok {
		return "", false
	}
	want := ident.IP
	if mac {
		want = ident.MAC
	}
	if want == v {
		return "", false
	}
	return want, true
}

// CheckBudgets compares an expansion's per-device counts against a
// budget map (absent device = unlimited), returning a typed overflow
// error naming every violating device, or nil.
func CheckBudgets(t *topo.Topology, tables *TernaryTables, budgets map[topo.NodeID]int, target string) error {
	var over []TableOverflow
	for dev, budget := range budgets {
		if n := tables.PerDevice[dev]; n > budget {
			over = append(over, TableOverflow{Device: dev, Name: t.Node(dev).Name, Entries: n, Budget: budget})
		}
	}
	if len(over) == 0 {
		return nil
	}
	sort.Slice(over, func(i, j int) bool { return over[i].Device < over[j].Device })
	return &TableOverflowError{Target: target, Overflows: over}
}
