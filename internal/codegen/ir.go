package codegen

import (
	"fmt"
	"sort"
	"strings"

	"merlin/internal/logical"
	"merlin/internal/pred"
	"merlin/internal/sinktree"
	"merlin/internal/topo"
)

// This file defines the target-neutral intermediate representation the
// compiler lowers plans into, and the lowering pass itself. The IR is the
// seam between policy compilation and dataplane emission: everything a
// concrete device config needs — classifier rules with tags and
// priorities, queue reservations, rate caps, middlebox function
// instances, host-side filters and functions — is decided here, once,
// deterministically. Backends (package-level Register) are pure renderers
// from the IR into their native form, so every backend of the same
// Program describes the same forwarding behavior.

// Match sentinels for Program rules.
const (
	// AnyPort wildcards the ingress-port match.
	AnyPort = topo.LinkID(-2)
	// TagAny wildcards the tag match.
	TagAny = -2
	// TagNone matches only untagged traffic.
	TagNone = -1
)

// Match selects packets for one IR rule. Zero-valued string fields and
// the Any sentinels are wildcards.
type Match struct {
	InPort topo.LinkID // arrival link; AnyPort for any
	Tag    int         // path tag; TagAny for any, TagNone for untagged
	SrcMAC string
	DstMAC string
	// Pred, when non-nil, must also hold — the classifier abstraction a
	// backend expands into its native match form (TCAM entries, P4 table
	// keys, Click classifier expressions).
	Pred pred.Pred
}

// OpKind enumerates IR rule operations.
type OpKind int

// IR rule operations.
const (
	// OpForward sends the packet out Port.
	OpForward OpKind = iota
	// OpForwardQueue sends the packet out Port through QoS queue Queue.
	OpForwardQueue
	// OpSetTag writes the path tag.
	OpSetTag
	// OpClearTag removes the path tag.
	OpClearTag
	// OpDrop discards the packet.
	OpDrop
)

// Op is one operation of an IR rule's action sequence.
type Op struct {
	Kind  OpKind
	Port  topo.LinkID // OpForward, OpForwardQueue
	Queue int         // OpForwardQueue
	Tag   int         // OpSetTag
}

// Rule is one device-level classifier/forwarding entry in the IR:
// first-match by descending priority, with an ordered operation list.
type Rule struct {
	Device   topo.NodeID
	Priority int
	Match    Match
	Ops      []Op
	// Stmt is the policy statement the rule was lowered from.
	Stmt string
}

// CapSpec is a host-side bandwidth cap (lowered to a tc command, an
// end-host program clause, or a hardware meter, depending on backend).
type CapSpec struct {
	Host   topo.NodeID
	Stmt   string
	MaxBps float64
}

// FilterSpec is a host-side edge filter: traffic of the statement must be
// dropped before it enters the network.
type FilterSpec struct {
	Host topo.NodeID
	Stmt string
	Pred pred.Pred
}

// FnSpec is one packet-processing function instance placed on a
// middlebox (or a host running the middlebox substrate).
type FnSpec struct {
	Node topo.NodeID
	Fn   string
	Stmt string
}

// HostFnSpec is an end-host dataplane function: a rate limiter (or
// filter) the host's local enforcement substrate must run against the
// statement's traffic.
type HostFnSpec struct {
	Host    topo.NodeID
	Stmt    string
	Pred    pred.Pred
	RateBps float64
}

// Program is the lowered, target-neutral form of a compiled policy: the
// complete dataplane behavior, independent of any concrete device
// family. Section order is deterministic (plans are visited in stable
// priority order), so two lowerings of the same plan list are identical
// and backends inherit that determinism for free.
type Program struct {
	Rules   []Rule
	Queues  []QueueConfig
	Caps    []CapSpec
	Filters []FilterSpec
	Fns     []FnSpec
	HostFns []HostFnSpec
	// Tags maps statement IDs to the path tags allocated for them.
	Tags map[string][]int
}

// lowerer carries lowering state (the pre-redesign generator, emitting IR
// instead of OpenFlow rules).
type lowerer struct {
	t    *topo.Topology
	ids  *topo.IdentityTable
	prog *Program
	// bound dedups forwarding rules: (device, tag, inPort) → rule index.
	bound map[ruleKey]int
	// classBound dedups classification rules.
	classBound map[classKey]bool
	// queueBound dedups queue configs and allocates queue ids per port.
	queueBound map[queueKey]bool
	queueNext  map[topo.LinkID]int
	nextTag    int
	// scratch buffers reused across plans
	locBuf  []topo.NodeID
	stepBuf []logical.Step
}

// byPriority sorts plans by descending priority, stably.
type byPriority []Plan

func (p byPriority) Len() int           { return len(p) }
func (p byPriority) Less(i, j int) bool { return p[i].Priority > p[j].Priority }
func (p byPriority) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }

type ruleKey struct {
	sw   topo.NodeID
	vlan int
	in   topo.LinkID
}

// classKey identifies a classification rule: what selects the traffic
// (destination MAC or rendered cube predicate) at a (device, tag).
type classKey struct {
	sw   topo.NodeID
	vlan int
	sel  string
}

type queueKey struct {
	sw     topo.NodeID
	port   topo.LinkID
	minBps float64
}

// Lower turns plans into the target-neutral Program: path tags are
// allocated, classification and forwarding rules laid out with conflict
// retagging, queues reserved, caps, filters, and function instances
// recorded. The output is deterministic in the plan list.
func Lower(t *topo.Topology, plans []Plan) (*Program, error) {
	g := &lowerer{
		t:          t,
		ids:        t.Identities(),
		prog:       &Program{Tags: map[string][]int{}, Rules: make([]Rule, 0, 2*len(plans))},
		bound:      map[ruleKey]int{},
		classBound: map[classKey]bool{},
		queueBound: map[queueKey]bool{},
		queueNext:  map[topo.LinkID]int{},
		nextTag:    2, // tags 0/1 are reserved on real switches (VLAN semantics)
	}
	// Stable order: guaranteed paths first (their classification has
	// higher effective priority anyway), then by ID.
	ordered := append([]Plan(nil), plans...)
	sort.Stable(byPriority(ordered))
	// Tree tag sharing: plans pointing at the same sink tree share tags.
	treeTags := map[*sinktree.Tree]int{}
	for _, p := range ordered {
		switch {
		case p.Drop:
			g.lowerDrop(p)
		case p.Path != nil:
			if err := g.lowerPath(p, p.Path, g.allocTag(p.ID), true); err != nil {
				return nil, fmt.Errorf("codegen: statement %s: %w", p.ID, err)
			}
		case p.Tree != nil:
			tag, ok := treeTags[p.Tree]
			if !ok {
				tag = g.allocTag(p.ID)
				treeTags[p.Tree] = tag
			} else {
				g.prog.Tags[p.ID] = append(g.prog.Tags[p.ID], tag)
			}
			steps := p.Tree.PathFromBuf(g.stepBuf, p.SrcHost)
			if steps == nil {
				return nil, fmt.Errorf("codegen: statement %s: %s cannot reach %s under the path constraint",
					p.ID, t.Node(p.SrcHost).Name, t.Node(p.DstHost).Name)
			}
			if err := g.lowerPath(p, steps, tag, false); err != nil {
				return nil, fmt.Errorf("codegen: statement %s: %w", p.ID, err)
			}
			if cap(steps) > cap(g.stepBuf) {
				g.stepBuf = steps[:0]
			}
		default:
			return nil, fmt.Errorf("codegen: statement %s has neither path nor tree", p.ID)
		}
		g.lowerHostConfig(p)
	}
	return g.prog, nil
}

func (g *lowerer) allocTag(id string) int {
	tag := g.nextTag
	g.nextTag++
	if g.nextTag >= 4095 {
		panic("codegen: tag space exhausted")
	}
	g.prog.Tags[id] = append(g.prog.Tags[id], tag)
	return tag
}

// lowerDrop installs an edge filter at the source host's ingress device
// plus a host-side filter.
func (g *lowerer) lowerDrop(p Plan) {
	att, ok := g.t.Attachment(p.SrcHost)
	if !ok {
		return
	}
	cubes, err := pred.PositiveCubes(p.Predicate)
	if err != nil || len(cubes) == 0 {
		cubes = [][]pred.Test{nil}
	}
	for range cubes {
		g.prog.Rules = append(g.prog.Rules, Rule{
			Device:   att,
			Priority: 1000 + p.Priority,
			Match:    Match{InPort: AnyPort, Tag: TagNone, Pred: p.Predicate},
			Ops:      []Op{{Kind: OpDrop}},
			Stmt:     p.ID,
		})
	}
	g.prog.Filters = append(g.prog.Filters, FilterSpec{
		Host: p.SrcHost,
		Stmt: p.ID,
		Pred: p.Predicate,
	})
}

// lowerPath walks a physical path and lays out tag-switched forwarding
// rules, classification at the ingress device, queue reservations for
// guarantees, and function instances for middlebox placements.
func (g *lowerer) lowerPath(p Plan, steps []logical.Step, tag int, guaranteed bool) error {
	locs := logical.AppendLocations(g.locBuf, steps)
	g.locBuf = locs
	if len(locs) < 2 {
		return fmt.Errorf("degenerate path")
	}
	if g.t.Node(locs[0]).Kind != topo.Host || g.t.Node(locs[len(locs)-1]).Kind != topo.Host {
		return fmt.Errorf("path endpoints must be hosts")
	}
	// Function instances for middlebox placements; host placements run on
	// the end-host substrate too.
	for _, pl := range logical.PlacementsOf(steps) {
		g.prog.Fns = append(g.prog.Fns, FnSpec{Node: pl.Loc, Fn: pl.Fn, Stmt: p.ID})
	}
	curTag := tag
	classified := false
	for i := 1; i < len(locs)-1; i++ {
		node := locs[i]
		if g.t.Node(node).Kind != topo.Switch {
			continue // middlebox hops bounce; host interiors impossible
		}
		inLink, ok := g.t.FindLink(locs[i-1], node)
		if !ok {
			return fmt.Errorf("no link %s-%s", g.t.Node(locs[i-1]).Name, g.t.Node(node).Name)
		}
		outLink, ok := g.t.FindLink(node, locs[i+1])
		if !ok {
			return fmt.Errorf("no link %s-%s", g.t.Node(node).Name, g.t.Node(locs[i+1]).Name)
		}
		last := i == len(locs)-2
		fwd := Op{Kind: OpForward, Port: outLink.ID}
		if guaranteed {
			q := g.queueFor(node, outLink.ID, p.Alloc.Min)
			fwd = Op{Kind: OpForwardQueue, Port: outLink.ID, Queue: q}
		}
		if !classified {
			// Ingress classification: untagged packets matching the
			// statement's predicate get the path tag.
			g.lowerClassification(p, node, inLink.ID, curTag, fwd, last)
			classified = true
			continue
		}
		key := ruleKey{sw: node, vlan: curTag, in: inLink.ID}
		ops := []Op{fwd}
		if last {
			ops = []Op{{Kind: OpClearTag}, fwd}
		}
		if idx, exists := g.bound[key]; exists {
			if !sameOps(g.prog.Rules[idx].Ops, ops) {
				// Conflict: this (device, tag, port) already forwards
				// elsewhere. Retag the previous hop onto a fresh tag.
				fresh := g.allocTag(p.ID)
				if err := g.retagPrevious(p, locs, i, curTag, fresh); err != nil {
					return err
				}
				curTag = fresh
				key.vlan = curTag
				g.prog.Rules = append(g.prog.Rules, Rule{
					Device:   node,
					Priority: 500,
					Match:    Match{InPort: inLink.ID, Tag: curTag},
					Ops:      ops,
					Stmt:     p.ID,
				})
				g.bound[key] = len(g.prog.Rules) - 1
			}
			continue
		}
		g.prog.Rules = append(g.prog.Rules, Rule{
			Device:   node,
			Priority: 500,
			Match:    Match{InPort: inLink.ID, Tag: curTag},
			Ops:      ops,
			Stmt:     p.ID,
		})
		g.bound[key] = len(g.prog.Rules) - 1
	}
	if !classified {
		return fmt.Errorf("path contains no switch")
	}
	return nil
}

// retagPrevious rewrites the rule lowered for the hop before position i so
// the packet arrives with the fresh tag.
func (g *lowerer) retagPrevious(p Plan, locs []topo.NodeID, i, oldTag, fresh int) error {
	// Find the previous switch hop.
	for j := i - 1; j >= 1; j-- {
		if g.t.Node(locs[j]).Kind != topo.Switch {
			continue
		}
		inLink, _ := g.t.FindLink(locs[j-1], locs[j])
		key := ruleKey{sw: locs[j], vlan: oldTag, in: inLink.ID}
		idx, ok := g.bound[key]
		if !ok {
			return fmt.Errorf("retag: no prior rule at %s", g.t.Node(locs[j]).Name)
		}
		rule := &g.prog.Rules[idx]
		rule.Ops = append([]Op{{Kind: OpSetTag, Tag: fresh}}, rule.Ops...)
		return nil
	}
	return fmt.Errorf("retag: no prior switch hop")
}

// lowerClassification installs the ingress rules mapping untagged packets
// of the statement onto the path tag.
func (g *lowerer) lowerClassification(p Plan, sw topo.NodeID, in topo.LinkID, tag int, fwd Op, last bool) {
	ops := []Op{{Kind: OpSetTag, Tag: tag}, fwd}
	if last {
		// Single-switch path: tag would be stripped immediately; skip
		// tagging altogether.
		ops = []Op{fwd}
	}
	switch p.Classify {
	case ByDestination:
		ident, _ := g.ids.Of(p.DstHost)
		key := classKey{sw: sw, vlan: tag, sel: ident.MAC}
		if g.classBound[key] {
			return
		}
		g.classBound[key] = true
		g.prog.Rules = append(g.prog.Rules, Rule{
			Device:   sw,
			Priority: 100 + p.Priority,
			Match:    Match{InPort: AnyPort, Tag: TagNone, DstMAC: ident.MAC},
			Ops:      ops,
			Stmt:     p.ID,
		})
	default:
		cubes, err := pred.PositiveCubes(p.Predicate)
		exact := err != nil // expansion too large: match the full predicate in one rule
		if len(cubes) == 0 {
			cubes = [][]pred.Test{nil}
		}
		for _, cube := range cubes {
			cubePred := cubeToPred(cube)
			if exact {
				cubePred = p.Predicate
			}
			key := classKey{sw: sw, vlan: tag, sel: "p/" + pred.Format(cubePred)}
			if g.classBound[key] {
				continue
			}
			g.classBound[key] = true
			g.prog.Rules = append(g.prog.Rules, Rule{
				Device:   sw,
				Priority: 100 + p.Priority,
				Match:    Match{InPort: in, Tag: TagNone, Pred: cubePred},
				Ops:      ops,
				Stmt:     p.ID,
			})
		}
	}
}

func cubeToPred(cube []pred.Test) pred.Pred {
	ps := make([]pred.Pred, len(cube))
	for i, t := range cube {
		ps[i] = t
	}
	return pred.Conj(ps...)
}

// queueFor allocates (or reuses) a QoS queue on the given port with the
// statement's guaranteed rate.
func (g *lowerer) queueFor(sw topo.NodeID, port topo.LinkID, minBps float64) int {
	key := queueKey{sw: sw, port: port, minBps: minBps}
	if g.queueBound[key] {
		// Reuse: find the existing config.
		for _, q := range g.prog.Queues {
			if q.Switch == sw && q.Port == port && q.MinBps == minBps {
				return q.Queue
			}
		}
	}
	g.queueBound[key] = true
	q := g.queueNext[port] + 1
	g.queueNext[port] = q
	g.prog.Queues = append(g.prog.Queues, QueueConfig{Switch: sw, Port: port, Queue: q, MinBps: minBps})
	return q
}

// lowerHostConfig records the statement's host-side rate cap.
func (g *lowerer) lowerHostConfig(p Plan) {
	if CapApplies(p.Alloc.Max) {
		g.prog.Caps = append(g.prog.Caps, CapSpec{Host: p.SrcHost, Stmt: p.ID, MaxBps: p.Alloc.Max})
	}
}

func sameOps(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FormatOps renders an op sequence compactly ("set_tag:2,forward:5") —
// shared by diagnostics and backends that want a canonical action name.
func FormatOps(ops []Op) string {
	parts := make([]string, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case OpForward:
			parts = append(parts, fmt.Sprintf("forward:%d", op.Port))
		case OpForwardQueue:
			parts = append(parts, fmt.Sprintf("forward_queue:%d:%d", op.Port, op.Queue))
		case OpSetTag:
			parts = append(parts, fmt.Sprintf("set_tag:%d", op.Tag))
		case OpClearTag:
			parts = append(parts, "clear_tag")
		case OpDrop:
			parts = append(parts, "drop")
		}
	}
	return strings.Join(parts, ",")
}
