package codegen

import (
	"testing"

	"merlin/internal/topo"
)

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(openflowBackend{}) // "openflow" is already registered by init
}

func TestDefaultTargetsRegistered(t *testing.T) {
	for _, name := range DefaultTargets() {
		b, ok := Lookup(name)
		if !ok {
			t.Fatalf("default target %q not registered", name)
		}
		if b.Name() != name {
			t.Fatalf("backend %q reports name %q", name, b.Name())
		}
		if !IsBuiltin(name) {
			t.Fatalf("default target %q not recognized as builtin", name)
		}
	}
	if IsBuiltin("p4") {
		t.Fatal("p4 must not be a builtin: its diffs route through Diff.Backends")
	}
}

func TestDiffArtifactsPointerIdentityFastPath(t *testing.T) {
	a := &ClickArtifact{Click: []ClickConfig{{Node: 1, Fn: "dpi", Config: "x"}}}
	if d := DiffArtifacts(TargetClick, a, a); !d.Empty() {
		t.Fatalf("identical artifact diffed non-empty: %+v", d)
	}
}

func TestDiffArtifactsMultiset(t *testing.T) {
	old := &ClickArtifact{Click: []ClickConfig{
		{Node: 1, Fn: "dpi", Config: "a"},
		{Node: 2, Fn: "nat", Config: "b"},
	}}
	new := &ClickArtifact{Click: []ClickConfig{
		{Node: 2, Fn: "nat", Config: "b"},
		{Node: 3, Fn: "dpi", Config: "c"},
	}}
	d := DiffArtifacts(TargetClick, old, new)
	if len(d.Install) != 1 || d.Install[0].Device != topo.NodeID(3) {
		t.Fatalf("install wrong: %+v", d.Install)
	}
	if len(d.Remove) != 1 || d.Remove[0].Device != topo.NodeID(1) {
		t.Fatalf("remove wrong: %+v", d.Remove)
	}
	// Nil old = install everything.
	d = DiffArtifacts(TargetClick, nil, new)
	if len(d.Install) != 2 || len(d.Remove) != 0 {
		t.Fatalf("nil-old diff wrong: %+v", d)
	}
}
