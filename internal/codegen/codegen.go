// Package codegen turns provisioned paths and sink trees into device-level
// configuration (§3.4) through a two-stage, pluggable pipeline: a lowering
// pass (Lower) first compiles plans into a target-neutral intermediate
// representation — per-device classifier rules with tags and priorities,
// queue reservations, rate caps, middlebox hops, and host functions — and
// registered backends (Register / Lookup) then render that Program into
// concrete dataplane form. The built-in backends reproduce the paper's
// targets: OpenFlow rules using tags to pin forwarding paths
// (FlowTags-style) plus QoS queue configurations, tc/iptables commands for
// host-side rate limits and filters, Click configurations for middlebox
// packet-processing functions, and end-host interpreter programs. New
// device families (P4, eBPF, vendor CLIs) plug in by implementing Backend
// against the same IR.
package codegen

import (
	"fmt"
	"math"

	"merlin/internal/logical"
	"merlin/internal/openflow"
	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/sinktree"
	"merlin/internal/topo"
)

// Classify selects how a statement's ingress rules match packets.
type Classify int

// Classification modes.
const (
	// ByPredicate expands the statement predicate into positive-cube
	// match rules (one per cube) at first-match priority.
	ByPredicate Classify = iota
	// ByDestination matches only the destination MAC — the compact form
	// for plain connectivity statements sharing a destination sink tree.
	ByDestination
)

// Plan is the compiled artifact of one statement handed to code
// generation.
type Plan struct {
	ID        string
	Predicate pred.Pred
	// Priority orders classification: earlier statements shadow later
	// ones (first-match). Higher values win.
	Priority int
	Alloc    policy.Alloc
	Classify Classify

	// SrcHost/DstHost are the endpoints resolved from the predicate.
	SrcHost, DstHost topo.NodeID

	// Path is the provisioned path for guaranteed statements; Tree the
	// sink tree for best-effort ones. Exactly one must be set.
	Path []logical.Step
	Tree *sinktree.Tree

	// Drop marks statements whose traffic must be filtered at the edge.
	Drop bool
}

// HostCommand is a generated end-host configuration line.
type HostCommand struct {
	Host    topo.NodeID
	Kind    string // "tc" or "iptables"
	Command string
}

// QueueConfig is one switch-port QoS queue reservation. It doubles as the
// IR's queue section: the reservation is already target-neutral.
type QueueConfig struct {
	Switch topo.NodeID
	Port   topo.LinkID
	Queue  int
	MinBps float64
}

// ClickConfig configures one packet-processing function instance on a
// middlebox (or host running the Click substrate).
type ClickConfig struct {
	Node   topo.NodeID
	Fn     string
	Config string
}

// Output is everything the default built-in backends emit for the
// dataplane — the legacy aggregate form, assembled from the per-backend
// artifacts by AssembleOutput.
type Output struct {
	Rules    []openflow.Rule
	Queues   []QueueConfig
	TC       []HostCommand
	IPTables []HostCommand
	Click    []ClickConfig
	// Tags maps statement IDs to the tags allocated for them.
	Tags map[string][]int
}

// Counts summarizes instruction totals per backend — the Fig. 4 metric.
type Counts struct {
	OpenFlow, Queues, TC, IPTables, Click int
}

// Counts tallies the output.
func (o *Output) Counts() Counts {
	return Counts{
		OpenFlow: len(o.Rules),
		Queues:   len(o.Queues),
		TC:       len(o.TC),
		IPTables: len(o.IPTables),
		Click:    len(o.Click),
	}
}

// Total is the grand instruction total.
func (c Counts) Total() int { return c.OpenFlow + c.Queues + c.TC + c.IPTables + c.Click }

// Generate lowers plans to the IR and emits the default dataplane
// backends (OpenFlow, tc/iptables, Click), assembled into the legacy
// Output. It is byte-identical to the pre-registry monolithic generator;
// callers wanting per-backend artifacts (or non-default targets such as
// P4) should call Lower and the backends directly.
func Generate(t *topo.Topology, plans []Plan) (*Output, error) {
	prog, err := Lower(t, plans)
	if err != nil {
		return nil, err
	}
	arts := make(map[string]Artifact, 3)
	for _, name := range []string{TargetOpenFlow, TargetTC, TargetClick} {
		b, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("codegen: built-in backend %q not registered", name)
		}
		art, err := b.Emit(t, prog)
		if err != nil {
			return nil, fmt.Errorf("codegen: backend %s: %w", name, err)
		}
		arts[name] = art
	}
	return AssembleOutput(arts), nil
}

// CapApplies reports whether a statement cap emits a host-side tc
// command (finite and nonzero).
func CapApplies(maxBps float64) bool { return maxBps != 0 && !math.IsInf(maxBps, 1) }

// CapCommand renders the tc command enforcing a statement's bandwidth
// cap at its source host. It is shared between the tc backend and the
// incremental compiler's caps-only patch path so the two stay
// byte-identical.
func CapCommand(host topo.NodeID, id string, maxBps float64) HostCommand {
	return HostCommand{
		Host: host,
		Kind: "tc",
		Command: fmt.Sprintf("tc class add dev eth0 parent 1: classid 1:%s htb rate %.0fkbit ceil %.0fkbit",
			id, maxBps/1e3, maxBps/1e3),
	}
}
