// Package codegen turns provisioned paths and sink trees into device-level
// configuration (§3.4): OpenFlow rules using VLAN tags to pin forwarding
// paths (one tag per sink tree or guaranteed path, FlowTags-style), QoS
// queue configurations for bandwidth guarantees, tc commands for host-side
// rate limits, iptables commands for host-side filters, and Click
// configurations for middlebox packet-processing functions.
package codegen

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"merlin/internal/logical"
	"merlin/internal/openflow"
	"merlin/internal/packet"
	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/sinktree"
	"merlin/internal/topo"
)

// Classify selects how a statement's ingress rules match packets.
type Classify int

// Classification modes.
const (
	// ByPredicate expands the statement predicate into positive-cube
	// match rules (one per cube) at first-match priority.
	ByPredicate Classify = iota
	// ByDestination matches only the destination MAC — the compact form
	// for plain connectivity statements sharing a destination sink tree.
	ByDestination
)

// Plan is the compiled artifact of one statement handed to code
// generation.
type Plan struct {
	ID        string
	Predicate pred.Pred
	// Priority orders classification: earlier statements shadow later
	// ones (first-match). Higher values win.
	Priority int
	Alloc    policy.Alloc
	Classify Classify

	// SrcHost/DstHost are the endpoints resolved from the predicate.
	SrcHost, DstHost topo.NodeID

	// Path is the provisioned path for guaranteed statements; Tree the
	// sink tree for best-effort ones. Exactly one must be set.
	Path []logical.Step
	Tree *sinktree.Tree

	// Drop marks statements whose traffic must be filtered at the edge.
	Drop bool
}

// HostCommand is a generated end-host configuration line.
type HostCommand struct {
	Host    topo.NodeID
	Kind    string // "tc" or "iptables"
	Command string
}

// QueueConfig is one switch-port QoS queue reservation.
type QueueConfig struct {
	Switch topo.NodeID
	Port   topo.LinkID
	Queue  int
	MinBps float64
}

// ClickConfig configures one packet-processing function instance on a
// middlebox (or host running the Click substrate).
type ClickConfig struct {
	Node   topo.NodeID
	Fn     string
	Config string
}

// Output is everything the compiler emits for the dataplane.
type Output struct {
	Rules    []openflow.Rule
	Queues   []QueueConfig
	TC       []HostCommand
	IPTables []HostCommand
	Click    []ClickConfig
	// Tags maps statement IDs to the VLAN tags allocated for them.
	Tags map[string][]int
}

// Counts summarizes instruction totals per backend — the Fig. 4 metric.
type Counts struct {
	OpenFlow, Queues, TC, IPTables, Click int
}

// Counts tallies the output.
func (o *Output) Counts() Counts {
	return Counts{
		OpenFlow: len(o.Rules),
		Queues:   len(o.Queues),
		TC:       len(o.TC),
		IPTables: len(o.IPTables),
		Click:    len(o.Click),
	}
}

// Total is the grand instruction total.
func (c Counts) Total() int { return c.OpenFlow + c.Queues + c.TC + c.IPTables + c.Click }

// generator carries emission state.
type generator struct {
	t   *topo.Topology
	ids *topo.IdentityTable
	out *Output
	// bound dedups forwarding rules: (switch, vlan, inPort) → rule index.
	bound map[ruleKey]int
	// classBound dedups classification rules.
	classBound map[classKey]bool
	// queueBound dedups queue configs and allocates queue ids per port.
	queueBound map[queueKey]bool
	queueNext  map[topo.LinkID]int
	nextTag    int
	// scratch buffers reused across plans
	locBuf  []topo.NodeID
	stepBuf []logical.Step
}

// byPriority sorts plans by descending priority, stably.
type byPriority []Plan

func (p byPriority) Len() int           { return len(p) }
func (p byPriority) Less(i, j int) bool { return p[i].Priority > p[j].Priority }
func (p byPriority) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }

type ruleKey struct {
	sw   topo.NodeID
	vlan int
	in   topo.LinkID
}

// classKey identifies a classification rule: what selects the traffic
// (destination MAC or rendered cube predicate) at a (switch, tag).
type classKey struct {
	sw   topo.NodeID
	vlan int
	sel  string
}

type queueKey struct {
	sw     topo.NodeID
	port   topo.LinkID
	minBps float64
}

// Generate emits configuration for all plans.
func Generate(t *topo.Topology, plans []Plan) (*Output, error) {
	g := &generator{
		t:          t,
		ids:        t.Identities(),
		out:        &Output{Tags: map[string][]int{}, Rules: make([]openflow.Rule, 0, 2*len(plans))},
		bound:      map[ruleKey]int{},
		classBound: map[classKey]bool{},
		queueBound: map[queueKey]bool{},
		queueNext:  map[topo.LinkID]int{},
		nextTag:    2, // VLAN IDs 0/1 are reserved on real switches
	}
	// Stable order: guaranteed paths first (their classification has
	// higher effective priority anyway), then by ID.
	ordered := append([]Plan(nil), plans...)
	sort.Stable(byPriority(ordered))
	// Tree tag sharing: plans pointing at the same sink tree share tags.
	treeTags := map[*sinktree.Tree]int{}
	for _, p := range ordered {
		switch {
		case p.Drop:
			g.emitDrop(p)
		case p.Path != nil:
			if err := g.emitPath(p, p.Path, g.allocTag(p.ID), true); err != nil {
				return nil, fmt.Errorf("codegen: statement %s: %w", p.ID, err)
			}
		case p.Tree != nil:
			tag, ok := treeTags[p.Tree]
			if !ok {
				tag = g.allocTag(p.ID)
				treeTags[p.Tree] = tag
			} else {
				g.out.Tags[p.ID] = append(g.out.Tags[p.ID], tag)
			}
			steps := p.Tree.PathFromBuf(g.stepBuf, p.SrcHost)
			if steps == nil {
				return nil, fmt.Errorf("codegen: statement %s: %s cannot reach %s under the path constraint",
					p.ID, t.Node(p.SrcHost).Name, t.Node(p.DstHost).Name)
			}
			if err := g.emitPath(p, steps, tag, false); err != nil {
				return nil, fmt.Errorf("codegen: statement %s: %w", p.ID, err)
			}
			if cap(steps) > cap(g.stepBuf) {
				g.stepBuf = steps[:0]
			}
		default:
			return nil, fmt.Errorf("codegen: statement %s has neither path nor tree", p.ID)
		}
		g.emitHostConfig(p)
	}
	return g.out, nil
}

func (g *generator) allocTag(id string) int {
	tag := g.nextTag
	g.nextTag++
	if g.nextTag >= 4095 {
		panic("codegen: VLAN tag space exhausted")
	}
	g.out.Tags[id] = append(g.out.Tags[id], tag)
	return tag
}

// emitDrop installs an edge filter at the source host's ingress switch.
func (g *generator) emitDrop(p Plan) {
	att, ok := g.t.Attachment(p.SrcHost)
	if !ok {
		return
	}
	cubes, err := pred.PositiveCubes(p.Predicate)
	if err != nil || len(cubes) == 0 {
		cubes = [][]pred.Test{nil}
	}
	for range cubes {
		g.out.Rules = append(g.out.Rules, openflow.Rule{
			Switch:   att,
			Priority: 1000 + p.Priority,
			Match:    openflow.Match{InPort: openflow.MatchAny, VLAN: packet.VLANNone, Predicate: p.Predicate},
			Actions:  []openflow.Action{openflow.Drop{}},
		})
	}
	ident, _ := g.ids.Of(p.SrcHost)
	g.out.IPTables = append(g.out.IPTables, HostCommand{
		Host: p.SrcHost,
		Kind: "iptables",
		Command: fmt.Sprintf("iptables -A OUTPUT -m merlin --stmt %s -s %s -j DROP",
			p.ID, ident.IP),
	})
}

// emitPath walks a physical path and emits tag-switched forwarding rules,
// classification at the ingress switch, queue configurations for
// guarantees, and Click configurations for middlebox function placements.
func (g *generator) emitPath(p Plan, steps []logical.Step, tag int, guaranteed bool) error {
	locs := logical.AppendLocations(g.locBuf, steps)
	g.locBuf = locs
	if len(locs) < 2 {
		return fmt.Errorf("degenerate path")
	}
	if g.t.Node(locs[0]).Kind != topo.Host || g.t.Node(locs[len(locs)-1]).Kind != topo.Host {
		return fmt.Errorf("path endpoints must be hosts")
	}
	// Click configs for middlebox placements; host placements run on the
	// end-host Click substrate too.
	for _, pl := range logical.PlacementsOf(steps) {
		g.out.Click = append(g.out.Click, ClickConfig{
			Node:   pl.Loc,
			Fn:     pl.Fn,
			Config: fmt.Sprintf("%s :: %s(STMT %s);", pl.Fn, strings.ToUpper(pl.Fn), p.ID),
		})
	}
	curTag := tag
	classified := false
	for i := 1; i < len(locs)-1; i++ {
		node := locs[i]
		if g.t.Node(node).Kind != topo.Switch {
			continue // middlebox hops bounce; host interiors impossible
		}
		inLink, ok := g.t.FindLink(locs[i-1], node)
		if !ok {
			return fmt.Errorf("no link %s-%s", g.t.Node(locs[i-1]).Name, g.t.Node(node).Name)
		}
		outLink, ok := g.t.FindLink(node, locs[i+1])
		if !ok {
			return fmt.Errorf("no link %s-%s", g.t.Node(node).Name, g.t.Node(locs[i+1]).Name)
		}
		last := i == len(locs)-2
		var fwd openflow.Action = openflow.Output{Port: outLink.ID}
		if guaranteed {
			q := g.queueFor(node, outLink.ID, p.Alloc.Min)
			fwd = openflow.Enqueue{Port: outLink.ID, Queue: q}
		}
		if !classified {
			// Ingress classification: untagged packets matching the
			// statement's predicate get the path tag.
			g.emitClassification(p, node, inLink.ID, curTag, fwd, last)
			classified = true
			continue
		}
		key := ruleKey{sw: node, vlan: curTag, in: inLink.ID}
		actions := []openflow.Action{fwd}
		if last {
			actions = []openflow.Action{openflow.StripVLAN{}, fwd}
		}
		if idx, exists := g.bound[key]; exists {
			if !sameActions(g.out.Rules[idx].Actions, actions) {
				// Conflict: this (switch, tag, port) already forwards
				// elsewhere. Retag the previous hop onto a fresh tag.
				fresh := g.allocTag(p.ID)
				if err := g.retagPrevious(p, locs, i, curTag, fresh); err != nil {
					return err
				}
				curTag = fresh
				key.vlan = curTag
				g.out.Rules = append(g.out.Rules, openflow.Rule{
					Switch:   node,
					Priority: 500,
					Match:    openflow.Match{InPort: inLink.ID, VLAN: curTag},
					Actions:  actions,
				})
				g.bound[key] = len(g.out.Rules) - 1
			}
			continue
		}
		g.out.Rules = append(g.out.Rules, openflow.Rule{
			Switch:   node,
			Priority: 500,
			Match:    openflow.Match{InPort: inLink.ID, VLAN: curTag},
			Actions:  actions,
		})
		g.bound[key] = len(g.out.Rules) - 1
	}
	if !classified {
		return fmt.Errorf("path contains no switch")
	}
	return nil
}

// retagPrevious rewrites the rule emitted for the hop before position i so
// the packet arrives with the fresh tag.
func (g *generator) retagPrevious(p Plan, locs []topo.NodeID, i, oldTag, fresh int) error {
	// Find the previous switch hop.
	for j := i - 1; j >= 1; j-- {
		if g.t.Node(locs[j]).Kind != topo.Switch {
			continue
		}
		inLink, _ := g.t.FindLink(locs[j-1], locs[j])
		key := ruleKey{sw: locs[j], vlan: oldTag, in: inLink.ID}
		idx, ok := g.bound[key]
		if !ok {
			return fmt.Errorf("retag: no prior rule at %s", g.t.Node(locs[j]).Name)
		}
		rule := &g.out.Rules[idx]
		rule.Actions = append([]openflow.Action{openflow.SetVLAN{VLAN: fresh}}, rule.Actions...)
		return nil
	}
	return fmt.Errorf("retag: no prior switch hop")
}

// emitClassification installs the ingress rules mapping untagged packets
// of the statement onto the path tag.
func (g *generator) emitClassification(p Plan, sw topo.NodeID, in topo.LinkID, tag int, fwd openflow.Action, last bool) {
	actions := []openflow.Action{openflow.SetVLAN{VLAN: tag}, fwd}
	if last {
		// Single-switch path: tag would be stripped immediately; skip
		// tagging altogether.
		actions = []openflow.Action{fwd}
	}
	switch p.Classify {
	case ByDestination:
		ident, _ := g.ids.Of(p.DstHost)
		key := classKey{sw: sw, vlan: tag, sel: ident.MAC}
		if g.classBound[key] {
			return
		}
		g.classBound[key] = true
		g.out.Rules = append(g.out.Rules, openflow.Rule{
			Switch:   sw,
			Priority: 100 + p.Priority,
			Match:    openflow.Match{InPort: openflow.MatchAny, VLAN: packet.VLANNone, EthDst: ident.MAC},
			Actions:  actions,
		})
	default:
		cubes, err := pred.PositiveCubes(p.Predicate)
		exact := err != nil // expansion too large: match the full predicate in one rule
		if len(cubes) == 0 {
			cubes = [][]pred.Test{nil}
		}
		for _, cube := range cubes {
			cubePred := cubeToPred(cube)
			if exact {
				cubePred = p.Predicate
			}
			key := classKey{sw: sw, vlan: tag, sel: "p/" + pred.Format(cubePred)}
			if g.classBound[key] {
				continue
			}
			g.classBound[key] = true
			g.out.Rules = append(g.out.Rules, openflow.Rule{
				Switch:   sw,
				Priority: 100 + p.Priority,
				Match:    openflow.Match{InPort: in, VLAN: packet.VLANNone, Predicate: cubePred},
				Actions:  actions,
			})
		}
	}
}

func cubeToPred(cube []pred.Test) pred.Pred {
	ps := make([]pred.Pred, len(cube))
	for i, t := range cube {
		ps[i] = t
	}
	return pred.Conj(ps...)
}

// queueFor allocates (or reuses) a QoS queue on the given port with the
// statement's guaranteed rate.
func (g *generator) queueFor(sw topo.NodeID, port topo.LinkID, minBps float64) int {
	key := queueKey{sw: sw, port: port, minBps: minBps}
	if g.queueBound[key] {
		// Reuse: find the existing config.
		for _, q := range g.out.Queues {
			if q.Switch == sw && q.Port == port && q.MinBps == minBps {
				return q.Queue
			}
		}
	}
	g.queueBound[key] = true
	q := g.queueNext[port] + 1
	g.queueNext[port] = q
	g.out.Queues = append(g.out.Queues, QueueConfig{Switch: sw, Port: port, Queue: q, MinBps: minBps})
	return q
}

// CapApplies reports whether a statement cap emits a host-side tc
// command (finite and nonzero).
func CapApplies(maxBps float64) bool { return maxBps != 0 && !math.IsInf(maxBps, 1) }

// CapCommand renders the tc command enforcing a statement's bandwidth
// cap at its source host. It is shared between Generate and the
// incremental compiler's caps-only patch path so the two stay
// byte-identical.
func CapCommand(host topo.NodeID, id string, maxBps float64) HostCommand {
	return HostCommand{
		Host: host,
		Kind: "tc",
		Command: fmt.Sprintf("tc class add dev eth0 parent 1: classid 1:%s htb rate %.0fkbit ceil %.0fkbit",
			id, maxBps/1e3, maxBps/1e3),
	}
}

// emitHostConfig generates tc caps and iptables markers at the source host.
func (g *generator) emitHostConfig(p Plan) {
	if CapApplies(p.Alloc.Max) {
		g.out.TC = append(g.out.TC, CapCommand(p.SrcHost, p.ID, p.Alloc.Max))
	}
}

func sameActions(a, b []openflow.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
