package codegen

import (
	"math"
	"testing"

	"merlin/internal/logical"
	"merlin/internal/openflow"
	"merlin/internal/packet"
	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/regex"
	"merlin/internal/sinktree"
	"merlin/internal/topo"
)

// pairPred builds the (eth.src, eth.dst) predicate for two hosts.
func pairPred(t *testing.T, tp *topo.Topology, src, dst topo.NodeID) pred.Pred {
	t.Helper()
	ids := tp.Identities()
	si, _ := ids.Of(src)
	di, _ := ids.Of(dst)
	return pred.Conj(
		pred.Test{Field: "eth.src", Value: si.MAC},
		pred.Test{Field: "eth.dst", Value: di.MAC},
	)
}

func graphFor(t testing.TB, tp *topo.Topology, expr string, placement map[string][]string) *logical.Graph {
	t.Helper()
	e := regex.MustParse(expr)
	if placement != nil {
		e = regex.Substitute(e, placement)
	}
	g, err := logical.BuildMinimized(tp, e, logical.Alphabet(tp))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// inject sends a TCP packet between two hosts through the compiled rules.
func inject(t *testing.T, tp *topo.Topology, out *Output, src, dst topo.NodeID, dstPort uint16) openflow.Trace {
	t.Helper()
	net := openflow.NewNetwork(tp)
	net.Install(out.Rules)
	for _, mb := range tp.Middleboxes() {
		net.AddMiddleboxFunction(mb, openflow.Identity)
	}
	ids := tp.Identities()
	si, _ := ids.Of(src)
	di, _ := ids.Of(dst)
	pkt := packet.TCPPacket(si.MAC, di.MAC, si.IP, di.IP, 12345, dstPort, []byte("x"))
	return net.Inject(src, pkt)
}

func TestBestEffortTreeForwarding(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	g := graphFor(t, tp, ".*", nil)
	tree, err := sinktree.TreeTo(g, h2)
	if err != nil {
		t.Fatal(err)
	}
	plans := []Plan{{
		ID: "a", Predicate: pairPred(t, tp, h1, h2), Priority: 10,
		Alloc: policy.Unconstrained, Classify: ByDestination,
		SrcHost: h1, DstHost: h2, Tree: tree,
	}}
	out, err := Generate(tp, plans)
	if err != nil {
		t.Fatal(err)
	}
	tr := inject(t, tp, out, h1, h2, 80)
	if !tr.Delivered || tr.DeliveredTo != h2 {
		t.Fatalf("not delivered: %v (%v)", tr.Dropped, tr.HopNames(tp))
	}
	if tr.Final.VLAN != packet.VLANNone {
		t.Error("tag not stripped at egress")
	}
}

func TestGuaranteedPathForwardingAndQueues(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	g := graphFor(t, tp, ".*", nil)
	// Provision the path directly via shortest path (unit under test is
	// codegen, not the MIP).
	gg := graphFor(t, tp, "h1 .* h2", nil)
	steps, err := gg.DecodePath(gg.ShortestPath())
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	plans := []Plan{{
		ID: "gold", Predicate: pairPred(t, tp, h1, h2), Priority: 20,
		Alloc:   policy.Alloc{Min: 100 * topo.Mbps, Max: math.Inf(1)},
		SrcHost: h1, DstHost: h2, Path: steps,
	}}
	out, err := Generate(tp, plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Queues) != 3 { // one queue per switch hop (s0,s1,s2)
		t.Fatalf("queues = %d, want 3", len(out.Queues))
	}
	for _, q := range out.Queues {
		if q.MinBps != 100*topo.Mbps {
			t.Errorf("queue rate = %v", q.MinBps)
		}
	}
	tr := inject(t, tp, out, h1, h2, 80)
	if !tr.Delivered {
		t.Fatalf("not delivered: %v (%v)", tr.Dropped, tr.HopNames(tp))
	}
}

func TestMiddleboxWaypointForwarding(t *testing.T) {
	// Fig. 2: traffic h1→h2 must detour through m1; verify the emitted
	// rules actually bounce packets via the middlebox.
	tp := topo.Example(topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	g := graphFor(t, tp, ".* dpi .*", map[string][]string{"dpi": {"m1"}})
	tree, err := sinktree.TreeTo(g, h2)
	if err != nil {
		t.Fatal(err)
	}
	plans := []Plan{{
		ID: "w", Predicate: pairPred(t, tp, h1, h2), Priority: 10,
		Alloc: policy.Unconstrained, SrcHost: h1, DstHost: h2, Tree: tree,
	}}
	out, err := Generate(tp, plans)
	if err != nil {
		t.Fatal(err)
	}
	tr := inject(t, tp, out, h1, h2, 80)
	if !tr.Delivered {
		t.Fatalf("not delivered: %v (%v)", tr.Dropped, tr.HopNames(tp))
	}
	visited := false
	for _, n := range tr.HopNames(tp) {
		if n == "m1" {
			visited = true
		}
	}
	if !visited {
		t.Fatalf("packet skipped the middlebox: %v", tr.HopNames(tp))
	}
	if len(out.Click) == 0 {
		t.Error("no Click config emitted for the dpi placement")
	}
}

func TestClassificationPriorities(t *testing.T) {
	// Two statements: web traffic via middlebox, rest direct. A web
	// packet must take the detour, an ssh packet must not.
	tp := topo.Example(topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	pair := pairPred(t, tp, h1, h2)
	web := pred.Conj(pair, pred.Test{Field: "tcp.dst", Value: "80"})

	gWeb := graphFor(t, tp, ".* dpi .*", map[string][]string{"dpi": {"m1"}})
	treeWeb, err := sinktree.TreeTo(gWeb, h2)
	if err != nil {
		t.Fatal(err)
	}
	gAll := graphFor(t, tp, ".*", nil)
	treeAll, err := sinktree.TreeTo(gAll, h2)
	if err != nil {
		t.Fatal(err)
	}
	plans := []Plan{
		{ID: "web", Predicate: web, Priority: 20, Alloc: policy.Unconstrained,
			SrcHost: h1, DstHost: h2, Tree: treeWeb},
		{ID: "rest", Predicate: pair, Priority: 10, Alloc: policy.Unconstrained,
			SrcHost: h1, DstHost: h2, Tree: treeAll},
	}
	out, err := Generate(tp, plans)
	if err != nil {
		t.Fatal(err)
	}
	webTrace := inject(t, tp, out, h1, h2, 80)
	sshTrace := inject(t, tp, out, h1, h2, 22)
	if !webTrace.Delivered || !sshTrace.Delivered {
		t.Fatalf("delivery failed: web=%v ssh=%v", webTrace.Dropped, sshTrace.Dropped)
	}
	sawMbox := func(tr openflow.Trace) bool {
		for _, n := range tr.HopNames(tp) {
			if n == "m1" {
				return true
			}
		}
		return false
	}
	if !sawMbox(webTrace) {
		t.Errorf("web packet skipped dpi: %v", webTrace.HopNames(tp))
	}
	if sawMbox(sshTrace) {
		t.Errorf("ssh packet detoured through dpi: %v", sshTrace.HopNames(tp))
	}
}

func TestDropPlan(t *testing.T) {
	tp := topo.Linear(2, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	plans := []Plan{{
		ID: "blocked", Predicate: pairPred(t, tp, h1, h2), Priority: 30,
		Alloc: policy.Unconstrained, SrcHost: h1, DstHost: h2, Drop: true,
	}}
	out, err := Generate(tp, plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.IPTables) != 1 {
		t.Fatalf("iptables = %d, want 1", len(out.IPTables))
	}
	tr := inject(t, tp, out, h1, h2, 80)
	if tr.Delivered {
		t.Fatal("dropped traffic was delivered")
	}
}

func TestTCForCaps(t *testing.T) {
	tp := topo.Linear(2, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	g := graphFor(t, tp, ".*", nil)
	tree, err := sinktree.TreeTo(g, h2)
	if err != nil {
		t.Fatal(err)
	}
	plans := []Plan{{
		ID: "capped", Predicate: pairPred(t, tp, h1, h2), Priority: 10,
		Alloc:   policy.Alloc{Min: 0, Max: 50 * topo.MBps},
		SrcHost: h1, DstHost: h2, Tree: tree,
	}}
	out, err := Generate(tp, plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.TC) != 1 {
		t.Fatalf("tc commands = %d, want 1", len(out.TC))
	}
	if out.TC[0].Host != h1 {
		t.Error("cap installed at wrong host")
	}
}

func TestSharedTreeRulesAreDeduplicated(t *testing.T) {
	// All-pairs to one destination: rules toward the shared destination
	// must be shared, so total rules grow sub-linearly in sources.
	tp := topo.Star(4, 2, topo.Gbps) // 8 hosts
	hosts := tp.Hosts()
	dst := hosts[0]
	g := graphFor(t, tp, ".*", nil)
	tree, err := sinktree.TreeTo(g, dst)
	if err != nil {
		t.Fatal(err)
	}
	var plans []Plan
	for _, src := range hosts[1:] {
		plans = append(plans, Plan{
			ID: "to0from" + tp.Node(src).Name, Predicate: pairPred(t, tp, src, dst),
			Priority: 10, Alloc: policy.Unconstrained, Classify: ByDestination,
			SrcHost: src, DstHost: dst, Tree: tree,
		})
	}
	out, err := Generate(tp, plans)
	if err != nil {
		t.Fatal(err)
	}
	// ByDestination classification: one rule per ingress switch (4 at
	// most) plus shared forwarding rules — far fewer than 7 × path-length.
	if got := len(out.Rules); got > 15 {
		t.Fatalf("rules = %d, want heavy sharing (<=15)", got)
	}
	// Every source still reaches dst.
	for _, src := range hosts[1:] {
		tr := inject(t, tp, out, src, dst, 80)
		if !tr.Delivered {
			t.Fatalf("%s -> dst failed: %v", tp.Node(src).Name, tr.Dropped)
		}
	}
}

func TestAllPairsFatTreeEndToEnd(t *testing.T) {
	// Compile all-pairs connectivity on a k=4 fat tree and verify a
	// sample of host pairs deliver.
	tp := topo.FatTree(4, topo.Gbps)
	hosts := tp.Hosts()
	g := graphFor(t, tp, ".*", nil)
	trees, _, err := sinktree.BuildTrees(g, hosts, false)
	if err != nil {
		t.Fatal(err)
	}
	var plans []Plan
	prio := len(hosts) * len(hosts)
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			plans = append(plans, Plan{
				ID:        tp.Node(src).Name + "-" + tp.Node(dst).Name,
				Predicate: pairPred(t, tp, src, dst),
				Priority:  prio, Alloc: policy.Unconstrained,
				Classify: ByDestination,
				SrcHost:  src, DstHost: dst, Tree: trees[dst],
			})
			prio--
		}
	}
	out, err := Generate(tp, plans)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(hosts); i++ {
		src := hosts[i]
		dst := hosts[(i+5)%len(hosts)]
		if src == dst {
			continue
		}
		tr := inject(t, tp, out, src, dst, 80)
		if !tr.Delivered || tr.DeliveredTo != dst {
			t.Fatalf("%s -> %s failed: %v (%v)", tp.Node(src).Name, tp.Node(dst).Name,
				tr.Dropped, tr.HopNames(tp))
		}
	}
	c := out.Counts()
	if c.OpenFlow == 0 || c.Total() != c.OpenFlow {
		t.Fatalf("counts = %+v", c)
	}
}

func TestCountsTotals(t *testing.T) {
	c := Counts{OpenFlow: 3, Queues: 2, TC: 1, IPTables: 1, Click: 1}
	if c.Total() != 8 {
		t.Fatalf("Total = %d", c.Total())
	}
}
