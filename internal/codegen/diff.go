package codegen

import (
	"fmt"
	"sort"

	"merlin/internal/interp"
	"merlin/internal/openflow"
	"merlin/internal/pred"
	"merlin/internal/topo"
)

// Diff is the device-level delta between two compiled outputs: the rules
// and configurations a controller must install and remove to move the
// dataplane from one compiled state to the next. It is what the
// incremental compiler returns for a policy update, so a negotiation tick
// touches only the devices it actually changed instead of reinstalling
// the full configuration (§4's dynamic-adaptation story).
type Diff struct {
	InstallRules []openflow.Rule
	RemoveRules  []openflow.Rule

	InstallQueues []QueueConfig
	RemoveQueues  []QueueConfig

	InstallTC []HostCommand
	RemoveTC  []HostCommand

	InstallIPTables []HostCommand
	RemoveIPTables  []HostCommand

	InstallClick []ClickConfig
	RemoveClick  []ClickConfig

	// Program deltas (the §3.4 end-host interpreter backend) use replace
	// semantics: a host whose program changed appears in both lists.
	// They are populated by DiffPrograms — programs live on the compile
	// Result, not the Output, so DiffOutputs cannot see them.
	InstallPrograms []ProgramChange
	RemovePrograms  []ProgramChange

	// Backends holds the native-form deltas of non-builtin targets
	// (e.g. "p4" table entries), keyed by backend name — each computed
	// by that backend's Diff from its own artifacts. Built-in backends
	// use the typed sections above instead.
	Backends map[string]ArtifactDiff
}

// ProgramChange is one host's end-host interpreter program to install or
// remove.
type ProgramChange struct {
	Host    topo.NodeID
	Program *interp.Program
}

// Empty reports whether the diff changes nothing on any backend.
func (d *Diff) Empty() bool {
	for _, bd := range d.Backends {
		if !bd.Empty() {
			return false
		}
	}
	return len(d.InstallRules) == 0 && len(d.RemoveRules) == 0 &&
		len(d.InstallQueues) == 0 && len(d.RemoveQueues) == 0 &&
		len(d.InstallTC) == 0 && len(d.RemoveTC) == 0 &&
		len(d.InstallIPTables) == 0 && len(d.RemoveIPTables) == 0 &&
		len(d.InstallClick) == 0 && len(d.RemoveClick) == 0 &&
		len(d.InstallPrograms) == 0 && len(d.RemovePrograms) == 0
}

// Counts summarizes the diff as install/remove instruction totals.
func (d *Diff) Counts() (install, remove Counts) {
	install = Counts{
		OpenFlow: len(d.InstallRules),
		Queues:   len(d.InstallQueues),
		TC:       len(d.InstallTC),
		IPTables: len(d.InstallIPTables),
		Click:    len(d.InstallClick),
	}
	remove = Counts{
		OpenFlow: len(d.RemoveRules),
		Queues:   len(d.RemoveQueues),
		TC:       len(d.RemoveTC),
		IPTables: len(d.RemoveIPTables),
		Click:    len(d.RemoveClick),
	}
	return install, remove
}

// Devices lists the distinct nodes the diff touches, in ascending order.
func (d *Diff) Devices() []topo.NodeID {
	seen := map[topo.NodeID]bool{}
	add := func(n topo.NodeID) { seen[n] = true }
	for _, r := range d.InstallRules {
		add(r.Switch)
	}
	for _, r := range d.RemoveRules {
		add(r.Switch)
	}
	for _, q := range d.InstallQueues {
		add(q.Switch)
	}
	for _, q := range d.RemoveQueues {
		add(q.Switch)
	}
	for _, hc := range d.InstallTC {
		add(hc.Host)
	}
	for _, hc := range d.RemoveTC {
		add(hc.Host)
	}
	for _, hc := range d.InstallIPTables {
		add(hc.Host)
	}
	for _, hc := range d.RemoveIPTables {
		add(hc.Host)
	}
	for _, c := range d.InstallClick {
		add(c.Node)
	}
	for _, c := range d.RemoveClick {
		add(c.Node)
	}
	for _, p := range d.InstallPrograms {
		add(p.Host)
	}
	for _, p := range d.RemovePrograms {
		add(p.Host)
	}
	for _, bd := range d.Backends {
		for _, e := range bd.Install {
			add(e.Device)
		}
		for _, e := range bd.Remove {
			add(e.Device)
		}
	}
	out := make([]topo.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DiffOutputs computes the delta from old to new. Entries are compared as
// multisets keyed by their rendered form, so reordered-but-identical
// configuration diffs as empty. Either argument may be nil (treated as an
// empty output), making the first compile's diff "install everything".
func DiffOutputs(old, new *Output) *Diff {
	var empty Output
	if old == nil {
		old = &empty
	}
	if new == nil {
		new = &empty
	}
	d := &Diff{}
	d.InstallRules, d.RemoveRules = diffEntries(new.Rules, old.Rules,
		func(r openflow.Rule) string { return r.String() })
	d.InstallQueues, d.RemoveQueues = diffEntries(new.Queues, old.Queues,
		func(q QueueConfig) string {
			return fmt.Sprintf("%d|%d|%d|%g", q.Switch, q.Port, q.Queue, q.MinBps)
		})
	hostKey := func(hc HostCommand) string {
		return fmt.Sprintf("%d|%s|%s", hc.Host, hc.Kind, hc.Command)
	}
	d.InstallTC, d.RemoveTC = diffEntries(new.TC, old.TC, hostKey)
	d.InstallIPTables, d.RemoveIPTables = diffEntries(new.IPTables, old.IPTables, hostKey)
	d.InstallClick, d.RemoveClick = diffEntries(new.Click, old.Click,
		func(c ClickConfig) string { return fmt.Sprintf("%d|%s|%s", c.Node, c.Fn, c.Config) })
	return d
}

// DiffPrograms adds end-host interpreter program deltas: a host whose
// program content changed gets its old program removed and its new one
// installed; hosts gaining or losing a program get one-sided entries.
// Results are in ascending host order.
func (d *Diff) DiffPrograms(old, new map[topo.NodeID]*interp.Program) {
	hosts := map[topo.NodeID]bool{}
	for h := range old {
		hosts[h] = true
	}
	for h := range new {
		hosts[h] = true
	}
	ordered := make([]topo.NodeID, 0, len(hosts))
	for h := range hosts {
		ordered = append(ordered, h)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, h := range ordered {
		op, np := old[h], new[h]
		if op != nil && np != nil && programKey(op) == programKey(np) {
			continue
		}
		if op != nil {
			d.RemovePrograms = append(d.RemovePrograms, ProgramChange{Host: h, Program: op})
		}
		if np != nil {
			d.InstallPrograms = append(d.InstallPrograms, ProgramChange{Host: h, Program: np})
		}
	}
}

// programKey renders a program's semantically relevant content.
func programKey(p *interp.Program) string {
	out := p.Name
	for _, cl := range p.Clauses {
		out += fmt.Sprintf("|%d:%g:%s", cl.Op, cl.RateBps, pred.Format(cl.Pred))
	}
	return out
}

// diffEntries returns the multiset differences new−old (to install) and
// old−new (to remove), each in its slice's original order.
func diffEntries[T any](new, old []T, key func(T) string) (install, remove []T) {
	// The incremental compiler's patched outputs share untouched slices
	// with their predecessor; aliased sections diff as empty for free.
	if len(new) == len(old) && (len(new) == 0 || &new[0] == &old[0]) {
		return nil, nil
	}
	oldCount := make(map[string]int, len(old))
	for _, e := range old {
		oldCount[key(e)]++
	}
	for _, e := range new {
		k := key(e)
		if oldCount[k] > 0 {
			oldCount[k]--
			continue
		}
		install = append(install, e)
	}
	// The residual counts are exactly the old−new multiset, so the
	// removals fall out of one more pass over old.
	for _, e := range old {
		k := key(e)
		if oldCount[k] > 0 {
			oldCount[k]--
			remove = append(remove, e)
		}
	}
	return install, remove
}
