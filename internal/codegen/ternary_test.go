package codegen

import (
	"errors"
	"strings"
	"testing"

	"merlin/internal/pred"
	"merlin/internal/ternary"
	"merlin/internal/topo"
)

// fakeV2 is a TableModeler backend for registry tests.
type fakeV2 struct{ name string }

func (f fakeV2) Name() string { return f.name }
func (f fakeV2) Emit(t *topo.Topology, prog *Program) (Artifact, error) {
	return nil, nil
}
func (f fakeV2) Diff(old, new Artifact) ArtifactDiff { return ArtifactDiff{} }
func (f fakeV2) TableModel(class topo.Kind) (TableModel, bool) {
	if class != topo.Switch {
		return TableModel{}, false
	}
	return TableModel{MaxEntries: 100, Width: 296, SupportsRange: false}, true
}

func TestBackendModelPrecedence(t *testing.T) {
	// A plain registration exposes the backend's own TableModeler.
	Register(fakeV2{name: "fake-v2-own"})
	m, ok := BackendModel("fake-v2-own", topo.Switch)
	if !ok || m.MaxEntries != 100 {
		t.Fatalf("own model = %+v, %v", m, ok)
	}
	if _, ok := BackendModel("fake-v2-own", topo.Host); ok {
		t.Fatal("host class must be unconstrained")
	}

	// Registration options win over the backend's own declaration, and
	// supply models for classes the backend declares none for.
	RegisterWith(fakeV2{name: "fake-v2-opts"}, BackendOptions{
		Models: map[topo.Kind]TableModel{
			topo.Switch: {MaxEntries: 7, Width: 296, SupportsRange: true},
			topo.Host:   {MaxEntries: 3},
		},
		DeviceBudgets: map[string]int{"core0": 2},
	})
	m, ok = BackendModel("fake-v2-opts", topo.Switch)
	if !ok || m.MaxEntries != 7 || !m.SupportsRange {
		t.Fatalf("registration model did not win: %+v, %v", m, ok)
	}
	if m, ok = BackendModel("fake-v2-opts", topo.Host); !ok || m.MaxEntries != 3 {
		t.Fatalf("options-supplied host model = %+v, %v", m, ok)
	}
	if b, ok := DeviceBudget("fake-v2-opts", "core0"); !ok || b != 2 {
		t.Fatalf("device budget = %d, %v", b, ok)
	}
	if _, ok := DeviceBudget("fake-v2-opts", "core1"); ok {
		t.Fatal("unlisted device must have no budget override")
	}

	// Unregistered and model-free backends are unconstrained.
	if _, ok := BackendModel("no-such-backend", topo.Switch); ok {
		t.Fatal("unregistered backend returned a model")
	}
	if _, ok := BackendModel(TargetOpenFlow, topo.Switch); ok {
		t.Fatal("v1 builtin must declare no table model")
	}
}

func TestExpandProgram(t *testing.T) {
	tp := topo.Linear(2, topo.Gbps)
	s1 := tp.MustLookup("s1")
	prog := &Program{Rules: []Rule{
		// No predicate: one match-all entry.
		{Device: s1, Priority: 500, Match: Match{InPort: AnyPort, Tag: 1}, Ops: []Op{{Kind: OpForward, Port: 2}}, Stmt: "x"},
		// MAC fold: predicate row gains exact eth.src/eth.dst constraints.
		{Device: s1, Priority: 180, Match: Match{
			InPort: AnyPort, Tag: TagNone,
			SrcMAC: "00:00:00:00:00:01", DstMAC: "00:00:00:00:00:02",
			Pred: pred.Test{Field: "tcp.dst", Value: "80"},
		}, Ops: []Op{{Kind: OpSetTag, Tag: 1}, {Kind: OpForward, Port: 1}}, Stmt: "y"},
		// Exact duplicate of the first rule: must collapse.
		{Device: s1, Priority: 500, Match: Match{InPort: AnyPort, Tag: 1}, Ops: []Op{{Kind: OpForward, Port: 2}}, Stmt: "x"},
		// Predicate contradicting the folded MAC: all rows dropped.
		{Device: s1, Priority: 170, Match: Match{
			InPort: AnyPort, Tag: TagNone,
			SrcMAC: "00:00:00:00:00:01",
			Pred:   pred.Test{Field: "eth.src", Value: "00:00:00:00:00:09"},
		}, Ops: []Op{{Kind: OpDrop}}, Stmt: "z"},
	}}
	tables, err := ExpandProgram(tp, prog, ternary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tables.Total != 2 || tables.PerDevice[s1] != 2 {
		t.Fatalf("Total=%d PerDevice=%v, want 2 entries", tables.Total, tables.PerDevice)
	}
	if len(tables.Entries[0].Match) != 0 {
		t.Errorf("match-all entry has constraints: %v", tables.Entries[0].Match)
	}
	e := tables.Entries[1]
	if got := e.Match.String(); got != "eth.src=0x000000000001/0xffffffffffff,eth.dst=0x000000000002/0xffffffffffff,tcp.dst=0x0050/0xffff" {
		t.Errorf("folded row = %q", got)
	}
	if e.Ops != "set_tag:1,forward:1" {
		t.Errorf("ops = %q", e.Ops)
	}
}

func TestExpandProgramRangeMultiplies(t *testing.T) {
	tp := topo.Linear(2, topo.Gbps)
	s1 := tp.MustLookup("s1")
	prog := &Program{Rules: []Rule{{
		Device: s1, Priority: 120,
		Match: Match{InPort: AnyPort, Tag: TagNone, Pred: pred.Test{Field: "tcp.dst", Value: "3-7"}},
		Ops:   []Op{{Kind: OpForward, Port: 1}}, Stmt: "r",
	}}}
	noRange, err := ExpandProgram(tp, prog, ternary.Options{})
	if err != nil || noRange.Total != 2 {
		t.Fatalf("prefix expansion: total=%d err=%v, want 2", noRange.Total, err)
	}
	native, err := ExpandProgram(tp, prog, ternary.Options{SupportsRange: true})
	if err != nil || native.Total != 1 {
		t.Fatalf("native expansion: total=%d err=%v, want 1", native.Total, err)
	}
	// The estimator agrees with both without materializing.
	for _, c := range []struct {
		opt  ternary.Options
		want int
	}{{ternary.Options{}, 2}, {ternary.Options{SupportsRange: true}, 1}} {
		n, err := EstimateRuleEntries(prog.Rules[0], c.opt, nil)
		if err != nil || n != c.want {
			t.Errorf("EstimateRuleEntries(%+v) = %d, %v, want %d", c.opt, n, err, c.want)
		}
	}
	if n, err := EstimateRuleEntries(Rule{Match: Match{}}, ternary.Options{}, nil); err != nil || n != 1 {
		t.Errorf("predicate-free rule estimate = %d, %v", n, err)
	}
}

// TestExpandProgramResolvesIdentities: policies may name hosts directly
// (eth.src = h1) — the compiler resolves identities for endpoint
// extraction, and the expansion must give the same reading instead of
// failing to encode the name. IP fields resolve to the host's IP, and a
// cross-family address (a MAC on ip.src) follows the field's family.
func TestExpandProgramResolvesIdentities(t *testing.T) {
	tp := topo.Linear(2, topo.Gbps)
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	s1 := tp.MustLookup("s1")
	rule := func(p pred.Pred) *Program {
		return &Program{Rules: []Rule{{
			Device: s1, Priority: 100,
			Match: Match{InPort: AnyPort, Tag: TagNone, Pred: p},
			Ops:   []Op{{Kind: OpForward, Port: 1}}, Stmt: "r",
		}}}
	}
	byName, err := ExpandProgram(tp, rule(pred.Test{Field: "eth.src", Value: "h1"}), ternary.Options{})
	if err != nil {
		t.Fatalf("host-name identity: %v", err)
	}
	byMAC, err := ExpandProgram(tp, rule(pred.Test{Field: "eth.src", Value: h1.MAC}), ternary.Options{})
	if err != nil {
		t.Fatalf("MAC identity: %v", err)
	}
	if a, b := byName.Entries[0].Match.String(), byMAC.Entries[0].Match.String(); a != b {
		t.Errorf("name expands to %q, MAC to %q", a, b)
	}
	byIP, err := ExpandProgram(tp, rule(pred.Test{Field: "ip.src", Value: h1.MAC}), ternary.Options{})
	if err != nil {
		t.Fatalf("cross-family identity: %v", err)
	}
	viaIP, err := ExpandProgram(tp, rule(pred.Test{Field: "ip.src", Value: h1.IP}), ternary.Options{})
	if err != nil {
		t.Fatalf("IP identity: %v", err)
	}
	if a, b := byIP.Entries[0].Match.String(), viaIP.Entries[0].Match.String(); a != b {
		t.Errorf("MAC-on-ip.src expands to %q, IP to %q", a, b)
	}
	// Estimation resolves the same way; without a table the name is
	// unencodable.
	if n, err := EstimateRuleEntries(rule(pred.Test{Field: "eth.src", Value: "h1"}).Rules[0], ternary.Options{}, ids); err != nil || n != 1 {
		t.Errorf("resolved estimate = %d, %v, want 1", n, err)
	}
	if _, err := EstimateRuleEntries(rule(pred.Test{Field: "eth.src", Value: "h1"}).Rules[0], ternary.Options{}, nil); err == nil {
		t.Error("unresolved host name estimated without error")
	}
	// A value no host owns still fails with the encoder's error.
	if _, err := ExpandProgram(tp, rule(pred.Test{Field: "eth.src", Value: "nobody"}), ternary.Options{}); err == nil {
		t.Error("unknown identity expanded without error")
	}
}

func TestCheckBudgets(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	s1, s2 := tp.MustLookup("s1"), tp.MustLookup("s2")
	tables := &TernaryTables{PerDevice: map[topo.NodeID]int{s1: 5, s2: 3}}
	if err := CheckBudgets(tp, tables, map[topo.NodeID]int{s1: 5, s2: 3}, "tcam"); err != nil {
		t.Fatalf("at-budget tables rejected: %v", err)
	}
	err := CheckBudgets(tp, tables, map[topo.NodeID]int{s1: 4, s2: 2}, "tcam")
	var of *TableOverflowError
	if !errors.As(err, &of) {
		t.Fatalf("expected *TableOverflowError, got %v", err)
	}
	if of.Target != "tcam" || len(of.Overflows) != 2 {
		t.Fatalf("overflow = %+v", of)
	}
	// Sorted by device, names resolved.
	if of.Overflows[0].Device > of.Overflows[1].Device {
		t.Error("overflows not sorted by device")
	}
	for _, o := range of.Overflows {
		if o.Name == "" || o.Entries <= o.Budget {
			t.Errorf("bad overflow record: %+v", o)
		}
	}
	if msg := of.Error(); !strings.Contains(msg, "tcam") || !strings.Contains(msg, "s1 needs 5 entries (budget 4)") {
		t.Errorf("error text = %q", msg)
	}
}
