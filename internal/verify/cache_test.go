package verify

import (
	"strings"
	"testing"

	"merlin/internal/policy"
	"merlin/internal/pred"
)

func TestCacheUnchangedChildNeverReverified(t *testing.T) {
	c := NewCache()
	orig := mustPolicy(t, originalSrc)
	ref := mustPolicy(t, refinedSrc)
	rep1, err := c.CheckRefinement(orig, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.OK() {
		t.Fatalf("valid refinement rejected: %v", rep1.Violations)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("first check stats = %+v", st)
	}
	// Re-parsing produces structurally equal but unshared policies: the
	// fingerprint, not pointer identity, must drive the hit.
	rep2, err := c.CheckRefinement(mustPolicy(t, originalSrc), mustPolicy(t, refinedSrc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2 != rep1 {
		t.Fatal("policy-level hit should return the memoized report")
	}
	st = c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("repeat check stats = %+v", st)
	}
	// Minimize is part of the verdict key: same policies, different
	// options, fresh check.
	if _, err := c.CheckRefinement(orig, ref, Options{Minimize: true}); err != nil {
		t.Fatal(err)
	}
	if st = c.Stats(); st.Misses != 2 {
		t.Fatalf("minimize variant should miss: %+v", st)
	}
}

func TestCacheDeltaProposalReverifiesOnlyChangedPairs(t *testing.T) {
	c := NewCache()
	orig, ref := buildPartition(t, 20)
	rep, err := c.CheckRefinement(orig, ref, Options{})
	if err != nil || !rep.OK() {
		t.Fatalf("%v %v", err, rep)
	}
	cold := rep.PredicateChecks + rep.PathChecks

	// The delta: one child statement's predicate moves to a new port.
	// Every untouched pair must come from the pair memo; only the pairs
	// involving the changed statement (and the policy-wide coverage
	// checks, which are not memoized) may run.
	changed := &policy.Policy{Statements: append([]policy.Statement(nil), ref.Statements...), Formula: ref.Formula}
	changed.Statements[3] = policy.Statement{
		ID: changed.Statements[3].ID,
		Predicate: pred.Conj(
			pred.Test{Field: "ip.proto", Value: "6"},
			pred.Test{Field: "tcp.dst", Value: "4"},
			pred.Test{Field: "ip.tos", Value: "0"},
		),
		Path: changed.Statements[3].Path,
	}
	rep2, err := c.CheckRefinement(orig, changed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm := rep2.PredicateChecks + rep2.PathChecks
	if warm >= cold/2 {
		t.Fatalf("delta proposal re-ran %d of %d pairwise checks", warm, cold)
	}
	if st := c.Stats(); st.PairHits == 0 {
		t.Fatalf("no pair hits recorded: %+v", st)
	}
}

func TestCacheParentRedelegationInvalidates(t *testing.T) {
	c := NewCache()
	ref := mustPolicy(t, refinedSrc)
	rep, err := c.CheckRefinement(mustPolicy(t, originalSrc), ref, Options{})
	if err != nil || !rep.OK() {
		t.Fatalf("%v %v", err, rep)
	}
	// The parent re-delegates with a smaller budget: its fingerprint
	// changes, so the memoized OK verdict is unreachable and the child is
	// re-verified — and now rejected.
	shrunk := strings.Replace(originalSrc, "100MB/s", "60MB/s", 1)
	rep2, err := c.CheckRefinement(mustPolicy(t, shrunk), ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK() {
		t.Fatal("stale verdict served after parent re-delegation")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Reset drops everything: the original pair misses again.
	c.Reset()
	if _, err := c.CheckRefinement(mustPolicy(t, originalSrc), ref, Options{}); err != nil {
		t.Fatal(err)
	}
	if st = c.Stats(); st.Misses != 3 {
		t.Fatalf("post-Reset stats = %+v", st)
	}
}

func TestCacheCustomSplitBypasses(t *testing.T) {
	c := NewCache()
	orig := mustPolicy(t, originalSrc)
	ref := mustPolicy(t, refinedSrc)
	opts := Options{Split: policy.WeightedSplit(map[string]float64{"x": 1})}
	for i := 0; i < 2; i++ {
		rep, err := c.CheckRefinement(orig, ref, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.PredicateChecks == 0 {
			t.Fatal("custom-split check served from cache")
		}
	}
	if st := c.Stats(); st.Hits != 0 && st.Misses != 0 {
		t.Fatalf("custom split touched the cache: %+v", st)
	}
}

// chainLevel refines every statement of the previous level by splitting
// it on a fresh header field value, halving each cap.
func chainLevel(parent *policy.Policy, level int) *policy.Policy {
	out := &policy.Policy{}
	var terms []policy.Formula
	// One header field per level: values of the same field are mutually
	// exclusive, so reusing a field would make deeper splits empty.
	fields := []pred.Test{
		{Field: "ip.tos", Value: "0"},
		{Field: "tcp.src", Value: "1"},
		{Field: "tcp.dst", Value: "2"},
		{Field: "ip.src", Value: "10.0.0.3"},
		{Field: "ip.dst", Value: "10.0.0.4"},
	}
	for _, s := range parent.Statements {
		split := fields[(level-1)%len(fields)]
		lo := policy.Statement{
			ID:        s.ID + "l",
			Predicate: pred.Conj(s.Predicate, split),
			Path:      s.Path,
		}
		hi := policy.Statement{
			ID:        s.ID + "h",
			Predicate: pred.Conj(s.Predicate, pred.Negate(split)),
			Path:      s.Path,
		}
		out.Statements = append(out.Statements, lo, hi)
	}
	allocs, _ := policy.Localize(parent.Formula, nil)
	for _, s := range parent.Statements {
		half := allocs[s.ID].Max / 2
		terms = append(terms,
			policy.Max{Expr: policy.BandExpr{IDs: []string{s.ID + "l"}}, Rate: half},
			policy.Max{Expr: policy.BandExpr{IDs: []string{s.ID + "h"}}, Rate: half})
	}
	out.Formula = policy.ConjFormula(terms...)
	return out
}

// TestDeepDelegationChain checks a ≥5-level refinement chain: each level
// verifies against its immediate parent, and re-walking the chain is all
// cache hits.
func TestDeepDelegationChain(t *testing.T) {
	c := NewCache()
	root := mustPolicy(t, `[ x : ip.proto = 6 -> .* ], max(x, 128MB/s)`)
	chain := []*policy.Policy{root}
	for level := 1; level <= 5; level++ {
		chain = append(chain, chainLevel(chain[level-1], level))
	}
	if len(chain[5].Statements) != 32 {
		t.Fatalf("leaf statements = %d", len(chain[5].Statements))
	}
	for i := 1; i < len(chain); i++ {
		rep, err := c.CheckRefinement(chain[i-1], chain[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("level %d rejected: %v", i, rep.Violations[0])
		}
	}
	st := c.Stats()
	if st.Misses != 5 {
		t.Fatalf("first walk stats = %+v", st)
	}
	// The whole chain re-verifies for free — the periodic re-validation
	// a negotiator hierarchy runs after any doubt.
	for i := 1; i < len(chain); i++ {
		if _, err := c.CheckRefinement(chain[i-1], chain[i], Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if st = c.Stats(); st.Hits != 5 || st.Misses != 5 {
		t.Fatalf("second walk stats = %+v", st)
	}
	// A leaf-level over-allocation still fails against its parent.
	bad := &policy.Policy{Statements: chain[5].Statements, Formula: policy.ConjFormula(
		policy.Max{Expr: policy.BandExpr{IDs: []string{chain[5].Statements[0].ID}}, Rate: 256 * 8e6},
	)}
	rep, err := c.CheckRefinement(chain[4], bad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("leaf over-allocation accepted")
	}
}

// TestSiblingScopeOverlapRejected pins down the delegation-tree variant:
// a sibling refining traffic already delegated to another sibling's scope
// is caught as a coverage escape against its own delegation.
func TestSiblingScopeOverlapRejected(t *testing.T) {
	pol := mustPolicy(t, `
[ a : tcp.dst = 80 -> .*
  b : tcp.dst = 22 -> .* ],
max(a, 10MB/s) and max(b, 10MB/s)
`)
	scopeA := pred.Test{Field: "ip.src", Value: "10.0.0.1"}
	scopeB := pred.Test{Field: "ip.src", Value: "10.0.0.2"}
	subA, err := Delegate(pol, scopeA)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := Delegate(pol, scopeB)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	// Tenant B proposes a policy that also classifies tenant A's sources:
	// valid against nothing — its own delegation rejects the overlap.
	greedy := &policy.Policy{
		Statements: append(append([]policy.Statement{}, subB.Statements...), subA.Statements[0]),
		Formula:    subB.Formula,
	}
	rep, err := c.CheckRefinement(subB, greedy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("sibling scope overlap accepted")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "coverage" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected coverage violation, got %v", rep.Violations)
	}
	// Each sibling's own delegation still verifies (identity refinement).
	for _, sub := range []*policy.Policy{subA, subB} {
		rep, err := c.CheckRefinement(sub, sub, Options{})
		if err != nil || !rep.OK() {
			t.Fatalf("identity refinement rejected: %v %v", err, rep)
		}
	}
}

func TestPolicyFingerprintSensitivity(t *testing.T) {
	base := mustPolicy(t, originalSrc)
	same := mustPolicy(t, originalSrc)
	if PolicyFingerprint(base) != PolicyFingerprint(same) {
		t.Fatal("structurally equal policies fingerprint differently")
	}
	for name, src := range map[string]string{
		"formula":   strings.Replace(originalSrc, "100MB/s", "99MB/s", 1),
		"predicate": strings.Replace(originalSrc, "192.168.1.2", "192.168.1.3", 1),
		"path":      strings.Replace(originalSrc, "-> .*", "-> .* log .*", 1),
		"id": strings.Replace(strings.Replace(originalSrc,
			"x :", "y :", 1), "max(x,", "max(y,", 1),
	} {
		if PolicyFingerprint(base) == PolicyFingerprint(mustPolicy(t, src)) {
			t.Fatalf("%s change not reflected in fingerprint", name)
		}
	}
}

func BenchmarkVerifyPartitionCached(b *testing.B) {
	orig, ref := buildPartition(b, 50)
	c := NewCache()
	if _, err := c.CheckRefinement(orig, ref, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := c.CheckRefinement(orig, ref, Options{})
		if err != nil || !rep.OK() {
			b.Fatalf("%v %v", err, rep.Violations)
		}
	}
}
