// Package verify implements negotiator policy verification (§4.2): a
// refined (tenant-modified) policy is valid when its predicates totally
// partition the original's, every refined path language is included in the
// original's, and the bandwidth constraints of the refinement imply the
// original's. It also implements delegation (§5): projecting a policy onto
// a tenant's scope by intersecting predicates.
package verify

import (
	"fmt"
	"math"

	"merlin/internal/policy"
	"merlin/internal/pred"
)

// Options tune verification.
type Options struct {
	// Minimize enables Hopcroft minimization inside the language-inclusion
	// checks (the ablation knob for the Fig. 9 middle panel).
	Minimize bool
	// Split overrides the localization used for the bandwidth comparison.
	Split policy.SplitFunc
}

// Violation describes one failed check.
type Violation struct {
	// Kind is "coverage", "path", or "bandwidth".
	Kind string
	// Original and Refined name the statements involved ("" when the
	// check is policy-wide).
	Original, Refined string
	// Detail is human-readable; Witness, when present, is a path in the
	// refined language the original forbids.
	Detail  string
	Witness []string
}

func (v Violation) Error() string {
	s := fmt.Sprintf("verify: %s violation", v.Kind)
	if v.Original != "" {
		s += " against statement " + v.Original
	}
	if v.Refined != "" {
		s += " by statement " + v.Refined
	}
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	return s
}

// Report is the outcome of a refinement check.
type Report struct {
	Violations []Violation
	// PredicateChecks, PathChecks, BandwidthChecks count the decision-
	// procedure invocations (the Fig. 9 cost drivers).
	PredicateChecks, PathChecks, BandwidthChecks int
}

// OK reports whether the refinement is valid.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns the first violation as an error, or nil.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return r.Violations[0]
}

// CheckRefinement verifies that refined is a valid refinement of original:
// only more restrictive, never more permissive (§4.2).
func CheckRefinement(original, refined *policy.Policy, opts Options) (*Report, error) {
	return checkRefinement(original, refined, opts, nil)
}

// checkRefinement is CheckRefinement with an optional pair-level memo (a
// nil memo runs every decision procedure directly). The Report's counters
// record actual decision-procedure invocations, so memo hits do not
// inflate them — that is the observable contract the incremental-
// verification tests pin down.
func checkRefinement(original, refined *policy.Policy, opts Options, m *cacheMemo) (*Report, error) {
	m.begin(original, refined)
	rep := &Report{}
	// Map each original statement to the refined statements overlapping it.
	overlaps := make([][]int, len(original.Statements))
	claimed := make([]bool, len(refined.Statements))
	for i, o := range original.Statements {
		for j, r := range refined.Statements {
			ov, hit, err := m.overlaps(i, j, o.Predicate, r.Predicate)
			if err != nil {
				return nil, err
			}
			if !hit {
				rep.PredicateChecks++
			}
			if ov {
				overlaps[i] = append(overlaps[i], j)
				claimed[j] = true
			}
		}
	}
	// Every refined statement must belong to some original scope —
	// otherwise the tenant invented traffic outside its delegation.
	for j, c := range claimed {
		if !c {
			rep.Violations = append(rep.Violations, Violation{
				Kind:    "coverage",
				Refined: refined.Statements[j].ID,
				Detail:  "matches traffic outside the delegated policy",
			})
		}
	}
	// Localized bandwidth views for the implication check.
	origAlloc, err := m.localize(original.Formula, opts.Split)
	if err != nil {
		return nil, err
	}
	refAlloc, err := m.localize(refined.Formula, opts.Split)
	if err != nil {
		return nil, err
	}
	getAlloc := func(m map[string]policy.Alloc, id string) policy.Alloc {
		if a, ok := m[id]; ok {
			return a
		}
		return policy.Unconstrained
	}
	for i, o := range original.Statements {
		js := overlaps[i]
		if len(js) == 0 {
			// The refinement dropped this traffic entirely: packets the
			// original classifies would be unhandled.
			rep.PredicateChecks++
			sat, err := pred.Satisfiable(o.Predicate)
			if err != nil {
				return nil, err
			}
			if sat {
				rep.Violations = append(rep.Violations, Violation{
					Kind:     "coverage",
					Original: o.ID,
					Detail:   "refinement handles none of this statement's packets",
				})
			}
			continue
		}
		// Totality: the refined predicates must cover the original's.
		preds := make([]pred.Pred, len(js))
		for k, j := range js {
			preds[k] = refined.Statements[j].Predicate
		}
		rep.PredicateChecks++
		covered, err := pred.Covers(o.Predicate, preds)
		if err != nil {
			return nil, err
		}
		if !covered {
			rep.Violations = append(rep.Violations, Violation{
				Kind:     "coverage",
				Original: o.ID,
				Detail:   "refined predicates do not cover all packets (partition must be total, §4.1)",
			})
		}
		// Path inclusion per overlapping pair.
		var sumMax, sumMin float64
		for _, j := range js {
			r := refined.Statements[j]
			ok, witness, hit, err := m.includes(i, j, r.Path, o.Path, opts.Minimize)
			if err != nil {
				return nil, err
			}
			if !hit {
				rep.PathChecks++
			}
			if !ok {
				rep.Violations = append(rep.Violations, Violation{
					Kind:     "path",
					Original: o.ID,
					Refined:  r.ID,
					Detail:   "refined paths are not included in the original's",
					Witness:  witness,
				})
			}
			a := getAlloc(refAlloc, r.ID)
			sumMax += a.Max
			sumMin += a.Min
		}
		// Bandwidth implication: refined totals must not exceed the
		// original's cap or demand more than its guarantee.
		rep.BandwidthChecks++
		oa := getAlloc(origAlloc, o.ID)
		// Relative tolerance: summing thousands of per-statement shares
		// accumulates float error far above an absolute epsilon at
		// gigabit scales.
		tol := 1e-6 * (1 + oa.Max)
		if math.IsInf(oa.Max, 1) {
			tol = 0
		}
		if sumMax > oa.Max+tol {
			detail := fmt.Sprintf("refined caps total %s, original allows %s",
				fmtRate(sumMax), fmtRate(oa.Max))
			rep.Violations = append(rep.Violations, Violation{
				Kind: "bandwidth", Original: o.ID, Detail: detail,
			})
		}
		if sumMin > oa.Min+1e-6*(1+oa.Min) {
			detail := fmt.Sprintf("refined guarantees total %s, original reserves %s",
				fmtRate(sumMin), fmtRate(oa.Min))
			rep.Violations = append(rep.Violations, Violation{
				Kind: "bandwidth", Original: o.ID, Detail: detail,
			})
		}
	}
	return rep, nil
}

func fmtRate(v float64) string {
	if math.IsInf(v, 1) {
		return "unlimited"
	}
	return policy.FormatRate(v)
}

// Delegate projects a policy onto a tenant scope: each statement's
// predicate is intersected with the scope predicate; statements that
// become unsatisfiable are dropped, and formula terms over dropped
// statements are removed (§5).
func Delegate(pol *policy.Policy, scope pred.Pred) (*policy.Policy, error) {
	out := &policy.Policy{Formula: policy.FTrue{}}
	kept := map[string]bool{}
	for _, s := range pol.Statements {
		p := pred.Conj(s.Predicate, scope)
		sat, err := pred.Satisfiable(p)
		if err != nil {
			return nil, err
		}
		if !sat {
			continue
		}
		out.Statements = append(out.Statements, policy.Statement{
			ID: s.ID, Predicate: p, Path: s.Path,
		})
		kept[s.ID] = true
	}
	maxes, mins, err := policy.Terms(pol.Formula)
	if err != nil {
		return nil, err
	}
	keepTerm := func(ids []string) []string {
		var out []string
		for _, id := range ids {
			if kept[id] {
				out = append(out, id)
			}
		}
		return out
	}
	for _, m := range maxes {
		ids := keepTerm(m.Expr.IDs)
		if len(ids) == 0 {
			continue
		}
		// Scale aggregate terms to the surviving members (equal split of
		// the original aggregate, as in localization).
		rate := m.Rate * float64(len(ids)) / float64(len(m.Expr.IDs))
		out.Formula = policy.ConjFormula(out.Formula, policy.Max{
			Expr: policy.BandExpr{IDs: ids}, Rate: rate,
		})
	}
	for _, m := range mins {
		ids := keepTerm(m.Expr.IDs)
		if len(ids) == 0 {
			continue
		}
		rate := m.Rate * float64(len(ids)) / float64(len(m.Expr.IDs))
		out.Formula = policy.ConjFormula(out.Formula, policy.Min{
			Expr: policy.BandExpr{IDs: ids}, Rate: rate,
		})
	}
	return out, nil
}
