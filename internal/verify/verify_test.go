package verify

import (
	"fmt"
	"strings"
	"testing"

	"merlin/internal/policy"
	"merlin/internal/pred"
)

func mustPolicy(t testing.TB, src string) *policy.Policy {
	t.Helper()
	p, err := policy.Parse(src, policy.Env{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The §4.1 example: a 100MB/s cap on all pair traffic refined into web
// (logged, 50), ssh (25), and the rest (dpi, 25).
const originalSrc = `
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* ],
max(x, 100MB/s)
`

const refinedSrc = `
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 80) -> .* log .*
  y : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 22) -> .*
  z : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and
       !(tcp.dst = 22 or tcp.dst = 80)) -> .* dpi .* ],
max(x, 50MB/s) and max(y, 25MB/s) and max(z, 25MB/s)
`

func TestPaperRefinementAccepted(t *testing.T) {
	rep, err := CheckRefinement(mustPolicy(t, originalSrc), mustPolicy(t, refinedSrc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("valid refinement rejected: %v", rep.Violations)
	}
	if rep.PredicateChecks == 0 || rep.PathChecks == 0 || rep.BandwidthChecks == 0 {
		t.Fatalf("check counters not populated: %+v", rep)
	}
}

func TestOverAllocationRejected(t *testing.T) {
	over := strings.Replace(refinedSrc, "max(x, 50MB/s)", "max(x, 80MB/s)", 1)
	rep, err := CheckRefinement(mustPolicy(t, originalSrc), mustPolicy(t, over), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("130MB/s of caps under a 100MB/s parent accepted")
	}
	if rep.Violations[0].Kind != "bandwidth" {
		t.Fatalf("violation kind = %s", rep.Violations[0].Kind)
	}
}

func TestUncappedChildRejected(t *testing.T) {
	// Dropping z's cap makes the refined total unbounded.
	uncapped := strings.Replace(refinedSrc, " and max(z, 25MB/s)", "", 1)
	rep, err := CheckRefinement(mustPolicy(t, originalSrc), mustPolicy(t, uncapped), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("uncapped child under a capped parent accepted")
	}
}

func TestPathWideningRejected(t *testing.T) {
	// Original requires logging for web traffic; the refinement drops it.
	orig := `
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* log .* ]
`
	ref := `
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 80) -> .*
  y : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst != 80) -> .* log .* ]
`
	rep, err := CheckRefinement(mustPolicy(t, orig), mustPolicy(t, ref), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("path widening accepted")
	}
	var pathViolation *Violation
	for i := range rep.Violations {
		if rep.Violations[i].Kind == "path" {
			pathViolation = &rep.Violations[i]
		}
	}
	if pathViolation == nil {
		t.Fatalf("no path violation: %v", rep.Violations)
	}
	if pathViolation.Witness == nil {
		t.Error("path violation lacks witness")
	}
	if pathViolation.Error() == "" {
		t.Error("empty violation message")
	}
}

func TestPathNarrowingAccepted(t *testing.T) {
	// §4.1: adding a dpi waypoint to a logged path is a valid refinement.
	orig := `[ x : tcp.dst = 80 -> .* log .* ]`
	ref := `[ x : tcp.dst = 80 -> .* log .* dpi .* ]`
	rep, err := CheckRefinement(mustPolicy(t, orig), mustPolicy(t, ref), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("valid path narrowing rejected: %v", rep.Violations)
	}
}

func TestLossyPartitionRejected(t *testing.T) {
	// The refinement forgets ssh traffic entirely.
	lossy := `
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 80) -> .* ],
max(x, 50MB/s)
`
	rep, err := CheckRefinement(mustPolicy(t, originalSrc), mustPolicy(t, lossy), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("lossy partition accepted")
	}
	if rep.Violations[0].Kind != "coverage" {
		t.Fatalf("violation kind = %s", rep.Violations[0].Kind)
	}
}

func TestScopeEscapeRejected(t *testing.T) {
	// The refinement classifies traffic outside the delegated pair.
	escape := refinedSrc + `
[ w : (ip.src = 9.9.9.9 and ip.dst = 8.8.8.8) -> .* ]
`
	rep, err := CheckRefinement(mustPolicy(t, originalSrc), mustPolicy(t, escape), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("scope escape accepted")
	}
}

func TestGuaranteeInflationRejected(t *testing.T) {
	orig := `[ x : tcp.dst = 80 -> .* ], min(x, 10MB/s)`
	ref := `[ x : tcp.dst = 80 -> .* ], min(x, 20MB/s)`
	rep, err := CheckRefinement(mustPolicy(t, orig), mustPolicy(t, ref), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("guarantee inflation accepted")
	}
}

func TestMinimizeOptionAgrees(t *testing.T) {
	for _, minimize := range []bool{false, true} {
		rep, err := CheckRefinement(mustPolicy(t, originalSrc), mustPolicy(t, refinedSrc),
			Options{Minimize: minimize})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("minimize=%v rejected valid refinement", minimize)
		}
	}
}

func TestDelegateProjectsScope(t *testing.T) {
	pol := mustPolicy(t, `
[ a : tcp.dst = 80 -> .* log .*
  b : tcp.dst = 22 -> .* ],
max(a, 10MB/s) and max(b, 5MB/s)
`)
	// Tenant scope: only traffic from 10.0.0.1.
	scope := pred.Test{Field: "ip.src", Value: "10.0.0.1"}
	sub, err := Delegate(pol, scope)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Statements) != 2 {
		t.Fatalf("statements = %d", len(sub.Statements))
	}
	// Delegated predicates are narrowed.
	for _, s := range sub.Statements {
		ok, err := pred.Implies(s.Predicate, scope)
		if err != nil || !ok {
			t.Fatalf("statement %s escapes scope", s.ID)
		}
	}
	// A tenant refinement of the delegated policy verifies against the
	// delegation (not against the root — a delegation deliberately
	// narrows scope, so it is the new baseline for its subtree, §4).
	refined := &policy.Policy{
		Statements: []policy.Statement{
			{ID: "a1", Predicate: pred.Conj(sub.Statements[0].Predicate,
				pred.Test{Field: "ip.tos", Value: "0"}), Path: sub.Statements[0].Path},
			{ID: "a2", Predicate: pred.Conj(sub.Statements[0].Predicate,
				pred.Negate(pred.Test{Field: "ip.tos", Value: "0"})), Path: sub.Statements[0].Path},
			sub.Statements[1],
		},
		Formula: policy.ConjFormula(
			policy.Max{Expr: policy.BandExpr{IDs: []string{"a1"}}, Rate: 4 * 8e6},
			policy.Max{Expr: policy.BandExpr{IDs: []string{"a2"}}, Rate: 6 * 8e6},
			policy.Max{Expr: policy.BandExpr{IDs: []string{"b"}}, Rate: 5 * 8e6},
		),
	}
	rep, err := CheckRefinement(sub, refined, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("valid tenant refinement rejected: %v", rep.Violations)
	}
}

func TestDelegateDropsUnsatisfiable(t *testing.T) {
	pol := mustPolicy(t, `
[ a : tcp.dst = 80 -> .*
  b : tcp.dst = 22 -> .* ],
max(a + b, 10MB/s)
`)
	scope := pred.Test{Field: "tcp.dst", Value: "80"}
	sub, err := Delegate(pol, scope)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Statements) != 1 || sub.Statements[0].ID != "a" {
		t.Fatalf("statements = %v", sub.Statements)
	}
	// The aggregate cap is rescaled to the surviving member.
	maxes, _, err := policy.Terms(sub.Formula)
	if err != nil {
		t.Fatal(err)
	}
	if len(maxes) != 1 || maxes[0].Rate != 5*8e6 {
		t.Fatalf("maxes = %v", maxes)
	}
}

// buildPartition generates the Fig. 9(a) workload: a parent statement
// partitioned into n children by destination port.
func buildPartition(t testing.TB, n int) (*policy.Policy, *policy.Policy) {
	t.Helper()
	orig := mustPolicy(t, `[ x : ip.proto = 6 -> .* ], max(x, 100MB/s)`)
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, " p%d : (ip.proto = 6 and tcp.dst = %d) -> .* ;", i, i+1)
	}
	rest := " rest : (ip.proto = 6"
	for i := 0; i < n; i++ {
		rest += fmt.Sprintf(" and tcp.dst != %d", i+1)
	}
	sb.WriteString(rest + ") -> .* ],\n")
	terms := make([]string, 0, n+1)
	share := 100.0 / float64(n+1)
	for i := 0; i < n; i++ {
		terms = append(terms, fmt.Sprintf("max(p%d, %fMB/s)", i, share))
	}
	terms = append(terms, fmt.Sprintf("max(rest, %fMB/s)", share))
	sb.WriteString(strings.Join(terms, " and "))
	return orig, mustPolicy(t, sb.String())
}

func TestLargePartitionVerifies(t *testing.T) {
	orig, ref := buildPartition(t, 50)
	rep, err := CheckRefinement(orig, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations[:1])
	}
}

func BenchmarkVerifyPartition(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		orig, ref := buildPartition(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := CheckRefinement(orig, ref, Options{})
				if err != nil || !rep.OK() {
					b.Fatalf("%v %v", err, rep.Violations)
				}
			}
		})
	}
}
