package verify

import (
	"hash/fnv"
	"io"
	"sync"

	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/regex"
)

// Cache memoizes refinement verification (§4.2) for tenant-scale
// negotiation: at 10⁴–10⁵ live sessions the negotiator re-verifies the
// same (parent, child) pairs constantly — an unchanged child against an
// unchanged delegation, or a proposal differing from the last accepted
// policy in one statement. The cache works at two levels:
//
//   - Policy level: a full CheckRefinement verdict is memoized per
//     (parent-policy fingerprint, child-policy fingerprint, options).
//     An unchanged child is never re-verified; a parent re-delegation
//     changes the parent fingerprint, so stale verdicts are simply
//     unreachable — no explicit invalidation protocol is needed.
//   - Pair level: the decision-procedure calls inside a miss — predicate
//     overlap per statement pair and path-language inclusion per
//     overlapping pair — are memoized by the operands' own fingerprints.
//     A proposal that changes one statement out of k re-runs only the
//     pairs involving the changed statement; everything else is a pair
//     hit. This is what makes a delta-Propose cost O(changed), not
//     O(k²).
//
// Reports returned from the cache are shared: callers must treat them
// (and the alloc maps inside Localize results) as immutable. Entries
// are dropped wholesale when a level exceeds its bound — correctness
// never depends on an entry being present. A Cache must not be shared
// across callers using different Options.Split functions: a SplitFunc
// has no fingerprint, so localizations are memoized only for the
// default split and verdicts only embed the Minimize flag.
type Cache struct {
	mu sync.Mutex
	// policies: (parentFP, childFP, minimize) → verdict.
	policies map[string]*Report
	// overlaps: (orig predicate FP, refined predicate FP) → pred.Overlaps.
	overlaps map[string]bool
	// includes: (refined path FP, orig path FP, minimize) → inclusion.
	includes map[string]incEntry
	// localized: formula fingerprint → default-split localization.
	localized map[string]map[string]policy.Alloc

	maxPolicies, maxPairs int

	stats CacheStats
}

type incEntry struct {
	ok      bool
	witness []string
}

// CacheStats counts cache traffic. Hits/Misses are policy-level (whole
// CheckRefinement verdicts served without any decision procedure);
// PairHits/PairMisses count the memoized decision-procedure calls under
// policy-level misses.
type CacheStats struct {
	Hits, Misses         int
	PairHits, PairMisses int
}

// Default size bounds: policy verdicts are small (a Report), pair entries
// smaller still; the bounds only exist so adversarial churn cannot grow
// the maps without limit.
const (
	defaultMaxPolicies = 1 << 14
	defaultMaxPairs    = 1 << 17
)

// NewCache creates an empty verification cache with default bounds.
func NewCache() *Cache {
	return &Cache{
		policies:    map[string]*Report{},
		overlaps:    map[string]bool{},
		includes:    map[string]incEntry{},
		localized:   map[string]map[string]policy.Alloc{},
		maxPolicies: defaultMaxPolicies,
		maxPairs:    defaultMaxPairs,
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset drops every memoized entry (counters are kept). Fingerprint keying
// already makes entries from a re-delegated parent unreachable; Reset is
// for reclaiming their memory eagerly.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policies = map[string]*Report{}
	c.overlaps = map[string]bool{}
	c.includes = map[string]incEntry{}
	c.localized = map[string]map[string]policy.Alloc{}
}

// CheckRefinement is verify.CheckRefinement through the cache: a repeat
// verification of the same (original, refined) pair is served from the
// policy-level memo, and a miss runs the check with every pairwise
// decision procedure memoized. Errors are never cached.
func (c *Cache) CheckRefinement(original, refined *policy.Policy, opts Options) (*Report, error) {
	if opts.Split != nil {
		// A custom SplitFunc cannot be fingerprinted; fall through to the
		// uncached path rather than risk serving a verdict computed under
		// a different localization.
		return CheckRefinement(original, refined, opts)
	}
	key := policyPairKey(original, refined, opts.Minimize)
	c.mu.Lock()
	if rep, ok := c.policies[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return rep, nil
	}
	c.mu.Unlock()
	m := &cacheMemo{cache: c}
	rep, err := checkRefinement(original, refined, opts, m)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.Misses++
	if len(c.policies) >= c.maxPolicies {
		c.policies = map[string]*Report{}
	}
	c.policies[key] = rep
	c.mu.Unlock()
	return rep, nil
}

func policyPairKey(original, refined *policy.Policy, minimize bool) string {
	k := PolicyFingerprint(original) + "\x00" + PolicyFingerprint(refined)
	if minimize {
		k += "\x01"
	}
	return k
}

// PolicyFingerprint returns a fixed-size fingerprint of a policy's full
// semantic content: every statement's identifier, predicate, and path
// expression, plus the bandwidth formula. Structurally equal policies
// fingerprint identically regardless of sharing.
func PolicyFingerprint(p *policy.Policy) string {
	h := fnv.New128a()
	for _, s := range p.Statements {
		io.WriteString(h, s.ID)
		h.Write([]byte{0})
		io.WriteString(h, pred.Format(s.Predicate))
		h.Write([]byte{0})
		io.WriteString(h, s.Path.String())
		h.Write([]byte{0})
	}
	h.Write([]byte{1})
	io.WriteString(h, formulaFingerprint(p.Formula))
	return string(h.Sum(nil))
}

func formulaFingerprint(f policy.Formula) string {
	if f == nil {
		return ""
	}
	return f.String()
}

// cacheMemo threads the pair-level memos through one checkRefinement
// pass. Statement fingerprints are computed once per policy up front, so
// a k×k overlap sweep hashes 2k strings, not k² of them.
type cacheMemo struct {
	cache *Cache
	// Per-statement operand fingerprints, aligned with the statement
	// slices of the original and refined policies.
	origPred, refPred []string
	origPath, refPath []string
}

// begin precomputes the operand fingerprints. Called once by
// checkRefinement before any memoized query; a nil memo skips it.
func (m *cacheMemo) begin(original, refined *policy.Policy) {
	if m == nil {
		return
	}
	m.origPred = make([]string, len(original.Statements))
	m.origPath = make([]string, len(original.Statements))
	for i, s := range original.Statements {
		m.origPred[i] = pred.Format(s.Predicate)
		m.origPath[i] = s.Path.String()
	}
	m.refPred = make([]string, len(refined.Statements))
	m.refPath = make([]string, len(refined.Statements))
	for j, s := range refined.Statements {
		m.refPred[j] = pred.Format(s.Predicate)
		m.refPath[j] = s.Path.String()
	}
}

// overlaps is pred.Overlaps memoized by predicate fingerprints. The
// second return reports a memo hit (the decision procedure did not run).
func (m *cacheMemo) overlaps(i, j int, a, b pred.Pred) (bool, bool, error) {
	if m == nil {
		ov, err := pred.Overlaps(a, b)
		return ov, false, err
	}
	key := m.origPred[i] + "\x00" + m.refPred[j]
	c := m.cache
	c.mu.Lock()
	if ov, ok := c.overlaps[key]; ok {
		c.stats.PairHits++
		c.mu.Unlock()
		return ov, true, nil
	}
	c.mu.Unlock()
	ov, err := pred.Overlaps(a, b)
	if err != nil {
		return false, false, err
	}
	c.mu.Lock()
	c.stats.PairMisses++
	if len(c.overlaps) >= c.maxPairs {
		c.overlaps = map[string]bool{}
	}
	c.overlaps[key] = ov
	c.mu.Unlock()
	return ov, false, nil
}

// includes is regex.Includes memoized by path-expression fingerprints.
func (m *cacheMemo) includes(i, j int, refined, original regex.Expr, minimize bool) (bool, []string, bool, error) {
	if m == nil {
		ok, witness, err := regex.Includes(refined, original, regex.Options{Minimize: minimize})
		return ok, witness, false, err
	}
	key := m.refPath[j] + "\x00" + m.origPath[i]
	if minimize {
		key += "\x01"
	}
	c := m.cache
	c.mu.Lock()
	if e, ok := c.includes[key]; ok {
		c.stats.PairHits++
		c.mu.Unlock()
		return e.ok, e.witness, true, nil
	}
	c.mu.Unlock()
	ok, witness, err := regex.Includes(refined, original, regex.Options{Minimize: minimize})
	if err != nil {
		return false, nil, false, err
	}
	c.mu.Lock()
	c.stats.PairMisses++
	if len(c.includes) >= c.maxPairs {
		c.includes = map[string]incEntry{}
	}
	c.includes[key] = incEntry{ok: ok, witness: witness}
	c.mu.Unlock()
	return ok, witness, false, nil
}

// localize is policy.Localize memoized by formula fingerprint (default
// split only — checkRefinement bypasses the memo for custom splits).
func (m *cacheMemo) localize(f policy.Formula, split policy.SplitFunc) (map[string]policy.Alloc, error) {
	if m == nil || split != nil {
		return policy.Localize(f, split)
	}
	key := formulaFingerprint(f)
	c := m.cache
	c.mu.Lock()
	if a, ok := c.localized[key]; ok {
		c.mu.Unlock()
		return a, nil
	}
	c.mu.Unlock()
	a, err := policy.Localize(f, nil)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.localized) >= c.maxPairs {
		c.localized = map[string]map[string]policy.Alloc{}
	}
	c.localized[key] = a
	c.mu.Unlock()
	return a, nil
}
