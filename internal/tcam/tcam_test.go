package tcam_test

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	merlin "merlin"
	"merlin/internal/codegen"
	"merlin/internal/tcam"
	"merlin/internal/ternary"
	"merlin/internal/topo"
	"merlin/internal/zoo"
)

var (
	entryLine = regexp.MustCompile(`^tcam entry add priority \d+ key port=(any|\d+) tag=(any|none|\d+)( [a-z.]+=(0x[0-9a-f]+/0x[0-9a-f]+|\d+\.\.\d+))* action "[^"]*" stmt \S+$`)
	schedLine = regexp.MustCompile(`^scheduler port \d+ queue \d+ min-rate-bps \d+$`)
)

// validateArtifact structurally checks every rendered CLI line and the
// per-device entry accounting.
func validateArtifact(t *testing.T, tp *topo.Topology, art *tcam.Artifact) {
	t.Helper()
	if art.Count() != len(art.Lines) {
		t.Fatalf("Count %d != lines %d", art.Count(), len(art.Lines))
	}
	perDev := map[topo.NodeID]int{}
	for i, e := range art.Lines {
		if tp.Node(e.Device).Kind != topo.Switch {
			t.Fatalf("line %d: device %d is not a switch", i, e.Device)
		}
		switch {
		case strings.HasPrefix(e.Text, "tcam entry add "):
			if !entryLine.MatchString(e.Text) {
				t.Fatalf("line %d: malformed entry %q", i, e.Text)
			}
			perDev[e.Device]++
		case strings.HasPrefix(e.Text, "scheduler "):
			if !schedLine.MatchString(e.Text) {
				t.Fatalf("line %d: malformed scheduler line %q", i, e.Text)
			}
		default:
			t.Fatalf("line %d: unrecognized line %q", i, e.Text)
		}
	}
	if len(perDev) != len(art.PerDevice) {
		t.Fatalf("PerDevice tracks %d devices, lines cover %d", len(art.PerDevice), len(perDev))
	}
	for dev, n := range perDev {
		if art.PerDevice[dev] != n {
			t.Fatalf("device %d: PerDevice %d, counted %d entry lines", dev, art.PerDevice[dev], n)
		}
	}
}

func TestTableModel(t *testing.T) {
	m, ok := codegen.BackendModel(tcam.Name, topo.Switch)
	if !ok {
		t.Fatal("tcam declares no switch table model")
	}
	if m.MaxEntries != tcam.SwitchMaxEntries || m.SupportsRange {
		t.Fatalf("switch model = %+v", m)
	}
	if m.Width < ternary.Width() {
		t.Fatalf("model width %d narrower than the canonical key (%d)", m.Width, ternary.Width())
	}
	for _, class := range []topo.Kind{topo.Host, topo.Middlebox} {
		if _, ok := codegen.BackendModel(tcam.Name, class); ok {
			t.Fatalf("class %v must be unconstrained", class)
		}
	}
	if codegen.IsBuiltinTarget(tcam.Name) {
		t.Fatal("tcam must not be a builtin: its diffs route through Diff.Backends")
	}
}

// TestEmitPaperExample compiles the §2 running example with the tcam
// target: ternary classification rows with folded MACs and prefix-
// expanded port ranges, tag forwarding, and scheduler reservations.
func TestEmitPaperExample(t *testing.T) {
	tp := merlin.Example(merlin.Gbps)
	ids := tp.Identities()
	h1, _ := ids.Of(tp.MustLookup("h1"))
	h2, _ := ids.Of(tp.MustLookup("h2"))
	src := `
[ x : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 20) -> .* dpi .*
  z : (eth.src = ` + h1.MAC + ` and eth.dst = ` + h2.MAC + ` and tcp.dst = 80) -> .* at min(10MB/s) ],
max(x, 50MB/s)
`
	pol, err := merlin.ParsePolicy(src, tp)
	if err != nil {
		t.Fatal(err)
	}
	c := merlin.NewCompiler(tp, merlin.Placement{"dpi": {"m1"}},
		merlin.Options{Targets: append(merlin.DefaultTargets(), tcam.Name)})
	res, err := c.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	art, ok := res.Outputs[tcam.Name].(*tcam.Artifact)
	if !ok || art.Count() == 0 {
		t.Fatalf("no tcam artifact emitted: %T", res.Outputs[tcam.Name])
	}
	validateArtifact(t, tp, art)
	var text strings.Builder
	for _, e := range art.Lines {
		text.WriteString(e.Text + "\n")
	}
	// Classification rows carry the folded MACs and the exact port as
	// value/mask constraints.
	if !strings.Contains(text.String(), "tcp.dst=0x0014/0xffff") {
		t.Error("tcp.dst=20 classification row missing")
	}
	if !strings.Contains(text.String(), "eth.src=0x") {
		t.Error("no folded MAC constraint in any row")
	}
	// The guarantee's queue reservation renders as a scheduler line.
	if !strings.Contains(text.String(), "scheduler port ") {
		t.Error("no scheduler line for the guaranteed statement")
	}
	if stats := c.Stats(); stats.TernaryEntries == 0 {
		t.Error("CompilerStats.TernaryEntries not counted")
	}
}

// TestEmitDeterministic asserts two emissions of the same IR are
// identical — the property the incremental differ depends on.
func TestEmitDeterministic(t *testing.T) {
	tp := merlin.FatTree(4, merlin.Gbps)
	pol, err := merlin.ParsePolicy(`foreach (s,d) in cross(hosts,hosts): .*`, tp)
	if err != nil {
		t.Fatal(err)
	}
	opts := merlin.Options{Targets: append(merlin.DefaultTargets(), tcam.Name)}
	a, err := merlin.Compile(pol, tp, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := codegen.Lookup(tcam.Name)
	if !ok {
		t.Fatal("tcam backend not registered")
	}
	re, err := b.Emit(tp, a.IR)
	if err != nil {
		t.Fatal(err)
	}
	if d := b.Diff(a.Outputs[tcam.Name], re); !d.Empty() {
		t.Fatalf("re-emission of the same IR diffs: %d install / %d remove", len(d.Install), len(d.Remove))
	}
}

// TestZooSmoke compiles a two-statement policy (one guarantee, one path
// constraint) with the tcam target across the synthetic Topology Zoo and
// validates every rendered line. -short samples the families sparsely;
// the full sweep covers every 10th network.
func TestZooSmoke(t *testing.T) {
	stride := 10
	if testing.Short() {
		stride = 64
	}
	entries := zoo.Entries()
	for i := 0; i < len(entries); i += stride {
		e := entries[i]
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			tp := zoo.Generate(e.Index, 2)
			hosts := tp.Hosts()
			if len(hosts) < 2 {
				t.Skipf("%s: only %d hosts", e.Name, len(hosts))
			}
			ids := tp.Identities()
			a, _ := ids.Of(hosts[0])
			b, _ := ids.Of(hosts[len(hosts)-1])
			src := fmt.Sprintf(`
[ g : (eth.src = %s and eth.dst = %s and tcp.dst = 1000) -> .* at min(5Mbps)
  p : (eth.src = %s and eth.dst = %s) -> .* ]`, a.MAC, b.MAC, b.MAC, a.MAC)
			pol, err := merlin.ParsePolicy(src, tp)
			if err != nil {
				t.Fatal(err)
			}
			opts := merlin.Options{
				NoDefault: true,
				Greedy:    e.Switches > 100,
				Targets:   append(merlin.DefaultTargets(), tcam.Name),
			}
			res, err := merlin.Compile(pol, tp, nil, opts)
			if err != nil {
				t.Fatalf("%s (%s, %d switches): compile: %v", e.Name, e.Family, e.Switches, err)
			}
			art, ok := res.Outputs[tcam.Name].(*tcam.Artifact)
			if !ok || art.Count() == 0 {
				t.Fatalf("%s: no tcam lines", e.Name)
			}
			validateArtifact(t, tp, art)
		})
	}
}
