// Package tcam is a vendor-CLI dataplane backend and the first consumer
// of the backend API v2: instead of rendering the IR's symbolic
// Match.Pred one-to-one, it declares a per-device-class table model
// (codegen.TableModeler) and receives the compiler's expanded ternary
// tables (codegen.TernaryEmitter) — real value/mask TCAM entries with
// port ranges expanded to their prefix covers, counted against each
// switch's table budget before emission. The rendered artifact is a
// deterministic per-device CLI script in the style of merchant-silicon
// vendor shells: `tcam entry add ...` lines for the match table and
// `scheduler port ...` lines for the queue reservations.
//
// Like p4, the host-side IR sections (caps, filters, host functions) are
// not rendered here — they configure end hosts, so a caps-only update
// leaves the tcam artifact untouched and rides the incremental
// compiler's artifact-sharing fast path.
package tcam

import (
	"fmt"
	"strings"

	"merlin/internal/codegen"
	"merlin/internal/ternary"
	"merlin/internal/topo"
)

// Name is the backend's registry key.
const Name = "tcam"

// Switch table model: a merchant-silicon ingress TCAM slice — a few
// thousand ternary entries over the full canonical header key, with no
// native range matching (ranges cost their prefix cover).
const (
	SwitchMaxEntries = 4096
	switchKeySlack   = 64 // structural key bits (port, tag) beside the header row
)

type backend struct{}

// Name implements codegen.Backend.
func (backend) Name() string { return Name }

// TableModel implements codegen.TableModeler: only switches carry a
// TCAM; hosts and middleboxes are unconstrained (they hold no entries).
func (backend) TableModel(class topo.Kind) (codegen.TableModel, bool) {
	if class != topo.Switch {
		return codegen.TableModel{}, false
	}
	return codegen.TableModel{
		MaxEntries:    SwitchMaxEntries,
		Width:         ternary.Width() + switchKeySlack,
		SupportsRange: false,
	}, true
}

// Emit implements codegen.Backend. The compiler normally calls
// EmitTernary with pre-expanded (and budget-checked) tables; Emit makes
// the backend usable standalone by running the expansion itself under
// its own table model.
func (b backend) Emit(t *topo.Topology, prog *codegen.Program) (codegen.Artifact, error) {
	tables, err := codegen.ExpandProgram(t, prog, ternary.Options{SupportsRange: false})
	if err != nil {
		return nil, err
	}
	return b.EmitTernary(t, prog, tables)
}

// EmitTernary implements codegen.TernaryEmitter: each ternary entry
// renders as one CLI line on its device, in table order; queue
// reservations follow as scheduler lines.
func (backend) EmitTernary(t *topo.Topology, prog *codegen.Program, tables *codegen.TernaryTables) (codegen.Artifact, error) {
	art := &Artifact{
		Lines:     make([]codegen.Entry, 0, tables.Total+len(prog.Queues)),
		PerDevice: make(map[topo.NodeID]int, len(tables.PerDevice)),
	}
	for _, e := range tables.Entries {
		art.Lines = append(art.Lines, codegen.Entry{Device: e.Device, Text: renderEntry(e)})
		art.PerDevice[e.Device]++
	}
	for _, q := range prog.Queues {
		art.Lines = append(art.Lines, codegen.Entry{
			Device: q.Switch,
			Text:   fmt.Sprintf("scheduler port %d queue %d min-rate-bps %.0f", q.Port, q.Queue, q.MinBps),
		})
	}
	return art, nil
}

// Diff implements codegen.Backend.
func (backend) Diff(old, new codegen.Artifact) codegen.ArtifactDiff {
	return codegen.DiffArtifacts(Name, old, new)
}

// renderEntry formats one expanded entry as a vendor-CLI line. The
// structural keys (ingress port, path tag) print first, then the header
// value/mask row in canonical field order, then the action and owning
// statement.
func renderEntry(e codegen.TernaryEntry) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tcam entry add priority %d key port=%s tag=%s", e.Priority, portKey(e.InPort), tagKey(e.Tag))
	for _, m := range e.Match {
		sb.WriteByte(' ')
		sb.WriteString(m.String())
	}
	fmt.Fprintf(&sb, " action %q stmt %s", e.Ops, e.Stmt)
	return sb.String()
}

func portKey(p topo.LinkID) string {
	if p == codegen.AnyPort {
		return "any"
	}
	return fmt.Sprintf("%d", p)
}

func tagKey(tag int) string {
	switch tag {
	case codegen.TagAny:
		return "any"
	case codegen.TagNone:
		return "none"
	default:
		return fmt.Sprintf("%d", tag)
	}
}

// Artifact is the tcam backend's emitted configuration: rendered CLI
// lines per device, plus per-device entry counts for capacity audits.
type Artifact struct {
	Lines []codegen.Entry
	// PerDevice counts match-table entries per device (scheduler lines
	// excluded — they live in the scheduler, not the TCAM).
	PerDevice map[topo.NodeID]int
}

// Backend implements codegen.Artifact.
func (a *Artifact) Backend() string { return Name }

// Entries implements codegen.Artifact.
func (a *Artifact) Entries() []codegen.Entry { return a.Lines }

// Count reports the number of rendered CLI lines.
func (a *Artifact) Count() int { return len(a.Lines) }

func init() {
	codegen.Register(backend{})
}
