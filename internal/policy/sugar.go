package policy

import (
	"fmt"
	"strings"

	"merlin/internal/pred"
	"merlin/internal/regex"
)

// Env supplies named sets for sugar expansion beyond the file's own
// bindings — typically the compiler provides "hosts" bound to every host
// identity in the topology.
type Env struct {
	Sets map[string][]string
}

// Expand desugars the file into a flat policy: set bindings are resolved,
// foreach loops are unrolled over cross products, and inline "at" rates
// become formula terms.
func (f *File) Expand(env Env) (*Policy, error) {
	sets := map[string][]string{}
	for name, items := range env.Sets {
		sets[name] = items
	}
	for _, b := range f.Bindings {
		resolved, err := resolveItems(b.Items, sets)
		if err != nil {
			return nil, fmt.Errorf("policy: set %s: %w", b.Name, err)
		}
		sets[b.Name] = resolved
	}
	pol := &Policy{Formula: FTrue{}}
	if f.Formula != nil {
		pol.Formula = f.Formula
	}
	genID := 0
	addRates := func(id string, atMax, atMin float64) {
		if atMax > 0 {
			pol.Formula = ConjFormula(pol.Formula, Max{Expr: BandExpr{IDs: []string{id}}, Rate: atMax})
		}
		if atMin > 0 {
			pol.Formula = ConjFormula(pol.Formula, Min{Expr: BandExpr{IDs: []string{id}}, Rate: atMin})
		}
	}
	for _, item := range f.Items {
		switch it := item.(type) {
		case StmtItem:
			pol.Statements = append(pol.Statements, it.Stmt)
			addRates(it.Stmt.ID, it.AtMax, it.AtMin)
		case ForeachItem:
			srcs, ok := sets[it.SetSrc]
			if !ok {
				return nil, fmt.Errorf("policy: unknown set %q in cross", it.SetSrc)
			}
			dsts, ok := sets[it.SetDst]
			if !ok {
				return nil, fmt.Errorf("policy: unknown set %q in cross", it.SetDst)
			}
			for _, s := range srcs {
				for _, d := range dsts {
					if s == d {
						continue // self-pairs carry no traffic
					}
					id := fmt.Sprintf("fe%d", genID)
					genID++
					subst := map[string]string{it.VarSrc: s, it.VarDst: d}
					pr := pred.Conj(srcAtom(s), dstAtom(d), substPred(it.Predicate, subst))
					var path regex.Expr = regex.Star{X: regex.Any{}}
					if it.Path != nil {
						path = substPath(it.Path, subst)
					}
					pol.Statements = append(pol.Statements, Statement{ID: id, Predicate: pr, Path: path})
					addRates(id, it.AtMax, it.AtMin)
				}
			}
		}
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return pol, nil
}

// Parse is the convenience entry point: parse source and expand it with the
// given environment.
func Parse(src string, env Env) (*Policy, error) {
	f, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	return f.Expand(env)
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string, env Env) *Policy {
	p, err := Parse(src, env)
	if err != nil {
		panic(err)
	}
	return p
}

// resolveItems flattens set items: literals stay, identifiers referencing
// known sets splice their members in.
func resolveItems(items []string, sets map[string][]string) ([]string, error) {
	var out []string
	for _, it := range items {
		if members, ok := sets[it]; ok {
			out = append(out, members...)
			continue
		}
		out = append(out, strings.ToLower(it))
	}
	return out, nil
}

// ValueKind classifies a host-identity value's shape.
type ValueKind int

// Value shapes.
const (
	ValueMAC ValueKind = iota
	ValueIP
	ValueName
)

// ClassifyValue reports whether v looks like a MAC address, an IPv4
// address, or a bare name.
func ClassifyValue(v string) ValueKind {
	if strings.Count(v, ":") == 5 {
		return ValueMAC
	}
	if strings.Count(v, ".") == 3 {
		allDigits := true
		for _, part := range strings.Split(v, ".") {
			if part == "" {
				allDigits = false
				break
			}
			for i := 0; i < len(part); i++ {
				if part[i] < '0' || part[i] > '9' {
					allDigits = false
					break
				}
			}
		}
		if allDigits {
			return ValueIP
		}
	}
	return ValueName
}

// srcAtom builds the source-identity atom the foreach sugar adds: MAC
// values match eth.src, IPs ip.src, and bare names are treated as host
// identities on eth.src (the compiler resolves them via the topology's
// host identity table).
func srcAtom(v string) pred.Pred {
	switch ClassifyValue(v) {
	case ValueIP:
		return pred.Test{Field: "ip.src", Value: v}
	default:
		return pred.Test{Field: "eth.src", Value: strings.ToLower(v)}
	}
}

// dstAtom mirrors srcAtom for destinations.
func dstAtom(v string) pred.Pred {
	switch ClassifyValue(v) {
	case ValueIP:
		return pred.Test{Field: "ip.dst", Value: v}
	default:
		return pred.Test{Field: "eth.dst", Value: strings.ToLower(v)}
	}
}

// substPred replaces loop-variable occurrences in test values.
func substPred(p pred.Pred, subst map[string]string) pred.Pred {
	if p == nil {
		return pred.True
	}
	switch q := p.(type) {
	case pred.Test:
		if repl, ok := subst[q.Value]; ok {
			return pred.Test{Field: q.Field, Value: strings.ToLower(repl)}
		}
		return q
	case pred.And:
		return pred.And{L: substPred(q.L, subst), R: substPred(q.R, subst)}
	case pred.Or:
		return pred.Or{L: substPred(q.L, subst), R: substPred(q.R, subst)}
	case pred.Not:
		return pred.Not{P: substPred(q.P, subst)}
	default:
		return p
	}
}

// substPath replaces loop-variable occurrences in path symbols.
func substPath(e regex.Expr, subst map[string]string) regex.Expr {
	switch x := e.(type) {
	case regex.Sym:
		if repl, ok := subst[x.Name]; ok {
			return regex.Sym{Name: strings.ToLower(repl)}
		}
		return x
	case regex.Concat:
		return regex.Concat{L: substPath(x.L, subst), R: substPath(x.R, subst)}
	case regex.Alt:
		return regex.Alt{L: substPath(x.L, subst), R: substPath(x.R, subst)}
	case regex.Star:
		return regex.Star{X: substPath(x.X, subst)}
	case regex.Not:
		return regex.Not{X: substPath(x.X, subst)}
	default:
		return e
	}
}
