package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber // plain integer or decimal
	tRate   // number with a bandwidth unit, e.g. 50MB/s
	tMAC    // 00:11:22:33:44:55
	tIP     // 192.168.1.1
	tAssign // :=
	tColon  // :
	tArrow  // ->
	tEq     // =
	tNeq    // !=
	tLParen
	tRParen
	tLBracket
	tRBracket
	tLBrace
	tRBrace
	tComma
	tSemi
	tPlus
	tStar
	tQuest
	tDot
	tPipe
	tBang
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tIdent:
		return "identifier"
	case tNumber:
		return "number"
	case tRate:
		return "rate"
	case tMAC:
		return "MAC address"
	case tIP:
		return "IP address"
	case tAssign:
		return "':='"
	case tColon:
		return "':'"
	case tArrow:
		return "'->'"
	case tEq:
		return "'='"
	case tNeq:
		return "'!='"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tLBracket:
		return "'['"
	case tRBracket:
		return "']'"
	case tLBrace:
		return "'{'"
	case tRBrace:
		return "'}'"
	case tComma:
		return "','"
	case tSemi:
		return "';'"
	case tPlus:
		return "'+'"
	case tStar:
		return "'*'"
	case tQuest:
		return "'?'"
	case tDot:
		return "'.'"
	case tPipe:
		return "'|'"
	case tBang:
		return "'!'"
	default:
		return "token"
	}
}

type token struct {
	kind tokKind
	text string
	rate float64 // decoded bits/s for tRate
	line int
	col  int
}

func (t token) String() string {
	if t.text != "" {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func isHex(b byte) bool {
	return ('0' <= b && b <= '9') || ('a' <= b && b <= 'f') || ('A' <= b && b <= 'F')
}

func isDigit(b byte) bool { return '0' <= b && b <= '9' }

func isLetter(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z')
}

func isIdentByte(b byte) bool { return isLetter(b) || isDigit(b) }

// rateUnits maps unit suffixes to bits-per-second multipliers. Bandwidth
// rates in Merlin policies are written like 50MB/s or 1Gbps (§2).
var rateUnits = map[string]float64{
	"GB/s": 8e9, "MB/s": 8e6, "KB/s": 8e3, "kB/s": 8e3, "B/s": 8,
	"Gbps": 1e9, "Mbps": 1e6, "Kbps": 1e3, "kbps": 1e3, "bps": 1,
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("policy:%d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and # comments.
	for l.pos < len(l.src) {
		b := l.src[l.pos]
		if b == ' ' || b == '\t' || b == '\r' || b == '\n' {
			l.advance(1)
			continue
		}
		if b == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	b := l.src[l.pos]

	// MAC address: six colon-separated hex pairs (try before ident/number
	// since hex digits overlap both).
	if isHex(b) {
		if mac, ok := l.tryMAC(); ok {
			return mk(tMAC, mac), nil
		}
	}
	switch {
	case isDigit(b):
		return l.lexNumber(line, col)
	case isLetter(b):
		j := l.pos
		for j < len(l.src) && isIdentByte(l.src[j]) {
			j++
		}
		text := l.src[l.pos:j]
		l.advance(j - l.pos)
		return mk(tIdent, text), nil
	}
	switch b {
	case ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.advance(2)
			return mk(tAssign, ":="), nil
		}
		l.advance(1)
		return mk(tColon, ":"), nil
	case '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.advance(2)
			return mk(tArrow, "->"), nil
		}
		return token{}, l.errf("unexpected '-'")
	case '=':
		l.advance(1)
		return mk(tEq, "="), nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.advance(2)
			return mk(tNeq, "!="), nil
		}
		l.advance(1)
		return mk(tBang, "!"), nil
	case '(':
		l.advance(1)
		return mk(tLParen, "("), nil
	case ')':
		l.advance(1)
		return mk(tRParen, ")"), nil
	case '[':
		l.advance(1)
		return mk(tLBracket, "["), nil
	case ']':
		l.advance(1)
		return mk(tRBracket, "]"), nil
	case '{':
		l.advance(1)
		return mk(tLBrace, "{"), nil
	case '}':
		l.advance(1)
		return mk(tRBrace, "}"), nil
	case ',':
		l.advance(1)
		return mk(tComma, ","), nil
	case ';':
		l.advance(1)
		return mk(tSemi, ";"), nil
	case '+':
		l.advance(1)
		return mk(tPlus, "+"), nil
	case '*':
		l.advance(1)
		return mk(tStar, "*"), nil
	case '?':
		l.advance(1)
		return mk(tQuest, "?"), nil
	case '.':
		l.advance(1)
		return mk(tDot, "."), nil
	case '|':
		l.advance(1)
		return mk(tPipe, "|"), nil
	}
	return token{}, l.errf("unexpected character %q", b)
}

// tryMAC attempts to consume a MAC address at the current position.
func (l *lexer) tryMAC() (string, bool) {
	const macLen = 17 // XX:XX:XX:XX:XX:XX
	if l.pos+macLen > len(l.src) {
		return "", false
	}
	s := l.src[l.pos : l.pos+macLen]
	for i := 0; i < macLen; i++ {
		switch {
		case i%3 == 2:
			if s[i] != ':' {
				return "", false
			}
		default:
			if !isHex(s[i]) {
				return "", false
			}
		}
	}
	// Must not continue into a longer token.
	if l.pos+macLen < len(l.src) && (isHex(l.src[l.pos+macLen]) || l.src[l.pos+macLen] == ':') {
		return "", false
	}
	l.advance(macLen)
	return strings.ToLower(s), true
}

// lexNumber handles plain numbers, IPv4 addresses, and rates with units.
func (l *lexer) lexNumber(line, col int) (token, error) {
	j := l.pos
	for j < len(l.src) && isDigit(l.src[j]) {
		j++
	}
	// IPv4: d+.d+.d+.d+ (must check before decimals; Merlin policies do
	// not use fractional literals with trailing dots).
	if j < len(l.src) && l.src[j] == '.' && j+1 < len(l.src) && isDigit(l.src[j+1]) {
		// Attempt a dotted quad.
		k := j
		parts := 1
		for parts < 4 && k < len(l.src) && l.src[k] == '.' && k+1 < len(l.src) && isDigit(l.src[k+1]) {
			k++
			for k < len(l.src) && isDigit(l.src[k]) {
				k++
			}
			parts++
		}
		if parts == 4 {
			text := l.src[l.pos:k]
			l.advance(k - l.pos)
			return token{kind: tIP, text: text, line: line, col: col}, nil
		}
		// Decimal number: d+.d+
		k = j + 1
		for k < len(l.src) && isDigit(l.src[k]) {
			k++
		}
		j = k
	}
	numText := l.src[l.pos:j]
	// Unit suffix?
	k := j
	for k < len(l.src) && isLetter(l.src[k]) {
		k++
	}
	if k > j {
		unit := l.src[j:k]
		if k < len(l.src) && l.src[k] == '/' && k+1 < len(l.src) && l.src[k+1] == 's' {
			unit += "/s"
			k += 2
		}
		mult, ok := rateUnits[unit]
		if !ok {
			return token{}, fmt.Errorf("policy:%d:%d: unknown bandwidth unit %q", line, col, unit)
		}
		val, err := strconv.ParseFloat(numText, 64)
		if err != nil {
			return token{}, fmt.Errorf("policy:%d:%d: bad number %q", line, col, numText)
		}
		text := l.src[l.pos:k]
		l.advance(k - l.pos)
		return token{kind: tRate, text: text, rate: val * mult, line: line, col: col}, nil
	}
	l.advance(j - l.pos)
	return token{kind: tNumber, text: numText, line: line, col: col}, nil
}
