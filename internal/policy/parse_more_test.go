package policy

import (
	"testing"

	"merlin/internal/pred"
)

// A foreach template directly followed by a statement block must not
// swallow the block as part of its own template (regression: the
// template-predicate lookahead once scanned past '[').
func TestForeachFollowedByBlock(t *testing.T) {
	src := `
foreach (s,d) in cross(hs,hs): .*
[ g0 : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02) -> .* at min(1Mbps) ]
`
	pol, err := Parse(src, Env{Sets: map[string][]string{"hs": {"h1", "h2"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 3 { // 2 foreach pairs + g0
		t.Fatalf("statements = %d, want 3", len(pol.Statements))
	}
	if _, ok := pol.Statement("g0"); !ok {
		t.Fatal("g0 lost")
	}
	_, mins, err := Terms(pol.Formula)
	if err != nil || len(mins) != 1 {
		t.Fatalf("mins = %v (%v)", mins, err)
	}
}

// Multiple blocks and formulas accumulate.
func TestMultipleBlocksAndFormulas(t *testing.T) {
	src := `
[ a : tcp.dst = 80 -> .* ], max(a, 10MB/s)
[ b : tcp.dst = 22 -> .* ], max(b, 5MB/s)
`
	pol, err := Parse(src, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 2 {
		t.Fatalf("statements = %d", len(pol.Statements))
	}
	maxes, _, err := Terms(pol.Formula)
	if err != nil || len(maxes) != 2 {
		t.Fatalf("maxes = %v", maxes)
	}
}

// Statements may appear bare (outside brackets).
func TestBareStatements(t *testing.T) {
	pol, err := Parse(`a : tcp.dst = 80 -> .* dpi .* ; b : tcp.dst = 22 -> .*`, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 2 {
		t.Fatalf("statements = %d", len(pol.Statements))
	}
}

// Paths with alternation of waypoint groups parse with correct precedence.
func TestPathPrecedence(t *testing.T) {
	pol, err := Parse(`[ a : true -> .* (m1|m2) .* | .* m3 .* ]`, Env{})
	if err != nil {
		t.Fatal(err)
	}
	got := pol.Statements[0].Path.String()
	want := "(.* (m1|m2) .*|.* m3 .*)"
	if got != want {
		t.Fatalf("path = %q, want %q", got, want)
	}
}

// MAC addresses never collide with statement-identifier colons.
func TestMACVersusColonAmbiguity(t *testing.T) {
	pol, err := Parse(`[ aa : eth.src = aa:bb:cc:dd:ee:ff -> .* ]`, Env{})
	if err != nil {
		t.Fatal(err)
	}
	p := pol.Statements[0].Predicate
	if !pred.Matches(p, map[pred.Field]string{"eth.src": "aa:bb:cc:dd:ee:ff"}) {
		t.Fatal("MAC literal mangled")
	}
}
