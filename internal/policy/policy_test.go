package policy

import (
	"math"
	"strings"
	"testing"

	"merlin/internal/pred"
	"merlin/internal/regex"
)

// The running example from §2 of the paper.
const paperExample = `
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .*
  y : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 21) -> .*
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* nat .* ],
max(x + y, 50MB/s) and min(z, 100MB/s)
`

func TestParsePaperExample(t *testing.T) {
	pol, err := Parse(paperExample, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 3 {
		t.Fatalf("statements = %d, want 3", len(pol.Statements))
	}
	ids := []string{pol.Statements[0].ID, pol.Statements[1].ID, pol.Statements[2].ID}
	if ids[0] != "x" || ids[1] != "y" || ids[2] != "z" {
		t.Fatalf("ids = %v", ids)
	}
	// x's predicate matches FTP data packets.
	pkt := map[pred.Field]string{
		"eth.src": "00:00:00:00:00:01",
		"eth.dst": "00:00:00:00:00:02",
		"tcp.dst": "20",
	}
	if !pred.Matches(pol.Statements[0].Predicate, pkt) {
		t.Error("x should match FTP data packets")
	}
	if pred.Matches(pol.Statements[1].Predicate, pkt) {
		t.Error("y should not match FTP data packets")
	}
	// z's path includes dpi and nat waypoints.
	if got := pol.Statements[2].Path.String(); got != ".* dpi .* nat .*" {
		t.Errorf("z path = %q", got)
	}
	maxes, mins, err := Terms(pol.Formula)
	if err != nil {
		t.Fatal(err)
	}
	if len(maxes) != 1 || len(mins) != 1 {
		t.Fatalf("terms = %d max, %d min; want 1, 1", len(maxes), len(mins))
	}
	if maxes[0].Rate != 50*8e6 {
		t.Errorf("max rate = %v, want 50MB/s in bps", maxes[0].Rate)
	}
	if len(maxes[0].Expr.IDs) != 2 {
		t.Errorf("max ids = %v, want [x y]", maxes[0].Expr.IDs)
	}
	if mins[0].Rate != 100*8e6 {
		t.Errorf("min rate = %v", mins[0].Rate)
	}
}

func TestParseForeachSugar(t *testing.T) {
	// The §2.1 sugar example, equivalent to statement z.
	src := `
srcs := {00:00:00:00:00:01}
dsts := {00:00:00:00:00:02}
foreach (s,d) in cross(srcs,dsts):
  tcp.dst = 80 -> ( .* nat .* dpi .* ) at max(100MB/s)
`
	pol, err := Parse(src, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 1 {
		t.Fatalf("statements = %d, want 1", len(pol.Statements))
	}
	s := pol.Statements[0]
	pkt := map[pred.Field]string{
		"eth.src": "00:00:00:00:00:01",
		"eth.dst": "00:00:00:00:00:02",
		"tcp.dst": "80",
	}
	if !pred.Matches(s.Predicate, pkt) {
		t.Error("expanded statement should match the pair's web traffic")
	}
	pkt["eth.dst"] = "00:00:00:00:00:03"
	if pred.Matches(s.Predicate, pkt) {
		t.Error("expanded statement should not match other destinations")
	}
	maxes, _, err := Terms(pol.Formula)
	if err != nil {
		t.Fatal(err)
	}
	if len(maxes) != 1 || maxes[0].Rate != 100*8e6 {
		t.Fatalf("expected a single 100MB/s cap, got %v", maxes)
	}
}

func TestForeachCrossSkipsSelfPairs(t *testing.T) {
	src := `
hs := {h1, h2, h3}
foreach (s,d) in cross(hs,hs): .*
`
	pol, err := Parse(src, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 6 { // 3×3 minus 3 self-pairs
		t.Fatalf("statements = %d, want 6", len(pol.Statements))
	}
}

func TestForeachEnvSets(t *testing.T) {
	src := `foreach (s,d) in cross(hosts,hosts): .*`
	pol, err := Parse(src, Env{Sets: map[string][]string{"hosts": {"h1", "h2"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 2 {
		t.Fatalf("statements = %d, want 2", len(pol.Statements))
	}
}

func TestForeachPathVarSubstitution(t *testing.T) {
	src := `
hs := {h1, h2}
foreach (s,d) in cross(hs,hs): s .* mb .* d
`
	pol, err := Parse(src, Env{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"h1 .* mb .* h2": true, "h2 .* mb .* h1": true}
	for _, s := range pol.Statements {
		if !want[s.Path.String()] {
			t.Errorf("unexpected path %q", s.Path.String())
		}
	}
}

func TestParseIPAndProtoPredicates(t *testing.T) {
	// The §4.1 delegation example uses IP predicates and != sugar.
	src := `
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 80) -> .* log .*
  y : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 22) -> .*
  z : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and
       !(tcp.dst = 22 or tcp.dst = 80)) -> .* dpi .* ],
max(x, 50MB/s) and max(y, 25MB/s) and max(z, 25MB/s)
`
	pol, err := Parse(src, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 3 {
		t.Fatalf("statements = %d", len(pol.Statements))
	}
	pkt := map[pred.Field]string{
		"ip.src": "192.168.1.1", "ip.dst": "192.168.1.2", "tcp.dst": "443",
	}
	if !pred.Matches(pol.Statements[2].Predicate, pkt) {
		t.Error("z should match non-web, non-ssh traffic")
	}
	// ip.proto symbolic values canonicalize.
	p2, err := Parse(`[ a : ip.proto = tcp -> .* ]`, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Matches(p2.Statements[0].Predicate, map[pred.Field]string{"ip.proto": "6"}) {
		t.Error("ip.proto = tcp should canonicalize to 6")
	}
}

func TestNeqSugar(t *testing.T) {
	pol, err := Parse(`[ a : tcp.dst != 80 -> .* ]`, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Matches(pol.Statements[0].Predicate, map[pred.Field]string{"tcp.dst": "80"}) {
		t.Error("!= should exclude the value")
	}
	if !pred.Matches(pol.Statements[0].Predicate, map[pred.Field]string{"tcp.dst": "22"}) {
		t.Error("!= should admit other values")
	}
}

func TestAtMinAndMaxTogether(t *testing.T) {
	pol, err := Parse(`[ a : true -> .* at min(1MB/s) at max(2MB/s) ]`, Env{})
	if err != nil {
		t.Fatal(err)
	}
	allocs, err := Localize(pol.Formula, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := allocs["a"]
	if a.Min != 8e6 || a.Max != 16e6 {
		t.Fatalf("alloc = %+v", a)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`[ x : -> .* ]`,                        // missing predicate
		`[ x : true .* ]`,                      // missing arrow
		`[ x : true -> ]`,                      // missing path
		`[ x : true -> .*`,                     // unclosed block
		`[ and : true -> .* ]`,                 // reserved id
		`[ x : tcp.dst < 80 -> .* ]`,           // bad operator
		`[ x : true -> .* ], max(x 10)`,        // missing comma in max
		`[ x : true -> .* ], max(q, 10MB/s)`,   // unknown id in formula
		`[ x : true -> .* ; x : false -> .* ]`, // duplicate id
		`foo := { h1`,                          // unclosed set
		`[ x : true -> .* ] trailing`,          // junk
	} {
		if _, err := Parse(src, Env{}); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRateUnits(t *testing.T) {
	src := `[ a : true -> .* ], max(a, 1Gbps) and min(a, 500kbps)`
	pol, err := Parse(src, Env{})
	if err != nil {
		t.Fatal(err)
	}
	maxes, mins, err := Terms(pol.Formula)
	if err != nil {
		t.Fatal(err)
	}
	if maxes[0].Rate != 1e9 {
		t.Errorf("Gbps = %v", maxes[0].Rate)
	}
	if mins[0].Rate != 5e5 {
		t.Errorf("kbps = %v", mins[0].Rate)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
# all traffic between the pair
[ a : true -> .* ]  # catch-all
`
	if _, err := Parse(src, Env{}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalizeEqualSplit(t *testing.T) {
	// §3.1: max(x+y, 50MB/s) localizes to max(x,25MB/s) and max(y,25MB/s).
	f := Max{Expr: BandExpr{IDs: []string{"x", "y"}}, Rate: 50 * 8e6}
	allocs, err := Localize(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if allocs["x"].Max != 25*8e6 || allocs["y"].Max != 25*8e6 {
		t.Fatalf("allocs = %+v", allocs)
	}
}

func TestLocalizeWeightedSplit(t *testing.T) {
	f := Max{Expr: BandExpr{IDs: []string{"x", "y"}}, Rate: 30 * 8e6}
	allocs, err := Localize(f, WeightedSplit(map[string]float64{"x": 2, "y": 1}))
	if err != nil {
		t.Fatal(err)
	}
	if allocs["x"].Max != 20*8e6 || allocs["y"].Max != 10*8e6 {
		t.Fatalf("allocs = %+v", allocs)
	}
}

func TestLocalizeTightestWins(t *testing.T) {
	f := ConjFormula(
		Max{Expr: BandExpr{IDs: []string{"x"}}, Rate: 100},
		Max{Expr: BandExpr{IDs: []string{"x"}}, Rate: 50},
		Min{Expr: BandExpr{IDs: []string{"x"}}, Rate: 10},
		Min{Expr: BandExpr{IDs: []string{"x"}}, Rate: 20},
	)
	allocs, err := Localize(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if allocs["x"].Max != 50 || allocs["x"].Min != 20 {
		t.Fatalf("alloc = %+v", allocs["x"])
	}
}

func TestLocalizeInconsistent(t *testing.T) {
	f := ConjFormula(
		Max{Expr: BandExpr{IDs: []string{"x"}}, Rate: 10},
		Min{Expr: BandExpr{IDs: []string{"x"}}, Rate: 20},
	)
	if _, err := Localize(f, nil); err == nil {
		t.Fatal("guarantee above cap should error")
	}
}

func TestLocalizeRejectsDisjunction(t *testing.T) {
	f := FOr{Max{Expr: BandExpr{IDs: []string{"x"}}, Rate: 10},
		Max{Expr: BandExpr{IDs: []string{"x"}}, Rate: 20}}
	if _, err := Localize(f, nil); err == nil {
		t.Fatal("disjunction should not localize")
	}
}

func TestLocalizeUnmentioned(t *testing.T) {
	allocs, err := Localize(FTrue{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 0 {
		t.Fatalf("allocs = %v, want empty", allocs)
	}
	if !math.IsInf(Unconstrained.Max, 1) || Unconstrained.Min != 0 {
		t.Fatal("Unconstrained wrong")
	}
}

func TestPreprocessRequireDisjoint(t *testing.T) {
	pol := MustParse(`[ a : tcp.dst = 80 -> .* ; b : ip.proto = 6 -> .* ]`, Env{})
	if _, err := Preprocess(pol, PreprocessOptions{RequireDisjoint: true}); err == nil {
		t.Fatal("overlapping statements should be rejected")
	}
	disjoint := MustParse(`[ a : tcp.dst = 80 -> .* ; b : tcp.dst = 22 -> .* ]`, Env{})
	if _, err := Preprocess(disjoint, PreprocessOptions{RequireDisjoint: true}); err != nil {
		t.Fatal(err)
	}
}

func TestPreprocessMakeDisjoint(t *testing.T) {
	pol := MustParse(`[ a : tcp.dst = 80 -> .* ; b : ip.proto = 6 -> .* ]`, Env{})
	out, err := Preprocess(pol, PreprocessOptions{MakeDisjoint: true})
	if err != nil {
		t.Fatal(err)
	}
	// b must now exclude a's packets.
	pkt := map[pred.Field]string{"tcp.dst": "80", "ip.proto": "6"}
	if pred.Matches(out.Statements[1].Predicate, pkt) {
		t.Error("first-match rewrite failed: b still matches a's packets")
	}
	pkt2 := map[pred.Field]string{"tcp.dst": "22", "ip.proto": "6"}
	if !pred.Matches(out.Statements[1].Predicate, pkt2) {
		t.Error("b should still match its own packets")
	}
	// The original policy is unchanged.
	if !pred.Matches(pol.Statements[1].Predicate, pkt) {
		t.Error("Preprocess mutated its input")
	}
}

func TestPreprocessAddDefault(t *testing.T) {
	pol := MustParse(`[ a : tcp.dst = 80 -> .* ]`, Env{})
	out, err := Preprocess(pol, PreprocessOptions{AddDefault: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Statements) != 2 {
		t.Fatalf("statements = %d, want 2", len(out.Statements))
	}
	def := out.Statements[1]
	if def.ID != DefaultStatementID {
		t.Fatalf("default id = %q", def.ID)
	}
	if pred.Matches(def.Predicate, map[pred.Field]string{"tcp.dst": "80"}) {
		t.Error("default should not match classified packets")
	}
	if !pred.Matches(def.Predicate, map[pred.Field]string{"tcp.dst": "22"}) {
		t.Error("default should match unclassified packets")
	}
	// A total policy gains no default.
	total := MustParse(`[ a : true -> .* ]`, Env{})
	out2, err := Preprocess(total, PreprocessOptions{AddDefault: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Statements) != 1 {
		t.Fatalf("total policy gained a default")
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	pol := MustParse(paperExample, Env{})
	rendered := pol.String()
	re, err := Parse(rendered, Env{})
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", rendered, err)
	}
	if len(re.Statements) != len(pol.Statements) {
		t.Fatalf("round trip lost statements")
	}
	for i := range re.Statements {
		eq, err := regex.Equivalent(re.Statements[i].Path, pol.Statements[i].Path)
		if err != nil || !eq {
			t.Fatalf("statement %d path changed: %v", i, err)
		}
		same, err := pred.Equivalent(re.Statements[i].Predicate, pol.Statements[i].Predicate)
		if err != nil || !same {
			t.Fatalf("statement %d predicate changed", i)
		}
	}
}

func TestFormatRate(t *testing.T) {
	for _, tc := range []struct {
		bps  float64
		want string
	}{
		{50 * 8e6, "50MB/s"},
		{8e9, "1GB/s"},
		{1e6, "1Mbps"},
		{5e5, "500kbps"},
		{42, "42bps"},
	} {
		if got := FormatRate(tc.bps); got != tc.want {
			t.Errorf("FormatRate(%v) = %q, want %q", tc.bps, got, tc.want)
		}
	}
}

func TestStatementLookup(t *testing.T) {
	pol := MustParse(paperExample, Env{})
	if _, ok := pol.Statement("y"); !ok {
		t.Error("Statement(y) not found")
	}
	if _, ok := pol.Statement("nope"); ok {
		t.Error("Statement(nope) found")
	}
}

func TestValidateFormulaUnknownID(t *testing.T) {
	pol := &Policy{
		Statements: []Statement{{ID: "a", Predicate: pred.True, Path: regex.Any{}}},
		Formula:    Max{Expr: BandExpr{IDs: []string{"ghost"}}, Rate: 1},
	}
	if err := pol.Validate(); err == nil {
		t.Fatal("unknown formula id should fail validation")
	}
}

func TestClassifyValue(t *testing.T) {
	if ClassifyValue("00:00:00:00:00:01") != ValueMAC {
		t.Error("MAC misclassified")
	}
	if ClassifyValue("10.0.0.1") != ValueIP {
		t.Error("IP misclassified")
	}
	if ClassifyValue("h1") != ValueName {
		t.Error("name misclassified")
	}
	if ClassifyValue("a.b.c.d") != ValueName {
		t.Error("dotted name misclassified as IP")
	}
}

func TestFormulaOrNotStrings(t *testing.T) {
	f := FNot{FOr{Max{Expr: BandExpr{IDs: []string{"x"}}, Rate: 8e6},
		Min{Expr: BandExpr{IDs: []string{"y"}}, Rate: 8e6}}}
	got := f.String()
	if !strings.Contains(got, "or") || !strings.Contains(got, "!") {
		t.Errorf("formula string = %q", got)
	}
}

func BenchmarkParsePaperExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(paperExample, Env{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpandAllPairs(b *testing.B) {
	hosts := make([]string, 40)
	for i := range hosts {
		hosts[i] = "h" + string(rune('a'+i/26)) + string(rune('a'+i%26))
	}
	env := Env{Sets: map[string][]string{"hosts": hosts}}
	src := `foreach (s,d) in cross(hosts,hosts): .*`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src, env); err != nil {
			b.Fatal(err)
		}
	}
}
