// Package policy implements the Merlin policy language (Figure 1 of the
// paper): statements binding an identifier to a packet predicate and a
// path regular expression, plus a Presburger-arithmetic bandwidth formula
// over the identifiers. The package provides the concrete-syntax parser,
// the syntactic sugar expander (set literals, cross, foreach, at-rates),
// the pre-processor that enforces disjointness and totality (§2.1), and
// the formula localizer (§3.1).
package policy

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"merlin/internal/pred"
	"merlin/internal/regex"
)

// Statement is one policy statement "id : predicate -> path".
type Statement struct {
	ID        string
	Predicate pred.Pred
	Path      regex.Expr
}

// String renders the statement in concrete syntax.
func (s Statement) String() string {
	return fmt.Sprintf("%s : (%s) -> %s", s.ID, pred.Format(s.Predicate), s.Path.String())
}

// Policy is a parsed Merlin policy: statements plus a bandwidth formula.
type Policy struct {
	Statements []Statement
	Formula    Formula
}

// Statement returns the statement with the given identifier.
func (p *Policy) Statement(id string) (Statement, bool) {
	for _, s := range p.Statements {
		if s.ID == id {
			return s, true
		}
	}
	return Statement{}, false
}

// String renders the policy in concrete syntax.
func (p *Policy) String() string {
	var sb strings.Builder
	sb.WriteString("[")
	for i, s := range p.Statements {
		if i > 0 {
			sb.WriteString(";\n ")
		}
		sb.WriteString(s.String())
	}
	sb.WriteString("]")
	if p.Formula != nil {
		if _, ok := p.Formula.(FTrue); !ok {
			sb.WriteString(",\n")
			sb.WriteString(p.Formula.String())
		}
	}
	return sb.String()
}

// Formula is a Presburger bandwidth formula (Figure 1: φ).
type Formula interface {
	String() string
	isFormula()
}

// FTrue is the trivial formula (no bandwidth constraints).
type FTrue struct{}

// BandExpr is a bandwidth term: a sum of statement identifiers plus a
// constant number of bits per second (Figure 1: e).
type BandExpr struct {
	IDs   []string
	Const float64
}

// Max constrains the aggregate rate of the expression to at most Rate
// (a bandwidth cap).
type Max struct {
	Expr BandExpr
	Rate float64 // bits per second
}

// Min guarantees the aggregate rate of the expression at least Rate.
type Min struct {
	Expr BandExpr
	Rate float64 // bits per second
}

// FAnd is conjunction of formulas.
type FAnd struct{ L, R Formula }

// FOr is disjunction of formulas.
type FOr struct{ L, R Formula }

// FNot is negation of a formula.
type FNot struct{ F Formula }

func (FTrue) isFormula() {}
func (Max) isFormula()   {}
func (Min) isFormula()   {}
func (FAnd) isFormula()  {}
func (FOr) isFormula()   {}
func (FNot) isFormula()  {}

func (FTrue) String() string { return "true" }

func (e BandExpr) String() string {
	parts := append([]string(nil), e.IDs...)
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, FormatRate(e.Const))
	}
	return strings.Join(parts, " + ")
}

func (m Max) String() string {
	return fmt.Sprintf("max(%s, %s)", m.Expr.String(), FormatRate(m.Rate))
}

func (m Min) String() string {
	return fmt.Sprintf("min(%s, %s)", m.Expr.String(), FormatRate(m.Rate))
}

func (f FAnd) String() string { return f.L.String() + " and " + f.R.String() }
func (f FOr) String() string  { return "(" + f.L.String() + " or " + f.R.String() + ")" }
func (f FNot) String() string { return "!(" + f.F.String() + ")" }

// ConjFormula folds formulas into nested conjunctions, dropping FTrue.
func ConjFormula(fs ...Formula) Formula {
	var out Formula = FTrue{}
	for _, f := range fs {
		if f == nil {
			continue
		}
		if _, ok := f.(FTrue); ok {
			continue
		}
		if _, ok := out.(FTrue); ok {
			out = f
		} else {
			out = FAnd{out, f}
		}
	}
	return out
}

// Terms flattens a conjunction-only formula into its max/min terms. It
// returns an error for formulas using or/not, which have no canonical
// localization (§3.1 localizes conjunctions of terms; the negotiator
// fragment of §4 likewise manipulates conjunctions).
func Terms(f Formula) (maxes []Max, mins []Min, err error) {
	switch t := f.(type) {
	case nil, FTrue:
		return nil, nil, nil
	case Max:
		return []Max{t}, nil, nil
	case Min:
		return nil, []Min{t}, nil
	case FAnd:
		lmax, lmin, err := Terms(t.L)
		if err != nil {
			return nil, nil, err
		}
		rmax, rmin, err := Terms(t.R)
		if err != nil {
			return nil, nil, err
		}
		return append(lmax, rmax...), append(lmin, rmin...), nil
	default:
		return nil, nil, fmt.Errorf("policy: formula %s is not a conjunction of max/min terms", f)
	}
}

// FormulaIDs returns the sorted set of statement identifiers a formula
// mentions.
func FormulaIDs(f Formula) []string {
	set := map[string]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch t := f.(type) {
		case Max:
			for _, id := range t.Expr.IDs {
				set[id] = true
			}
		case Min:
			for _, id := range t.Expr.IDs {
				set[id] = true
			}
		case FAnd:
			walk(t.L)
			walk(t.R)
		case FOr:
			walk(t.L)
			walk(t.R)
		case FNot:
			walk(t.F)
		}
	}
	walk(f)
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// FormatRate renders a bit-per-second rate using the policy units.
func FormatRate(bps float64) string {
	abs := math.Abs(bps)
	switch {
	case abs >= 8e9 && math.Mod(bps, 8e9) == 0:
		return fmt.Sprintf("%gGB/s", bps/8e9)
	case abs >= 8e6 && math.Mod(bps, 8e6) == 0:
		return fmt.Sprintf("%gMB/s", bps/8e6)
	case abs >= 1e9 && math.Mod(bps, 1e9) == 0:
		return fmt.Sprintf("%gGbps", bps/1e9)
	case abs >= 1e6 && math.Mod(bps, 1e6) == 0:
		return fmt.Sprintf("%gMbps", bps/1e6)
	case abs >= 1e3 && math.Mod(bps, 1e3) == 0:
		return fmt.Sprintf("%gkbps", bps/1e3)
	default:
		return fmt.Sprintf("%gbps", bps)
	}
}

// Validate checks structural well-formedness: unique statement IDs and
// formula identifiers referring to existing statements.
func (p *Policy) Validate() error {
	seen := map[string]bool{}
	for _, s := range p.Statements {
		if s.ID == "" {
			return fmt.Errorf("policy: statement with empty identifier")
		}
		if seen[s.ID] {
			return fmt.Errorf("policy: duplicate statement identifier %q", s.ID)
		}
		seen[s.ID] = true
		if s.Predicate == nil {
			return fmt.Errorf("policy: statement %q has no predicate", s.ID)
		}
		if s.Path == nil {
			return fmt.Errorf("policy: statement %q has no path expression", s.ID)
		}
	}
	for _, id := range FormulaIDs(p.Formula) {
		if !seen[id] {
			return fmt.Errorf("policy: formula references unknown statement %q", id)
		}
	}
	return nil
}
