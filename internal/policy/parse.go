package policy

import (
	"fmt"
	"strings"

	"merlin/internal/pred"
	"merlin/internal/regex"
)

// File is a parsed policy source before syntactic-sugar expansion: set
// bindings, statements, foreach loops, and the trailing bandwidth formula.
type File struct {
	Bindings []Binding
	Items    []Item
	Formula  Formula
}

// Binding is a set literal binding, "name := { v1, v2, ... }".
type Binding struct {
	Name  string
	Items []string
}

// Item is a statement-producing element of a policy file.
type Item interface{ isItem() }

// StmtItem is a literal statement, optionally with an inline "at" rate.
type StmtItem struct {
	Stmt  Statement
	AtMax float64 // bits/s cap from "at max(...)"; 0 = none
	AtMin float64 // bits/s guarantee from "at min(...)"; 0 = none
}

// ForeachItem is the "foreach (s,d) in cross(A,B): ..." sugar (§2.1).
type ForeachItem struct {
	VarSrc, VarDst string
	SetSrc, SetDst string
	Predicate      pred.Pred // nil when the template has no predicate
	Path           regex.Expr
	AtMax          float64
	AtMin          float64
}

func (StmtItem) isItem()    {}
func (ForeachItem) isItem() {}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) peek2() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("policy:%d:%d: expected %s, found %s", t.line, t.col, k, t)
	}
	return t, nil
}

// reserved words that cannot be statement identifiers or locations.
var reserved = map[string]bool{
	"and": true, "or": true, "max": true, "min": true, "at": true,
	"foreach": true, "in": true, "cross": true, "true": true, "false": true,
}

// ParseFile parses policy source into its pre-expansion form.
func ParseFile(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for {
		t := p.peek()
		switch {
		case t.kind == tEOF:
			return f, nil
		case t.kind == tIdent && p.peek2().kind == tAssign:
			b, err := p.binding()
			if err != nil {
				return nil, err
			}
			f.Bindings = append(f.Bindings, b)
		case t.kind == tIdent && t.text == "foreach":
			fe, err := p.foreach()
			if err != nil {
				return nil, err
			}
			f.Items = append(f.Items, fe)
		case t.kind == tLBracket:
			items, err := p.block()
			if err != nil {
				return nil, err
			}
			f.Items = append(f.Items, items...)
		case t.kind == tIdent && p.peek2().kind == tColon:
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			f.Items = append(f.Items, st)
		case t.kind == tComma:
			p.next()
			form, err := p.formula()
			if err != nil {
				return nil, err
			}
			f.Formula = ConjFormula(f.Formula, form)
		case t.kind == tSemi:
			p.next()
		default:
			return nil, fmt.Errorf("policy:%d:%d: unexpected %s", t.line, t.col, t)
		}
	}
}

func (p *parser) binding() (Binding, error) {
	name := p.next().text
	if reserved[name] {
		return Binding{}, fmt.Errorf("policy: %q is a reserved word", name)
	}
	if _, err := p.expect(tAssign); err != nil {
		return Binding{}, err
	}
	if _, err := p.expect(tLBrace); err != nil {
		return Binding{}, err
	}
	var items []string
	for {
		t := p.next()
		switch t.kind {
		case tRBrace:
			return Binding{Name: name, Items: items}, nil
		case tMAC, tIP, tNumber, tIdent:
			items = append(items, t.text)
		case tComma:
			// separator
		default:
			return Binding{}, fmt.Errorf("policy:%d:%d: unexpected %s in set literal", t.line, t.col, t)
		}
	}
}

// block parses '[' statements ']'.
func (p *parser) block() ([]Item, error) {
	if _, err := p.expect(tLBracket); err != nil {
		return nil, err
	}
	var items []Item
	for {
		t := p.peek()
		switch {
		case t.kind == tRBracket:
			p.next()
			return items, nil
		case t.kind == tSemi:
			p.next()
		case t.kind == tIdent && t.text == "foreach":
			fe, err := p.foreach()
			if err != nil {
				return nil, err
			}
			items = append(items, fe)
		case t.kind == tIdent && p.peek2().kind == tColon:
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			items = append(items, st)
		default:
			return nil, fmt.Errorf("policy:%d:%d: unexpected %s in statement block", t.line, t.col, t)
		}
	}
}

// statement parses "id : pred -> path [at max/min(rate)]".
func (p *parser) statement() (StmtItem, error) {
	id := p.next().text
	if reserved[id] {
		return StmtItem{}, fmt.Errorf("policy: %q is a reserved word", id)
	}
	if _, err := p.expect(tColon); err != nil {
		return StmtItem{}, err
	}
	pr, err := p.predicate()
	if err != nil {
		return StmtItem{}, err
	}
	if _, err := p.expect(tArrow); err != nil {
		return StmtItem{}, err
	}
	path, err := p.path()
	if err != nil {
		return StmtItem{}, err
	}
	item := StmtItem{Stmt: Statement{ID: id, Predicate: pr, Path: path}}
	if err := p.atClause(&item.AtMax, &item.AtMin); err != nil {
		return StmtItem{}, err
	}
	return item, nil
}

// atClause parses an optional "at max(rate)" / "at min(rate)" suffix, which
// may repeat (e.g. "at min(1MB/s) at max(1GB/s)").
func (p *parser) atClause(maxOut, minOut *float64) error {
	for p.peek().kind == tIdent && p.peek().text == "at" {
		p.next()
		kw := p.next()
		if kw.kind != tIdent || (kw.text != "max" && kw.text != "min") {
			return fmt.Errorf("policy:%d:%d: expected max or min after 'at'", kw.line, kw.col)
		}
		if _, err := p.expect(tLParen); err != nil {
			return err
		}
		rate, err := p.rate()
		if err != nil {
			return err
		}
		if _, err := p.expect(tRParen); err != nil {
			return err
		}
		if kw.text == "max" {
			*maxOut = rate
		} else {
			*minOut = rate
		}
	}
	return nil
}

func (p *parser) rate() (float64, error) {
	t := p.next()
	switch t.kind {
	case tRate:
		return t.rate, nil
	case tNumber:
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			return 0, fmt.Errorf("policy:%d:%d: bad rate %q", t.line, t.col, t.text)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("policy:%d:%d: expected a rate, found %s", t.line, t.col, t)
	}
}

// foreach parses the cross-product iteration sugar.
func (p *parser) foreach() (ForeachItem, error) {
	p.next() // 'foreach'
	if _, err := p.expect(tLParen); err != nil {
		return ForeachItem{}, err
	}
	vs, err := p.expect(tIdent)
	if err != nil {
		return ForeachItem{}, err
	}
	if _, err := p.expect(tComma); err != nil {
		return ForeachItem{}, err
	}
	vd, err := p.expect(tIdent)
	if err != nil {
		return ForeachItem{}, err
	}
	if _, err := p.expect(tRParen); err != nil {
		return ForeachItem{}, err
	}
	in, err := p.expect(tIdent)
	if err != nil || in.text != "in" {
		return ForeachItem{}, fmt.Errorf("policy:%d:%d: expected 'in'", in.line, in.col)
	}
	cross, err := p.expect(tIdent)
	if err != nil || cross.text != "cross" {
		return ForeachItem{}, fmt.Errorf("policy:%d:%d: expected 'cross'", cross.line, cross.col)
	}
	if _, err := p.expect(tLParen); err != nil {
		return ForeachItem{}, err
	}
	ss, err := p.expect(tIdent)
	if err != nil {
		return ForeachItem{}, err
	}
	if _, err := p.expect(tComma); err != nil {
		return ForeachItem{}, err
	}
	sd, err := p.expect(tIdent)
	if err != nil {
		return ForeachItem{}, err
	}
	if _, err := p.expect(tRParen); err != nil {
		return ForeachItem{}, err
	}
	if _, err := p.expect(tColon); err != nil {
		return ForeachItem{}, err
	}
	item := ForeachItem{VarSrc: vs.text, VarDst: vd.text, SetSrc: ss.text, SetDst: sd.text}
	// The template may or may not begin with a predicate; scan ahead for
	// '->' before any statement/block terminator to decide.
	if p.hasArrowAhead() {
		pr, err := p.predicate()
		if err != nil {
			return ForeachItem{}, err
		}
		item.Predicate = pr
		if _, err := p.expect(tArrow); err != nil {
			return ForeachItem{}, err
		}
	}
	path, err := p.path()
	if err != nil {
		return ForeachItem{}, err
	}
	item.Path = path
	if err := p.atClause(&item.AtMax, &item.AtMin); err != nil {
		return ForeachItem{}, err
	}
	return item, nil
}

// hasArrowAhead scans forward (respecting nothing fancy — terminators are
// never nested) for '->' before ';', ']', ',' or EOF.
func (p *parser) hasArrowAhead() bool {
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].kind {
		case tArrow:
			return true
		case tSemi, tRBracket, tLBracket, tComma, tEOF:
			return false
		}
	}
	return false
}

// predicate grammar: or-pred with and/!, atoms field=value, field!=value,
// true, false, parenthesized.
func (p *parser) predicate() (pred.Pred, error) {
	return p.predOr()
}

func (p *parser) predOr() (pred.Pred, error) {
	l, err := p.predAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tIdent && p.peek().text == "or" {
		p.next()
		r, err := p.predAnd()
		if err != nil {
			return nil, err
		}
		l = pred.Disj(l, r)
	}
	return l, nil
}

func (p *parser) predAnd() (pred.Pred, error) {
	l, err := p.predUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tIdent && p.peek().text == "and" {
		p.next()
		r, err := p.predUnary()
		if err != nil {
			return nil, err
		}
		l = pred.Conj(l, r)
	}
	return l, nil
}

func (p *parser) predUnary() (pred.Pred, error) {
	if p.peek().kind == tBang {
		p.next()
		inner, err := p.predUnary()
		if err != nil {
			return nil, err
		}
		return pred.Negate(inner), nil
	}
	return p.predAtom()
}

func (p *parser) predAtom() (pred.Pred, error) {
	t := p.peek()
	switch {
	case t.kind == tLParen:
		p.next()
		inner, err := p.predOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tIdent && t.text == "true":
		p.next()
		return pred.True, nil
	case t.kind == tIdent && t.text == "false":
		p.next()
		return pred.False, nil
	case t.kind == tIdent:
		return p.fieldTest()
	default:
		return nil, fmt.Errorf("policy:%d:%d: expected a predicate, found %s", t.line, t.col, t)
	}
}

// fieldTest parses "proto.field = value" or "field != value".
func (p *parser) fieldTest() (pred.Pred, error) {
	first := p.next()
	field := first.text
	if p.peek().kind == tDot {
		p.next()
		second, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		field = first.text + "." + second.text
	}
	op := p.next()
	if op.kind != tEq && op.kind != tNeq {
		return nil, fmt.Errorf("policy:%d:%d: expected = or != after field %s", op.line, op.col, field)
	}
	v := p.next()
	switch v.kind {
	case tNumber, tMAC, tIP, tIdent:
		// ok
	default:
		return nil, fmt.Errorf("policy:%d:%d: expected a value, found %s", v.line, v.col, v)
	}
	value := canonicalValue(field, v.text)
	var atom pred.Pred = pred.Test{Field: pred.Field(field), Value: value}
	if op.kind == tNeq {
		atom = pred.Negate(atom)
	}
	return atom, nil
}

// protoNumbers canonicalizes symbolic ip.proto values (the paper writes
// "ip.proto = tcp").
var protoNumbers = map[string]string{
	"icmp": "1", "tcp": "6", "udp": "17",
}

func canonicalValue(field, value string) string {
	if field == "ip.proto" {
		if n, ok := protoNumbers[strings.ToLower(value)]; ok {
			return n
		}
	}
	return strings.ToLower(value)
}

// path parses a path regular expression from the token stream. It stops at
// statement terminators, the 'at' keyword, or any token that cannot start
// a path element.
func (p *parser) path() (regex.Expr, error) {
	return p.pathAlt()
}

func (p *parser) pathAlt() (regex.Expr, error) {
	l, err := p.pathCat()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tPipe {
		p.next()
		r, err := p.pathCat()
		if err != nil {
			return nil, err
		}
		l = regex.Alt{L: l, R: r}
	}
	return l, nil
}

// startsPath reports whether the parser is positioned at a path element,
// honoring statement boundaries ("ident :" starts the next statement) and
// the reserved 'at' keyword.
func (p *parser) startsPath() bool {
	t := p.peek()
	switch t.kind {
	case tDot, tBang, tLParen:
		return true
	case tIdent:
		if t.text == "at" || reserved[t.text] {
			return false
		}
		return p.peek2().kind != tColon
	default:
		return false
	}
}

func (p *parser) pathCat() (regex.Expr, error) {
	l, err := p.pathUnary()
	if err != nil {
		return nil, err
	}
	for p.startsPath() {
		r, err := p.pathUnary()
		if err != nil {
			return nil, err
		}
		l = regex.Concat{L: l, R: r}
	}
	return l, nil
}

func (p *parser) pathUnary() (regex.Expr, error) {
	if p.peek().kind == tBang {
		p.next()
		inner, err := p.pathUnary()
		if err != nil {
			return nil, err
		}
		return regex.Not{X: inner}, nil
	}
	return p.pathPostfix()
}

func (p *parser) pathPostfix() (regex.Expr, error) {
	e, err := p.pathPrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tStar:
			p.next()
			e = regex.Star{X: e}
		case tPlus:
			p.next()
			e = regex.Concat{L: e, R: regex.Star{X: e}}
		case tQuest:
			p.next()
			e = regex.Alt{L: e, R: regex.Epsilon{}}
		default:
			return e, nil
		}
	}
}

func (p *parser) pathPrimary() (regex.Expr, error) {
	t := p.next()
	switch t.kind {
	case tIdent:
		if reserved[t.text] {
			return nil, fmt.Errorf("policy:%d:%d: %q is reserved and cannot name a location", t.line, t.col, t.text)
		}
		return regex.Sym{Name: t.text}, nil
	case tMAC, tIP, tNumber:
		// Host identities may appear directly in paths (the foreach sugar
		// substitutes set members into path templates).
		return regex.Sym{Name: t.text}, nil
	case tDot:
		return regex.Any{}, nil
	case tLParen:
		e, err := p.pathAlt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("policy:%d:%d: expected a path element, found %s", t.line, t.col, t)
	}
}

// formula grammar: or/and/! over max(e,n), min(e,n), true.
func (p *parser) formula() (Formula, error) {
	return p.formulaOr()
}

func (p *parser) formulaOr() (Formula, error) {
	l, err := p.formulaAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tIdent && p.peek().text == "or" {
		p.next()
		r, err := p.formulaAnd()
		if err != nil {
			return nil, err
		}
		l = FOr{l, r}
	}
	return l, nil
}

func (p *parser) formulaAnd() (Formula, error) {
	l, err := p.formulaUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tIdent && p.peek().text == "and" {
		p.next()
		r, err := p.formulaUnary()
		if err != nil {
			return nil, err
		}
		l = FAnd{l, r}
	}
	return l, nil
}

func (p *parser) formulaUnary() (Formula, error) {
	t := p.peek()
	switch {
	case t.kind == tBang:
		p.next()
		inner, err := p.formulaUnary()
		if err != nil {
			return nil, err
		}
		return FNot{inner}, nil
	case t.kind == tLParen:
		p.next()
		inner, err := p.formulaOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tIdent && t.text == "true":
		p.next()
		return FTrue{}, nil
	case t.kind == tIdent && (t.text == "max" || t.text == "min"):
		p.next()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		expr, err := p.bandExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tComma); err != nil {
			return nil, err
		}
		rate, err := p.rate()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		if t.text == "max" {
			return Max{Expr: expr, Rate: rate}, nil
		}
		return Min{Expr: expr, Rate: rate}, nil
	default:
		return nil, fmt.Errorf("policy:%d:%d: expected a formula, found %s", t.line, t.col, t)
	}
}

// bandExpr parses "x + y + 10MB/s"-style bandwidth sums.
func (p *parser) bandExpr() (BandExpr, error) {
	var e BandExpr
	for {
		t := p.next()
		switch t.kind {
		case tIdent:
			if reserved[t.text] {
				return e, fmt.Errorf("policy:%d:%d: %q is reserved", t.line, t.col, t.text)
			}
			e.IDs = append(e.IDs, t.text)
		case tRate:
			e.Const += t.rate
		case tNumber:
			var v float64
			fmt.Sscanf(t.text, "%g", &v)
			e.Const += v
		default:
			return e, fmt.Errorf("policy:%d:%d: expected identifier or rate, found %s", t.line, t.col, t)
		}
		if p.peek().kind != tPlus {
			return e, nil
		}
		p.next()
	}
}
