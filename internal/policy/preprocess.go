package policy

import (
	"fmt"

	"merlin/internal/pred"
	"merlin/internal/regex"
)

// DefaultStatementID names the catch-all statement the pre-processor adds
// for totality.
const DefaultStatementID = "default"

// PreprocessOptions configure the §2.1 pre-processor.
type PreprocessOptions struct {
	// MakeDisjoint rewrites overlapping predicates into first-match
	// semantics (statement i keeps only packets matched by no earlier
	// statement) instead of rejecting the policy.
	MakeDisjoint bool
	// RequireDisjoint, when MakeDisjoint is false, errors on overlap.
	// When both are false overlaps are silently allowed (useful for
	// delegated sub-policies that deliberately share parents' scopes).
	RequireDisjoint bool
	// AddDefault appends a best-effort ".*" statement matching all
	// packets no other statement classifies, making the policy total.
	AddDefault bool
}

// Preprocess enforces the language's well-formedness requirements: the
// statements of a policy must have pairwise-disjoint predicates and
// together match all packets (§2.1). The input policy is not modified; a
// rewritten copy is returned.
func Preprocess(p *Policy, opts PreprocessOptions) (*Policy, error) {
	out := &Policy{
		Statements: append([]Statement(nil), p.Statements...),
		Formula:    p.Formula,
	}
	if opts.MakeDisjoint {
		var earlier []pred.Pred
		for i, s := range out.Statements {
			if len(earlier) > 0 {
				refined := pred.Conj(s.Predicate, pred.Negate(pred.Disj(earlier...)))
				out.Statements[i].Predicate = refined
			}
			earlier = append(earlier, s.Predicate)
		}
	} else if opts.RequireDisjoint {
		preds := make([]pred.Pred, len(out.Statements))
		for i, s := range out.Statements {
			preds[i] = s.Predicate
		}
		ok, i, j, err := pred.PairwiseDisjoint(preds)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("policy: statements %q and %q have overlapping predicates",
				out.Statements[i].ID, out.Statements[j].ID)
		}
	}
	if opts.AddDefault {
		preds := make([]pred.Pred, len(out.Statements))
		for i, s := range out.Statements {
			preds[i] = s.Predicate
		}
		total, err := pred.Covers(pred.True, preds)
		if err != nil {
			return nil, err
		}
		if !total {
			for _, s := range out.Statements {
				if s.ID == DefaultStatementID {
					return nil, fmt.Errorf("policy: cannot add default statement: identifier %q already used", DefaultStatementID)
				}
			}
			out.Statements = append(out.Statements, Statement{
				ID:        DefaultStatementID,
				Predicate: pred.Negate(pred.Disj(preds...)),
				Path:      regex.Star{X: regex.Any{}},
			})
		}
	}
	return out, nil
}
