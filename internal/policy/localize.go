package policy

import (
	"fmt"
	"math"
)

// Alloc is the localized bandwidth allocation for one statement after
// formula localization (§3.1): a per-statement cap and guarantee.
type Alloc struct {
	// Max is the bandwidth cap in bits/s; +Inf when unconstrained.
	Max float64
	// Min is the guaranteed bandwidth in bits/s; 0 when none.
	Min float64
}

// Unconstrained is the allocation of a statement no formula term mentions.
var Unconstrained = Alloc{Max: math.Inf(1), Min: 0}

// SplitFunc divides an aggregate rate across the identifiers of a term.
// The returned shares must sum to at most rate for caps (and at least rate
// for guarantees to remain faithful); Localize verifies the sum matches.
type SplitFunc func(ids []string, rate float64) map[string]float64

// EqualSplit divides the rate equally — the compiler's default (§3.1).
func EqualSplit(ids []string, rate float64) map[string]float64 {
	out := make(map[string]float64, len(ids))
	share := rate / float64(len(ids))
	for _, id := range ids {
		out[id] = share
	}
	return out
}

// WeightedSplit builds a SplitFunc dividing rates proportionally to the
// given weights (identifiers without a weight get weight 1).
func WeightedSplit(weights map[string]float64) SplitFunc {
	return func(ids []string, rate float64) map[string]float64 {
		total := 0.0
		for _, id := range ids {
			w := weights[id]
			if w <= 0 {
				w = 1
			}
			total += w
		}
		out := make(map[string]float64, len(ids))
		for _, id := range ids {
			w := weights[id]
			if w <= 0 {
				w = 1
			}
			out[id] = rate * w / total
		}
		return out
	}
}

// Localize rewrites a global bandwidth formula into per-statement local
// allocations (§3.1): a term over n identifiers becomes n single-identifier
// terms whose conjunction implies the original. Aggregate caps are divided
// by the split function; guarantees likewise. Terms with constant offsets
// subtract the constant before splitting. Only conjunctions of max/min
// terms are localizable.
//
// When several terms constrain the same statement, the tightest cap and
// the largest guarantee win.
func Localize(f Formula, split SplitFunc) (map[string]Alloc, error) {
	if split == nil {
		split = EqualSplit
	}
	maxes, mins, err := Terms(f)
	if err != nil {
		return nil, err
	}
	out := map[string]Alloc{}
	get := func(id string) Alloc {
		if a, ok := out[id]; ok {
			return a
		}
		return Unconstrained
	}
	for _, m := range maxes {
		if len(m.Expr.IDs) == 0 {
			continue
		}
		rate := m.Rate - m.Expr.Const
		if rate < 0 {
			return nil, fmt.Errorf("policy: cap %s is below its constant term", m)
		}
		for id, share := range split(m.Expr.IDs, rate) {
			a := get(id)
			if share < a.Max {
				a.Max = share
			}
			out[id] = a
		}
	}
	for _, m := range mins {
		if len(m.Expr.IDs) == 0 {
			continue
		}
		rate := m.Rate - m.Expr.Const
		if rate <= 0 {
			continue // guarantee already satisfied by the constant
		}
		for id, share := range split(m.Expr.IDs, rate) {
			a := get(id)
			if share > a.Min {
				a.Min = share
			}
			out[id] = a
		}
	}
	// Sanity: a statement's guarantee must not exceed its cap.
	for id, a := range out {
		if a.Min > a.Max {
			return nil, fmt.Errorf("policy: statement %q guaranteed %s but capped at %s",
				id, FormatRate(a.Min), FormatRate(a.Max))
		}
	}
	return out, nil
}
