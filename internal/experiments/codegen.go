package experiments

import (
	"fmt"
	"time"

	"merlin/internal/codegen"
	"merlin/internal/logical"
	"merlin/internal/p4"
	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/regex"
	"merlin/internal/sinktree"
	"merlin/internal/topo"
)

// codegenTargets is the backend set the codegen bench fans one lowered
// IR out over: the four built-ins plus P4.
func codegenTargets() []string { return append(codegen.DefaultTargets(), p4.Name) }

// codegenWorkload builds the lowering benchmark's plan set directly at
// the codegen layer: an all-pairs best-effort mesh over a k-ary fat tree
// (one sink tree per destination, destination-classified), a slice of
// queue-reserving guaranteed paths, and host-side caps — every IR
// section populated, at Fig. 4 scale, without paying the provisioning
// phases the codegen measurement must not include.
func codegenWorkload(k, guarantees int) (*topo.Topology, []codegen.Plan, error) {
	t := topo.FatTree(k, topo.Gbps)
	alpha := logical.Alphabet(t)
	g, err := logical.BuildMinimized(t, regex.MustParse(".*"), alpha)
	if err != nil {
		return nil, nil, err
	}
	hosts := t.Hosts()
	ids := t.Identities()
	pair := func(src, dst topo.NodeID) pred.Pred {
		si, _ := ids.Of(src)
		di, _ := ids.Of(dst)
		return pred.Conj(
			pred.Test{Field: "eth.src", Value: si.MAC},
			pred.Test{Field: "eth.dst", Value: di.MAC},
		)
	}
	var plans []codegen.Plan
	n := 0
	prio := len(hosts) * len(hosts)
	for _, dst := range hosts {
		tree, err := sinktree.TreeTo(g, dst)
		if err != nil {
			return nil, nil, err
		}
		for _, src := range hosts {
			if src == dst {
				continue
			}
			p := codegen.Plan{
				ID: fmt.Sprintf("s%d", n), Predicate: pair(src, dst),
				Priority: prio - n, Alloc: policy.Unconstrained,
				Classify: codegen.ByDestination, SrcHost: src, DstHost: dst,
			}
			if n < guarantees {
				// Guaranteed slice: a concrete provisioned path with a
				// queue-reserving rate and a host-side cap.
				steps := tree.PathFrom(src)
				if steps == nil {
					return nil, nil, fmt.Errorf("no path %d->%d", src, dst)
				}
				p.Path = steps
				p.Classify = codegen.ByPredicate
				p.Alloc = policy.Alloc{Min: 10e6, Max: 100e6}
			} else {
				p.Tree = tree
			}
			plans = append(plans, p)
			n++
		}
	}
	return t, plans, nil
}

// Codegen measures the payoff of the target-neutral IR: emitting N
// backends from one lowered Program versus lowering once per target —
// what a per-target monolithic generator (the pre-registry design) would
// have to do to support the same target set. The ratio is a same-machine
// speedup, so the CI gate can hold a floor on it.
func Codegen() ([]Row, error) {
	return codegenRun(6, 32, 5)
}

// codegenRun measures one configuration; reps ≥ 3 recommended — the
// fastest rep is reported for both arms, which is the standard
// best-of-N treatment for sub-second microbenches on noisy runners.
func codegenRun(k, guarantees, reps int) ([]Row, error) {
	t, plans, err := codegenWorkload(k, guarantees)
	if err != nil {
		return nil, err
	}
	targets := codegenTargets()
	backends := make([]codegen.Backend, len(targets))
	for i, name := range targets {
		b, ok := codegen.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("backend %q not registered", name)
		}
		backends[i] = b
	}

	emitAll := func(prog *codegen.Program) error {
		for _, b := range backends {
			if _, err := b.Emit(t, prog); err != nil {
				return err
			}
		}
		return nil
	}

	var lowerBest, sharedBest, perTargetBest time.Duration
	for r := 0; r < reps; r++ {
		// Shared-IR arm: one lowering, N emissions.
		start := time.Now()
		prog, err := codegen.Lower(t, plans)
		if err != nil {
			return nil, err
		}
		lower := time.Since(start)
		if err := emitAll(prog); err != nil {
			return nil, err
		}
		shared := time.Since(start)

		// Per-target arm: each backend lowers for itself.
		start = time.Now()
		for _, b := range backends {
			prog, err := codegen.Lower(t, plans)
			if err != nil {
				return nil, err
			}
			if _, err := b.Emit(t, prog); err != nil {
				return nil, err
			}
		}
		perTarget := time.Since(start)

		if r == 0 || lower < lowerBest {
			lowerBest = lower
		}
		if r == 0 || shared < sharedBest {
			sharedBest = shared
		}
		if r == 0 || perTarget < perTargetBest {
			perTargetBest = perTarget
		}
	}

	speedup := 0.0
	if sharedBest > 0 {
		speedup = float64(perTargetBest) / float64(sharedBest)
	}
	return []Row{row(fmt.Sprintf("fattree-k%d-multitarget", k),
		"plans", fmt.Sprint(len(plans)),
		"targets", fmt.Sprint(len(targets)),
		"lower_ms", fmt.Sprintf("%.1f", ms(lowerBest)),
		"shared_ms", fmt.Sprintf("%.1f", ms(sharedBest)),
		"pertarget_ms", fmt.Sprintf("%.1f", ms(perTargetBest)),
		"speedup", fmt.Sprintf("%.1f", speedup),
	)}, nil
}
