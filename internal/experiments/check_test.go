package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func benchFile(exps ...BenchExperiment) *BenchFile { return &BenchFile{Experiments: exps} }

func speedupRow(label, speedup string) Row {
	return row(label, "speedup", speedup)
}

func TestCheckRegressionsPasses(t *testing.T) {
	base := benchFile(
		BenchExperiment{Name: "sharding", Rows: []Row{speedupRow("k8", "20")}},
		BenchExperiment{Name: "failover", Rows: []Row{speedupRow("k8", "6.7")}},
	)
	got := benchFile(
		BenchExperiment{Name: "sharding", Rows: []Row{speedupRow("k8", "53.4")}},
		BenchExperiment{Name: "failover", Rows: []Row{speedupRow("k8", "7.9")}},
	)
	if regs := CheckRegressions(got, base, 0.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// Within tolerance: 20 × (1−0.25) = 15, measured 15.1 passes.
	got.Experiments[0].Rows[0] = speedupRow("k8", "15.1")
	if regs := CheckRegressions(got, base, 0.25); len(regs) != 0 {
		t.Fatalf("within-tolerance dip flagged: %v", regs)
	}
}

func TestCheckRegressionsFlagsDrop(t *testing.T) {
	base := benchFile(BenchExperiment{Name: "incremental", Rows: []Row{
		speedupRow("cap-change", "8"),
		speedupRow("rate-change", "4"),
	}})
	got := benchFile(BenchExperiment{Name: "incremental", Rows: []Row{
		speedupRow("cap-change", "5.9"), // below 8 × 0.75 = 6
		speedupRow("rate-change", "4.2"),
	}})
	regs := CheckRegressions(got, base, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "cap-change") {
		t.Fatalf("want exactly the cap-change regression, got %v", regs)
	}
}

func TestCheckRegressionsFlagsMissing(t *testing.T) {
	base := benchFile(
		BenchExperiment{Name: "sharding", Rows: []Row{speedupRow("k8", "20")}},
		BenchExperiment{Name: "failover", Rows: []Row{speedupRow("k8", "6.7")}},
	)
	// Dropped experiment, dropped row, and dropped metric all fail the
	// gate — a silently deleted benchmark must not pass.
	got := benchFile(BenchExperiment{Name: "sharding", Rows: []Row{row("k8", "monolithic_ms", "100")}})
	regs := CheckRegressions(got, base, 0.25)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (missing experiment + missing metric), got %v", regs)
	}
	// Rows without a speedup in the baseline are not gated.
	base.Experiments[0].Rows = []Row{row("k8", "monolithic_ms", "90")}
	base.Experiments = base.Experiments[:1]
	if regs := CheckRegressions(got, base, 0.25); len(regs) != 0 {
		t.Fatalf("ungated row flagged: %v", regs)
	}
}

// TestCommittedBaselineCoversAcceptance pins the committed baseline file:
// it must parse, and it must gate every recorded speedup experiment —
// table7, incremental, sharding, solver, negotiate, failover, and codegen
// — with the failover and negotiate floors high enough that their ≥5x and
// ≥10x acceptance bars survive the default tolerance.
func TestCommittedBaselineCoversAcceptance(t *testing.T) {
	base, err := LoadBenchFile(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	gated := map[string]int{}
	for _, e := range base.Experiments {
		for _, r := range e.Rows {
			if _, ok := r.Values["speedup"]; ok {
				gated[e.Name]++
			}
		}
	}
	for _, name := range []string{"table7", "incremental", "sharding", "solver", "negotiate", "failover", "codegen", "restart", "tcam"} {
		if gated[name] == 0 {
			t.Errorf("baseline gates no %s speedup", name)
		}
	}
	for _, e := range base.Experiments {
		switch e.Name {
		case "failover":
			// The acceptance bar is ≥5x on the fat-tree headline row:
			// link-failure recovery vs cold recompile. The zoo-scale rows
			// ride the gate at their own measured floors — on irregular
			// dense graphs the anchored-graph rebuild dominates recovery,
			// so their ratios sit below the engineered fat-tree's.
			for _, r := range e.Rows {
				if r.Label != "fattree-k8-failover" {
					continue
				}
				var floor float64
				if _, err := fmt.Sscan(r.Values["speedup"], &floor); err != nil {
					t.Fatalf("failover baseline speedup %q: %v", r.Values["speedup"], err)
				}
				if bar := floor * 0.75; bar < 5 {
					t.Errorf("failover floor %.2f × 0.75 = %.2f lets a sub-5x run pass the gate", floor, bar)
				}
			}
			// The zoo promotion is load-bearing: both >100-switch rows
			// must stay gated.
			for _, label := range []string{"zoo-14-waxman120", "zoo-54-waxman110"} {
				found := false
				for _, r := range e.Rows {
					if r.Label == label {
						_, found = r.Values["speedup"]
					}
				}
				if !found {
					t.Errorf("failover baseline gates no %s speedup", label)
				}
			}
		case "sharding":
			// The zoo promotion is load-bearing here too: both
			// >100-switch rows must stay gated.
			for _, label := range []string{"zoo-2-tree127", "zoo-40-ring104"} {
				found := false
				for _, r := range e.Rows {
					if r.Label == label {
						_, found = r.Values["speedup"]
					}
				}
				if !found {
					t.Errorf("sharding baseline gates no %s speedup", label)
				}
			}
		case "restart":
			// The bar is ≥5x: warm snapshot+tail restart vs cold journal
			// replay.
			for _, r := range e.Rows {
				var floor float64
				if _, err := fmt.Sscan(r.Values["speedup"], &floor); err != nil {
					t.Fatalf("restart baseline speedup %q: %v", r.Values["speedup"], err)
				}
				if bar := floor * 0.75; bar < 5 {
					t.Errorf("restart floor %.2f × 0.75 = %.2f lets a sub-5x run pass the gate", floor, bar)
				}
			}
		case "negotiate":
			// The tenant-scale acceptance bar is a ≥10x batched-window win
			// over the per-tenant serial path at 10^4 sessions: the floor
			// must hold it even at full tolerance.
			for _, r := range e.Rows {
				var floor float64
				if _, err := fmt.Sscan(r.Values["speedup"], &floor); err != nil {
					t.Fatalf("negotiate baseline speedup %q: %v", r.Values["speedup"], err)
				}
				if bar := floor * 0.75; bar < 10 {
					t.Errorf("negotiate floor %.2f × 0.75 = %.2f lets sub-10x batching pass the gate", floor, bar)
				}
			}
		case "solver":
			// The flow-shard acceptance bar is a ≥3x win over the PR-5
			// general path: the floor must hold it even at full tolerance.
			for _, r := range e.Rows {
				if r.Label != "fattree-k8-flow" {
					continue
				}
				var floor float64
				if _, err := fmt.Sscan(r.Values["speedup"], &floor); err != nil {
					t.Fatalf("solver baseline speedup %q: %v", r.Values["speedup"], err)
				}
				if bar := floor * 0.75; bar < 3 {
					t.Errorf("solver flow floor %.2f × 0.75 = %.2f lets sub-3x fast path pass the gate", floor, bar)
				}
			}
		}
	}
}
