package experiments

import (
	"strconv"
	"testing"
)

// TestRestartSpeedup runs the controller-restart cases (each embeds its
// own correctness cross-checks: cold and warm recovery byte-identical to
// the live compiler the history was recorded on, and the snapshot
// actually honored — warm replays exactly the tail) and asserts the
// headline acceptance target: on the k=8 fat tree with a 1000-record
// history, warm snapshot+tail restart must be ≥5x faster than cold
// full-journal replay (≈10x measured unloaded — warm pays one compile
// plus ten incremental updates where cold pays a thousand). One retry
// absorbs scheduler noise on loaded CI runners; the correctness checks
// are never retried away — a run that fails them fails the test
// immediately.
func TestRestartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	for _, c := range RestartCases() {
		var r Row
		var speedup float64
		for attempt := 0; ; attempt++ {
			var err error
			r, err = RestartRun(c)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			t.Logf("%s", r.Format())
			speedup, err = strconv.ParseFloat(r.Values["speedup"], 64)
			if err != nil {
				t.Fatalf("%s: bad speedup %q", c.Name, r.Values["speedup"])
			}
			if speedup >= 5 || attempt >= 1 {
				break
			}
			t.Logf("%s: speedup %.1fx below bar, retrying once for timing noise", c.Name, speedup)
		}
		if c.Name == "fattree-k8-restart" && speedup < 5 {
			t.Errorf("%s: restart speedup %.1fx, want >= 5x", c.Name, speedup)
		}
	}
}

// TestJournalThroughputRuns pins the ungated journal measurement's
// plumbing: it must produce a row with both append paths populated.
func TestJournalThroughputRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("does 2000 fsyncs twice; skipped in -short")
	}
	rows, err := JournalThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	for _, key := range []string{"group_commit_rps", "serial_rps", "group_commit_fsyncs"} {
		if rows[0].Values[key] == "" {
			t.Errorf("row missing %s", key)
		}
	}
}
