// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) at laptop scale. Each Run function produces printable
// rows in the paper's shape; cmd/merlin-bench renders them and the
// repository-root benchmarks time them. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"merlin/internal/lp"
	"merlin/internal/mip"
	"merlin/internal/negotiate"
	"merlin/internal/policy"
	"merlin/internal/pred"
	"merlin/internal/regex"
	"merlin/internal/sim"
	"merlin/internal/topo"
	"merlin/internal/verify"
	"merlin/internal/zoo"

	merlin "merlin"
)

// Row is one line of experiment output.
type Row struct {
	Label  string
	Values map[string]string
	Order  []string
}

func row(label string, kv ...string) Row {
	r := Row{Label: label, Values: map[string]string{}}
	for i := 0; i+1 < len(kv); i += 2 {
		r.Order = append(r.Order, kv[i])
		r.Values[kv[i]] = kv[i+1]
	}
	return r
}

// Format renders a row for terminal output.
func (r Row) Format() string {
	parts := make([]string, 0, len(r.Order))
	for _, k := range r.Order {
		parts = append(parts, fmt.Sprintf("%s=%s", k, r.Values[k]))
	}
	return fmt.Sprintf("%-28s %s", r.Label, strings.Join(parts, "  "))
}

// pairPolicy builds an all-pairs connectivity policy over the topology.
func pairPolicy(t *topo.Topology) (*merlin.Policy, error) {
	return merlin.ParsePolicy(`foreach (s,d) in cross(hosts,hosts): .*`, t)
}

// Fig4 reproduces the expressiveness experiment: the five policies of
// §6.1 on the Stanford-style campus topology, reporting Merlin policy
// size versus generated instruction counts.
func Fig4() ([]Row, error) {
	t := topo.Stanford(24, 1, topo.Gbps)
	ids := t.Identities()
	hosts := ids.Hosts()
	macs := ids.MACs()
	var rows []Row

	compile := func(label string, loc int, pol *merlin.Policy, place merlin.Placement, opts merlin.Options) error {
		res, err := merlin.Compile(pol, t, place, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		c := res.Counts()
		rows = append(rows, row(fmt.Sprintf("%s (%d loc)", label, loc),
			"openflow", fmt.Sprint(c.OpenFlow),
			"queues", fmt.Sprint(c.Queues),
			"tc", fmt.Sprint(c.TC),
			"iptables", fmt.Sprint(c.IPTables),
			"click", fmt.Sprint(c.Click),
			"total", fmt.Sprint(c.Total()),
		))
		return nil
	}

	// 1. Baseline: all-pairs connectivity (6 lines of Merlin).
	base, err := pairPolicy(t)
	if err != nil {
		return nil, err
	}
	if err := compile("baseline", 6, base, nil, merlin.Options{NoDefault: true}); err != nil {
		return nil, err
	}

	// 2. Bandwidth: baseline + guarantees and caps for 10% of classes
	// (11 lines). Guarantees are provisioned greedily at this scale.
	var sb strings.Builder
	sb.WriteString(`foreach (s,d) in cross(hosts,hosts): .*` + "\n[")
	g := 0
	for i := 0; i < len(hosts) && g < len(hosts)*(len(hosts)-1)/10; i += 1 {
		j := (i*7 + 3) % len(hosts)
		if i == j {
			continue
		}
		fmt.Fprintf(&sb, " g%d : (eth.src = %s and eth.dst = %s and tcp.dst = 5000) -> .* at min(1Mbps) at max(1Gbps) ;",
			g, macs[i], macs[j])
		g++
	}
	sb.WriteString("]")
	bw, err := merlin.ParsePolicy(sb.String(), t)
	if err != nil {
		return nil, err
	}
	if err := compile("bandwidth", 11, bw, nil, merlin.Options{NoDefault: true, Greedy: true}); err != nil {
		return nil, err
	}

	// 3. Firewall: web traffic into the campus passes the mb0 middlebox
	// (23 lines).
	fw := `
foreach (s,d) in cross(hosts,hosts): tcp.dst != 80 -> .*
foreach (s,d) in cross(hosts,hosts): tcp.dst = 80 -> .* fw .*
`
	fwPol, err := merlin.ParsePolicy(fw, t)
	if err != nil {
		return nil, err
	}
	if err := compile("firewall", 23, fwPol, merlin.Placement{"fw": {"mb0"}},
		merlin.Options{NoDefault: true}); err != nil {
		return nil, err
	}

	// 4. Monitoring middlebox: hosts partitioned in two; cross-set
	// traffic inspected (11 lines).
	half := len(macs) / 2
	setA := strings.Join(macs[:half], ", ")
	setB := strings.Join(macs[half:], ", ")
	mbox := `
a := {` + setA + `}
b := {` + setB + `}
foreach (s,d) in cross(a,a): .*
foreach (s,d) in cross(b,b): .*
foreach (s,d) in cross(a,b): .* mon .*
foreach (s,d) in cross(b,a): .* mon .*
`
	mboxPol, err := merlin.ParsePolicy(mbox, t)
	if err != nil {
		return nil, err
	}
	if err := compile("mbox", 11, mboxPol, merlin.Placement{"mon": {"mb0", "mb1"}},
		merlin.Options{NoDefault: true}); err != nil {
		return nil, err
	}

	// 5. Combination: firewall + guarantees + inspection (23 lines).
	combo := `
a := {` + setA + `}
b := {` + setB + `}
foreach (s,d) in cross(a,a): tcp.dst != 80 -> .*
foreach (s,d) in cross(b,b): tcp.dst != 80 -> .*
foreach (s,d) in cross(a,b): tcp.dst != 80 -> .* mon .*
foreach (s,d) in cross(b,a): tcp.dst != 80 -> .* mon .*
foreach (s,d) in cross(hosts,hosts): tcp.dst = 80 -> ( .* fw .* ) at min(500kbps)
`
	comboPol, err := merlin.ParsePolicy(combo, t)
	if err != nil {
		return nil, err
	}
	if err := compile("combo", 23, comboPol,
		merlin.Placement{"fw": {"mb0"}, "mon": {"mb0", "mb1"}},
		merlin.Options{NoDefault: true, Greedy: true}); err != nil {
		return nil, err
	}
	return rows, nil
}

// Hadoop reproduces §6.2's sort-job experiment: baseline, interference,
// and 90%-guarantee configurations.
func Hadoop() ([]Row, error) {
	base, err := sim.RunHadoop(sim.HadoopConfig{})
	if err != nil {
		return nil, err
	}
	interf, err := sim.RunHadoop(sim.HadoopConfig{Background: true})
	if err != nil {
		return nil, err
	}
	guar, err := sim.RunHadoop(sim.HadoopConfig{Background: true, GuaranteeFraction: 0.9})
	if err != nil {
		return nil, err
	}
	return []Row{
		row("baseline", "completion_s", fmt.Sprintf("%.0f", base.CompletionSeconds), "paper_s", "466"),
		row("interference", "completion_s", fmt.Sprintf("%.0f", interf.CompletionSeconds), "paper_s", "558"),
		row("guarantee-90%", "completion_s", fmt.Sprintf("%.0f", guar.CompletionSeconds), "paper_s", "500"),
	}, nil
}

// Fig5 reproduces the Ring Paxos throughput sweep without and with a
// Merlin guarantee for service 2.
func Fig5() ([]Row, error) {
	without, err := sim.RunRingPaxos(sim.RingPaxosConfig{})
	if err != nil {
		return nil, err
	}
	with, err := sim.RunRingPaxos(sim.RingPaxosConfig{GuaranteeBps: 6e8})
	if err != nil {
		return nil, err
	}
	var rows []Row
	for i := range without {
		w, m := without[i], with[i]
		rows = append(rows, row(fmt.Sprintf("clients=%d", w.Clients),
			"plain_r1_Mbps", fmt.Sprintf("%.0f", w.Ring1/1e6),
			"plain_r2_Mbps", fmt.Sprintf("%.0f", w.Ring2/1e6),
			"plain_agg", fmt.Sprintf("%.0f", w.Aggregate/1e6),
			"merlin_r1", fmt.Sprintf("%.0f", m.Ring1/1e6),
			"merlin_r2", fmt.Sprintf("%.0f", m.Ring2/1e6),
			"merlin_agg", fmt.Sprintf("%.0f", m.Aggregate/1e6),
		))
	}
	return rows, nil
}

// Fig6 reproduces the Topology Zoo compile-time experiment: all-pairs
// connectivity on every (sampled) zoo topology, reporting time versus
// switch count. stride samples the 262 networks (1 = all).
func Fig6(stride int) ([]Row, error) {
	if stride < 1 {
		stride = 1
	}
	var rows []Row
	for i := 0; i < zoo.Count; i += stride {
		t := zoo.Generate(i, 1)
		pol, err := pairPolicy(t)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		_, err = merlin.Compile(pol, t, nil, merlin.Options{NoDefault: true})
		if err != nil {
			return nil, fmt.Errorf("zoo %d: %w", i, err)
		}
		elapsed := time.Since(start)
		rows = append(rows, row(fmt.Sprintf("zoo-%03d", i),
			"switches", fmt.Sprint(len(t.Switches())),
			"hosts", fmt.Sprint(len(t.Hosts())),
			"compile_ms", fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
		))
	}
	return rows, nil
}

// Table7Case is one row of the fat-tree provisioning table.
type Table7Case struct {
	Name       string
	Build      func() *topo.Topology
	Guaranteed int // number of guaranteed classes (5% of classes, scaled)
}

// Table7Cases are the scaled-down fat-tree/balanced-tree sweep cases. The
// paper's table runs to 480 hosts and 10^4-second Gurobi solves; the
// bundled simplex reproduces the same shape (LP time exploding
// super-linearly while rateless time stays near-linear) at laptop scale.
func Table7Cases() []Table7Case {
	return []Table7Case{
		{"fattree-k2", func() *topo.Topology { return topo.FatTree(2, topo.Gbps) }, 1},
		{"btree-2-2", func() *topo.Topology { return topo.BalancedTree(2, 2, 2, topo.Gbps) }, 3},
		{"fattree-k4", func() *topo.Topology { return topo.FatTree(4, topo.Gbps) }, 6},
		{"fattree-k4+", func() *topo.Topology { return topo.FatTree(4, topo.Gbps) }, 8},
	}
}

// table7Policy builds one sweep case's policy: all-pairs traffic classes
// with the given number of them guaranteed.
func table7Policy(c Table7Case, t *topo.Topology) (*merlin.Policy, int, error) {
	macs := t.Identities().MACs()
	classes := len(macs) * (len(macs) - 1)
	var sb strings.Builder
	sb.WriteString(`foreach (s,d) in cross(hosts,hosts): .*` + "\n[")
	for g := 0; g < c.Guaranteed; g++ {
		i := g % len(macs)
		j := (g*5 + 1 + g/len(macs)) % len(macs)
		if i == j {
			j = (j + 1) % len(macs)
		}
		fmt.Fprintf(&sb, " g%d : (eth.src = %s and eth.dst = %s and tcp.dst = 7000) -> .* at min(5Mbps) ;",
			g, macs[i], macs[j])
	}
	sb.WriteString("]")
	pol, err := merlin.ParsePolicy(sb.String(), t)
	return pol, classes, err
}

// Table7 runs one sweep case, reporting the paper's table columns.
func Table7(c Table7Case) (Row, error) {
	t := c.Build()
	pol, classes, err := table7Policy(c, t)
	if err != nil {
		return Row{}, err
	}
	res, err := merlin.Compile(pol, t, nil, merlin.Options{NoDefault: true})
	if err != nil {
		return Row{}, err
	}
	return row(c.Name,
		"classes", fmt.Sprint(classes+c.Guaranteed),
		"hosts", fmt.Sprint(len(t.Hosts())),
		"switches", fmt.Sprint(len(t.Switches())),
		"lp_construct_ms", fmt.Sprintf("%.1f", ms(res.Timing.GraphBuild+res.Timing.LPConstruct)),
		"lp_solve_ms", fmt.Sprintf("%.1f", ms(res.Timing.LPSolve)),
		"rateless_ms", fmt.Sprintf("%.1f", ms(res.Timing.Rateless)),
	), nil
}

// Table7Compare runs one sweep case twice — once with the default
// flow-structured solver stack, once with the dense tableau engine over
// the legacy per-cable formulation with flow detection off (the PR-5
// baseline the sparse engine replaced) — and reports the paper's columns
// plus the baseline/default LP speedup. This is the recorded ratio the CI
// regression gate guards: a change that slows the default stack (or
// quietly routes solves back to the baseline path) drags the speedup
// down. Costs one dense solve per case (~seconds at k=4), so benchmarks
// time Table7 and only merlin-bench runs the comparison.
func Table7Compare(c Table7Case) (Row, error) {
	t := c.Build()
	pol, classes, err := table7Policy(c, t)
	if err != nil {
		return Row{}, err
	}
	sparse, err := merlin.Compile(pol, t, nil, merlin.Options{NoDefault: true})
	if err != nil {
		return Row{}, err
	}
	dense, err := merlin.Compile(pol, t, nil, merlin.Options{
		NoDefault:   true,
		NoNetflow:   true,
		LegacyModel: true,
		MIP:         mip.Params{LP: lp.Params{Dense: true}},
	})
	if err != nil {
		return Row{}, fmt.Errorf("dense engine: %w", err)
	}
	sparseMS := ms(sparse.Timing.LPSolve)
	denseMS := ms(dense.Timing.LPSolve)
	speedup := 0.0
	if sparseMS > 0 {
		speedup = denseMS / sparseMS
	}
	return row(c.Name,
		"classes", fmt.Sprint(classes+c.Guaranteed),
		"hosts", fmt.Sprint(len(t.Hosts())),
		"switches", fmt.Sprint(len(t.Switches())),
		"lp_construct_ms", fmt.Sprintf("%.1f", ms(sparse.Timing.GraphBuild+sparse.Timing.LPConstruct)),
		"lp_solve_ms", fmt.Sprintf("%.1f", sparseMS),
		"rateless_ms", fmt.Sprintf("%.1f", ms(sparse.Timing.Rateless)),
		"dense_solve_ms", fmt.Sprintf("%.1f", denseMS),
		"speedup", fmt.Sprintf("%.1f", speedup),
	), nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Fig8Case selects one of the four compile-time sweep panels.
type Fig8Case struct {
	Name       string
	Build      func(scale int) *topo.Topology
	Guaranteed bool
	Scales     []int
}

// Fig8Cases returns the four panels: balanced tree and fat tree, all-pairs
// and 5%-guaranteed.
func Fig8Cases() []Fig8Case {
	btree := func(scale int) *topo.Topology { return topo.BalancedTree(2, scale, 2, topo.Gbps) }
	ftree := func(scale int) *topo.Topology { return topo.FatTree(scale, topo.Gbps) }
	return []Fig8Case{
		{"8a-btree-allpairs", btree, false, []int{1, 2, 3, 4}},
		{"8b-btree-guaranteed", btree, true, []int{1, 2, 3}},
		{"8c-fattree-allpairs", ftree, false, []int{2, 4, 6}},
		{"8d-fattree-guaranteed", ftree, true, []int{2, 4}},
	}
}

// Fig8 runs one panel, one row per scale point.
func Fig8(c Fig8Case) ([]Row, error) {
	var rows []Row
	for _, scale := range c.Scales {
		t := c.Build(scale)
		macs := t.Identities().MACs()
		classes := len(macs) * (len(macs) - 1)
		guaranteed := 0
		var src strings.Builder
		src.WriteString(`foreach (s,d) in cross(hosts,hosts): .*`)
		if c.Guaranteed {
			guaranteed = classes / 20 // 5%
			if guaranteed < 1 {
				guaranteed = 1
			}
			if guaranteed > 8 {
				guaranteed = 8 // keep the exact solver tractable
			}
			src.WriteString("\n[")
			for g := 0; g < guaranteed; g++ {
				i := g % len(macs)
				j := (g*3 + 1) % len(macs)
				if i == j {
					j = (j + 1) % len(macs)
				}
				fmt.Fprintf(&src, " g%d : (eth.src = %s and eth.dst = %s and tcp.dst = 7000) -> .* at min(2Mbps) ;",
					g, macs[i], macs[j])
			}
			src.WriteString("]")
		}
		pol, err := merlin.ParsePolicy(src.String(), t)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		_, err = merlin.Compile(pol, t, nil, merlin.Options{NoDefault: true})
		if err != nil {
			return nil, fmt.Errorf("%s scale %d: %w", c.Name, scale, err)
		}
		rows = append(rows, row(fmt.Sprintf("%s scale=%d", c.Name, scale),
			"classes", fmt.Sprint(classes+guaranteed),
			"guaranteed", fmt.Sprint(guaranteed),
			"compile_ms", fmt.Sprintf("%.1f", ms(time.Since(start))),
		))
	}
	return rows, nil
}

// Fig9Predicates measures verification time against the number of
// delegated predicates (left panel): one parent statement partitioned
// into n children.
func Fig9Predicates(ns []int) ([]Row, error) {
	var rows []Row
	for _, n := range ns {
		orig, ref, err := PartitionWorkload(n)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := verify.CheckRefinement(orig, ref, verify.Options{})
		if err != nil {
			return nil, err
		}
		if !rep.OK() {
			return nil, fmt.Errorf("fig9a: workload rejected: %v", rep.Violations[0])
		}
		rows = append(rows, row(fmt.Sprintf("statements=%d", n),
			"verify_ms", fmt.Sprintf("%.2f", ms(time.Since(start)))))
	}
	return rows, nil
}

// PartitionWorkload builds the Fig. 9(a)/(c) refinement: tcp traffic split
// into n port classes plus a remainder, each with an equal cap share.
func PartitionWorkload(n int) (*policy.Policy, *policy.Policy, error) {
	orig, err := policy.Parse(`[ x : ip.proto = 6 -> .* ], max(x, 100MB/s)`, policy.Env{})
	if err != nil {
		return nil, nil, err
	}
	ref := &policy.Policy{Formula: policy.FTrue{}}
	share := 100 * 8e6 / float64(n+1)
	rest := pred.Pred(pred.Test{Field: "ip.proto", Value: "6"})
	for i := 0; i < n; i++ {
		port := fmt.Sprint(i + 1)
		p := pred.Conj(pred.Test{Field: "ip.proto", Value: "6"},
			pred.Test{Field: "tcp.dst", Value: port})
		id := fmt.Sprintf("p%d", i)
		ref.Statements = append(ref.Statements, policy.Statement{
			ID: id, Predicate: p, Path: regex.Star{X: regex.Any{}},
		})
		ref.Formula = policy.ConjFormula(ref.Formula,
			policy.Max{Expr: policy.BandExpr{IDs: []string{id}}, Rate: share})
		rest = pred.Conj(rest, pred.Negate(pred.Test{Field: "tcp.dst", Value: port}))
	}
	ref.Statements = append(ref.Statements, policy.Statement{
		ID: "rest", Predicate: rest, Path: regex.Star{X: regex.Any{}},
	})
	ref.Formula = policy.ConjFormula(ref.Formula,
		policy.Max{Expr: policy.BandExpr{IDs: []string{"rest"}}, Rate: share})
	return orig, ref, nil
}

// Fig9Regexes measures verification time against path-expression size
// (middle panel): waypoint chains of growing node count.
func Fig9Regexes(nodes []int) ([]Row, error) {
	var rows []Row
	for _, n := range nodes {
		orig, ref, err := regexWorkload(n)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := verify.CheckRefinement(orig, ref, verify.Options{})
		if err != nil {
			return nil, err
		}
		if !rep.OK() {
			return nil, fmt.Errorf("fig9b: workload rejected")
		}
		rows = append(rows, row(fmt.Sprintf("regex_nodes=%d", n),
			"verify_ms", fmt.Sprintf("%.2f", ms(time.Since(start)))))
	}
	return rows, nil
}

// regexWorkload builds statements whose paths are waypoint chains with
// about n AST nodes; the refinement inserts one more waypoint.
func regexWorkload(n int) (*policy.Policy, *policy.Policy, error) {
	waypoints := n / 4 // ".* wK" contributes ~4 nodes each
	if waypoints < 1 {
		waypoints = 1
	}
	chain := func(extra bool) regex.Expr {
		parts := []regex.Expr{regex.Star{X: regex.Any{}}}
		for i := 0; i < waypoints; i++ {
			parts = append(parts, regex.Sym{Name: fmt.Sprintf("w%d", i)}, regex.Star{X: regex.Any{}})
		}
		if extra {
			parts = append(parts, regex.Sym{Name: "extra"}, regex.Star{X: regex.Any{}})
		}
		return regex.ConcatAll(parts...)
	}
	p := pred.Pred(pred.Test{Field: "ip.proto", Value: "6"})
	orig := &policy.Policy{Statements: []policy.Statement{
		{ID: "x", Predicate: p, Path: chain(false)},
	}, Formula: policy.FTrue{}}
	ref := &policy.Policy{Statements: []policy.Statement{
		{ID: "x", Predicate: p, Path: chain(true)},
	}, Formula: policy.FTrue{}}
	return orig, ref, nil
}

// Fig9Allocations measures verification time against the number of
// bandwidth allocations (right panel) — the same partition workload, whose
// formula carries one allocation per statement.
func Fig9Allocations(ns []int) ([]Row, error) {
	rows, err := Fig9Predicates(ns)
	for i := range rows {
		rows[i].Label = strings.Replace(rows[i].Label, "statements", "allocations", 1)
	}
	return rows, err
}

// Fig10AIMD runs the additive-increase/multiplicative-decrease adaptation
// and returns the two tenants' rate series.
func Fig10AIMD() ([]sim.Series, error) {
	return negotiate.RunAIMD(negotiate.AIMDConfig{})
}

// Fig10MMFS runs the max-min fair-share adaptation.
func Fig10MMFS() ([]sim.Series, error) {
	return negotiate.RunMMFS(negotiate.MMFSConfig{})
}

// SeriesRows renders time series as rows (sampled every sampleEvery
// points).
func SeriesRows(series []sim.Series, sampleEvery int) []Row {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	var rows []Row
	if len(series) == 0 {
		return rows
	}
	for i := 0; i < len(series[0].Samples); i += sampleEvery {
		kv := []string{"t_s", fmt.Sprintf("%.0f", series[0].Samples[i].Time)}
		for _, s := range series {
			kv = append(kv, s.Name, fmt.Sprintf("%.0fMbps", s.Samples[i].Rate/1e6))
		}
		rows = append(rows, row("", kv...))
	}
	return rows
}
