package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"merlin/internal/topo"

	merlin "merlin"
)

// IncrementalCase is one incremental-vs-full recompilation measurement: a
// base policy, a variant reachable by a Delta, and the compile options.
type IncrementalCase struct {
	Name  string
	Build func() *topo.Topology
	// Policy builds the base (changed == false) or changed policy source.
	Policy func(t *topo.Topology, changed bool) string
	Opts   merlin.Options
	// ByteIdentical asserts the incremental output equals the full
	// compile's bit for bit. It holds for caps-only deltas (nothing moves
	// but tc commands); rate deltas re-solve the MIP, where a
	// warm-started simplex may legitimately land on a different — equally
	// optimal — vertex than a cold one.
	ByteIdentical bool
	// Guaranteed is the number of guaranteed statements, for the
	// non-byte-identical sanity check that each still has a path.
	Guaranteed int
}

// IncrementalCases returns the measured workloads. The headline case is
// the acceptance target: a single-statement allocation (cap) change on a
// fat-tree k=8 all-pairs policy, where the incremental compiler reuses
// every product graph, sink tree, and the provisioning solution, and
// patches only the tc commands. The k=4 case exercises the exact-MIP
// path: a guarantee's rate change re-solves the same model shape
// warm-started from the previous optimal basis.
func IncrementalCases() []IncrementalCase {
	guarPolicy := func(guar int, rates func(g int) (min, max string)) func(*topo.Topology, bool) string {
		return func(t *topo.Topology, changed bool) string {
			macs := t.Identities().MACs()
			var sb strings.Builder
			sb.WriteString(`foreach (s,d) in cross(hosts,hosts): .*` + "\n[")
			for g := 0; g < guar; g++ {
				i := g % len(macs)
				j := (g*5 + 1) % len(macs)
				if i == j {
					j = (j + 1) % len(macs)
				}
				min, max := rates(g)
				if changed && g == 0 {
					min, max = rates(-1) // the single-statement change
				}
				fmt.Fprintf(&sb, " g%d : (eth.src = %s and eth.dst = %s and tcp.dst = 7000) -> .* at min(%s) at max(%s) ;",
					g, macs[i], macs[j], min, max)
			}
			sb.WriteString("]")
			return sb.String()
		}
	}
	return []IncrementalCase{
		{
			// Single-statement cap change at k=8 scale: g0's cap moves
			// 200 → 150 Mbps. Guarantee rates are untouched, so the
			// (greedy) provisioning solution is reused outright.
			Name:  "fattree-k8-cap-change",
			Build: func() *topo.Topology { return topo.FatTree(8, topo.Gbps) },
			Policy: func(t *topo.Topology, changed bool) string {
				return guarPolicy(4, func(g int) (string, string) {
					if g < 0 {
						return "5Mbps", "150Mbps"
					}
					return "5Mbps", "200Mbps"
				})(t, changed)
			},
			Opts:          merlin.Options{NoDefault: true, Greedy: true},
			ByteIdentical: true,
			Guaranteed:    4,
		},
		{
			// Guarantee rate change at k=4 with the exact MIP: g0's
			// guarantee moves 5 → 6 Mbps, re-solved warm-started from the
			// previous optimal basis. NoNetflow pins the shards to the MIP
			// so the row keeps measuring the basis warm-start — the
			// network-simplex fast path has no basis to reuse and makes
			// the full compile nearly as cheap as the update.
			Name:  "fattree-k4-rate-change",
			Build: func() *topo.Topology { return topo.FatTree(4, topo.Gbps) },
			Policy: func(t *topo.Topology, changed bool) string {
				return guarPolicy(6, func(g int) (string, string) {
					if g < 0 {
						return "6Mbps", "200Mbps"
					}
					return "5Mbps", "200Mbps"
				})(t, changed)
			},
			Opts:       merlin.Options{NoDefault: true, NoNetflow: true},
			Guaranteed: 6,
		},
	}
}

// Incremental measures full-recompile versus Compiler.Update for each
// case and cross-checks that the incremental result matches a fresh
// compile of the changed policy.
func Incremental() ([]Row, error) {
	var rows []Row
	for _, c := range IncrementalCases() {
		r, err := IncrementalRun(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// IncrementalRun measures one case: the wall-clock of a cold full compile
// of the changed policy versus applying the change as a Delta on a warm
// Compiler.
func IncrementalRun(c IncrementalCase) (Row, error) {
	t := c.Build()
	base, err := merlin.ParsePolicy(c.Policy(t, false), t)
	if err != nil {
		return Row{}, err
	}
	changed, err := merlin.ParsePolicy(c.Policy(t, true), t)
	if err != nil {
		return Row{}, err
	}

	// Full: a cold compiler on the changed policy.
	fullStart := time.Now()
	full, err := merlin.Compile(changed, t, nil, c.Opts)
	if err != nil {
		return Row{}, err
	}
	fullMS := ms(time.Since(fullStart))

	// Incremental: warm compiler on the base policy, then the delta.
	comp := merlin.NewCompiler(t, nil, c.Opts)
	if _, err := comp.Compile(base); err != nil {
		return Row{}, err
	}
	updStart := time.Now()
	diff, err := comp.Update(merlin.Delta{Formula: changed.Formula})
	if err != nil {
		return Row{}, err
	}
	updMS := ms(time.Since(updStart))

	// Correctness: caps-only deltas must match the fresh compile bit for
	// bit; rate deltas re-solve, so check that every guarantee still has
	// a provisioned path and the configuration is non-degenerate.
	if c.ByteIdentical {
		if !reflect.DeepEqual(comp.Result().Output, full.Output) {
			return Row{}, fmt.Errorf("incremental output diverges from full compile")
		}
	} else {
		got := comp.Result()
		for g := 0; g < c.Guaranteed; g++ {
			id := fmt.Sprintf("g%d", g)
			if len(got.Paths[id]) == 0 {
				return Row{}, fmt.Errorf("incremental update lost the path for %s", id)
			}
		}
		if got.Counts().OpenFlow == 0 || got.Counts().Queues == 0 {
			return Row{}, fmt.Errorf("incremental update produced a degenerate configuration")
		}
	}
	install, remove := diff.Counts()
	st := comp.Stats()
	speedup := 0.0
	if updMS > 0 {
		speedup = fullMS / updMS
	}
	return row(c.Name,
		"full_ms", fmt.Sprintf("%.1f", fullMS),
		"update_ms", fmt.Sprintf("%.2f", updMS),
		"speedup", fmt.Sprintf("%.1f", speedup),
		"diff_install", fmt.Sprint(install.Total()),
		"diff_remove", fmt.Sprint(remove.Total()),
		"patched_codegen", fmt.Sprint(st.PatchedCodegens),
		"warm_solves", fmt.Sprint(st.WarmSolves),
	), nil
}
