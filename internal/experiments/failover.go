package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"merlin/internal/topo"

	merlin "merlin"
)

// FailoverCase is one link-failure recovery measurement: a multi-tenant
// fat-tree workload compiled on a warm incremental Compiler, a link on a
// provisioned path failed, and the failure-to-new-configs latency of the
// incremental reroute compared against a cold recompile on the degraded
// topology.
type FailoverCase struct {
	Name string
	K    int // fat-tree arity; one tenant per pod
	// GuaranteesPerTenant is the number of intra-pod guarantees each
	// tenant requests.
	GuaranteesPerTenant int
}

// FailoverCases returns the measured workloads. The headline case is the
// acceptance target: a k=8 fat tree where recovering from a single link
// failure must beat a cold recompile by ≥5x — the failure invalidates one
// pod's anchored product graphs and one provisioning shard; the other
// seven tenants ride their caches.
func FailoverCases() []FailoverCase {
	return []FailoverCase{
		{Name: "fattree-k8-failover", K: 8, GuaranteesPerTenant: 6},
	}
}

// tenantPolicy renders the per-pod tenants' guarantees as Merlin source:
// tenant p asks for n guarantees between the tenantPair host pairs inside
// pod p, each confined to the pod by the path expression (podNodes)* —
// the sharding benchmark's workload, expressed at the policy level.
func tenantPolicy(t *topo.Topology, k, n int) string {
	half := k / 2
	mac := func(name string) string {
		return topo.MACOf(t.MustLookup(name))
	}
	var sb strings.Builder
	sb.WriteString("[")
	for p := 0; p < k; p++ {
		expr := "( " + strings.Join(podNames(k, p), " | ") + " )*"
		for g := 0; g < n; g++ {
			src, dst := tenantPair(p, g, half)
			fmt.Fprintf(&sb, " t%dg%d : (eth.src = %s and eth.dst = %s) -> %s at min(%dMbps) ;",
				p, g, mac(src), mac(dst), expr, 10+5*g)
		}
	}
	sb.WriteString("]")
	return sb.String()
}

// failureTarget picks the cable to fail: the first switch-to-switch hop
// on tenant 0's first provisioned path, so the failure is guaranteed to
// force a reroute.
func failureTarget(t *topo.Topology, path []string) (a, b string, err error) {
	for i := 1; i < len(path); i++ {
		na, okA := t.Lookup(path[i-1])
		nb, okB := t.Lookup(path[i])
		if !okA || !okB {
			continue
		}
		if t.Node(na).Kind == topo.Switch && t.Node(nb).Kind == topo.Switch {
			return path[i-1], path[i], nil
		}
	}
	return "", "", fmt.Errorf("no switch-switch hop on path %v", path)
}

// Failover measures each case: failure-to-new-configs latency of the
// incremental pipeline versus a cold recompile on the degraded topology,
// cross-checking that the two agree byte for byte and that only the
// touched shard re-entered the MIP.
func Failover() ([]Row, error) {
	var rows []Row
	for _, c := range FailoverCases() {
		r, err := FailoverRun(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		rows = append(rows, r)
	}
	zoo, err := ZooFailover()
	if err != nil {
		return nil, err
	}
	return append(rows, zoo...), nil
}

// FailoverRun measures one case.
func FailoverRun(c FailoverCase) (Row, error) {
	t := topo.FatTree(c.K, topo.Gbps)
	pol, err := merlin.ParsePolicy(tenantPolicy(t, c.K, c.GuaranteesPerTenant), t)
	if err != nil {
		return Row{}, err
	}
	opts := merlin.Options{NoDefault: true}
	comp := merlin.NewCompiler(t, nil, opts)
	if _, err := comp.Compile(pol); err != nil {
		return Row{}, fmt.Errorf("warm build: %w", err)
	}
	a, b, err := failureTarget(t, comp.Result().Paths["t0g0"])
	if err != nil {
		return Row{}, err
	}

	// Cold baseline: a fresh compile against a fresh topology carrying the
	// same failure — what a controller without the incremental pipeline
	// pays between detecting the failure and having new configurations.
	t2 := topo.FatTree(c.K, topo.Gbps)
	if _, err := t2.SetLinkState(t2.MustLookup(a), t2.MustLookup(b), false); err != nil {
		return Row{}, err
	}
	coldStart := time.Now()
	cold, err := merlin.Compile(pol, t2, nil, opts)
	if err != nil {
		return Row{}, fmt.Errorf("cold recompile: %w", err)
	}
	coldMS := ms(time.Since(coldStart))

	// Incremental: the failure event through the warm compiler.
	before := comp.Stats()
	failStart := time.Now()
	diff, err := comp.ApplyTopo(merlin.LinkFailure(a, b))
	if err != nil {
		return Row{}, fmt.Errorf("failover update: %w", err)
	}
	failMS := ms(time.Since(failStart))
	after := comp.Stats()

	// Correctness: the incremental result must match the cold recompile
	// bit for bit — the touched shard re-solves the same deterministic
	// model, the untouched shards' cached optima equal what the cold
	// solver finds — and no surviving path may cross the failed cable.
	got := comp.Result()
	if !reflect.DeepEqual(got.Output, cold.Output) {
		return Row{}, fmt.Errorf("incremental failover output diverges from cold recompile")
	}
	if !reflect.DeepEqual(got.Programs, cold.Programs) {
		return Row{}, fmt.Errorf("incremental failover programs diverge from cold recompile")
	}
	for id, path := range got.Paths {
		if len(path) < 2 {
			return Row{}, fmt.Errorf("guarantee %s lost its path", id)
		}
		for i := 1; i < len(path); i++ {
			if (path[i-1] == a && path[i] == b) || (path[i-1] == b && path[i] == a) {
				return Row{}, fmt.Errorf("guarantee %s still routed across failed link %s-%s", id, a, b)
			}
		}
	}
	resolved := after.ShardsSolved - before.ShardsSolved
	reused := after.ShardsReused - before.ShardsReused
	if resolved != 1 || reused != c.K-1 {
		return Row{}, fmt.Errorf("failure re-entered %d shards (reused %d), want 1 (%d): recovery is not shard-local",
			resolved, reused, c.K-1)
	}
	install, remove := diff.Counts()
	if install.Total() == 0 || remove.Total() == 0 {
		return Row{}, fmt.Errorf("failover produced an empty reroute diff")
	}

	speedup := 0.0
	if failMS > 0 {
		speedup = coldMS / failMS
	}
	return row(c.Name,
		"requests", fmt.Sprint(c.K*c.GuaranteesPerTenant),
		"cold_ms", fmt.Sprintf("%.1f", coldMS),
		"failover_ms", fmt.Sprintf("%.2f", failMS),
		"speedup", fmt.Sprintf("%.1f", speedup),
		"shards_resolved", fmt.Sprint(resolved),
		"shards_reused", fmt.Sprint(reused),
		"graphs_invalidated", fmt.Sprint(after.AnchoredInvalidated-before.AnchoredInvalidated),
		"diff_install", fmt.Sprint(install.Total()),
		"diff_remove", fmt.Sprint(remove.Total()),
	), nil
}
