package experiments

import (
	"fmt"
	"math"
	"reflect"
	"time"

	"merlin/internal/provision"
	"merlin/internal/topo"
)

// SolverCase is one engine-comparison measurement: the same multi-tenant
// workload provisioned three ways — the legacy paper-literal MIP (the
// PR-5 general path), the compact bounded-variable formulation through
// the same branch-and-bound, and the default stack with flow-structure
// detection on. The heuristic selects the shard class: weighted shortest
// path shards are pure node-arc incidence problems the network simplex
// takes outright, while the min-max heuristics keep their coupling rows
// and exercise only the bounded-variable compaction.
type SolverCase struct {
	Name string
	K    int // fat-tree arity; one tenant per pod
	// GuaranteesPerTenant is the number of intra-pod guarantees each
	// tenant requests.
	GuaranteesPerTenant int
	Heuristic           provision.Heuristic
}

// SolverCases returns the measured workloads: the sharding benchmark's
// k=8 multi-tenant fat tree under both shard classes. The flow case is
// the acceptance target — the fast path must fire on at least half its
// shards and beat the legacy general path by ≥3x.
func SolverCases() []SolverCase {
	return []SolverCase{
		{Name: "fattree-k8-flow", K: 8, GuaranteesPerTenant: 4,
			Heuristic: provision.WeightedShortestPath},
		{Name: "fattree-k8-minmax", K: 8, GuaranteesPerTenant: 4,
			Heuristic: provision.MinMaxRatio},
	}
}

// Solver measures each case.
func Solver() ([]Row, error) {
	var rows []Row
	for _, c := range SolverCases() {
		r, err := SolverRun(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// timedSolve returns the best-of-3 wall-clock of a solve configuration
// (the repetition smooths scheduler noise out of the recorded ratios)
// plus its last result.
func timedSolve(t *topo.Topology, reqs []provision.Request, h provision.Heuristic, p provision.Params) (float64, *provision.Result, error) {
	best := math.Inf(1)
	var res *provision.Result
	for i := 0; i < 3; i++ {
		start := time.Now()
		r, err := provision.Solve(t, reqs, h, p)
		if err != nil {
			return 0, nil, err
		}
		if d := ms(time.Since(start)); d < best {
			best = d
		}
		res = r
	}
	return best, res, nil
}

// SolverRun measures one case and cross-checks that all three engines
// picked the same paths: the tie-break perturbations make the optimum
// generically unique, the compact formulation preserves the legacy
// model's feasible set and objective over the path variables, and the
// network simplex solves the identical cost structure — so any
// divergence is an engine bug, not solver freedom.
func SolverRun(c SolverCase) (Row, error) {
	t := topo.FatTree(c.K, topo.Gbps)
	reqs, err := tenantRequests(t, c.K, c.GuaranteesPerTenant)
	if err != nil {
		return Row{}, err
	}

	legacyMS, legacy, err := timedSolve(t, reqs, c.Heuristic,
		provision.Params{NoNetflow: true, LegacyModel: true})
	if err != nil {
		return Row{}, fmt.Errorf("legacy solve: %w", err)
	}
	compactMS, compact, err := timedSolve(t, reqs, c.Heuristic,
		provision.Params{NoNetflow: true})
	if err != nil {
		return Row{}, fmt.Errorf("compact solve: %w", err)
	}
	defMS, def, err := timedSolve(t, reqs, c.Heuristic, provision.Params{})
	if err != nil {
		return Row{}, fmt.Errorf("default solve: %w", err)
	}

	for _, r := range reqs {
		if !reflect.DeepEqual(legacy.Paths[r.ID], compact.Paths[r.ID]) {
			return Row{}, fmt.Errorf("compact formulation rerouted %s", r.ID)
		}
		if !reflect.DeepEqual(legacy.Paths[r.ID], def.Paths[r.ID]) {
			return Row{}, fmt.Errorf("default stack rerouted %s", r.ID)
		}
	}
	for _, res := range []*provision.Result{legacy, compact, def} {
		if err := res.Validate(t); err != nil {
			return Row{}, err
		}
	}
	if c.Heuristic == provision.WeightedShortestPath {
		if def.NetflowShards < c.K/2 {
			return Row{}, fmt.Errorf("network simplex fired on %d/%d shards, want >= %d",
				def.NetflowShards, c.K, c.K/2)
		}
	} else if def.NetflowShards != 0 {
		return Row{}, fmt.Errorf("network simplex fired on a min-max shard (%d)", def.NetflowShards)
	}

	compactSpeedup, speedup := 0.0, 0.0
	if compactMS > 0 {
		compactSpeedup = legacyMS / compactMS
	}
	if defMS > 0 {
		speedup = legacyMS / defMS
	}
	return row(c.Name,
		"requests", fmt.Sprint(len(reqs)),
		"shards", fmt.Sprint(len(def.Shards)),
		"netflow_shards", fmt.Sprint(def.NetflowShards),
		"bnb_nodes", fmt.Sprint(def.Nodes),
		"legacy_ms", fmt.Sprintf("%.1f", legacyMS),
		"compact_ms", fmt.Sprintf("%.1f", compactMS),
		"default_ms", fmt.Sprintf("%.1f", defMS),
		"compact_speedup", fmt.Sprintf("%.1f", compactSpeedup),
		"speedup", fmt.Sprintf("%.1f", speedup),
	), nil
}
