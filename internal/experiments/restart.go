package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"time"

	"merlin/internal/journal"
	"merlin/internal/topo"

	merlin "merlin"
)

// RestartCase is one controller-restart measurement: a multi-tenant
// fat-tree workload whose operation history — negotiation-style rate
// movements plus topology capacity churn — sits in a merlind-format
// journal, restarted two ways. Cold replays the whole journal from
// genesis through a fresh compiler; warm loads the latest snapshot (one
// compile of the canonical policy against the restored topology) and
// replays only the records past it. The ratio is the price of not
// snapshotting, which is what the merlind daemon's snapshot cadence
// buys down.
type RestartCase struct {
	Name string
	K    int // fat-tree arity; one tenant per pod
	// GuaranteesPerTenant is the number of intra-pod guarantees each
	// tenant requests.
	GuaranteesPerTenant int
	// History is the number of journal records between genesis and the
	// snapshot; Tail is the number after it (what warm restart replays).
	History int
	Tail    int
}

// RestartCases returns the measured workloads. The headline case is the
// acceptance target: a k=8 fat tree with a 1000-record history and a
// 10-record tail, where warm restart must beat cold replay by ≥5x —
// the snapshot collapses 600 incremental updates into one compile.
func RestartCases() []RestartCase {
	return []RestartCase{
		{Name: "fattree-k8-restart", K: 8, GuaranteesPerTenant: 6, History: 1000, Tail: 10},
	}
}

// restartHistory appends one workload record to the journal and applies
// it to the live compiler, keeping the two in lockstep the way merlind
// does (journal in apply order, ack after append). Record i is a
// negotiation-style rate movement for tenant i%k — a formula-only delta
// that re-solves one provisioning shard — except every 25th, which is a
// capacity wobble on an access link in that tenant's pod.
func restartHistory(c *merlin.Compiler, store *journal.Store, t *topo.Topology, cs RestartCase, i int, rates []int) error {
	p := i % cs.K
	if i%25 == 24 {
		host := fmt.Sprintf("h%d_0_0", p)
		edge := fmt.Sprintf("edge%d_0", p)
		capacity := topo.Gbps
		if i%50 == 24 {
			capacity = 900 * topo.Mbps
		}
		batch := []merlin.TopoEvent{merlin.CapacityChange(edge, host, capacity)}
		applied := c.ApplyTopoBatch(batch, nil, func(err error) {})
		if len(applied) == 0 {
			return fmt.Errorf("record %d: capacity change rejected", i)
		}
		payload, err := json.Marshal(merlin.WireTopoEvents(applied))
		if err != nil {
			return err
		}
		_, err = store.Append(merlin.RecTopo, payload)
		return err
	}
	rates[p] = 10 + (rates[p]-10+1)%40 // walk the tenant's base rate
	w := merlin.WireDelta{Formula: restartFormula(cs.K, cs.GuaranteesPerTenant, rates)}
	d, err := c.DecodeDelta(w)
	if err != nil {
		return fmt.Errorf("record %d: %w", i, err)
	}
	if _, err := c.Update(d); err != nil {
		return fmt.Errorf("record %d: %w", i, err)
	}
	payload, err := json.Marshal(w)
	if err != nil {
		return err
	}
	_, err = store.Append(merlin.RecDelta, payload)
	return err
}

// restartFormula renders the global min-guarantee formula with each
// tenant p's guarantees based at rates[p] Mbps.
func restartFormula(k, n int, rates []int) string {
	var terms []string
	for p := 0; p < k; p++ {
		for g := 0; g < n; g++ {
			terms = append(terms, fmt.Sprintf("min(t%dg%d, %dMbps)", p, g, rates[p]+5*g))
		}
	}
	return strings.Join(terms, " and ")
}

// Restart measures each case: cold full-journal replay versus warm
// snapshot-plus-tail recovery, cross-checking that both restarts land
// byte-identical to the live compiler the history was recorded on.
func Restart() ([]Row, error) {
	var rows []Row
	for _, c := range RestartCases() {
		r, err := RestartRun(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		rows = append(rows, r)
	}
	jr, err := JournalThroughput()
	if err != nil {
		return nil, err
	}
	return append(rows, jr...), nil
}

// RestartRun measures one case.
func RestartRun(c RestartCase) (Row, error) {
	dir, err := os.MkdirTemp("", "merlin-restart-*")
	if err != nil {
		return Row{}, err
	}
	defer os.RemoveAll(dir)

	// Record the history the way merlind does: genesis policy record,
	// then History+Tail operations applied to a live compiler and
	// journaled in apply order. fsync stays off — the journal's write
	// amplification is measured separately; restart cost is compute.
	t := topo.FatTree(c.K, topo.Gbps)
	genesis := tenantPolicy(t, c.K, c.GuaranteesPerTenant)
	pol, err := merlin.ParsePolicy(genesis, t)
	if err != nil {
		return Row{}, err
	}
	opts := merlin.Options{NoDefault: true}
	live := merlin.NewCompiler(t, nil, opts)
	if _, err := live.Compile(pol); err != nil {
		return Row{}, fmt.Errorf("genesis compile: %w", err)
	}
	store, _, err := journal.Open(dir, journal.Params{NoSync: true})
	if err != nil {
		return Row{}, err
	}
	if _, err := store.Append(merlin.RecPolicy, []byte(pol.String())); err != nil {
		return Row{}, err
	}
	rates := make([]int, c.K)
	for p := range rates {
		rates[p] = 10
	}
	var snapPayload []byte
	var snapSeq uint64
	for i := 0; i < c.History+c.Tail; i++ {
		if err := restartHistory(live, store, t, c, i, rates); err != nil {
			return Row{}, err
		}
		if i == c.History-1 {
			snap, err := live.Snapshot()
			if err != nil {
				return Row{}, err
			}
			snapSeq = store.LastSeq()
			snap.Seq = snapSeq
			if snapPayload, err = snap.Marshal(); err != nil {
				return Row{}, err
			}
		}
	}
	if err := store.Close(); err != nil {
		return Row{}, err
	}

	// Cold restart: open the journal — no snapshot exists yet — and
	// replay every record from genesis through a fresh compiler.
	coldStart := time.Now()
	cold, records, err := restartReplay(c, dir, opts)
	if err != nil {
		return Row{}, fmt.Errorf("cold restart: %w", err)
	}
	coldMS := ms(time.Since(coldStart))
	if records != c.History+c.Tail+1 {
		return Row{}, fmt.Errorf("cold restart replayed %d records, want %d", records, c.History+c.Tail+1)
	}

	// Install the snapshot the daemon would have taken at the cadence
	// boundary, then measure the warm path: snapshot restore + tail.
	store2, _, err := journal.Open(dir, journal.Params{NoSync: true})
	if err != nil {
		return Row{}, err
	}
	if err := store2.Snapshot(snapSeq, snapPayload); err != nil {
		return Row{}, err
	}
	if err := store2.Close(); err != nil {
		return Row{}, err
	}
	warmStart := time.Now()
	warm, records, err := restartReplay(c, dir, opts)
	if err != nil {
		return Row{}, fmt.Errorf("warm restart: %w", err)
	}
	warmMS := ms(time.Since(warmStart))
	if want := c.Tail; records != want {
		return Row{}, fmt.Errorf("warm restart replayed %d records, want %d (snapshot not honored)", records, want)
	}

	// Correctness: both restarts must land exactly where the live
	// compiler did — the snapshot is canonical inputs, not cached
	// outputs, so divergence here means the restore path lost state.
	for label, got := range map[string]*merlin.Result{"cold": cold.Result(), "warm": warm.Result()} {
		want := live.Result()
		if !reflect.DeepEqual(got.Output, want.Output) || !reflect.DeepEqual(got.Programs, want.Programs) ||
			!reflect.DeepEqual(got.Paths, want.Paths) || !reflect.DeepEqual(got.Allocations, want.Allocations) {
			return Row{}, fmt.Errorf("%s restart diverges from the live compiler", label)
		}
	}

	speedup := 0.0
	if warmMS > 0 {
		speedup = coldMS / warmMS
	}
	return row(c.Name,
		"records", fmt.Sprint(c.History+c.Tail+1),
		"tail", fmt.Sprint(c.Tail),
		"cold_ms", fmt.Sprintf("%.1f", coldMS),
		"warm_ms", fmt.Sprintf("%.1f", warmMS),
		"speedup", fmt.Sprintf("%.1f", speedup),
		// The gate reads "speedup"; this alias is the metric name the
		// roadmap and PERFORMANCE.md refer to.
		"restart_warm_vs_cold", fmt.Sprintf("%.1f", speedup),
	), nil
}

// restartReplay is the measured recovery path, shared by both arms:
// open the journal, restore the snapshot if one exists, replay the
// returned records. It returns the recovered compiler and how many
// records were replayed.
func restartReplay(c RestartCase, dir string, opts merlin.Options) (*merlin.Compiler, int, error) {
	store, rec, err := journal.Open(dir, journal.Params{NoSync: true})
	if err != nil {
		return nil, 0, err
	}
	defer store.Close()
	t := topo.FatTree(c.K, topo.Gbps)
	var comp *merlin.Compiler
	if rec.Snapshot != nil {
		snap, err := merlin.ParseSnapshot(rec.Snapshot)
		if err != nil {
			return nil, 0, err
		}
		if comp, _, err = merlin.RestoreCompiler(t, snap, opts); err != nil {
			return nil, 0, err
		}
	} else {
		comp = merlin.NewCompiler(t, nil, opts)
	}
	for i, r := range rec.Records {
		if err := merlin.ApplyJournalRecord(comp, r.Kind, r.Data); err != nil {
			return nil, 0, fmt.Errorf("record %d (seq %d): %w", i, r.Seq, err)
		}
	}
	return comp, len(rec.Records), nil
}

// JournalThroughput measures the journal's append paths on this
// machine's filesystem: group-committed concurrent appends versus the
// serial one-fsync-per-append path. Absolute records/sec depends on the
// backing store (tmpfs fsyncs are nearly free, disks are not), so these
// rows are informational — no speedup metric, nothing gated.
func JournalThroughput() ([]Row, error) {
	const n, writers = 2000, 8
	payload := make([]byte, 256)
	run := func(params journal.Params, concurrent bool) (float64, uint64, error) {
		dir, err := os.MkdirTemp("", "merlin-journal-*")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		store, _, err := journal.Open(dir, params)
		if err != nil {
			return 0, 0, err
		}
		defer store.Close()
		start := time.Now()
		if concurrent {
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < n/writers; i++ {
						if _, err := store.Append(merlin.RecDelta, payload); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				return 0, 0, err
			}
		} else {
			for i := 0; i < n; i++ {
				if _, err := store.Append(merlin.RecDelta, payload); err != nil {
					return 0, 0, err
				}
			}
		}
		elapsed := time.Since(start).Seconds()
		return float64(n) / elapsed, store.Stats().Commits, nil
	}
	grouped, commits, err := run(journal.Params{}, true)
	if err != nil {
		return nil, fmt.Errorf("journal group-commit: %w", err)
	}
	serial, _, err := run(journal.Params{NoGroupCommit: true}, false)
	if err != nil {
		return nil, fmt.Errorf("journal serial: %w", err)
	}
	return []Row{row("journal-fsync",
		"records", fmt.Sprint(n),
		"group_commit_rps", fmt.Sprintf("%.0f", grouped),
		"group_commit_fsyncs", fmt.Sprint(commits),
		"serial_rps", fmt.Sprintf("%.0f", serial),
	)}, nil
}
