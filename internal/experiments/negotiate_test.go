package experiments

import (
	"strconv"
	"testing"
)

// TestNegotiateSpeedup runs a scaled-down tenant sweep (the full 10^4
// acceptance case lives in merlin-bench and the CI gate) and asserts the
// architecture's shape with wide margin: even at 1000 sessions a batched
// sharded window must beat the per-tenant serial path by well over the
// 10x acceptance bar, because the serial path pays an O(N) formula
// rebuild and recompile per demand while the hub pays them once per
// window. The run embeds its own correctness checks — every negotiated
// cap stays within its delegated budget and the hub counters are live.
func TestNegotiateSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	c := NegotiateCase{Name: "fattree-k8-1000t", Tenants: 1000, Shards: 16,
		Compile: true, SampleOps: 20, Rounds: 3}
	var speedup float64
	for attempt := 0; ; attempt++ {
		r, err := NegotiateRun(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		t.Logf("%s", r.Format())
		speedup, err = strconv.ParseFloat(r.Values["speedup"], 64)
		if err != nil {
			t.Fatalf("%s: bad speedup %q", c.Name, r.Values["speedup"])
		}
		if speedup >= 10 || attempt >= 1 {
			break
		}
		t.Logf("%s: speedup %.1fx below bar, retrying once for timing noise", c.Name, speedup)
	}
	if speedup < 10 {
		t.Errorf("batched negotiation speedup %.1fx, want >= 10x", speedup)
	}
}

// TestNegotiateHubOnlyScale pins the negotiator-alone path: a 10^4
// session hub with no compiler bound still ticks, batches, and clamps.
func TestNegotiateHubOnlyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	r, err := NegotiateRun(NegotiateCase{Name: "hub-only-10000t", Tenants: 10000,
		Shards: 32, Compile: false, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", r.Format())
	if _, gated := r.Values["speedup"]; gated {
		t.Fatalf("hub-only row must not carry a gated speedup: %v", r.Values)
	}
}
