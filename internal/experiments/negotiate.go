package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"merlin/internal/policy"
	"merlin/internal/topo"
	"merlin/internal/verify"

	merlin "merlin"
)

// NegotiateCase is one tenant-scale negotiation measurement: N live
// sessions on a k=8 fat tree, batched through a sharded Hub versus the
// pre-hub per-tenant serial path.
type NegotiateCase struct {
	Name    string
	Tenants int
	// Shards is the number of link-disjoint capacity pools sessions are
	// grouped into (the fat-tree pod partition at small N, a fixed pool
	// count at large N — what matters is that updates stay shard-local).
	Shards int
	// Compile binds a Compiler to the hub so every committed tick pays
	// its one recompile; off for the largest case, which measures the
	// negotiator alone past the point where building a 10^5-statement
	// policy's device configuration dominates.
	Compile bool
	// SampleOps bounds the serially measured per-tenant operations; the
	// serial estimate extrapolates the per-op mean to all Tenants. Each
	// op's cost is dominated by work that is O(Tenants) and independent
	// of which tenant moved (global formula rebuild + one
	// Compiler.Update), so the mean transfers.
	SampleOps int
	// Rounds is the number of measured negotiation windows (after one
	// warm-up window).
	Rounds int
}

// NegotiateCases returns the tenant-count sweep. The 10^4 row is the
// acceptance target: batched+sharded ticks at least 10x faster than the
// per-tenant serial architecture for the same demand volume.
func NegotiateCases() []NegotiateCase {
	return []NegotiateCase{
		{Name: "fattree-k8-100t", Tenants: 100, Shards: 8, Compile: true, SampleOps: 50, Rounds: 3},
		{Name: "fattree-k8-1000t", Tenants: 1000, Shards: 16, Compile: true, SampleOps: 50, Rounds: 3},
		{Name: "fattree-k8-10000t", Tenants: 10000, Shards: 16, Compile: true, SampleOps: 25, Rounds: 3},
		{Name: "fattree-k8-100000t", Tenants: 100000, Shards: 32, Compile: false, SampleOps: 0, Rounds: 3},
	}
}

// Negotiate measures every case.
func Negotiate() ([]Row, error) {
	var rows []Row
	for _, c := range NegotiateCases() {
		r, err := NegotiateRun(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// negotiatePolicy builds the N-tenant cap policy: every tenant owns one
// statement pinning a (src, dst, port) traffic class to best-effort
// routing under a 10MB/s cap — the delegated budget its session
// renegotiates within.
func negotiatePolicy(t *topo.Topology, tenants int) (*merlin.Policy, error) {
	macs := t.Identities().MACs()
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i < tenants; i++ {
		src := macs[i%len(macs)]
		dst := macs[(i*7+1)%len(macs)]
		if src == dst {
			dst = macs[(i*7+2)%len(macs)]
		}
		fmt.Fprintf(&sb, " t%06d : (eth.src = %s and eth.dst = %s and tcp.dst = %d) -> .* at max(10MB/s) ;",
			i, src, dst, 1024+i%60000)
	}
	sb.WriteString("]")
	return merlin.ParsePolicy(sb.String(), t)
}

// negotiateDemand is the deterministic per-tenant demand sequence: a few
// Mbps, varying by tenant and round so every window coalesces real work.
func negotiateDemand(tenant, round int) float64 {
	return float64(1+(tenant*13+round*7)%8) * topo.Mbps
}

// NegotiateRun measures one case: the wall-clock of a batched negotiation
// window (N demand arrivals, one sharded Tick, one recompile) against the
// estimated serial cost of the per-tenant architecture it replaces (per
// demand: one uncached delegation check, one O(N) global formula rebuild,
// one Compiler.Update).
func NegotiateRun(c NegotiateCase) (Row, error) {
	t := topo.FatTree(8, topo.Gbps)
	pol, err := negotiatePolicy(t, c.Tenants)
	if err != nil {
		return Row{}, err
	}
	opts := merlin.Options{NoDefault: true}

	hub, err := merlin.NewHub(pol, merlin.HubOptions{})
	if err != nil {
		return Row{}, err
	}
	var comp *merlin.Compiler
	if c.Compile {
		comp = merlin.NewCompiler(t, nil, opts)
		if _, err := comp.Compile(hub.Policy()); err != nil {
			return Row{}, err
		}
		comp.WatchHub(hub, nil)
	}
	// Shard capacities congest mid-sweep so AIMD exercises both halves of
	// its control law instead of saturating.
	perShard := c.Tenants / c.Shards
	for s := 0; s < c.Shards; s++ {
		if err := hub.AddShard(fmt.Sprintf("pool%d", s), float64(perShard)*2*topo.Mbps); err != nil {
			return Row{}, err
		}
	}
	sessions := make([]*merlin.Session, c.Tenants)
	ctrl := merlin.AIMDState{Alloc: topo.Mbps, Increase: topo.Mbps, Decrease: 0.5}
	for i := range sessions {
		s, err := hub.Register(fmt.Sprintf("tenant%06d", i), fmt.Sprintf("pool%d", i%c.Shards),
			[]string{fmt.Sprintf("t%06d", i)}, ctrl)
		if err != nil {
			return Row{}, err
		}
		sessions[i] = s
	}

	// Batched: one warm-up window, then the measured rounds. The window
	// cost includes the demand arrivals themselves — both architectures
	// pay per-demand ingestion; only the hub amortizes everything after.
	window := func(round int) error {
		for i, s := range sessions {
			s.OfferDemand(negotiateDemand(i, round))
		}
		_, err := hub.Tick()
		return err
	}
	if err := window(0); err != nil {
		return Row{}, err
	}
	start := time.Now()
	for r := 1; r <= c.Rounds; r++ {
		if err := window(r); err != nil {
			return Row{}, err
		}
	}
	windowMS := ms(time.Since(start)) / float64(c.Rounds)
	hs := hub.Stats()
	if hs.TenantsActive != c.Tenants || hs.TicksBatched == 0 || hs.DemandsBatched == 0 {
		return Row{}, fmt.Errorf("hub counters degenerate: %+v", hs)
	}
	for id, a := range hub.Allocations() {
		if a.Max > 10*topo.MBps+1e-6 {
			return Row{}, fmt.Errorf("%s negotiated past its delegated 10MB/s budget: %g", id, a.Max)
		}
	}

	vals := []string{
		"tenants", fmt.Sprint(c.Tenants),
		"window_ms", fmt.Sprintf("%.2f", windowMS),
		"demands", fmt.Sprint(hs.DemandsBatched),
		"ticks", fmt.Sprint(hs.TicksBatched),
	}
	if c.Compile {
		serialMS, err := negotiateSerial(t, pol, opts, c)
		if err != nil {
			return Row{}, err
		}
		speedup := 0.0
		if windowMS > 0 {
			speedup = serialMS / windowMS
		}
		vals = append(vals,
			"serial_est_ms", fmt.Sprintf("%.1f", serialMS),
			"speedup", fmt.Sprintf("%.1f", speedup),
			"patched_codegen", fmt.Sprint(comp.Stats().PatchedCodegens),
		)
	}
	return row(c.Name, vals...), nil
}

// negotiateSerial measures the architecture the hub replaces: every
// demand handled the moment it arrives — verify the tenant's new cap
// against its delegation (uncached, the per-tenant negotiators shared no
// memo), rebuild the global formula, and push one Compiler.Update. The
// per-op mean over SampleOps sampled tenants extrapolates to one full
// window of Tenants demands: each op's dominant costs (formula rebuild,
// Update) are O(Tenants) regardless of which tenant moved.
func negotiateSerial(t *topo.Topology, pol *merlin.Policy, opts merlin.Options, c NegotiateCase) (float64, error) {
	comp := merlin.NewCompiler(t, nil, opts)
	if _, err := comp.Compile(pol); err != nil {
		return 0, err
	}
	caps := make([]float64, c.Tenants)
	for i := range caps {
		caps[i] = 10 * topo.MBps
	}
	rebuild := func() policy.Formula {
		terms := make([]policy.Formula, len(caps))
		for i, cap := range caps {
			terms[i] = policy.Max{Expr: policy.BandExpr{IDs: []string{pol.Statements[i].ID}}, Rate: cap}
		}
		return policy.ConjFormula(terms...)
	}
	ops := c.SampleOps
	if ops > c.Tenants {
		ops = c.Tenants
	}
	stride := c.Tenants / ops
	start := time.Now()
	for k := 0; k < ops; k++ {
		i := k * stride
		stmt := pol.Statements[i]
		// The delegation check the old path ran per demand: new cap
		// against the statement's delegated budget.
		newCap := 5 * topo.MBps
		if k%2 == 1 {
			newCap = 8 * topo.MBps
		}
		parent := &policy.Policy{Statements: []policy.Statement{stmt},
			Formula: policy.Max{Expr: policy.BandExpr{IDs: []string{stmt.ID}}, Rate: 10 * topo.MBps}}
		child := &policy.Policy{Statements: []policy.Statement{stmt},
			Formula: policy.Max{Expr: policy.BandExpr{IDs: []string{stmt.ID}}, Rate: newCap}}
		rep, err := verify.CheckRefinement(parent, child, verify.Options{})
		if err != nil {
			return 0, err
		}
		if err := rep.Err(); err != nil {
			return 0, fmt.Errorf("serial baseline refinement rejected: %w", err)
		}
		caps[i] = newCap
		if _, err := comp.Update(merlin.Delta{Formula: rebuild()}); err != nil {
			return 0, err
		}
	}
	perOp := ms(time.Since(start)) / float64(ops)
	if math.IsNaN(perOp) || perOp <= 0 {
		return 0, fmt.Errorf("serial baseline measured nothing")
	}
	return perOp * float64(c.Tenants), nil
}
