package experiments

import (
	"fmt"
	"time"

	"merlin/internal/logical"
	"merlin/internal/policy"
	"merlin/internal/provision"
	"merlin/internal/regex"
	"merlin/internal/topo"
	"merlin/internal/verify"
)

// AblationHeuristics runs the three Fig. 3 path-selection objectives on
// the two-path topology and reports the quantities each optimizes.
func AblationHeuristics() ([]Row, error) {
	t := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	alpha := logical.Alphabet(t)
	g, err := logical.BuildMinimized(t, regex.MustParse("h1 .* h2"), alpha)
	if err != nil {
		return nil, err
	}
	reqs := []provision.Request{
		{ID: "a", Graph: g, MinRate: 50 * topo.MBps},
		{ID: "b", Graph: g, MinRate: 50 * topo.MBps},
	}
	var rows []Row
	for _, h := range []provision.Heuristic{
		provision.WeightedShortestPath, provision.MinMaxRatio, provision.MinMaxReserved,
	} {
		res, err := provision.Solve(t, reqs, h, provision.Params{})
		if err != nil {
			return nil, err
		}
		hops := 0
		for _, steps := range res.Paths {
			hops += len(logical.Locations(steps)) - 1
		}
		rows = append(rows, row(h.String(),
			"total_hops", fmt.Sprint(hops),
			"rmax", fmt.Sprintf("%.2f", res.RMax),
			"Rmax_MBps", fmt.Sprintf("%.0f", res.RMaxBits/topo.MBps),
		))
	}
	return rows, nil
}

// AblationGreedyVsMIP compares the exact solver with the greedy baseline
// on a fat tree: solve time and the load-balance quality (r_max).
func AblationGreedyVsMIP(guaranteed int) ([]Row, error) {
	t := topo.FatTree(4, topo.Gbps)
	alpha := logical.Alphabet(t)
	hosts := t.Hosts()
	var reqs []provision.Request
	for g := 0; g < guaranteed; g++ {
		src := hosts[g%len(hosts)]
		dst := hosts[(g*5+3)%len(hosts)]
		if src == dst {
			dst = hosts[(g*5+4)%len(hosts)]
		}
		expr := fmt.Sprintf("%s .* %s", t.Node(src).Name, t.Node(dst).Name)
		graph, err := logical.BuildMinimized(t, regex.MustParse(expr), alpha)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, provision.Request{
			ID: fmt.Sprintf("g%d", g), Graph: graph, MinRate: 100 * topo.Mbps,
		})
	}
	var rows []Row
	start := time.Now()
	mipRes, err := provision.Solve(t, reqs, provision.MinMaxRatio, provision.Params{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row("mip",
		"time_ms", fmt.Sprintf("%.1f", ms(time.Since(start))),
		"rmax", fmt.Sprintf("%.3f", mipRes.RMax)))
	start = time.Now()
	greedyRes, err := provision.Greedy(t, reqs)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row("greedy",
		"time_ms", fmt.Sprintf("%.1f", ms(time.Since(start))),
		"rmax", fmt.Sprintf("%.3f", greedyRes.RMax)))
	return rows, nil
}

// AblationMinimization compares language-inclusion checking with and
// without Hopcroft minimization on growing waypoint chains.
func AblationMinimization(nodes []int) ([]Row, error) {
	var rows []Row
	for _, n := range nodes {
		orig, ref, err := regexWorkload(n)
		if err != nil {
			return nil, err
		}
		var times [2]time.Duration
		for i, minimize := range []bool{false, true} {
			start := time.Now()
			rep, err := verify.CheckRefinement(orig, ref, verify.Options{Minimize: minimize})
			if err != nil {
				return nil, err
			}
			if !rep.OK() {
				return nil, fmt.Errorf("minimization ablation: workload rejected")
			}
			times[i] = time.Since(start)
		}
		rows = append(rows, row(fmt.Sprintf("regex_nodes=%d", n),
			"plain_ms", fmt.Sprintf("%.2f", ms(times[0])),
			"minimized_ms", fmt.Sprintf("%.2f", ms(times[1]))))
	}
	return rows, nil
}

// AblationLocalization compares the equal and weighted §3.1 bandwidth
// splits on the paper's aggregate cap.
func AblationLocalization() ([]Row, error) {
	f := policy.Max{Expr: policy.BandExpr{IDs: []string{"x", "y"}}, Rate: 50 * topo.MBps}
	equal, err := policy.Localize(f, policy.EqualSplit)
	if err != nil {
		return nil, err
	}
	weighted, err := policy.Localize(f, policy.WeightedSplit(map[string]float64{"x": 3, "y": 1}))
	if err != nil {
		return nil, err
	}
	return []Row{
		row("equal",
			"x", policy.FormatRate(equal["x"].Max), "y", policy.FormatRate(equal["y"].Max)),
		row("weighted-3:1",
			"x", policy.FormatRate(weighted["x"].Max), "y", policy.FormatRate(weighted["y"].Max)),
	}, nil
}
