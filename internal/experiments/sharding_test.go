package experiments

import (
	"strconv"
	"testing"
)

// TestShardingSpeedup runs the monolithic-vs-sharded cases (each embeds
// its own objective cross-check) and asserts the headline acceptance
// target with margin: the k=8 multi-tenant fat tree must decompose into
// one shard per pod and the sharded solve must beat the monolithic one
// by a wide factor. The benchmark reports the real ratio (≈50x unloaded;
// ≥4x is the acceptance bar, which also serves as the CI-safe floor
// under the race detector and noisy neighbors).
func TestShardingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	for _, c := range ShardingCases() {
		r, err := ShardingRun(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		t.Logf("%s", r.Format())
		if c.Name != "fattree-k8-multitenant" {
			continue
		}
		speedup, err := strconv.ParseFloat(r.Values["speedup"], 64)
		if err != nil {
			t.Fatalf("%s: bad speedup %q", c.Name, r.Values["speedup"])
		}
		if speedup < 4 {
			t.Errorf("%s: sharded speedup %.1fx, want >= 4x", c.Name, speedup)
		}
	}
}
