package experiments

import (
	"strconv"
	"testing"
)

// TestIncrementalSpeedup runs the incremental-vs-full cases (each embeds
// its own correctness cross-check) and asserts the headline acceptance
// target with margin: the k=8 single-statement cap change must beat the
// full recompile by a wide factor. The benchmark reports the real ratio
// (≈35x unloaded; ≥5x is the acceptance bar, 3x the CI-safe floor under
// the race detector and noisy neighbors).
func TestIncrementalSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	for _, c := range IncrementalCases() {
		r, err := IncrementalRun(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		t.Logf("%s", r.Format())
		if c.Name != "fattree-k8-cap-change" {
			continue
		}
		speedup, err := strconv.ParseFloat(r.Values["speedup"], 64)
		if err != nil {
			t.Fatalf("%s: bad speedup %q", c.Name, r.Values["speedup"])
		}
		if speedup < 3 {
			t.Errorf("%s: update speedup %.1fx, want >= 3x (acceptance target 5x)", c.Name, speedup)
		}
	}
}
