package experiments

import (
	"strconv"
	"testing"
)

// TestSolverSpeedup pins the flow-structured solver's acceptance bar: on
// the k=8 multi-tenant fat tree the network-simplex fast path must fire
// on at least half the shards (SolverRun itself asserts that) and the
// default stack must beat the legacy general path by ≥3x. The benchmark
// reports the real ratio (≈6–8x unloaded; 3x is the CI-safe floor under
// noisy neighbors). The min-max case rides along for its engine
// cross-checks — its compaction gain is gated by merlin-bench -check,
// not here, because a ~2x ratio is too timing-fragile for a test.
func TestSolverSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	for _, c := range SolverCases() {
		r, err := SolverRun(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		t.Logf("%s", r.Format())
		if c.Name != "fattree-k8-flow" {
			continue
		}
		speedup, err := strconv.ParseFloat(r.Values["speedup"], 64)
		if err != nil {
			t.Fatalf("%s: bad speedup %q", c.Name, r.Values["speedup"])
		}
		if speedup < 3 {
			t.Errorf("%s: flow-structured speedup %.1fx, want >= 3x", c.Name, speedup)
		}
	}
}
