package experiments

import (
	"fmt"
	"time"

	merlin "merlin"
	"merlin/internal/codegen"
	"merlin/internal/pred"
	"merlin/internal/ternary"
	"merlin/internal/topo"
)

// tcamWorkload builds the ternary-expansion benchmark's IR directly at
// the codegen layer: the k-ary fat-tree all-pairs classification mesh
// (the Hadoop-scale rule population), with every fourth classifier
// carrying a port-range literal — the expensive case, since each range
// multiplies its rule by a prefix cover of up to 2·16−2 rows.
func tcamWorkload(k int) (*topo.Topology, *codegen.Program, error) {
	t := topo.FatTree(k, topo.Gbps)
	hosts := t.Hosts()
	ids := t.Identities()
	// Range bounds chosen for fat prefix covers (unaligned ends).
	ranges := []string{"1021-2043", "3-60001", "1025-65534", "5001-10007"}
	prog := &codegen.Program{}
	n := 0
	edge := t.Switches()
	for _, src := range hosts {
		si, _ := ids.Of(src)
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			di, _ := ids.Of(dst)
			p := pred.Conj(
				pred.Test{Field: "eth.src", Value: si.MAC},
				pred.Test{Field: "eth.dst", Value: di.MAC},
			)
			if n%4 == 0 {
				p = pred.Conj(p, pred.Test{Field: "tcp.dst", Value: ranges[(n/4)%len(ranges)]})
			}
			prog.Rules = append(prog.Rules, codegen.Rule{
				Device:   edge[n%len(edge)],
				Priority: 100 + n%400,
				Match:    codegen.Match{InPort: codegen.AnyPort, Tag: codegen.TagNone, Pred: p},
				Ops:      []codegen.Op{{Kind: codegen.OpForward, Port: topo.LinkID(n % 4)}},
				Stmt:     fmt.Sprintf("s%d", n),
			})
			n++
		}
	}
	return t, prog, nil
}

// Tcam measures the ternary dataplane pass on the k=8 fat tree: the
// expansion of the all-pairs range-heavy classifier mesh into value/mask
// TCAM rows, against the non-materializing estimator that prices the
// same rules for budget admission and the provisioning MIP's budget
// rows. The gated speedup is estimate-vs-materialize on identical rules —
// the reason budget checks can run per compile without paying the
// expansion. A second, ungated row times the end-to-end overflow
// re-placement on the two-path topology (detect overflow, re-solve the
// MIP with budget rows, recompile off the budgeted switch).
func Tcam() ([]Row, error) {
	return tcamRun(8, 5)
}

func tcamRun(k, reps int) ([]Row, error) {
	t, prog, err := tcamWorkload(k)
	if err != nil {
		return nil, err
	}
	opt := ternary.Options{SupportsRange: false}
	ids := t.Identities()

	var expandBest, estimateBest time.Duration
	var entries, estimated int
	for r := 0; r < reps; r++ {
		start := time.Now()
		tables, err := codegen.ExpandProgram(t, prog, opt)
		if err != nil {
			return nil, err
		}
		expand := time.Since(start)

		start = time.Now()
		sum := 0
		for _, rule := range prog.Rules {
			n, err := codegen.EstimateRuleEntries(rule, opt, ids)
			if err != nil {
				return nil, err
			}
			sum += n
		}
		estimate := time.Since(start)

		entries, estimated = tables.Total, sum
		if estimated < entries {
			return nil, fmt.Errorf("estimate %d below materialized %d", estimated, entries)
		}
		if r == 0 || expand < expandBest {
			expandBest = expand
		}
		if r == 0 || estimate < estimateBest {
			estimateBest = estimate
		}
	}
	speedup := 0.0
	if estimateBest > 0 {
		speedup = float64(expandBest) / float64(estimateBest)
	}
	rows := []Row{row(fmt.Sprintf("fattree-k%d-expand", k),
		"rules", fmt.Sprint(len(prog.Rules)),
		"entries", fmt.Sprint(entries),
		"estimated", fmt.Sprint(estimated),
		"expand_ms", fmt.Sprintf("%.1f", ms(expandBest)),
		"estimate_ms", fmt.Sprintf("%.2f", ms(estimateBest)),
		"speedup", fmt.Sprintf("%.1f", speedup),
	)}

	replaceRow, err := tcamReplaceRun(reps)
	if err != nil {
		return nil, err
	}
	return append(rows, replaceRow), nil
}

// tcamReplaceRun times the budget-overflow re-placement loop end to end:
// a guarantee lands on the zero-budget narrow-path switch, the expansion
// overflows, and the compiler re-solves the MIP with the budget as a
// placement constraint. Reported without a speedup key — it is a cost
// measurement (what an overflow adds to a compile), not a ratio to gate.
func tcamReplaceRun(reps int) (Row, error) {
	tp := merlin.TwoPath(400*merlin.MBps, 100*merlin.MBps)
	ids := tp.Identities()
	a, _ := ids.Of(tp.MustLookup("h1"))
	b, _ := ids.Of(tp.MustLookup("h2"))
	src := fmt.Sprintf("g : (eth.src = %s and eth.dst = %s) -> .* at min(50MB/s)", a.MAC, b.MAC)
	pol, err := merlin.ParsePolicy(src, tp)
	if err != nil {
		return Row{}, err
	}

	var plainBest, replaceBest time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := merlin.Compile(pol, tp, nil, merlin.Options{
			NoDefault: true, Targets: []string{"tcam"},
		}); err != nil {
			return Row{}, err
		}
		plain := time.Since(start)

		start = time.Now()
		c := merlin.NewCompiler(tp, nil, merlin.Options{
			NoDefault: true, Targets: []string{"tcam"},
			TableBudgets: map[string]int{"r1": 0},
		})
		if _, err := c.Compile(pol); err != nil {
			return Row{}, err
		}
		replace := time.Since(start)
		if st := c.Stats(); st.OverflowReplacements != 1 {
			return Row{}, fmt.Errorf("expected 1 overflow re-placement, got %d", st.OverflowReplacements)
		}
		if r == 0 || plain < plainBest {
			plainBest = plain
		}
		if r == 0 || replace < replaceBest {
			replaceBest = replace
		}
	}
	return row("twopath-replace",
		"plain_ms", fmt.Sprintf("%.2f", ms(plainBest)),
		"replace_ms", fmt.Sprintf("%.2f", ms(replaceBest)),
	), nil
}
