package experiments

import (
	"strconv"
	"testing"
)

// TestTcamExperiment sanity-checks the ternary-dataplane bench on a
// small instance: the expansion produces entries, the estimator stays an
// upper bound (tcamRun errors otherwise), and the re-placement row
// records a successful budget-constrained compile. The k=8 speedup gate
// lives in merlin-bench -check, not here — estimator-vs-materialize
// ratios are too timing-fragile for a unit test at k=4 scale.
func TestTcamExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	rows, err := tcamRun(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	exp := rows[0]
	t.Logf("%s", exp.Format())
	entries, err := strconv.Atoi(exp.Values["entries"])
	if err != nil || entries == 0 {
		t.Fatalf("bad entries %q: %v", exp.Values["entries"], err)
	}
	estimated, err := strconv.Atoi(exp.Values["estimated"])
	if err != nil || estimated < entries {
		t.Fatalf("estimated %q below entries %d", exp.Values["estimated"], entries)
	}
	if _, ok := exp.Values["speedup"]; !ok {
		t.Fatal("expansion row carries no speedup")
	}
	rep := rows[1]
	t.Logf("%s", rep.Format())
	if rep.Label != "twopath-replace" {
		t.Fatalf("unexpected second row %q", rep.Label)
	}
	if _, ok := rep.Values["replace_ms"]; !ok {
		t.Fatal("replace row carries no replace_ms")
	}
	if _, ok := rep.Values["speedup"]; ok {
		t.Fatal("replace row must stay ungated (no speedup key)")
	}
}
