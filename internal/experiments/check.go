package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"
)

// BenchExperiment is one experiment's machine-readable record — the shape
// merlin-bench writes to BENCH_results.json: wall-clock plus the printed
// rows, whose values carry per-phase timings and speedup ratios.
type BenchExperiment struct {
	Name   string  `json:"name"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	Rows   []Row   `json:"rows,omitempty"`
}

// BenchFile is the BENCH_results.json / BENCH_baseline.json schema.
type BenchFile struct {
	GeneratedAt time.Time         `json:"generated_at"`
	Experiments []BenchExperiment `json:"experiments"`
}

// LoadBenchFile reads a results or baseline file.
func LoadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// CheckRegressions is the CI perf-regression gate: it compares every
// speedup the baseline records against the measured results and reports a
// regression when a measured speedup falls more than tolerance below its
// baseline floor (measured < floor × (1 − tolerance)), or when a
// baseline-covered experiment, row, or speedup is missing from the
// results — a silently dropped benchmark must not pass the gate.
//
// Only "speedup" values are compared: they are same-machine ratios
// (monolithic/sharded, full/incremental, cold/failover, dense/sparse), so
// they transfer across runner generations in a way absolute milliseconds
// do not. The committed baseline carries conservative floors rather than
// raw measurements — see PERFORMANCE.md's "Regression gate" — and the
// tolerance absorbs residual scheduler noise on loaded runners.
//
// The returned slice is empty when nothing regressed.
func CheckRegressions(results, baseline *BenchFile, tolerance float64) []string {
	var regressions []string
	measured := map[string]map[string]Row{}
	for _, e := range results.Experiments {
		rows := map[string]Row{}
		for _, r := range e.Rows {
			rows[r.Label] = r
		}
		measured[e.Name] = rows
	}
	for _, be := range baseline.Experiments {
		rows, ok := measured[be.Name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: experiment missing from results", be.Name))
			continue
		}
		for _, br := range be.Rows {
			floorStr, ok := br.Values["speedup"]
			if !ok {
				continue // baseline row carries no gated metric
			}
			floor, err := strconv.ParseFloat(floorStr, 64)
			if err != nil {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: bad baseline speedup %q", be.Name, br.Label, floorStr))
				continue
			}
			mr, ok := rows[br.Label]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: row missing from results", be.Name, br.Label))
				continue
			}
			gotStr, ok := mr.Values["speedup"]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: no speedup recorded", be.Name, br.Label))
				continue
			}
			got, err := strconv.ParseFloat(gotStr, 64)
			if err != nil {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: bad measured speedup %q", be.Name, br.Label, gotStr))
				continue
			}
			if bar := floor * (1 - tolerance); got < bar {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: speedup %.2fx regressed below %.2fx (baseline %.2fx − %.0f%% tolerance)",
					be.Name, br.Label, got, bar, floor, tolerance*100))
			}
		}
	}
	sort.Strings(regressions)
	return regressions
}
