package experiments

import (
	"fmt"
	"math"
	"time"

	"merlin/internal/logical"
	"merlin/internal/provision"
	"merlin/internal/regex"
	"merlin/internal/topo"
)

// ShardingCase is one monolithic-vs-sharded provisioning measurement: a
// multi-tenant workload whose tenants' path expressions confine them to
// link-disjoint slices of the fabric, so the global MIP decomposes into
// one shard per tenant.
type ShardingCase struct {
	Name string
	K    int // fat-tree arity; one tenant per pod
	// GuaranteesPerTenant is the number of intra-pod guarantees each
	// tenant requests.
	GuaranteesPerTenant int
}

// ShardingCases returns the measured workloads. The headline case is the
// acceptance target: a k=8 fat tree with one tenant per pod, where the
// sharded solve must beat the monolithic one by ≥4x.
func ShardingCases() []ShardingCase {
	return []ShardingCase{
		{Name: "fattree-k8-multitenant", K: 8, GuaranteesPerTenant: 4},
	}
}

// podNames lists the switch and host names of fat-tree pod p (arity k):
// the pod's aggregation and edge switches and its hosts — everything an
// intra-pod path may traverse without touching the shared core.
func podNames(k, p int) []string {
	half := k / 2
	var names []string
	for i := 0; i < half; i++ {
		names = append(names, fmt.Sprintf("agg%d_%d", p, i), fmt.Sprintf("edge%d_%d", p, i))
		for h := 0; h < half; h++ {
			names = append(names, fmt.Sprintf("h%d_%d_%d", p, i, h))
		}
	}
	return names
}

// tenantPair picks tenant p's g-th deterministic intra-pod host pair —
// the one pairing scheme shared by the sharding and failover benchmarks
// (the failover speedup claim depends on matching workloads).
func tenantPair(p, g, half int) (src, dst string) {
	se, sh := g%half, (g/half)%half
	de, dh := (g+1)%half, (g+2)%half
	src = fmt.Sprintf("h%d_%d_%d", p, se, sh)
	dst = fmt.Sprintf("h%d_%d_%d", p, de, dh)
	if src == dst {
		dh = (dh + 1) % half
		dst = fmt.Sprintf("h%d_%d_%d", p, de, dh)
	}
	return src, dst
}

// tenantRequests builds the per-pod tenants' guarantee requests: tenant p
// asks for n guarantees between deterministic host pairs inside pod p,
// each confined to the pod by the path expression (podNodes)*.
func tenantRequests(t *topo.Topology, k, n int) ([]provision.Request, error) {
	alpha := logical.Alphabet(t)
	half := k / 2
	var reqs []provision.Request
	for p := 0; p < k; p++ {
		names := podNames(k, p)
		syms := make([]regex.Expr, len(names))
		for i, nm := range names {
			syms[i] = regex.Sym{Name: nm}
		}
		expr := regex.Star{X: regex.AltAll(syms...)}
		for g := 0; g < n; g++ {
			src, dst := tenantPair(p, g, half)
			graph, err := logical.BuildAnchored(t, expr, alpha, src, dst)
			if err != nil {
				return nil, fmt.Errorf("tenant %d guarantee %d: %w", p, g, err)
			}
			reqs = append(reqs, provision.Request{
				ID:      fmt.Sprintf("t%dg%d", p, g),
				Graph:   graph,
				MinRate: float64(10+5*g) * topo.Mbps,
			})
		}
	}
	return reqs, nil
}

// Sharding measures each case: the wall-clock of the monolithic solve
// versus the sharded solve over the worker pool, cross-checking that the
// two agree on the weighted-shortest-path objective and produce valid
// allocations.
func Sharding() ([]Row, error) {
	var rows []Row
	for _, c := range ShardingCases() {
		r, err := ShardingRun(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		rows = append(rows, r)
	}
	zoo, err := ZooSharding()
	if err != nil {
		return nil, err
	}
	return append(rows, zoo...), nil
}

// ShardingRun measures one case.
func ShardingRun(c ShardingCase) (Row, error) {
	t := topo.FatTree(c.K, topo.Gbps)
	reqs, err := tenantRequests(t, c.K, c.GuaranteesPerTenant)
	if err != nil {
		return Row{}, err
	}

	// The baseline is the PR-5 general path — monolithic, paper-literal
	// encoding, no flow-structure detection — so the measured ratio
	// compounds sharding with the flow-structured solver the default
	// (sharded) side now runs: these workloads are netflow-eligible, so
	// each shard solves as unit min-cost flows with no B&B at all.
	monoStart := time.Now()
	mono, err := provision.Solve(t, reqs, provision.WeightedShortestPath,
		provision.Params{NoShard: true, NoNetflow: true, LegacyModel: true})
	if err != nil {
		return Row{}, fmt.Errorf("monolithic solve: %w", err)
	}
	monoMS := ms(time.Since(monoStart))

	shardStart := time.Now()
	sharded, err := provision.Solve(t, reqs, provision.WeightedShortestPath, provision.Params{})
	if err != nil {
		return Row{}, fmt.Errorf("sharded solve: %w", err)
	}
	shardMS := ms(time.Since(shardStart))

	// Equivalence: the weighted-shortest-path objective is a sum over
	// requests, so the merged sharded optimum must match the monolithic
	// one; both allocations must fit capacity.
	objDelta := 0.0
	for _, r := range reqs {
		mh := float64(len(logical.Locations(mono.Paths[r.ID])) - 1)
		sh := float64(len(logical.Locations(sharded.Paths[r.ID])) - 1)
		objDelta += (r.MinRate/topo.Mbps + 1e-4) * (sh - mh)
	}
	if math.Abs(objDelta) > 1e-6 {
		return Row{}, fmt.Errorf("sharded objective diverges from monolithic by %g", objDelta)
	}
	if err := mono.Validate(t); err != nil {
		return Row{}, err
	}
	if err := sharded.Validate(t); err != nil {
		return Row{}, err
	}
	if len(sharded.Shards) != c.K {
		return Row{}, fmt.Errorf("expected %d link-disjoint shards, got %d", c.K, len(sharded.Shards))
	}

	speedup := 0.0
	if shardMS > 0 {
		speedup = monoMS / shardMS
	}
	return row(c.Name,
		"requests", fmt.Sprint(len(reqs)),
		"shards", fmt.Sprint(len(sharded.Shards)),
		"monolithic_ms", fmt.Sprintf("%.1f", monoMS),
		"sharded_ms", fmt.Sprintf("%.1f", shardMS),
		"speedup", fmt.Sprintf("%.1f", speedup),
		"mono_nodes", fmt.Sprint(mono.Nodes),
		"sharded_nodes", fmt.Sprint(sharded.Nodes),
		"netflow_shards", fmt.Sprint(sharded.NetflowShards),
	), nil
}
