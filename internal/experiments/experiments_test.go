package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFig4ShapesMatchPaper(t *testing.T) {
	rows, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 policies", len(rows))
	}
	total := func(r Row) int {
		v, _ := strconv.Atoi(r.Values["total"])
		return v
	}
	base := total(rows[0])
	if base == 0 {
		t.Fatal("baseline emitted nothing")
	}
	// Paper shape: every richer policy emits more instructions than the
	// baseline; the combination emits the most.
	for _, r := range rows[1:] {
		if total(r) <= base {
			t.Errorf("%s total %d not above baseline %d", r.Label, total(r), base)
		}
	}
	combo := total(rows[4])
	for _, r := range rows[:4] {
		if total(r) >= combo {
			t.Errorf("combo (%d) should dominate %s (%d)", combo, r.Label, total(r))
		}
	}
	// The bandwidth policy produces queues and tc entries.
	if rows[1].Values["queues"] == "0" || rows[1].Values["tc"] == "0" {
		t.Errorf("bandwidth policy: %+v", rows[1].Values)
	}
	// Middlebox policies produce Click configs.
	if rows[2].Values["click"] == "0" || rows[3].Values["click"] == "0" {
		t.Errorf("middlebox policies lack click configs")
	}
}

func TestHadoopRows(t *testing.T) {
	rows, err := Hadoop()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(i int) float64 {
		v, _ := strconv.ParseFloat(rows[i].Values["completion_s"], 64)
		return v
	}
	if !(get(0) < get(2) && get(2) < get(1)) {
		t.Fatalf("ordering wrong: %v %v %v", get(0), get(1), get(2))
	}
}

func TestFig5Rows(t *testing.T) {
	rows, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13 client points", len(rows))
	}
	last := rows[len(rows)-1]
	r2, _ := strconv.ParseFloat(last.Values["merlin_r2"], 64)
	if r2 < 590 {
		t.Fatalf("guaranteed ring throughput = %v Mbps", r2)
	}
}

func TestFig6Sampled(t *testing.T) {
	rows, err := Fig6(40) // 7 sampled topologies
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Values["compile_ms"] == "" {
			t.Fatalf("missing timing in %v", r)
		}
	}
}

func TestTable7SmallestCase(t *testing.T) {
	r, err := Table7(Table7Cases()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["lp_solve_ms"] == "" || r.Values["rateless_ms"] == "" {
		t.Fatalf("row = %v", r)
	}
}

func TestFig8SmallPanels(t *testing.T) {
	cases := Fig8Cases()
	// Run the first scale point of each panel.
	for _, c := range cases {
		c.Scales = c.Scales[:1]
		rows, err := Fig8(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("%s rows = %d", c.Name, len(rows))
		}
	}
}

func TestFig9AllPanels(t *testing.T) {
	rows, err := Fig9Predicates([]int{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("fig9a rows")
	}
	rows, err = Fig9Regexes([]int{20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("fig9b rows")
	}
	rows, err = Fig9Allocations([]int{10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rows[0].Label, "allocations") {
		t.Fatalf("label = %s", rows[0].Label)
	}
}

func TestFig10Series(t *testing.T) {
	aimd, err := Fig10AIMD()
	if err != nil {
		t.Fatal(err)
	}
	if len(aimd) != 2 || len(aimd[0].Samples) == 0 {
		t.Fatal("aimd series")
	}
	mmfs, err := Fig10MMFS()
	if err != nil {
		t.Fatal(err)
	}
	rows := SeriesRows(mmfs, 5)
	if len(rows) == 0 {
		t.Fatal("mmfs rows")
	}
}

func TestAblations(t *testing.T) {
	rows, err := AblationHeuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("heuristics rows")
	}
	// WSP minimizes hops (4), MinMaxRatio minimizes rmax (0.25).
	if rows[0].Values["total_hops"] != "4" {
		t.Errorf("wsp hops = %s", rows[0].Values["total_hops"])
	}
	if rows[1].Values["rmax"] != "0.25" {
		t.Errorf("minmax rmax = %s", rows[1].Values["rmax"])
	}
	g, err := AblationGreedyVsMIP(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Fatal("greedy-vs-mip rows")
	}
	m, err := AblationMinimization([]int{20})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 {
		t.Fatal("minimization rows")
	}
	l, err := AblationLocalization()
	if err != nil {
		t.Fatal(err)
	}
	// 3/4 of 50 MB/s = 37.5 MB/s = 300 Mbps (rendered in the unit that
	// divides evenly).
	if l[1].Values["x"] != "300Mbps" {
		t.Errorf("weighted split = %v", l[1].Values)
	}
}

func TestRowFormat(t *testing.T) {
	r := row("label", "a", "1", "b", "2")
	s := r.Format()
	if !strings.Contains(s, "a=1") || !strings.Contains(s, "b=2") {
		t.Fatalf("format = %q", s)
	}
}
