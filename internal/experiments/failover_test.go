package experiments

import (
	"strconv"
	"testing"
)

// TestFailoverSpeedup runs the failure-recovery cases (each embeds its own
// correctness cross-checks: byte-identical output versus a cold recompile
// of the degraded topology, shard-local re-provisioning, and reroutes that
// avoid the failed cable) and asserts the headline acceptance target: on
// the k=8 fat tree, link-failure recovery through the incremental pipeline
// must be ≥5x faster than a cold recompile (≈8x measured unloaded — the
// failure re-enters one of the eight tenant shards, so the ratio tracks
// the untouched-work fraction rather than machine speed). One retry
// absorbs scheduler noise on loaded CI runners; the correctness checks are
// never retried away — a run that fails them fails the test immediately.
func TestFailoverSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	for _, c := range FailoverCases() {
		var r Row
		var speedup float64
		for attempt := 0; ; attempt++ {
			var err error
			r, err = FailoverRun(c)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			t.Logf("%s", r.Format())
			speedup, err = strconv.ParseFloat(r.Values["speedup"], 64)
			if err != nil {
				t.Fatalf("%s: bad speedup %q", c.Name, r.Values["speedup"])
			}
			if speedup >= 5 || attempt >= 1 {
				break
			}
			t.Logf("%s: speedup %.1fx below bar, retrying once for timing noise", c.Name, speedup)
		}
		if c.Name == "fattree-k8-failover" && speedup < 5 {
			t.Errorf("%s: failover speedup %.1fx, want >= 5x", c.Name, speedup)
		}
	}
}
