package experiments

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"time"

	"merlin/internal/corpus"
	"merlin/internal/logical"
	"merlin/internal/provision"
	"merlin/internal/regex"
	"merlin/internal/topo"

	merlin "merlin"
)

// ZooScaleCase is one real-topology scale measurement: a Topology Zoo
// network with over a hundred switches, partitioned into link-disjoint
// regions by the corpus partitioner, with per-region tenants whose
// guarantees confine to their region — the fat-tree sharding/failover
// workload transplanted onto irregular real-world graphs.
type ZooScaleCase struct {
	Name string
	// Topo is the corpus topology name (zoo-N).
	Topo string
	// Regions is the region count requested from the partitioner; regions
	// with fewer than two hosts are dropped, so the tenant count may come
	// out lower.
	Regions int
	// GuaranteesPerTenant is the number of intra-region guarantees each
	// tenant requests.
	GuaranteesPerTenant int
}

// ZooShardingCases returns the sharding measurements: a 127-switch
// tree-like ISP graph and a 104-switch ring-like backbone. Sparse
// families keep the monolithic dense-tableau baseline solvable (a dense
// Waxman entry of the same size blows its iteration budget), and their
// regions still decompose cleanly.
func ZooShardingCases() []ZooScaleCase {
	return []ZooScaleCase{
		{Name: "zoo-2-tree127", Topo: "zoo-2", Regions: 5, GuaranteesPerTenant: 3},
		{Name: "zoo-40-ring104", Topo: "zoo-40", Regions: 5, GuaranteesPerTenant: 3},
	}
}

// ZooFailoverCases returns the failover measurements: two Waxman-family
// zoo graphs past the 100-switch mark. Only the dense families can carry
// this one — a region of a tree or ring entry has no internal
// redundancy, so a confined guarantee there cannot survive an
// intra-region cable loss.
func ZooFailoverCases() []ZooScaleCase {
	return []ZooScaleCase{
		{Name: "zoo-14-waxman120", Topo: "zoo-14", Regions: 8, GuaranteesPerTenant: 3},
		{Name: "zoo-54-waxman110", Topo: "zoo-54", Regions: 8, GuaranteesPerTenant: 3},
	}
}

// zooRegions builds the case's topology and its per-tenant regions.
func zooRegions(c ZooScaleCase) (*topo.Topology, [][]string, [][]string, error) {
	t, err := corpus.BuildTopo(c.Topo)
	if err != nil {
		return nil, nil, nil, err
	}
	names, hosts := corpus.Regions(t, c.Regions)
	if len(names) < 2 {
		return nil, nil, nil, fmt.Errorf("%s partitions into %d regions, need ≥2 for sharding", c.Topo, len(names))
	}
	return t, names, hosts, nil
}

// zooPair picks tenant p's g-th deterministic intra-region host pair.
func zooPair(hosts []string, p, g int) (src, dst string) {
	n := len(hosts)
	i := (p + g) % n
	j := (i + 1 + g%(n-1)) % n
	if i == j {
		j = (j + 1) % n
	}
	return hosts[i], hosts[j]
}

// zooRequests builds the per-region tenants' guarantee requests: tenant p
// asks for n guarantees between deterministic host pairs inside region p,
// each confined to the region by the path expression (regionNodes)*.
func zooRequests(t *topo.Topology, names, hosts [][]string, n int) ([]provision.Request, error) {
	alpha := logical.Alphabet(t)
	var reqs []provision.Request
	for p := range names {
		syms := make([]regex.Expr, len(names[p]))
		for i, nm := range names[p] {
			syms[i] = regex.Sym{Name: nm}
		}
		expr := regex.Star{X: regex.AltAll(syms...)}
		for g := 0; g < n; g++ {
			src, dst := zooPair(hosts[p], p, g)
			graph, err := logical.BuildAnchored(t, expr, alpha, src, dst)
			if err != nil {
				return nil, fmt.Errorf("region %d guarantee %d: %w", p, g, err)
			}
			reqs = append(reqs, provision.Request{
				ID:      fmt.Sprintf("z%dg%d", p, g),
				Graph:   graph,
				MinRate: float64(10+5*g) * topo.Mbps,
			})
		}
	}
	return reqs, nil
}

// ZooSharding measures monolithic-vs-sharded provisioning on each zoo
// case, with the same equivalence cross-checks as the fat-tree rows.
func ZooSharding() ([]Row, error) {
	var rows []Row
	for _, c := range ZooShardingCases() {
		r, err := ZooShardingRun(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// ZooShardingRun measures one case.
func ZooShardingRun(c ZooScaleCase) (Row, error) {
	t, names, hosts, err := zooRegions(c)
	if err != nil {
		return Row{}, err
	}
	reqs, err := zooRequests(t, names, hosts, c.GuaranteesPerTenant)
	if err != nil {
		return Row{}, err
	}

	monoStart := time.Now()
	mono, err := provision.Solve(t, reqs, provision.WeightedShortestPath,
		provision.Params{NoShard: true, NoNetflow: true, LegacyModel: true})
	if err != nil {
		return Row{}, fmt.Errorf("monolithic solve: %w", err)
	}
	monoMS := ms(time.Since(monoStart))

	shardStart := time.Now()
	sharded, err := provision.Solve(t, reqs, provision.WeightedShortestPath, provision.Params{})
	if err != nil {
		return Row{}, fmt.Errorf("sharded solve: %w", err)
	}
	shardMS := ms(time.Since(shardStart))

	objDelta := 0.0
	for _, r := range reqs {
		mh := float64(len(logical.Locations(mono.Paths[r.ID])) - 1)
		sh := float64(len(logical.Locations(sharded.Paths[r.ID])) - 1)
		objDelta += (r.MinRate/topo.Mbps + 1e-4) * (sh - mh)
	}
	if math.Abs(objDelta) > 1e-6 {
		return Row{}, fmt.Errorf("sharded objective diverges from monolithic by %g", objDelta)
	}
	if err := mono.Validate(t); err != nil {
		return Row{}, err
	}
	if err := sharded.Validate(t); err != nil {
		return Row{}, err
	}
	if len(sharded.Shards) != len(names) {
		return Row{}, fmt.Errorf("expected %d link-disjoint shards, got %d", len(names), len(sharded.Shards))
	}

	speedup := 0.0
	if shardMS > 0 {
		speedup = monoMS / shardMS
	}
	return row(c.Name,
		"requests", fmt.Sprint(len(reqs)),
		"shards", fmt.Sprint(len(sharded.Shards)),
		"monolithic_ms", fmt.Sprintf("%.1f", monoMS),
		"sharded_ms", fmt.Sprintf("%.1f", shardMS),
		"speedup", fmt.Sprintf("%.1f", speedup),
		"mono_nodes", fmt.Sprint(mono.Nodes),
		"sharded_nodes", fmt.Sprint(sharded.Nodes),
		"netflow_shards", fmt.Sprint(sharded.NetflowShards),
	), nil
}

// zooPolicy renders the per-region tenants' guarantees as Merlin source,
// mirroring zooRequests at the policy level.
func zooPolicy(t *topo.Topology, names, hosts [][]string, n int) string {
	mac := func(name string) string {
		return topo.MACOf(t.MustLookup(name))
	}
	var sb strings.Builder
	sb.WriteString("[")
	for p := range names {
		expr := "( " + strings.Join(names[p], " | ") + " )*"
		for g := 0; g < n; g++ {
			src, dst := zooPair(hosts[p], p, g)
			fmt.Fprintf(&sb, " z%dg%d : (eth.src = %s and eth.dst = %s) -> %s at min(%dMbps) ;",
				p, g, mac(src), mac(dst), expr, 10+5*g)
		}
	}
	sb.WriteString("]")
	return sb.String()
}

// zooFailureTarget picks the cable to fail: the first switch-to-switch
// hop on any provisioned path whose loss the owning region survives — on
// an irregular graph a hop can be a bridge, so each candidate is checked
// against the region before being failed.
func zooFailureTarget(t *topo.Topology, names, hosts [][]string, g int, paths map[string][]string) (a, b string, err error) {
	for p := range names {
		for q := 0; q < g; q++ {
			src, dst := zooPair(hosts[p], p, q)
			path := paths[fmt.Sprintf("z%dg%d", p, q)]
			for i := 1; i < len(path); i++ {
				na, okA := t.Lookup(path[i-1])
				nb, okB := t.Lookup(path[i])
				if !okA || !okB {
					continue
				}
				if t.Node(na).Kind != topo.Switch || t.Node(nb).Kind != topo.Switch {
					continue
				}
				if corpus.RegionConnects(t, names[p], src, dst, path[i-1], path[i]) {
					return path[i-1], path[i], nil
				}
			}
		}
	}
	return "", "", fmt.Errorf("no survivable switch-switch hop on any provisioned path")
}

// ZooFailover measures link-failure recovery on each zoo case: the warm
// incremental pipeline versus a cold recompile on the degraded topology,
// with the same byte-identical cross-check as the fat-tree row.
func ZooFailover() ([]Row, error) {
	var rows []Row
	for _, c := range ZooFailoverCases() {
		r, err := ZooFailoverRun(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// ZooFailoverRun measures one case.
func ZooFailoverRun(c ZooScaleCase) (Row, error) {
	t, names, hosts, err := zooRegions(c)
	if err != nil {
		return Row{}, err
	}
	pol, err := merlin.ParsePolicy(zooPolicy(t, names, hosts, c.GuaranteesPerTenant), t)
	if err != nil {
		return Row{}, err
	}
	opts := merlin.Options{NoDefault: true}
	comp := merlin.NewCompiler(t, nil, opts)
	if _, err := comp.Compile(pol); err != nil {
		return Row{}, fmt.Errorf("warm build: %w", err)
	}
	a, b, err := zooFailureTarget(t, names, hosts, c.GuaranteesPerTenant, comp.Result().Paths)
	if err != nil {
		return Row{}, err
	}

	t2, err := corpus.BuildTopo(c.Topo)
	if err != nil {
		return Row{}, err
	}
	if _, err := t2.SetLinkState(t2.MustLookup(a), t2.MustLookup(b), false); err != nil {
		return Row{}, err
	}
	coldStart := time.Now()
	cold, err := merlin.Compile(pol, t2, nil, opts)
	if err != nil {
		return Row{}, fmt.Errorf("cold recompile: %w", err)
	}
	coldMS := ms(time.Since(coldStart))

	before := comp.Stats()
	failStart := time.Now()
	diff, err := comp.ApplyTopo(merlin.LinkFailure(a, b))
	if err != nil {
		return Row{}, fmt.Errorf("failover update: %w", err)
	}
	failMS := ms(time.Since(failStart))
	after := comp.Stats()

	got := comp.Result()
	if !reflect.DeepEqual(got.Output, cold.Output) {
		return Row{}, fmt.Errorf("incremental failover output diverges from cold recompile")
	}
	if !reflect.DeepEqual(got.Programs, cold.Programs) {
		return Row{}, fmt.Errorf("incremental failover programs diverge from cold recompile")
	}
	for id, path := range got.Paths {
		if len(path) < 2 {
			return Row{}, fmt.Errorf("guarantee %s lost its path", id)
		}
		for i := 1; i < len(path); i++ {
			if (path[i-1] == a && path[i] == b) || (path[i-1] == b && path[i] == a) {
				return Row{}, fmt.Errorf("guarantee %s still routed across failed link %s-%s", id, a, b)
			}
		}
	}
	resolved := after.ShardsSolved - before.ShardsSolved
	reused := after.ShardsReused - before.ShardsReused
	if resolved != 1 || reused != len(names)-1 {
		return Row{}, fmt.Errorf("failure re-entered %d shards (reused %d), want 1 (%d): recovery is not shard-local",
			resolved, reused, len(names)-1)
	}
	if insDiff, remDiff := diff.Counts(); insDiff.Total() == 0 || remDiff.Total() == 0 {
		return Row{}, fmt.Errorf("failover produced an empty reroute diff")
	}

	speedup := 0.0
	if failMS > 0 {
		speedup = coldMS / failMS
	}
	return row(c.Name,
		"requests", fmt.Sprint(len(names)*c.GuaranteesPerTenant),
		"cold_ms", fmt.Sprintf("%.1f", coldMS),
		"failover_ms", fmt.Sprintf("%.2f", failMS),
		"speedup", fmt.Sprintf("%.1f", speedup),
		"shards_resolved", fmt.Sprint(resolved),
		"shards_reused", fmt.Sprint(reused),
		"graphs_invalidated", fmt.Sprint(after.AnchoredInvalidated-before.AnchoredInvalidated),
	), nil
}
