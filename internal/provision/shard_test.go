package provision

import (
	"strconv"
	"strings"
	"testing"

	"merlin/internal/logical"
	"merlin/internal/regex"
	"merlin/internal/topo"
)

// arcExpr builds the restricted path expression confining a request to
// the given node names: (n1|n2|...)*.
func arcExpr(names []string) regex.Expr {
	syms := make([]regex.Expr, len(names))
	for i, n := range names {
		syms[i] = regex.Sym{Name: n}
	}
	return regex.Star{X: regex.AltAll(syms...)}
}

// anchoredReq builds a Request whose product graph is confined to the
// named nodes (which must include src and dst).
func anchoredReq(t *testing.T, tp *topo.Topology, alpha *regex.Alphabet, id string, names []string, src, dst string, rate float64) Request {
	t.Helper()
	g, err := logical.BuildAnchored(tp, arcExpr(names), alpha, src, dst)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return Request{ID: id, Graph: g, MinRate: rate}
}

// ringTenants builds an n-switch ring with one host per switch and two
// link-disjoint tenants confined to opposite arcs: tenant A on switches
// [0, n/2), tenant B on [n/2, n). Requests route host-to-host inside
// their own arc.
func ringTenants(t *testing.T, n int) (*topo.Topology, []Request) {
	t.Helper()
	tp := topo.Ring(n, 1, 100*topo.MBps)
	alpha := logical.Alphabet(tp)
	arc := func(lo, hi int) []string {
		var names []string
		for i := lo; i < hi; i++ {
			names = append(names, switchName(i), hostName(i))
		}
		return names
	}
	half := n / 2
	reqs := []Request{
		anchoredReq(t, tp, alpha, "a0", arc(0, half), hostName(0), hostName(half-1), 20*topo.MBps),
		anchoredReq(t, tp, alpha, "a1", arc(0, half), hostName(1), hostName(half-2), 10*topo.MBps),
		anchoredReq(t, tp, alpha, "b0", arc(half, n), hostName(half), hostName(n-1), 30*topo.MBps),
		anchoredReq(t, tp, alpha, "b1", arc(half, n), hostName(half+1), hostName(n-2), 10*topo.MBps),
	}
	return tp, reqs
}

func switchName(i int) string { return "s" + strconv.Itoa(i) }
func hostName(i int) string   { return "h" + strconv.Itoa(i) + "_0" }

func TestPartitionDisjointTenants(t *testing.T) {
	tp, reqs := ringTenants(t, 8)
	comps := Partition(tp, reqs)
	if len(comps) != 2 {
		t.Fatalf("Partition = %v, want 2 link-disjoint shards", comps)
	}
	if comps[0][0] != 0 || comps[0][1] != 1 || comps[1][0] != 2 || comps[1][1] != 3 {
		t.Fatalf("Partition membership = %v, want [[0 1] [2 3]]", comps)
	}
}

func TestPartitionZeroRateSingleton(t *testing.T) {
	tp, reqs := ringTenants(t, 8)
	// A zero-rate request spanning the whole ring still shards alone: it
	// reserves nothing, so it couples with nobody.
	alpha := logical.Alphabet(tp)
	g, err := logical.BuildAnchored(tp, regex.Star{X: regex.Any{}}, alpha, hostName(0), hostName(4))
	if err != nil {
		t.Fatal(err)
	}
	reqs = append(reqs, Request{ID: "z", Graph: g, MinRate: 0})
	comps := Partition(tp, reqs)
	if len(comps) != 3 {
		t.Fatalf("Partition = %v, want 3 shards (zero-rate request alone)", comps)
	}
	if len(comps[2]) != 1 || comps[2][0] != 4 {
		t.Fatalf("zero-rate request not in its own shard: %v", comps)
	}
}

func TestPartitionCoupledFallsBackToOneShard(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	alpha := logical.Alphabet(tp)
	g1, err := logical.BuildAnchored(tp, regex.Star{X: regex.Any{}}, alpha, "h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{ID: "a", Graph: g1, MinRate: 50 * topo.MBps},
		{ID: "b", Graph: g1, MinRate: 50 * topo.MBps},
	}
	if comps := Partition(tp, reqs); len(comps) != 1 {
		t.Fatalf("coupled requests split into %d shards", len(comps))
	}
	// The fully-coupled solve is the monolithic path: one shard solution.
	res, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 1 || res.ShardsSolved != 1 || res.Basis == nil {
		t.Fatalf("monolithic fallback: shards=%d solved=%d basis=%v",
			len(res.Shards), res.ShardsSolved, res.Basis)
	}
}

func TestShardedMatchesMonolithicOnDisjointRing(t *testing.T) {
	tp, reqs := ringTenants(t, 8)
	sharded, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Solve(tp, reqs, WeightedShortestPath, Params{NoShard: true})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.ShardsSolved != 2 || len(sharded.Shards) != 2 {
		t.Fatalf("expected 2 solved shards, got %+v", sharded.ShardsSolved)
	}
	if mono.ShardsSolved != 1 || len(mono.Shards) != 1 {
		t.Fatalf("NoShard did not solve monolithically: %+v", mono.ShardsSolved)
	}
	// Arc-confined routes are unique, so the solutions agree exactly.
	for id := range mono.Paths {
		if got, want := pathNames(tp, sharded.Paths[id]), pathNames(tp, mono.Paths[id]); strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: sharded path %v != monolithic %v", id, got, want)
		}
	}
	for l, want := range mono.Reserved {
		if got := sharded.Reserved[l]; got != want {
			t.Errorf("link %d: sharded reserves %v, monolithic %v", l, got, want)
		}
	}
	if len(sharded.Reserved) != len(mono.Reserved) {
		t.Errorf("reserved link sets differ: %d vs %d", len(sharded.Reserved), len(mono.Reserved))
	}
	if sharded.RMax != mono.RMax || sharded.RMaxBits != mono.RMaxBits {
		t.Errorf("rmax %v/%v vs %v/%v", sharded.RMax, sharded.RMaxBits, mono.RMax, mono.RMaxBits)
	}
	if err := sharded.Validate(tp); err != nil {
		t.Fatal(err)
	}
}

func TestShardReuseAndWarmStart(t *testing.T) {
	tp, reqs := ringTenants(t, 8)
	first, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}

	// Unchanged requests: every shard is served from the reuse set.
	again, err := Solve(tp, reqs, WeightedShortestPath, Params{Reuse: first.Shards})
	if err != nil {
		t.Fatal(err)
	}
	if again.ShardsReused != 2 || again.ShardsSolved != 0 || again.ShardsWarm != 0 {
		t.Fatalf("full reuse: solved=%d warm=%d reused=%d",
			again.ShardsSolved, again.ShardsWarm, again.ShardsReused)
	}

	// Rate change in tenant B only: its shard warm-starts from the cached
	// basis, tenant A's solution is reused outright.
	changed := append([]Request(nil), reqs...)
	changed[2].MinRate = 40 * topo.MBps
	delta, err := Solve(tp, changed, WeightedShortestPath, Params{Reuse: first.Shards})
	if err != nil {
		t.Fatal(err)
	}
	if delta.ShardsReused != 1 || delta.ShardsWarm != 1 || delta.ShardsSolved != 0 {
		t.Fatalf("rate delta: solved=%d warm=%d reused=%d",
			delta.ShardsSolved, delta.ShardsWarm, delta.ShardsReused)
	}
	// The touched shard's reservation reflects the new rate.
	fresh, err := Solve(tp, changed, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if delta.RMax != fresh.RMax {
		t.Fatalf("warm re-solve rmax %v != fresh %v", delta.RMax, fresh.RMax)
	}

	// Membership change (a request removed): its shard re-solves cold,
	// the untouched tenant is still reused.
	shrunk := []Request{reqs[0], reqs[2], reqs[3]}
	rem, err := Solve(tp, shrunk, WeightedShortestPath, Params{Reuse: first.Shards})
	if err != nil {
		t.Fatal(err)
	}
	if rem.ShardsReused != 1 || rem.ShardsSolved != 1 {
		t.Fatalf("membership delta: solved=%d warm=%d reused=%d",
			rem.ShardsSolved, rem.ShardsWarm, rem.ShardsReused)
	}
}

func TestDirtyCableBlocksShardReuse(t *testing.T) {
	tp, reqs := ringTenants(t, 8)
	first, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}

	// Halve the capacity of a cable inside tenant B's arc (s5-s6). Tenant
	// A's shard is not incident to it and reuses; tenant B's must re-solve
	// warm-started even though its requests are unchanged.
	s5 := tp.MustLookup(switchName(5))
	s6 := tp.MustLookup(switchName(6))
	im, err := tp.SetCableCapacity(s5, s6, 50*topo.MBps)
	if err != nil {
		t.Fatal(err)
	}
	dirty := map[topo.LinkID]bool{}
	for _, c := range im.Cables {
		dirty[c] = true
	}
	res, err := Solve(tp, reqs, WeightedShortestPath, Params{Reuse: first.Shards, Dirty: dirty})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsReused != 1 || res.ShardsWarm != 1 || res.ShardsSolved != 0 {
		t.Fatalf("dirty cable: solved=%d warm=%d reused=%d, want 0/1/1",
			res.ShardsSolved, res.ShardsWarm, res.ShardsReused)
	}
	// The re-solved shard sees the new capacity: RMax is computed against
	// the halved cable, matching a fresh solve.
	fresh, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMax != fresh.RMax {
		t.Fatalf("dirty re-solve rmax %v != fresh %v", res.RMax, fresh.RMax)
	}
	// Without the dirty set the stale solution would be served outright —
	// the guard the incremental compiler relies on.
	stale, err := Solve(tp, reqs, WeightedShortestPath, Params{Reuse: first.Shards})
	if err != nil {
		t.Fatal(err)
	}
	if stale.ShardsReused != 2 {
		t.Fatalf("control: expected full (stale) reuse without Dirty, got %+v", stale.ShardsReused)
	}
}

func TestSolveNoRequests(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	res, err := Solve(tp, nil, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 0 || len(res.Reserved) != 0 || res.RMax != 0 {
		t.Fatalf("empty solve produced %+v", res)
	}
}

func TestShardedInfeasibleShardReported(t *testing.T) {
	// Tenant B's arc cannot hold two 80 MB/s guarantees on 100 MB/s links
	// when they share a link; the sharded solve must surface the
	// infeasibility (and the monolithic one must agree).
	tp := topo.Ring(8, 1, 100*topo.MBps)
	alpha := logical.Alphabet(tp)
	arc := func(lo, hi int) []string {
		var names []string
		for i := lo; i < hi; i++ {
			names = append(names, switchName(i), hostName(i))
		}
		return names
	}
	reqs := []Request{
		anchoredReq(t, tp, alpha, "a0", arc(0, 4), hostName(0), hostName(3), 20*topo.MBps),
		anchoredReq(t, tp, alpha, "b0", arc(4, 8), hostName(4), hostName(7), 80*topo.MBps),
		anchoredReq(t, tp, alpha, "b1", arc(4, 8), hostName(4), hostName(7), 80*topo.MBps),
	}
	_, errSharded := Solve(tp, reqs, WeightedShortestPath, Params{})
	_, errMono := Solve(tp, reqs, WeightedShortestPath, Params{NoShard: true})
	if errSharded == nil || errMono == nil {
		t.Fatalf("sharded err = %v, monolithic err = %v; want both infeasible", errSharded, errMono)
	}
	if !strings.Contains(errSharded.Error(), "shard") {
		t.Errorf("sharded infeasibility does not name the shard: %v", errSharded)
	}
}
