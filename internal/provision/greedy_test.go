package provision

import (
	"strings"
	"testing"

	"merlin/internal/logical"
	"merlin/internal/topo"
)

// TestGreedyHeadroomExhaustion: once every path between the endpoints is
// saturated, shortestWithHeadroom finds nothing and Greedy reports which
// request it could not place.
func TestGreedyHeadroomExhaustion(t *testing.T) {
	tp := topo.TwoPath(100*topo.MBps, 100*topo.MBps)
	reqs := []Request{
		req(t, tp, "a", "h1 .* h2", nil, 90*topo.MBps),
		req(t, tp, "b", "h1 .* h2", nil, 90*topo.MBps),
		req(t, tp, "c", "h1 .* h2", nil, 90*topo.MBps), // no path left
	}
	_, err := Greedy(tp, reqs)
	if err == nil {
		t.Fatal("greedy placed three 90MB/s guarantees on two 100MB/s paths")
	}
	// Largest-first ordering means the third-served request (all equal
	// rates: input order ties) is the one that fails.
	if !strings.Contains(err.Error(), "failed to place") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestGreedyLargestFirst: the biggest guarantee is served first and takes
// the shortest path; the smaller one detours.
func TestGreedyLargestFirst(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	reqs := []Request{
		req(t, tp, "small", "h1 .* h2", nil, 60*topo.MBps),
		req(t, tp, "big", "h1 .* h2", nil, 90*topo.MBps),
	}
	res, err := Greedy(tp, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// big (90) is served first despite appearing second, takes the 2-hop
	// narrow path (100 MB/s); small then lacks narrow headroom (90+60 >
	// 100) and must take the 3-hop wide path.
	if got := hops(tp, res.Paths["big"]); got != 2 {
		t.Errorf("big path hops = %d (%v), want 2", got, pathNames(tp, res.Paths["big"]))
	}
	if got := hops(tp, res.Paths["small"]); got != 3 {
		t.Errorf("small path hops = %d (%v), want 3", got, pathNames(tp, res.Paths["small"]))
	}
}

// TestGreedyReservationAccounting: Reserved carries exactly the guarantee
// on each directed link of the chosen path, and the stats pool both
// directions of a cable.
func TestGreedyReservationAccounting(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps) // h1 - s0 - s1 - s2 - h2
	reqs := []Request{
		req(t, tp, "fwd", "h1 .* h2", nil, 100*topo.Mbps),
		req(t, tp, "rev", "h2 .* h1", nil, 50*topo.Mbps),
	}
	res, err := Greedy(tp, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Each request reserves its rate on every directed link of its 4-hop
	// path: 8 directed-link entries in total, none shared.
	if len(res.Reserved) != 8 {
		t.Fatalf("reserved %d directed links, want 8: %v", len(res.Reserved), res.Reserved)
	}
	var fwdBits, revBits float64
	for _, steps := range [][]logical.Step{res.Paths["fwd"], res.Paths["rev"]} {
		if got := len(logical.Locations(steps)) - 1; got != 4 {
			t.Fatalf("path hops = %d, want 4", got)
		}
	}
	for _, bits := range res.Reserved {
		switch bits {
		case 100 * topo.Mbps:
			fwdBits++
		case 50 * topo.Mbps:
			revBits++
		default:
			t.Fatalf("unexpected reservation %v", bits)
		}
	}
	if fwdBits != 4 || revBits != 4 {
		t.Fatalf("reservations fwd=%v rev=%v, want 4 each", fwdBits, revBits)
	}
	// Both directions pool onto one cable for the stats: 150 Mbps of a
	// 1 Gbps cable.
	if want := 150 * topo.Mbps; res.RMaxBits != want {
		t.Errorf("RMaxBits = %v, want %v", res.RMaxBits, want)
	}
	if want := 0.15; res.RMax != want {
		t.Errorf("RMax = %v, want %v", res.RMax, want)
	}
	if err := res.Validate(tp); err != nil {
		t.Fatal(err)
	}
}

// TestShortestWithHeadroomZeroRate: a zero-rate request ignores headroom
// and routes through fully reserved links.
func TestShortestWithHeadroomZeroRate(t *testing.T) {
	tp := topo.TwoPath(100*topo.MBps, 100*topo.MBps)
	reqs := []Request{
		req(t, tp, "fill1", "h1 .* h2", nil, 100*topo.MBps),
		req(t, tp, "fill2", "h1 .* h2", nil, 100*topo.MBps),
		req(t, tp, "free", "h1 .* h2", nil, 0),
	}
	res, err := Greedy(tp, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths["free"]) == 0 {
		t.Fatal("zero-rate request not routed through saturated network")
	}
	// The shortest (2-hop) route wins since headroom does not constrain it.
	if got := hops(tp, res.Paths["free"]); got != 2 {
		t.Errorf("zero-rate path hops = %d, want 2", got)
	}
}

// TestValidateRejectsOverCapacity: Validate must reject a result whose
// pooled cable reservations exceed capacity — including when each
// direction alone fits.
func TestValidateRejectsOverCapacity(t *testing.T) {
	tp := topo.Linear(2, 100*topo.MBps) // h1 - s0 - s1 - h2
	l, ok := tp.FindLink(tp.MustLookup("s0"), tp.MustLookup("s1"))
	if !ok {
		t.Fatal("no s0-s1 link")
	}
	over := &Result{Reserved: map[topo.LinkID]float64{l.ID: 150 * topo.MBps}}
	if err := over.Validate(tp); err == nil {
		t.Fatal("over-capacity reservation validated")
	}
	// 60 + 60 MB/s across the two directions of one cable exceeds its
	// pooled 100 MB/s capacity (eq. 2 pools directions).
	split := &Result{Reserved: map[topo.LinkID]float64{
		l.ID:                  60 * topo.MBps,
		tp.Link(l.ID).Reverse: 60 * topo.MBps,
	}}
	if err := split.Validate(tp); err == nil {
		t.Fatal("over-capacity split across directions validated")
	}
	ok1 := &Result{Reserved: map[topo.LinkID]float64{l.ID: 90 * topo.MBps}}
	if err := ok1.Validate(tp); err != nil {
		t.Fatalf("in-capacity reservation rejected: %v", err)
	}
}
