package provision

import (
	"testing"

	"merlin/internal/logical"
	"merlin/internal/regex"
	"merlin/internal/topo"
)

// req builds a Request for expr over t with the given guarantee.
func req(t *testing.T, tp *topo.Topology, id, expr string, placement map[string][]string, rate float64) Request {
	t.Helper()
	e := regex.MustParse(expr)
	if placement != nil {
		e = regex.Substitute(e, placement)
	}
	g, err := logical.BuildMinimized(tp, e, logical.Alphabet(tp))
	if err != nil {
		t.Fatal(err)
	}
	return Request{ID: id, Graph: g, MinRate: rate}
}

func pathNames(tp *topo.Topology, steps []logical.Step) []string {
	locs := logical.Locations(steps)
	names := make([]string, len(locs))
	for i, l := range locs {
		names[i] = tp.Node(l).Name
	}
	return names
}

func hops(tp *topo.Topology, steps []logical.Step) int {
	return len(logical.Locations(steps)) - 1
}

// Figure 3: two statements, each guaranteeing 50 MB/s between h1 and h2 on
// the two-path topology (3-hop wide 400 MB/s path vs 2-hop narrow 100 MB/s
// path). The three heuristics must pick the paper's three outcomes.
func fig3Requests(t *testing.T, tp *topo.Topology) []Request {
	return []Request{
		req(t, tp, "a", "h1 .* h2", nil, 50*topo.MBps),
		req(t, tp, "b", "h1 .* h2", nil, 50*topo.MBps),
	}
}

func TestFig3WeightedShortestPath(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	res, err := Solve(tp, fig3Requests(t, tp), WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Both statements take the two-hop narrow path.
	for id, steps := range res.Paths {
		if got := hops(tp, steps); got != 2 {
			t.Errorf("%s: hops = %d (%v), want 2", id, got, pathNames(tp, steps))
		}
	}
	if err := res.Validate(tp); err != nil {
		t.Fatal(err)
	}
	// Narrow links carry 100 of 100 MB/s → rmax = 1.0.
	if res.RMax < 0.99 {
		t.Errorf("rmax = %v, want ~1.0", res.RMax)
	}
}

func TestFig3MinMaxRatio(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	res, err := Solve(tp, fig3Requests(t, tp), MinMaxRatio, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: no more than 25% of capacity reserved on any link — both
	// statements on the wide path (100/400 = 0.25) beats splitting
	// (50/100 = 0.5 on the narrow side).
	if res.RMax > 0.25+1e-6 {
		t.Errorf("rmax = %v, want 0.25", res.RMax)
	}
	for id, steps := range res.Paths {
		if got := hops(tp, steps); got != 3 {
			t.Errorf("%s: hops = %d (%v), want 3 (wide path)", id, got, pathNames(tp, steps))
		}
	}
}

func TestFig3MinMaxReserved(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	res, err := Solve(tp, fig3Requests(t, tp), MinMaxReserved, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: no more than 50MB/s reserved on any link — one statement per
	// path.
	if res.RMaxBits > 50*topo.MBps+1e-3 {
		t.Errorf("Rmax = %v bits, want <= 50MB/s", res.RMaxBits)
	}
	lens := map[int]int{}
	for _, steps := range res.Paths {
		lens[hops(tp, steps)]++
	}
	if lens[2] != 1 || lens[3] != 1 {
		t.Errorf("expected one 2-hop and one 3-hop path, got %v", lens)
	}
}

func TestCapacityForcesSplit(t *testing.T) {
	// Two 80 MB/s guarantees cannot share the 100 MB/s narrow path: any
	// heuristic must split or use the wide path.
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	reqs := []Request{
		req(t, tp, "a", "h1 .* h2", nil, 80*topo.MBps),
		req(t, tp, "b", "h1 .* h2", nil, 80*topo.MBps),
	}
	res, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(tp); err != nil {
		t.Fatal(err)
	}
	// The narrow path may carry at most one of them.
	narrow := 0
	for _, steps := range res.Paths {
		if hops(tp, steps) == 2 {
			narrow++
		}
	}
	if narrow > 1 {
		t.Fatalf("both 80MB/s guarantees on the 100MB/s path")
	}
}

func TestInfeasibleGuarantees(t *testing.T) {
	// Three 60 MB/s guarantees need 180 MB/s; narrow holds 100, wide 400,
	// but all three fit on the wide path — so make them bigger: three
	// 250 MB/s guarantees cannot fit anywhere (wide 400 holds one).
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	reqs := []Request{
		req(t, tp, "a", "h1 .* h2", nil, 250*topo.MBps),
		req(t, tp, "b", "h1 .* h2", nil, 250*topo.MBps),
		req(t, tp, "c", "h1 .* h2", nil, 250*topo.MBps),
	}
	if _, err := Solve(tp, reqs, WeightedShortestPath, Params{}); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestWaypointPlacement(t *testing.T) {
	// Figure 2 end-to-end: the guaranteed statement must route through m1
	// for nat and report placements.
	tp := topo.Example(topo.Gbps)
	placement := map[string][]string{"dpi": {"h1", "h2", "m1"}, "nat": {"m1"}}
	reqs := []Request{req(t, tp, "z", "h1 .* dpi .* nat .* h2", placement, 10*topo.MBps)}
	res, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	pls := logical.PlacementsOf(res.Paths["z"])
	fns := map[string]string{}
	for _, p := range pls {
		fns[p.Fn] = tp.Node(p.Loc).Name
	}
	if fns["nat"] != "m1" {
		t.Errorf("nat placed at %q, want m1", fns["nat"])
	}
	if fns["dpi"] == "" {
		t.Error("dpi not placed")
	}
}

func TestZeroRateRequestStillRouted(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	reqs := []Request{req(t, tp, "a", "h1 .* h2", nil, 0)}
	res, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths["a"]) == 0 {
		t.Fatal("no path for zero-rate request")
	}
	if len(res.Reserved) != 0 {
		t.Fatal("zero-rate request reserved bandwidth")
	}
}

func TestGreedyMatchesOnEasyInstance(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	reqs := fig3Requests(t, tp)
	res, err := Greedy(tp, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(tp); err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
}

func TestGreedyRespectsCapacity(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	reqs := []Request{
		req(t, tp, "a", "h1 .* h2", nil, 80*topo.MBps),
		req(t, tp, "b", "h1 .* h2", nil, 80*topo.MBps),
		req(t, tp, "c", "h1 .* h2", nil, 80*topo.MBps),
	}
	res, err := Greedy(tp, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(tp); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDetoursAroundFullLinks(t *testing.T) {
	// A diamond whose s1-s2 shortcut (100 MB/s) can hold only one 60 MB/s
	// guarantee; greedy must route the second via the s3 detour.
	tp := topo.New()
	h1 := tp.AddHost("h1")
	h2 := tp.AddHost("h2")
	h3 := tp.AddHost("h3")
	s1 := tp.AddSwitch("s1")
	s2 := tp.AddSwitch("s2")
	s3 := tp.AddSwitch("s3")
	tp.AddLink(h1, s1, topo.Gbps)
	tp.AddLink(s1, s2, 100*topo.MBps) // scarce shortcut
	tp.AddLink(s1, s3, topo.Gbps)
	tp.AddLink(s3, s2, topo.Gbps) // detour
	tp.AddLink(s2, h2, topo.Gbps)
	tp.AddLink(s2, h3, topo.Gbps)
	reqs := []Request{
		req(t, tp, "a", "h1 .* h2", nil, 60*topo.MBps),
		req(t, tp, "b", "h1 .* h3", nil, 60*topo.MBps),
	}
	res, err := Greedy(tp, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(tp); err != nil {
		t.Fatal(err)
	}
	// One of the two must have detoured through s3 (4 switch-path hops
	// instead of 3).
	detours := 0
	for _, steps := range res.Paths {
		if hops(tp, steps) == 4 {
			detours++
		}
	}
	if detours != 1 {
		t.Fatalf("detours = %d, want exactly 1", detours)
	}
	// The MIP agrees the instance is feasible.
	mipRes, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mipRes.Validate(tp); err != nil {
		t.Fatal(err)
	}
}

func TestTimingFieldsPopulated(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	reqs := []Request{req(t, tp, "a", "h1 .* h2", nil, 10*topo.MBps)}
	res, err := Solve(tp, reqs, MinMaxRatio, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConstructTime <= 0 || res.SolveTime <= 0 {
		t.Fatalf("timings not recorded: %v %v", res.ConstructTime, res.SolveTime)
	}
}

func TestMultiRequestFatTree(t *testing.T) {
	// Several guarantees across a k=4 fat tree must all be placed and
	// validated.
	tp := topo.FatTree(4, topo.Gbps)
	pairs := [][2]string{
		{"h0_0_0", "h1_0_0"},
		{"h0_0_1", "h2_0_0"},
		{"h1_1_0", "h3_0_1"},
		{"h2_1_1", "h0_1_0"},
	}
	var reqs []Request
	for i, p := range pairs {
		reqs = append(reqs, req(t, tp, p[0]+"-"+p[1], p[0]+" .* "+p[1], nil, float64(50+10*i)*topo.MBps))
	}
	res, err := Solve(tp, reqs, MinMaxRatio, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(tp); err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != len(reqs) {
		t.Fatalf("paths = %d, want %d", len(res.Paths), len(reqs))
	}
	for id, steps := range res.Paths {
		names := pathNames(tp, steps)
		if len(names) < 2 {
			t.Errorf("%s: degenerate path %v", id, names)
		}
	}
}

func BenchmarkSolveTwoPath(b *testing.B) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	e := regex.MustParse("h1 .* h2")
	alpha := logical.Alphabet(tp)
	nfa, _ := regex.Compile(e, alpha)
	g := logical.Build(tp, nfa.EpsFree())
	reqs := []Request{
		{ID: "a", Graph: g, MinRate: 50 * topo.MBps},
		{ID: "b", Graph: g, MinRate: 50 * topo.MBps},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(tp, reqs, MinMaxRatio, Params{}); err != nil {
			b.Fatal(err)
		}
	}
}
