package provision

import (
	"testing"

	"merlin/internal/topo"
)

// Budgets steer placement: a zero entry budget on the narrow-path switch
// forces the guarantee onto the wide path that weighted-shortest-path
// would otherwise avoid.
func TestBudgetSteersPlacement(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	r1 := tp.MustLookup("r1")
	reqs := []Request{req(t, tp, "a", "h1 .* h2", nil, 50*topo.MBps)}

	// Baseline: WSP picks the 2-hop narrow path through r1.
	res, err := Solve(tp, reqs, WeightedShortestPath, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := hops(tp, res.Paths["a"]); got != 2 {
		t.Fatalf("baseline hops = %d (%v), want 2", got, pathNames(tp, res.Paths["a"]))
	}

	// Zero budget on r1: the solve must route via l1/l2.
	res, err = Solve(tp, reqs, WeightedShortestPath, Params{
		Budgets: map[topo.NodeID]float64{r1: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := hops(tp, res.Paths["a"]); got != 3 {
		t.Fatalf("budgeted hops = %d (%v), want 3 (wide path)", got, pathNames(tp, res.Paths["a"]))
	}
	for _, name := range pathNames(tp, res.Paths["a"]) {
		if name == "r1" {
			t.Fatal("budget-constrained path still crosses r1")
		}
	}
	if err := res.Validate(tp); err != nil {
		t.Fatal(err)
	}
}

// EntryCost weights the budget row: a request whose classifier costs 2
// entries does not fit a budget of 1, one costing 1 does.
func TestBudgetEntryCost(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	r1 := tp.MustLookup("r1")
	reqs := []Request{req(t, tp, "a", "h1 .* h2", nil, 50*topo.MBps)}

	res, err := Solve(tp, reqs, WeightedShortestPath, Params{
		Budgets:   map[topo.NodeID]float64{r1: 1},
		EntryCost: map[string]float64{"a": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := hops(tp, res.Paths["a"]); got != 3 {
		t.Fatalf("cost-2 guarantee on budget-1 switch: hops = %d, want 3", got)
	}

	res, err = Solve(tp, reqs, WeightedShortestPath, Params{
		Budgets:   map[topo.NodeID]float64{r1: 1},
		EntryCost: map[string]float64{"a": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := hops(tp, res.Paths["a"]); got != 2 {
		t.Fatalf("cost-1 guarantee on budget-1 switch: hops = %d, want 2 (fits)", got)
	}
}

// Budgets on every switch make the problem infeasible — the compiler's
// reject path.
func TestBudgetInfeasible(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	budgets := map[topo.NodeID]float64{}
	for _, n := range tp.Nodes() {
		if n.Kind == topo.Switch {
			budgets[n.ID] = 0
		}
	}
	reqs := []Request{req(t, tp, "a", "h1 .* h2", nil, 50*topo.MBps)}
	if _, err := Solve(tp, reqs, WeightedShortestPath, Params{Budgets: budgets}); err == nil {
		t.Fatal("expected infeasibility with zero budgets everywhere")
	}
}

// A budgeted solve still respects capacity and produces validated
// reservations on a multi-request instance; the budget forces the
// monolithic solver path (sharding disabled), which must stay correct.
func TestBudgetMultiRequest(t *testing.T) {
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	r1 := tp.MustLookup("r1")
	reqs := []Request{
		req(t, tp, "a", "h1 .* h2", nil, 80*topo.MBps),
		req(t, tp, "b", "h1 .* h2", nil, 80*topo.MBps),
	}
	// r1 fits one entry: at most one guarantee may take the narrow path.
	res, err := Solve(tp, reqs, WeightedShortestPath, Params{
		Budgets: map[topo.NodeID]float64{r1: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(tp); err != nil {
		t.Fatal(err)
	}
	narrow := 0
	for _, steps := range res.Paths {
		if hops(tp, steps) == 2 {
			narrow++
		}
	}
	if narrow > 1 {
		t.Fatalf("%d guarantees through the budget-1 switch", narrow)
	}
}
