package provision

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"merlin/internal/logical"
	"merlin/internal/regex"
	"merlin/internal/topo"
)

// The differential fuzz harness: a seeded, deterministic generator of
// random topologies (fat trees, rings, grid meshes, stars, Waxman random
// graphs — the Topology Zoo families) and random request sets, asserting
// that the sharded and monolithic provision.Solve agree on feasibility,
// objective, and per-link allocations. Failures log the case's seed, so
// any divergence replays exactly with genCase(seed).
//
// The comparison is per heuristic, matching what decomposition provably
// preserves:
//   - WeightedShortestPath: the objective is a sum over requests, so the
//     sharded total must equal the monolithic total to 1e-6; the
//     tie-break perturbations in buildModel make the optimum generically
//     unique, so per-link allocations must also match to 1e-6 except
//     when two routes' perturbation sums collide below the solver's
//     tolerances (~1% of cases empirically, bounded at 5%).
//   - MinMaxRatio / MinMaxReserved: the objective is a max over links,
//     which link-disjointness reduces to the bottleneck shard; RMax and
//     RMaxBits must agree to 1e-6 (relative). Below the bottleneck the
//     two formulations legitimately differ — a non-bottleneck shard
//     minimizes its own local maximum, which the monolithic objective
//     ignores — so per-link divergence is allowed there, bounded at 10%
//     and always re-checked for validity and objective equality.
// Counting both divergence classes keeps the harness sharp: a sharder
// that merges, drops, or double-books reservations diverges on most
// cases and trips the bounds long before the objective check could miss
// it.

// diffCase is one generated instance.
type diffCase struct {
	name string
	t    *topo.Topology
	reqs []Request
	h    Heuristic
}

// hostsOf lists host node names of a topology.
func hostsOf(t *topo.Topology) []string {
	hs := t.Hosts()
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = t.Node(h).Name
	}
	return out
}

// groupNames returns the node names (switches + their hosts) of a switch
// index range in a topology whose switch i is named sw(i) and host h(i).
func ringGroup(lo, hi int) []string {
	var names []string
	for i := lo; i < hi; i++ {
		names = append(names, switchName(i), hostName(i))
	}
	return names
}

// genCase deterministically builds the instance for a seed.
func genCase(tb testing.TB, seed int64) diffCase {
	rng := rand.New(rand.NewSource(seed))
	h := Heuristic(rng.Intn(3))
	family := rng.Intn(5)
	var (
		tp   *topo.Topology
		reqs []Request
		name string
	)
	switch family {
	case 0:
		name = "fattree"
		tp, reqs = genFatTree(tb, rng)
	case 1:
		name = "ring"
		tp, reqs = genRing(tb, rng)
	case 2:
		name = "grid"
		tp, reqs = genGrid(tb, rng)
	case 3:
		name = "star"
		tp, reqs = genStar(tb, rng)
	default:
		name = "waxman"
		tp, reqs = genWaxman(tb, rng, seed)
	}
	return diffCase{name: name, t: tp, reqs: reqs, h: h}
}

// rate draws a guarantee: zero sometimes (a pure path constraint), else
// 10–40 MB/s against 100 MB/s links so capacity occasionally binds.
func drawRate(rng *rand.Rand) float64 {
	if rng.Intn(5) == 0 {
		return 0
	}
	return float64(10+10*rng.Intn(4)) * topo.MBps
}

// restrictedReq builds a request confined to names; `.*` when names nil.
func restrictedReq(tb testing.TB, tp *topo.Topology, alpha *regex.Alphabet, id string, names []string, src, dst string, rate float64) Request {
	tb.Helper()
	var expr regex.Expr = regex.Star{X: regex.Any{}}
	if names != nil {
		expr = arcExpr(names)
	}
	g, err := logical.BuildAnchored(tp, expr, alpha, src, dst)
	if err != nil {
		tb.Fatalf("%s: %v", id, err)
	}
	return Request{ID: id, Graph: g, MinRate: rate}
}

// genFatTree builds a k=4 fat tree with tenants per pod. Some requests
// are confined to their pod (link-disjoint across pods); occasionally a
// free `.*` request couples everything — the fallback path.
func genFatTree(tb testing.TB, rng *rand.Rand) (*topo.Topology, []Request) {
	tp := topo.FatTree(4, 100*topo.MBps)
	alpha := logical.Alphabet(tp)
	pod := func(p int) []string {
		names := []string{}
		for i := 0; i < 2; i++ {
			names = append(names, fmt.Sprintf("agg%d_%d", p, i), fmt.Sprintf("edge%d_%d", p, i))
			for h := 0; h < 2; h++ {
				names = append(names, fmt.Sprintf("h%d_%d_%d", p, i, h))
			}
		}
		return names
	}
	n := 3 + rng.Intn(4)
	var reqs []Request
	for i := 0; i < n; i++ {
		p := rng.Intn(4)
		hostsInPod := []string{}
		for e := 0; e < 2; e++ {
			for h := 0; h < 2; h++ {
				hostsInPod = append(hostsInPod, fmt.Sprintf("h%d_%d_%d", p, e, h))
			}
		}
		src := hostsInPod[rng.Intn(len(hostsInPod))]
		dst := hostsInPod[rng.Intn(len(hostsInPod))]
		for dst == src {
			dst = hostsInPod[rng.Intn(len(hostsInPod))]
		}
		names := pod(p)
		if rng.Intn(6) == 0 {
			names = nil // free-roaming request: couples pods via the core
		}
		reqs = append(reqs, restrictedReq(tb, tp, alpha, fmt.Sprintf("r%d", i), names, src, dst, drawRate(rng)))
	}
	return tp, reqs
}

// genRing splits a ring into two or three contiguous arcs (tenants).
func genRing(tb testing.TB, rng *rand.Rand) (*topo.Topology, []Request) {
	n := 8 + 2*rng.Intn(4) // 8..14 switches
	tp := topo.Ring(n, 1, 100*topo.MBps)
	alpha := logical.Alphabet(tp)
	arcs := [][2]int{{0, n / 2}, {n / 2, n}}
	if rng.Intn(2) == 0 && n >= 9 {
		third := n / 3
		arcs = [][2]int{{0, third}, {third, 2 * third}, {2 * third, n}}
	}
	cnt := 2 + rng.Intn(5)
	var reqs []Request
	for i := 0; i < cnt; i++ {
		a := arcs[rng.Intn(len(arcs))]
		lo, hi := a[0], a[1]
		si := lo + rng.Intn(hi-lo)
		di := lo + rng.Intn(hi-lo)
		for di == si {
			di = lo + rng.Intn(hi-lo)
		}
		reqs = append(reqs, restrictedReq(tb, tp, alpha, fmt.Sprintf("r%d", i),
			ringGroup(lo, hi), hostName(si), hostName(di), drawRate(rng)))
	}
	return tp, reqs
}

// genGrid builds a rows×cols grid mesh with a host per switch; tenants
// are confined to row bands.
func genGrid(tb testing.TB, rng *rand.Rand) (*topo.Topology, []Request) {
	rows, cols := 4, 3+rng.Intn(3)
	tp := topo.New()
	sw := make([][]topo.NodeID, rows)
	for r := 0; r < rows; r++ {
		sw[r] = make([]topo.NodeID, cols)
		for c := 0; c < cols; c++ {
			sw[r][c] = tp.AddSwitch(fmt.Sprintf("g%d_%d", r, c))
			host := tp.AddHost(fmt.Sprintf("gh%d_%d", r, c))
			tp.AddLink(sw[r][c], host, 100*topo.MBps)
			if c > 0 {
				tp.AddLink(sw[r][c-1], sw[r][c], 100*topo.MBps)
			}
			if r > 0 {
				tp.AddLink(sw[r-1][c], sw[r][c], 100*topo.MBps)
			}
		}
	}
	band := func(lo, hi int) []string {
		var names []string
		for r := lo; r < hi; r++ {
			for c := 0; c < cols; c++ {
				names = append(names, fmt.Sprintf("g%d_%d", r, c), fmt.Sprintf("gh%d_%d", r, c))
			}
		}
		return names
	}
	alpha := logical.Alphabet(tp)
	bands := [][2]int{{0, 2}, {2, 4}}
	cnt := 2 + rng.Intn(4)
	var reqs []Request
	for i := 0; i < cnt; i++ {
		b := bands[rng.Intn(len(bands))]
		pick := func() [2]int { return [2]int{b[0] + rng.Intn(b[1]-b[0]), rng.Intn(cols)} }
		s, d := pick(), pick()
		for d == s {
			d = pick()
		}
		reqs = append(reqs, restrictedReq(tb, tp, alpha, fmt.Sprintf("r%d", i),
			band(b[0], b[1]), fmt.Sprintf("gh%d_%d", s[0], s[1]), fmt.Sprintf("gh%d_%d", d[0], d[1]), drawRate(rng)))
	}
	return tp, reqs
}

// genStar builds a hub-and-spoke network: every path crosses the hub, so
// rated requests always couple into one shard — the fallback path, plus
// zero-rate singletons.
func genStar(tb testing.TB, rng *rand.Rand) (*topo.Topology, []Request) {
	tp := topo.Star(4+rng.Intn(4), 1, 100*topo.MBps)
	alpha := logical.Alphabet(tp)
	hosts := hostsOf(tp)
	cnt := 2 + rng.Intn(4)
	var reqs []Request
	for i := 0; i < cnt; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		reqs = append(reqs, restrictedReq(tb, tp, alpha, fmt.Sprintf("r%d", i), nil, src, dst, drawRate(rng)))
	}
	return tp, reqs
}

// genWaxman builds a random operator-style mesh with hosts on every
// switch and unconstrained paths.
func genWaxman(tb testing.TB, rng *rand.Rand, seed int64) (*topo.Topology, []Request) {
	n := 8 + rng.Intn(8)
	tp := topo.Waxman(n, 0.4, 0.25, seed, 100*topo.MBps)
	for i, sw := range tp.Switches() {
		host := tp.AddHost(fmt.Sprintf("wh%d", i))
		tp.AddLink(sw, host, 100*topo.MBps)
	}
	alpha := logical.Alphabet(tp)
	hosts := hostsOf(tp)
	cnt := 2 + rng.Intn(4)
	var reqs []Request
	for i := 0; i < cnt; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		reqs = append(reqs, restrictedReq(tb, tp, alpha, fmt.Sprintf("r%d", i), nil, src, dst, drawRate(rng)))
	}
	return tp, reqs
}

// wspObjective recomputes the weighted-shortest-path objective from a
// decoded result: Σ_i (rate_i/rateUnit + eps) · hops_i, exactly the MIP's
// cost over the chosen link edges.
func wspObjective(res *Result, reqs []Request, eps float64) float64 {
	obj := 0.0
	for _, r := range reqs {
		hops := len(logical.Locations(res.Paths[r.ID])) - 1
		obj += (r.MinRate/rateUnit + eps) * float64(hops)
	}
	return obj
}

// objectiveOf evaluates the heuristic's decisive scalar on a result.
func objectiveOf(h Heuristic, res *Result, reqs []Request) float64 {
	switch h {
	case MinMaxRatio:
		return res.RMax
	case MinMaxReserved:
		return res.RMaxBits
	default:
		return wspObjective(res, reqs, 1e-4)
	}
}

// closeTo compares with 1e-6 tolerance, relative for large magnitudes
// (RMaxBits is in bits/s).
func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// sameAllocations reports whether two results reserve the same bandwidth
// on every link to 1e-6.
func sameAllocations(a, b *Result) bool {
	links := map[topo.LinkID]bool{}
	for l := range a.Reserved {
		links[l] = true
	}
	for l := range b.Reserved {
		links[l] = true
	}
	for l := range links {
		if !closeTo(a.Reserved[l], b.Reserved[l]) {
			return false
		}
	}
	return true
}

// runDifferential executes n seeded cases starting at seed0 and fails on
// the first divergence, logging the seed. Besides sharded-vs-monolithic,
// every case cross-checks the solver engines against each other: the
// default stack (network-simplex fast path where it fires) against the
// general path with detection off, and the compact bounded-variable
// formulation against the legacy paper-literal one. All four must agree
// on feasibility and objective; allocations match modulo the same
// tie-break collision noise the sharded comparison tolerates.
func runDifferential(t *testing.T, seed0 int64, n int) {
	wspDiffs, minmaxDiffs, engineDiffs := 0, 0, 0
	shardedCases, netflowCases := 0, 0
	for i := 0; i < n; i++ {
		seed := seed0 + int64(i)
		c := genCase(t, seed)
		label := fmt.Sprintf("seed %d (%s, %v, %d reqs)", seed, c.name, c.h, len(c.reqs))

		sharded, errS := Solve(c.t, c.reqs, c.h, Params{Workers: 2})
		mono, errM := Solve(c.t, c.reqs, c.h, Params{NoShard: true})
		compact, errC := Solve(c.t, c.reqs, c.h, Params{NoNetflow: true})
		legacy, errL := Solve(c.t, c.reqs, c.h, Params{NoNetflow: true, LegacyModel: true})

		// Feasibility must agree across every configuration.
		if (errS == nil) != (errM == nil) {
			t.Fatalf("%s: feasibility diverges: sharded err=%v, monolithic err=%v", label, errS, errM)
		}
		if (errS == nil) != (errC == nil) || (errS == nil) != (errL == nil) {
			t.Fatalf("%s: feasibility diverges: default err=%v, compact err=%v, legacy err=%v",
				label, errS, errC, errL)
		}
		if errS != nil {
			continue
		}
		if len(sharded.Shards) > 1 {
			shardedCases++
		}
		if sharded.NetflowShards > 0 {
			netflowCases++
		}
		// Engine cross-checks: same objective to 1e-6, valid allocations,
		// and per-link agreement up to tie-break collisions.
		objD := objectiveOf(c.h, sharded, c.reqs)
		for which, res := range map[string]*Result{"compact": compact, "legacy": legacy} {
			if err := res.Validate(c.t); err != nil {
				t.Fatalf("%s: %s allocation invalid: %v", label, which, err)
			}
			if obj := objectiveOf(c.h, res, c.reqs); !closeTo(objD, obj) {
				t.Fatalf("%s: %s engine objective diverges: default %.9f, %s %.9f",
					label, which, objD, which, obj)
			}
			if !sameAllocations(sharded, res) {
				engineDiffs++
			}
		}
		// Every request decoded a path in both.
		for _, r := range c.reqs {
			if len(sharded.Paths[r.ID]) == 0 || len(mono.Paths[r.ID]) == 0 {
				t.Fatalf("%s: request %s lost its path (sharded %d steps, monolithic %d)",
					label, r.ID, len(sharded.Paths[r.ID]), len(mono.Paths[r.ID]))
			}
		}
		// Both allocations fit capacity.
		if err := sharded.Validate(c.t); err != nil {
			t.Fatalf("%s: sharded allocation invalid: %v", label, err)
		}
		if err := mono.Validate(c.t); err != nil {
			t.Fatalf("%s: monolithic allocation invalid: %v", label, err)
		}
		// Objective must agree to 1e-6.
		objS, objM := objectiveOf(c.h, sharded, c.reqs), objectiveOf(c.h, mono, c.reqs)
		if !closeTo(objS, objM) {
			t.Fatalf("%s: objective diverges: sharded %.9f, monolithic %.9f", label, objS, objM)
		}
		// Per-link allocations: strict (modulo rare perturbation
		// collisions) for the separable WSP objective; the min-max
		// objectives additionally allow below-bottleneck freedom. Both
		// divergence classes are already objective-equal and valid here.
		if !sameAllocations(sharded, mono) {
			if c.h == WeightedShortestPath {
				wspDiffs++
			} else {
				minmaxDiffs++
			}
		}
	}
	if shardedCases == 0 {
		t.Fatal("generator produced no multi-shard case; the harness is not exercising decomposition")
	}
	if netflowCases == 0 {
		t.Fatal("generator produced no netflow-solved case; the harness is not exercising the fast path")
	}
	if wspDiffs > n/20 {
		t.Fatalf("WSP per-link allocations diverged on %d/%d cases — beyond tie-break collision noise", wspDiffs, n)
	}
	if minmaxDiffs > n/10 {
		t.Fatalf("min-max per-link allocations diverged on %d/%d cases — beyond below-bottleneck freedom", minmaxDiffs, n)
	}
	if engineDiffs > n/10 {
		t.Fatalf("engine allocations diverged on %d/%d comparisons — beyond tie-break collision noise", engineDiffs, n)
	}
	t.Logf("differential: %d cases, %d multi-shard, %d netflow, %d wsp / %d min-max / %d engine allocation diffs",
		n, shardedCases, netflowCases, wspDiffs, minmaxDiffs, engineDiffs)
}

// TestDifferentialShardedVsMonolithic is the acceptance harness: ≥200
// seeded cases across five topology families and all three heuristics.
// MERLIN_FUZZ_BUDGET multiplies the case budget (the nightly workflow
// runs with MERLIN_FUZZ_BUDGET=10 for a 2200-case soak); the seed range
// extends deterministically, so any divergence still replays by seed.
func TestDifferentialShardedVsMonolithic(t *testing.T) {
	n := 220
	if testing.Short() {
		n = 40
	}
	if s := os.Getenv("MERLIN_FUZZ_BUDGET"); s != "" {
		mult, err := strconv.Atoi(s)
		if err != nil || mult < 1 {
			t.Fatalf("bad MERLIN_FUZZ_BUDGET %q: want a positive integer multiplier", s)
		}
		n *= mult
	}
	runDifferential(t, 424200, n)
}
