// Network-simplex fast path: a shard whose link-capacity constraints are
// provably redundant is, after dropping them, a block-diagonal pure
// node-arc incidence problem — one min-cost unit-flow block per request.
// Node-arc incidence matrices are totally unimodular, so the relaxation is
// integral and the spanning-tree network simplex in internal/netflow
// solves each block exactly with no branch and bound. The costs are the
// exact per-edge costs buildModel would emit (hop epsilon, deterministic
// tie-breaking perturbation, and the WSP rate term), so the fast path
// lands on the same generically unique optimum as the general MIP — the
// differential fuzz harness cross-checks the two paths case by case.

package provision

import (
	"fmt"
	"time"

	"merlin/internal/logical"
	"merlin/internal/netflow"
	"merlin/internal/topo"
)

// netflowEligible reports whether the shard's capacity rows are redundant,
// i.e. whether the constraint matrix reduces to pure node-arc incidence.
// Two conditions: the objective must be separable per request (WSP always
// is; the min-max objectives couple requests through their shared maximum
// unless no request carries a guarantee), and every cable must fit the
// worst case of all product edges that can ride it selected at once —
// then no 0/1 assignment can violate eq. 5 and the rows prove nothing.
func netflowEligible(t *topo.Topology, reqs []Request, h Heuristic) bool {
	hasRate := false
	for _, r := range reqs {
		if r.MinRate > 0 {
			hasRate = true
			break
		}
	}
	if h != WeightedShortestPath && hasRate {
		return false
	}
	load := map[topo.LinkID]float64{}
	for _, r := range reqs {
		if r.MinRate == 0 {
			continue
		}
		for _, ed := range r.Graph.Edges {
			if ed.Link < 0 {
				continue
			}
			load[t.Cable(ed.Link)] += r.MinRate
		}
	}
	for c, l := range load {
		if l > t.Link(c).Capacity+1e-9 {
			return false
		}
	}
	return true
}

// solveNetflow provisions an eligible shard request by request as min-cost
// unit flows. It returns (nil, nil) when any block's network simplex bails
// out numerically (pivot limit) — the caller falls back to the general
// path — and a real error only for genuine infeasibility, which the
// general path would report identically.
func solveNetflow(t *topo.Topology, reqs []Request, h Heuristic, eps float64, construct, solve *time.Duration) (*ShardSolution, error) {
	out := &ShardSolution{
		Paths:    make(map[string][]logical.Step, len(reqs)),
		Reserved: map[topo.LinkID]float64{},
		Netflow:  true,
	}
	for _, r := range reqs {
		start := time.Now()
		g := r.Graph
		p := netflow.Problem{
			N:      g.NumVerts,
			Arcs:   make([]netflow.Arc, len(g.Edges)),
			Supply: make([]float64, g.NumVerts),
		}
		jitter := idJitter(r.ID)
		for e, ed := range g.Edges {
			cost := 0.0
			if ed.Link >= 0 {
				cost = eps * (1 + tieBreak(jitter, e))
				if h == WeightedShortestPath {
					cost += r.MinRate / rateUnit
				}
			}
			p.Arcs[e] = netflow.Arc{From: ed.From, To: ed.To, Cap: 1, Cost: cost}
		}
		p.Supply[g.Source] = 1
		p.Supply[g.Sink] = -1
		*construct += time.Since(start)

		solveStart := time.Now()
		sol := netflow.Solve(p)
		*solve += time.Since(solveStart)
		switch sol.Status {
		case netflow.Optimal:
			// proceed
		case netflow.Infeasible:
			return nil, fmt.Errorf("no assignment satisfies the path and bandwidth constraints")
		default:
			return nil, nil // numerical bail-out: take the general path
		}
		steps, err := g.ExtractPath(func(e int) bool { return sol.Flow[e] > 0.5 })
		if err != nil {
			return nil, fmt.Errorf("decoding %s: %w", r.ID, err)
		}
		out.Paths[r.ID] = steps
		addReservations(t, out.Reserved, steps, r.MinRate)
	}
	return out, nil
}
