// Package provision allocates bandwidth-guaranteed paths: it encodes the
// logical topology and the localized guarantees into the mixed-integer
// program of §3.2 (equations 1–5), solves it with the bundled
// branch-and-bound solver, and decodes the chosen paths and reservations.
// It also implements the greedy sequential allocator used as the ablation
// baseline (the approximation-algorithm family the paper cites as the
// alternative to mixed-integer programming).
package provision

import (
	"fmt"
	"math"
	"sort"
	"time"

	"merlin/internal/logical"
	"merlin/internal/lp"
	"merlin/internal/mip"
	"merlin/internal/topo"
)

// Heuristic selects among the three path-selection objectives of §3.2.
type Heuristic int

// Path-selection heuristics (Figure 3).
const (
	// WeightedShortestPath minimizes total hops weighted by guarantees —
	// the latency-oriented objective.
	WeightedShortestPath Heuristic = iota
	// MinMaxRatio minimizes the maximum fraction of any link's capacity
	// that is reserved — the load-balancing objective.
	MinMaxRatio
	// MinMaxReserved minimizes the maximum absolute bandwidth reserved on
	// any link — the failure-blast-radius objective.
	MinMaxReserved
)

func (h Heuristic) String() string {
	switch h {
	case WeightedShortestPath:
		return "weighted-shortest-path"
	case MinMaxRatio:
		return "min-max-ratio"
	case MinMaxReserved:
		return "min-max-reserved"
	default:
		return "heuristic"
	}
}

// Request is one statement needing a guaranteed path.
type Request struct {
	ID      string
	Graph   *logical.Graph
	MinRate float64 // guaranteed bits/s (r_min^i); may be 0 for pure path constraints
}

// Result reports the provisioning outcome.
type Result struct {
	// Paths maps request IDs to their decoded paths.
	Paths map[string][]logical.Step
	// Reserved is the guaranteed bits/s riding each directed link.
	Reserved map[topo.LinkID]float64
	// RMax is the maximum reserved fraction of any cable (the paper's
	// r_max), and RMaxBits the maximum absolute reservation (R_max).
	RMax     float64
	RMaxBits float64
	// ConstructTime and SolveTime split the Table 7 cost columns. For a
	// sharded solve they are summed across shards — the work performed,
	// which exceeds wall-clock when shards solve in parallel; time the
	// Solve call itself for wall-clock comparisons.
	ConstructTime time.Duration
	SolveTime     time.Duration
	// Nodes is the number of branch-and-bound nodes this call explored
	// (shard solutions served from Params.Reuse contribute nothing).
	Nodes int
	// Basis is the optimal simplex basis of the chosen solution, when the
	// exact solver produced one and the problem solved as a single shard.
	// Feeding it back through Params.Warm warm-starts the next solve after
	// a rate change: the request set and graphs fix the model's shape, so
	// the old basis installs directly and the composite phase 1 repairs
	// any rate-induced infeasibility in a few pivots instead of re-solving
	// from the all-artificial basis.
	Basis *lp.Basis
	// Shards holds the per-shard solutions this solve produced (a single
	// entry for a monolithic solve). Feed them back through Params.Reuse
	// so a later Solve re-solves only the shards whose requests changed.
	Shards []*ShardSolution
	// ShardsSolved, ShardsWarm, and ShardsReused split the shards of this
	// call into cold solves, cheap re-solves of a previously solved shape
	// (warm-started from the cached basis, or re-run through the network
	// simplex), and solutions served from Params.Reuse without a solve.
	ShardsSolved, ShardsWarm, ShardsReused int
	// NetflowShards counts the shards this call solved (cold or re-solved)
	// through the network-simplex fast path instead of the general MIP.
	NetflowShards int
}

// Params tune the solve.
type Params struct {
	MIP mip.Params
	// HopEpsilon is the tie-breaking cost per physical hop added to every
	// objective so solutions avoid gratuitous cycles. Zero means default.
	HopEpsilon float64
	// Warm, if non-nil, warm-starts the root relaxation from a basis a
	// previous Solve returned (Result.Basis). It is ignored unless the
	// model shape matches — same requests over the same product graphs —
	// and applies only to single-shard (monolithic) solves; use Reuse for
	// per-shard warm starts.
	Warm *lp.Basis
	// NoShard forces the monolithic solve even when the statement↔link
	// incidence decomposes into independent shards.
	NoShard bool
	// Workers bounds the worker pool independent shards solve over. Zero
	// means runtime.NumCPU(); 1 forces the sequential path. The merged
	// result is identical for every pool size.
	Workers int
	// Reuse offers the shard solutions of a previous Solve over the same
	// topology and heuristic (Result.Shards). A shard whose requests,
	// product graphs, and rates are unchanged is served from it without a
	// solve; one whose rates alone changed re-solves warm-started from the
	// shard's cached basis.
	Reuse []*ShardSolution
	// LegacyModel selects the paper-literal MIP encoding: an explicit
	// reservation variable r_uv per cable coupled by three constraint rows
	// (eqs. 2–4 materialized). The default compact encoding folds those
	// rows into the simplex engine's implicit variable bounds — one or two
	// rows per cable and no r_uv column — which shrinks every shard's
	// basis. Both encodings admit the same x assignments with identical
	// objectives, so they choose the same (generically unique) optimum;
	// the flag exists so the solver bench can measure the gap.
	LegacyModel bool
	// NoNetflow disables the network-simplex fast path: shards whose
	// capacity rows are provably redundant normally skip the general MIP
	// and solve each request as a min-cost unit flow (see netflowEligible).
	// The flag forces the general simplex + branch-and-bound path — the
	// baseline the solver bench and the differential tests compare against.
	NoNetflow bool
	// Budgets caps the weighted number of dataplane entries the chosen
	// paths may install on each listed switch — the ternary table-capacity
	// constraint of the backend API v2. Each request charges
	// EntryCost[id] (default 1) to every budgeted switch its path enters,
	// a conservative over-approximation (transit hops install one
	// forwarding entry, but the ingress hop installs the statement's full
	// classifier expansion, and which hop is ingress is the solver's
	// choice). Budget rows couple otherwise link-disjoint requests through
	// shared switches and change every cached model's shape, so a budgeted
	// Solve forces the monolithic general-MIP path: NoShard and NoNetflow
	// are implied, and Reuse/Warm are ignored.
	Budgets map[topo.NodeID]float64
	// EntryCost weighs each request in Budgets rows, by request ID; absent
	// IDs cost 1 per budgeted switch entered.
	EntryCost map[string]float64
	// Dirty lists canonical cable IDs (lower directed link ID of the pair)
	// whose capacity or state changed since the Reuse solutions were
	// produced. A reuse-candidate shard whose product graphs can ride a
	// dirty cable is never served outright — its model's coefficients
	// moved — but re-solves warm-started from its cached basis (the model
	// shape is unchanged, so the old optimal basis installs directly and a
	// few pivots absorb the capacity change). Shards not incident to any
	// dirty cable reuse as usual.
	Dirty map[topo.LinkID]bool
}

// rateUnit scales bits/s into MIP-friendly magnitudes (Mbps).
const rateUnit = 1e6

// Solve provisions all requests on the topology using the given
// heuristic. Every request's graph must be built against t. The problem
// is first partitioned into link-disjoint shards (see Partition); each
// shard solves as an independent MIP over a worker pool and the per-shard
// optima merge into one Result. A fully-coupled problem — one shard — or
// Params.NoShard takes the monolithic path unchanged.
func Solve(t *topo.Topology, reqs []Request, h Heuristic, p Params) (*Result, error) {
	eps := p.HopEpsilon
	if eps == 0 {
		eps = 1e-4
	}
	if len(p.Budgets) > 0 {
		// Budget rows couple requests through shared switches and change
		// the model shape: cached bases and shard solutions were built
		// without them and must not install.
		p.NoShard = true
		p.NoNetflow = true
		p.Reuse = nil
		p.Warm = nil
	}
	var comps [][]int
	if p.NoShard {
		all := make([]int, len(reqs))
		for i := range all {
			all[i] = i
		}
		comps = [][]int{all}
	} else {
		comps = Partition(t, reqs)
	}
	if len(comps) == 0 {
		return &Result{
			Paths:    map[string][]logical.Step{},
			Reserved: map[topo.LinkID]float64{},
		}, nil
	}
	return solveComponents(t, reqs, comps, h, p, eps)
}

// builtModel is one constructed provisioning MIP plus the per-request
// edge-variable indices needed to decode its solution.
type builtModel struct {
	model *mip.Model
	xvars [][]int
}

// buildModel encodes the requests into the MIP of §3.2 (equations 1–5)
// under the given heuristic, plus, when p.Budgets is set, the v2
// table-budget rows. The default encoding is compact: per-cable load
// couples to capacity through the simplex engine's implicit variable
// bounds instead of materialized reservation variables and rows; legacy
// selects the paper-literal encoding (see Params.LegacyModel).
func buildModel(t *topo.Topology, reqs []Request, h Heuristic, eps float64, p Params) *builtModel {
	legacy := p.LegacyModel
	model := mip.NewModel()

	// Cable canonicalization is topo.Cable everywhere — Partition, the
	// dirty-cable incidence checks, and this model must agree, or two
	// shards could silently share a capacity the model never couples.
	cable := t.Cable
	// x variables per request edge.
	xvars := make([][]int, len(reqs))
	for i, r := range reqs {
		xvars[i] = make([]int, len(r.Graph.Edges))
		for e := range r.Graph.Edges {
			xvars[i][e] = model.AddBinVar(0, fmt.Sprintf("x_%s_%d", r.ID, e))
		}
	}
	// Flow conservation (eq. 1) per product vertex with incident edges.
	for i, r := range reqs {
		g := r.Graph
		for v := 0; v < g.NumVerts; v++ {
			outs, ins := g.Out[v], g.In[v]
			if len(outs) == 0 && len(ins) == 0 {
				continue
			}
			terms := make([]lp.Term, 0, len(outs)+len(ins))
			for _, e := range outs {
				terms = append(terms, lp.Term{Var: xvars[i][e], Coeff: 1})
			}
			for _, e := range ins {
				terms = append(terms, lp.Term{Var: xvars[i][e], Coeff: -1})
			}
			rhs := 0.0
			switch v {
			case g.Source:
				rhs = 1
			case g.Sink:
				rhs = -1
			}
			model.AddConstraint(terms, lp.EQ, rhs, fmt.Sprintf("flow_%s_%d", r.ID, v))
		}
	}
	// Reservation variables r_uv per cable (eq. 2), plus rmax (eqs. 3, 5)
	// and Rmax (eq. 4). Cables no guaranteed edge can ride are skipped.
	cableTerms := map[topo.LinkID][]lp.Term{}
	for i, r := range reqs {
		if r.MinRate == 0 {
			continue
		}
		for e, ed := range r.Graph.Edges {
			if ed.Link < 0 {
				continue
			}
			c := cable(ed.Link)
			cableTerms[c] = append(cableTerms[c], lp.Term{Var: xvars[i][e], Coeff: r.MinRate / rateUnit})
		}
	}
	// Emit cable constraints in sorted order: map iteration order would
	// otherwise vary run to run, steering the simplex to different (if
	// equally optimal) vertices and making compiled output nondeterministic.
	cables := make([]topo.LinkID, 0, len(cableTerms))
	for c := range cableTerms {
		cables = append(cables, c)
	}
	sort.Slice(cables, func(i, j int) bool { return cables[i] < cables[j] })
	rmax, rmaxBits := -1, -1
	switch {
	case legacy:
		// Paper-literal encoding: one reservation variable r_uv per cable
		// plus three rows materializing eqs. 2–4; eq. 5 is r_uv's and
		// rmax's [0,1] bounds.
		rmax = model.Model.AddVar(0, 1, 0, "rmax")
		rmaxBits = model.Model.AddVar(0, math.Inf(1), 0, "Rmax")
		for _, c := range cables {
			terms := cableTerms[c]
			capBits := t.Link(c).Capacity
			ruv := model.Model.AddVar(0, 1, 0, fmt.Sprintf("r_%d", c))
			// eq. 2: ruv * cuv = Σ rmin_i x_e  ⇔  ruv - Σ (rmin/c) x_e = 0
			eq := append([]lp.Term{{Var: ruv, Coeff: capBits / rateUnit}}, negate(terms)...)
			model.AddConstraint(eq, lp.EQ, 0, fmt.Sprintf("reserve_%d", c))
			// eq. 3: rmax >= ruv
			model.AddConstraint([]lp.Term{{Var: rmax, Coeff: 1}, {Var: ruv, Coeff: -1}}, lp.GE, 0, "rmax")
			// eq. 4: Rmax >= ruv * cuv (in rate units)
			model.AddConstraint([]lp.Term{{Var: rmaxBits, Coeff: 1}, {Var: ruv, Coeff: -(capBits / rateUnit)}}, lp.GE, 0, "Rmax")
		}
	default:
		// Compact bounded-variable encoding: the per-cable load
		// L_c = Σ (rmin_i/unit) x_e substitutes r_uv·c_uv everywhere it
		// appears, so each cable costs one row (two for MinMaxReserved,
		// which needs capacity and the objective coupling separately) and
		// no extra column. Only the variable the active objective
		// minimizes exists; capacity under MinMaxRatio rides on rmax's
		// upper bound of 1 (eq. 5), handled implicitly by the simplex.
		if h == MinMaxRatio {
			rmax = model.Model.AddVar(0, 1, 0, "rmax")
		}
		if h == MinMaxReserved {
			rmaxBits = model.Model.AddVar(0, math.Inf(1), 0, "Rmax")
		}
		for _, c := range cables {
			terms := cableTerms[c]
			capU := t.Link(c).Capacity / rateUnit
			switch h {
			case MinMaxRatio:
				// eqs. 3+5: rmax * cuv >= L_c, rmax <= 1.
				ge := append([]lp.Term{{Var: rmax, Coeff: capU}}, negate(terms)...)
				model.AddConstraint(ge, lp.GE, 0, fmt.Sprintf("rmax_%d", c))
			case MinMaxReserved:
				// eq. 5: L_c <= cuv, and eq. 4: Rmax >= L_c.
				model.AddConstraint(terms, lp.LE, capU, fmt.Sprintf("cap_%d", c))
				ge := append([]lp.Term{{Var: rmaxBits, Coeff: 1}}, negate(terms)...)
				model.AddConstraint(ge, lp.GE, 0, fmt.Sprintf("Rmax_%d", c))
			default: // WeightedShortestPath
				// eq. 5 alone: L_c <= cuv.
				model.AddConstraint(terms, lp.LE, capU, fmt.Sprintf("cap_%d", c))
			}
		}
	}
	// Table-budget rows: for each budgeted switch v, the weighted entry
	// load Σ_i w_i · Σ_{e entering v over a physical link} x_{i,e} must
	// stay within the budget. The consuming switch of an edge is its
	// link's head (the node that installs the forwarding/classifier entry
	// for packets arriving over that link). Rows are emitted in sorted
	// node order for determinism, matching the cable rows above.
	if len(p.Budgets) > 0 {
		budgeted := make([]topo.NodeID, 0, len(p.Budgets))
		for v := range p.Budgets {
			budgeted = append(budgeted, v)
		}
		sort.Slice(budgeted, func(i, j int) bool { return budgeted[i] < budgeted[j] })
		for _, v := range budgeted {
			var terms []lp.Term
			for i, r := range reqs {
				w := 1.0
				if c, ok := p.EntryCost[r.ID]; ok {
					w = c
				}
				for e, ed := range r.Graph.Edges {
					if ed.Link >= 0 && t.Link(ed.Link).Dst == v {
						terms = append(terms, lp.Term{Var: xvars[i][e], Coeff: w})
					}
				}
			}
			if len(terms) == 0 {
				continue
			}
			model.AddConstraint(terms, lp.LE, p.Budgets[v], fmt.Sprintf("budget_%d", v))
		}
	}
	// Objective. Each edge's hop cost carries a deterministic tie-breaking
	// perturbation derived only from the request ID and the edge's index
	// in its own product graph, so it is identical whether the request is
	// modeled inside the monolithic MIP or its shard's. Under the
	// separable WeightedShortestPath objective that makes the optimum
	// generically unique, so sharded and monolithic solves choose the
	// same vertex and the differential harness can compare allocations
	// link by link. (The min-max objectives retain a documented freedom:
	// a non-bottleneck shard minimizes its own local maximum, which the
	// monolithic objective ignores, so below-bottleneck routing may
	// legitimately differ.) The perturbation is bounded by eps/100 per
	// edge, so it can never outweigh a hop: path choice is unchanged
	// except among paths the unperturbed objective cannot tell apart.
	for i, r := range reqs {
		jitter := idJitter(r.ID)
		for e, ed := range r.Graph.Edges {
			if ed.Link < 0 {
				continue
			}
			cost := eps * (1 + tieBreak(jitter, e))
			if h == WeightedShortestPath {
				cost += r.MinRate / rateUnit
			}
			model.SetCost(xvars[i][e], cost)
		}
	}
	switch h {
	case MinMaxRatio:
		model.SetCost(rmax, 1000) // dominates the epsilon hop costs
	case MinMaxReserved:
		model.SetCost(rmaxBits, 1)
	}
	return &builtModel{model: model, xvars: xvars}
}

// idJitter hashes a request ID into [0, 1) (FNV-1a), seeding that
// request's tie-breaking perturbations. Distinct requests sharing one
// product graph get distinct perturbations, breaking swap symmetries.
func idJitter(id string) float64 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return float64(h) / float64(1<<32)
}

// tieBreak maps (request jitter, edge index) to [0, 1e-2): a low-
// discrepancy sequence keyed by the golden ratio, cheap and collision-
// resistant enough that two distinct paths virtually never tie. The band
// is sized so per-path sums stay below one hop's cost for paths under a
// hundred edges (keeping hop counts exact) while path-choice differences
// stay well above the solver's 1e-9 tolerances.
func tieBreak(jitter float64, e int) float64 {
	const phi = 0.6180339887498949
	x := jitter + float64(e+1)*phi
	return 1e-2 * (x - math.Floor(x))
}

func negate(ts []lp.Term) []lp.Term {
	out := make([]lp.Term, len(ts))
	for i, t := range ts {
		out[i] = lp.Term{Var: t.Var, Coeff: -t.Coeff}
	}
	return out
}

// addReservations walks a decoded path and accumulates the guarantee onto
// each directed physical link it crosses.
func addReservations(t *topo.Topology, reserved map[topo.LinkID]float64, steps []logical.Step, rate float64) {
	if rate == 0 {
		return
	}
	locs := logical.Locations(steps)
	for i := 1; i < len(locs); i++ {
		l, ok := t.FindLink(locs[i-1], locs[i])
		if !ok {
			continue
		}
		reserved[l.ID] += rate
	}
}

// reservedStats computes the paper's r_max (max cable fraction, both
// directions pooled as in eq. 2) and R_max (max cable bits/s).
func reservedStats(t *topo.Topology, reserved map[topo.LinkID]float64) (rmax, rmaxBits float64) {
	cableTotal := map[topo.LinkID]float64{}
	for lid, bits := range reserved {
		c := lid
		if r := t.Link(lid).Reverse; r < c {
			c = r
		}
		cableTotal[c] += bits
	}
	for c, bits := range cableTotal {
		if bits > rmaxBits {
			rmaxBits = bits
		}
		if f := bits / t.Link(c).Capacity; f > rmax {
			rmax = f
		}
	}
	return rmax, rmaxBits
}

// Validate checks that no cable is reserved beyond capacity (eq. 5 in
// decoded form). It returns the first violation found.
func (r *Result) Validate(t *topo.Topology) error {
	rmax, _ := reservedStats(t, r.Reserved)
	if rmax > 1+1e-6 {
		return fmt.Errorf("provision: reservations exceed capacity (rmax = %.3f)", rmax)
	}
	return nil
}

// Greedy is the sequential baseline allocator: requests are served
// largest-guarantee-first along the shortest satisfying path whose links
// still have headroom. It is fast but can strand capacity and fail on
// instances the MIP solves (the classic integrality-versus-greedy gap).
func Greedy(t *topo.Topology, reqs []Request) (*Result, error) {
	start := time.Now()
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	// Largest guarantee first.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && reqs[order[j]].MinRate > reqs[order[j-1]].MinRate; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	res := &Result{
		Paths:    make(map[string][]logical.Step, len(reqs)),
		Reserved: map[topo.LinkID]float64{},
	}
	cableUsed := map[topo.LinkID]float64{}
	cable := t.Cable
	for _, i := range order {
		r := reqs[i]
		ids := shortestWithHeadroom(r.Graph, t, cableUsed, cable, r.MinRate)
		if ids == nil {
			return nil, fmt.Errorf("provision: greedy failed to place %s", r.ID)
		}
		steps, err := r.Graph.DecodePath(ids)
		if err != nil {
			return nil, err
		}
		res.Paths[r.ID] = steps
		addReservations(t, res.Reserved, steps, r.MinRate)
		locs := logical.Locations(steps)
		for k := 1; k < len(locs); k++ {
			if l, ok := t.FindLink(locs[k-1], locs[k]); ok {
				cableUsed[cable(l.ID)] += r.MinRate
			}
		}
	}
	res.RMax, res.RMaxBits = reservedStats(t, res.Reserved)
	res.SolveTime = time.Since(start)
	return res, nil
}

// shortestWithHeadroom is a 0/1 BFS over the product graph skipping
// physical edges whose cable lacks headroom for the request.
func shortestWithHeadroom(g *logical.Graph, t *topo.Topology, used map[topo.LinkID]float64, cable func(topo.LinkID) topo.LinkID, rate float64) []int {
	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.NumVerts)
	parent := make([]int32, g.NumVerts)
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
	}
	dist[g.Source] = 0
	deque := []int{g.Source}
	for len(deque) > 0 {
		v := deque[0]
		deque = deque[1:]
		for _, eid := range g.Out[v] {
			e := g.Edges[eid]
			w := 0
			if e.Link >= 0 {
				w = 1
				if rate > 0 {
					c := cable(e.Link)
					if used[c]+rate > t.Link(c).Capacity+1e-9 {
						continue // insufficient headroom
					}
				}
			}
			if dist[v]+w < dist[e.To] {
				dist[e.To] = dist[v] + w
				parent[e.To] = eid
				if w == 0 {
					deque = append([]int{e.To}, deque...)
				} else {
					deque = append(deque, e.To)
				}
			}
		}
	}
	if dist[g.Sink] == inf {
		return nil
	}
	var rev []int
	for v := g.Sink; v != g.Source; {
		eid := parent[v]
		rev = append(rev, int(eid))
		v = g.Edges[eid].From
	}
	out := make([]int, len(rev))
	for i, eid := range rev {
		out[len(rev)-1-i] = eid
	}
	return out
}
