// Shard decomposition: the global provisioning MIP of §3.2 couples
// requests only through link-capacity constraints (eq. 2), so requests
// whose product graphs share no physical cable — disjoint tenants,
// disjoint pods, localized sub-policies — form independent subproblems.
// Partition computes those connected components from the statement↔link
// incidence, and Solve provisions each component as its own MIP over a
// worker pool, merging the per-shard optima into one Result. The merged
// solution is exactly as optimal as the monolithic solve: the
// weighted-shortest-path objective is a sum over requests and so splits
// across shards, and the min-max objectives are maxima over links, which
// link-disjointness reduces to the bottleneck shard's own optimum.
package provision

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"merlin/internal/logical"
	"merlin/internal/lp"
	"merlin/internal/mip"
	"merlin/internal/topo"
)

// ShardSolution is one shard's provisioning outcome, retained on the
// Result so a later Solve over an overlapping request set can reuse it:
// an identical shard (same requests, graphs, and rates) is served without
// a solve, and a rates-only change re-solves the shard's model
// warm-started from its cached optimal basis.
type ShardSolution struct {
	// Key identifies the shard by its request IDs in input order,
	// NUL-joined. Reuse additionally requires the graphs to be the same
	// objects, so the key is a fast filter, not the full match.
	Key string
	// IDs, Graphs, and Rates mirror the shard's requests in input order.
	IDs    []string
	Graphs []*logical.Graph
	Rates  []float64
	// Paths and Reserved are this shard's slice of the merged Result.
	Paths    map[string][]logical.Step
	Reserved map[topo.LinkID]float64
	// Basis is the shard model's optimal simplex basis, used to warm-start
	// a re-solve after a rate change. Nil when the shard took the
	// network-simplex fast path, which needs no warm start: re-solving it
	// costs a handful of tree pivots either way.
	Basis *lp.Basis
	// Nodes is the branch-and-bound node count of the shard's solve (zero
	// on the fast path — integral relaxations never branch).
	Nodes int
	// Netflow records that the shard was recognized as a pure node-arc
	// incidence problem and solved by the network simplex.
	Netflow bool
}

// shardKeyOf builds the reuse key for a request ID sequence.
func shardKeyOf(ids []string) string { return strings.Join(ids, "\x00") }

// Partition groups requests into link-disjoint shards: two requests land
// in the same shard iff their product graphs can ride a common physical
// cable and both carry a bandwidth guarantee. Requests with MinRate 0
// occupy no capacity and couple with nothing, so each is its own shard.
// Shards are returned ordered by their smallest request index, with
// request indices ascending inside each shard — fully deterministic.
func Partition(t *topo.Topology, reqs []Request) [][]int {
	parent := make([]int, len(reqs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	// owner maps each cable to the first guaranteed request that can ride
	// it; later requests touching the cable are unioned with that owner.
	owner := map[topo.LinkID]int{}
	for i, r := range reqs {
		if r.MinRate == 0 {
			continue
		}
		for _, e := range r.Graph.Edges {
			if e.Link < 0 {
				continue
			}
			c := t.Cable(e.Link)
			if j, ok := owner[c]; ok {
				union(i, j)
			} else {
				owner[c] = i
			}
		}
	}
	groups := map[int][]int{}
	var roots []int
	for i := range reqs {
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// solveComponents provisions each shard independently — reusing or
// warm-starting from p.Reuse where the shard is unchanged — and merges
// the per-shard solutions into one Result. A single token pool of
// p.Workers slots bounds all concurrency: every in-flight shard solve
// holds one token, and branch-and-bound waves inside a shard borrow the
// spare tokens for extra node relaxations (mip.Params.Sem), so shard-level
// and node-level parallelism together never exceed Workers.
func solveComponents(t *topo.Topology, reqs []Request, comps [][]int, h Heuristic, p Params, eps float64) (*Result, error) {
	reuse := make(map[string]*ShardSolution, len(p.Reuse))
	for _, s := range p.Reuse {
		reuse[s.Key] = s
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sem := make(chan struct{}, workers)
	sp := p
	sp.MIP.Workers = workers
	sp.MIP.Sem = sem
	shards := make([]*ShardSolution, len(comps))
	errs := make([]error, len(comps))
	kind := make([]int8, len(comps)) // 0 cold, 1 warm, 2 reused
	construct := make([]time.Duration, len(comps))
	solve := make([]time.Duration, len(comps))
	var wg sync.WaitGroup
	for ci := range comps {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			idxs := comps[ci]
			sub := make([]Request, len(idxs))
			ids := make([]string, len(idxs))
			for k, i := range idxs {
				sub[k] = reqs[i]
				ids[k] = reqs[i].ID
			}
			key := shardKeyOf(ids)
			var warm *lp.Basis
			if prev, ok := reuse[key]; ok && sameShardShape(prev, sub) {
				if sameShardRates(prev, sub) && !shardTouchesDirty(t, sub, p.Dirty) {
					shards[ci] = prev
					kind[ci] = 2
					return
				}
				// A shape-matched predecessor makes this a cheap re-solve
				// whichever engine runs: the general path warm-starts from
				// the cached basis, the fast path re-runs the network
				// simplex (prev.Basis nil) in a few tree pivots.
				warm = prev.Basis
				kind[ci] = 1
			} else if len(comps) == 1 && p.Warm != nil {
				warm = p.Warm
				kind[ci] = 1
			}
			out, err := solveOne(t, sub, h, sp, eps, warm, &construct[ci], &solve[ci])
			if err != nil {
				errs[ci] = err
				return
			}
			out.Key = key
			out.IDs = ids
			out.Graphs = make([]*logical.Graph, len(sub))
			out.Rates = make([]float64, len(sub))
			for k, r := range sub {
				out.Graphs[k], out.Rates[k] = r.Graph, r.MinRate
			}
			shards[ci] = out
		}(ci)
	}
	wg.Wait()
	// solveOne's errors carry no package prefix, so shard attribution and
	// the "provision:" prefix compose without stuttering.
	for ci, err := range errs {
		if err != nil {
			if len(comps) > 1 {
				return nil, fmt.Errorf("provision: shard %d (%s): %w", ci, strings.Join(requestIDs(reqs, comps[ci]), ","), err)
			}
			return nil, fmt.Errorf("provision: %w", err)
		}
	}
	res := &Result{
		Paths:    make(map[string][]logical.Step, len(reqs)),
		Reserved: map[topo.LinkID]float64{},
		Shards:   shards,
	}
	for ci, s := range shards {
		for id, steps := range s.Paths {
			res.Paths[id] = steps
		}
		for l, bits := range s.Reserved {
			res.Reserved[l] += bits
		}
		res.ConstructTime += construct[ci]
		res.SolveTime += solve[ci]
		switch kind[ci] {
		case 0:
			res.ShardsSolved++
		case 1:
			res.ShardsWarm++
		case 2:
			// Reused outright: the shard's nodes were explored by the
			// solve that produced it, not this one.
			res.ShardsReused++
			continue
		}
		res.Nodes += s.Nodes
		if s.Netflow {
			res.NetflowShards++
		}
	}
	if len(shards) == 1 {
		res.Basis = shards[0].Basis
	}
	res.RMax, res.RMaxBits = reservedStats(t, res.Reserved)
	return res, nil
}

func requestIDs(reqs []Request, idxs []int) []string {
	out := make([]string, len(idxs))
	for k, i := range idxs {
		out[k] = reqs[i].ID
	}
	return out
}

// sameShardShape reports whether prev describes exactly these requests
// over the same product-graph objects (the model shape is then identical,
// so prev.Basis installs directly).
func sameShardShape(prev *ShardSolution, sub []Request) bool {
	if len(prev.IDs) != len(sub) {
		return false
	}
	for k, r := range sub {
		if prev.IDs[k] != r.ID || prev.Graphs[k] != r.Graph {
			return false
		}
	}
	return true
}

func sameShardRates(prev *ShardSolution, sub []Request) bool {
	for k, r := range sub {
		if prev.Rates[k] != r.MinRate {
			return false
		}
	}
	return true
}

// shardTouchesDirty reports whether any of the shard's product graphs can
// ride a dirty cable — in which case the cached solution's model had
// different capacity coefficients and must not be served outright.
func shardTouchesDirty(t *topo.Topology, sub []Request, dirty map[topo.LinkID]bool) bool {
	if len(dirty) == 0 {
		return false
	}
	for _, r := range sub {
		for _, e := range r.Graph.Edges {
			if e.Link >= 0 && dirty[t.Cable(e.Link)] {
				return true
			}
		}
	}
	return false
}

// solveOne solves one request set (a shard, or the whole problem when
// sharding is off) and decodes the outcome. Eligible shards take the
// network-simplex fast path (see netflowEligible); the rest build the MIP
// and run simplex + branch and bound. The warm basis, when non-nil and
// shape-compatible, starts the general path's root relaxation from a
// previous optimum of the same model. Construction and solve durations
// accumulate through construct and solve.
func solveOne(t *topo.Topology, reqs []Request, h Heuristic, p Params, eps float64, warm *lp.Basis, construct, solve *time.Duration) (*ShardSolution, error) {
	if !p.NoNetflow && netflowEligible(t, reqs, h) {
		out, err := solveNetflow(t, reqs, h, eps, construct, solve)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
		// Numerical bail-out (pivot limit): fall through to the general
		// path, which shares no state with the aborted attempt.
	}
	start := time.Now()
	bm := buildModel(t, reqs, h, eps, p)
	*construct += time.Since(start)

	solveStart := time.Now()
	params := p.MIP
	if warm != nil {
		params.LP.Warm = warm
	}
	sol := bm.model.Solve(params)
	*solve += time.Since(solveStart)
	switch sol.Status {
	case mip.Optimal:
		// proceed
	case mip.Infeasible:
		return nil, fmt.Errorf("no assignment satisfies the path and bandwidth constraints")
	default:
		return nil, fmt.Errorf("solver stopped with status %v", sol.Status)
	}
	out := &ShardSolution{
		Paths:    make(map[string][]logical.Step, len(reqs)),
		Reserved: map[topo.LinkID]float64{},
		Basis:    sol.Basis,
		Nodes:    sol.Nodes,
	}
	for i, r := range reqs {
		vars := bm.xvars[i]
		steps, err := r.Graph.ExtractPath(func(e int) bool { return sol.X[vars[e]] > 0.5 })
		if err != nil {
			return nil, fmt.Errorf("decoding %s: %w", r.ID, err)
		}
		out.Paths[r.ID] = steps
		addReservations(t, out.Reserved, steps, r.MinRate)
	}
	return out, nil
}
