package corpus_test

import (
	"fmt"
	"reflect"
	"testing"

	"merlin/internal/corpus"

	merlin "merlin"
)

// testSpecs is the cross-product the unit tests sweep: every suite over
// a few small, structurally different topologies, failures on.
func testSpecs() []corpus.Spec {
	var specs []corpus.Spec
	for _, topoName := range []string{"fattree-k4", "ring-12", "btree-2-3-1", "star-8"} {
		for _, suite := range corpus.Suites() {
			specs = append(specs, corpus.Spec{Topo: topoName, Suite: suite, Seed: 7, Failures: true})
		}
	}
	return specs
}

// TestGenerateDeterminism asserts the corpus contract: the same spec
// yields byte-identical policy text and identical traffic and schedule
// on every call, and GenerateAll's output is independent of its worker
// count (run under -race in CI).
func TestGenerateDeterminism(t *testing.T) {
	specs := testSpecs()
	base, err := corpus.GenerateAll(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		again, err := corpus.GenerateAll(specs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			a, b := base[i], again[i]
			if a.PolicyText != b.PolicyText {
				t.Fatalf("%s: policy text differs across worker counts", a.Name)
			}
			if !reflect.DeepEqual(a.Traffic, b.Traffic) {
				t.Fatalf("%s: traffic matrix differs across worker counts", a.Name)
			}
			if !reflect.DeepEqual(a.Schedule, b.Schedule) {
				t.Fatalf("%s: schedule differs across worker counts", a.Name)
			}
			if !reflect.DeepEqual(a.Invariants, b.Invariants) {
				t.Fatalf("%s: invariants differ across worker counts", a.Name)
			}
		}
	}
	// Distinct seeds must actually vary the workload.
	a, err := corpus.Generate(corpus.Spec{Topo: "fattree-k4", Suite: "tenants", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := corpus.Generate(corpus.Spec{Topo: "fattree-k4", Suite: "tenants", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.PolicyText == b.PolicyText {
		t.Fatal("seeds 1 and 2 generated identical tenant policies")
	}
}

// compileScenario parses and compiles a scenario the way the sweep does.
func compileScenario(t *testing.T, sc *corpus.Scenario) *merlin.Result {
	t.Helper()
	pol, err := merlin.ParsePolicy(sc.PolicyText, sc.Topology)
	if err != nil {
		t.Fatalf("%s: parse: %v\npolicy: %s", sc.Name, err, sc.PolicyText)
	}
	res, err := merlin.Compile(pol, sc.Topology, merlin.Placement(sc.Placement), merlin.Options{NoDefault: true})
	if err != nil {
		t.Fatalf("%s: compile: %v", sc.Name, err)
	}
	return res
}

// TestScenariosCompile compiles every suite on every test topology and
// checks the scenario's own invariant descriptors: statement counts,
// region confinement of provisioned paths, and a capacity-respecting
// traffic allocation that honors every guarantee.
func TestScenariosCompile(t *testing.T) {
	for _, spec := range testSpecs() {
		spec := spec
		t.Run(fmt.Sprintf("%s-%s", spec.Topo, spec.Suite), func(t *testing.T) {
			sc, err := corpus.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			res := compileScenario(t, sc)
			if got := len(res.Policy.Statements); got != sc.Invariants.Statements {
				t.Fatalf("compiled %d statements, invariants promise %d", got, sc.Invariants.Statements)
			}
			if sc.Invariants.Confined {
				for _, g := range sc.Guarantee {
					path := res.Paths[g.ID]
					if len(path) < 2 {
						t.Fatalf("guarantee %s has no provisioned path", g.ID)
					}
					allowed := map[string]bool{}
					for _, n := range g.Region {
						allowed[n] = true
					}
					for _, loc := range path {
						if !allowed[loc] {
							t.Fatalf("guarantee %s path %v leaves region at %s", g.ID, path, loc)
						}
					}
				}
			}
			net, err := sc.BuildNetwork(res.Paths)
			if err != nil {
				t.Fatal(err)
			}
			net.Allocate()
			if err := net.CheckCapacities(); err != nil {
				t.Fatal(err)
			}
			for _, f := range net.Flows {
				if f.MinRate > 0 && f.Rate < f.MinRate-1 {
					t.Fatalf("flow %s allocated %.0f below guarantee %.0f", f.ID, f.Rate, f.MinRate)
				}
			}
		})
	}
}

// TestScheduleReplayRestoresOutput replays each scenario's balanced
// failure schedule through a warm incremental compiler: every event must
// apply cleanly (the scheduler's feasibility promise), and after the
// final recovery the compiler's output must match a cold compile of the
// pristine scenario byte for byte (the Balanced promise).
func TestScheduleReplayRestoresOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("replay matrix skipped in -short")
	}
	for _, spec := range testSpecs() {
		spec := spec
		t.Run(fmt.Sprintf("%s-%s", spec.Topo, spec.Suite), func(t *testing.T) {
			sc, err := corpus.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !sc.Invariants.Balanced || len(sc.Schedule) == 0 {
				t.Fatalf("failure spec generated no balanced schedule")
			}
			pol, err := merlin.ParsePolicy(sc.PolicyText, sc.Topology)
			if err != nil {
				t.Fatal(err)
			}
			opts := merlin.Options{NoDefault: true}
			comp := merlin.NewCompiler(sc.Topology, merlin.Placement(sc.Placement), opts)
			if _, err := comp.Compile(pol); err != nil {
				t.Fatalf("warm compile: %v", err)
			}
			for i, ev := range sc.Schedule {
				if _, err := comp.ApplyTopo(ev.Event); err != nil {
					t.Fatalf("schedule event %d (%v %s-%s): %v", i, ev.Event.Kind, ev.Event.A, ev.Event.B, err)
				}
			}
			// A pristine regeneration gives the cold reference: same spec,
			// same topology, same policy.
			ref, err := corpus.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			want := compileScenario(t, ref)
			got := comp.Result()
			if !reflect.DeepEqual(got.Output, want.Output) {
				t.Fatal("replayed output diverges from pristine compile")
			}
			if !reflect.DeepEqual(got.Programs, want.Programs) {
				t.Fatal("replayed programs diverge from pristine compile")
			}
		})
	}
}
