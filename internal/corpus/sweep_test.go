package corpus_test

import (
	"bytes"
	"strings"
	"testing"

	"merlin/internal/corpus"
)

// smokeGrid is the small grid CI sweeps: two small topologies, two
// suites, failures on and off, with the differential and budget
// injections hitting at least one cell each.
func smokeGrid() corpus.Grid {
	return corpus.Grid{
		Topos:       []string{"fattree-k4", "ring-12"},
		Suites:      []string{"tenants", "delegation"},
		Seeds:       []int64{3},
		Failures:    []bool{false, true},
		DiffEvery:   3,
		BudgetEvery: 4,
	}
}

// TestSweepSmokeGridPasses runs the CI smoke grid end to end: every cell
// must pass every validation, and the differential and budget checks must
// have actually run somewhere.
func TestSweepSmokeGridPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid skipped in -short")
	}
	res := corpus.RunSweep(smokeGrid())
	sawDiff, sawBudget, sawReplay, sawNegotiate := false, false, false, false
	for _, c := range res.Cells {
		if !c.OK() {
			t.Errorf("cell %d %s failed: %s", c.Index, c.Name, c.Err)
		}
		joined := strings.Join(c.Checks, "+")
		sawDiff = sawDiff || strings.Contains(joined, "diff")
		sawBudget = sawBudget || strings.Contains(joined, "budget")
		sawReplay = sawReplay || strings.Contains(joined, "replay")
		sawNegotiate = sawNegotiate || strings.Contains(joined, "negotiate")
	}
	if res.Failed != 0 {
		t.Fatalf("%d/%d cells failed", res.Failed, len(res.Cells))
	}
	if !sawDiff || !sawBudget || !sawReplay || !sawNegotiate {
		t.Fatalf("missing check coverage: diff=%t budget=%t replay=%t negotiate=%t",
			sawDiff, sawBudget, sawReplay, sawNegotiate)
	}
}

// TestSweepSummaryDeterministic asserts the acceptance contract: the same
// grid re-run — at any worker count — emits a byte-identical summary.
func TestSweepSummaryDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid skipped in -short")
	}
	g := smokeGrid()
	g.Workers = 1
	a := corpus.RunSweep(g)
	g.Workers = 4
	b := corpus.RunSweep(g)
	if !bytes.Equal(a.SummaryCSV(), b.SummaryCSV()) {
		t.Fatalf("summary CSV differs across worker counts:\n--- w1\n%s\n--- w4\n%s", a.SummaryCSV(), b.SummaryCSV())
	}
	ga, gb := a.GroupRows(), b.GroupRows()
	if len(ga) != len(gb) {
		t.Fatalf("group row counts differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("group row %d differs: %+v vs %+v", i, ga[i], gb[i])
		}
	}
}
