// Package corpus generates seeded evaluation scenarios — policy suites,
// traffic matrices, failure/recovery schedules, and expected-invariant
// descriptors — over any topology, turning the hand-built fat-tree
// workloads of the paper's §6 into a corpus that covers the Topology Zoo
// and beyond. Everything is deterministic in the spec's seed: the same
// Spec always yields byte-identical policy text, the same traffic matrix,
// and the same event timeline, regardless of how many scenarios are
// generated concurrently. cmd/merlin-sweep runs grids of these scenarios
// through the real compiler and validates each cell's outputs.
//
// Four policy suites compose over a topology, scaled to its host count:
//
//   - "tenants": multi-tenant bandwidth guarantees. The switches are
//     partitioned into link-disjoint regions grown around host
//     attachments; each tenant's guarantees are confined to its region by
//     the path expression, so provisioning shards one MIP per tenant —
//     the workload shape of the sharding and failover benchmarks,
//     synthesized for arbitrary graphs.
//   - "chains": middlebox function paths. Two middleboxes are attached to
//     the highest-degree switches and dpi/nat/firewall chains (some with
//     bandwidth guarantees) steer sampled host pairs through them.
//   - "delegation": per-tenant capped statements whose max() formula
//     terms form the delegation a negotiation hub renegotiates — the
//     input shape for Hub.Register/Tick/Propose.
//   - "besteffort": background best-effort classes — sampled host-pair
//     statements plus port classes — exercising the sink-tree path.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"merlin/internal/topo"
	"merlin/internal/zoo"

	merlin "merlin"
)

// Suites lists the policy suite names Generate accepts.
func Suites() []string { return []string{"tenants", "chains", "delegation", "besteffort"} }

// Spec selects one scenario: a topology, a policy suite, a seed, and
// scale/failure knobs. The zero values of the knobs mean "scale to the
// topology".
type Spec struct {
	// Topo names the topology: "fattree-k4", "btree-2-3-2" (fanout,
	// depth, hosts/leaf), "ring-12", "star-8", "linear-6" (one host per
	// switch), or "zoo-14" (Topology Zoo entry, one host per attachment).
	Topo string
	// Suite is one of Suites().
	Suite string
	// Seed drives every random choice. Same spec, same scenario, byte
	// for byte.
	Seed int64
	// Failures attaches a failure/recovery schedule; the schedule is
	// balanced (every outage is restored, every capacity wobble undone),
	// and every event is chosen so the policy stays compilable while it
	// is in force.
	Failures bool
	// Tenants bounds the number of tenants/regions (0 = hosts/8,
	// clamped to [2, 6]).
	Tenants int
	// Guarantees is the number of guarantees per tenant (0 = 2).
	Guarantees int
	// Episodes bounds the failure schedule's episode count (0 = 3).
	Episodes int
}

// Guarantee describes one generated path obligation: a bandwidth
// guarantee when RateBps > 0, a reachability-only obligation (a
// middlebox chain without a rate) when RateBps == 0. The failure
// scheduler keeps every obligation satisfiable throughout the timeline.
type Guarantee struct {
	// ID is the policy statement ID.
	ID string
	// Tenant names the owning tenant.
	Tenant string
	// Src and Dst are host names.
	Src, Dst string
	// Via lists middlebox waypoints, in path order (chains suite).
	Via []string
	// Region is the sorted node-name set the path expression confines
	// the guarantee to; empty means unconfined (.* around waypoints).
	Region []string
	// RateBps is the guaranteed rate.
	RateBps float64
}

// Tenant is one generated tenant: the statements it owns and the region
// its traffic is confined to. The delegation suite registers these as hub
// sessions.
type Tenant struct {
	Name string
	// StmtIDs are the policy statements the tenant owns, in order.
	StmtIDs []string
	// Region is the tenant's sorted node-name set (empty when the suite
	// does not confine paths).
	Region []string
	// CapBps is the tenant's per-statement cap (delegation suite).
	CapBps float64
}

// FlowSpec is one traffic-matrix entry for internal/sim.
type FlowSpec struct {
	// ID names the flow; guarantee flows reuse their statement ID.
	ID string
	// Src and Dst are host names.
	Src, Dst string
	// Stmt is the owning statement ("" for background flows).
	Stmt string
	// DemandBps is the offered load; MinBps the guaranteed rate (0 for
	// best-effort); MaxBps the cap (0 = uncapped).
	DemandBps, MinBps, MaxBps float64
}

// ScheduledEvent is one failure-schedule entry: a topology event applied
// at a step. Steps are dense and ordered; a replay applies events in
// slice order.
type ScheduledEvent struct {
	Step  int
	Event merlin.TopoEvent
}

// Invariants describes what a generated scenario promises — the
// descriptors a sweep cell validates its outputs against.
type Invariants struct {
	// Statements is the number of policy statements in PolicyText.
	Statements int
	// Guaranteed is the number of statements with min-rate guarantees.
	Guaranteed int
	// Tenants is the number of generated tenants (0 for suites without
	// tenant structure).
	Tenants int
	// Events is the schedule length.
	Events int
	// Balanced promises the schedule restores the pristine topology:
	// after a full replay, an incremental compiler's output must be
	// byte-identical to its pre-schedule output.
	Balanced bool
	// Confined promises every guarantee's provisioned path stays inside
	// its Region.
	Confined bool
	// Negotiable promises the policy's formula is the negotiator
	// fragment (max terms only), so a hub can be built over it.
	Negotiable bool
}

// Scenario is one generated evaluation scenario.
type Scenario struct {
	Spec Spec
	// Name is the canonical cell label: topo/suite/seedN[+fail].
	Name string
	// Topology is the materialized topology (chains suites attach
	// middleboxes to it).
	Topology *topo.Topology
	// PolicyText is the Merlin policy source, parseable by
	// merlin.ParsePolicy against Topology.
	PolicyText string
	// Placement maps function names to their allowed locations.
	Placement map[string][]string
	Tenants   []Tenant
	Guarantee []Guarantee
	// Traffic is the scenario's flow-level traffic matrix.
	Traffic []FlowSpec
	// Schedule is the failure/recovery timeline (nil without Failures).
	Schedule []ScheduledEvent
	// Invariants describes the expected properties of the outputs.
	Invariants Invariants
}

// BuildTopo materializes a topology by its spec name.
func BuildTopo(name string) (*topo.Topology, error) {
	fail := func() (*topo.Topology, error) {
		return nil, fmt.Errorf("corpus: unknown topology %q", name)
	}
	parts := strings.Split(name, "-")
	num := func(s string) (int, bool) {
		n, err := strconv.Atoi(strings.TrimLeft(s, "k"))
		return n, err == nil && n >= 0
	}
	switch parts[0] {
	case "fattree":
		if len(parts) != 2 {
			return fail()
		}
		if k, ok := num(parts[1]); ok && k >= 2 && k%2 == 0 {
			return topo.FatTree(k, topo.Gbps), nil
		}
	case "btree":
		if len(parts) != 4 {
			return fail()
		}
		f, okF := num(parts[1])
		d, okD := num(parts[2])
		h, okH := num(parts[3])
		if okF && okD && okH && f >= 2 && d >= 1 {
			return topo.BalancedTree(f, d, h, topo.Gbps), nil
		}
	case "ring":
		if len(parts) != 2 {
			return fail()
		}
		if n, ok := num(parts[1]); ok && n >= 3 {
			return topo.Ring(n, 1, topo.Gbps), nil
		}
	case "star":
		if len(parts) != 2 {
			return fail()
		}
		if n, ok := num(parts[1]); ok && n >= 2 {
			return topo.Star(n, 1, topo.Gbps), nil
		}
	case "linear":
		if len(parts) != 2 {
			return fail()
		}
		if n, ok := num(parts[1]); ok && n >= 2 {
			return topo.Linear(n, topo.Gbps), nil
		}
	case "zoo":
		if len(parts) != 2 {
			return fail()
		}
		if i, ok := num(parts[1]); ok && i < zoo.Count {
			return zoo.Generate(i, 1), nil
		}
	}
	return fail()
}

// Generate materializes the scenario a spec describes. It is pure in the
// spec: the same spec yields the same scenario, byte for byte, on every
// call.
func Generate(spec Spec) (*Scenario, error) {
	t, err := BuildTopo(spec.Topo)
	if err != nil {
		return nil, err
	}
	if len(t.Hosts()) < 2 {
		return nil, fmt.Errorf("corpus: topology %s has %d hosts; need at least 2", spec.Topo, len(t.Hosts()))
	}
	sc := &Scenario{Spec: spec, Topology: t, Name: spec.Name()}
	rng := rand.New(rand.NewSource(spec.Seed*1000003 + 17))
	switch spec.Suite {
	case "tenants":
		err = genTenants(sc, rng)
	case "chains":
		err = genChains(sc, rng)
	case "delegation":
		err = genDelegation(sc, rng)
	case "besteffort":
		err = genBestEffort(sc, rng)
	default:
		err = fmt.Errorf("corpus: unknown suite %q (have %s)", spec.Suite, strings.Join(Suites(), ", "))
	}
	if err != nil {
		return nil, err
	}
	genTraffic(sc, rng)
	if spec.Failures {
		if err := genSchedule(sc, rng); err != nil {
			return nil, err
		}
	}
	sc.Invariants.Events = len(sc.Schedule)
	return sc, nil
}

// GenerateAll materializes a batch of specs over a bounded worker pool.
// The result slice is indexed like specs, so the output is identical for
// every Workers value; the first error wins deterministically (lowest
// spec index).
func GenerateAll(specs []Spec, workers int) ([]*Scenario, error) {
	out := make([]*Scenario, len(specs))
	errs := make([]error, len(specs))
	if workers <= 0 || workers > len(specs) {
		workers = len(specs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = Generate(specs[i])
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("spec %d (%s/%s): %w", i, specs[i].Topo, specs[i].Suite, err)
		}
	}
	return out, nil
}

// tenants returns the spec's tenant count scaled to the topology.
// Name is the spec's display name — topo/suite/seedN, with "+fail"
// marking a failure schedule. Scenario.Name carries the same value, but
// this form needs no successful generation, so sweep cells stay named
// even when generation fails.
func (s Spec) Name() string {
	name := fmt.Sprintf("%s/%s/seed%d", s.Topo, s.Suite, s.Seed)
	if s.Failures {
		name += "+fail"
	}
	return name
}

func (s Spec) tenants(t *topo.Topology) int {
	if s.Tenants > 0 {
		return s.Tenants
	}
	n := len(t.Hosts()) / 8
	if n < 2 {
		n = 2
	}
	if n > 6 {
		n = 6
	}
	return n
}

// guaranteesPerTenant returns the spec's per-tenant guarantee count.
func (s Spec) guaranteesPerTenant() int {
	if s.Guarantees > 0 {
		return s.Guarantees
	}
	return 2
}

// episodes returns the spec's failure-episode count.
func (s Spec) episodes() int {
	if s.Episodes > 0 {
		return s.Episodes
	}
	return 3
}

// hostNames returns the topology's host names in node-ID order (the
// attachment order, stable across runs).
func hostNames(t *topo.Topology) []string {
	hosts := t.Hosts()
	names := make([]string, len(hosts))
	for i, h := range hosts {
		names[i] = t.Node(h).Name
	}
	return names
}

// macOf returns the canonical MAC of a named host.
func macOf(t *topo.Topology, name string) string {
	return topo.MACOf(t.MustLookup(name))
}

// pickPair draws a distinct host pair from names (len ≥ 2).
func pickPair(rng *rand.Rand, names []string) (src, dst string) {
	i := rng.Intn(len(names))
	j := rng.Intn(len(names) - 1)
	if j >= i {
		j++
	}
	return names[i], names[j]
}

// sortedCopy returns a sorted copy of names.
func sortedCopy(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
