package corpus

import (
	"sort"

	"merlin/internal/topo"
)

// A region is one node-disjoint slice of the topology: a connected ball
// of switches grown breadth-first around a host-attachment seed, plus the
// hosts attached inside it. Regions generalize the fat-tree pod: a path
// expression alternating a region's node names confines a tenant to it,
// and because distinct regions share no nodes they share no cables, so
// provisioning decomposes into one shard per region.
type region struct {
	// names is the sorted node-name set (switches and hosts) — the
	// alternation the path expression is built from.
	names []string
	// hosts is the sorted host-name subset, the tenant's endpoint pool.
	hosts []string
	// set holds every member node for confinement checks.
	set map[topo.NodeID]bool
}

// partitionRegions grows up to want node-disjoint regions over the
// topology's switches by round-robin multi-source BFS from evenly spaced
// host-attachment seeds, then drops regions with fewer than two hosts
// (no intra-region pair exists). Growth claims every switch, each one by
// the region that reaches it first, so regions are connected by
// construction. Deterministic: seeds, queue order, and neighbor order
// all derive from node-ID order.
func partitionRegions(t *topo.Topology, want int) []*region {
	var attach []topo.NodeID
	for _, s := range t.Switches() {
		for _, n := range t.Neighbors(s) {
			if t.Node(n).Kind == topo.Host {
				attach = append(attach, s)
				break
			}
		}
	}
	if len(attach) == 0 {
		return nil
	}
	if want < 1 {
		want = 1
	}
	if want > len(attach) {
		want = len(attach)
	}
	// Evenly spaced seeds over the attachment switches (ID order spreads
	// them across the graph for every generator in internal/topo).
	owner := map[topo.NodeID]int{}
	queues := make([][]topo.NodeID, 0, want)
	for i := 0; i < want; i++ {
		seed := attach[i*len(attach)/want]
		if _, taken := owner[seed]; taken {
			continue
		}
		owner[seed] = len(queues)
		queues = append(queues, []topo.NodeID{seed})
	}
	// Round-robin frontier expansion: each region claims one node's
	// unowned switch-neighbors per round, keeping ball sizes balanced.
	for {
		progress := false
		for r := range queues {
			if len(queues[r]) == 0 {
				continue
			}
			n := queues[r][0]
			queues[r] = queues[r][1:]
			progress = true
			for _, m := range t.Neighbors(n) {
				if t.Node(m).Kind != topo.Switch {
					continue
				}
				if _, taken := owner[m]; taken {
					continue
				}
				owner[m] = r
				queues[r] = append(queues[r], m)
			}
		}
		if !progress {
			break
		}
	}
	regions := make([]*region, len(queues))
	for i := range regions {
		regions[i] = &region{set: map[topo.NodeID]bool{}}
	}
	for _, s := range t.Switches() {
		r, ok := owner[s]
		if !ok {
			continue
		}
		regions[r].set[s] = true
		regions[r].names = append(regions[r].names, t.Node(s).Name)
	}
	for _, h := range t.Hosts() {
		a, ok := t.Attachment(h)
		if !ok {
			continue
		}
		r, ok := owner[a]
		if !ok {
			continue
		}
		name := t.Node(h).Name
		regions[r].set[h] = true
		regions[r].names = append(regions[r].names, name)
		regions[r].hosts = append(regions[r].hosts, name)
	}
	kept := regions[:0]
	for _, r := range regions {
		if len(r.hosts) < 2 {
			continue
		}
		sort.Strings(r.names)
		sort.Strings(r.hosts)
		kept = append(kept, r)
	}
	return kept
}

// Regions partitions the topology into up to want link-disjoint tenant
// regions and returns each region's sorted node names and host names —
// the exported face of the partitioner for benchmark workloads that
// build provisioning requests directly.
func Regions(t *topo.Topology, want int) (names, hosts [][]string) {
	for _, r := range partitionRegions(t, want) {
		names = append(names, r.names)
		hosts = append(hosts, r.hosts)
	}
	return names, hosts
}

// reachable reports whether src reaches dst over live links, treating
// cables in skip as down, node down (pass -1 for none) as failed, and —
// when allowed is non-nil — refusing to traverse nodes outside allowed
// (src and dst are always admitted).
func reachable(t *topo.Topology, src, dst topo.NodeID, skip map[topo.LinkID]bool, down topo.NodeID, allowed map[topo.NodeID]bool) bool {
	if src == down || dst == down {
		return false
	}
	if src == dst {
		return true
	}
	seen := map[topo.NodeID]bool{src: true}
	frontier := []topo.NodeID{src}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, l := range t.Out(n) {
			if !t.LinkIsUp(l) || skip[t.Cable(l)] {
				continue
			}
			m := t.Link(l).Dst
			if m == down || seen[m] {
				continue
			}
			if m == dst {
				return true
			}
			if allowed != nil && !allowed[m] {
				continue
			}
			seen[m] = true
			frontier = append(frontier, m)
		}
	}
	return false
}

// RegionConnects reports whether src still reaches dst through the named
// region's nodes while the cable between skipA and skipB is down (pass
// empty names to skip nothing) — the feasibility probe failure-schedule
// generation and failover benchmarks share.
func RegionConnects(t *topo.Topology, region []string, src, dst, skipA, skipB string) bool {
	var allowed map[topo.NodeID]bool
	if len(region) > 0 {
		allowed = map[topo.NodeID]bool{}
		for _, name := range region {
			if id, ok := t.Lookup(name); ok {
				allowed[id] = true
			}
		}
	}
	skip := map[topo.LinkID]bool{}
	if skipA != "" && skipB != "" {
		a, okA := t.Lookup(skipA)
		b, okB := t.Lookup(skipB)
		if okA && okB {
			if c, ok := t.CableBetween(a, b); ok {
				skip[c] = true
			}
		}
	}
	s, okS := t.Lookup(src)
	d, okD := t.Lookup(dst)
	if !okS || !okD {
		return false
	}
	return reachable(t, s, d, skip, -1, allowed)
}
