package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"merlin/internal/topo"
)

// genTenants builds the multi-tenant guarantee suite: the topology is
// partitioned into link-disjoint regions, tenants cycle over the regions
// (one tenant per region when the graph yields enough), and each tenant
// asks for min-rate guarantees between host pairs inside its region,
// confined there by the path expression — the sharding/failover workload
// shape, synthesized for arbitrary graphs.
func genTenants(sc *Scenario, rng *rand.Rand) error {
	t := sc.Topology
	regions := partitionRegions(t, sc.Spec.tenants(t))
	if len(regions) == 0 {
		// No region holds two hosts (hub-and-spoke shapes): fall back to
		// one region spanning every node, which still compiles — it just
		// yields a single shard.
		all := &region{set: map[topo.NodeID]bool{}}
		for _, n := range t.Nodes() {
			if n.Kind == topo.Host || n.Kind == topo.Switch {
				all.set[t.MustLookup(n.Name)] = true
				all.names = append(all.names, n.Name)
				if n.Kind == topo.Host {
					all.hosts = append(all.hosts, n.Name)
				}
			}
		}
		sort.Strings(all.names)
		sort.Strings(all.hosts)
		regions = []*region{all}
	}
	nT := sc.Spec.tenants(t)
	nG := sc.Spec.guaranteesPerTenant()
	var sb strings.Builder
	sb.WriteString("[")
	port := 1000
	for p := 0; p < nT; p++ {
		reg := regions[p%len(regions)]
		expr := "( " + strings.Join(reg.names, " | ") + " )*"
		tenant := Tenant{Name: fmt.Sprintf("tenant%d", p), Region: reg.names}
		for g := 0; g < nG; g++ {
			src, dst := pickPair(rng, reg.hosts)
			rate := float64(5+5*rng.Intn(5)) * topo.Mbps
			id := fmt.Sprintf("t%dg%d", p, g)
			// A unique port keeps guarantees predicate-disjoint even when
			// two draws collide on the same host pair.
			fmt.Fprintf(&sb, " %s : (eth.src = %s and eth.dst = %s and tcp.dst = %d) -> %s at min(%dMbps) ;",
				id, macOf(t, src), macOf(t, dst), port, expr, int(rate/topo.Mbps))
			port++
			tenant.StmtIDs = append(tenant.StmtIDs, id)
			sc.Guarantee = append(sc.Guarantee, Guarantee{
				ID: id, Tenant: tenant.Name, Src: src, Dst: dst,
				Region: reg.names, RateBps: rate,
			})
			sc.Traffic = append(sc.Traffic, FlowSpec{
				ID: id, Src: src, Dst: dst, Stmt: id,
				DemandBps: 1.5 * rate, MinBps: rate,
			})
		}
		sc.Tenants = append(sc.Tenants, tenant)
	}
	sb.WriteString("]")
	sc.PolicyText = sb.String()
	sc.Invariants.Statements = nT * nG
	sc.Invariants.Guaranteed = nT * nG
	sc.Invariants.Tenants = nT
	sc.Invariants.Confined = true
	return nil
}

// genChains builds the middlebox-chain suite: two middleboxes are
// attached to the highest-degree switches, and dpi/nat/firewall function
// paths steer sampled host pairs through them — a third of the chains
// carrying a bandwidth guarantee, the rest best-effort.
func genChains(sc *Scenario, rng *rand.Rand) error {
	t := sc.Topology
	sws := append([]topo.NodeID(nil), t.Switches()...)
	sort.Slice(sws, func(i, j int) bool {
		di, dj := len(t.Neighbors(sws[i])), len(t.Neighbors(sws[j]))
		if di != dj {
			return di > dj
		}
		return sws[i] < sws[j]
	})
	anchors := []topo.NodeID{sws[0], sws[0]}
	if len(sws) > 1 {
		anchors[1] = sws[1]
	}
	mbs := make([]string, 2)
	for i, sw := range anchors {
		mbs[i] = fmt.Sprintf("mb%d", i)
		mb := t.AddMiddlebox(mbs[i])
		t.AddLink(sw, mb, topo.Gbps)
	}
	sc.Placement = map[string][]string{
		"dpi": {mbs[0]},
		"nat": {mbs[1]},
		"fw":  {mbs[0], mbs[1]},
	}
	hosts := hostNames(t)
	n := sc.Spec.tenants(t) * sc.Spec.guaranteesPerTenant()
	var sb strings.Builder
	sb.WriteString("[")
	guaranteed := 0
	for i := 0; i < n; i++ {
		src, dst := pickPair(rng, hosts)
		id := fmt.Sprintf("c%d", i)
		g := Guarantee{ID: id, Tenant: "", Src: src, Dst: dst}
		flow := FlowSpec{ID: id, Src: src, Dst: dst, Stmt: id, DemandBps: 20 * topo.Mbps}
		switch i % 3 {
		case 0:
			fmt.Fprintf(&sb, " %s : (eth.src = %s and eth.dst = %s and tcp.dst = %d) -> ( .* fw .* ) ;",
				id, macOf(t, src), macOf(t, dst), 80+i)
			g.Via = []string{"fw"}
		case 1:
			rate := float64(5+5*rng.Intn(3)) * topo.Mbps
			fmt.Fprintf(&sb, " %s : (eth.src = %s and eth.dst = %s and udp.dst = %d) -> ( .* dpi .* ) at min(%dMbps) ;",
				id, macOf(t, src), macOf(t, dst), 5000+i, int(rate/topo.Mbps))
			g.Via = []string{"dpi"}
			g.RateBps = rate
			flow.MinBps = rate
			flow.DemandBps = 1.5 * rate
			guaranteed++
		case 2:
			fmt.Fprintf(&sb, " %s : (eth.src = %s and eth.dst = %s and tcp.dst = %d) -> ( .* nat .* dpi .* ) ;",
				id, macOf(t, src), macOf(t, dst), 8000+i)
			g.Via = []string{"nat", "dpi"}
		}
		sc.Guarantee = append(sc.Guarantee, g)
		sc.Traffic = append(sc.Traffic, flow)
	}
	sb.WriteString("]")
	sc.PolicyText = sb.String()
	sc.Invariants.Statements = n
	sc.Invariants.Guaranteed = guaranteed
	return nil
}

// genDelegation builds the negotiation suite: tenants own capped
// best-effort statements (the inline max() terms a hub renegotiates),
// shaped like the tenant-scale negotiation benchmark's policies.
func genDelegation(sc *Scenario, rng *rand.Rand) error {
	t := sc.Topology
	hosts := hostNames(t)
	nT := sc.Spec.tenants(t)
	nG := sc.Spec.guaranteesPerTenant()
	var sb strings.Builder
	sb.WriteString("[")
	for p := 0; p < nT; p++ {
		capMB := 50 + 25*rng.Intn(5)
		tenant := Tenant{Name: fmt.Sprintf("tenant%d", p), CapBps: float64(capMB) * topo.MBps}
		for g := 0; g < nG; g++ {
			src, dst := pickPair(rng, hosts)
			id := fmt.Sprintf("t%ds%d", p, g)
			fmt.Fprintf(&sb, " %s : (eth.src = %s and eth.dst = %s and tcp.dst = %d) -> .* at max(%dMB/s) ;",
				id, macOf(t, src), macOf(t, dst), 2000+p*nG+g, capMB)
			tenant.StmtIDs = append(tenant.StmtIDs, id)
			sc.Traffic = append(sc.Traffic, FlowSpec{
				ID: id, Src: src, Dst: dst, Stmt: id,
				DemandBps: 2 * float64(capMB) * topo.MBps, MaxBps: float64(capMB) * topo.MBps,
			})
		}
		sc.Tenants = append(sc.Tenants, tenant)
	}
	sb.WriteString("]")
	sc.PolicyText = sb.String()
	sc.Invariants.Statements = nT * nG
	sc.Invariants.Tenants = nT
	sc.Invariants.Negotiable = true
	return nil
}

// genBestEffort builds the background suite: sampled host-pair
// best-effort classes, plus two endpoint-free port classes (which widen
// to all host pairs) on topologies small enough to afford them.
func genBestEffort(sc *Scenario, rng *rand.Rand) error {
	t := sc.Topology
	hosts := hostNames(t)
	n := len(hosts) / 2
	if n < 6 {
		n = 6
	}
	if n > 16 {
		n = 16
	}
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i < n; i++ {
		src, dst := pickPair(rng, hosts)
		id := fmt.Sprintf("b%d", i)
		fmt.Fprintf(&sb, " %s : (eth.src = %s and eth.dst = %s and tcp.dst = %d) -> .* ;",
			id, macOf(t, src), macOf(t, dst), 3000+i)
		sc.Traffic = append(sc.Traffic, FlowSpec{
			ID: id, Src: src, Dst: dst, Stmt: id,
			DemandBps: float64(10+10*rng.Intn(9)) * topo.Mbps,
		})
	}
	stmts := n
	if len(hosts) <= 40 {
		sb.WriteString(" web : (tcp.dst = 80) -> .* ;")
		sb.WriteString(" dns : (udp.dst = 53) -> .* ;")
		stmts += 2
	}
	sb.WriteString("]")
	sc.PolicyText = sb.String()
	sc.Invariants.Statements = stmts
	return nil
}
