package corpus

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"merlin/internal/codegen"
	"merlin/internal/topo"

	merlin "merlin"
)

// Grid describes a sweep: the cross product of topologies × suites ×
// seeds × failure settings, plus the differential knobs. Cells are
// enumerated topology-major, so a grid's cell order — and therefore its
// summary — is deterministic.
type Grid struct {
	Topos    []string `json:"topos"`
	Suites   []string `json:"suites"`
	Seeds    []int64  `json:"seeds"`
	Failures []bool   `json:"failures"`
	// Workers bounds the cell-level worker pool (0 = one per cell, the
	// runtime caps at GOMAXPROCS-driven scheduling). Output is identical
	// for every value.
	Workers int `json:"workers,omitempty"`
	// DiffEvery spot-checks every Nth cell sharded ≡ monolithic: the
	// cell recompiles with Options.NoShard and the outputs must match
	// byte for byte. 0 disables.
	DiffEvery int `json:"diff_every,omitempty"`
	// BudgetEvery injects a zero table budget on the first statement's
	// ingress edge switch into every Nth cell and requires the compiler's
	// typed *codegen.TableOverflowError rejection. 0 disables.
	BudgetEvery int `json:"budget_every,omitempty"`
	// Repeats re-runs every cell this many times (0 and 1 mean once):
	// wall-clock fields average over the runs, and any run disagreeing
	// with the first on a summary field fails the cell — repeats are a
	// live determinism check, not just timing stabilization.
	Repeats int `json:"repeats,omitempty"`
}

// DefaultGrid is the acceptance sweep: five Topology Zoo entries of five
// different families (star, mesh, waxman, ring, tree) crossed with all
// four policy suites, with and without failure schedules — 40 cells.
func DefaultGrid() Grid {
	return Grid{
		Topos:       []string{"zoo-1", "zoo-3", "zoo-9", "zoo-10", "zoo-12"},
		Suites:      Suites(),
		Seeds:       []int64{1},
		Failures:    []bool{false, true},
		DiffEvery:   4,
		BudgetEvery: 5,
	}
}

// Specs enumerates the grid's cells in canonical order: topology, suite,
// seed, failures.
func (g Grid) Specs() []Spec {
	var specs []Spec
	for _, tn := range g.Topos {
		for _, suite := range g.Suites {
			for _, seed := range g.Seeds {
				for _, fail := range g.Failures {
					specs = append(specs, Spec{Topo: tn, Suite: suite, Seed: seed, Failures: fail})
				}
			}
		}
	}
	return specs
}

// CellResult is one grid point's outcome: the scenario's shape counters,
// the list of validations that passed, and the first failure if any.
// Wall-clock fields are excluded from the summary encodings so same-seed
// reruns stay byte-identical.
type CellResult struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	Topo     string `json:"topo"`
	Suite    string `json:"suite"`
	Seed     int64  `json:"seed"`
	Failures bool   `json:"failures"`

	Statements int `json:"statements"`
	Guaranteed int `json:"guaranteed"`
	Events     int `json:"events"`
	Rules      int `json:"rules"`

	// Checks lists the validations that passed, in execution order.
	Checks []string `json:"checks"`
	// Err is the first validation failure ("" = cell passed).
	Err string `json:"err,omitempty"`

	// CompileMS and TotalMS are wall-clock measurements; they appear in
	// the per-cell CSV only.
	CompileMS float64 `json:"-"`
	TotalMS   float64 `json:"-"`
}

// OK reports whether every validation passed.
func (c CellResult) OK() bool { return c.Err == "" }

// SweepResult is a full grid run.
type SweepResult struct {
	Grid   Grid
	Cells  []CellResult
	Failed int
}

// RunSweep materializes and validates every cell of the grid over a
// bounded worker pool. It never returns a partial result: failed cells
// carry their error in CellResult.Err and count toward Failed.
func RunSweep(g Grid) *SweepResult {
	specs := g.Specs()
	cells := make([]CellResult, len(specs))
	workers := g.Workers
	if workers <= 0 || workers > len(specs) {
		workers = len(specs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				diff := g.DiffEvery > 0 && i%g.DiffEvery == 0
				budget := g.BudgetEvery > 0 && i%g.BudgetEvery == 0
				cells[i] = runCellRepeated(specs[i], diff, budget, g.Repeats)
				cells[i].Index = i
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	res := &SweepResult{Grid: g, Cells: cells}
	for _, c := range cells {
		if !c.OK() {
			res.Failed++
		}
	}
	return res
}

// runCellRepeated runs a cell repeats times, averaging wall-clock and
// failing the cell if any repeat disagrees with the first on a
// summary-visible field.
func runCellRepeated(spec Spec, diff, budget bool, repeats int) CellResult {
	first := RunCell(spec, diff, budget)
	for r := 1; r < repeats; r++ {
		again := RunCell(spec, diff, budget)
		if again.Err != first.Err || again.Statements != first.Statements ||
			again.Rules != first.Rules || again.Events != first.Events ||
			strings.Join(again.Checks, "+") != strings.Join(first.Checks, "+") {
			first.Err = fmt.Sprintf("repeat %d diverged from first run (err=%q stmts=%d rules=%d events=%d)",
				r, again.Err, again.Statements, again.Rules, again.Events)
			return first
		}
		first.CompileMS += again.CompileMS
		first.TotalMS += again.TotalMS
	}
	if repeats > 1 {
		first.CompileMS /= float64(repeats)
		first.TotalMS /= float64(repeats)
	}
	return first
}

// RunCell generates, compiles, and validates one cell. diff adds the
// sharded-vs-monolithic differential, budget the injected-overflow check.
// Failures are recorded, not returned: a sweep always completes.
func RunCell(spec Spec, diff, budget bool) CellResult {
	cell := CellResult{
		Name: spec.Name(),
		Topo: spec.Topo, Suite: spec.Suite, Seed: spec.Seed, Failures: spec.Failures,
	}
	start := time.Now()
	defer func() { cell.TotalMS = float64(time.Since(start).Microseconds()) / 1000 }()
	fail := func(step string, err error) CellResult {
		cell.Err = fmt.Sprintf("%s: %v", step, err)
		return cell
	}
	pass := func(step string) { cell.Checks = append(cell.Checks, step) }

	sc, err := Generate(spec)
	if err != nil {
		return fail("generate", err)
	}
	cell.Statements = sc.Invariants.Statements
	cell.Guaranteed = sc.Invariants.Guaranteed
	cell.Events = sc.Invariants.Events
	pass("generate")

	pol, err := merlin.ParsePolicy(sc.PolicyText, sc.Topology)
	if err != nil {
		return fail("parse", err)
	}
	pass("parse")

	opts := merlin.Options{NoDefault: true}
	place := merlin.Placement(sc.Placement)
	comp := merlin.NewCompiler(sc.Topology, place, opts)
	compileStart := time.Now()
	if _, err := comp.Compile(pol); err != nil {
		return fail("compile", err)
	}
	cell.CompileMS = float64(time.Since(compileStart).Microseconds()) / 1000
	res := comp.Result()
	if res.IR == nil || len(res.IR.Rules) == 0 || res.Output == nil {
		return fail("codegen", fmt.Errorf("compile emitted no device rules"))
	}
	cell.Rules = len(res.IR.Rules)
	if got := len(res.Policy.Statements); got != sc.Invariants.Statements {
		return fail("statements", fmt.Errorf("compiled %d statements, invariants promise %d", got, sc.Invariants.Statements))
	}
	for _, gr := range sc.Guarantee {
		if gr.RateBps > 0 && len(res.Paths[gr.ID]) < 2 {
			return fail("paths", fmt.Errorf("guarantee %s has no provisioned path", gr.ID))
		}
	}
	pass("compile")

	if sc.Invariants.Confined {
		for _, gr := range sc.Guarantee {
			allowed := map[string]bool{}
			for _, n := range gr.Region {
				allowed[n] = true
			}
			for _, loc := range res.Paths[gr.ID] {
				if !allowed[loc] {
					return fail("confined", fmt.Errorf("guarantee %s leaves its region at %s", gr.ID, loc))
				}
			}
		}
		pass("confined")
	}

	net, err := sc.BuildNetwork(res.Paths)
	if err != nil {
		return fail("sim", err)
	}
	net.Allocate()
	if err := net.CheckCapacities(); err != nil {
		return fail("sim", err)
	}
	for _, f := range net.Flows {
		if f.MinRate > 0 && f.Rate < f.MinRate-1 {
			return fail("sim", fmt.Errorf("flow %s allocated %.0f below its %.0f guarantee", f.ID, f.Rate, f.MinRate))
		}
	}
	pass("sim")

	// Recompile determinism: a pristine regeneration must compile to the
	// same bytes.
	ref, err := recompile(spec, merlin.Options{NoDefault: true})
	if err != nil {
		return fail("determinism", err)
	}
	if !sameOutputs(res, ref) {
		return fail("determinism", fmt.Errorf("recompile of the same spec diverged"))
	}
	pass("determinism")

	if spec.Failures {
		for i, ev := range sc.Schedule {
			if _, err := comp.ApplyTopo(ev.Event); err != nil {
				return fail("replay", fmt.Errorf("event %d (%v %s %s): %w", i, ev.Event.Kind, ev.Event.A, ev.Event.B, err))
			}
		}
		if !sameOutputs(comp.Result(), ref) {
			return fail("replay", fmt.Errorf("balanced schedule did not restore the pre-schedule output"))
		}
		pass("replay")
	}

	if sc.Invariants.Negotiable {
		if err := runNegotiation(sc, comp); err != nil {
			return fail("negotiate", err)
		}
		pass("negotiate")
	}

	if diff {
		mono, err := recompile(spec, merlin.Options{NoDefault: true, NoShard: true})
		if err != nil {
			return fail("diff", err)
		}
		if !sameOutputs(mono, ref) {
			return fail("diff", fmt.Errorf("monolithic solve diverged from sharded outputs"))
		}
		pass("diff")
	}

	if budget {
		if err := runBudgetInjection(spec); err != nil {
			return fail("budget", err)
		}
		pass("budget")
	}
	return cell
}

// recompile regenerates the spec from scratch and compiles it cold —
// pristine topology, fresh caches — returning the result.
func recompile(spec Spec, opts merlin.Options) (*merlin.Result, error) {
	sc, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	pol, err := merlin.ParsePolicy(sc.PolicyText, sc.Topology)
	if err != nil {
		return nil, err
	}
	return merlin.Compile(pol, sc.Topology, merlin.Placement(sc.Placement), opts)
}

// sameOutputs compares the backend-visible outputs of two results.
func sameOutputs(a, b *merlin.Result) bool {
	return reflect.DeepEqual(a.Output, b.Output) &&
		reflect.DeepEqual(a.Programs, b.Programs) &&
		len(a.IR.Rules) == len(b.IR.Rules)
}

// runNegotiation replays negotiation ticks for a delegation cell: every
// tenant becomes a hub session over its statements, shard pools are sized
// to congest mid-sweep, and three demand windows tick through the hub —
// with the warm compiler bound, so every committed tick pays its
// recompile. Allocations must never exceed a tenant's delegated cap.
func runNegotiation(sc *Scenario, comp *merlin.Compiler) error {
	pol, err := merlin.ParsePolicy(sc.PolicyText, sc.Topology)
	if err != nil {
		return err
	}
	hub, err := merlin.NewHub(pol, merlin.HubOptions{})
	if err != nil {
		return err
	}
	comp.WatchHub(hub, nil)
	defer comp.UnwatchHub()
	capOf := map[string]float64{}
	var sessions []*merlin.Session
	for i, tn := range sc.Tenants {
		pool := fmt.Sprintf("pool%d", i)
		if err := hub.AddShard(pool, float64(len(tn.StmtIDs))*tn.CapBps/2); err != nil {
			return err
		}
		s, err := hub.Register(tn.Name, pool, tn.StmtIDs,
			merlin.AIMDState{Alloc: topo.Mbps, Increase: topo.Mbps, Decrease: 0.5})
		if err != nil {
			return err
		}
		sessions = append(sessions, s)
		for _, id := range tn.StmtIDs {
			capOf[id] = tn.CapBps
		}
	}
	for round := 0; round < 3; round++ {
		for i, s := range sessions {
			s.OfferDemand(float64(1+(i*13+round*7)%8) * topo.Mbps)
		}
		if _, err := hub.Tick(); err != nil {
			return err
		}
	}
	if st := hub.Stats(); st.TenantsActive != len(sc.Tenants) || st.TicksBatched == 0 {
		return fmt.Errorf("hub counters degenerate: %+v", st)
	}
	for id, a := range hub.Allocations() {
		if cap, ok := capOf[id]; ok && a.Max > cap+1e-6 {
			return fmt.Errorf("statement %s negotiated past its %.0f cap: %.0f", id, cap, a.Max)
		}
	}
	return nil
}

// runBudgetInjection compiles the cell with a zero ternary budget on the
// first statement flow's ingress edge switch — a device its traffic
// cannot avoid — and requires the compiler's typed overflow rejection.
func runBudgetInjection(spec Spec) error {
	sc, err := Generate(spec)
	if err != nil {
		return err
	}
	t := sc.Topology
	var device string
	for _, f := range sc.Traffic {
		if f.Stmt == "" {
			continue
		}
		src, ok := t.Lookup(f.Src)
		if !ok {
			continue
		}
		if att, ok := t.Attachment(src); ok {
			device = t.Node(att).Name
			break
		}
	}
	if device == "" {
		return fmt.Errorf("no ingress edge switch to budget")
	}
	pol, err := merlin.ParsePolicy(sc.PolicyText, t)
	if err != nil {
		return err
	}
	_, err = merlin.Compile(pol, t, merlin.Placement(sc.Placement),
		merlin.Options{NoDefault: true, TableBudgets: map[string]int{device: 0}})
	var overflow *codegen.TableOverflowError
	if !errors.As(err, &overflow) {
		return fmt.Errorf("zero budget on %s: want *codegen.TableOverflowError, got %v", device, err)
	}
	for _, o := range overflow.Overflows {
		if o.Name == device {
			return nil
		}
	}
	return fmt.Errorf("overflow error does not name budgeted device %s: %v", device, overflow)
}

// SummaryCSV renders the deterministic per-cell summary: shape counters
// and check outcomes, no wall-clock columns — same grid, same seeds,
// same bytes.
func (s *SweepResult) SummaryCSV() []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, "index,name,topo,suite,seed,failures,statements,guaranteed,events,rules,checks,status")
	for _, c := range s.Cells {
		status := "ok"
		if !c.OK() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%d,%s,%s,%s,%d,%t,%d,%d,%d,%d,%s,%s\n",
			c.Index, c.Name, c.Topo, c.Suite, c.Seed, c.Failures,
			c.Statements, c.Guaranteed, c.Events, c.Rules,
			strings.Join(c.Checks, "+"), status)
	}
	return b.Bytes()
}

// CellsCSV renders the per-cell measurement CSV, wall-clock included —
// the analysis artifact, not covered by the byte-identical promise.
func (s *SweepResult) CellsCSV() []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, "index,name,compile_ms,total_ms,statements,rules,events,status,err")
	for _, c := range s.Cells {
		status := "ok"
		if !c.OK() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%d,%s,%.2f,%.2f,%d,%d,%d,%s,%q\n",
			c.Index, c.Name, c.CompileMS, c.TotalMS, c.Statements, c.Rules, c.Events, status, c.Err)
	}
	return b.Bytes()
}

// GroupRows aggregates cells into one row per topology × suite — the
// grouped summary the BENCH machinery consumes. Rows are emitted in cell
// order; counters sum over seeds and failure settings.
func (s *SweepResult) GroupRows() []GroupRow {
	var rows []GroupRow
	index := map[string]int{}
	for _, c := range s.Cells {
		key := c.Topo + "/" + c.Suite
		i, ok := index[key]
		if !ok {
			i = len(rows)
			index[key] = i
			rows = append(rows, GroupRow{Label: key, Topo: c.Topo, Suite: c.Suite})
		}
		rows[i].Cells++
		if c.OK() {
			rows[i].Pass++
		}
		rows[i].Statements += c.Statements
		rows[i].Rules += c.Rules
		rows[i].Events += c.Events
		rows[i].Checks += len(c.Checks)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Label < rows[j].Label })
	return rows
}

// GroupRow is one topology × suite aggregate.
type GroupRow struct {
	Label string
	Topo  string
	Suite string
	Cells int
	Pass  int
	// Statements, Rules, Events, and Checks sum over the group's cells.
	Statements int
	Rules      int
	Events     int
	Checks     int
}
