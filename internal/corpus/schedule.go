package corpus

import (
	"fmt"
	"math/rand"
	"sort"

	"merlin/internal/topo"

	merlin "merlin"
)

// genSchedule attaches a balanced failure/recovery timeline to the
// scenario: a sequence of non-overlapping episodes — link flaps, capacity
// wobbles, and switch storms — each fully restored before the next
// begins, so a full replay returns the topology to its pristine state and
// an incremental compiler's output to its pre-schedule bytes. Every
// outage is feasibility-checked first: the surviving graph must keep all
// hosts and middleboxes connected and every region-confined guarantee
// routable inside its region, so the policy stays compilable at every
// step of the replay.
func genSchedule(sc *Scenario, rng *rand.Rand) error {
	t := sc.Topology
	type cable struct {
		id   topo.LinkID
		a, b string
	}
	// Candidate cables: switch-to-switch, in deterministic name order.
	var cables []cable
	seen := map[topo.LinkID]bool{}
	for _, l := range t.Links() {
		c := t.Cable(l.ID)
		if seen[c] {
			continue
		}
		seen[c] = true
		cl := t.Link(c)
		sn, dn := t.Node(cl.Src), t.Node(cl.Dst)
		if sn.Kind != topo.Switch || dn.Kind != topo.Switch {
			continue
		}
		a, b := sn.Name, dn.Name
		if a > b {
			a, b = b, a
		}
		cables = append(cables, cable{id: c, a: a, b: b})
	}
	sort.Slice(cables, func(i, j int) bool {
		if cables[i].a != cables[j].a {
			return cables[i].a < cables[j].a
		}
		return cables[i].b < cables[j].b
	})
	var flaps []cable
	for _, c := range cables {
		if scheduleSafe(sc, map[topo.LinkID]bool{c.id: true}, -1) {
			flaps = append(flaps, c)
		}
	}
	// Storm candidates: switches with no attached hosts whose loss —
	// all incident cables at once — is survivable.
	var storms []topo.NodeID
	for _, s := range t.Switches() {
		hasHost := false
		skip := map[topo.LinkID]bool{}
		for _, l := range t.Out(s) {
			skip[t.Cable(l)] = true
			if t.Node(t.Link(l).Dst).Kind == topo.Host {
				hasHost = true
			}
		}
		if hasHost {
			continue
		}
		if scheduleSafe(sc, skip, s) {
			storms = append(storms, s)
		}
	}

	step := 0
	emit := func(down, up merlin.TopoEvent) {
		sc.Schedule = append(sc.Schedule,
			ScheduledEvent{Step: step, Event: down},
			ScheduledEvent{Step: step + 1, Event: up})
		step += 2
	}
	episodes := sc.Spec.episodes()
	for i := 0; i < episodes; i++ {
		// Rotate episode kinds, degrading to a capacity wobble — always
		// safe, it never breaks connectivity — when the preferred kind has
		// no safe candidate left.
		kind := i % 3
		if kind == 0 && len(flaps) == 0 {
			kind = 2
		}
		if kind == 1 && len(storms) == 0 {
			kind = 2
		}
		if kind == 2 && len(cables) == 0 {
			if len(flaps) > 0 {
				kind = 0
			} else {
				break
			}
		}
		switch kind {
		case 0:
			j := rng.Intn(len(flaps))
			c := flaps[j]
			flaps = append(flaps[:j], flaps[j+1:]...)
			emit(merlin.LinkFailure(c.a, c.b), merlin.LinkRecovery(c.a, c.b))
		case 1:
			j := rng.Intn(len(storms))
			s := storms[j]
			storms = append(storms[:j], storms[j+1:]...)
			name := t.Node(s).Name
			emit(merlin.SwitchFailure(name), merlin.SwitchRecovery(name))
		case 2:
			j := rng.Intn(len(cables))
			c := cables[j]
			cables = append(cables[:j], cables[j+1:]...)
			orig := t.Link(c.id).Capacity
			emit(merlin.CapacityChange(c.a, c.b, orig/2), merlin.CapacityChange(c.a, c.b, orig))
		}
	}
	if len(sc.Schedule) == 0 {
		return fmt.Errorf("corpus: no feasible failure episode on %s", sc.Spec.Topo)
	}
	sc.Invariants.Balanced = true
	return nil
}

// scheduleSafe reports whether the policy survives an outage: with the
// given cables down (and optionally a switch, pass -1 for none), all
// hosts and middleboxes must stay mutually connected (best-effort and
// chain statements stay routable) and every region-confined guarantee
// must stay routable inside its region.
func scheduleSafe(sc *Scenario, skip map[topo.LinkID]bool, down topo.NodeID) bool {
	t := sc.Topology
	hosts := t.Hosts()
	root := hosts[0]
	for _, h := range hosts[1:] {
		if !reachable(t, root, h, skip, down, nil) {
			return false
		}
	}
	for _, m := range t.Middleboxes() {
		if !reachable(t, root, m, skip, down, nil) {
			return false
		}
	}
	for _, g := range sc.Guarantee {
		if len(g.Region) == 0 {
			continue
		}
		allowed := map[topo.NodeID]bool{}
		for _, name := range g.Region {
			if id, ok := t.Lookup(name); ok {
				allowed[id] = true
			}
		}
		src, okS := t.Lookup(g.Src)
		dst, okD := t.Lookup(g.Dst)
		if !okS || !okD || !reachable(t, src, dst, skip, down, allowed) {
			return false
		}
	}
	return true
}
