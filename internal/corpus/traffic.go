package corpus

import (
	"fmt"
	"math/rand"

	"merlin/internal/sim"
	"merlin/internal/topo"
)

// genTraffic appends the background flows to the suite's statement-backed
// ones: sampled host pairs offering best-effort load, so simulated links
// carry contention beyond the policy's own traffic.
func genTraffic(sc *Scenario, rng *rand.Rand) {
	hosts := hostNames(sc.Topology)
	n := len(hosts) / 2
	if n < 4 {
		n = 4
	}
	if n > 20 {
		n = 20
	}
	for i := 0; i < n; i++ {
		src, dst := pickPair(rng, hosts)
		sc.Traffic = append(sc.Traffic, FlowSpec{
			ID: fmt.Sprintf("bg%d", i), Src: src, Dst: dst,
			DemandBps: float64(10+10*rng.Intn(10)) * topo.Mbps,
		})
	}
}

// BuildNetwork loads the scenario's traffic matrix into a fresh
// simulation over the scenario's topology. paths — typically a compile
// Result's Paths, keyed by statement ID — pins statement-backed flows to
// their provisioned paths; flows without one take shortest paths.
func (sc *Scenario) BuildNetwork(paths map[string][]string) (*sim.Network, error) {
	t := sc.Topology
	n := sim.New(t)
	for _, f := range sc.Traffic {
		src, okS := t.Lookup(f.Src)
		dst, okD := t.Lookup(f.Dst)
		if !okS || !okD {
			return nil, fmt.Errorf("corpus: flow %s endpoints %s-%s not in topology", f.ID, f.Src, f.Dst)
		}
		if f.Stmt != "" {
			if p := paths[f.Stmt]; len(p) >= 2 {
				ids := make([]topo.NodeID, 0, len(p))
				ok := true
				for _, name := range p {
					id, found := t.Lookup(name)
					if !found {
						ok = false
						break
					}
					ids = append(ids, id)
				}
				if ok {
					if _, err := n.AddFlowOnPath(f.ID, ids, f.DemandBps, f.MinBps, f.MaxBps); err != nil {
						return nil, fmt.Errorf("corpus: flow %s on provisioned path: %w", f.ID, err)
					}
					continue
				}
			}
		}
		if _, err := n.AddFlow(f.ID, src, dst, f.DemandBps, f.MinBps, f.MaxBps); err != nil {
			return nil, fmt.Errorf("corpus: flow %s: %w", f.ID, err)
		}
	}
	return n, nil
}
