// Topology dynamics: link and switch failure, recovery, and capacity
// changes (§6's dynamic-adaptation story). Node and link identifiers are
// stable across events — a failed element keeps its ID and is merely
// filtered out of the adjacency structure — so artifacts built against
// the topology (product graphs, provisioning solutions, generated
// configuration) remain addressable while the incremental compiler
// decides which of them the event actually invalidated.
//
// Every mutator returns an Impact describing the affected elements:
// the physical cables whose state or capacity changed, hosts that lost
// their last live attachment, and the (now stale) identities those hosts
// were reachable by. Consumers — the incremental compiler's cache
// invalidation, a controller's alarm stream — key off the Impact rather
// than re-deriving it.
package topo

import "fmt"

// Impact reports what a topology mutation affected.
type Impact struct {
	// Cables lists the canonical cable IDs (lower directed link ID of each
	// pair) whose state or capacity the mutation changed.
	Cables []LinkID
	// Links lists every directed link ID affected (both directions of each
	// cable in Cables).
	Links []LinkID
	// ConnectivityChanged reports that links were taken down or restored —
	// paths may have appeared or vanished. Capacity-only changes leave it
	// false: the graph structure is intact and only provisioning headroom
	// moved.
	ConnectivityChanged bool
	// DetachedHosts lists hosts that lost their last live link through this
	// mutation; ReattachedHosts lists hosts that regained one.
	DetachedHosts   []NodeID
	ReattachedHosts []NodeID
	// StaleIdentities lists the policy-level identities (MAC and IP) of the
	// newly detached hosts — addresses that no longer route anywhere.
	StaleIdentities []string
}

// LinkIsUp reports whether a directed link is live: neither administratively
// down nor incident to a down node.
func (t *Topology) LinkIsUp(id LinkID) bool {
	l := t.links[id]
	return !t.linkState(id) && !t.nodeState(l.Src) && !t.nodeState(l.Dst)
}

// NodeIsUp reports whether a node is live.
func (t *Topology) NodeIsUp(id NodeID) bool { return !t.nodeState(id) }

// LinkFlaggedDown reports whether a link carries the administrative down
// flag, independent of its endpoints' node state (which LinkIsUp folds
// in). SetLinkState records the flag even when an endpoint node is down,
// so snapshot capture needs this raw view to reproduce the state
// machine exactly: a flagged cable stays down when its node recovers.
func (t *Topology) LinkFlaggedDown(id LinkID) bool { return t.linkState(id) }

func (t *Topology) linkState(id LinkID) bool {
	return len(t.linkDown) > int(id) && t.linkDown[id]
}

func (t *Topology) nodeState(id NodeID) bool {
	return len(t.nodeDown) > int(id) && t.nodeDown[id]
}

// Cable canonicalizes a directed link to its cable: the lower of the two
// directed link IDs (both directions share one physical capacity).
func (t *Topology) Cable(l LinkID) LinkID {
	if r := t.links[l].Reverse; r < l {
		return r
	}
	return l
}

// CableBetween locates the cable between two nodes regardless of its
// current state (FindLink only sees live adjacency).
func (t *Topology) CableBetween(a, b NodeID) (LinkID, bool) { return t.findCable(a, b) }

// findCable locates the cable between two nodes, including cables whose
// links are currently down (FindLink only sees live adjacency). It scans
// the full link table: mutations are rare control-plane events, not a
// compile hot path, so the scan is not worth a second (failure-inclusive)
// adjacency structure.
func (t *Topology) findCable(a, b NodeID) (LinkID, bool) {
	for i := range t.links {
		l := &t.links[i]
		if (l.Src == a && l.Dst == b) || (l.Src == b && l.Dst == a) {
			return t.Cable(l.ID), true
		}
	}
	return 0, false
}

// SetLinkState fails (up == false) or restores (up == true) the cable
// between a and b: both directed links change state together, mirroring a
// physical cable cut. Setting the current state again is a no-op that
// reports an empty impact; so is flipping the flag of a cable whose
// liveness cannot change because an endpoint node is down — the flag is
// recorded (the cable stays down when the node recovers) but no
// connectivity changed, so consumers need not invalidate anything.
func (t *Topology) SetLinkState(a, b NodeID, up bool) (Impact, error) {
	c, ok := t.findCable(a, b)
	if !ok {
		return Impact{}, fmt.Errorf("topo: no link between %s and %s", t.nodes[a].Name, t.nodes[b].Name)
	}
	r := t.links[c].Reverse
	if t.linkState(c) == !up {
		return Impact{}, nil
	}
	if t.linkDown == nil {
		t.linkDown = make([]bool, len(t.links))
	}
	before := t.attachedSnapshot()
	t.linkDown[c] = !up
	t.linkDown[r] = !up
	t.rebuildAdjacency()
	var im Impact
	if !t.nodeState(t.links[c].Src) && !t.nodeState(t.links[c].Dst) {
		im = Impact{
			Cables:              []LinkID{c},
			Links:               []LinkID{c, r},
			ConnectivityChanged: true,
		}
	}
	t.attachmentDelta(before, &im)
	return im, nil
}

// SetNodeState fails or restores a node — typically a switch, taking every
// incident link with it. Links that were independently failed via
// SetLinkState stay down when the node comes back. Setting the current
// state again is a no-op.
func (t *Topology) SetNodeState(n NodeID, up bool) (Impact, error) {
	if int(n) >= len(t.nodes) {
		return Impact{}, fmt.Errorf("topo: unknown node %d", n)
	}
	if t.nodeState(n) == !up {
		return Impact{}, nil
	}
	if t.nodeDown == nil {
		t.nodeDown = make([]bool, len(t.nodes))
	}
	before := t.attachedSnapshot()
	// The incident cables whose liveness actually flips with this node:
	// skip those already (or still) dead through their own flag or the
	// far endpoint. If nothing flips (every incident cable was already
	// failed independently), the event changed no connectivity and
	// consumers need not invalidate anything — matching SetLinkState's
	// handling of the mirror case.
	var im Impact
	for i := range t.links {
		l := &t.links[i]
		if l.Src != n {
			continue // visit each incident cable once, from its n-sourced side
		}
		if t.linkState(l.ID) || t.nodeState(l.Dst) {
			continue
		}
		c := t.Cable(l.ID)
		im.Cables = append(im.Cables, c)
		im.Links = append(im.Links, c, t.links[c].Reverse)
	}
	im.ConnectivityChanged = len(im.Cables) > 0
	t.nodeDown[n] = !up
	t.rebuildAdjacency()
	t.attachmentDelta(before, &im)
	return im, nil
}

// SetCableCapacity changes the capacity of the cable between a and b, in
// both directions. The graph structure is untouched — only provisioning
// headroom moves — so Impact.ConnectivityChanged stays false.
func (t *Topology) SetCableCapacity(a, b NodeID, capacity float64) (Impact, error) {
	if capacity <= 0 {
		return Impact{}, fmt.Errorf("topo: capacity must be positive (got %g); use SetLinkState to fail the link", capacity)
	}
	c, ok := t.findCable(a, b)
	if !ok {
		return Impact{}, fmt.Errorf("topo: no link between %s and %s", t.nodes[a].Name, t.nodes[b].Name)
	}
	r := t.links[c].Reverse
	if t.links[c].Capacity == capacity && t.links[r].Capacity == capacity {
		return Impact{}, nil
	}
	t.links[c].Capacity = capacity
	t.links[r].Capacity = capacity
	return Impact{Cables: []LinkID{c}, Links: []LinkID{c, r}}, nil
}

// rebuildAdjacency recomputes the live adjacency lists from the link table
// and the down flags. Links are visited in ID order — the order AddLink
// appended them — so a restored topology reproduces the original adjacency
// byte for byte, and with it every downstream deterministic choice.
func (t *Topology) rebuildAdjacency() {
	// Fresh slices, not truncation: Out/In hand out the underlying slices
	// and earlier callers may still be iterating them.
	for i := range t.out {
		t.out[i] = nil
		t.in[i] = nil
	}
	for i := range t.links {
		l := &t.links[i]
		if !t.LinkIsUp(l.ID) {
			continue
		}
		t.out[l.Src] = append(t.out[l.Src], l.ID)
		t.in[l.Dst] = append(t.in[l.Dst], l.ID)
	}
}

// attachedSnapshot records which hosts currently have at least one live
// link.
func (t *Topology) attachedSnapshot() []bool {
	out := make([]bool, len(t.nodes))
	for i, n := range t.nodes {
		if n.Kind == Host {
			out[i] = len(t.out[i]) > 0 || len(t.in[i]) > 0
		}
	}
	return out
}

// attachmentDelta compares a pre-mutation snapshot against the current
// adjacency and records newly detached and reattached hosts, plus the
// stale identities of the detached ones.
func (t *Topology) attachmentDelta(before []bool, im *Impact) {
	for i, n := range t.nodes {
		if n.Kind != Host {
			continue
		}
		now := len(t.out[i]) > 0 || len(t.in[i]) > 0
		switch {
		case before[i] && !now:
			im.DetachedHosts = append(im.DetachedHosts, n.ID)
			im.StaleIdentities = append(im.StaleIdentities, MACOf(n.ID), IPOf(n.ID))
		case !before[i] && now:
			im.ReattachedHosts = append(im.ReattachedHosts, n.ID)
		}
	}
}
