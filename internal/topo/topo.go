// Package topo models physical network topologies: hosts, switches, and
// middleboxes connected by capacitated links. It also provides the
// generators used throughout the Merlin evaluation (balanced trees, fat
// trees, the Stanford-style campus core, and assorted synthetic shapes).
//
// Node and link identifiers are small dense integers so that downstream
// consumers (the logical-topology product construction and the MIP encoder)
// can use slices instead of maps on hot paths.
package topo

import (
	"fmt"
	"sort"
)

// Kind classifies a topology node.
type Kind uint8

// Node kinds. Middleboxes are nodes that can host packet-processing
// functions; hosts are traffic sources and sinks; switches forward.
const (
	Switch Kind = iota
	Host
	Middlebox
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Switch:
		return "switch"
	case Host:
		return "host"
	case Middlebox:
		return "middlebox"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NodeID identifies a node within a single Topology.
type NodeID int

// LinkID identifies a directed link within a single Topology.
type LinkID int

// Node is a single network element.
type Node struct {
	ID   NodeID
	Name string
	Kind Kind
}

// Link is a directed edge between two nodes with a capacity in bits per
// second. Physical cables are bidirectional; AddLink installs one Link in
// each direction and records them as reverses of each other.
type Link struct {
	ID       LinkID
	Src, Dst NodeID
	// Capacity is the link bandwidth in bits per second.
	Capacity float64
	// Reverse is the link carrying traffic in the opposite direction.
	Reverse LinkID
}

// Topology is a mutable graph of nodes and directed links. The zero value
// is an empty topology ready for use. Structure is append-only (AddNode,
// AddLink), but elements can fail and recover: see dynamics.go's
// SetLinkState, SetNodeState, and SetCableCapacity. Out, In, Neighbors,
// FindLink, and the path helpers see only live links; Links and Link
// still expose failed elements by their stable IDs.
type Topology struct {
	nodes  []Node
	links  []Link
	out    [][]LinkID // live adjacency: outgoing links per node
	in     [][]LinkID // live adjacency: incoming links per node
	byName map[string]NodeID

	// linkDown and nodeDown mark failed elements (dynamics.go); nil until
	// the first failure, so static topologies pay nothing.
	linkDown []bool
	nodeDown []bool
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{byName: make(map[string]NodeID)}
}

// AddNode inserts a node with the given name and kind and returns its ID.
// Names must be unique; AddNode panics on duplicates since topology
// construction is programmatic and a duplicate is a programming error.
func (t *Topology) AddNode(name string, kind Kind) NodeID {
	if t.byName == nil {
		t.byName = make(map[string]NodeID)
	}
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("topo: duplicate node name %q", name))
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{ID: id, Name: name, Kind: kind})
	t.out = append(t.out, nil)
	t.in = append(t.in, nil)
	t.byName[name] = id
	return id
}

// AddSwitch adds a switch node.
func (t *Topology) AddSwitch(name string) NodeID { return t.AddNode(name, Switch) }

// AddHost adds a host node.
func (t *Topology) AddHost(name string) NodeID { return t.AddNode(name, Host) }

// AddMiddlebox adds a middlebox node.
func (t *Topology) AddMiddlebox(name string) NodeID { return t.AddNode(name, Middlebox) }

// AddLink installs a bidirectional link between a and b with the given
// capacity in each direction and returns the two directed link IDs
// (a→b, b→a).
func (t *Topology) AddLink(a, b NodeID, capacity float64) (LinkID, LinkID) {
	if a == b {
		panic("topo: self links are not allowed")
	}
	ab := LinkID(len(t.links))
	ba := ab + 1
	t.links = append(t.links,
		Link{ID: ab, Src: a, Dst: b, Capacity: capacity, Reverse: ba},
		Link{ID: ba, Src: b, Dst: a, Capacity: capacity, Reverse: ab},
	)
	t.out[a] = append(t.out[a], ab)
	t.in[b] = append(t.in[b], ab)
	t.out[b] = append(t.out[b], ba)
	t.in[a] = append(t.in[a], ba)
	return ab, ba
}

// NumNodes reports the number of nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks reports the number of directed links (twice the cable count).
func (t *Topology) NumLinks() int { return len(t.links) }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Link returns the directed link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Lookup finds a node by name.
func (t *Topology) Lookup(name string) (NodeID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// MustLookup finds a node by name and panics if it does not exist.
func (t *Topology) MustLookup(name string) NodeID {
	id, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %q", name))
	}
	return id
}

// Out returns the outgoing link IDs of n. The slice must not be modified.
func (t *Topology) Out(n NodeID) []LinkID { return t.out[n] }

// In returns the incoming link IDs of n. The slice must not be modified.
func (t *Topology) In(n NodeID) []LinkID { return t.in[n] }

// Nodes returns all nodes in ID order. The slice must not be modified.
func (t *Topology) Nodes() []Node { return t.nodes }

// Links returns all directed links in ID order. The slice must not be modified.
func (t *Topology) Links() []Link { return t.links }

// NodesOfKind returns the IDs of all nodes with the given kind, in ID order.
func (t *Topology) NodesOfKind(kind Kind) []NodeID {
	var ids []NodeID
	for _, n := range t.nodes {
		if n.Kind == kind {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Hosts returns the IDs of all host nodes.
func (t *Topology) Hosts() []NodeID { return t.NodesOfKind(Host) }

// Switches returns the IDs of all switch nodes.
func (t *Topology) Switches() []NodeID { return t.NodesOfKind(Switch) }

// Middleboxes returns the IDs of all middlebox nodes.
func (t *Topology) Middleboxes() []NodeID { return t.NodesOfKind(Middlebox) }

// Neighbors returns the IDs of nodes directly connected to n, sorted.
func (t *Topology) Neighbors(n NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(t.out[n]))
	var ids []NodeID
	for _, l := range t.out[n] {
		d := t.links[l].Dst
		if !seen[d] {
			seen[d] = true
			ids = append(ids, d)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FindLink returns the directed link from a to b, if one exists.
func (t *Topology) FindLink(a, b NodeID) (Link, bool) {
	for _, l := range t.out[a] {
		if t.links[l].Dst == b {
			return t.links[l], true
		}
	}
	return Link{}, false
}

// Attachment returns the switch a host or middlebox is attached to. If the
// node has several switch neighbors the lowest-ID one is returned. The
// second result is false for isolated nodes.
func (t *Topology) Attachment(n NodeID) (NodeID, bool) {
	for _, nb := range t.Neighbors(n) {
		if t.nodes[nb].Kind == Switch {
			return nb, true
		}
	}
	return 0, false
}

// BFS computes hop distances and BFS parents from src over all nodes.
// parent[src] == -1, and parent[v] == -1 for unreachable v (dist[v] < 0).
func (t *Topology) BFS(src NodeID) (dist []int, parent []NodeID) {
	dist = make([]int, len(t.nodes))
	parent = make([]NodeID, len(t.nodes))
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, l := range t.out[u] {
			v := t.links[l].Dst
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// ShortestPath returns a minimum-hop path from src to dst, inclusive of both
// endpoints, or nil if dst is unreachable.
func (t *Topology) ShortestPath(src, dst NodeID) []NodeID {
	dist, parent := t.BFS(src)
	if dist[dst] < 0 {
		return nil
	}
	var rev []NodeID
	for v := dst; v != -1; v = parent[v] {
		rev = append(rev, v)
	}
	path := make([]NodeID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// Connected reports whether every node is reachable from node 0.
func (t *Topology) Connected() bool {
	if len(t.nodes) == 0 {
		return true
	}
	dist, _ := t.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the longest shortest-path hop count between any pair of
// nodes, or 0 for empty/disconnected graphs (disconnected pairs ignored).
func (t *Topology) Diameter() int {
	max := 0
	for id := range t.nodes {
		dist, _ := t.BFS(NodeID(id))
		for _, d := range dist {
			if d > max {
				max = d
			}
		}
	}
	return max
}
