package topo

import (
	"fmt"
	"strings"
)

// Identity carries the addresses by which policies refer to a host: Merlin
// predicates classify packets by MAC or IP (§2.1), so every host gets a
// deterministic synthetic MAC and IPv4 address derived from its node ID.
type Identity struct {
	Node NodeID
	Name string
	MAC  string
	IP   string
}

// IdentityTable resolves policy-level host identities (names, MACs, IPs)
// to topology nodes.
type IdentityTable struct {
	byKey map[string]NodeID
	byID  map[NodeID]Identity
}

// MACOf returns the deterministic MAC assigned to node id:
// 00:00:<i3>:<i2>:<i1>:<i0> over the node index + 1.
func MACOf(id NodeID) string {
	v := uint32(id) + 1
	return fmt.Sprintf("00:00:%02x:%02x:%02x:%02x",
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// IPOf returns the deterministic IPv4 address assigned to node id:
// 10.<i2>.<i1>.<i0> over the node index + 1.
func IPOf(id NodeID) string {
	v := uint32(id) + 1
	return fmt.Sprintf("10.%d.%d.%d", byte(v>>16), byte(v>>8), byte(v))
}

// Identities builds the identity table for every host in the topology.
func (t *Topology) Identities() *IdentityTable {
	tab := &IdentityTable{
		byKey: make(map[string]NodeID),
		byID:  make(map[NodeID]Identity),
	}
	for _, h := range t.Hosts() {
		node := t.Node(h)
		ident := Identity{Node: h, Name: node.Name, MAC: MACOf(h), IP: IPOf(h)}
		tab.byID[h] = ident
		tab.byKey[strings.ToLower(node.Name)] = h
		tab.byKey[ident.MAC] = h
		tab.byKey[ident.IP] = h
	}
	return tab
}

// Resolve maps a policy-level identity value (host name, MAC, or IP) to a
// host node.
func (tab *IdentityTable) Resolve(value string) (NodeID, bool) {
	id, ok := tab.byKey[strings.ToLower(value)]
	return id, ok
}

// Of returns the identity record for a host node.
func (tab *IdentityTable) Of(n NodeID) (Identity, bool) {
	ident, ok := tab.byID[n]
	return ident, ok
}

// Hosts returns all host identities, in node-ID order.
func (tab *IdentityTable) Hosts() []Identity {
	var out []Identity
	for _, ident := range tab.byID {
		out = append(out, ident)
	}
	// insertion order from map is random; sort by node id
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Node < out[j-1].Node; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// MACs returns every host MAC in node-ID order, the natural set for the
// foreach/cross sugar ("hosts").
func (tab *IdentityTable) MACs() []string {
	hosts := tab.Hosts()
	out := make([]string, len(hosts))
	for i, h := range hosts {
		out[i] = h.MAC
	}
	return out
}
