package topo

import (
	"fmt"
	"math"
	"math/rand"
)

// Gbps is a convenience capacity constant: one gigabit per second.
const Gbps = 1e9

// Mbps is one megabit per second.
const Mbps = 1e6

// MBps is one megabyte per second, the unit Merlin policies use for rates.
const MBps = 8e6

// BalancedTree builds a complete tree of switches with the given fanout and
// depth, and hostsPerLeaf hosts attached to each leaf switch. All links have
// the given capacity. Depth 0 yields a single switch.
func BalancedTree(fanout, depth, hostsPerLeaf int, capacity float64) *Topology {
	if fanout < 1 || depth < 0 || hostsPerLeaf < 0 {
		panic("topo: invalid balanced tree parameters")
	}
	t := New()
	var build func(level int, label string) NodeID
	build = func(level int, label string) NodeID {
		sw := t.AddSwitch("s" + label)
		if level == depth {
			for h := 0; h < hostsPerLeaf; h++ {
				host := t.AddHost(fmt.Sprintf("h%s_%d", label, h))
				t.AddLink(sw, host, capacity)
			}
			return sw
		}
		for c := 0; c < fanout; c++ {
			child := build(level+1, fmt.Sprintf("%s_%d", label, c))
			t.AddLink(sw, child, capacity)
		}
		return sw
	}
	build(0, "0")
	return t
}

// FatTree builds a standard k-ary fat tree: (k/2)^2 core switches, k pods of
// k/2 aggregation and k/2 edge switches each, and k/2 hosts per edge switch,
// for a total of k^3/4 hosts. k must be even and at least 2. All links have
// the given capacity.
func FatTree(k int, capacity float64) *Topology {
	if k < 2 || k%2 != 0 {
		panic("topo: fat tree arity must be even and >= 2")
	}
	t := New()
	half := k / 2
	core := make([]NodeID, half*half)
	for i := range core {
		core[i] = t.AddSwitch(fmt.Sprintf("core%d", i))
	}
	for p := 0; p < k; p++ {
		aggs := make([]NodeID, half)
		edges := make([]NodeID, half)
		for a := 0; a < half; a++ {
			aggs[a] = t.AddSwitch(fmt.Sprintf("agg%d_%d", p, a))
		}
		for e := 0; e < half; e++ {
			edges[e] = t.AddSwitch(fmt.Sprintf("edge%d_%d", p, e))
		}
		for a := 0; a < half; a++ {
			for e := 0; e < half; e++ {
				t.AddLink(aggs[a], edges[e], capacity)
			}
			// Aggregation switch a in each pod connects to core switches
			// a*half .. a*half+half-1.
			for c := 0; c < half; c++ {
				t.AddLink(core[a*half+c], aggs[a], capacity)
			}
		}
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				host := t.AddHost(fmt.Sprintf("h%d_%d_%d", p, e, h))
				t.AddLink(edges[e], host, capacity)
			}
		}
	}
	return t
}

// Linear builds a chain of n switches with one host on each end switch.
func Linear(n int, capacity float64) *Topology {
	if n < 1 {
		panic("topo: linear topology needs at least one switch")
	}
	t := New()
	prev := t.AddSwitch("s0")
	first := prev
	for i := 1; i < n; i++ {
		sw := t.AddSwitch(fmt.Sprintf("s%d", i))
		t.AddLink(prev, sw, capacity)
		prev = sw
	}
	h1 := t.AddHost("h1")
	h2 := t.AddHost("h2")
	t.AddLink(first, h1, capacity)
	t.AddLink(prev, h2, capacity)
	return t
}

// Ring builds a cycle of n switches, each with hostsPerSwitch hosts.
func Ring(n, hostsPerSwitch int, capacity float64) *Topology {
	if n < 3 {
		panic("topo: ring needs at least three switches")
	}
	t := New()
	sws := make([]NodeID, n)
	for i := range sws {
		sws[i] = t.AddSwitch(fmt.Sprintf("s%d", i))
		for h := 0; h < hostsPerSwitch; h++ {
			host := t.AddHost(fmt.Sprintf("h%d_%d", i, h))
			t.AddLink(sws[i], host, capacity)
		}
	}
	for i := range sws {
		t.AddLink(sws[i], sws[(i+1)%n], capacity)
	}
	return t
}

// Star builds a hub switch with n spoke switches, each carrying
// hostsPerSwitch hosts.
func Star(n, hostsPerSwitch int, capacity float64) *Topology {
	if n < 1 {
		panic("topo: star needs at least one spoke")
	}
	t := New()
	hub := t.AddSwitch("hub")
	for i := 0; i < n; i++ {
		sw := t.AddSwitch(fmt.Sprintf("s%d", i))
		t.AddLink(hub, sw, capacity)
		for h := 0; h < hostsPerSwitch; h++ {
			host := t.AddHost(fmt.Sprintf("h%d_%d", i, h))
			t.AddLink(sw, host, capacity)
		}
	}
	return t
}

// Waxman builds a connected random topology of n switches using a
// Waxman-style model: nodes are placed uniformly in the unit square and
// each pair is linked with probability alpha*exp(-d/(beta*L)). A spanning
// chain guarantees connectivity. The construction is deterministic for a
// given seed.
func Waxman(n int, alpha, beta float64, seed int64, capacity float64) *Topology {
	if n < 1 {
		panic("topo: waxman needs at least one switch")
	}
	rng := rand.New(rand.NewSource(seed))
	t := New()
	xs := make([]float64, n)
	ys := make([]float64, n)
	sws := make([]NodeID, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
		sws[i] = t.AddSwitch(fmt.Sprintf("s%d", i))
	}
	const maxDist = math.Sqrt2
	linked := make(map[[2]int]bool)
	link := func(i, j int) {
		if i > j {
			i, j = j, i
		}
		if i == j || linked[[2]int{i, j}] {
			return
		}
		linked[[2]int{i, j}] = true
		t.AddLink(sws[i], sws[j], capacity)
	}
	for i := 1; i < n; i++ {
		link(rng.Intn(i), i) // spanning chain for connectivity
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
			if rng.Float64() < alpha*math.Exp(-d/(beta*maxDist)) {
				link(i, j)
			}
		}
	}
	return t
}

// TwoPath builds the Figure 3 topology: hosts h1 and h2 joined by two
// disjoint switch paths — a three-link path of capacity wideCap per link on
// the left, and a two-link path of capacity narrowCap per link on the right.
// In the paper wideCap is 400 MB/s and narrowCap 100 MB/s.
func TwoPath(wideCap, narrowCap float64) *Topology {
	t := New()
	h1 := t.AddHost("h1")
	h2 := t.AddHost("h2")
	// Left (wide) path: h1 - l1 - l2 - h2 (3 links).
	l1 := t.AddSwitch("l1")
	l2 := t.AddSwitch("l2")
	t.AddLink(h1, l1, wideCap)
	t.AddLink(l1, l2, wideCap)
	t.AddLink(l2, h2, wideCap)
	// Right (narrow) path: h1 - r1 - h2 (2 links).
	r1 := t.AddSwitch("r1")
	t.AddLink(h1, r1, narrowCap)
	t.AddLink(r1, h2, narrowCap)
	return t
}

// Example builds the Figure 2 topology: h1 - s1 - s2 - h2 with middlebox m1
// attached to s1.
func Example(capacity float64) *Topology {
	t := New()
	h1 := t.AddHost("h1")
	h2 := t.AddHost("h2")
	s1 := t.AddSwitch("s1")
	s2 := t.AddSwitch("s2")
	m1 := t.AddMiddlebox("m1")
	t.AddLink(h1, s1, capacity)
	t.AddLink(s1, s2, capacity)
	t.AddLink(s2, h2, capacity)
	t.AddLink(s1, m1, capacity)
	return t
}

// Stanford builds a synthetic stand-in for the 16-switch Stanford campus
// core used in the Fig. 4 expressiveness experiment: 2 backbone switches,
// 14 zone switches each dual-homed to the backbones, and the requested
// number of subnets spread round-robin across the zones with hostsPerSubnet
// hosts each. Two middleboxes (mb0, mb1) hang off the backbone switches.
func Stanford(subnets, hostsPerSubnet int, capacity float64) *Topology {
	if subnets < 1 || hostsPerSubnet < 1 {
		panic("topo: stanford needs at least one subnet and one host")
	}
	t := New()
	bb := []NodeID{t.AddSwitch("bbra"), t.AddSwitch("bbrb")}
	t.AddLink(bb[0], bb[1], capacity)
	zones := make([]NodeID, 14)
	for i := range zones {
		zones[i] = t.AddSwitch(fmt.Sprintf("zone%d", i))
		t.AddLink(zones[i], bb[0], capacity)
		t.AddLink(zones[i], bb[1], capacity)
	}
	for s := 0; s < subnets; s++ {
		zone := zones[s%len(zones)]
		for h := 0; h < hostsPerSubnet; h++ {
			host := t.AddHost(fmt.Sprintf("h%d_%d", s, h))
			t.AddLink(zone, host, capacity)
		}
	}
	m0 := t.AddMiddlebox("mb0")
	m1 := t.AddMiddlebox("mb1")
	t.AddLink(m0, bb[0], capacity)
	t.AddLink(m1, bb[1], capacity)
	return t
}
