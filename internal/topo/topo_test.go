package topo

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestAddNodeAndLookup(t *testing.T) {
	tp := New()
	a := tp.AddSwitch("s1")
	b := tp.AddHost("h1")
	c := tp.AddMiddlebox("m1")
	if tp.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", tp.NumNodes())
	}
	if got := tp.Node(a).Kind; got != Switch {
		t.Errorf("node a kind = %v, want switch", got)
	}
	if got := tp.Node(b).Kind; got != Host {
		t.Errorf("node b kind = %v, want host", got)
	}
	if got := tp.Node(c).Kind; got != Middlebox {
		t.Errorf("node c kind = %v, want middlebox", got)
	}
	id, ok := tp.Lookup("h1")
	if !ok || id != b {
		t.Errorf("Lookup(h1) = %v,%v, want %v,true", id, ok, b)
	}
	if _, ok := tp.Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded, want failure")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	tp := New()
	tp.AddSwitch("s1")
	tp.AddSwitch("s1")
}

func TestSelfLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self link did not panic")
		}
	}()
	tp := New()
	a := tp.AddSwitch("s1")
	tp.AddLink(a, a, Gbps)
}

func TestLinksAreBidirectionalReverses(t *testing.T) {
	tp := New()
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	ab, ba := tp.AddLink(a, b, 5)
	la, lb := tp.Link(ab), tp.Link(ba)
	if la.Src != a || la.Dst != b || lb.Src != b || lb.Dst != a {
		t.Fatalf("link endpoints wrong: %+v %+v", la, lb)
	}
	if la.Reverse != ba || lb.Reverse != ab {
		t.Fatalf("reverse pointers wrong: %+v %+v", la, lb)
	}
	if la.Capacity != 5 || lb.Capacity != 5 {
		t.Fatalf("capacities wrong: %v %v", la.Capacity, lb.Capacity)
	}
}

func TestFindLinkAndNeighbors(t *testing.T) {
	tp := New()
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	c := tp.AddSwitch("c")
	tp.AddLink(a, b, 1)
	tp.AddLink(a, c, 1)
	if _, ok := tp.FindLink(a, b); !ok {
		t.Error("FindLink(a,b) failed")
	}
	if _, ok := tp.FindLink(b, c); ok {
		t.Error("FindLink(b,c) should fail")
	}
	nb := tp.Neighbors(a)
	if len(nb) != 2 || nb[0] != b || nb[1] != c {
		t.Errorf("Neighbors(a) = %v, want [b c]", nb)
	}
}

func TestBFSAndShortestPath(t *testing.T) {
	tp := Linear(4, Gbps) // s0-s1-s2-s3, h1@s0, h2@s3
	h1 := tp.MustLookup("h1")
	h2 := tp.MustLookup("h2")
	path := tp.ShortestPath(h1, h2)
	if len(path) != 6 {
		t.Fatalf("path length = %d (%v), want 6 nodes", len(path), path)
	}
	if path[0] != h1 || path[len(path)-1] != h2 {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	dist, _ := tp.BFS(h1)
	if dist[h2] != 5 {
		t.Fatalf("dist h1->h2 = %d, want 5", dist[h2])
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	tp := New()
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	if p := tp.ShortestPath(a, b); p != nil {
		t.Fatalf("expected nil path, got %v", p)
	}
}

func TestBalancedTreeShape(t *testing.T) {
	for _, tc := range []struct {
		fanout, depth, hosts    int
		wantSwitches, wantHosts int
	}{
		{2, 0, 3, 1, 3},
		{2, 2, 2, 7, 8},
		{3, 2, 1, 13, 9},
		{4, 3, 4, 85, 256},
	} {
		tp := BalancedTree(tc.fanout, tc.depth, tc.hosts, Gbps)
		if got := len(tp.Switches()); got != tc.wantSwitches {
			t.Errorf("BalancedTree(%d,%d): switches = %d, want %d", tc.fanout, tc.depth, got, tc.wantSwitches)
		}
		if got := len(tp.Hosts()); got != tc.wantHosts {
			t.Errorf("BalancedTree(%d,%d): hosts = %d, want %d", tc.fanout, tc.depth, got, tc.wantHosts)
		}
		if !tp.Connected() {
			t.Errorf("BalancedTree(%d,%d) disconnected", tc.fanout, tc.depth)
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		tp := FatTree(k, Gbps)
		wantSw := (k/2)*(k/2) + k*k // core + pods
		wantHosts := k * k * k / 4
		if got := len(tp.Switches()); got != wantSw {
			t.Errorf("FatTree(%d): switches = %d, want %d", k, got, wantSw)
		}
		if got := len(tp.Hosts()); got != wantHosts {
			t.Errorf("FatTree(%d): hosts = %d, want %d", k, got, wantHosts)
		}
		if !tp.Connected() {
			t.Errorf("FatTree(%d) disconnected", k)
		}
	}
}

func TestFatTreeOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FatTree(3) did not panic")
		}
	}()
	FatTree(3, Gbps)
}

func TestFatTreePathDiversity(t *testing.T) {
	// In a k=4 fat tree, inter-pod host pairs must be 6 hops apart.
	tp := FatTree(4, Gbps)
	a := tp.MustLookup("h0_0_0")
	b := tp.MustLookup("h1_0_0")
	if p := tp.ShortestPath(a, b); len(p)-1 != 6 {
		t.Fatalf("inter-pod hops = %d, want 6", len(p)-1)
	}
	c := tp.MustLookup("h0_0_1")
	if p := tp.ShortestPath(a, c); len(p)-1 != 2 {
		t.Fatalf("same-edge hops = %d, want 2", len(p)-1)
	}
}

func TestRingStarShapes(t *testing.T) {
	r := Ring(5, 2, Gbps)
	if len(r.Switches()) != 5 || len(r.Hosts()) != 10 {
		t.Errorf("ring shape wrong: %d switches, %d hosts", len(r.Switches()), len(r.Hosts()))
	}
	if !r.Connected() {
		t.Error("ring disconnected")
	}
	s := Star(6, 1, Gbps)
	if len(s.Switches()) != 7 || len(s.Hosts()) != 6 {
		t.Errorf("star shape wrong: %d switches, %d hosts", len(s.Switches()), len(s.Hosts()))
	}
	if !s.Connected() {
		t.Error("star disconnected")
	}
}

func TestWaxmanConnectedAndDeterministic(t *testing.T) {
	a := Waxman(40, 0.4, 0.2, 7, Gbps)
	b := Waxman(40, 0.4, 0.2, 7, Gbps)
	if !a.Connected() {
		t.Fatal("waxman disconnected")
	}
	if a.NumLinks() != b.NumLinks() {
		t.Fatalf("waxman not deterministic: %d vs %d links", a.NumLinks(), b.NumLinks())
	}
}

func TestTwoPathShape(t *testing.T) {
	tp := TwoPath(400*MBps, 100*MBps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	// Shortest path must take the narrow two-link side.
	if p := tp.ShortestPath(h1, h2); len(p)-1 != 2 {
		t.Fatalf("shortest path hops = %d, want 2", len(p)-1)
	}
	l, ok := tp.FindLink(h1, tp.MustLookup("r1"))
	if !ok || l.Capacity != 100*MBps {
		t.Fatalf("narrow link capacity = %v, want 100 MB/s", l.Capacity)
	}
}

func TestExampleShape(t *testing.T) {
	tp := Example(Gbps)
	if len(tp.Middleboxes()) != 1 {
		t.Fatal("example should have one middlebox")
	}
	m1 := tp.MustLookup("m1")
	att, ok := tp.Attachment(m1)
	if !ok || tp.Node(att).Name != "s1" {
		t.Fatalf("m1 attachment = %v, want s1", att)
	}
}

func TestStanfordShape(t *testing.T) {
	tp := Stanford(24, 2, Gbps)
	if got := len(tp.Switches()); got != 16 {
		t.Fatalf("stanford switches = %d, want 16", got)
	}
	if got := len(tp.Hosts()); got != 48 {
		t.Fatalf("stanford hosts = %d, want 48", got)
	}
	if got := len(tp.Middleboxes()); got != 2 {
		t.Fatalf("stanford middleboxes = %d, want 2", got)
	}
	if !tp.Connected() {
		t.Fatal("stanford disconnected")
	}
	if d := tp.Diameter(); d > 6 {
		t.Fatalf("stanford diameter = %d, want small", d)
	}
}

func TestKindString(t *testing.T) {
	if Switch.String() != "switch" || Host.String() != "host" || Middlebox.String() != "middlebox" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

// Property: in any balanced tree, every out link has a matching in link at
// its destination and reverse pointers are involutive.
func TestLinkInvariants(t *testing.T) {
	check := func(fanout, depth uint8) bool {
		f := int(fanout%3) + 1
		d := int(depth % 4)
		tp := BalancedTree(f, d, 1, Gbps)
		for _, l := range tp.Links() {
			r := tp.Link(l.Reverse)
			if r.Reverse != l.ID || r.Src != l.Dst || r.Dst != l.Src {
				return false
			}
			found := false
			for _, in := range tp.In(l.Dst) {
				if in == l.ID {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distance is symmetric on undirected topologies.
func TestBFSSymmetry(t *testing.T) {
	tp := FatTree(4, Gbps)
	check := func(a, b uint16) bool {
		x := NodeID(int(a) % tp.NumNodes())
		y := NodeID(int(b) % tp.NumNodes())
		dx, _ := tp.BFS(x)
		dy, _ := tp.BFS(y)
		return dx[y] == dy[x]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFatTreeBuild(b *testing.B) {
	for _, k := range []int{4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				FatTree(k, Gbps)
			}
		})
	}
}

func BenchmarkBFSFatTree8(b *testing.B) {
	tp := FatTree(8, Gbps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.BFS(0)
	}
}
