package topo

import (
	"reflect"
	"testing"
)

// square builds a 4-switch ring with one host on s0 and one on s2.
func square() (*Topology, []NodeID) {
	t := New()
	s := []NodeID{t.AddSwitch("s0"), t.AddSwitch("s1"), t.AddSwitch("s2"), t.AddSwitch("s3")}
	t.AddLink(s[0], s[1], Gbps)
	t.AddLink(s[1], s[2], Gbps)
	t.AddLink(s[2], s[3], Gbps)
	t.AddLink(s[3], s[0], Gbps)
	h0 := t.AddHost("h0")
	h2 := t.AddHost("h2")
	t.AddLink(s[0], h0, Gbps)
	t.AddLink(s[2], h2, Gbps)
	return t, append(s, h0, h2)
}

func TestLinkDownReroutesAndRestores(t *testing.T) {
	tp, n := square()
	h0, h2 := n[4], n[5]
	orig := tp.ShortestPath(h0, h2)
	if len(orig) != 5 {
		t.Fatalf("expected 4-hop path, got %v", orig)
	}
	// Snapshot adjacency to verify byte-identical restoration.
	var outBefore [][]LinkID
	for i := range tp.nodes {
		outBefore = append(outBefore, append([]LinkID(nil), tp.Out(NodeID(i))...))
	}

	// Fail the link the shortest path rides (s0-s1 or s0-s3).
	im, err := tp.SetLinkState(orig[1], orig[2], false)
	if err != nil {
		t.Fatal(err)
	}
	if !im.ConnectivityChanged || len(im.Cables) != 1 || len(im.Links) != 2 {
		t.Fatalf("unexpected impact: %+v", im)
	}
	if len(im.DetachedHosts) != 0 {
		t.Fatalf("no host should detach, got %v", im.DetachedHosts)
	}
	for _, l := range im.Links {
		if tp.LinkIsUp(l) {
			t.Fatalf("link %d still up after failure", l)
		}
	}
	rerouted := tp.ShortestPath(h0, h2)
	if len(rerouted) != 5 {
		t.Fatalf("expected rerouted 4-hop path around the ring, got %v", rerouted)
	}
	if reflect.DeepEqual(orig, rerouted) {
		t.Fatalf("path did not change after failing a link on it: %v", rerouted)
	}

	// Restore and verify the adjacency is byte-identical to the original.
	if _, err := tp.SetLinkState(orig[1], orig[2], true); err != nil {
		t.Fatal(err)
	}
	for i := range tp.nodes {
		if !reflect.DeepEqual(outBefore[i], tp.Out(NodeID(i))) {
			t.Fatalf("node %d adjacency not restored: %v != %v", i, tp.Out(NodeID(i)), outBefore[i])
		}
	}
	if !reflect.DeepEqual(orig, tp.ShortestPath(h0, h2)) {
		t.Fatalf("restored path differs from original")
	}
}

func TestLinkDownDetachesHost(t *testing.T) {
	tp, n := square()
	s0, h0 := n[0], n[4]
	im, err := tp.SetLinkState(s0, h0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(im.DetachedHosts, []NodeID{h0}) {
		t.Fatalf("expected h0 detached, got %+v", im)
	}
	if want := []string{MACOf(h0), IPOf(h0)}; !reflect.DeepEqual(im.StaleIdentities, want) {
		t.Fatalf("stale identities = %v, want %v", im.StaleIdentities, want)
	}
	im, err = tp.SetLinkState(s0, h0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(im.ReattachedHosts, []NodeID{h0}) {
		t.Fatalf("expected h0 reattached, got %+v", im)
	}
}

func TestSwitchDownTakesIncidentCables(t *testing.T) {
	tp, n := square()
	s1 := n[1]
	im, err := tp.SetNodeState(s1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Cables) != 2 {
		t.Fatalf("s1 has 2 incident cables, impact reported %v", im.Cables)
	}
	if tp.NodeIsUp(s1) {
		t.Fatal("s1 still up")
	}
	if len(tp.Out(s1)) != 0 || len(tp.In(s1)) != 0 {
		t.Fatal("down switch still has live adjacency")
	}
	// h0 -> h2 must route around the other side of the ring.
	p := tp.ShortestPath(n[4], n[5])
	for _, v := range p {
		if v == s1 {
			t.Fatalf("path %v crosses the down switch", p)
		}
	}
	if len(p) == 0 {
		t.Fatal("no path after single switch failure in a ring")
	}

	// Failing a link whose endpoint switch is already down records the
	// flag but reports no connectivity change — nothing became newly
	// unreachable, so consumers must not invalidate anything.
	im, err = tp.SetLinkState(n[1], n[2], false)
	if err != nil {
		t.Fatal(err)
	}
	if im.ConnectivityChanged || len(im.Cables) != 0 {
		t.Fatalf("failing an already-dead cable reported impact %+v", im)
	}
	im, err = tp.SetNodeState(s1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Cables) != 1 {
		t.Fatalf("only the s0-s1 cable should restore with s1, got %v", im.Cables)
	}
	if l, ok := tp.FindLink(n[1], n[2]); ok {
		t.Fatalf("independently failed link %d resurrected by switch recovery", l.ID)
	}
	if _, ok := tp.FindLink(n[0], n[1]); !ok {
		t.Fatal("s0-s1 should be live again after switch recovery")
	}
}

func TestSetCableCapacity(t *testing.T) {
	tp, n := square()
	im, err := tp.SetCableCapacity(n[0], n[1], 500*Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if im.ConnectivityChanged {
		t.Fatal("capacity change must not report connectivity change")
	}
	if len(im.Cables) != 1 {
		t.Fatalf("impact cables = %v", im.Cables)
	}
	l, ok := tp.FindLink(n[0], n[1])
	if !ok || l.Capacity != 500*Mbps {
		t.Fatalf("forward capacity not applied: %+v", l)
	}
	r, ok := tp.FindLink(n[1], n[0])
	if !ok || r.Capacity != 500*Mbps {
		t.Fatalf("reverse capacity not applied: %+v", r)
	}
	// Same value again: no-op impact.
	im, err = tp.SetCableCapacity(n[0], n[1], 500*Mbps)
	if err != nil || len(im.Cables) != 0 {
		t.Fatalf("expected no-op, got %+v, %v", im, err)
	}
	if _, err := tp.SetCableCapacity(n[0], n[1], 0); err == nil {
		t.Fatal("zero capacity must be rejected")
	}
	if _, err := tp.SetCableCapacity(n[0], n[2], Gbps); err == nil {
		t.Fatal("expected error for nonexistent link")
	}
}

func TestMutatorsAreIdempotent(t *testing.T) {
	tp, n := square()
	if _, err := tp.SetLinkState(n[0], n[1], false); err != nil {
		t.Fatal(err)
	}
	im, err := tp.SetLinkState(n[0], n[1], false)
	if err != nil || im.ConnectivityChanged {
		t.Fatalf("repeated failure should be a no-op, got %+v, %v", im, err)
	}
	im, err = tp.SetNodeState(n[2], true)
	if err != nil || im.ConnectivityChanged {
		t.Fatalf("restoring an up node should be a no-op, got %+v, %v", im, err)
	}
}
