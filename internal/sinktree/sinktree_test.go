package sinktree

import (
	"fmt"
	"testing"

	"merlin/internal/logical"
	"merlin/internal/regex"
	"merlin/internal/topo"
)

func graphFor(t testing.TB, tp *topo.Topology, expr string, placement map[string][]string) *logical.Graph {
	t.Helper()
	e := regex.MustParse(expr)
	if placement != nil {
		e = regex.Substitute(e, placement)
	}
	g, err := logical.BuildMinimized(tp, e, logical.Alphabet(tp))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func names(tp *topo.Topology, steps []logical.Step) []string {
	locs := logical.Locations(steps)
	out := make([]string, len(locs))
	for i, l := range locs {
		out[i] = tp.Node(l).Name
	}
	return out
}

func TestSinkTreeAllPairsLinear(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	g := graphFor(t, tp, ".*", nil)
	h2 := tp.MustLookup("h2")
	tr, err := TreeTo(g, h2)
	if err != nil {
		t.Fatal(err)
	}
	h1 := tp.MustLookup("h1")
	if !tr.Reaches(h1) {
		t.Fatal("h1 cannot reach h2")
	}
	path := names(tp, tr.PathFrom(h1))
	want := []string{"h1", "s0", "s1", "s2", "h2"}
	if fmt.Sprint(path) != fmt.Sprint(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	if tr.Reaches(h2) {
		t.Error("destination should not reach itself")
	}
}

func TestSinkTreeIsShortest(t *testing.T) {
	// On the two-path topology the tree must prefer the 2-hop narrow path.
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	g := graphFor(t, tp, ".*", nil)
	tr, err := TreeTo(g, tp.MustLookup("h2"))
	if err != nil {
		t.Fatal(err)
	}
	path := names(tp, tr.PathFrom(tp.MustLookup("h1")))
	if len(path)-1 != 2 {
		t.Fatalf("path %v, want 2 hops", path)
	}
}

func TestSinkTreeRespectsWaypoint(t *testing.T) {
	// All traffic to h2 must pass the middlebox m1 (Fig. 2 topology).
	tp := topo.Example(topo.Gbps)
	g := graphFor(t, tp, ".* dpi .*", map[string][]string{"dpi": {"m1"}})
	tr, err := TreeTo(g, tp.MustLookup("h2"))
	if err != nil {
		t.Fatal(err)
	}
	path := names(tp, tr.PathFrom(tp.MustLookup("h1")))
	saw := false
	for _, n := range path {
		if n == "m1" {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("path %v does not pass m1", path)
	}
	// Tag recovery: dpi must be placed at m1.
	steps := tr.PathFrom(tp.MustLookup("h1"))
	pls := logical.PlacementsOf(steps)
	if len(pls) != 1 || pls[0].Fn != "dpi" || tp.Node(pls[0].Loc).Name != "m1" {
		t.Fatalf("placements = %v", pls)
	}
}

func TestSinkTreeAvoidance(t *testing.T) {
	// Complement constraint: avoid r1 — the tree must use the wide path.
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	g := graphFor(t, tp, "!(.* r1 .*)", nil)
	tr, err := TreeTo(g, tp.MustLookup("h2"))
	if err != nil {
		t.Fatal(err)
	}
	path := names(tp, tr.PathFrom(tp.MustLookup("h1")))
	for _, n := range path {
		if n == "r1" {
			t.Fatalf("path %v passes r1", path)
		}
	}
	if len(path)-1 != 3 {
		t.Fatalf("path %v, want the 3-hop wide path", path)
	}
}

func TestSinkTreeUnreachableDestination(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	g := graphFor(t, tp, ".* nowhere .*", map[string][]string{"nowhere": {"ghost"}})
	if _, err := TreeTo(g, tp.MustLookup("h2")); err == nil {
		t.Fatal("expected error for unsatisfiable tree")
	}
}

func TestBuildTreesLenient(t *testing.T) {
	tp := topo.Example(topo.Gbps)
	// Paths must end at h2 (regex pins the last location), so a tree
	// toward h1 is unsatisfiable.
	g := graphFor(t, tp, ".* h2", nil)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	trees, failed, err := BuildTrees(g, []topo.NodeID{h1, h2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[h2] == nil {
		t.Fatalf("trees = %v", trees)
	}
	if len(failed) != 1 || failed[0] != h1 {
		t.Fatalf("failed = %v", failed)
	}
	if _, _, err := BuildTrees(g, []topo.NodeID{h1}, false); err == nil {
		t.Fatal("strict mode should error")
	}
}

func TestAllPairsFatTreeTreesCoverAllHosts(t *testing.T) {
	tp := topo.FatTree(4, topo.Gbps)
	g := graphFor(t, tp, ".*", nil)
	hosts := tp.Hosts()
	trees, failed, err := BuildTrees(g, hosts, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed destinations: %v", failed)
	}
	for _, dst := range hosts {
		tr := trees[dst]
		for _, src := range hosts {
			if src == dst {
				continue
			}
			if !tr.Reaches(src) {
				t.Fatalf("%s cannot reach %s", tp.Node(src).Name, tp.Node(dst).Name)
			}
			path := tr.PathFrom(src)
			locs := logical.Locations(path)
			if locs[0] != src || locs[len(locs)-1] != dst {
				t.Fatalf("bad endpoints for %s->%s", tp.Node(src).Name, tp.Node(dst).Name)
			}
			// Fat-tree shortest paths are 2, 4, or 6 hops.
			h := len(locs) - 1
			if h != 2 && h != 4 && h != 6 {
				t.Fatalf("hops = %d for %s->%s", h, tp.Node(src).Name, tp.Node(dst).Name)
			}
		}
	}
}

func TestTreeEdgesFormATree(t *testing.T) {
	tp := topo.FatTree(4, topo.Gbps)
	g := graphFor(t, tp, ".*", nil)
	dst := tp.Hosts()[0]
	tr, err := TreeTo(g, dst)
	if err != nil {
		t.Fatal(err)
	}
	edges := tr.Edges()
	if len(edges) == 0 {
		t.Fatal("no tree edges")
	}
	// Each product vertex has at most one outgoing tree edge (tree
	// property), except the virtual source.
	outCount := map[int]int{}
	for _, e := range edges {
		if e.From != g.Source {
			outCount[e.From]++
		}
	}
	for v, c := range outCount {
		if c > 1 {
			t.Fatalf("vertex %d has %d outgoing tree edges", v, c)
		}
	}
}

func BenchmarkSinkTreesFatTree4AllPairs(b *testing.B) {
	tp := topo.FatTree(4, topo.Gbps)
	g := graphFor(b, tp, ".*", nil)
	hosts := tp.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildTrees(g, hosts, false); err != nil {
			b.Fatal(err)
		}
	}
}
