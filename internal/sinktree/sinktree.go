// Package sinktree provisions best-effort traffic (§3.3): instead of
// solving a constraint problem, it computes sink trees — per-destination
// shortest-path trees over the product of the statement's path-constraint
// automaton with the topology — by breadth-first search. Traffic from any
// source reaches the destination along tree edges while respecting the
// statement's path constraints.
package sinktree

import (
	"fmt"

	"merlin/internal/logical"
	"merlin/internal/topo"
)

// Tree is a sink tree: for every product vertex that can reach the
// destination, the next edge toward it along a minimum-hop satisfying
// path.
type Tree struct {
	Dst   topo.NodeID
	g     *logical.Graph
	dist  []int   // hops to destination per product vertex (-1 unreachable)
	next  []int32 // edge id toward destination per product vertex (-1 none)
	entry []int32 // best source edge per location (-1 none)
}

// Graph returns the product graph the tree was computed on.
func (tr *Tree) Graph() *logical.Graph { return tr.g }

// TreeTo computes the sink tree toward dst by a reverse 0/1-weight BFS
// from the accepting vertices at dst. It returns an error if no source can
// reach dst under the path constraint.
func TreeTo(g *logical.Graph, dst topo.NodeID) (*Tree, error) {
	const inf = int(^uint(0) >> 1)
	tr := &Tree{
		Dst:  dst,
		g:    g,
		dist: make([]int, g.NumVerts),
		next: make([]int32, g.NumVerts),
	}
	for i := range tr.dist {
		tr.dist[i] = inf
		tr.next[i] = -1
	}
	// Seed: vertices (dst, q) with an edge to the sink (q accepting).
	deque := make([]int, 0, 64)
	for _, eid := range g.In[g.Sink] {
		e := g.Edges[eid]
		loc, _, ok := g.Decompose(e.From)
		if !ok || loc != dst {
			continue
		}
		if tr.dist[e.From] != 0 {
			tr.dist[e.From] = 0
			tr.next[e.From] = int32(eid)
			deque = append(deque, e.From)
		}
	}
	if len(deque) == 0 {
		return nil, fmt.Errorf("sinktree: destination %s cannot terminate any satisfying path", g.Topo.Node(dst).Name)
	}
	// Reverse 0/1 BFS: relax incoming edges.
	for len(deque) > 0 {
		v := deque[0]
		deque = deque[1:]
		for _, eid := range g.In[v] {
			e := g.Edges[eid]
			if e.From == g.Source {
				continue // handled as entries below
			}
			w := 0
			if e.Link >= 0 {
				w = 1
			}
			if tr.dist[v]+w < tr.dist[e.From] {
				tr.dist[e.From] = tr.dist[v] + w
				tr.next[e.From] = int32(eid)
				if w == 0 {
					deque = append([]int{e.From}, deque...)
				} else {
					deque = append(deque, e.From)
				}
			}
		}
	}
	// Entry edges: best way into the tree per source location.
	tr.entry = make([]int32, g.Topo.NumNodes())
	for i := range tr.entry {
		tr.entry[i] = -1
	}
	for _, eid := range g.Out[g.Source] {
		e := g.Edges[eid]
		if tr.dist[e.To] == inf {
			continue
		}
		loc := e.Entering
		cur := tr.entry[loc]
		if cur < 0 || tr.dist[g.Edges[cur].To] > tr.dist[e.To] {
			tr.entry[loc] = int32(eid)
		}
	}
	return tr, nil
}

// Reaches reports whether traffic entering at src can reach the
// destination along the tree.
func (tr *Tree) Reaches(src topo.NodeID) bool {
	return src != tr.Dst && tr.entry[src] >= 0
}

// PathFrom returns the steps of the tree path from src to the destination,
// or nil if src cannot reach it.
func (tr *Tree) PathFrom(src topo.NodeID) []logical.Step {
	return tr.PathFromBuf(nil, src)
}

// PathFromBuf is PathFrom appending into buf, for callers reusing a
// scratch buffer across many sources. The result aliases buf unless tag
// recovery had to rebuild it; it is nil exactly when PathFrom's would be.
func (tr *Tree) PathFromBuf(buf []logical.Step, src topo.NodeID) []logical.Step {
	if !tr.Reaches(src) {
		return nil
	}
	steps := buf[:0]
	eid := tr.entry[src]
	for {
		e := tr.g.Edges[eid]
		if e.To == tr.g.Sink {
			break
		}
		steps = append(steps, logical.Step{Loc: e.Entering, Tag: e.Tag})
		eid = tr.next[e.To]
		if eid < 0 {
			return nil // should not happen: entry implies connectivity
		}
	}
	if tr.g.TagSource != nil {
		tagged, err := logical.RecoverTags(tr.g.TagSource, tr.g.Topo, steps)
		if err == nil {
			return tagged
		}
	}
	return steps
}

// Edges enumerates the distinct tree edges used by any source, the set
// codegen turns into forwarding rules. Each edge is keyed by its product
// vertex so per-state forwarding is distinguishable.
func (tr *Tree) Edges() []logical.Edge {
	used := make(map[int32]bool)
	var out []logical.Edge
	add := func(eid int32) {
		if eid >= 0 && !used[eid] {
			used[eid] = true
			out = append(out, tr.g.Edges[eid])
		}
	}
	for src := range tr.entry {
		if !tr.Reaches(topo.NodeID(src)) {
			continue
		}
		eid := tr.entry[src]
		for {
			e := tr.g.Edges[eid]
			add(eid)
			if e.To == tr.g.Sink {
				break
			}
			eid = tr.next[e.To]
			if eid < 0 {
				break
			}
		}
	}
	return out
}

// RidesLinks reports whether any tree edge used by a reaching source — the
// exact set Edges enumerates and codegen consumes — lies on a physical
// link satisfying ride. When it returns false for the links a failure
// removed, the tree survives the failure verbatim: removing edges can
// only lengthen distances, so the used chains (whose lengths are
// unchanged) stay optimal; the BFS tie-breaks are first-minimal in the
// preserved edge order, and any competitor whose distance the removal did
// not grow routes through a removed-link chain — which this test would
// have caught. The codegen-visible tree is therefore identical to a cold
// rebuild on the patched graph.
func (tr *Tree) RidesLinks(ride func(topo.LinkID) bool) bool {
	seen := make(map[int32]bool)
	for src := range tr.entry {
		if !tr.Reaches(topo.NodeID(src)) {
			continue
		}
		eid := tr.entry[src]
		for {
			if seen[eid] {
				break
			}
			seen[eid] = true
			e := tr.g.Edges[eid]
			if e.Link >= 0 && ride(e.Link) {
				return true
			}
			if e.To == tr.g.Sink {
				break
			}
			eid = tr.next[e.To]
			if eid < 0 {
				break
			}
		}
	}
	return false
}

// BuildTrees computes sink trees for every destination in dsts, skipping
// unreachable ones when lenient is set (they are reported in the second
// return).
func BuildTrees(g *logical.Graph, dsts []topo.NodeID, lenient bool) (map[topo.NodeID]*Tree, []topo.NodeID, error) {
	trees := make(map[topo.NodeID]*Tree, len(dsts))
	var failed []topo.NodeID
	for _, d := range dsts {
		tr, err := TreeTo(g, d)
		if err != nil {
			if lenient {
				failed = append(failed, d)
				continue
			}
			return nil, nil, err
		}
		trees[d] = tr
	}
	return trees, failed, nil
}
