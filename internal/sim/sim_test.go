package sim

import (
	"math"
	"math/rand"
	"testing"

	"merlin/internal/topo"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTwoFlowsShareFairly(t *testing.T) {
	tp := topo.Linear(1, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	net := New(tp)
	f1, _ := net.AddFlow("a", h1, h2, topo.Gbps, 0, 0)
	f2, _ := net.AddFlow("b", h1, h2, topo.Gbps, 0, 0)
	net.Allocate()
	if !approx(f1.Rate, 5e8, 1e6) || !approx(f2.Rate, 5e8, 1e6) {
		t.Fatalf("rates = %v %v, want even split", f1.Rate, f2.Rate)
	}
	if err := net.CheckCapacities(); err != nil {
		t.Fatal(err)
	}
}

func TestGuaranteeHonored(t *testing.T) {
	tp := topo.Linear(1, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	net := New(tp)
	gold, _ := net.AddFlow("gold", h1, h2, topo.Gbps, 7e8, 0)
	best, _ := net.AddFlow("best", h1, h2, topo.Gbps, 0, 0)
	net.Allocate()
	// gold: 700M guaranteed + half of the residual 300M? No — residual is
	// shared max-min: both unfrozen, gold already at 700M... progressive
	// filling adds equally until the link saturates: +150M each.
	if gold.Rate < 7e8-1e3 {
		t.Fatalf("guarantee violated: %v", gold.Rate)
	}
	if best.Rate <= 0 {
		t.Fatal("best-effort starved entirely despite spare capacity")
	}
	if err := net.CheckCapacities(); err != nil {
		t.Fatal(err)
	}
	total := gold.Rate + best.Rate
	if !approx(total, 1e9, 1e6) {
		t.Fatalf("link underutilized: %v", total)
	}
}

func TestGuaranteeIdleDoesNotWaste(t *testing.T) {
	// A guarantee for an idle flow must not strand bandwidth (Fig. 5's
	// utilization claim).
	tp := topo.Linear(1, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	net := New(tp)
	idle, _ := net.AddFlow("idle", h1, h2, 0, 7e8, 0)
	busy, _ := net.AddFlow("busy", h1, h2, topo.Gbps, 0, 0)
	net.Allocate()
	if idle.Rate != 0 {
		t.Fatalf("idle flow allocated %v", idle.Rate)
	}
	if !approx(busy.Rate, 1e9, 1e6) {
		t.Fatalf("busy flow got %v, want full line rate", busy.Rate)
	}
}

func TestCapRespected(t *testing.T) {
	tp := topo.Linear(1, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	net := New(tp)
	capped, _ := net.AddFlow("capped", h1, h2, topo.Gbps, 0, 2e8)
	free, _ := net.AddFlow("free", h1, h2, topo.Gbps, 0, 0)
	net.Allocate()
	if capped.Rate > 2e8+1e3 {
		t.Fatalf("cap violated: %v", capped.Rate)
	}
	if !approx(free.Rate, 8e8, 1e6) {
		t.Fatalf("free flow got %v, want the rest", free.Rate)
	}
}

func TestDemandLimited(t *testing.T) {
	tp := topo.Linear(1, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	net := New(tp)
	small, _ := net.AddFlow("small", h1, h2, 1e8, 0, 0)
	big, _ := net.AddFlow("big", h1, h2, topo.Gbps, 0, 0)
	net.Allocate()
	if !approx(small.Rate, 1e8, 1e3) {
		t.Fatalf("small = %v, want its demand", small.Rate)
	}
	if !approx(big.Rate, 9e8, 1e6) {
		t.Fatalf("big = %v, want the remainder", big.Rate)
	}
}

func TestMultiBottleneckMaxMin(t *testing.T) {
	// Classic 3-flow example: flows A (l1+l2), B (l1), C (l2) with unit
	// capacities → A=1/2? Progressive filling: all grow to 0.5 (l1 and l2
	// saturate simultaneously with shares 0.5); B and C freeze with A.
	tp := topo.Linear(3, topo.Gbps) // s0-s1-s2 with h1@s0, h2@s2
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	s0, s1, s2 := tp.MustLookup("s0"), tp.MustLookup("s1"), tp.MustLookup("s2")
	net := New(tp)
	a, _ := net.AddFlowOnPath("A", []topo.NodeID{h1, s0, s1, s2, h2}, topo.Gbps, 0, 0)
	b, _ := net.AddFlowOnPath("B", []topo.NodeID{s0, s1}, topo.Gbps, 0, 0)
	c, _ := net.AddFlowOnPath("C", []topo.NodeID{s1, s2}, topo.Gbps, 0, 0)
	net.Allocate()
	for _, f := range []*Flow{a, b, c} {
		if !approx(f.Rate, 5e8, 1e6) {
			t.Fatalf("%s = %v, want 0.5G", f.ID, f.Rate)
		}
	}
	if err := net.CheckCapacities(); err != nil {
		t.Fatal(err)
	}
}

func TestUnevenBottlenecks(t *testing.T) {
	// B limited to a 100M side link; A shares the main link and should
	// get the slack: A=900M... A and B share l_main(1G); B also crosses
	// l_slow(100M). Max-min: B bottlenecked at 100M, A gets 900M.
	tp := topo.New()
	x := tp.AddSwitch("x")
	y := tp.AddSwitch("y")
	z := tp.AddSwitch("z")
	tp.AddLink(x, y, topo.Gbps)
	tp.AddLink(y, z, 100*topo.Mbps)
	net := New(tp)
	a, _ := net.AddFlowOnPath("A", []topo.NodeID{x, y}, topo.Gbps, 0, 0)
	b, _ := net.AddFlowOnPath("B", []topo.NodeID{x, y, z}, topo.Gbps, 0, 0)
	net.Allocate()
	if !approx(b.Rate, 1e8, 1e5) {
		t.Fatalf("B = %v, want 100M", b.Rate)
	}
	if !approx(a.Rate, 9e8, 1e6) {
		t.Fatalf("A = %v, want 900M", a.Rate)
	}
}

func TestStepAccumulates(t *testing.T) {
	tp := topo.Linear(1, topo.Gbps)
	h1, h2 := tp.MustLookup("h1"), tp.MustLookup("h2")
	net := New(tp)
	f, _ := net.AddFlow("f", h1, h2, 5e8, 0, 0)
	for i := 0; i < 10; i++ {
		net.Step(0.1)
	}
	if !approx(f.BitsSent, 5e8, 1e3) {
		t.Fatalf("sent = %v bits, want 5e8", f.BitsSent)
	}
	if !approx(net.Time, 1.0, 1e-9) {
		t.Fatalf("time = %v", net.Time)
	}
}

// Property: random flow sets never violate capacity, guarantees are met
// when admissible, and caps/demands are never exceeded.
func TestAllocateInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tp := topo.FatTree(4, topo.Gbps)
	hosts := tp.Hosts()
	for trial := 0; trial < 50; trial++ {
		net := New(tp)
		nflows := 1 + r.Intn(20)
		for i := 0; i < nflows; i++ {
			src := hosts[r.Intn(len(hosts))]
			dst := hosts[r.Intn(len(hosts))]
			if src == dst {
				continue
			}
			demand := r.Float64() * topo.Gbps
			min := 0.0
			if r.Intn(3) == 0 {
				min = r.Float64() * 1e8 // modest guarantees, admissible
			}
			max := 0.0
			if r.Intn(3) == 0 {
				max = min + r.Float64()*5e8
			}
			if _, err := net.AddFlow("f", src, dst, demand, min, max); err != nil {
				t.Fatal(err)
			}
		}
		net.Allocate()
		if err := net.CheckCapacities(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, f := range net.Flows {
			limit := math.Min(f.Demand, f.MaxRate)
			if f.Rate > limit+1e-3 {
				t.Fatalf("trial %d: flow exceeds demand/cap: %v > %v", trial, f.Rate, limit)
			}
		}
	}
}

func TestHadoopExperimentShape(t *testing.T) {
	base, err := RunHadoop(HadoopConfig{})
	if err != nil {
		t.Fatal(err)
	}
	interf, err := RunHadoop(HadoopConfig{Background: true})
	if err != nil {
		t.Fatal(err)
	}
	guar, err := RunHadoop(HadoopConfig{Background: true, GuaranteeFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: baseline < guarantee < interference, with roughly a
	// 20% interference slowdown.
	if !(base.CompletionSeconds < guar.CompletionSeconds &&
		guar.CompletionSeconds < interf.CompletionSeconds) {
		t.Fatalf("ordering wrong: base=%.0f guar=%.0f interf=%.0f",
			base.CompletionSeconds, guar.CompletionSeconds, interf.CompletionSeconds)
	}
	slowdown := interf.CompletionSeconds / base.CompletionSeconds
	if slowdown < 1.1 || slowdown > 1.4 {
		t.Fatalf("interference slowdown = %.2f, want ~1.2", slowdown)
	}
	if base.CompletionSeconds < 400 || base.CompletionSeconds > 550 {
		t.Fatalf("baseline = %.0f s, want ~466", base.CompletionSeconds)
	}
}

func TestRingPaxosShape(t *testing.T) {
	noMerlin, err := RunRingPaxos(RingPaxosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	withMerlin, err := RunRingPaxos(RingPaxosConfig{GuaranteeBps: 6e8})
	if err != nil {
		t.Fatal(err)
	}
	last := func(rows []RingPaxosRow) RingPaxosRow { return rows[len(rows)-1] }
	// Without Merlin: saturated services share evenly.
	nm := last(noMerlin)
	if !approx(nm.Ring1, nm.Ring2, 1e6) {
		t.Fatalf("without Merlin rings should split evenly: %v vs %v", nm.Ring1, nm.Ring2)
	}
	// With Merlin: ring 2 holds its guarantee under saturation.
	wm := last(withMerlin)
	if wm.Ring2 < 6e8-1e3 {
		t.Fatalf("guarantee not held: ring2 = %v", wm.Ring2)
	}
	if wm.Ring1 >= wm.Ring2 {
		t.Fatalf("ring1 should be squeezed: %v vs %v", wm.Ring1, wm.Ring2)
	}
	// Aggregate utilization is preserved.
	if !approx(wm.Aggregate, nm.Aggregate, 1e6) {
		t.Fatalf("aggregate changed: %v vs %v", wm.Aggregate, nm.Aggregate)
	}
	// Idle guarantee does not strand bandwidth.
	r1, err := RingPaxosIdlePoint(RingPaxosConfig{GuaranteeBps: 6e8}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if r1 < 6e8-1e6 {
		t.Fatalf("ring1 with idle ring2 = %v, want full use", r1)
	}
	// Throughput grows with clients before saturation.
	if noMerlin[1].Aggregate <= noMerlin[0].Aggregate {
		t.Fatal("throughput should grow with clients")
	}
}

func TestSeriesHelpers(t *testing.T) {
	var s Series
	s.Record(0, 10)
	s.Record(1, 20)
	if s.Mean() != 15 {
		t.Fatalf("mean = %v", s.Mean())
	}
	fs := []*Flow{{ID: "b"}, {ID: "a"}}
	SortFlowsByID(fs)
	if fs[0].ID != "a" {
		t.Fatal("sort failed")
	}
}

func BenchmarkAllocateFatTree(b *testing.B) {
	tp := topo.FatTree(4, topo.Gbps)
	hosts := tp.Hosts()
	net := New(tp)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		src := hosts[r.Intn(len(hosts))]
		dst := hosts[r.Intn(len(hosts))]
		if src == dst {
			continue
		}
		net.AddFlow("f", src, dst, topo.Gbps, 0, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Allocate()
	}
}

// TestLinkFailureScenario is the flow-level failure story: a flow's link
// fails mid-simulation, its traffic blackholes (rate 0), a reroute around
// the failure restores service, and recovery brings the original path
// back.
func TestLinkFailureScenario(t *testing.T) {
	// 4-switch ring with hosts on opposite corners: two disjoint routes.
	tp := topo.Ring(4, 1, topo.Gbps)
	h0, h2 := tp.MustLookup("h0_0"), tp.MustLookup("h2_0")
	net := New(tp)
	orig := tp.ShortestPath(h0, h2)
	f, err := net.AddFlowOnPath("f", orig, 400e6, 100e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	net.Step(1)
	if f.Rate < 390e6 {
		t.Fatalf("pre-failure rate %v, want ~400Mbps", f.Rate)
	}

	// Fail the first switch-switch link on the path.
	if _, err := tp.SetLinkState(orig[1], orig[2], false); err != nil {
		t.Fatal(err)
	}
	net.Step(1)
	if f.Rate != 0 {
		t.Fatalf("flow across failed link allocated %v, want 0", f.Rate)
	}
	failed := net.FailedFlows()
	if len(failed) != 1 || failed[0] != f {
		t.Fatalf("FailedFlows = %v", failed)
	}
	if err := net.CheckCapacities(); err != nil {
		t.Fatal(err)
	}

	// Reroute around the ring; service resumes.
	alt := tp.ShortestPath(h0, h2)
	if alt == nil {
		t.Fatal("no alternate path in a ring")
	}
	if err := net.Reroute(f, alt); err != nil {
		t.Fatal(err)
	}
	net.Step(1)
	if f.Rate < 390e6 {
		t.Fatalf("post-reroute rate %v, want ~400Mbps", f.Rate)
	}
	if len(net.FailedFlows()) != 0 {
		t.Fatalf("rerouted flow still reported failed")
	}

	// A reroute through the still-down link is rejected.
	if err := net.Reroute(f, orig); err == nil {
		t.Fatal("reroute across a failed link must error")
	}

	// Recovery restores the original path's usability.
	if _, err := tp.SetLinkState(orig[1], orig[2], true); err != nil {
		t.Fatal(err)
	}
	if err := net.Reroute(f, orig); err != nil {
		t.Fatalf("reroute after recovery: %v", err)
	}
	net.Step(1)
	if f.Rate < 390e6 {
		t.Fatalf("post-recovery rate %v", f.Rate)
	}
}
