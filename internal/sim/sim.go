// Package sim is a flow-level network simulator: links with capacities
// carry flows whose rates are assigned each tick by progressive-filling
// max-min fair sharing with reservations (bandwidth guarantees) and caps
// (bandwidth limits) — the allocation discipline Merlin's generated queue
// and tc configurations enforce on real hardware. It substitutes for the
// paper's physical testbed in the §6.2 application experiments (Hadoop,
// Ring Paxos) and the Fig. 10 adaptation experiments.
package sim

import (
	"fmt"
	"math"
	"sort"

	"merlin/internal/topo"
)

// Flow is one unidirectional traffic aggregate riding a fixed path.
type Flow struct {
	ID   string
	Path []topo.LinkID // directed links in path order

	// Demand is the offered load in bits/s this tick.
	Demand float64
	// MinRate is the guaranteed rate (reserved on its links); MaxRate the
	// cap (+Inf if uncapped).
	MinRate, MaxRate float64
	// Active gates participation.
	Active bool

	// Rate is the allocation computed by the last Allocate call.
	Rate float64
	// BitsSent accumulates across Step calls.
	BitsSent float64
}

// Network simulates a set of flows over a topology.
type Network struct {
	Topo  *topo.Topology
	Flows []*Flow
	// Time is the simulated clock in seconds.
	Time float64
}

// New builds an empty simulation over the topology.
func New(t *topo.Topology) *Network { return &Network{Topo: t} }

// AddFlow registers a flow along the shortest path between two hosts.
func (n *Network) AddFlow(id string, src, dst topo.NodeID, demand, min, max float64) (*Flow, error) {
	nodes := n.Topo.ShortestPath(src, dst)
	if nodes == nil {
		return nil, fmt.Errorf("sim: no path %s -> %s", n.Topo.Node(src).Name, n.Topo.Node(dst).Name)
	}
	return n.AddFlowOnPath(id, nodes, demand, min, max)
}

// AddFlowOnPath registers a flow along an explicit node path.
func (n *Network) AddFlowOnPath(id string, nodes []topo.NodeID, demand, min, max float64) (*Flow, error) {
	var links []topo.LinkID
	for i := 1; i < len(nodes); i++ {
		l, ok := n.Topo.FindLink(nodes[i-1], nodes[i])
		if !ok {
			return nil, fmt.Errorf("sim: no link %s-%s", n.Topo.Node(nodes[i-1]).Name, n.Topo.Node(nodes[i]).Name)
		}
		links = append(links, l.ID)
	}
	if max == 0 {
		max = math.Inf(1)
	}
	f := &Flow{ID: id, Path: links, Demand: demand, MinRate: min, MaxRate: max, Active: true}
	n.Flows = append(n.Flows, f)
	return f, nil
}

// Allocate assigns rates to all active flows:
//
//  1. each flow is granted its guarantee (clipped to demand and cap) —
//     the switch-queue reservations;
//  2. residual demand shares leftover capacity max-min fairly by
//     progressive filling, respecting caps.
//
// The sum of allocations on any link never exceeds its capacity, provided
// guarantees were admission-controlled (the provisioner's job); if
// guarantees alone oversubscribe a link they are scaled back
// proportionally, mirroring a misconfigured dataplane's behavior.
func (n *Network) Allocate() {
	resid := make([]float64, n.Topo.NumLinks())
	for _, l := range n.Topo.Links() {
		if !n.Topo.LinkIsUp(l.ID) {
			continue // failed link: zero residual, flows across it starve
		}
		resid[l.ID] = l.Capacity
	}
	active := make([]*Flow, 0, len(n.Flows))
	for _, f := range n.Flows {
		f.Rate = 0
		if f.Active && f.Demand > 0 {
			active = append(active, f)
		}
	}
	// Phase 1: guarantees.
	for _, f := range active {
		g := math.Min(f.MinRate, math.Min(f.Demand, f.MaxRate))
		if g <= 0 {
			continue
		}
		// Clip to available reserved capacity (defensive; see doc).
		for _, l := range f.Path {
			if resid[l] < g {
				g = resid[l]
			}
		}
		f.Rate = g
		for _, l := range f.Path {
			resid[l] -= g
		}
	}
	// Phase 2: progressive filling of residual demand.
	limit := func(f *Flow) float64 { return math.Min(f.Demand, f.MaxRate) }
	unfrozen := make(map[*Flow]bool)
	for _, f := range active {
		if f.Rate < limit(f)-1e-9 {
			unfrozen[f] = true
		}
	}
	for len(unfrozen) > 0 {
		// Count unfrozen flows per link.
		counts := make(map[topo.LinkID]int)
		for f := range unfrozen {
			for _, l := range f.Path {
				counts[l]++
			}
		}
		// The largest uniform increment every unfrozen flow can take.
		inc := math.Inf(1)
		for f := range unfrozen {
			if room := limit(f) - f.Rate; room < inc {
				inc = room
			}
		}
		for l, c := range counts {
			if share := resid[l] / float64(c); share < inc {
				inc = share
			}
		}
		if inc < 1e-9 {
			inc = 0
		}
		if inc > 0 {
			for f := range unfrozen {
				f.Rate += inc
				for _, l := range f.Path {
					resid[l] -= inc
				}
			}
		}
		// Freeze flows at their limits or crossing saturated links.
		frozeSomething := false
		for f := range unfrozen {
			saturated := false
			for _, l := range f.Path {
				if resid[l] <= 1e-6 {
					saturated = true
					break
				}
			}
			if saturated || f.Rate >= limit(f)-1e-9 {
				delete(unfrozen, f)
				frozeSomething = true
			}
		}
		if !frozeSomething {
			break // numerical stalemate; allocations are already fair
		}
	}
}

// FailedFlows returns the active flows whose path crosses a failed link —
// traffic a link or switch failure blackholed. They stay allocated at
// zero until rerouted (Reroute) or deactivated, mirroring a dataplane
// whose stale forwarding rules still point into the failure.
func (n *Network) FailedFlows() []*Flow {
	var out []*Flow
	for _, f := range n.Flows {
		if !f.Active {
			continue
		}
		for _, l := range f.Path {
			if !n.Topo.LinkIsUp(l) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// Reroute replaces a flow's path with an explicit node path — the
// simulator-side application of a compiler reroute diff. Every hop must
// be a live link.
func (n *Network) Reroute(f *Flow, nodes []topo.NodeID) error {
	var links []topo.LinkID
	for i := 1; i < len(nodes); i++ {
		l, ok := n.Topo.FindLink(nodes[i-1], nodes[i])
		if !ok {
			return fmt.Errorf("sim: reroute %s: no live link %s-%s", f.ID,
				n.Topo.Node(nodes[i-1]).Name, n.Topo.Node(nodes[i]).Name)
		}
		links = append(links, l.ID)
	}
	f.Path = links
	return nil
}

// Step advances the simulation by dt seconds: allocates rates and
// accumulates transferred bits.
func (n *Network) Step(dt float64) {
	n.Allocate()
	for _, f := range n.Flows {
		if f.Active {
			f.BitsSent += f.Rate * dt
		}
	}
	n.Time += dt
}

// CheckCapacities verifies the invariant that no link carries more than
// its capacity. It returns the first violation.
func (n *Network) CheckCapacities() error {
	load := make([]float64, n.Topo.NumLinks())
	for _, f := range n.Flows {
		if !f.Active {
			continue
		}
		for _, l := range f.Path {
			load[l] += f.Rate
		}
	}
	for _, l := range n.Topo.Links() {
		if load[l.ID] > l.Capacity*(1+1e-6) {
			return fmt.Errorf("sim: link %d overloaded: %.3g > %.3g", l.ID, load[l.ID], l.Capacity)
		}
	}
	return nil
}

// Sample is one point of a rate time series.
type Sample struct {
	Time float64
	Rate float64 // bits/s
}

// Series is a named rate time series, the Fig. 5/10 output shape.
type Series struct {
	Name    string
	Samples []Sample
}

// Record appends a sample.
func (s *Series) Record(t, rate float64) {
	s.Samples = append(s.Samples, Sample{Time: t, Rate: rate})
}

// Mean returns the average rate over the series.
func (s *Series) Mean() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Samples {
		sum += p.Rate
	}
	return sum / float64(len(s.Samples))
}

// SortFlowsByID orders flows deterministically, for stable output.
func SortFlowsByID(fs []*Flow) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
}
