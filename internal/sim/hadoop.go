package sim

import (
	"fmt"

	"merlin/internal/topo"
)

// HadoopConfig models the §6.2 Hadoop experiment: a sort job on a small
// cluster whose shuffle phase is sensitive to background UDP traffic.
// Calibration: the paper reports 466 s alone, 558 s under interference
// (~20% slower), and 500 s with a 90% bandwidth guarantee. Decomposing the
// baseline into compute + network gives ComputeSeconds ≈ 374 and a network
// phase of ≈ 92 s at full line rate, which the defaults reproduce.
type HadoopConfig struct {
	// Servers is the cluster size (default 4).
	Servers int
	// LinkBps is the NIC/link speed (default 1 Gbps).
	LinkBps float64
	// ComputeSeconds is the non-network portion of the job (default 374).
	ComputeSeconds float64
	// ShuffleBitsPerHost is each server's shuffle egress volume
	// (default: 92 s at line rate).
	ShuffleBitsPerHost float64
	// Background enables iperf-style UDP interference between the same
	// servers, offered at line rate.
	Background bool
	// GuaranteeFraction reserves this fraction of each link for the
	// Hadoop flows (0 = best effort; the paper's policy uses 0.9).
	GuaranteeFraction float64
	// StepSeconds is the simulation tick (default 0.1).
	StepSeconds float64
}

func (c *HadoopConfig) defaults() {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.LinkBps == 0 {
		c.LinkBps = topo.Gbps
	}
	if c.ComputeSeconds == 0 {
		c.ComputeSeconds = 374
	}
	if c.ShuffleBitsPerHost == 0 {
		c.ShuffleBitsPerHost = 92 * c.LinkBps
	}
	if c.StepSeconds == 0 {
		c.StepSeconds = 0.1
	}
}

// HadoopResult reports the simulated job.
type HadoopResult struct {
	CompletionSeconds float64
	ShuffleSeconds    float64
}

// RunHadoop simulates the sort job and returns its completion time.
func RunHadoop(cfg HadoopConfig) (*HadoopResult, error) {
	cfg.defaults()
	// Cluster LAN: one switch, n servers.
	t := topo.Star(1, cfg.Servers, cfg.LinkBps)
	net := New(t)
	hosts := t.Hosts()
	n := len(hosts)
	perPair := cfg.ShuffleBitsPerHost / float64(n-1)
	// Per-flow guarantee: the per-link reservation split across the
	// flows sharing each egress link (the localization of §3.1).
	perFlowMin := 0.0
	if cfg.GuaranteeFraction > 0 {
		perFlowMin = cfg.GuaranteeFraction * cfg.LinkBps / float64(n-1)
	}
	var shuffle []*Flow
	for i, src := range hosts {
		for j, dst := range hosts {
			if i == j {
				continue
			}
			f, err := net.AddFlow(fmt.Sprintf("shuffle-%d-%d", i, j), src, dst,
				cfg.LinkBps, perFlowMin, 0)
			if err != nil {
				return nil, err
			}
			shuffle = append(shuffle, f)
		}
	}
	if cfg.Background {
		// iperf UDP blasts all-to-all: gossip-style background traffic
		// matches the shuffle's flow count on every link, halving the
		// shuffle's share — the paper's measured doubling of the network
		// phase (558 s = 374 s compute + 2 × 92 s network).
		for i, src := range hosts {
			for j, dst := range hosts {
				if i == j {
					continue
				}
				if _, err := net.AddFlow(fmt.Sprintf("udp-%d-%d", i, j), src, dst,
					cfg.LinkBps, 0, 0); err != nil {
					return nil, err
				}
			}
		}
	}
	// Shuffle until every flow has moved its bytes.
	const maxSim = 24 * 3600.0
	for net.Time < maxSim {
		done := true
		for _, f := range shuffle {
			if f.BitsSent < perPair {
				done = false
				f.Demand = cfg.LinkBps
			} else {
				f.Active = false
			}
		}
		if done {
			break
		}
		net.Step(cfg.StepSeconds)
		if err := net.CheckCapacities(); err != nil {
			return nil, err
		}
	}
	if net.Time >= maxSim {
		return nil, fmt.Errorf("sim: hadoop shuffle did not converge")
	}
	return &HadoopResult{
		CompletionSeconds: cfg.ComputeSeconds + net.Time,
		ShuffleSeconds:    net.Time,
	}, nil
}

// RingPaxosConfig models the Fig. 5 experiment: two replicated services
// whose rings share one machine, making its NIC the contended resource.
type RingPaxosConfig struct {
	// Capacity is the shared machine's NIC speed (default 1 Gbps).
	Capacity float64
	// PerClientBps is each client's offered load (default 10 Mbps).
	PerClientBps float64
	// GuaranteeBps reserves bandwidth for service 2 (0 = no Merlin
	// policy; the "with Merlin" run uses ~600 Mbps).
	GuaranteeBps float64
	// MaxClients sweeps 0..MaxClients total clients (default 120).
	MaxClients int
	// ClientStep is the sweep granularity (default 10).
	ClientStep int
}

func (c *RingPaxosConfig) defaults() {
	if c.Capacity == 0 {
		c.Capacity = topo.Gbps
	}
	if c.PerClientBps == 0 {
		c.PerClientBps = 10 * topo.Mbps
	}
	if c.MaxClients == 0 {
		c.MaxClients = 120
	}
	if c.ClientStep == 0 {
		c.ClientStep = 10
	}
}

// RingPaxosRow is one sweep point.
type RingPaxosRow struct {
	Clients                 int
	Ring1, Ring2, Aggregate float64 // bits/s
}

// RunRingPaxos sweeps client counts and reports per-service and aggregate
// throughput. Clients are split evenly between the services.
func RunRingPaxos(cfg RingPaxosConfig) ([]RingPaxosRow, error) {
	cfg.defaults()
	var rows []RingPaxosRow
	for clients := 0; clients <= cfg.MaxClients; clients += cfg.ClientStep {
		perService := float64(clients) / 2 * cfg.PerClientBps
		r1, r2, err := ringPaxosPoint(cfg, perService, perService)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RingPaxosRow{
			Clients: clients, Ring1: r1, Ring2: r2, Aggregate: r1 + r2,
		})
	}
	return rows, nil
}

// RingPaxosIdlePoint measures service 1's throughput when service 2 is
// idle — the paper's "guarantees do not waste idle bandwidth" claim.
func RingPaxosIdlePoint(cfg RingPaxosConfig, clients int) (float64, error) {
	cfg.defaults()
	demand := float64(clients) / 2 * cfg.PerClientBps
	r1, _, err := ringPaxosPoint(cfg, demand, 0)
	return r1, err
}

func ringPaxosPoint(cfg RingPaxosConfig, demand1, demand2 float64) (float64, float64, error) {
	// The shared machine's egress link is the bottleneck; model it as a
	// two-host topology whose single cable both rings' traffic crosses.
	t := topo.Linear(1, cfg.Capacity)
	h1 := t.MustLookup("h1")
	h2 := t.MustLookup("h2")
	net := New(t)
	f1, err := net.AddFlow("ring1", h1, h2, demand1, 0, 0)
	if err != nil {
		return 0, 0, err
	}
	f2, err := net.AddFlow("ring2", h1, h2, demand2, cfg.GuaranteeBps, 0)
	if err != nil {
		return 0, 0, err
	}
	net.Allocate()
	if err := net.CheckCapacities(); err != nil {
		return 0, 0, err
	}
	return f1.Rate, f2.Rate, nil
}
