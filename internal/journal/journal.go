// Package journal is the controller's durable memory: an append-only,
// CRC-framed record log with fsync-batched group commits, plus atomic
// point-in-time snapshots — the persistence substrate behind merlind's
// warm restarts. The package knows nothing about policies or topologies;
// records are opaque (kind, payload) pairs stamped with a monotonically
// increasing sequence number, and snapshots are opaque payloads tagged
// with the sequence they cover. Layering the compiler's record codec on
// top lives in the root package (merlin.ApplyJournalRecord).
//
// Durability contract: Append returns only after the record (and, by
// write order, every record sequenced before it) has been fsynced to the
// log — the caller may acknowledge the operation to its client. A crash
// can lose operations that were applied but not yet acknowledged (the
// client retries), and can leave a torn final record from a commit that
// never completed; recovery truncates the torn tail, so the recovered
// log is exactly the acknowledged prefix (plus, possibly, fully-written
// records whose fsync raced the crash — never a partial record).
//
// Group commit: concurrent Appends are drained into one buffered write
// and one fsync by a single committer goroutine, so the fsync cost
// amortizes across the batch — the classic group-commit trade
// (throughput scales with concurrency, latency stays one disk flush).
// Stats reports the records-per-fsync ratio the batching achieved.
//
// On-disk layout, one directory per store:
//
//	wal-<firstSeq>.log   record segments, rotated at snapshots
//	snap-<seq>.snap      snapshot payloads, atomically written
//
// Every record and snapshot is framed identically:
//
//	[4B LE body length][4B CRC32-C of body][body]
//	body = [8B LE seq][1B kind][payload]
//
// Recovery loads the newest snapshot whose frame validates (a torn
// snapshot falls back to the previous one), then replays every record
// with seq beyond it, truncating a torn tail in the final segment.
// Corruption anywhere other than the final segment's tail is reported as
// an error rather than repaired: it means history already acknowledged
// was lost, and silently dropping it would be worse than refusing to
// start.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	headerSize = 8        // 4B length + 4B crc
	bodyMeta   = 9        // 8B seq + 1B kind
	maxRecord  = 64 << 20 // guards recovery against garbage record lengths
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Params tune a Store.
type Params struct {
	// NoGroupCommit makes every Append write and fsync its own record —
	// the serial baseline the restart benchmark compares group commit
	// against. Correct, just slow under concurrency.
	NoGroupCommit bool
	// NoSync skips fsync entirely. Tests only: a crash loses
	// acknowledged records.
	NoSync bool
	// MaxBatch bounds the records drained into one group commit
	// (default 4096).
	MaxBatch int
}

// Record is one recovered journal entry.
type Record struct {
	Seq  uint64
	Kind byte
	Data []byte
}

// Recovery is what Open found on disk: the newest valid snapshot (nil
// payload if none) and every durable record sequenced after it, in order.
type Recovery struct {
	// SnapshotSeq is the sequence the snapshot covers; 0 with no snapshot.
	SnapshotSeq uint64
	// Snapshot is the snapshot payload, nil if none was recovered.
	Snapshot []byte
	// Records are the records with Seq > SnapshotSeq, in sequence order.
	Records []Record
	// TornBytes counts bytes truncated from the final segment's tail — a
	// record a crash left half-written. 0 on a clean log.
	TornBytes int64
}

// Stats is a snapshot of the store's commit counters.
type Stats struct {
	// Appends counts records durably appended; Commits counts the fsync
	// batches that carried them. Appends/Commits is the group-commit
	// amortization ratio.
	Appends uint64
	Commits uint64
}

type appendReq struct {
	seq  uint64
	kind byte
	data []byte
	done chan error
}

// Store is an open journal directory. Methods are safe for concurrent
// use.
type Store struct {
	dir    string
	params Params

	mu      sync.Mutex
	f       *os.File
	nextSeq uint64
	snapSeq uint64
	queue   []appendReq
	closed  bool
	stats   Stats

	kick chan struct{}
	done chan struct{}
}

// Open opens (or creates) the store directory, recovers its durable
// state, and readies it for appends. The returned Recovery holds the
// newest valid snapshot and the record tail to replay after it.
func Open(dir string, params Params) (*Store, *Recovery, error) {
	if params.MaxBatch <= 0 {
		params.MaxBatch = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec, lastSeq, activePath, err := recoverDir(dir)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:     dir,
		params:  params,
		nextSeq: lastSeq + 1,
		snapSeq: rec.SnapshotSeq,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if activePath == "" {
		activePath = filepath.Join(dir, segmentName(s.nextSeq))
	}
	f, err := os.OpenFile(activePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s.f = f
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, err
	}
	if !params.NoGroupCommit {
		go s.committer()
	}
	return s, rec, nil
}

// Append durably appends one record and returns its sequence number. It
// returns only after the record is fsynced (see the package durability
// contract); concurrent Appends are group-committed.
func (s *Store) Append(kind byte, data []byte) (uint64, error) {
	seq, done, err := s.AppendAsync(kind, data)
	if err != nil {
		return 0, err
	}
	return seq, <-done
}

// AppendAsync stages one record for the next group commit and returns
// its assigned sequence number immediately; the channel delivers the
// commit outcome. Sequence numbers are assigned in call order, so a
// single-threaded caller that must keep its journal order equal to its
// apply order can stage records inline and wait for durability later
// (merlind's apply loop does exactly this).
func (s *Store) AppendAsync(kind byte, data []byte) (uint64, <-chan error, error) {
	if len(data) > maxRecord-bodyMeta {
		return 0, nil, fmt.Errorf("journal: record of %d bytes exceeds the %d-byte limit", len(data), maxRecord-bodyMeta)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, nil, fmt.Errorf("journal: store is closed")
	}
	seq := s.nextSeq
	s.nextSeq++
	done := make(chan error, 1)
	if s.params.NoGroupCommit {
		err := s.writeLocked([]appendReq{{seq: seq, kind: kind, data: data}})
		s.mu.Unlock()
		done <- err
		return seq, done, err
	}
	s.queue = append(s.queue, appendReq{seq: seq, kind: kind, data: data, done: done})
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
	return seq, done, nil
}

// committer drains staged appends into one write + one fsync per batch.
func (s *Store) committer() {
	defer close(s.done)
	for {
		<-s.kick
		for {
			s.mu.Lock()
			if len(s.queue) == 0 {
				closed := s.closed
				s.mu.Unlock()
				if closed {
					return
				}
				break
			}
			n := len(s.queue)
			if n > s.params.MaxBatch {
				n = s.params.MaxBatch
			}
			batch := s.queue[:n:n]
			s.queue = append([]appendReq(nil), s.queue[n:]...)
			err := s.writeLocked(batch)
			s.mu.Unlock()
			for _, r := range batch {
				r.done <- err
			}
		}
	}
}

// writeLocked frames and writes a batch (sequences assigned at stage
// time), then fsyncs once. Callers hold s.mu.
func (s *Store) writeLocked(batch []appendReq) error {
	var buf []byte
	for _, r := range batch {
		buf = appendFrame(buf, r.seq, r.kind, r.data)
	}
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if !s.params.NoSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	s.stats.Appends += uint64(len(batch))
	s.stats.Commits++
	return nil
}

// Snapshot atomically persists a snapshot payload covering every record
// with sequence ≤ seq, rotates the live segment, and prunes segments the
// snapshot fully covers. After a successful Snapshot, recovery starts
// from this payload and replays only records sequenced after seq.
func (s *Store) Snapshot(seq uint64, payload []byte) error {
	if len(payload) > maxRecord-bodyMeta {
		return fmt.Errorf("journal: snapshot of %d bytes exceeds the %d-byte limit", len(payload), maxRecord-bodyMeta)
	}
	tmp := filepath.Join(s.dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(appendFrame(nil, seq, 0, payload)); err != nil {
		f.Close()
		return err
	}
	if !s.params.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	final := filepath.Join(s.dir, snapshotName(seq))
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("journal: store is closed")
	}
	if seq > s.snapSeq {
		s.snapSeq = seq
	}
	// Rotate: start a fresh segment at the next sequence so prior
	// segments become immutable and prunable.
	if err := s.f.Close(); err != nil {
		return err
	}
	nf, err := os.OpenFile(filepath.Join(s.dir, segmentName(s.nextSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.f = nf
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.pruneLocked()
	return nil
}

// pruneLocked removes segments whose every record the latest snapshot
// covers, and snapshots older than the latest. A segment is covered when
// the next segment starts at or before snapSeq+1 — every record in it is
// then ≤ snapSeq. Callers hold s.mu.
func (s *Store) pruneLocked() {
	segs, snaps, _ := listStore(s.dir)
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].seq <= s.snapSeq+1 {
			os.Remove(segs[i].path)
		}
	}
	for _, sn := range snaps {
		if sn.seq < s.snapSeq {
			os.Remove(sn.path)
		}
	}
	syncDir(s.dir)
}

// LastSeq returns the highest assigned sequence number.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq - 1
}

// Stats returns the commit counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close flushes staged appends and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if !s.params.NoGroupCommit {
		select {
		case s.kick <- struct{}{}:
		default:
		}
		<-s.done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// appendFrame appends one framed record to buf.
func appendFrame(buf []byte, seq uint64, kind byte, data []byte) []byte {
	body := make([]byte, bodyMeta+len(data))
	binary.LittleEndian.PutUint64(body, seq)
	body[8] = kind
	copy(body[bodyMeta:], data)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// scanSegment reads every valid record frame from a segment. It returns
// the records, the offset of the first invalid byte (== file size on a
// clean segment), and whether the scan stopped early on a bad frame.
func scanSegment(path string) (recs []Record, validEnd int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	off := int64(0)
	for int64(len(data))-off >= headerSize {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n < bodyMeta || n > maxRecord || off+headerSize+n > int64(len(data)) {
			return recs, off, true, nil
		}
		body := data[off+headerSize : off+headerSize+n]
		if crc32.Checksum(body, crcTable) != crc {
			return recs, off, true, nil
		}
		recs = append(recs, Record{
			Seq:  binary.LittleEndian.Uint64(body[0:8]),
			Kind: body[8],
			Data: append([]byte(nil), body[bodyMeta:]...),
		})
		off += headerSize + n
	}
	return recs, off, off != int64(len(data)), nil
}

type storeFile struct {
	seq  uint64
	path string
}

// listStore enumerates segments and snapshots, each sorted by sequence.
func listStore(dir string) (segs, snaps []storeFile, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if seq, err := strconv.ParseUint(name[4:len(name)-4], 16, 64); err == nil {
				segs = append(segs, storeFile{seq, filepath.Join(dir, name)})
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if seq, err := strconv.ParseUint(name[5:len(name)-5], 16, 64); err == nil {
				snaps = append(snaps, storeFile{seq, filepath.Join(dir, name)})
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	return segs, snaps, nil
}

// recoverDir loads the newest valid snapshot and the record tail after it.
func recoverDir(dir string) (*Recovery, uint64, string, error) {
	segs, snaps, err := listStore(dir)
	if err != nil {
		return nil, 0, "", err
	}
	rec := &Recovery{}
	// Newest snapshot whose frame validates wins; torn or corrupt
	// snapshots (a crash mid-Snapshot before the rename was durable can
	// leave one) fall back to the previous.
	for i := len(snaps) - 1; i >= 0; i-- {
		frames, _, torn, err := scanSegment(snaps[i].path)
		if err != nil {
			return nil, 0, "", err
		}
		if torn || len(frames) != 1 || frames[0].Seq != snaps[i].seq {
			continue
		}
		rec.SnapshotSeq = frames[0].Seq
		rec.Snapshot = frames[0].Data
		break
	}
	lastSeq := rec.SnapshotSeq
	for i, seg := range segs {
		recs, validEnd, torn, err := scanSegment(seg.path)
		if err != nil {
			return nil, 0, "", err
		}
		if torn {
			if i != len(segs)-1 {
				return nil, 0, "", fmt.Errorf("journal: segment %s is corrupt mid-log (acknowledged history lost)", seg.path)
			}
			// Torn tail of the final segment: a half-written record from
			// the commit the crash interrupted. Truncate so appends
			// resume at a clean frame boundary.
			info, err := os.Stat(seg.path)
			if err != nil {
				return nil, 0, "", err
			}
			rec.TornBytes = info.Size() - validEnd
			if err := os.Truncate(seg.path, validEnd); err != nil {
				return nil, 0, "", err
			}
		}
		for _, r := range recs {
			if r.Seq <= rec.SnapshotSeq {
				continue
			}
			if r.Seq != lastSeq+1 {
				return nil, 0, "", fmt.Errorf("journal: sequence gap: record %d follows %d in %s", r.Seq, lastSeq, seg.path)
			}
			lastSeq = r.Seq
			rec.Records = append(rec.Records, r)
		}
	}
	active := ""
	if len(segs) > 0 {
		active = segs[len(segs)-1].path
	}
	return rec, lastSeq, active, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%016x.log", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }
