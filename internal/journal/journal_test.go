package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// reopen closes nothing — it opens dir fresh and fails the test on error.
func reopen(t *testing.T, dir string, p Params) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func mustAppend(t *testing.T, s *Store, kind byte, data []byte) uint64 {
	t.Helper()
	seq, err := s.Append(kind, data)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return seq
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := reopen(t, dir, Params{})
	if rec.Snapshot != nil || rec.SnapshotSeq != 0 || len(rec.Records) != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh store recovered non-empty state: %+v", rec)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		data := []byte(fmt.Sprintf("payload-%d", i))
		if i%5 == 0 {
			data = nil // empty payloads must round-trip too
		}
		seq := mustAppend(t, s, byte(1+i%3), data)
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d, want %d", i, seq, i+1)
		}
		want = append(want, Record{Seq: seq, Kind: byte(1 + i%3), Data: data})
	}
	if got := s.LastSeq(); got != 20 {
		t.Fatalf("LastSeq = %d, want 20", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2 := reopen(t, dir, Params{})
	defer s2.Close()
	if rec2.TornBytes != 0 {
		t.Fatalf("clean log recovered TornBytes = %d", rec2.TornBytes)
	}
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i, r := range rec2.Records {
		if r.Seq != want[i].Seq || r.Kind != want[i].Kind || !bytes.Equal(r.Data, want[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	// Appends resume after the recovered tail.
	if seq := mustAppend(t, s2, 9, []byte("after")); seq != 21 {
		t.Fatalf("post-recovery append assigned seq %d, want 21", seq)
	}
}

func TestGroupCommitAmortizes(t *testing.T) {
	dir := t.TempDir()
	s, _ := reopen(t, dir, Params{})
	defer s.Close()

	// Stage a burst from one goroutine, then wait: while the committer is
	// inside its first fsync the rest of the burst queues up, so later
	// batches must carry many records each.
	const n = 500
	waits := make([]<-chan error, 0, n)
	for i := 0; i < n; i++ {
		_, done, err := s.AppendAsync(1, []byte("burst"))
		if err != nil {
			t.Fatalf("AppendAsync: %v", err)
		}
		waits = append(waits, done)
	}
	for i, done := range waits {
		if err := <-done; err != nil {
			t.Fatalf("append %d commit: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Appends != n {
		t.Fatalf("Stats.Appends = %d, want %d", st.Appends, n)
	}
	if st.Commits == 0 || st.Commits >= n/2 {
		t.Fatalf("group commit did not amortize: %d commits for %d appends", st.Commits, n)
	}

	// Concurrent appenders: every append durable, sequences dense.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Append(2, []byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("concurrent Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := reopen(t, dir, Params{})
	if len(rec.Records) != n+400 {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n+400)
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d — sequence not dense", i, r.Seq)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := reopen(t, dir, Params{})
	for i := 0; i < 5; i++ {
		mustAppend(t, s, 1, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the final record: chop 3 bytes off the segment, as a crash
	// mid-write would.
	segs, _, err := listStore(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("listStore: segs=%v err=%v", segs, err)
	}
	info, err := os.Stat(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0].path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, rec := reopen(t, dir, Params{})
	if len(rec.Records) != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", len(rec.Records))
	}
	if rec.TornBytes == 0 {
		t.Fatalf("TornBytes = 0, want > 0")
	}
	// The torn record's sequence is reassigned — it was never acked.
	if seq := mustAppend(t, s2, 1, []byte("retry")); seq != 5 {
		t.Fatalf("post-truncation append assigned seq %d, want 5", seq)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec2 := reopen(t, dir, Params{})
	if rec2.TornBytes != 0 {
		t.Fatalf("second recovery still torn: %d bytes", rec2.TornBytes)
	}
	if len(rec2.Records) != 5 || string(rec2.Records[4].Data) != "retry" {
		t.Fatalf("recovered records after retry = %v", rec2.Records)
	}
}

func TestSnapshotRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	s, _ := reopen(t, dir, Params{})
	for i := 1; i <= 10; i++ {
		mustAppend(t, s, 1, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if err := s.Snapshot(5, []byte("state@5")); err != nil {
		t.Fatalf("Snapshot(5): %v", err)
	}
	// Records 6–10 live before the rotation point, so the old segment
	// must survive the snapshot.
	segs, snaps, _ := listStore(dir)
	if len(segs) != 2 || len(snaps) != 1 {
		t.Fatalf("after Snapshot(5): %d segments, %d snapshots; want 2, 1", len(segs), len(snaps))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := reopen(t, dir, Params{})
	if rec.SnapshotSeq != 5 || string(rec.Snapshot) != "state@5" {
		t.Fatalf("recovered snapshot (%d, %q), want (5, state@5)", rec.SnapshotSeq, rec.Snapshot)
	}
	if len(rec.Records) != 5 || rec.Records[0].Seq != 6 || rec.Records[4].Seq != 10 {
		t.Fatalf("recovered tail %v, want seqs 6..10", rec.Records)
	}

	// A snapshot covering the whole log prunes old segments and the old
	// snapshot.
	if err := s2.Snapshot(10, []byte("state@10")); err != nil {
		t.Fatalf("Snapshot(10): %v", err)
	}
	segs, snaps, _ = listStore(dir)
	if len(segs) != 1 || len(snaps) != 1 {
		t.Fatalf("after Snapshot(10): %d segments, %d snapshots; want 1, 1", len(segs), len(snaps))
	}
	if snaps[0].seq != 10 {
		t.Fatalf("surviving snapshot covers seq %d, want 10", snaps[0].seq)
	}
	if seq := mustAppend(t, s2, 1, []byte("rec-11")); seq != 11 {
		t.Fatalf("post-snapshot append assigned seq %d, want 11", seq)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec2 := reopen(t, dir, Params{})
	if rec2.SnapshotSeq != 10 || len(rec2.Records) != 1 || rec2.Records[0].Seq != 11 {
		t.Fatalf("final recovery = snap %d + %d records, want snap 10 + [seq 11]", rec2.SnapshotSeq, len(rec2.Records))
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := reopen(t, dir, Params{})
	for i := 1; i <= 6; i++ {
		mustAppend(t, s, 1, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if err := s.Snapshot(3, []byte("state@3")); err != nil {
		t.Fatalf("Snapshot(3): %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crash mid-Snapshot can leave a newer snapshot file with a bad
	// frame; recovery must skip it and use the previous one.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(6)), []byte("garbage, not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := reopen(t, dir, Params{})
	if rec.SnapshotSeq != 3 || string(rec.Snapshot) != "state@3" {
		t.Fatalf("recovered snapshot (%d, %q), want fallback to (3, state@3)", rec.SnapshotSeq, rec.Snapshot)
	}
	if len(rec.Records) != 3 || rec.Records[0].Seq != 4 {
		t.Fatalf("recovered tail %v, want seqs 4..6", rec.Records)
	}
}

func TestMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	s, _ := reopen(t, dir, Params{})
	for i := 1; i <= 5; i++ {
		mustAppend(t, s, 1, []byte(fmt.Sprintf("rec-%d", i)))
	}
	// Rotate so the first segment is no longer final.
	if err := s.Snapshot(2, []byte("state@2")); err != nil {
		t.Fatalf("Snapshot(2): %v", err)
	}
	for i := 6; i <= 8; i++ {
		mustAppend(t, s, 1, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	segs, _, _ := listStore(dir)
	if len(segs) != 2 {
		t.Fatalf("want 2 segments, got %d", len(segs))
	}
	// Flip a byte mid-way through the first (non-final) segment: that is
	// acknowledged history, so recovery must refuse rather than repair.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Params{}); err == nil {
		t.Fatalf("Open succeeded on mid-log corruption; want error")
	}
}

func TestSequenceGapIsFatal(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = appendFrame(buf, 1, 1, []byte("one"))
	buf = appendFrame(buf, 3, 1, []byte("three")) // skipped seq 2
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Params{}); err == nil {
		t.Fatalf("Open succeeded on a sequence gap; want error")
	}
}

func TestNoGroupCommitSerialPath(t *testing.T) {
	dir := t.TempDir()
	s, _ := reopen(t, dir, Params{NoGroupCommit: true})
	for i := 0; i < 10; i++ {
		mustAppend(t, s, 1, []byte(fmt.Sprintf("rec-%d", i)))
	}
	st := s.Stats()
	if st.Appends != 10 || st.Commits != 10 {
		t.Fatalf("serial path stats = %+v, want one commit per append", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := reopen(t, dir, Params{})
	if len(rec.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rec.Records))
	}
}

func TestClosedStoreRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	s, _ := reopen(t, dir, Params{})
	mustAppend(t, s, 1, []byte("rec"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Append(1, []byte("late")); err == nil {
		t.Fatalf("Append on closed store succeeded")
	}
	if err := s.Snapshot(1, []byte("late")); err == nil {
		t.Fatalf("Snapshot on closed store succeeded")
	}
}
