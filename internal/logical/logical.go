// Package logical builds Merlin's logical topology (§3.2): for each policy
// statement, the directed product graph of the physical topology with the
// statement's path-constraint NFA. Paths from the statement's source vertex
// to its sink vertex correspond exactly to physical paths satisfying the
// path expression (Lemma 1 of the paper).
package logical

import (
	"fmt"

	"merlin/internal/regex"
	"merlin/internal/topo"
)

// Step is one element of a decoded physical path: a location plus the name
// of the packet-processing function applied there ("" for plain
// forwarding). A location appears in consecutive steps when several
// functions run at the same place.
type Step struct {
	Loc topo.NodeID
	Tag string
}

// Edge is a logical-topology edge. From/To are product-vertex indices.
// Entering records the location processed by the NFA transition (the "v"
// of the paper's construction); Link is the physical link the edge rides,
// or -1 for self-edges (u = v), source edges, and sink edges, which carry
// no bandwidth.
type Edge struct {
	ID       int
	From, To int
	Entering topo.NodeID
	Link     topo.LinkID
	Tag      string
}

// Graph is the product graph G_i for one statement.
type Graph struct {
	Topo   *topo.Topology
	NFA    *regex.EpsFree
	States int

	NumVerts     int
	Source, Sink int
	Edges        []Edge
	Out          [][]int32 // outgoing edge indices per vertex
	In           [][]int32 // incoming edge indices per vertex

	// TagSource, when non-nil, is the original tagged NFA of a graph built
	// from a minimized (tag-free) automaton; DecodePath uses it to recover
	// function placements.
	TagSource *regex.EpsFree
}

// vertex returns the product vertex index of (location, state).
func (g *Graph) vertex(loc topo.NodeID, state int) int {
	return int(loc)*g.States + state
}

// VertexOf is the exported form of vertex, for tests and diagnostics.
func (g *Graph) VertexOf(loc topo.NodeID, state int) int { return g.vertex(loc, state) }

// Decompose splits a product vertex back into (location, state). The
// second return is false for the source/sink vertices.
func (g *Graph) Decompose(v int) (topo.NodeID, int, bool) {
	if v >= g.NumVerts-2 {
		return 0, 0, false
	}
	return topo.NodeID(v / g.States), v % g.States, true
}

// Alphabet builds the location alphabet of a topology: one symbol per node
// name. Share one alphabet across all statements of a policy so NFAs and
// the topology agree on symbol numbering.
func Alphabet(t *topo.Topology) *regex.Alphabet {
	names := make([]string, t.NumNodes())
	for i, n := range t.Nodes() {
		names[i] = n.Name
	}
	return regex.NewAlphabet(names)
}

// Build constructs the product graph of the topology with an epsilon-free
// NFA whose alphabet was produced by Alphabet(t) (node IDs must equal
// symbol IDs; extra symbols beyond the topology's nodes — unplaced
// function names — simply never match).
func Build(t *topo.Topology, nfa *regex.EpsFree) *Graph {
	g := &Graph{
		Topo:   t,
		NFA:    nfa,
		States: nfa.States,
	}
	n := t.NumNodes()
	g.NumVerts = n*nfa.States + 2
	g.Source = n * nfa.States
	g.Sink = g.Source + 1
	addEdge := func(from, to int, entering topo.NodeID, link topo.LinkID, tag string) {
		g.Edges = append(g.Edges, Edge{ID: len(g.Edges), From: from, To: to, Entering: entering, Link: link, Tag: tag})
	}

	// Source edges: si -> (v, q') for every transition q0 --v--> q'.
	for _, tr := range nfa.Out[nfa.Start] {
		for v := 0; v < n; v++ {
			if tr.Set.Has(v) {
				addEdge(g.Source, g.vertex(topo.NodeID(v), tr.To), topo.NodeID(v), -1, tr.Tag)
			}
		}
	}
	// Interior edges: (u,q) -> (v,q') iff (u=v or (u,v) physical) and
	// q --v--> q'.
	for u := 0; u < n; u++ {
		for q := 0; q < nfa.States; q++ {
			from := g.vertex(topo.NodeID(u), q)
			for _, tr := range nfa.Out[q] {
				// Self-transition: stay at u, apply another NFA step.
				if tr.Set.Has(u) {
					addEdge(from, g.vertex(topo.NodeID(u), tr.To), topo.NodeID(u), -1, tr.Tag)
				}
				// Physical moves to neighbors in the transition's set.
				for _, lid := range t.Out(topo.NodeID(u)) {
					link := t.Link(lid)
					v := int(link.Dst)
					if tr.Set.Has(v) {
						addEdge(from, g.vertex(link.Dst, tr.To), link.Dst, lid, tr.Tag)
					}
				}
			}
			// Sink edges from accepting states.
			if nfa.Accept[q] {
				addEdge(from, g.Sink, -1, -1, "")
			}
		}
	}
	// Derive the adjacency lists from the edge list in one shot: count
	// degrees, carve both flat backing arrays, and fill in edge order
	// (identical to appending during construction, without the per-vertex
	// slice growth that used to dominate the compiler's allocations).
	total := len(g.Edges)
	g.Out = make([][]int32, g.NumVerts)
	g.In = make([][]int32, g.NumVerts)
	outDeg := make([]int32, g.NumVerts)
	inDeg := make([]int32, g.NumVerts)
	for i := range g.Edges {
		outDeg[g.Edges[i].From]++
		inDeg[g.Edges[i].To]++
	}
	outFlat := make([]int32, total)
	inFlat := make([]int32, total)
	off := int32(0)
	for v := 0; v < g.NumVerts; v++ {
		g.Out[v] = outFlat[off : off : off+outDeg[v]]
		off += outDeg[v]
	}
	off = 0
	for v := 0; v < g.NumVerts; v++ {
		g.In[v] = inFlat[off : off : off+inDeg[v]]
		off += inDeg[v]
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		g.Out[e.From] = append(g.Out[e.From], int32(i))
		g.In[e.To] = append(g.In[e.To], int32(i))
	}
	return g
}

// ShortestPath runs a 0/1-weight BFS from Source to Sink, where physical
// edges cost 1 hop and self/source/sink edges cost 0. It returns the edge
// IDs of a minimum-hop satisfying path, or nil if the statement's path
// constraint is unsatisfiable on this topology.
func (g *Graph) ShortestPath() []int {
	return g.shortestFrom(g.Source, g.Sink)
}

func (g *Graph) shortestFrom(src, dst int) []int {
	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.NumVerts)
	parent := make([]int32, g.NumVerts)
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
	}
	dist[src] = 0
	// 0/1 BFS with a deque.
	deque := make([]int, 0, g.NumVerts)
	deque = append(deque, src)
	for len(deque) > 0 {
		v := deque[0]
		deque = deque[1:]
		for _, eid := range g.Out[v] {
			e := g.Edges[eid]
			w := 0
			if e.Link >= 0 {
				w = 1
			}
			if dist[v]+w < dist[e.To] {
				dist[e.To] = dist[v] + w
				parent[e.To] = eid
				if w == 0 {
					deque = append([]int{e.To}, deque...)
				} else {
					deque = append(deque, e.To)
				}
			}
		}
	}
	if dist[dst] == inf {
		return nil
	}
	var rev []int
	for v := dst; v != src; {
		eid := parent[v]
		rev = append(rev, int(eid))
		v = g.Edges[eid].From
	}
	out := make([]int, len(rev))
	for i, eid := range rev {
		out[len(rev)-1-i] = eid
	}
	return out
}

// DecodePath converts a Source→Sink edge sequence into physical steps: one
// Step per NFA transition, carrying the entered location and function tag.
// The final sink edge is dropped.
func (g *Graph) DecodePath(edgeIDs []int) ([]Step, error) {
	var steps []Step
	cur := g.Source
	for _, eid := range edgeIDs {
		if eid < 0 || eid >= len(g.Edges) {
			return nil, fmt.Errorf("logical: edge %d out of range", eid)
		}
		e := g.Edges[eid]
		if e.From != cur {
			return nil, fmt.Errorf("logical: edge %d does not continue the path (at %d, edge from %d)", eid, cur, e.From)
		}
		cur = e.To
		if e.To == g.Sink {
			break
		}
		steps = append(steps, Step{Loc: e.Entering, Tag: e.Tag})
	}
	if cur != g.Sink {
		return nil, fmt.Errorf("logical: path does not reach the sink")
	}
	if g.TagSource != nil {
		return RecoverTags(g.TagSource, g.Topo, steps)
	}
	return steps, nil
}

// ExtractPath walks the chosen-edge set (as produced by the MIP: xe = 1)
// from Source to Sink and decodes it. Degenerate cycles not on the
// source-sink walk are ignored, matching the MIP's semantics.
func (g *Graph) ExtractPath(chosen func(edgeID int) bool) ([]Step, error) {
	var ids []int
	cur := g.Source
	visited := make(map[int]bool)
	for cur != g.Sink {
		if visited[cur] {
			return nil, fmt.Errorf("logical: chosen edges form a cycle at vertex %d", cur)
		}
		visited[cur] = true
		found := -1
		for _, eid := range g.Out[cur] {
			if chosen(int(eid)) {
				found = int(eid)
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("logical: chosen edges dead-end at vertex %d", cur)
		}
		ids = append(ids, found)
		cur = g.Edges[found].To
	}
	return g.DecodePath(ids)
}

// Locations projects steps to their locations, collapsing consecutive
// duplicates (several functions at one location visit it once physically).
func Locations(steps []Step) []topo.NodeID {
	return AppendLocations(nil, steps)
}

// AppendLocations is Locations appending into dst, for callers reusing a
// scratch buffer across many paths.
func AppendLocations(dst []topo.NodeID, steps []Step) []topo.NodeID {
	out := dst[:0]
	for _, s := range steps {
		if len(out) == 0 || out[len(out)-1] != s.Loc {
			out = append(out, s.Loc)
		}
	}
	return out
}

// Placements extracts the function placements from a decoded path: which
// location hosts each tagged transition, in path order.
type Placement struct {
	Fn  string
	Loc topo.NodeID
}

// PlacementsOf lists the function placements along a path.
func PlacementsOf(steps []Step) []Placement {
	var out []Placement
	for _, s := range steps {
		if s.Tag != "" {
			out = append(out, Placement{Fn: s.Tag, Loc: s.Loc})
		}
	}
	return out
}
