package logical

import (
	"testing"

	"merlin/internal/regex"
	"merlin/internal/topo"
)

// buildGraph compiles a path expression against a topology with the given
// function placement map and returns the product graph.
func buildGraph(t *testing.T, tp *topo.Topology, expr string, placement map[string][]string) *Graph {
	t.Helper()
	e := regex.MustParse(expr)
	if placement != nil {
		e = regex.Substitute(e, placement)
	}
	alpha := Alphabet(tp)
	nfa, err := regex.Compile(e, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return Build(tp, nfa.EpsFree())
}

// Figure 2 of the paper: h1 - s1 - s2 - h2 with middlebox m1 on s1;
// dpi ∈ {h1, h2, m1}, nat ∈ {m1}.
func fig2(t *testing.T) (*topo.Topology, *Graph) {
	tp := topo.Example(topo.Gbps)
	g := buildGraph(t, tp, "h1 .* dpi .* nat .* h2", map[string][]string{
		"dpi": {"h1", "h2", "m1"},
		"nat": {"m1"},
	})
	return tp, g
}

func TestFig2PathExists(t *testing.T) {
	tp, g := fig2(t)
	ids := g.ShortestPath()
	if ids == nil {
		t.Fatal("no satisfying path found")
	}
	steps, err := g.DecodePath(ids)
	if err != nil {
		t.Fatal(err)
	}
	locs := Locations(steps)
	names := make([]string, len(locs))
	for i, l := range locs {
		names[i] = tp.Node(l).Name
	}
	// Must start at h1, end at h2, and pass m1 (the only nat location).
	if names[0] != "h1" || names[len(names)-1] != "h2" {
		t.Fatalf("endpoints wrong: %v", names)
	}
	foundM1 := false
	for _, n := range names {
		if n == "m1" {
			foundM1 = true
		}
	}
	if !foundM1 {
		t.Fatalf("path avoids m1: %v", names)
	}
	// Placements must include dpi and nat, with nat at m1.
	pls := PlacementsOf(steps)
	var natLoc, dpiLoc string
	for _, p := range pls {
		switch p.Fn {
		case "nat":
			natLoc = tp.Node(p.Loc).Name
		case "dpi":
			dpiLoc = tp.Node(p.Loc).Name
		}
	}
	if natLoc != "m1" {
		t.Errorf("nat placed at %q, want m1", natLoc)
	}
	if dpiLoc == "" {
		t.Error("dpi not placed")
	}
}

func TestFig2LemmaOne(t *testing.T) {
	// Lemma 1: a location sequence satisfies the regex iff it lifts to a
	// source-sink path. Verify both directions on small walks.
	tp, g := fig2(t)
	_ = tp
	// The direct path h1 s1 s2 h2 does NOT satisfy (no nat at m1 visit),
	// so BFS restricted to those locations must fail. We verify the
	// contrapositive by checking the decoded shortest path always matches
	// the NFA.
	ids := g.ShortestPath()
	steps, err := g.DecodePath(ids)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(steps))
	for i, s := range steps {
		names[i] = g.Topo.Node(s.Loc).Name
	}
	// Reconstruct NFA acceptance via the regex package.
	e := regex.Substitute(regex.MustParse("h1 .* dpi .* nat .* h2"), map[string][]string{
		"dpi": {"h1", "h2", "m1"},
		"nat": {"m1"},
	})
	alpha := Alphabet(g.Topo)
	nfa, err := regex.Compile(e, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !nfa.Matches(names) {
		t.Fatalf("decoded path %v does not satisfy the regex", names)
	}
}

func TestUnsatisfiableConstraint(t *testing.T) {
	// nat can only run at m9, which does not exist in the topology.
	tp := topo.Example(topo.Gbps)
	g := buildGraph(t, tp, "h1 .* nat .* h2", map[string][]string{"nat": {"m9"}})
	if ids := g.ShortestPath(); ids != nil {
		t.Fatalf("expected no path, got %v", ids)
	}
}

func TestPlainPathIsShortest(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps) // s0-s1-s2, h1@s0, h2@s2
	g := buildGraph(t, tp, "h1 .* h2", nil)
	ids := g.ShortestPath()
	if ids == nil {
		t.Fatal("no path")
	}
	steps, err := g.DecodePath(ids)
	if err != nil {
		t.Fatal(err)
	}
	locs := Locations(steps)
	if len(locs) != 5 { // h1 s0 s1 s2 h2
		names := make([]string, len(locs))
		for i, l := range locs {
			names[i] = tp.Node(l).Name
		}
		t.Fatalf("path = %v, want 5 locations", names)
	}
}

func TestWaypointForcesDetour(t *testing.T) {
	// Two-path topology: force the statement through the wide path's l2.
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	g := buildGraph(t, tp, "h1 .* l2 .* h2", nil)
	steps, err := g.DecodePath(g.ShortestPath())
	if err != nil {
		t.Fatal(err)
	}
	sawL2 := false
	for _, s := range steps {
		if tp.Node(s.Loc).Name == "l2" {
			sawL2 = true
		}
	}
	if !sawL2 {
		t.Fatal("waypoint not honored")
	}
}

func TestAvoidanceConstraint(t *testing.T) {
	// !(.* r1 .*) on the two-path topology forces the wide (3-hop) path.
	tp := topo.TwoPath(400*topo.MBps, 100*topo.MBps)
	g := buildGraph(t, tp, "h1 (!(.* r1 .*)) h2", nil)
	// h1 (...) h2 concatenation semantics: the middle segment must avoid
	// r1. Simpler formulation: whole-path complement.
	g2 := buildGraph(t, tp, "!(.* r1 .*)", nil)
	for _, graph := range []*Graph{g, g2} {
		ids := graph.ShortestPath()
		if ids == nil {
			t.Fatal("no path avoiding r1")
		}
		steps, err := graph.DecodePath(ids)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range steps {
			if tp.Node(s.Loc).Name == "r1" {
				t.Fatalf("path visits r1 despite complement constraint")
			}
		}
	}
}

func TestEdgeLinkAnnotations(t *testing.T) {
	tp := topo.Linear(2, topo.Gbps)
	g := buildGraph(t, tp, ".*", nil)
	physEdges := 0
	for _, e := range g.Edges {
		if e.Link >= 0 {
			physEdges++
			l := tp.Link(e.Link)
			if l.Dst != e.Entering {
				t.Fatalf("edge %d: link dst %v != entering %v", e.ID, l.Dst, e.Entering)
			}
		}
	}
	if physEdges == 0 {
		t.Fatal("no physical edges in product graph")
	}
}

func TestExtractPathFromChosenSet(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	g := buildGraph(t, tp, "h1 .* h2", nil)
	ids := g.ShortestPath()
	chosen := make(map[int]bool, len(ids))
	for _, id := range ids {
		chosen[id] = true
	}
	steps, err := g.ExtractPath(func(e int) bool { return chosen[e] })
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.DecodePath(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(want) {
		t.Fatalf("extract mismatch: %d vs %d steps", len(steps), len(want))
	}
}

func TestExtractPathDeadEnd(t *testing.T) {
	tp := topo.Linear(3, topo.Gbps)
	g := buildGraph(t, tp, "h1 .* h2", nil)
	if _, err := g.ExtractPath(func(e int) bool { return false }); err == nil {
		t.Fatal("expected dead-end error")
	}
}

func TestDecompose(t *testing.T) {
	tp := topo.Linear(2, topo.Gbps)
	g := buildGraph(t, tp, ".*", nil)
	v := g.VertexOf(1, 0)
	loc, q, ok := g.Decompose(v)
	if !ok || loc != 1 || q != 0 {
		t.Fatalf("Decompose(%d) = %v,%v,%v", v, loc, q, ok)
	}
	if _, _, ok := g.Decompose(g.Source); ok {
		t.Fatal("source should not decompose")
	}
}

func TestIdentities(t *testing.T) {
	tp := topo.Linear(2, topo.Gbps)
	tab := tp.Identities()
	h1 := tp.MustLookup("h1")
	id, ok := tab.Resolve("h1")
	if !ok || id != h1 {
		t.Fatal("name resolution failed")
	}
	ident, ok := tab.Of(h1)
	if !ok {
		t.Fatal("Of failed")
	}
	if id2, ok := tab.Resolve(ident.MAC); !ok || id2 != h1 {
		t.Fatal("MAC resolution failed")
	}
	if id3, ok := tab.Resolve(ident.IP); !ok || id3 != h1 {
		t.Fatal("IP resolution failed")
	}
	if len(tab.MACs()) != 2 {
		t.Fatal("MACs count wrong")
	}
	if _, ok := tab.Resolve("unknown"); ok {
		t.Fatal("unknown identity resolved")
	}
}

func BenchmarkBuildFatTree4(b *testing.B) {
	tp := topo.FatTree(4, topo.Gbps)
	e := regex.MustParse(".*")
	alpha := Alphabet(tp)
	nfa, err := regex.Compile(e, alpha)
	if err != nil {
		b.Fatal(err)
	}
	ef := nfa.EpsFree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(tp, ef)
	}
}

func BenchmarkShortestPathFatTree4(b *testing.B) {
	tp := topo.FatTree(4, topo.Gbps)
	g := func() *Graph {
		e := regex.MustParse("h0_0_0 .* h1_0_0")
		alpha := Alphabet(tp)
		nfa, _ := regex.Compile(e, alpha)
		return Build(tp, nfa.EpsFree())
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.ShortestPath() == nil {
			b.Fatal("no path")
		}
	}
}
