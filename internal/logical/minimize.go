package logical

import (
	"fmt"
	"sort"

	"merlin/internal/regex"
	"merlin/internal/topo"
)

// BuildMinimized constructs the product graph from the Hopcroft-minimized
// DFA of the path expression instead of the raw Thompson NFA. Minimized
// automata are typically several times smaller, which shrinks the MIP the
// provisioner must solve. Because determinization discards function tags,
// the original tagged NFA is kept on the graph and DecodePath re-derives
// placements by simulating it over decoded paths.
func BuildMinimized(t *topo.Topology, e regex.Expr, alpha *regex.Alphabet) (*Graph, error) {
	nfa, err := regex.Compile(e, alpha)
	if err != nil {
		return nil, err
	}
	min := nfa.Determinize().Minimize().EpsFree()
	g := Build(t, min).Prune()
	if regex.HasTags(e) {
		g.TagSource = nfa.EpsFree()
	}
	return g, nil
}

// BuildAnchored constructs the product graph for the intersection of the
// path expression with "src .* dst" — the anchoring the compiler applies
// when a statement's predicate (rather than its regex) pins the traffic's
// endpoints. Tags are recovered against the unanchored expression's NFA,
// which accepts every anchored path.
func BuildAnchored(t *topo.Topology, e regex.Expr, alpha *regex.Alphabet, src, dst string) (*Graph, error) {
	nfa, err := regex.Compile(e, alpha)
	if err != nil {
		return nil, err
	}
	anchor := regex.ConcatAll(regex.Sym{Name: src}, regex.Star{X: regex.Any{}}, regex.Sym{Name: dst})
	anchorNFA, err := regex.Compile(anchor, alpha)
	if err != nil {
		return nil, err
	}
	product := nfa.Determinize().Intersect(anchorNFA.Determinize()).Minimize().EpsFree()
	g := Build(t, product).Prune()
	if regex.HasTags(e) {
		g.TagSource = nfa.EpsFree()
	}
	return g, nil
}

// Prune removes vertices that are unreachable from the source or cannot
// reach the sink, along with their edges, returning a compacted graph.
// Paths and their decodings are unaffected (every source-sink path
// survives); only dead weight the MIP would otherwise carry is dropped.
func (g *Graph) Prune() *Graph {
	fwd := make([]bool, g.NumVerts)
	fwd[g.Source] = true
	stack := []int{g.Source}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.Out[v] {
			to := g.Edges[eid].To
			if !fwd[to] {
				fwd[to] = true
				stack = append(stack, to)
			}
		}
	}
	bwd := make([]bool, g.NumVerts)
	bwd[g.Sink] = true
	stack = append(stack[:0], g.Sink)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.In[v] {
			from := g.Edges[eid].From
			if !bwd[from] {
				bwd[from] = true
				stack = append(stack, from)
			}
		}
	}
	out := &Graph{
		Topo:      g.Topo,
		NFA:       g.NFA,
		States:    g.States,
		NumVerts:  g.NumVerts,
		Source:    g.Source,
		Sink:      g.Sink,
		TagSource: g.TagSource,
	}
	out.Out = make([][]int32, g.NumVerts)
	out.In = make([][]int32, g.NumVerts)
	for _, e := range g.Edges {
		if fwd[e.From] && bwd[e.From] && fwd[e.To] && bwd[e.To] {
			id := len(out.Edges)
			ne := e
			ne.ID = id
			out.Edges = append(out.Edges, ne)
			out.Out[e.From] = append(out.Out[e.From], int32(id))
			out.In[e.To] = append(out.In[e.To], int32(id))
		}
	}
	return out
}

// WithoutLinks returns the graph with every edge whose physical link
// satisfies drop removed, re-pruned. Because Prune preserves vertex
// numbering and renumbers surviving edges compactly in input order, the
// result of patching a (pruned) graph built on the full topology is
// byte-identical to building it cold on the degraded topology: a cold
// build enumerates the same edges minus the dropped links, in the same
// order, and prunes the same dead vertices. That identity is what lets
// the incremental compiler repair cached best-effort graphs in place on a
// link failure instead of rebuilding them.
func (g *Graph) WithoutLinks(drop func(topo.LinkID) bool) *Graph {
	out := &Graph{
		Topo:      g.Topo,
		NFA:       g.NFA,
		States:    g.States,
		NumVerts:  g.NumVerts,
		Source:    g.Source,
		Sink:      g.Sink,
		TagSource: g.TagSource,
	}
	out.Out = make([][]int32, g.NumVerts)
	out.In = make([][]int32, g.NumVerts)
	for _, e := range g.Edges {
		if e.Link >= 0 && drop(e.Link) {
			continue
		}
		id := len(out.Edges)
		ne := e
		ne.ID = id
		out.Edges = append(out.Edges, ne)
		out.Out[e.From] = append(out.Out[e.From], int32(id))
		out.In[e.To] = append(out.In[e.To], int32(id))
	}
	return out.Prune()
}

// RecoverTags simulates the tagged epsilon-free NFA over the location
// sequence of a decoded path and assigns function tags to each step. The
// location sequence must be in the NFA's language (guaranteed when the
// path came from a product graph over an equivalent automaton); otherwise
// an error is returned.
func RecoverTags(ef *regex.EpsFree, t *topo.Topology, steps []Step) ([]Step, error) {
	n := len(steps)
	// frontier[i] = set of NFA states reachable after consuming i symbols;
	// parent[(i+1, q')] = (q, tag) used to reach q'.
	type parentKey struct {
		pos   int
		state int
	}
	type parentVal struct {
		state int
		tag   string
	}
	parents := make(map[parentKey]parentVal)
	// Frontiers iterate in ascending state order: map iteration order
	// would otherwise pick different (equally valid) parents run to run,
	// making recovered placements nondeterministic.
	inFrontier := make([]bool, ef.States)
	inFrontier[ef.Start] = true
	frontier := []int{ef.Start}
	for i := 0; i < n; i++ {
		sym := int(steps[i].Loc)
		inNext := make([]bool, ef.States)
		var next []int
		sort.Ints(frontier)
		for _, q := range frontier {
			for _, tr := range ef.Out[q] {
				if !tr.Set.Has(sym) {
					continue
				}
				if !inNext[tr.To] {
					inNext[tr.To] = true
					next = append(next, tr.To)
					parents[parentKey{i + 1, tr.To}] = parentVal{state: q, tag: tr.Tag}
				} else if tr.Tag != "" {
					// Prefer tagged transitions so placements are not
					// silently dropped when both tagged and untagged
					// transitions reach the same state.
					parents[parentKey{i + 1, tr.To}] = parentVal{state: q, tag: tr.Tag}
				}
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("logical: path leaves the tagged NFA's language at step %d (%s)",
				i, t.Node(steps[i].Loc).Name)
		}
		frontier = next
	}
	final := -1
	sort.Ints(frontier)
	for _, q := range frontier {
		if ef.Accept[q] {
			final = q
			break
		}
	}
	if final < 0 {
		return nil, fmt.Errorf("logical: path is not accepted by the tagged NFA")
	}
	out := make([]Step, n)
	copy(out, steps)
	for i := n; i > 0; i-- {
		pv := parents[parentKey{i, final}]
		out[i-1].Tag = pv.tag
		final = pv.state
	}
	return out, nil
}
