package lp

import (
	"math"
	"sort"
)

// This file implements the default engine: a bounded-variable revised
// simplex over a compressed-sparse-column constraint matrix. The basis
// inverse is never formed; it is represented as a product of eta matrices
// (the classic product-form-of-the-inverse) rebuilt from scratch every
// refactorEvery pivots. Pricing computes reduced costs column-by-column
// over nonzeros only, so an iteration costs O(nnz + eta-file) instead of
// the dense tableau's O(rows × cols). Merlin's multi-commodity-flow
// matrices carry ~3 nonzeros per column, which is where the Fig. 8 /
// Table 7 speedups come from.
//
// Feasibility is reached with a composite ("artificial-free") phase 1:
// basic variables outside their bounds get temporarily relaxed bounds and
// a ±1 cost pushing them back inside, and are restored the moment they
// re-enter their range. Because the scheme starts from any basis, it
// doubles as the warm-start path: branch and bound hands each child node
// its parent's optimal basis, which is typically primal infeasible in a
// single row after the branching bound tightens, and phase 1 repairs it in
// a handful of pivots instead of re-solving from the all-artificial basis.

const (
	refactorEvery = 100   // pivots between basis refactorizations
	etaDrop       = 1e-13 // magnitude below which eta entries are dropped
)

// Basis captures the simplex basis of a solved model. It is opaque and
// immutable; pass it to Params.Warm to warm-start a re-solve of a model
// with the same variables and constraints (bounds and costs may differ).
type Basis struct {
	m, n int
	cols []int32 // basic column per row
	stat []vstat // status per column
}

// cscMat is a compressed-sparse-column matrix.
type cscMat struct {
	colPtr []int32
	rowIdx []int32
	val    []float64
}

func (a *cscMat) col(j int) ([]int32, []float64) {
	s, e := a.colPtr[j], a.colPtr[j+1]
	return a.rowIdx[s:e], a.val[s:e]
}

func (a *cscMat) colNnz(j int) int { return int(a.colPtr[j+1] - a.colPtr[j]) }

// etaFile is the product-form representation of the basis inverse:
// B^{-1} = E_k ··· E_1. Each eta differs from the identity in one column
// (its pivot row's), stored flat for cache-friendly FTRAN/BTRAN sweeps.
type etaFile struct {
	pivRow []int32
	start  []int32 // len(pivRow)+1 offsets into rows/vals
	rows   []int32
	vals   []float64 // entry for the pivot row holds 1/pivot, others -d_i/pivot
}

func (ef *etaFile) reset() {
	ef.pivRow = ef.pivRow[:0]
	if len(ef.start) == 0 {
		ef.start = append(ef.start, 0)
	}
	ef.start = ef.start[:1]
	ef.rows = ef.rows[:0]
	ef.vals = ef.vals[:0]
}

// push appends the eta matrix for pivoting column d (= B^{-1}a_enter) into
// row r.
func (ef *etaFile) push(d []float64, r int) {
	piv := d[r]
	ef.pivRow = append(ef.pivRow, int32(r))
	for i, v := range d {
		if i == r || v == 0 {
			continue
		}
		if math.Abs(v) <= etaDrop {
			continue
		}
		ef.rows = append(ef.rows, int32(i))
		ef.vals = append(ef.vals, -v/piv)
	}
	ef.rows = append(ef.rows, int32(r))
	ef.vals = append(ef.vals, 1/piv)
	ef.start = append(ef.start, int32(len(ef.rows)))
}

// ftran applies B^{-1} to v in place (solve Bx = v).
func (ef *etaFile) ftran(v []float64) {
	for e := 0; e < len(ef.pivRow); e++ {
		r := ef.pivRow[e]
		vr := v[r]
		if vr == 0 {
			continue
		}
		for k := ef.start[e]; k < ef.start[e+1]; k++ {
			i := ef.rows[k]
			if i == r {
				v[i] = ef.vals[k] * vr
			} else {
				v[i] += ef.vals[k] * vr
			}
		}
	}
}

// btran applies B^{-T} to y in place (solve B^T x = y).
func (ef *etaFile) btran(y []float64) {
	for e := len(ef.pivRow) - 1; e >= 0; e-- {
		r := ef.pivRow[e]
		sum := 0.0
		for k := ef.start[e]; k < ef.start[e+1]; k++ {
			sum += ef.vals[k] * y[ef.rows[k]]
		}
		y[r] = sum
	}
}

// revised holds the sparse working state. Column layout matches the dense
// engine: structural | slacks (one per LE/GE row) | artificials (one per
// row). Artificials are fixed at [0,0]; the composite phase 1 relaxes them
// while they carry an initial residual.
type revised struct {
	m, n           int
	A              cscMat
	baseLo, baseUp []float64 // true bounds
	lo, up         []float64 // working bounds (relaxed for the violated set)
	cost2          []float64 // phase-2 cost (objective sign applied)
	p1cost         []float64 // composite phase-1 cost (±1 on violated columns)
	status         []vstat
	basis          []int32 // basic column per row
	rowOf          []int32 // basis row per column, -1 if nonbasic
	beta           []float64
	rhs            []float64
	viol           []int8  // +1 above upper bound, -1 below lower
	vlist          []int32 // columns currently violated (len 0 = feasible)
	broken         bool    // basis went numerically singular mid-run
	etas           etaFile
	pivots         int // pivots since last refactorization
	iters, maxIt   int
	nstruct, artAt int
	d, y           []float64 // dense scratch, length m
}

func newRevised(m *Model, maxIt int) *revised {
	nrows := len(m.cons)
	nslack := 0
	for _, c := range m.cons {
		if c.Sense != EQ {
			nslack++
		}
	}
	n := m.nvars + nslack + nrows
	s := &revised{
		m:       nrows,
		n:       n,
		baseLo:  make([]float64, n),
		baseUp:  make([]float64, n),
		lo:      make([]float64, n),
		up:      make([]float64, n),
		cost2:   make([]float64, n),
		p1cost:  make([]float64, n),
		status:  make([]vstat, n),
		basis:   make([]int32, nrows),
		rowOf:   make([]int32, n),
		beta:    make([]float64, nrows),
		rhs:     make([]float64, nrows),
		viol:    make([]int8, n),
		maxIt:   maxIt,
		nstruct: m.nvars,
		artAt:   m.nvars + nslack,
		d:       make([]float64, nrows),
		y:       make([]float64, nrows),
	}
	copy(s.baseLo, m.lower)
	copy(s.baseUp, m.upper)
	sign := 1.0
	if m.maximize {
		sign = -1.0
	}
	for j := 0; j < m.nvars; j++ {
		s.cost2[j] = sign * m.cost[j]
	}

	// Count entries per column (duplicates included; merged below).
	cnt := make([]int32, n)
	for _, c := range m.cons {
		for _, t := range c.Terms {
			cnt[t.Var]++
		}
	}
	slackAt := m.nvars
	for _, c := range m.cons {
		if c.Sense != EQ {
			cnt[slackAt] = 1
			slackAt++
		}
	}
	for i := 0; i < nrows; i++ {
		cnt[s.artAt+i] = 1
	}
	colPtr := make([]int32, n+1)
	for j := 0; j < n; j++ {
		colPtr[j+1] = colPtr[j] + cnt[j]
	}
	nnz := colPtr[n]
	rowIdx := make([]int32, nnz)
	val := make([]float64, nnz)
	next := make([]int32, n)
	copy(next, colPtr[:n])
	slackAt = m.nvars
	for i, c := range m.cons {
		for _, t := range c.Terms {
			k := next[t.Var]
			rowIdx[k] = int32(i)
			val[k] = t.Coeff
			next[t.Var]++
		}
		switch c.Sense {
		case LE:
			k := next[slackAt]
			rowIdx[k] = int32(i)
			val[k] = 1
			next[slackAt]++
			s.baseUp[slackAt] = math.Inf(1)
			slackAt++
		case GE:
			k := next[slackAt]
			rowIdx[k] = int32(i)
			val[k] = -1
			next[slackAt]++
			s.baseUp[slackAt] = math.Inf(1)
			slackAt++
		}
		s.rhs[i] = c.RHS
		art := s.artAt + i
		k := next[art]
		rowIdx[k] = int32(i)
		val[k] = 1
		next[art]++
		// Artificials are fixed at zero; the composite phase 1 relaxes
		// them while they carry the initial residual.
		s.baseLo[art], s.baseUp[art] = 0, 0
	}
	// Merge duplicate (row, col) entries (constraints are filled in row
	// order, so duplicates are adjacent) and compact.
	w := int32(0)
	for j := 0; j < n; j++ {
		start, end := colPtr[j], colPtr[j+1]
		colPtr[j] = w
		for k := start; k < end; k++ {
			if w > colPtr[j] && rowIdx[w-1] == rowIdx[k] {
				val[w-1] += val[k]
				continue
			}
			rowIdx[w] = rowIdx[k]
			val[w] = val[k]
			w++
		}
	}
	colPtr[n] = w
	s.A = cscMat{colPtr: colPtr, rowIdx: rowIdx[:w], val: val[:w]}
	copy(s.lo, s.baseLo)
	copy(s.up, s.baseUp)
	return s
}

// coldStart installs the all-artificial basis with nonbasic variables at
// the bound closer to zero (matching the dense engine's start).
func (s *revised) coldStart() {
	for j := 0; j < s.artAt; j++ {
		if !math.IsInf(s.baseUp[j], 1) && math.Abs(s.baseUp[j]) < math.Abs(s.baseLo[j]) {
			s.status[j] = atUpper
		} else {
			s.status[j] = atLower
		}
		s.rowOf[j] = -1
	}
	for i := 0; i < s.m; i++ {
		art := s.artAt + i
		s.status[art] = basic
		s.basis[i] = int32(art)
		s.rowOf[art] = int32(i)
	}
}

// tryWarm installs a previously returned basis. It reports whether the
// basis matched the model's shape and was internally consistent.
func (s *revised) tryWarm(w *Basis) bool {
	if w == nil || w.m != s.m || w.n != s.n || len(w.cols) != s.m || len(w.stat) != s.n {
		return false
	}
	seen := make([]bool, s.n)
	for _, c := range w.cols {
		if c < 0 || int(c) >= s.n || seen[c] {
			return false
		}
		seen[c] = true
	}
	copy(s.basis, w.cols)
	for j := 0; j < s.n; j++ {
		if seen[j] {
			s.status[j] = basic
			continue
		}
		st := w.stat[j]
		if st != atUpper || math.IsInf(s.baseUp[j], 1) {
			st = atLower
		}
		if st == atLower && math.IsInf(s.baseLo[j], 0) {
			st = atUpper
		}
		s.status[j] = st
		s.rowOf[j] = -1
	}
	for i, c := range s.basis {
		s.rowOf[c] = int32(i)
	}
	return true
}

// refactor rebuilds the eta file from scratch for the current basis
// columns (choosing pivot rows greedily by magnitude, which may permute
// the basis' row assignment) and recomputes beta. It reports false if the
// basis is numerically singular.
func (s *revised) refactor() bool {
	s.etas.reset()
	s.pivots = 0
	if s.m == 0 {
		return true
	}
	cols := make([]int32, s.m)
	copy(cols, s.basis)
	// Sparsest columns first keeps eta fill-in low (slacks and
	// artificials are singletons and pivot cleanly).
	sort.Slice(cols, func(a, b int) bool {
		return s.A.colNnz(int(cols[a])) < s.A.colNnz(int(cols[b]))
	})
	assigned := make([]bool, s.m)
	newBasis := make([]int32, s.m)
	d := s.d
	for _, c := range cols {
		for i := range d {
			d[i] = 0
		}
		rows, vals := s.A.col(int(c))
		for k := range rows {
			d[rows[k]] = vals[k]
		}
		s.etas.ftran(d)
		best, bestMag := -1, tolPivot
		for r := 0; r < s.m; r++ {
			if assigned[r] {
				continue
			}
			if mag := math.Abs(d[r]); mag > bestMag {
				best, bestMag = r, mag
			}
		}
		if best < 0 {
			return false
		}
		s.etas.push(d, best)
		assigned[best] = true
		newBasis[best] = c
	}
	copy(s.basis, newBasis)
	for j := range s.rowOf {
		s.rowOf[j] = -1
	}
	for i, c := range s.basis {
		s.rowOf[c] = int32(i)
	}
	s.computeBeta()
	return true
}

// computeBeta solves B·beta = rhs - N·x_N from scratch.
func (s *revised) computeBeta() {
	t := s.d
	copy(t, s.rhs)
	for j := 0; j < s.n; j++ {
		if s.status[j] == basic {
			continue
		}
		v := s.nbValue(j)
		if v == 0 {
			continue
		}
		rows, vals := s.A.col(j)
		for k := range rows {
			t[rows[k]] -= vals[k] * v
		}
	}
	s.etas.ftran(t)
	copy(s.beta, t)
}

// nbValue returns the value of a nonbasic column.
func (s *revised) nbValue(j int) float64 {
	if s.status[j] == atUpper {
		return s.up[j]
	}
	return s.lo[j]
}

// value returns the current value of any column.
func (s *revised) value(j int) float64 {
	if s.status[j] == basic {
		return s.beta[s.rowOf[j]]
	}
	return s.nbValue(j)
}

// markViolations scans the basis for variables outside their true bounds,
// relaxes their working bounds so the current point stays representable,
// and gives them a unit phase-1 cost pushing them back inside.
func (s *revised) markViolations() {
	s.vlist = s.vlist[:0]
	for i := 0; i < s.m; i++ {
		j := s.basis[i]
		if s.beta[i] > s.baseUp[j]+tolFeas {
			s.viol[j] = 1
			s.lo[j], s.up[j] = s.baseUp[j], math.Inf(1)
			s.p1cost[j] = 1
		} else if s.beta[i] < s.baseLo[j]-tolFeas {
			s.viol[j] = -1
			s.lo[j], s.up[j] = math.Inf(-1), s.baseLo[j]
			s.p1cost[j] = -1
		} else {
			continue
		}
		s.vlist = append(s.vlist, j)
	}
}

// restore returns a previously violated column to its true bounds and
// clears its phase-1 cost.
func (s *revised) restore(j int32) {
	if s.status[j] != basic {
		// The column left the basis at one of its working bounds, which
		// coincides with a true bound; park it there.
		v := s.nbValue(int(j))
		if math.Abs(v-s.baseUp[j]) <= math.Abs(v-s.baseLo[j]) {
			s.status[j] = atUpper
		} else {
			s.status[j] = atLower
		}
	}
	s.lo[j], s.up[j] = s.baseLo[j], s.baseUp[j]
	s.p1cost[j] = 0
	s.viol[j] = 0
}

// sweepRestore restores every violated column that has re-entered its true
// range (or left the basis), reporting whether anything changed.
func (s *revised) sweepRestore() bool {
	changed := false
	for k := 0; k < len(s.vlist); {
		j := s.vlist[k]
		back := s.status[j] != basic
		if !back {
			b := s.beta[s.rowOf[j]]
			back = b >= s.baseLo[j]-tolFeas && b <= s.baseUp[j]+tolFeas
		}
		if back {
			s.restore(j)
			s.vlist[k] = s.vlist[len(s.vlist)-1]
			s.vlist = s.vlist[:len(s.vlist)-1]
			changed = true
		} else {
			k++
		}
	}
	return changed
}

// run iterates the revised simplex to optimality for the given cost
// vector. In composite mode (phase 1) it additionally restores violated
// columns as they regain feasibility and stops once none remain.
func (s *revised) run(cost []float64, composite bool) Status {
	noProgress := 0
	lastObj := math.Inf(1)
	bland := false
	for {
		if composite {
			if s.sweepRestore() {
				lastObj = math.Inf(1)
			}
			if len(s.vlist) == 0 {
				return Optimal
			}
		}
		s.iters++
		if s.iters > s.maxIt {
			return IterLimit
		}
		if s.pivots >= refactorEvery {
			if !s.refactor() {
				s.broken = true
				return IterLimit // caller checks broken and falls back to dense
			}
		}
		// BTRAN: y solves y^T B = c_B.
		y := s.y
		for i := 0; i < s.m; i++ {
			y[i] = cost[s.basis[i]]
		}
		s.etas.btran(y)
		// Pricing: reduced cost r_j = c_j - y·a_j over column nonzeros.
		enter := -1
		var dir float64
		bestScore := tolCost
		for j := 0; j < s.n; j++ {
			if s.status[j] == basic || s.lo[j] == s.up[j] {
				continue
			}
			r := cost[j]
			rows, vals := s.A.col(j)
			for k := range rows {
				if yv := y[rows[k]]; yv != 0 {
					r -= yv * vals[k]
				}
			}
			var score, d float64
			if s.status[j] == atLower && r < -tolCost {
				score, d = -r, 1
			} else if s.status[j] == atUpper && r > tolCost {
				score, d = r, -1
			} else {
				continue
			}
			if bland { // first eligible index
				enter, dir = j, d
				break
			}
			if score > bestScore {
				bestScore, enter, dir = score, j, d
			}
		}
		if enter < 0 {
			return Optimal
		}
		// FTRAN: d = B^{-1} a_enter.
		d := s.d
		for i := range d {
			d[i] = 0
		}
		rows, vals := s.A.col(enter)
		for k := range rows {
			d[rows[k]] = vals[k]
		}
		s.etas.ftran(d)
		// Ratio test over the working bounds.
		limit := s.up[enter] - s.lo[enter] // bound-flip distance
		leave := -1
		leaveToUpper := false
		for i := 0; i < s.m; i++ {
			a := dir * d[i]
			if a > tolPivot {
				lb := s.lo[s.basis[i]]
				if math.IsInf(lb, -1) {
					continue
				}
				room := (s.beta[i] - lb) / a
				if room < limit-tolPivot {
					limit, leave, leaveToUpper = room, i, false
				} else if room < limit+tolPivot && leave >= 0 && bland && s.basis[i] < s.basis[leave] {
					leave, leaveToUpper = i, false
				}
			} else if a < -tolPivot {
				ub := s.up[s.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				room := (ub - s.beta[i]) / -a
				if room < limit-tolPivot {
					limit, leave, leaveToUpper = room, i, true
				} else if room < limit+tolPivot && leave >= 0 && bland && s.basis[i] < s.basis[leave] {
					leave, leaveToUpper = i, true
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}
		if limit < 0 {
			limit = 0
		}
		if limit != 0 {
			for i := 0; i < s.m; i++ {
				if d[i] != 0 {
					s.beta[i] -= dir * limit * d[i]
				}
			}
		}
		if leave < 0 {
			// Bound flip: the entering variable crosses to its other bound.
			if dir > 0 {
				s.status[enter] = atUpper
			} else {
				s.status[enter] = atLower
			}
		} else {
			var entVal float64
			if dir > 0 {
				entVal = s.lo[enter] + limit
			} else {
				entVal = s.up[enter] - limit
			}
			leaving := s.basis[leave]
			if leaveToUpper {
				s.status[leaving] = atUpper
			} else {
				s.status[leaving] = atLower
			}
			s.rowOf[leaving] = -1
			s.etas.push(d, leave)
			s.basis[leave] = int32(enter)
			s.rowOf[enter] = int32(leave)
			s.status[enter] = basic
			s.beta[leave] = entVal
			s.pivots++
		}
		// Cycling guard: switch to Bland's rule after a long stall.
		obj := 0.0
		for i := 0; i < s.m; i++ {
			obj += cost[s.basis[i]] * s.beta[i]
		}
		if obj >= lastObj-1e-12 {
			noProgress++
			if noProgress > 500 {
				bland = true
			}
		} else {
			noProgress = 0
		}
		lastObj = obj
	}
}

// solveSparse solves the model with the sparse revised simplex.
func (m *Model) solveSparse(p Params) Solution {
	maxIt := p.MaxIters
	if maxIt == 0 {
		maxIt = 200000
	}
	s := newRevised(m, maxIt)
	warm := s.tryWarm(p.Warm)
	if !warm {
		s.coldStart()
	}
	if !s.refactor() {
		if !warm {
			// The all-artificial basis is an identity matrix; failing to
			// factor it means something is deeply wrong — use the dense
			// reference engine rather than guessing.
			return m.solveDense(p)
		}
		s.coldStart()
		if !s.refactor() {
			return m.solveDense(p)
		}
	}

	// Phase 1 (composite): repair any out-of-bound basics. Rechecked
	// after a fresh refactorization before concluding infeasibility, so a
	// stale eta file cannot prune a feasible model.
	for attempt := 0; ; attempt++ {
		s.markViolations()
		if len(s.vlist) == 0 {
			break
		}
		st := s.run(s.p1cost, true)
		if s.broken {
			return m.solveDense(p)
		}
		if st == IterLimit {
			return Solution{Status: IterLimit, Iters: s.iters}
		}
		if st == Unbounded {
			// A composite phase-1 objective is bounded by construction;
			// reaching here means numerical breakdown.
			return m.solveDense(p)
		}
		for _, j := range s.vlist {
			s.restore(j)
		}
		s.vlist = s.vlist[:0]
		if !s.refactor() {
			return m.solveDense(p)
		}
		feasible := true
		for i := 0; i < s.m; i++ {
			j := s.basis[i]
			if s.beta[i] > s.baseUp[j]+tolFeas || s.beta[i] < s.baseLo[j]-tolFeas {
				feasible = false
				break
			}
		}
		if feasible {
			break
		}
		if attempt >= 2 {
			return Solution{Status: Infeasible, Iters: s.iters}
		}
	}

	// Phase 2: the real objective.
	st := s.run(s.cost2, false)
	if s.broken {
		return m.solveDense(p)
	}
	sol := Solution{Status: st, Iters: s.iters}
	if st == Optimal {
		sol.X = make([]float64, m.nvars)
		for j := 0; j < m.nvars; j++ {
			sol.X[j] = s.value(j)
		}
		obj := 0.0
		for j := 0; j < m.nvars; j++ {
			obj += m.cost[j] * sol.X[j]
		}
		sol.Objective = obj
		sol.Basis = &Basis{
			m:    s.m,
			n:    s.n,
			cols: append([]int32(nil), s.basis...),
			stat: append([]vstat(nil), s.status...),
		}
	}
	return sol
}
