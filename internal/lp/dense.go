package lp

import "math"

// This file holds the original dense two-phase tableau simplex. It is kept
// as the Params{Dense: true} escape hatch and as the reference
// implementation the sparse revised simplex (sparse.go) is cross-checked
// against in tests: both must agree on status and objective.

// simplex holds the dense working state.
type simplex struct {
	m, n    int         // rows, total columns (structural+slack+artificial)
	tab     [][]float64 // m × n tableau (B^{-1}A)
	beta    []float64   // current values of basic variables, per row
	lower   []float64
	upper   []float64
	cost    []float64 // phase-2 cost
	status  []vstat
	basis   []int // basis[i] = column basic in row i
	nstruct int   // structural variable count
	nart    int   // artificial count
	iters   int
	maxIt   int
}

// value returns the current value of column j.
func (s *simplex) value(j int) float64 {
	switch s.status[j] {
	case atLower:
		return s.lower[j]
	case atUpper:
		return s.upper[j]
	default:
		for i, b := range s.basis {
			if b == j {
				return s.beta[i]
			}
		}
		return 0 // unreachable
	}
}

// solveDense solves the model with the dense two-phase tableau simplex.
func (m *Model) solveDense(p Params) Solution {
	maxIt := p.MaxIters
	if maxIt == 0 {
		maxIt = 200000
	}
	nrows := len(m.cons)
	// Column layout: structural | slacks | artificials.
	nslack := 0
	for _, c := range m.cons {
		if c.Sense != EQ {
			nslack++
		}
	}
	n := m.nvars + nslack + nrows // one artificial per row (possibly unused)
	s := &simplex{
		m:       nrows,
		n:       n,
		lower:   make([]float64, n),
		upper:   make([]float64, n),
		cost:    make([]float64, n),
		status:  make([]vstat, n),
		basis:   make([]int, nrows),
		beta:    make([]float64, nrows),
		nstruct: m.nvars,
		maxIt:   maxIt,
	}
	copy(s.lower, m.lower)
	copy(s.upper, m.upper)
	sign := 1.0
	if m.maximize {
		sign = -1.0
	}
	for j := 0; j < m.nvars; j++ {
		s.cost[j] = sign * m.cost[j]
	}
	s.tab = make([][]float64, nrows)
	for i := range s.tab {
		s.tab[i] = make([]float64, n)
	}
	slackAt := m.nvars
	artAt := m.nvars + nslack
	// Fill rows; give every slack bounds [0, inf).
	for i, c := range m.cons {
		row := s.tab[i]
		for _, t := range c.Terms {
			row[t.Var] += t.Coeff
		}
		switch c.Sense {
		case LE:
			row[slackAt] = 1
			s.upper[slackAt] = math.Inf(1)
			slackAt++
		case GE:
			row[slackAt] = -1
			s.upper[slackAt] = math.Inf(1)
			slackAt++
		}
	}
	// Nonbasic variables start at the bound closer to zero (all our
	// lower bounds are finite).
	for j := 0; j < artAt; j++ {
		if !math.IsInf(s.upper[j], 1) && math.Abs(s.upper[j]) < math.Abs(s.lower[j]) {
			s.status[j] = atUpper
		} else {
			s.status[j] = atLower
		}
	}
	// Compute initial residuals and install artificials as the basis.
	for i, c := range m.cons {
		resid := c.RHS
		for j := 0; j < artAt; j++ {
			if s.tab[i][j] != 0 {
				resid -= s.tab[i][j] * s.value(j)
			}
		}
		art := artAt + i
		if resid < 0 {
			// Negate the row (it is an equality after slack introduction)
			// so the artificial can enter with coefficient +1, keeping the
			// basis an identity submatrix as pricing assumes.
			for j := 0; j < artAt; j++ {
				s.tab[i][j] = -s.tab[i][j]
			}
			resid = -resid
		}
		s.tab[i][art] = 1
		s.lower[art] = 0
		s.upper[art] = math.Inf(1)
		s.status[art] = basic
		s.basis[i] = art
		s.beta[i] = resid
	}
	s.nart = nrows

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, n)
	for i := 0; i < nrows; i++ {
		phase1[artAt+i] = 1
	}
	st := s.run(phase1)
	if st == IterLimit {
		return Solution{Status: IterLimit, Iters: s.iters}
	}
	sum := 0.0
	for i, b := range s.basis {
		if b >= artAt {
			sum += s.beta[i]
		}
	}
	if sum > tolFeas {
		return Solution{Status: Infeasible, Iters: s.iters}
	}
	// Freeze artificials at zero so phase 2 cannot reuse them.
	for i := 0; i < nrows; i++ {
		a := artAt + i
		s.upper[a] = 0
		if s.status[a] != basic {
			s.status[a] = atLower
		}
	}

	// Phase 2: the real objective.
	st = s.run(s.cost)
	sol := Solution{Status: st, Iters: s.iters}
	if st == Optimal {
		sol.X = make([]float64, m.nvars)
		for j := 0; j < m.nvars; j++ {
			sol.X[j] = s.value(j)
		}
		obj := 0.0
		for j := 0; j < m.nvars; j++ {
			obj += m.cost[j] * sol.X[j]
		}
		sol.Objective = obj
	}
	return sol
}

// run iterates the bounded-variable primal simplex to optimality for the
// given cost vector.
func (s *simplex) run(cost []float64) Status {
	noProgress := 0
	lastObj := math.Inf(1)
	bland := false
	for {
		s.iters++
		if s.iters > s.maxIt {
			return IterLimit
		}
		// y = c_B per row; reduced cost r_j = c_j - Σ_i y_i T[i][j].
		y := make([]float64, s.m)
		for i, b := range s.basis {
			y[i] = cost[b]
		}
		// Pricing: pick entering column.
		enter := -1
		var dir float64
		bestScore := tolCost
		for j := 0; j < s.n; j++ {
			if s.status[j] == basic || s.lower[j] == s.upper[j] {
				continue
			}
			r := cost[j]
			for i := 0; i < s.m; i++ {
				if y[i] != 0 {
					r -= y[i] * s.tab[i][j]
				}
			}
			var score float64
			var d float64
			if s.status[j] == atLower && r < -tolCost {
				score, d = -r, 1
			} else if s.status[j] == atUpper && r > tolCost {
				score, d = r, -1
			} else {
				continue
			}
			if bland { // first eligible index
				enter, dir = j, d
				break
			}
			if score > bestScore {
				bestScore, enter, dir = score, j, d
			}
		}
		if enter < 0 {
			return Optimal // no improving column
		}
		// Ratio test.
		limit := s.upper[enter] - s.lower[enter] // bound flip distance
		leave := -1                              // row index of leaving basic
		leaveToUpper := false
		for i := 0; i < s.m; i++ {
			a := dir * s.tab[i][enter]
			if a > tolPivot {
				// basic i decreases toward its lower bound
				room := (s.beta[i] - s.lower[s.basis[i]]) / a
				if room < limit-tolPivot {
					limit, leave, leaveToUpper = room, i, false
				} else if room < limit+tolPivot && leave >= 0 && bland && s.basis[i] < s.basis[leave] {
					leave, leaveToUpper = i, false
				}
			} else if a < -tolPivot {
				ub := s.upper[s.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				room := (ub - s.beta[i]) / -a
				if room < limit-tolPivot {
					limit, leave, leaveToUpper = room, i, true
				} else if room < limit+tolPivot && leave >= 0 && bland && s.basis[i] < s.basis[leave] {
					leave, leaveToUpper = i, true
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}
		if limit < 0 {
			limit = 0
		}
		// Apply the move: basics shift by -dir*limit*column.
		if limit != 0 {
			for i := 0; i < s.m; i++ {
				if s.tab[i][enter] != 0 {
					s.beta[i] -= dir * limit * s.tab[i][enter]
				}
			}
		}
		if leave < 0 {
			// Bound flip: entering variable crosses to its other bound.
			if dir > 0 {
				s.status[enter] = atUpper
			} else {
				s.status[enter] = atLower
			}
		} else {
			// Pivot: entering becomes basic in row leave.
			entVal := s.value2(enter, dir, limit)
			leaving := s.basis[leave]
			if leaveToUpper {
				s.status[leaving] = atUpper
			} else {
				s.status[leaving] = atLower
			}
			s.basis[leave] = enter
			s.status[enter] = basic
			s.beta[leave] = entVal
			piv := s.tab[leave][enter]
			rowL := s.tab[leave]
			inv := 1 / piv
			for j := 0; j < s.n; j++ {
				if rowL[j] != 0 {
					rowL[j] *= inv
				}
			}
			for i := 0; i < s.m; i++ {
				if i == leave {
					continue
				}
				f := s.tab[i][enter]
				if f == 0 {
					continue
				}
				rowI := s.tab[i]
				for j := 0; j < s.n; j++ {
					if rowL[j] != 0 {
						rowI[j] -= f * rowL[j]
					}
				}
				rowI[enter] = 0 // exact zero to stop drift
			}
		}
		// Cycling guard: if the objective stalls for a long stretch,
		// switch to Bland's rule (which guarantees termination).
		obj := 0.0
		for i, b := range s.basis {
			obj += cost[b] * s.beta[i]
		}
		if obj >= lastObj-1e-12 {
			noProgress++
			if noProgress > 500 {
				bland = true
			}
		} else {
			noProgress = 0
		}
		lastObj = obj
	}
}

// value2 computes the entering variable's new value after moving limit from
// its current bound in direction dir.
func (s *simplex) value2(j int, dir, limit float64) float64 {
	if dir > 0 {
		return s.lower[j] + limit
	}
	return s.upper[j] - limit
}
