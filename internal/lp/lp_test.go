package lp

import (
	"math"
	"math/rand"
	"testing"
)

const eps = 1e-6

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-5*(1+math.Abs(b)) }

func TestTrivialMin(t *testing.T) {
	// min x s.t. x >= 3, x in [0, 10]
	m := NewModel()
	x := m.AddVar(0, 10, 1, "x")
	m.AddConstraint([]Term{{x, 1}}, GE, 3, "c")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.X[x], 3) || !approx(sol.Objective, 3) {
		t.Fatalf("x = %v obj = %v, want 3", sol.X[x], sol.Objective)
	}
}

func TestTwoVarLP(t *testing.T) {
	// Classic: max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Optimum at (2, 6) with value 36.
	m := NewModel()
	x := m.AddVar(0, math.Inf(1), 3, "x")
	y := m.AddVar(0, math.Inf(1), 5, "y")
	m.Maximize()
	m.AddConstraint([]Term{{x, 1}}, LE, 4, "c1")
	m.AddConstraint([]Term{{y, 2}}, LE, 12, "c2")
	m.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18, "c3")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 36) {
		t.Fatalf("obj = %v, want 36", sol.Objective)
	}
	if !approx(sol.X[x], 2) || !approx(sol.X[y], 6) {
		t.Fatalf("x,y = %v,%v want 2,6", sol.X[x], sol.X[y])
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + y = 5, x <= 2 → x=2? No: min, so any split works,
	// objective fixed at 5. Then minimize 2x + y: best x=0, y=5.
	m := NewModel()
	x := m.AddVar(0, 2, 2, "x")
	y := m.AddVar(0, math.Inf(1), 1, "y")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5, "sum")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 5) || !approx(sol.X[x], 0) || !approx(sol.X[y], 5) {
		t.Fatalf("got obj=%v x=%v y=%v", sol.Objective, sol.X[x], sol.X[y])
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 1, 1, "x")
	m.AddConstraint([]Term{{x, 1}}, GE, 2, "impossible")
	sol := m.Solve(Params{})
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 10, 1, "x")
	y := m.AddVar(0, 10, 1, "y")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5, "a")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 7, "b")
	sol := m.Solve(Params{})
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with no upper bound.
	m := NewModel()
	x := m.AddVar(0, math.Inf(1), 1, "x")
	m.Maximize()
	m.AddConstraint([]Term{{x, -1}}, LE, 0, "c") // -x <= 0, always true
	sol := m.Solve(Params{})
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestUpperBoundsRespected(t *testing.T) {
	// max x + y with x,y in [0,1] and x + y <= 1.5.
	m := NewModel()
	x := m.AddVar(0, 1, 1, "x")
	y := m.AddVar(0, 1, 1, "y")
	m.Maximize()
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 1.5, "cap")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 1.5) {
		t.Fatalf("obj = %v, want 1.5", sol.Objective)
	}
	if sol.X[x] > 1+eps || sol.X[y] > 1+eps {
		t.Fatalf("bounds violated: %v %v", sol.X[x], sol.X[y])
	}
}

func TestNonzeroLowerBounds(t *testing.T) {
	// min x + y with x in [2,10], y in [3,10], x + y >= 6 → (2,4) or (3,3): obj 6.
	m := NewModel()
	x := m.AddVar(2, 10, 1, "x")
	y := m.AddVar(3, 10, 1, "y")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 6, "c")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 6) {
		t.Fatalf("obj = %v, want 6", sol.Objective)
	}
	if sol.X[x] < 2-eps || sol.X[y] < 3-eps {
		t.Fatalf("lower bounds violated: %v %v", sol.X[x], sol.X[y])
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// A classically degenerate LP (Beale's example structure).
	m := NewModel()
	x1 := m.AddVar(0, math.Inf(1), -0.75, "x1")
	x2 := m.AddVar(0, math.Inf(1), 150, "x2")
	x3 := m.AddVar(0, math.Inf(1), -0.02, "x3")
	x4 := m.AddVar(0, math.Inf(1), 6, "x4")
	m.AddConstraint([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0, "c1")
	m.AddConstraint([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0, "c2")
	m.AddConstraint([]Term{{x3, 1}}, LE, 1, "c3")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, -0.05) {
		t.Fatalf("obj = %v, want -0.05", sol.Objective)
	}
}

func TestMaxFlowAsLP(t *testing.T) {
	// Max flow on a diamond: s->a (3), s->b (2), a->t (2), b->t (2), a->b (1).
	// Max flow = 4.
	m := NewModel()
	sa := m.AddVar(0, 3, 0, "sa")
	sb := m.AddVar(0, 2, 0, "sb")
	at := m.AddVar(0, 2, 0, "at")
	bt := m.AddVar(0, 2, 0, "bt")
	ab := m.AddVar(0, 1, 0, "ab")
	f := m.AddVar(0, math.Inf(1), 1, "f")
	m.Maximize()
	// conservation at a: sa = at + ab
	m.AddConstraint([]Term{{sa, 1}, {at, -1}, {ab, -1}}, EQ, 0, "a")
	// conservation at b: sb + ab = bt
	m.AddConstraint([]Term{{sb, 1}, {ab, 1}, {bt, -1}}, EQ, 0, "b")
	// f = sa + sb
	m.AddConstraint([]Term{{f, 1}, {sa, -1}, {sb, -1}}, EQ, 0, "src")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 4) {
		t.Fatalf("max flow = %v, want 4", sol.Objective)
	}
}

func TestMinMaxViaAuxVariable(t *testing.T) {
	// The min-max pattern the Merlin heuristics use: minimize z with
	// z >= x_i, Σx_i = 3, x_i <= 2 → optimal z = 1 (spread evenly).
	m := NewModel()
	z := m.AddVar(0, math.Inf(1), 1, "z")
	var xs []int
	for i := 0; i < 3; i++ {
		xs = append(xs, m.AddVar(0, 2, 0, "x"))
	}
	sum := make([]Term, 0, 3)
	for _, x := range xs {
		m.AddConstraint([]Term{{z, 1}, {x, -1}}, GE, 0, "zbound")
		sum = append(sum, Term{x, 1})
	}
	m.AddConstraint(sum, EQ, 3, "total")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 1) {
		t.Fatalf("minmax = %v, want 1", sol.Objective)
	}
}

func TestDuplicateTermsAreSummed(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 10, 1, "x")
	m.AddConstraint([]Term{{x, 1}, {x, 1}}, GE, 4, "2x>=4")
	sol := m.Solve(Params{})
	if sol.Status != Optimal || !approx(sol.X[x], 2) {
		t.Fatalf("got %v x=%v, want x=2", sol.Status, sol.X)
	}
}

func TestBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewModel()
	m.AddVar(5, 1, 0, "bad")
}

func TestUnknownVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewModel()
	m.AddConstraint([]Term{{3, 1}}, LE, 1, "bad")
}

// checkFeasible verifies that a solution satisfies every constraint and
// bound of the model within tolerance.
func checkFeasible(t *testing.T, m *Model, sol Solution) {
	t.Helper()
	for j := 0; j < m.NumVars(); j++ {
		lb, ub := m.Bounds(j)
		if sol.X[j] < lb-1e-5 || sol.X[j] > ub+1e-5 {
			t.Fatalf("var %d = %v outside [%v,%v]", j, sol.X[j], lb, ub)
		}
	}
	for _, c := range m.cons {
		lhs := 0.0
		for _, tm := range c.Terms {
			lhs += tm.Coeff * sol.X[tm.Var]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+1e-5 {
				t.Fatalf("constraint %q violated: %v > %v", c.Name, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-1e-5 {
				t.Fatalf("constraint %q violated: %v < %v", c.Name, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-5 {
				t.Fatalf("constraint %q violated: %v != %v", c.Name, lhs, c.RHS)
			}
		}
	}
}

// Property test: random feasible LPs — generate a random point, random
// constraints satisfied by it, then check the solver returns a feasible
// solution with objective no worse than the known point.
func TestRandomFeasibleLPs(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(6)
		m := NewModel()
		point := make([]float64, n)
		for j := 0; j < n; j++ {
			point[j] = r.Float64() * 5
			ub := point[j] + r.Float64()*5
			m.AddVar(0, ub, r.NormFloat64(), "v")
		}
		rows := 1 + r.Intn(6)
		for i := 0; i < rows; i++ {
			terms := make([]Term, 0, n)
			lhs := 0.0
			for j := 0; j < n; j++ {
				c := math.Round(r.NormFloat64() * 3)
				if c != 0 {
					terms = append(terms, Term{j, c})
					lhs += c * point[j]
				}
			}
			if len(terms) == 0 {
				continue
			}
			switch r.Intn(3) {
			case 0:
				m.AddConstraint(terms, LE, lhs+r.Float64(), "r")
			case 1:
				m.AddConstraint(terms, GE, lhs-r.Float64(), "r")
			default:
				m.AddConstraint(terms, EQ, lhs, "r")
			}
		}
		sol := m.Solve(Params{})
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v for feasible LP", trial, sol.Status)
		}
		checkFeasible(t, m, sol)
		// The known feasible point bounds the optimum from above (minimize).
		known := 0.0
		for j := 0; j < n; j++ {
			known += m.cost[j] * point[j]
		}
		if sol.Objective > known+1e-4 {
			t.Fatalf("trial %d: objective %v worse than known feasible %v", trial, sol.Objective, known)
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	// A transportation-style LP: 20 sources, 20 sinks.
	build := func() *Model {
		r := rand.New(rand.NewSource(5))
		m := NewModel()
		const k = 20
		vars := make([][]int, k)
		for i := range vars {
			vars[i] = make([]int, k)
			for j := range vars[i] {
				vars[i][j] = m.AddVar(0, math.Inf(1), 1+r.Float64(), "x")
			}
		}
		for i := 0; i < k; i++ {
			terms := make([]Term, k)
			for j := 0; j < k; j++ {
				terms[j] = Term{vars[i][j], 1}
			}
			m.AddConstraint(terms, EQ, 10, "supply")
		}
		for j := 0; j < k; j++ {
			terms := make([]Term, k)
			for i := 0; i < k; i++ {
				terms[i] = Term{vars[i][j], 1}
			}
			m.AddConstraint(terms, EQ, 10, "demand")
		}
		return m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := build()
		if sol := m.Solve(Params{}); sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
