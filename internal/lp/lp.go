// Package lp implements a linear-programming solver. The default engine is
// a sparse revised simplex (sparse.go): the constraint matrix is stored in
// compressed-sparse-column form, the basis inverse is maintained as a
// product-form eta file with periodic refactorization, and pricing walks
// only column nonzeros. A dense two-phase tableau simplex (dense.go) is
// kept behind Params{Dense: true} as an escape hatch and as the reference
// the sparse engine is cross-checked against. Together with package mip it
// stands in for the Gurobi optimizer the paper uses to provision bandwidth
// (§5).
//
// The solver minimizes c·x subject to linear constraints and per-variable
// bounds. It is exact enough for the multi-commodity-flow MIPs Merlin
// generates (equations 1–5 of the paper): tens of thousands of variables
// at the scales the benchmark harness exercises.
package lp

import (
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is a linear constraint Σ terms ∘ RHS.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
	Name  string
}

// Model is a linear program under construction. The zero value is usable.
type Model struct {
	nvars    int
	cost     []float64
	lower    []float64
	upper    []float64
	names    []string
	cons     []Constraint
	maximize bool
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// Clone returns a model sharing this one's constraints and names but with
// private cost and bound vectors, so SetCost/SetBounds on the clone leave
// the original untouched. Branch and bound solves node relaxations on
// clones — one per worker — which keeps concurrent node solves free of
// shared mutable state. The receiver must not grow (AddVar/AddConstraint)
// while clones are in use.
func (m *Model) Clone() *Model {
	c := *m
	c.cost = append([]float64(nil), m.cost...)
	c.lower = append([]float64(nil), m.lower...)
	c.upper = append([]float64(nil), m.upper...)
	return &c
}

// AddVar adds a variable with bounds [lb, ub] and objective coefficient
// cost, returning its index. ub may be math.Inf(1); lb must be finite
// (Merlin's formulations are all non-negative).
func (m *Model) AddVar(lb, ub, cost float64, name string) int {
	if math.IsInf(lb, 0) || math.IsNaN(lb) || math.IsNaN(ub) || ub < lb {
		panic(fmt.Sprintf("lp: invalid bounds [%v,%v] for %s", lb, ub, name))
	}
	id := m.nvars
	m.nvars++
	m.cost = append(m.cost, cost)
	m.lower = append(m.lower, lb)
	m.upper = append(m.upper, ub)
	m.names = append(m.names, name)
	return id
}

// SetCost changes a variable's objective coefficient.
func (m *Model) SetCost(v int, cost float64) { m.cost[v] = cost }

// SetBounds changes a variable's bounds.
func (m *Model) SetBounds(v int, lb, ub float64) {
	if ub < lb {
		panic(fmt.Sprintf("lp: invalid bounds [%v,%v]", lb, ub))
	}
	m.lower[v] = lb
	m.upper[v] = ub
}

// Bounds returns a variable's bounds.
func (m *Model) Bounds(v int) (lb, ub float64) { return m.lower[v], m.upper[v] }

// NumVars reports the number of variables.
func (m *Model) NumVars() int { return m.nvars }

// NumConstraints reports the number of constraints.
func (m *Model) NumConstraints() int { return len(m.cons) }

// VarName returns the name given to variable v.
func (m *Model) VarName(v int) string { return m.names[v] }

// Maximize flips the objective sense to maximization.
func (m *Model) Maximize() { m.maximize = true }

// Maximized reports whether the objective sense is maximization.
func (m *Model) Maximized() bool { return m.maximize }

// AddConstraint appends a constraint. Terms with duplicate variables are
// summed.
func (m *Model) AddConstraint(terms []Term, sense Sense, rhs float64, name string) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= m.nvars {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
	}
	m.cons = append(m.cons, Constraint{Terms: terms, Sense: sense, RHS: rhs, Name: name})
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	default:
		return "unknown"
	}
}

// Solution is the result of solving a model.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // values of the model's variables
	Iters     int
	// Basis captures the optimal simplex basis when the sparse engine
	// proved optimality; pass it back via Params.Warm to warm-start a
	// re-solve of the same model shape with modified bounds or costs
	// (branch and bound does exactly this per node).
	Basis *Basis
}

// Params tune the solver.
type Params struct {
	// MaxIters bounds total simplex iterations across both phases.
	// Zero means the default (200000).
	MaxIters int
	// Dense selects the original dense tableau simplex instead of the
	// sparse revised simplex — the escape hatch for debugging and for
	// cross-checking objectives.
	Dense bool
	// Warm, if non-nil, starts the sparse engine from a previously
	// returned basis instead of the all-artificial basis. Ignored when
	// the basis does not match the model's shape or Dense is set.
	Warm *Basis
}

const (
	tolPivot = 1e-9 // minimum pivot magnitude
	tolCost  = 1e-9 // reduced-cost optimality tolerance
	tolFeas  = 1e-7 // feasibility tolerance
)

// variable status in the simplex
type vstat int8

const (
	atLower vstat = iota
	atUpper
	basic
)

// Solve solves the model with the engine selected by p.
func (m *Model) Solve(p Params) Solution {
	if p.Dense {
		return m.solveDense(p)
	}
	return m.solveSparse(p)
}
