package lp

import (
	"math"
	"math/rand"
	"testing"
)

// buildRandomLP generates a random feasible LP around a known point, the
// same construction as TestRandomFeasibleLPs.
func buildRandomLP(r *rand.Rand) (*Model, []float64) {
	n := 2 + r.Intn(6)
	m := NewModel()
	point := make([]float64, n)
	for j := 0; j < n; j++ {
		point[j] = r.Float64() * 5
		ub := point[j] + r.Float64()*5
		m.AddVar(0, ub, r.NormFloat64(), "v")
	}
	rows := 1 + r.Intn(6)
	for i := 0; i < rows; i++ {
		terms := make([]Term, 0, n)
		lhs := 0.0
		for j := 0; j < n; j++ {
			c := math.Round(r.NormFloat64() * 3)
			if c != 0 {
				terms = append(terms, Term{j, c})
				lhs += c * point[j]
			}
		}
		if len(terms) == 0 {
			continue
		}
		switch r.Intn(3) {
		case 0:
			m.AddConstraint(terms, LE, lhs+r.Float64(), "r")
		case 1:
			m.AddConstraint(terms, GE, lhs-r.Float64(), "r")
		default:
			m.AddConstraint(terms, EQ, lhs, "r")
		}
	}
	return m, point
}

// TestSparseMatchesDenseRandom cross-checks the two engines on random
// LPs: statuses must agree, and when optimal the objectives must agree to
// 1e-6 (the vertex reached may differ; the optimum value may not).
func TestSparseMatchesDenseRandom(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 200; trial++ {
		m, _ := buildRandomLP(r)
		ds := m.Solve(Params{Dense: true})
		sp := m.Solve(Params{})
		if ds.Status != sp.Status {
			t.Fatalf("trial %d: dense %v vs sparse %v", trial, ds.Status, sp.Status)
		}
		if ds.Status != Optimal {
			continue
		}
		if math.Abs(ds.Objective-sp.Objective) > 1e-6*(1+math.Abs(ds.Objective)) {
			t.Fatalf("trial %d: dense obj %v vs sparse obj %v", trial, ds.Objective, sp.Objective)
		}
		checkFeasible(t, m, sp)
	}
}

// TestSparseMatchesDenseInfeasible cross-checks infeasibility detection.
func TestSparseMatchesDenseInfeasible(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	agreeInfeasible := 0
	for trial := 0; trial < 100; trial++ {
		m, _ := buildRandomLP(r)
		// Append a contradictory pair to force infeasibility.
		v := m.AddVar(0, 10, 0, "w")
		m.AddConstraint([]Term{{v, 1}}, GE, 6, "a")
		m.AddConstraint([]Term{{v, 1}}, LE, 4, "b")
		ds := m.Solve(Params{Dense: true})
		sp := m.Solve(Params{})
		if ds.Status != Infeasible || sp.Status != Infeasible {
			t.Fatalf("trial %d: dense %v sparse %v, want both infeasible", trial, ds.Status, sp.Status)
		}
		agreeInfeasible++
	}
	if agreeInfeasible != 100 {
		t.Fatalf("agree = %d", agreeInfeasible)
	}
}

// TestSparseUnbounded checks the sparse engine reports unbounded rays.
func TestSparseUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, math.Inf(1), 1, "x")
	m.Maximize()
	m.AddConstraint([]Term{{x, -1}}, LE, 0, "c")
	if sol := m.Solve(Params{}); sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

// TestSparseTransportationMatchesDense cross-checks a mid-size structured
// LP (the BenchmarkSimplexMedium model).
func TestSparseTransportationMatchesDense(t *testing.T) {
	m := buildTransportation(20)
	ds := m.Solve(Params{Dense: true})
	sp := m.Solve(Params{})
	if ds.Status != Optimal || sp.Status != Optimal {
		t.Fatalf("dense %v sparse %v", ds.Status, sp.Status)
	}
	if math.Abs(ds.Objective-sp.Objective) > 1e-6*(1+math.Abs(ds.Objective)) {
		t.Fatalf("dense obj %v vs sparse obj %v", ds.Objective, sp.Objective)
	}
}

// TestWarmStartSameModel re-solves a model from its own optimal basis: the
// warm solve must agree and converge in (near) zero iterations.
func TestWarmStartSameModel(t *testing.T) {
	m := buildTransportation(10)
	first := m.Solve(Params{})
	if first.Status != Optimal || first.Basis == nil {
		t.Fatalf("first solve: %v (basis %v)", first.Status, first.Basis != nil)
	}
	second := m.Solve(Params{Warm: first.Basis})
	if second.Status != Optimal {
		t.Fatalf("warm solve: %v", second.Status)
	}
	if math.Abs(first.Objective-second.Objective) > 1e-6*(1+math.Abs(first.Objective)) {
		t.Fatalf("objectives differ: %v vs %v", first.Objective, second.Objective)
	}
	if second.Iters > 3 {
		t.Fatalf("warm re-solve took %d iterations", second.Iters)
	}
}

// TestWarmStartAfterBoundChange mimics a branch-and-bound child node:
// tighten one variable's bounds and warm-start from the parent basis. The
// answer must match a cold solve exactly.
func TestWarmStartAfterBoundChange(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 120; trial++ {
		m, _ := buildRandomLP(r)
		parent := m.Solve(Params{})
		if parent.Status != Optimal {
			continue
		}
		// Tighten a random variable the way branching does.
		v := r.Intn(m.NumVars())
		lb, ub := m.Bounds(v)
		x := parent.X[v]
		var nlb, nub float64
		if r.Intn(2) == 0 {
			nlb, nub = lb, math.Floor(x) // down branch
		} else {
			nlb, nub = math.Floor(x)+1, ub // up branch
		}
		if nub < nlb {
			continue
		}
		m.SetBounds(v, nlb, nub)
		warm := m.Solve(Params{Warm: parent.Basis})
		cold := m.Solve(Params{})
		m.SetBounds(v, lb, ub)
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm %v vs cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: warm obj %v vs cold obj %v", trial, warm.Objective, cold.Objective)
		}
		checkFeasible(t, m, warm)
	}
}

// TestWarmStartMismatchedBasisIgnored feeds a basis from a different model
// shape; the solver must fall back to a cold start, not crash.
func TestWarmStartMismatchedBasisIgnored(t *testing.T) {
	small := buildTransportation(3)
	sb := small.Solve(Params{})
	big := buildTransportation(5)
	sol := big.Solve(Params{Warm: sb.Basis})
	cold := big.Solve(Params{})
	if sol.Status != Optimal || math.Abs(sol.Objective-cold.Objective) > 1e-6 {
		t.Fatalf("mismatched warm basis: %v obj %v (cold %v)", sol.Status, sol.Objective, cold.Objective)
	}
}

// buildTransportation builds a k-source, k-sink transportation LP.
func buildTransportation(k int) *Model {
	r := rand.New(rand.NewSource(5))
	m := NewModel()
	vars := make([][]int, k)
	for i := range vars {
		vars[i] = make([]int, k)
		for j := range vars[i] {
			vars[i][j] = m.AddVar(0, math.Inf(1), 1+r.Float64(), "x")
		}
	}
	for i := 0; i < k; i++ {
		terms := make([]Term, k)
		for j := 0; j < k; j++ {
			terms[j] = Term{vars[i][j], 1}
		}
		m.AddConstraint(terms, EQ, 10, "supply")
	}
	for j := 0; j < k; j++ {
		terms := make([]Term, k)
		for i := 0; i < k; i++ {
			terms[i] = Term{vars[i][j], 1}
		}
		m.AddConstraint(terms, EQ, 10, "demand")
	}
	return m
}

// BenchmarkSimplexMediumSparse / Dense time the two engines on the same
// transportation LP for an apples-to-apples comparison.
func benchSimplexMedium(b *testing.B, p Params) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := buildTransportation(20)
		if sol := m.Solve(p); sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkSimplexMediumSparse(b *testing.B) { benchSimplexMedium(b, Params{}) }
func BenchmarkSimplexMediumDense(b *testing.B)  { benchSimplexMedium(b, Params{Dense: true}) }
