// Package mip implements a mixed-integer programming solver by branch and
// bound over the simplex relaxation in package lp. It completes the
// Gurobi substitution: Merlin's path-selection problem (§3.2, equations
// 1–5) declares one {0,1} decision variable per logical-topology edge, and
// this solver finds integral optima for the three path-selection
// heuristics.
package mip

import (
	"container/heap"
	"math"

	"merlin/internal/lp"
)

// Status reports the outcome of a MIP solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	Limit // node or iteration budget exhausted before proving optimality
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	default:
		return "unknown"
	}
}

// Solution is the result of a MIP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	Nodes     int // branch-and-bound nodes explored
	// Basis is the optimal simplex basis of the incumbent's LP, when the
	// sparse engine produced one. Passing it back through Params.LP.Warm
	// warm-starts a re-solve of a same-shape model with modified rates —
	// the incremental compiler's delta re-provisioning path.
	Basis *lp.Basis
}

// Params tune the search.
type Params struct {
	// MaxNodes bounds branch-and-bound nodes. Zero means default (100000).
	MaxNodes int
	// LP passes through to the relaxation solver.
	LP lp.Params
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
}

// Model wraps an LP model with integrality markers.
type Model struct {
	*lp.Model
	integer []bool
}

// NewModel returns an empty MIP model.
func NewModel() *Model { return &Model{Model: lp.NewModel()} }

// AddIntVar adds an integer variable with the given bounds.
func (m *Model) AddIntVar(lb, ub, cost float64, name string) int {
	id := m.Model.AddVar(lb, ub, cost, name)
	m.markInt(id)
	return id
}

// AddBinVar adds a {0,1} variable.
func (m *Model) AddBinVar(cost float64, name string) int {
	return m.AddIntVar(0, 1, cost, name)
}

// MarkInteger constrains an existing variable to integer values.
func (m *Model) MarkInteger(v int) { m.markInt(v) }

func (m *Model) markInt(v int) {
	for len(m.integer) <= v {
		m.integer = append(m.integer, false)
	}
	m.integer[v] = true
}

// IsInteger reports whether v is integer-constrained.
func (m *Model) IsInteger(v int) bool {
	return v < len(m.integer) && m.integer[v]
}

// node is one branch-and-bound subproblem: a set of tightened bounds plus
// the parent's optimal basis, which warm-starts the node's LP re-solve.
// The basis is shared read-only between sibling nodes.
type node struct {
	bound   float64 // LP relaxation objective (lower bound when minimizing)
	depth   int
	changes []boundChange
	basis   *lp.Basis
}

type boundChange struct {
	v      int
	lb, ub float64
}

// nodeHeap is a best-bound priority queue.
type nodeHeap struct {
	items []*node
	worst float64 // +1 for minimize, -1 for maximize comparisons
}

func (h *nodeHeap) Len() int { return len(h.items) }
func (h *nodeHeap) Less(i, j int) bool {
	return h.worst*h.items[i].bound < h.worst*h.items[j].bound
}
func (h *nodeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *nodeHeap) Push(x any)    { h.items = append(h.items, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Solve runs best-bound branch and bound. The model's bounds are restored
// before returning.
func (m *Model) Solve(p Params) Solution {
	maxNodes := p.MaxNodes
	if maxNodes == 0 {
		maxNodes = 100000
	}
	intTol := p.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}
	// Record original bounds of integer vars so we can restore them.
	type savedBound struct {
		v      int
		lb, ub float64
	}
	var saved []savedBound
	for v := 0; v < m.NumVars(); v++ {
		if m.IsInteger(v) {
			lb, ub := m.Bounds(v)
			saved = append(saved, savedBound{v, lb, ub})
		}
	}
	restore := func() {
		for _, s := range saved {
			m.SetBounds(s.v, s.lb, s.ub)
		}
	}
	defer restore()

	// Root relaxation.
	root := m.Model.Solve(p.LP)
	switch root.Status {
	case lp.Infeasible:
		return Solution{Status: Infeasible}
	case lp.Unbounded:
		return Solution{Status: Unbounded}
	case lp.IterLimit:
		return Solution{Status: Limit}
	}
	sense := 1.0 // minimize by default; detect sign by probing is fragile,
	// so the heap treats bound as "minimize root-relative": we compare
	// objective improvements with a direction learned from the LP model.
	// lp.Model exposes no sense getter; branch and bound only needs
	// consistency: for maximization the relaxation bound is an upper
	// bound, and "better" flips. We detect it via Maximized().
	if m.Maximized() {
		sense = -1.0
	}

	h := &nodeHeap{worst: sense}
	heap.Push(h, &node{bound: root.Objective, basis: root.Basis})

	var best *Solution
	nodes := 0
	apply := func(changes []boundChange) func() {
		type prev struct {
			v      int
			lb, ub float64
		}
		undo := make([]prev, len(changes))
		for i, c := range changes {
			lb, ub := m.Bounds(c.v)
			undo[i] = prev{c.v, lb, ub}
			m.SetBounds(c.v, c.lb, c.ub)
		}
		return func() {
			for i := len(undo) - 1; i >= 0; i-- {
				m.SetBounds(undo[i].v, undo[i].lb, undo[i].ub)
			}
		}
	}

	limitHit := false
	for h.Len() > 0 {
		if nodes >= maxNodes {
			limitHit = true
			break
		}
		nd := heap.Pop(h).(*node)
		// Prune by bound against the incumbent.
		if best != nil && sense*nd.bound >= sense*best.Objective-1e-9 {
			continue
		}
		undo := apply(nd.changes)
		// Warm-start from the parent's optimal basis: after one bound
		// tightening the basis is typically primal infeasible in a single
		// row, which the LP's composite phase 1 repairs in a few pivots
		// instead of re-solving from the all-artificial basis.
		nodeLP := p.LP
		nodeLP.Warm = nd.basis
		sol := m.Model.Solve(nodeLP)
		undo()
		nodes++
		if sol.Status != lp.Optimal {
			continue // infeasible or limit: prune
		}
		if best != nil && sense*sol.Objective >= sense*best.Objective-1e-9 {
			continue
		}
		// Find the most fractional integer variable.
		branchVar := -1
		worstFrac := intTol
		for _, sb := range saved {
			x := sol.X[sb.v]
			frac := math.Abs(x - math.Round(x))
			if frac > worstFrac {
				worstFrac = frac
				branchVar = sb.v
			}
		}
		if branchVar < 0 {
			// Integral: new incumbent.
			s := Solution{Status: Optimal, Objective: sol.Objective, X: sol.X, Basis: sol.Basis}
			best = &s
			continue
		}
		x := sol.X[branchVar]
		floor := math.Floor(x)
		lb, ub := boundsWith(m, nd.changes, branchVar)
		// Down branch: v <= floor(x).
		if floor >= lb-1e-9 {
			down := append(append([]boundChange(nil), nd.changes...),
				boundChange{branchVar, lb, floor})
			heap.Push(h, &node{bound: sol.Objective, depth: nd.depth + 1, changes: down, basis: sol.Basis})
		}
		// Up branch: v >= ceil(x).
		if floor+1 <= ub+1e-9 {
			up := append(append([]boundChange(nil), nd.changes...),
				boundChange{branchVar, floor + 1, ub})
			heap.Push(h, &node{bound: sol.Objective, depth: nd.depth + 1, changes: up, basis: sol.Basis})
		}
	}
	if best == nil {
		if limitHit {
			return Solution{Status: Limit, Nodes: nodes}
		}
		return Solution{Status: Infeasible, Nodes: nodes}
	}
	best.Nodes = nodes
	if limitHit {
		best.Status = Limit // incumbent exists but optimality unproven
	}
	return *best
}

// boundsWith returns the effective bounds of v under the node's changes
// (falling back to the model's current bounds).
func boundsWith(m *Model, changes []boundChange, v int) (float64, float64) {
	lb, ub := m.Bounds(v)
	for _, c := range changes {
		if c.v == v {
			lb, ub = c.lb, c.ub
		}
	}
	return lb, ub
}
