// Package mip implements a mixed-integer programming solver by branch and
// bound over the simplex relaxation in package lp. It completes the
// Gurobi substitution: Merlin's path-selection problem (§3.2, equations
// 1–5) declares one {0,1} decision variable per logical-topology edge, and
// this solver finds integral optima for the three path-selection
// heuristics.
package mip

import (
	"container/heap"
	"math"
	"sync"

	"merlin/internal/lp"
)

// Status reports the outcome of a MIP solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	Limit // node or iteration budget exhausted before proving optimality
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	default:
		return "unknown"
	}
}

// Solution is the result of a MIP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	Nodes     int // branch-and-bound nodes explored
	// Basis is the optimal simplex basis of the incumbent's LP, when the
	// sparse engine produced one. Passing it back through Params.LP.Warm
	// warm-starts a re-solve of a same-shape model with modified rates —
	// the incremental compiler's delta re-provisioning path.
	Basis *lp.Basis
}

// Params tune the search.
type Params struct {
	// MaxNodes bounds branch-and-bound nodes. Zero means default (100000).
	MaxNodes int
	// LP passes through to the relaxation solver.
	LP lp.Params
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
	// Workers bounds how many node relaxations of one wave solve
	// concurrently; zero or one is serial. The search explores waves of a
	// fixed size in a fixed order regardless of Workers, so the returned
	// solution — status, objective, X, and Nodes — is bit-for-bit
	// identical for every value; Workers changes wall-clock only.
	// provision.Solve sets it to the shard pool's size.
	Workers int
	// Sem, when non-nil, is a shared token pool bounding concurrency
	// across several solvers at once (provision's shard pool). The calling
	// goroutine is assumed to hold one slot already — its own solve is
	// free — and each extra in-wave worker must win a token, acquired
	// non-blockingly: when the pool is busy the wave just solves with
	// fewer workers. Ignored when Workers <= 1.
	Sem chan struct{}
}

// Model wraps an LP model with integrality markers.
type Model struct {
	*lp.Model
	integer []bool
}

// NewModel returns an empty MIP model.
func NewModel() *Model { return &Model{Model: lp.NewModel()} }

// AddIntVar adds an integer variable with the given bounds.
func (m *Model) AddIntVar(lb, ub, cost float64, name string) int {
	id := m.Model.AddVar(lb, ub, cost, name)
	m.markInt(id)
	return id
}

// AddBinVar adds a {0,1} variable.
func (m *Model) AddBinVar(cost float64, name string) int {
	return m.AddIntVar(0, 1, cost, name)
}

// MarkInteger constrains an existing variable to integer values.
func (m *Model) MarkInteger(v int) { m.markInt(v) }

func (m *Model) markInt(v int) {
	for len(m.integer) <= v {
		m.integer = append(m.integer, false)
	}
	m.integer[v] = true
}

// IsInteger reports whether v is integer-constrained.
func (m *Model) IsInteger(v int) bool {
	return v < len(m.integer) && m.integer[v]
}

// node is one branch-and-bound subproblem: a set of tightened bounds plus
// the parent's optimal basis, which warm-starts the node's LP re-solve.
// The basis is shared read-only between sibling nodes and across wave
// workers.
type node struct {
	bound   float64 // LP relaxation objective (lower bound when minimizing)
	depth   int
	seq     int // creation order: deterministic heap tie-break
	changes []boundChange
	basis   *lp.Basis
}

type boundChange struct {
	v      int
	lb, ub float64
}

// nodeHeap is a best-bound priority queue. Equal bounds order by creation
// sequence, making the pop order a strict total order — the search
// trajectory is then a pure function of the model, independent of heap
// internals and of how many workers solve each wave.
type nodeHeap struct {
	items []*node
	worst float64 // +1 for minimize, -1 for maximize comparisons
}

func (h *nodeHeap) Len() int { return len(h.items) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.worst*h.items[i].bound, h.worst*h.items[j].bound
	if a != b {
		return a < b
	}
	return h.items[i].seq < h.items[j].seq
}
func (h *nodeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *nodeHeap) Push(x any)    { h.items = append(h.items, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// waveSize is how many heap nodes one wave pops and solves together. It is
// a constant — NOT Params.Workers — so the explored tree is identical for
// every worker count; Workers only decides how many of a wave's LPs run
// concurrently. The cost of the scheme is bounded speculation: a node
// solved early in a wave may produce an incumbent that would have pruned a
// later node of the same wave, wasting at most waveSize-1 LP solves per
// incumbent improvement. When the heap holds fewer nodes (the common case:
// provisioning relaxations are usually integral at the root), waves are
// exactly as lean as serial best-first search.
const waveSize = 8

// Solve runs best-bound branch and bound over waves of node relaxations.
// Node LPs solve on private clones of the model, so the model itself is
// never mutated — and never shared mutable state between workers.
func (m *Model) Solve(p Params) Solution {
	maxNodes := p.MaxNodes
	if maxNodes == 0 {
		maxNodes = 100000
	}
	intTol := p.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}
	var ints []int
	for v := 0; v < m.NumVars(); v++ {
		if m.IsInteger(v) {
			ints = append(ints, v)
		}
	}

	// Root relaxation, solved on the model itself (read-only).
	root := m.Model.Solve(p.LP)
	switch root.Status {
	case lp.Infeasible:
		return Solution{Status: Infeasible}
	case lp.Unbounded:
		return Solution{Status: Unbounded}
	case lp.IterLimit:
		return Solution{Status: Limit}
	}
	sense := 1.0 // minimize by default; for maximization the relaxation
	// bound is an upper bound and "better" flips. Detected via Maximized().
	if m.Maximized() {
		sense = -1.0
	}

	h := &nodeHeap{worst: sense}
	heap.Push(h, &node{bound: root.Objective, basis: root.Basis})
	seq := 1

	// One clone per concurrent wave slot, created on demand. Clones share
	// the constraint rows read-only; bounds tightened for a node solve are
	// restored before the slot moves on.
	clones := make([]*lp.Model, 0, waveSize)
	clone := func(i int) *lp.Model {
		for len(clones) <= i {
			clones = append(clones, m.Model.Clone())
		}
		return clones[i]
	}
	solveNode := func(cl *lp.Model, nd *node) lp.Solution {
		type prev struct {
			v      int
			lb, ub float64
		}
		undo := make([]prev, len(nd.changes))
		for i, c := range nd.changes {
			lb, ub := cl.Bounds(c.v)
			undo[i] = prev{c.v, lb, ub}
			cl.SetBounds(c.v, c.lb, c.ub)
		}
		// Warm-start from the parent's optimal basis: after one bound
		// tightening the basis is typically primal infeasible in a single
		// row, which the LP's composite phase 1 repairs in a few pivots
		// instead of re-solving from the all-artificial basis.
		nodeLP := p.LP
		nodeLP.Warm = nd.basis
		sol := cl.Solve(nodeLP)
		for i := len(undo) - 1; i >= 0; i-- {
			cl.SetBounds(undo[i].v, undo[i].lb, undo[i].ub)
		}
		return sol
	}

	var best *Solution
	nodes := 0
	prune := func(bound float64) bool {
		return best != nil && sense*bound >= sense*best.Objective-1e-9
	}

	wave := make([]*node, 0, waveSize)
	sols := make([]lp.Solution, waveSize)
	limitHit := false
	for h.Len() > 0 {
		if nodes >= maxNodes {
			limitHit = true
			break
		}
		// Gather the wave: up to waveSize best-bound nodes that survive
		// pruning, capped by the remaining node budget.
		wave = wave[:0]
		for len(wave) < waveSize && nodes+len(wave) < maxNodes && h.Len() > 0 {
			nd := heap.Pop(h).(*node)
			if prune(nd.bound) {
				continue
			}
			wave = append(wave, nd)
		}
		if len(wave) == 0 {
			continue
		}
		// Solve the wave's relaxations, possibly concurrently. The caller
		// holds one implicit slot; each extra worker must win a token from
		// the shared pool (when one is configured).
		conc := 1
		if p.Workers > 1 && len(wave) > 1 {
			want := p.Workers
			if want > len(wave) {
				want = len(wave)
			}
			for extra := want - 1; extra > 0; extra-- {
				if p.Sem == nil {
					conc++
					continue
				}
				select {
				case p.Sem <- struct{}{}:
					conc++
				default:
				}
			}
		}
		if conc <= 1 {
			for wi, nd := range wave {
				sols[wi] = solveNode(clone(0), nd)
			}
		} else {
			var wg sync.WaitGroup
			for s := 0; s < conc; s++ {
				cl := clone(s)
				wg.Add(1)
				go func(s int, cl *lp.Model) {
					defer wg.Done()
					for wi := s; wi < len(wave); wi += conc {
						sols[wi] = solveNode(cl, wave[wi])
					}
				}(s, cl)
			}
			wg.Wait()
			if p.Sem != nil {
				for s := 1; s < conc; s++ {
					<-p.Sem
				}
			}
		}
		// Consume the results sequentially in wave order — bookkeeping is
		// single-threaded, so incumbent updates and child creation are
		// deterministic whatever the worker count was.
		for wi, nd := range wave {
			nodes++
			sol := sols[wi]
			if sol.Status != lp.Optimal {
				continue // infeasible or limit: prune
			}
			if prune(sol.Objective) {
				continue
			}
			// Find the most fractional integer variable.
			branchVar := -1
			worstFrac := intTol
			for _, v := range ints {
				x := sol.X[v]
				frac := math.Abs(x - math.Round(x))
				if frac > worstFrac {
					worstFrac = frac
					branchVar = v
				}
			}
			if branchVar < 0 {
				// Integral: new incumbent.
				s := Solution{Status: Optimal, Objective: sol.Objective, X: sol.X, Basis: sol.Basis}
				best = &s
				continue
			}
			x := sol.X[branchVar]
			floor := math.Floor(x)
			lb, ub := boundsWith(m, nd.changes, branchVar)
			// Down branch: v <= floor(x).
			if floor >= lb-1e-9 {
				down := append(append([]boundChange(nil), nd.changes...),
					boundChange{branchVar, lb, floor})
				heap.Push(h, &node{bound: sol.Objective, depth: nd.depth + 1, seq: seq, changes: down, basis: sol.Basis})
				seq++
			}
			// Up branch: v >= ceil(x).
			if floor+1 <= ub+1e-9 {
				up := append(append([]boundChange(nil), nd.changes...),
					boundChange{branchVar, floor + 1, ub})
				heap.Push(h, &node{bound: sol.Objective, depth: nd.depth + 1, seq: seq, changes: up, basis: sol.Basis})
				seq++
			}
		}
	}
	if best == nil {
		if limitHit {
			return Solution{Status: Limit, Nodes: nodes}
		}
		return Solution{Status: Infeasible, Nodes: nodes}
	}
	best.Nodes = nodes
	if limitHit {
		best.Status = Limit // incumbent exists but optimality unproven
	}
	return *best
}

// boundsWith returns the effective bounds of v under the node's changes
// (falling back to the model's current bounds).
func boundsWith(m *Model, changes []boundChange, v int) (float64, float64) {
	lb, ub := m.Bounds(v)
	for _, c := range changes {
		if c.v == v {
			lb, ub = c.lb, c.ub
		}
	}
	return lb, ub
}
