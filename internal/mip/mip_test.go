package mip

import (
	"math"
	"math/rand"
	"testing"

	"merlin/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-5*(1+math.Abs(b)) }

func TestKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 2 (binary): best {a,b} = 16.
	m := NewModel()
	a := m.AddBinVar(10, "a")
	b := m.AddBinVar(6, "b")
	c := m.AddBinVar(4, "c")
	m.Maximize()
	m.AddConstraint([]lp.Term{{Var: a, Coeff: 1}, {Var: b, Coeff: 1}, {Var: c, Coeff: 1}}, lp.LE, 2, "cap")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 16) {
		t.Fatalf("obj = %v, want 16", sol.Objective)
	}
	if !approx(sol.X[a], 1) || !approx(sol.X[b], 1) || !approx(sol.X[c], 0) {
		t.Fatalf("x = %v, want [1 1 0]", sol.X)
	}
}

func TestFractionalRelaxationForcedInteger(t *testing.T) {
	// max x + y s.t. 2x + 2y <= 3 (binary): LP gives 1.5, MIP gives 1.
	m := NewModel()
	x := m.AddBinVar(1, "x")
	y := m.AddBinVar(1, "y")
	m.Maximize()
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 2}, {Var: y, Coeff: 2}}, lp.LE, 3, "cap")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 1) {
		t.Fatalf("obj = %v, want 1", sol.Objective)
	}
}

func TestIntegerGeneral(t *testing.T) {
	// min 3x + 4y s.t. x + 2y >= 7, x,y integer >= 0.
	// LP optimum: y=3.5 → obj 14. Integer optimum: (1,3) = 15 or (7,0) = 21
	// or (3,2) = 17... check: x+2y>=7; (1,3): 1+6=7 ok cost 15. (0,4)=16.
	// (3,2)=3+4=7 ok cost 17. So 15.
	m := NewModel()
	x := m.AddIntVar(0, 100, 3, "x")
	y := m.AddIntVar(0, 100, 4, "y")
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 2}}, lp.GE, 7, "c")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 15) {
		t.Fatalf("obj = %v, want 15", sol.Objective)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	m := NewModel()
	x := m.AddBinVar(1, "x")
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 1}}, lp.GE, 2, "impossible")
	sol := m.Solve(Params{})
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestIntegerInfeasibleButLPFeasible(t *testing.T) {
	// 2x = 1 with x binary: LP x=0.5 feasible, integer infeasible.
	m := NewModel()
	x := m.AddBinVar(0, "x")
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 2}}, lp.EQ, 1, "odd")
	sol := m.Solve(Params{})
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x binary, y continuous <= 2.5, x + y <= 3.
	// Best: x=1, y=2 → 4... y bounded by 2.5 and x+y<=3 → y=2. obj=4.
	m := NewModel()
	x := m.AddBinVar(2, "x")
	y := m.Model.AddVar(0, 2.5, 1, "y")
	m.Maximize()
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.LE, 3, "c")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 4) {
		t.Fatalf("obj = %v, want 4", sol.Objective)
	}
	if !approx(sol.X[x], 1) || !approx(sol.X[y], 2) {
		t.Fatalf("x = %v, want [1 2]", sol.X)
	}
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	m := NewModel()
	x := m.AddBinVar(1, "x")
	m.Maximize()
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 2}}, lp.LE, 1, "c")
	_ = m.Solve(Params{})
	lb, ub := m.Bounds(x)
	if lb != 0 || ub != 1 {
		t.Fatalf("bounds after solve = [%v,%v], want [0,1]", lb, ub)
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing branching with MaxNodes=1 must report Limit.
	m := NewModel()
	x := m.AddBinVar(1, "x")
	y := m.AddBinVar(1, "y")
	m.Maximize()
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 2}, {Var: y, Coeff: 2}}, lp.LE, 3, "cap")
	sol := m.Solve(Params{MaxNodes: 1})
	if sol.Status != Limit {
		t.Fatalf("status = %v, want limit", sol.Status)
	}
}

// Shortest path as a 0/1 MIP on a small graph, checked against Dijkstra by
// hand: s->a (1), a->t (1), s->t (3). Optimum picks s->a->t, cost 2.
func TestShortestPathMIP(t *testing.T) {
	m := NewModel()
	sa := m.AddBinVar(1, "sa")
	at := m.AddBinVar(1, "at")
	st := m.AddBinVar(3, "st")
	// Flow out of s = 1; into t = 1; conservation at a.
	m.AddConstraint([]lp.Term{{Var: sa, Coeff: 1}, {Var: st, Coeff: 1}}, lp.EQ, 1, "s")
	m.AddConstraint([]lp.Term{{Var: at, Coeff: 1}, {Var: st, Coeff: 1}}, lp.EQ, 1, "t")
	m.AddConstraint([]lp.Term{{Var: sa, Coeff: 1}, {Var: at, Coeff: -1}}, lp.EQ, 0, "a")
	sol := m.Solve(Params{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 2) {
		t.Fatalf("obj = %v, want 2", sol.Objective)
	}
	if !approx(sol.X[sa], 1) || !approx(sol.X[at], 1) || !approx(sol.X[st], 0) {
		t.Fatalf("x = %v", sol.X)
	}
}

// Property: on random small binary knapsacks, branch and bound matches
// brute-force enumeration.
func TestRandomKnapsacksMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(5) // up to 7 items
		weights := make([]float64, n)
		values := make([]float64, n)
		m := NewModel()
		vars := make([]int, n)
		terms := make([]lp.Term, n)
		for i := 0; i < n; i++ {
			weights[i] = 1 + math.Floor(r.Float64()*9)
			values[i] = 1 + math.Floor(r.Float64()*9)
			vars[i] = m.AddBinVar(values[i], "x")
			terms[i] = lp.Term{Var: vars[i], Coeff: weights[i]}
		}
		cap := math.Floor(r.Float64() * 20)
		m.Maximize()
		m.AddConstraint(terms, lp.LE, cap, "cap")
		sol := m.Solve(Params{})
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= cap && v > best {
				best = v
			}
		}
		if !approx(sol.Objective, best) {
			t.Fatalf("trial %d: MIP %v != brute force %v", trial, sol.Objective, best)
		}
		// Solution must be integral.
		for _, v := range vars {
			x := sol.X[v]
			if math.Abs(x-math.Round(x)) > 1e-6 {
				t.Fatalf("trial %d: non-integral %v", trial, x)
			}
		}
	}
}

// Property: the warm-started sparse LP engine and the dense escape hatch
// must agree on MIP objectives (the sparse/dense 1e-6 acceptance check at
// the branch-and-bound level).
func TestSparseAndDenseEnginesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(6)
		m := NewModel()
		terms := make([]lp.Term, n)
		for i := 0; i < n; i++ {
			v := m.AddBinVar(1+math.Floor(r.Float64()*9), "x")
			terms[i] = lp.Term{Var: v, Coeff: 1 + math.Floor(r.Float64()*9)}
		}
		m.Maximize()
		m.AddConstraint(terms, lp.LE, math.Floor(r.Float64()*25), "cap")
		sparse := m.Solve(Params{})
		dense := m.Solve(Params{LP: lp.Params{Dense: true}})
		if sparse.Status != dense.Status {
			t.Fatalf("trial %d: sparse %v vs dense %v", trial, sparse.Status, dense.Status)
		}
		if sparse.Status == Optimal && !approx(sparse.Objective, dense.Objective) {
			t.Fatalf("trial %d: sparse obj %v vs dense obj %v", trial, sparse.Objective, dense.Objective)
		}
	}
}

// Property: the wave-parallel search is deterministic — for any worker
// count (including borrowing from a shared token pool), Solve returns the
// serial incumbent bit-for-bit: same status, same objective, same X
// vector, same explored-node count. Hard multi-constraint knapsacks force
// deep trees so the waves genuinely run concurrent relaxations.
func TestParallelMatchesSerialBitForBit(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 8 + r.Intn(6)
		m := NewModel()
		terms := make([][]lp.Term, 3)
		for i := 0; i < n; i++ {
			v := m.AddBinVar(1+math.Floor(r.Float64()*9), "x")
			for c := range terms {
				terms[c] = append(terms[c], lp.Term{Var: v, Coeff: 1 + math.Floor(r.Float64()*9)})
			}
		}
		m.Maximize()
		for c := range terms {
			m.AddConstraint(terms[c], lp.LE, 10+math.Floor(r.Float64()*25), "cap")
		}
		serial := m.Solve(Params{})
		sem := make(chan struct{}, 8)
		for _, p := range []Params{
			{Workers: 2},
			{Workers: 4},
			{Workers: 8, Sem: sem},
		} {
			par := m.Solve(p)
			if par.Status != serial.Status || par.Objective != serial.Objective || par.Nodes != serial.Nodes {
				t.Fatalf("trial %d workers=%d: (%v, %v, %d nodes) != serial (%v, %v, %d nodes)",
					trial, p.Workers, par.Status, par.Objective, par.Nodes,
					serial.Status, serial.Objective, serial.Nodes)
			}
			if serial.Status != Optimal {
				continue
			}
			for v := range serial.X {
				if par.X[v] != serial.X[v] {
					t.Fatalf("trial %d workers=%d: X[%d] = %v != serial %v",
						trial, p.Workers, v, par.X[v], serial.X[v])
				}
			}
		}
		if len(sem) != 0 {
			t.Fatalf("trial %d: %d tokens leaked from the shared pool", trial, len(sem))
		}
	}
}

func BenchmarkKnapsack12(b *testing.B) {
	r := rand.New(rand.NewSource(77))
	n := 12
	weights := make([]float64, n)
	values := make([]float64, n)
	for i := range weights {
		weights[i] = 1 + math.Floor(r.Float64()*9)
		values[i] = 1 + math.Floor(r.Float64()*9)
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		m := NewModel()
		terms := make([]lp.Term, n)
		for i := 0; i < n; i++ {
			v := m.AddBinVar(values[i], "x")
			terms[i] = lp.Term{Var: v, Coeff: weights[i]}
		}
		m.Maximize()
		m.AddConstraint(terms, lp.LE, 30, "cap")
		if sol := m.Solve(Params{}); sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
