package pred

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func atom(f, v string) Pred { return Test{Field: Field(f), Value: v} }

func mustSat(t *testing.T, p Pred) bool {
	t.Helper()
	ok, err := Satisfiable(p)
	if err != nil {
		t.Fatalf("Satisfiable(%s): %v", p, err)
	}
	return ok
}

func mustImplies(t *testing.T, p, q Pred) bool {
	t.Helper()
	ok, err := Implies(p, q)
	if err != nil {
		t.Fatalf("Implies(%s, %s): %v", p, q, err)
	}
	return ok
}

func TestConstants(t *testing.T) {
	if !mustSat(t, True) {
		t.Error("true should be satisfiable")
	}
	if mustSat(t, False) {
		t.Error("false should be unsatisfiable")
	}
	if mustSat(t, Negate(True)) {
		t.Error("!true should be unsatisfiable")
	}
}

func TestAtomSat(t *testing.T) {
	p := atom("tcp.dst", "80")
	if !mustSat(t, p) {
		t.Error("atom should be satisfiable")
	}
	if !mustSat(t, Negate(p)) {
		t.Error("negated atom should be satisfiable")
	}
}

func TestConflictingValues(t *testing.T) {
	p := Conj(atom("tcp.dst", "80"), atom("tcp.dst", "22"))
	if mustSat(t, p) {
		t.Error("tcp.dst=80 and tcp.dst=22 should be unsatisfiable")
	}
	q := Conj(atom("tcp.dst", "80"), atom("ip.proto", "6"))
	if !mustSat(t, q) {
		t.Error("different fields should be satisfiable")
	}
}

func TestPositiveAndNegatedSameValue(t *testing.T) {
	p := Conj(atom("tcp.dst", "80"), Negate(atom("tcp.dst", "80")))
	if mustSat(t, p) {
		t.Error("x=80 and x!=80 should be unsatisfiable")
	}
	q := Conj(atom("tcp.dst", "80"), Negate(atom("tcp.dst", "22")))
	if !mustSat(t, q) {
		t.Error("x=80 and x!=22 should be satisfiable")
	}
}

func TestDomainExhaustion(t *testing.T) {
	// ip.proto has domain size 256: negating all 256 values is unsat,
	// negating 255 still leaves one value.
	all := make([]Pred, 0, 256)
	for v := 0; v < 256; v++ {
		all = append(all, Negate(Test{Field: "ip.proto", Value: itoa(v)}))
	}
	if mustSat(t, Conj(all...)) {
		t.Error("negating the whole ip.proto domain should be unsatisfiable")
	}
	if !mustSat(t, Conj(all[:255]...)) {
		t.Error("negating 255 of 256 values should be satisfiable")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestDisjoint(t *testing.T) {
	http := Conj(atom("ip.proto", "6"), atom("tcp.dst", "80"))
	ssh := Conj(atom("ip.proto", "6"), atom("tcp.dst", "22"))
	d, err := Disjoint(http, ssh)
	if err != nil || !d {
		t.Errorf("http/ssh should be disjoint: %v %v", d, err)
	}
	tcp := atom("ip.proto", "6")
	d, err = Disjoint(http, tcp)
	if err != nil || d {
		t.Errorf("http should overlap tcp: %v %v", d, err)
	}
}

func TestImplies(t *testing.T) {
	http := Conj(atom("ip.proto", "6"), atom("tcp.dst", "80"))
	tcp := atom("ip.proto", "6")
	if !mustImplies(t, http, tcp) {
		t.Error("http should imply tcp")
	}
	if mustImplies(t, tcp, http) {
		t.Error("tcp should not imply http")
	}
	if !mustImplies(t, False, http) {
		t.Error("false implies everything")
	}
	if !mustImplies(t, http, True) {
		t.Error("everything implies true")
	}
}

// The refinement example from §4.1: tcp traffic partitioned into dst=80 and
// dst!=80 must cover the original and be pairwise disjoint.
func TestSection41Partition(t *testing.T) {
	tcp := atom("ip.proto", "6")
	web := Conj(tcp, atom("tcp.dst", "80"))
	rest := Conj(tcp, Negate(atom("tcp.dst", "80")))
	ok, err := Covers(tcp, []Pred{web, rest})
	if err != nil || !ok {
		t.Fatalf("partition should cover tcp: %v %v", ok, err)
	}
	d, _, _, err := PairwiseDisjoint([]Pred{web, rest})
	if err != nil || !d {
		t.Fatalf("partition should be disjoint: %v %v", d, err)
	}
	// A lossy partition must be detected.
	ok, err = Covers(tcp, []Pred{web})
	if err != nil || ok {
		t.Fatalf("web alone should not cover tcp: %v %v", ok, err)
	}
}

func TestEquivalentDeMorgan(t *testing.T) {
	a := atom("tcp.dst", "80")
	b := atom("tcp.dst", "22")
	lhs := Negate(Disj(a, b))
	rhs := Conj(Negate(a), Negate(b))
	eq, err := Equivalent(lhs, rhs)
	if err != nil || !eq {
		t.Fatalf("De Morgan equivalence failed: %v %v", eq, err)
	}
}

func TestPairwiseDisjointReportsPair(t *testing.T) {
	a := atom("tcp.dst", "80")
	b := atom("tcp.dst", "22")
	c := atom("ip.proto", "6")
	ok, i, j, err := PairwiseDisjoint([]Pred{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a and c overlap; PairwiseDisjoint should fail")
	}
	if i != 0 || j != 2 {
		t.Fatalf("overlap pair = (%d,%d), want (0,2)", i, j)
	}
}

func TestFieldsAndSize(t *testing.T) {
	p := Conj(atom("eth.src", "aa"), Disj(atom("tcp.dst", "80"), Negate(atom("eth.src", "bb"))))
	fs := Fields(p)
	if len(fs) != 2 || fs[0] != "eth.src" || fs[1] != "tcp.dst" {
		t.Errorf("Fields = %v", fs)
	}
	if Size(p) < 5 {
		t.Errorf("Size = %d, want >= 5", Size(p))
	}
}

func TestMatches(t *testing.T) {
	p := Conj(atom("ip.proto", "6"), Negate(atom("tcp.dst", "22")))
	pkt := map[Field]string{"ip.proto": "6", "tcp.dst": "80"}
	if !Matches(p, pkt) {
		t.Error("packet should match")
	}
	pkt["tcp.dst"] = "22"
	if Matches(p, pkt) {
		t.Error("ssh packet should not match")
	}
	if !Matches(True, nil) || Matches(False, nil) {
		t.Error("constants mis-evaluate")
	}
}

func TestDomainSize(t *testing.T) {
	if DomainSize("ip.proto") != 256 {
		t.Error("ip.proto domain wrong")
	}
	if DomainSize("eth.src") != math.Pow(2, 48) {
		t.Error("eth.src domain wrong")
	}
	if !math.IsInf(DomainSize("custom.field"), 1) {
		t.Error("unknown field should be unbounded")
	}
	if !KnownField("tcp.dst") || KnownField("bogus") {
		t.Error("KnownField wrong")
	}
}

func TestStringRendering(t *testing.T) {
	p := Conj(atom("ip.proto", "6"), Negate(atom("tcp.dst", "22")))
	want := "ip.proto = 6 and !(tcp.dst = 22)"
	if got := Format(p); got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}

func TestSearchBudgetGuard(t *testing.T) {
	// n independent disjunctions over distinct fields followed by a
	// contradiction force the search to visit 2^n branches before
	// concluding unsat; n=25 exceeds the step budget and must error,
	// not hang.
	p := True
	for i := 0; i < 25; i++ {
		f := "custom.f" + itoa(i)
		p = Conj(p, Disj(atom(f, "0"), atom(f, "1")))
	}
	p = Conj(p, atom("ip.proto", "6"), atom("ip.proto", "7"))
	if _, err := Satisfiable(p); err == nil {
		t.Error("expected search budget error")
	}
}

func TestLargePartitionIsFast(t *testing.T) {
	// The Fig. 9(a) workload shape: a parent predicate partitioned into
	// thousands of children must verify quickly (early pruning keeps the
	// search linear despite the exponential worst case).
	parent := atom("ip.proto", "6")
	var parts []Pred
	for i := 0; i < 2000; i++ {
		parts = append(parts, Conj(parent, atom("tcp.dst", itoa(i))))
	}
	rest := parent
	for i := 0; i < 2000; i++ {
		rest = Conj(rest, Negate(atom("tcp.dst", itoa(i))))
	}
	parts = append(parts, rest)
	ok, err := Covers(parent, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("partition should cover parent")
	}
}

// randomPred builds a small random predicate over a tiny vocabulary.
func randomPred(r *rand.Rand, depth int) Pred {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return True
		case 1:
			return False
		default:
			fields := []string{"ip.proto", "tcp.dst", "eth.src"}
			vals := []string{"1", "2", "3"}
			return atom(fields[r.Intn(len(fields))], vals[r.Intn(len(vals))])
		}
	}
	switch r.Intn(3) {
	case 0:
		return Conj(randomPred(r, depth-1), randomPred(r, depth-1))
	case 1:
		return Disj(randomPred(r, depth-1), randomPred(r, depth-1))
	default:
		return Negate(randomPred(r, depth-1))
	}
}

// Property: Implies is reflexive and p ∧ q implies p.
func TestImpliesProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		p := randomPred(r, 3)
		q := randomPred(r, 3)
		if ok, err := Implies(p, p); err != nil || !ok {
			t.Fatalf("Implies(p,p) = %v,%v for %s", ok, err, p)
		}
		if ok, err := Implies(Conj(p, q), p); err != nil || !ok {
			t.Fatalf("Implies(p∧q,p) = %v,%v for %s, %s", ok, err, p, q)
		}
		if ok, err := Implies(p, Disj(p, q)); err != nil || !ok {
			t.Fatalf("Implies(p,p∨q) = %v,%v", ok, err)
		}
	}
}

// Property: a predicate and its negation are disjoint and cover everything.
func TestExcludedMiddle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := randomPred(r, 3)
		d, err := Disjoint(p, Negate(p))
		if err != nil || !d {
			t.Fatalf("p and !p not disjoint: %s", p)
		}
		c, err := Covers(True, []Pred{p, Negate(p)})
		if err != nil || !c {
			t.Fatalf("p or !p does not cover true: %s", p)
		}
	}
}

// Property (via testing/quick): Matches agrees with Satisfiable — if a
// concrete packet matches p then p is satisfiable.
func TestMatchesImpliesSat(t *testing.T) {
	check := func(seed int64, proto, dst uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPred(r, 3)
		pkt := map[Field]string{
			"ip.proto": itoa(int(proto % 3)),
			"tcp.dst":  itoa(int(dst % 3)),
			"eth.src":  "1",
		}
		if !Matches(p, pkt) {
			return true // vacuous
		}
		ok, err := Satisfiable(p)
		return err == nil && ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkImpliesDeep(b *testing.B) {
	var ps []Pred
	for i := 0; i < 12; i++ {
		ps = append(ps, Conj(atom("ip.proto", "6"), atom("tcp.dst", itoa(i))))
	}
	whole := atom("ip.proto", "6")
	union := Disj(ps...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Implies(union, whole); err != nil {
			b.Fatal(err)
		}
	}
}
