// Package pred implements Merlin's packet-classification predicates and the
// decision procedures the system needs over them: satisfiability,
// disjointness, implication, and cover checking.
//
// A predicate is a boolean combination of atoms of the form header.field = n
// (Figure 1 of the paper). Fields range over finite domains (a MAC address
// has 2^48 values, an IP protocol 2^8, ...), which makes this fragment
// decidable without an SMT solver: normalize to disjunctive normal form and
// check each conjunction of literals for per-field consistency. This package
// is the stand-in for the paper's use of Z3 (§5).
package pred

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Field names a packet header field, e.g. "eth.src" or "tcp.dst".
type Field string

// Standard fields with their domain sizes. DomainSize reports how many
// distinct values a field ranges over; it is what makes pure-negation
// conjunctions satisfiable (there is always a fresh value to pick as long
// as fewer than the whole domain is excluded).
var domainSizes = map[Field]float64{
	"eth.src":   math.Pow(2, 48),
	"eth.dst":   math.Pow(2, 48),
	"eth.typ":   math.Pow(2, 16),
	"vlan.id":   4096,
	"ip.src":    math.Pow(2, 32),
	"ip.dst":    math.Pow(2, 32),
	"ip.proto":  256,
	"ip.tos":    256,
	"tcp.src":   math.Pow(2, 16),
	"tcp.dst":   math.Pow(2, 16),
	"udp.src":   math.Pow(2, 16),
	"udp.dst":   math.Pow(2, 16),
	"icmp.type": 256,
	"payload":   math.Inf(1), // opaque deep-packet-inspection predicate
}

// DomainSize returns the number of distinct values of f. Unknown fields get
// an effectively unbounded domain, which is the conservative choice: it
// never makes an unsatisfiable predicate look satisfiable for disjointness
// checks used to reject unsafe refinements.
func DomainSize(f Field) float64 {
	if s, ok := domainSizes[f]; ok {
		return s
	}
	return math.Inf(1)
}

// KnownField reports whether f is one of the standard header fields.
func KnownField(f Field) bool {
	_, ok := domainSizes[f]
	return ok
}

// Pred is a packet predicate. Implementations are immutable once built.
type Pred interface {
	// String renders the predicate in Merlin concrete syntax.
	String() string
	isPred()
}

// TruePred matches every packet.
type TruePred struct{}

// FalsePred matches no packet.
type FalsePred struct{}

// Test is the atom field = value. Values are kept as canonical strings
// (e.g. "00:00:00:00:00:01", "80"); equality of atoms is string equality of
// field and value.
type Test struct {
	Field Field
	Value string
}

// And is conjunction.
type And struct{ L, R Pred }

// Or is disjunction.
type Or struct{ L, R Pred }

// Not is negation.
type Not struct{ P Pred }

func (TruePred) isPred()  {}
func (FalsePred) isPred() {}
func (Test) isPred()      {}
func (And) isPred()       {}
func (Or) isPred()        {}
func (Not) isPred()       {}

func (TruePred) String() string  { return "true" }
func (FalsePred) String() string { return "false" }
func (t Test) String() string    { return fmt.Sprintf("%s = %s", t.Field, t.Value) }

func (a And) String() string {
	return fmt.Sprintf("(%s and %s)", a.L.String(), a.R.String())
}

func (o Or) String() string {
	return fmt.Sprintf("(%s or %s)", o.L.String(), o.R.String())
}

func (n Not) String() string { return "!(" + n.P.String() + ")" }

// True and False are the constant predicates.
var (
	True  Pred = TruePred{}
	False Pred = FalsePred{}
)

// Conj builds the conjunction of ps, simplifying trivial cases.
func Conj(ps ...Pred) Pred {
	out := True
	for _, p := range ps {
		switch {
		case p == nil:
			continue
		case isFalse(p):
			return False
		case isTrue(p):
			continue
		case isTrue(out):
			out = p
		default:
			out = And{out, p}
		}
	}
	return out
}

// Disj builds the disjunction of ps, simplifying trivial cases.
func Disj(ps ...Pred) Pred {
	out := False
	for _, p := range ps {
		switch {
		case p == nil:
			continue
		case isTrue(p):
			return True
		case isFalse(p):
			continue
		case isFalse(out):
			out = p
		default:
			out = Or{out, p}
		}
	}
	return out
}

// Negate returns the negation of p, simplifying constants and double
// negation.
func Negate(p Pred) Pred {
	switch q := p.(type) {
	case TruePred:
		return False
	case FalsePred:
		return True
	case Not:
		return q.P
	default:
		return Not{p}
	}
}

func isTrue(p Pred) bool  { _, ok := p.(TruePred); return ok }
func isFalse(p Pred) bool { _, ok := p.(FalsePred); return ok }

// nnf is a predicate in negation normal form: negations appear only on
// atoms. Conversion is linear in the input size.
type nnf interface{ isNNF() }

type nnfLit struct {
	field Field
	value string
	neg   bool
}

type nnfAnd struct{ parts []nnf }
type nnfOr struct{ parts []nnf }
type nnfTrue struct{}
type nnfFalse struct{}

func (nnfLit) isNNF()   {}
func (nnfAnd) isNNF()   {}
func (nnfOr) isNNF()    {}
func (nnfTrue) isNNF()  {}
func (nnfFalse) isNNF() {}

func toNNF(p Pred, negated bool) (nnf, error) {
	switch q := p.(type) {
	case TruePred:
		if negated {
			return nnfFalse{}, nil
		}
		return nnfTrue{}, nil
	case FalsePred:
		if negated {
			return nnfTrue{}, nil
		}
		return nnfFalse{}, nil
	case Test:
		return nnfLit{field: q.Field, value: q.Value, neg: negated}, nil
	case Not:
		return toNNF(q.P, !negated)
	case And:
		l, err := toNNF(q.L, negated)
		if err != nil {
			return nil, err
		}
		r, err := toNNF(q.R, negated)
		if err != nil {
			return nil, err
		}
		if negated {
			return nnfOr{parts: []nnf{l, r}}, nil
		}
		return nnfAnd{parts: []nnf{l, r}}, nil
	case Or:
		l, err := toNNF(q.L, negated)
		if err != nil {
			return nil, err
		}
		r, err := toNNF(q.R, negated)
		if err != nil {
			return nil, err
		}
		if negated {
			return nnfAnd{parts: []nnf{l, r}}, nil
		}
		return nnfOr{parts: []nnf{l, r}}, nil
	default:
		return nil, fmt.Errorf("pred: unknown predicate %T", p)
	}
}

// maxSearchSteps bounds the backtracking satisfiability search. Policies in
// the evaluation have at most tens of thousands of shallow statements, far
// below this budget; the limit exists so a pathological input fails loudly
// instead of hanging.
const maxSearchSteps = 1 << 23

// ErrTooComplex is wrapped by errors reporting that a decision procedure
// exceeded its search budget.
var ErrTooComplex = fmt.Errorf("pred: predicate too complex (search budget of %d steps exceeded)", maxSearchSteps)

// assignment is the mutable search state: per-field positive bindings and
// excluded-value sets, with an undo trail.
type assignment struct {
	positive map[Field]string
	negative map[Field]map[string]bool
	steps    int
}

func newAssignment() *assignment {
	return &assignment{
		positive: make(map[Field]string),
		negative: make(map[Field]map[string]bool),
	}
}

// bind adds a literal; it returns (consistent, undo). The undo closure must
// be called exactly once when backtracking past this literal.
func (a *assignment) bind(l nnfLit) (bool, func()) {
	if l.neg {
		if v, ok := a.positive[l.field]; ok {
			// field already pinned: consistent iff pinned value differs
			return v != l.value, func() {}
		}
		set := a.negative[l.field]
		if set == nil {
			set = make(map[string]bool)
			a.negative[l.field] = set
		}
		if set[l.value] {
			return true, func() {}
		}
		set[l.value] = true
		if float64(len(set)) >= DomainSize(l.field) {
			set[l.value] = true // keep for undo symmetry
			return false, func() { delete(set, l.value) }
		}
		return true, func() { delete(set, l.value) }
	}
	if v, ok := a.positive[l.field]; ok {
		return v == l.value, func() {}
	}
	if a.negative[l.field][l.value] {
		return false, func() {}
	}
	a.positive[l.field] = l.value
	return true, func() { delete(a.positive, l.field) }
}

// satisfy performs depth-first search over the conjunction of work items.
// It processes items in order, expanding conjunctions in place and
// branching on disjunctions, pruning any branch whose literals conflict
// with the current assignment.
func (a *assignment) satisfy(work []nnf) (bool, error) {
	a.steps++
	if a.steps > maxSearchSteps {
		return false, ErrTooComplex
	}
	if len(work) == 0 {
		return true, nil
	}
	head, rest := work[0], work[1:]
	switch h := head.(type) {
	case nnfTrue:
		return a.satisfy(rest)
	case nnfFalse:
		return false, nil
	case nnfLit:
		ok, undo := a.bind(h)
		if !ok {
			undo()
			return false, nil
		}
		sat, err := a.satisfy(rest)
		undo()
		return sat, err
	case nnfAnd:
		expanded := make([]nnf, 0, len(h.parts)+len(rest))
		expanded = append(expanded, h.parts...)
		expanded = append(expanded, rest...)
		return a.satisfy(expanded)
	case nnfOr:
		for _, alt := range h.parts {
			branch := make([]nnf, 0, 1+len(rest))
			branch = append(branch, alt)
			branch = append(branch, rest...)
			sat, err := a.satisfy(branch)
			if err != nil {
				return false, err
			}
			if sat {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("pred: unknown NNF node %T", head)
	}
}

// Satisfiable reports whether some packet matches p.
func Satisfiable(p Pred) (bool, error) {
	n, err := toNNF(p, false)
	if err != nil {
		return false, err
	}
	return newAssignment().satisfy([]nnf{n})
}

// Disjoint reports whether no packet matches both p and q.
func Disjoint(p, q Pred) (bool, error) {
	sat, err := Satisfiable(Conj(p, q))
	return !sat, err
}

// Overlaps reports whether some packet matches both p and q.
func Overlaps(p, q Pred) (bool, error) {
	sat, err := Satisfiable(Conj(p, q))
	return sat, err
}

// Implies reports whether every packet matching p also matches q.
func Implies(p, q Pred) (bool, error) {
	sat, err := Satisfiable(Conj(p, Negate(q)))
	return !sat, err
}

// Equivalent reports whether p and q match exactly the same packets.
func Equivalent(p, q Pred) (bool, error) {
	ok, err := Implies(p, q)
	if err != nil || !ok {
		return false, err
	}
	return Implies(q, p)
}

// Covers reports whether the disjunction of ps matches every packet that
// whole matches; i.e. whole ⊆ ∪ps. Used by the pre-processor (totality)
// and by refinement verification (a partition must be total, §4.1).
func Covers(whole Pred, ps []Pred) (bool, error) {
	return Implies(whole, Disj(ps...))
}

// PairwiseDisjoint reports whether all predicates are mutually disjoint, as
// the language requires of top-level statements (§2.1). On failure it
// returns the indices of the first overlapping pair.
func PairwiseDisjoint(ps []Pred) (bool, int, int, error) {
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			d, err := Disjoint(ps[i], ps[j])
			if err != nil {
				return false, 0, 0, err
			}
			if !d {
				return false, i, j, nil
			}
		}
	}
	return true, 0, 0, nil
}

// OnlyFields reports whether every atom of p tests a field accepted by
// ok. It is the allocation-free form of Fields for yes/no queries on the
// compiler's hot path.
func OnlyFields(p Pred, ok func(Field) bool) bool {
	switch q := p.(type) {
	case Test:
		return ok(q.Field)
	case And:
		return OnlyFields(q.L, ok) && OnlyFields(q.R, ok)
	case Or:
		return OnlyFields(q.L, ok) && OnlyFields(q.R, ok)
	case Not:
		return OnlyFields(q.P, ok)
	default:
		return true
	}
}

// Fields returns the sorted set of fields mentioned in p.
func Fields(p Pred) []Field {
	set := make(map[Field]bool)
	var walk func(Pred)
	walk = func(p Pred) {
		switch q := p.(type) {
		case Test:
			set[q.Field] = true
		case And:
			walk(q.L)
			walk(q.R)
		case Or:
			walk(q.L)
			walk(q.R)
		case Not:
			walk(q.P)
		}
	}
	walk(p)
	fields := make([]Field, 0, len(set))
	for f := range set {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i] < fields[j] })
	return fields
}

// Size returns the number of AST nodes in p.
func Size(p Pred) int {
	switch q := p.(type) {
	case And:
		return 1 + Size(q.L) + Size(q.R)
	case Or:
		return 1 + Size(q.L) + Size(q.R)
	case Not:
		return 1 + Size(q.P)
	default:
		return 1
	}
}

// Matches evaluates p against a concrete packet given as a field→value
// assignment. Fields absent from the assignment fail positive tests and
// satisfy negated ones.
func Matches(p Pred, pkt map[Field]string) bool {
	switch q := p.(type) {
	case TruePred:
		return true
	case FalsePred:
		return false
	case Test:
		return pkt[q.Field] == q.Value
	case And:
		return Matches(q.L, pkt) && Matches(q.R, pkt)
	case Or:
		return Matches(q.L, pkt) || Matches(q.R, pkt)
	case Not:
		return !Matches(q.P, pkt)
	default:
		return false
	}
}

// Format renders p without the outermost parentheses, for diagnostics.
func Format(p Pred) string {
	s := p.String()
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		return s[1 : len(s)-1]
	}
	return s
}
