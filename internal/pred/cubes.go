package pred

import "fmt"

// maxExpandCubes bounds classifier expansion; policy predicates are
// shallow, so hitting this indicates a pathological input.
const maxExpandCubes = 1 << 16

// PositiveCubes expands p into disjunctive normal form and returns the
// positive literals of each satisfiable cube. It is the classifier
// expansion code generation uses to turn a statement predicate into
// match rules: under the first-match priority ordering the compiler
// emits (statements earlier in the policy shadow later ones), negated
// literals are enforced by the higher-priority rules of the statements
// that own the negated values, so each rule needs only the positive
// tests. Unsatisfiable cubes are dropped; a tautological predicate
// yields one empty cube.
func PositiveCubes(p Pred) ([][]Test, error) {
	// Fast path: a pure conjunction of positive tests (the shape of
	// nearly every compiled statement predicate) is its own single cube;
	// skip the NNF conversion and assignment machinery entirely.
	if ts, ok := conjTests(p, make([]Test, 0, 4)); ok {
		for i, a := range ts {
			for _, b := range ts[:i] {
				if a.Field == b.Field && a.Value != b.Value {
					return nil, nil // contradictory pins: no satisfiable cube
				}
			}
		}
		return [][]Test{dedupTests(ts)}, nil
	}
	n, err := toNNF(p, false)
	if err != nil {
		return nil, err
	}
	cubes, err := expandCubes(n)
	if err != nil {
		return nil, err
	}
	var out [][]Test
	for _, c := range cubes {
		if !cubeConsistent(c) {
			continue
		}
		var pos []Test
		for _, l := range c {
			if !l.neg {
				pos = append(pos, Test{Field: l.field, Value: l.value})
			}
		}
		out = append(out, dedupTests(pos))
	}
	return out, nil
}

// EstimateCubes bounds the weighted number of DNF cubes of p — the
// classifier rows PositiveCubes would materialize — without materializing
// them. The weight function prices one literal (a positive or negated
// test); the result is Σ over cubes of Π over the cube's literals of
// weight(literal), computed structurally (And multiplies, Or adds), so
// the cost is linear in the predicate, not in the cube count. A nil
// weight prices every literal at 1, making the result the plain cube
// count. The estimate is an upper bound: unsatisfiable cubes, which
// PositiveCubes drops, are still counted, and duplicate literals still
// multiply. Ternary expansion uses it to price a classification rule's
// TCAM footprint (a range literal weighs its prefix count) before — or
// instead of — building the rows.
func EstimateCubes(p Pred, weight func(t Test, negated bool) float64) (float64, error) {
	n, err := toNNF(p, false)
	if err != nil {
		return 0, err
	}
	if weight == nil {
		weight = func(Test, bool) float64 { return 1 }
	}
	return countCubes(n, weight), nil
}

func countCubes(n nnf, weight func(Test, bool) float64) float64 {
	switch x := n.(type) {
	case nnfTrue:
		return 1
	case nnfFalse:
		return 0
	case nnfLit:
		return weight(Test{Field: x.field, Value: x.value}, x.neg)
	case nnfAnd:
		out := 1.0
		for _, part := range x.parts {
			out *= countCubes(part, weight)
		}
		return out
	case nnfOr:
		out := 0.0
		for _, part := range x.parts {
			out += countCubes(part, weight)
		}
		return out
	default:
		return 0
	}
}

// conjTests collects the tests of a conjunction of positive atoms into
// acc, reporting false if p contains any other connective.
func conjTests(p Pred, acc []Test) ([]Test, bool) {
	switch x := p.(type) {
	case TruePred:
		return acc, true
	case Test:
		return append(acc, x), true
	case And:
		acc, ok := conjTests(x.L, acc)
		if !ok {
			return nil, false
		}
		return conjTests(x.R, acc)
	default:
		return nil, false
	}
}

func expandCubes(n nnf) ([][]nnfLit, error) {
	switch x := n.(type) {
	case nnfTrue:
		return [][]nnfLit{{}}, nil
	case nnfFalse:
		return nil, nil
	case nnfLit:
		return [][]nnfLit{{x}}, nil
	case nnfAnd:
		out := [][]nnfLit{{}}
		for _, part := range x.parts {
			sub, err := expandCubes(part)
			if err != nil {
				return nil, err
			}
			if len(out)*len(sub) > maxExpandCubes {
				return nil, fmt.Errorf("pred: classifier expansion too large")
			}
			var next [][]nnfLit
			for _, a := range out {
				for _, b := range sub {
					cube := make([]nnfLit, 0, len(a)+len(b))
					cube = append(cube, a...)
					cube = append(cube, b...)
					next = append(next, cube)
				}
			}
			out = next
		}
		return out, nil
	case nnfOr:
		var out [][]nnfLit
		for _, part := range x.parts {
			sub, err := expandCubes(part)
			if err != nil {
				return nil, err
			}
			if len(out)+len(sub) > maxExpandCubes {
				return nil, fmt.Errorf("pred: classifier expansion too large")
			}
			out = append(out, sub...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pred: unknown NNF node %T", n)
	}
}

// cubeConsistent checks a literal conjunction the same way the
// satisfiability search does, without the search machinery.
func cubeConsistent(c []nnfLit) bool {
	a := newAssignment()
	for _, l := range c {
		ok, _ := a.bind(l)
		if !ok {
			return false
		}
	}
	return true
}

func dedupTests(ts []Test) []Test {
	seen := make(map[Test]bool, len(ts))
	out := ts[:0]
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
