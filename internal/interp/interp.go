// Package interp implements the end-host packet-processing interpreter of
// §3.4: a small program of classify/act clauses — filtering and token-
// bucket rate limiting against arbitrary Merlin predicates — standing in
// for the paper's netfilter kernel module. The interpreter depends on the
// host OS only through the Clock interface, mirroring the module's
// "about a dozen system calls" portability contract.
package interp

import (
	"fmt"
	"sync"
	"time"

	"merlin/internal/packet"
	"merlin/internal/pred"
)

// Verdict is the outcome of processing one packet.
type Verdict int

// Verdicts.
const (
	Accept Verdict = iota
	Drop
)

func (v Verdict) String() string {
	if v == Drop {
		return "drop"
	}
	return "accept"
}

// Clock abstracts time for the interpreter (the only OS service the rate
// limiter needs).
type Clock interface {
	Now() time.Time
}

// SystemClock uses the real time.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// ManualClock is a test clock advanced explicitly.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Op is a clause operation.
type Op int

// Clause operations.
const (
	// OpAllow accepts matching packets.
	OpAllow Op = iota
	// OpDeny drops matching packets.
	OpDeny
	// OpRateLimit subjects matching packets to a token bucket.
	OpRateLimit
)

// Clause is one program step: packets matching Pred are handled by Op;
// non-matching packets fall through to the next clause.
type Clause struct {
	Pred pred.Pred
	Op   Op
	// RateBps and BurstBytes configure OpRateLimit.
	RateBps    float64
	BurstBytes float64
}

// Program is an ordered list of clauses with a default verdict.
type Program struct {
	Name    string
	Clauses []Clause
	// Default applies when no clause matches (Accept unless set).
	Default Verdict
}

// Validate checks clause sanity.
func (p *Program) Validate() error {
	for i, c := range p.Clauses {
		if c.Pred == nil {
			return fmt.Errorf("interp: clause %d has no predicate", i)
		}
		if c.Op == OpRateLimit && c.RateBps <= 0 {
			return fmt.Errorf("interp: clause %d rate limit must be positive", i)
		}
	}
	return nil
}

// bucket is a token bucket in bits.
type bucket struct {
	tokens float64
	last   time.Time
}

// Interp executes a program against a packet stream. It is safe for
// concurrent use.
type Interp struct {
	prog    *Program
	clock   Clock
	mu      sync.Mutex
	buckets []bucket
	// Stats count per-verdict packets.
	accepted, dropped int
}

// New compiles the program into an interpreter instance.
func New(prog *Program, clock Clock) (*Interp, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		clock = SystemClock{}
	}
	in := &Interp{prog: prog, clock: clock, buckets: make([]bucket, len(prog.Clauses))}
	now := clock.Now()
	for i, c := range prog.Clauses {
		if c.Op == OpRateLimit {
			in.buckets[i] = bucket{tokens: burstBits(c), last: now}
		}
	}
	return in, nil
}

func burstBits(c Clause) float64 {
	if c.BurstBytes > 0 {
		return c.BurstBytes * 8
	}
	// Default burst: 100 ms at line rate.
	return c.RateBps / 10
}

// Process runs one packet through the program; size is the wire size in
// bytes (0 means use the marshaled length).
func (in *Interp) Process(pkt *packet.Packet, size int) Verdict {
	if size <= 0 {
		size = len(pkt.Marshal())
	}
	fields := pkt.Fields()
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, c := range in.prog.Clauses {
		if !pred.Matches(c.Pred, fields) {
			continue
		}
		switch c.Op {
		case OpAllow:
			in.accepted++
			return Accept
		case OpDeny:
			in.dropped++
			return Drop
		case OpRateLimit:
			b := &in.buckets[i]
			now := in.clock.Now()
			elapsed := now.Sub(b.last).Seconds()
			if elapsed > 0 {
				b.tokens += elapsed * c.RateBps
				if max := burstBits(c); b.tokens > max {
					b.tokens = max
				}
				b.last = now
			}
			need := float64(size) * 8
			if b.tokens >= need {
				b.tokens -= need
				in.accepted++
				return Accept
			}
			in.dropped++
			return Drop
		}
	}
	if in.prog.Default == Drop {
		in.dropped++
		return Drop
	}
	in.accepted++
	return Accept
}

// Stats reports processed-packet counters.
func (in *Interp) Stats() (accepted, dropped int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.accepted, in.dropped
}
